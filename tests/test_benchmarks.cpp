#include <gtest/gtest.h>

#include "algo/benchmarks.hpp"
#include "algo/numbertheory.hpp"
#include "sim/simulator.hpp"

namespace ddsim::algo {
namespace {

TEST(Benchmarks, GroverNames) {
  const auto circuit = makeBenchmark("grover_8");
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->numQubits(), 8U);

  const auto withMarked = makeBenchmark("grover_6_11");
  ASSERT_TRUE(withMarked.has_value());
  EXPECT_EQ(withMarked->numQubits(), 6U);
}

TEST(Benchmarks, ShorNames) {
  const auto gate = makeBenchmark("shor_15_7");
  ASSERT_TRUE(gate.has_value());
  EXPECT_EQ(gate->numQubits(), 11U);

  const auto oracle = makeBenchmark("shordd_15_7");
  ASSERT_TRUE(oracle.has_value());
  EXPECT_EQ(oracle->numQubits(), 5U);
}

TEST(Benchmarks, SupremacyNames) {
  const auto circuit = makeBenchmark("supremacy_3x4_10");
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->numQubits(), 12U);

  const auto seeded = makeBenchmark("supremacy_3x4_10_7");
  ASSERT_TRUE(seeded.has_value());
  // Different seed produces a different circuit.
  bool differs = seeded->numOps() != circuit->numOps();
  for (std::size_t i = 0; !differs && i < circuit->numOps(); ++i) {
    differs = circuit->ops()[i]->toString() != seeded->ops()[i]->toString();
  }
  EXPECT_TRUE(differs);
}

TEST(Benchmarks, QftName) {
  const auto circuit = makeBenchmark("qft_12");
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->numQubits(), 12U);
}

TEST(Benchmarks, TextbookNames) {
  EXPECT_EQ(makeBenchmark("ghz_24")->numQubits(), 24U);
  EXPECT_EQ(makeBenchmark("wstate_16")->numQubits(), 16U);
  EXPECT_EQ(makeBenchmark("bv_24")->numQubits(), 25U);      // + ancilla
  EXPECT_EQ(makeBenchmark("bv_8_129")->numQubits(), 9U);
  EXPECT_EQ(makeBenchmark("qpe_10")->numQubits(), 11U);     // + eigenstate
  EXPECT_EQ(makeBenchmark("qpe_8_3")->numClbits(), 8U);
  EXPECT_FALSE(makeBenchmark("bv_8_256").has_value());      // hidden too wide
}

TEST(Benchmarks, QaoaNames) {
  const auto circuit = makeBenchmark("qaoa_8_2");
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->numQubits(), 8U);
  EXPECT_FALSE(makeBenchmark("qaoa_8_0").has_value());
  // Different seeds give different graphs.
  const auto a = makeBenchmark("qaoa_8_1_1");
  const auto b = makeBenchmark("qaoa_8_1_2");
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->flatGateCount(), b->flatGateCount());
}

TEST(Benchmarks, UnknownNamesRejected) {
  EXPECT_FALSE(makeBenchmark("").has_value());
  EXPECT_FALSE(makeBenchmark("frobnicate_3").has_value());
  EXPECT_FALSE(makeBenchmark("grover").has_value());
  EXPECT_FALSE(makeBenchmark("grover_x").has_value());
  EXPECT_FALSE(makeBenchmark("shor_15").has_value());
  EXPECT_FALSE(makeBenchmark("supremacy_44_10").has_value());
  // Well-formed but invalid instance (a not co-prime to N).
  EXPECT_FALSE(makeBenchmark("shor_15_5").has_value());
}

TEST(Benchmarks, ExamplesAllParse) {
  for (const auto& name : benchmarkExamples()) {
    if (name == "shordd_2561_2409") {
      continue;  // large instance: parseable but slow to *simulate*; still
                 // must construct
    }
    EXPECT_TRUE(makeBenchmark(name).has_value()) << name;
  }
}

TEST(Benchmarks, LargeOracleInstanceConstructs) {
  // The paper's shor_2561_2409_27 instance (DD-construct variant): circuit
  // construction must work; the oracle tables are only materialized at
  // simulation time.
  const auto circuit = makeBenchmark("shordd_2561_2409");
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->numQubits(), bitLength(2561) + 1);
}

TEST(Benchmarks, NamedGroverSimulates) {
  const auto circuit = makeBenchmark("grover_6");
  ASSERT_TRUE(circuit.has_value());
  const auto result = sim::simulate(*circuit);
  EXPECT_GT(result.stats.appliedGates, 0U);
}

}  // namespace
}  // namespace ddsim::algo
