#include <gtest/gtest.h>

#include <numbers>

#include "baseline/dense_matrix.hpp"
#include "ir/optimize.hpp"
#include "sim/equivalence.hpp"
#include "test_util.hpp"

namespace ddsim::ir {
namespace {

TEST(DecomposeU3, RoundTripsRandomUnitaries) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> angle(-3.1, 3.1);
  for (int trial = 0; trial < 50; ++trial) {
    // Random unitary as a product of rotations and a phase.
    const double a1 = angle(rng);
    const double a2 = angle(rng);
    const double a3 = angle(rng);
    const double a4 = angle(rng);
    auto m = baseline::DenseMatrix::fromGate(gateMatrix(GateType::RZ, &a1)) *
             baseline::DenseMatrix::fromGate(gateMatrix(GateType::RY, &a2)) *
             baseline::DenseMatrix::fromGate(gateMatrix(GateType::RZ, &a3)) *
             baseline::DenseMatrix::fromGate(gateMatrix(GateType::Phase, &a4));
    const dd::GateMatrix gm = {dd::ComplexValue::fromStd(m.at(0, 0)),
                               dd::ComplexValue::fromStd(m.at(0, 1)),
                               dd::ComplexValue::fromStd(m.at(1, 0)),
                               dd::ComplexValue::fromStd(m.at(1, 1))};
    const U3Decomposition d = decomposeU3(gm);
    const double params[3] = {d.theta, d.phi, d.lambda};
    const auto rebuilt = gateMatrix(GateType::U, params);
    const std::complex<double> phase{std::cos(d.alpha), std::sin(d.alpha)};
    for (int e = 0; e < 4; ++e) {
      const auto expected = gm[static_cast<std::size_t>(e)].toStd();
      const auto got = phase * rebuilt[static_cast<std::size_t>(e)].toStd();
      EXPECT_NEAR(std::abs(expected - got), 0.0, 1e-9) << "entry " << e;
    }
  }
}

TEST(DecomposeU3, HandlesDiagonalAndAntiDiagonal) {
  // S gate: diagonal.
  const auto s = decomposeU3(gateMatrix(GateType::S));
  EXPECT_NEAR(s.theta, 0.0, 1e-12);
  // X gate: anti-diagonal.
  const auto x = decomposeU3(gateMatrix(GateType::X));
  EXPECT_NEAR(x.theta, std::numbers::pi, 1e-12);
}

TEST(Optimize, RemovesIdentities) {
  Circuit c(2);
  c.i(0);
  c.h(0);
  c.rz(0.0, 1);
  c.phase(0.0, 0);
  OptimizeStats stats;
  const Circuit out = optimize(c, {}, &stats);
  EXPECT_EQ(out.numOps(), 1U);
  EXPECT_EQ(stats.removedIdentities, 3U);
}

TEST(Optimize, CancelsAdjacentInversePairs) {
  Circuit c(2);
  c.h(0);
  c.h(0);
  c.s(1);
  c.sdg(1);
  c.cx(0, 1);
  c.cx(0, 1);
  OptimizeStats stats;
  const Circuit out = optimize(c, {}, &stats);
  EXPECT_EQ(out.numOps(), 0U);
  EXPECT_EQ(stats.cancelledPairs, 3U);
}

TEST(Optimize, CancelsAcrossDisjointOperations) {
  Circuit c(3);
  c.t(0);
  c.h(1);       // disjoint: does not block
  c.cx(1, 2);   // disjoint from qubit 0
  c.tdg(0);
  OptimizeStats stats;
  OptimizeOptions opts;
  opts.fuseSingleQubitGates = false;
  const Circuit out = optimize(c, opts, &stats);
  EXPECT_EQ(stats.cancelledPairs, 1U);
  EXPECT_EQ(out.numOps(), 2U);
}

TEST(Optimize, DoesNotCancelAcrossOverlap) {
  Circuit c(2);
  c.t(0);
  c.cx(0, 1);  // touches qubit 0: blocks
  c.tdg(0);
  OptimizeOptions opts;
  opts.fuseSingleQubitGates = false;
  OptimizeStats stats;
  const Circuit out = optimize(c, opts, &stats);
  EXPECT_EQ(stats.cancelledPairs, 0U);
  EXPECT_EQ(out.numOps(), 3U);
}

TEST(Optimize, SwapPairsCancel) {
  Circuit c(2);
  c.swap(0, 1);
  c.swap(0, 1);
  const Circuit out = optimize(c);
  EXPECT_EQ(out.numOps(), 0U);
}

TEST(Optimize, FusesSingleQubitRuns) {
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.sx(0);
  c.rz(0.7, 0);
  OptimizeStats stats;
  const Circuit out = optimize(c, {}, &stats);
  // One U gate (plus possibly one global phase gate).
  ASSERT_GE(out.numOps(), 1U);
  ASSERT_LE(out.numOps(), 2U);
  EXPECT_GT(stats.fusedGates, 0U);
  EXPECT_EQ(sim::checkEquivalence(c, out), sim::Equivalence::Equivalent);
}

TEST(Optimize, FusionIsExactIncludingGlobalPhase) {
  Circuit c(1);
  c.z(0);
  c.x(0);  // ZX = iY: fused form needs the explicit global phase
  const Circuit out = optimize(c);
  EXPECT_EQ(sim::checkEquivalence(c, out), sim::Equivalence::Equivalent);
}

TEST(Optimize, MeasurementsFenceAllPasses) {
  Circuit c(1, 1);
  c.h(0);
  c.measure(0, 0);
  c.h(0);
  const Circuit out = optimize(c);
  EXPECT_EQ(out.numOps(), 3U);  // nothing cancels across the measurement
}

TEST(Optimize, CompoundBodiesAreOptimized) {
  Circuit c(2);
  Circuit block(2);
  block.h(0);
  block.h(0);
  block.t(1);
  c.appendRepeated(std::move(block), 3, "loop");
  const Circuit out = optimize(c);
  ASSERT_EQ(out.numOps(), 1U);
  const auto& comp = static_cast<const CompoundOperation&>(*out.ops()[0]);
  EXPECT_EQ(comp.repetitions(), 3U);
  EXPECT_EQ(comp.body().size(), 1U);
}

class OptimizeEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeEquivalenceSweep, PreservesUnitaryExactly) {
  const auto circuit = test::randomCircuit(4, 40, GetParam());
  OptimizeStats stats;
  const Circuit out = optimize(circuit, {}, &stats);
  EXPECT_LE(out.flatGateCount(), circuit.flatGateCount());
  EXPECT_EQ(sim::checkEquivalence(circuit, out), sim::Equivalence::Equivalent)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizeEquivalenceSweep,
                         ::testing::Range<std::uint64_t>(700, 712));

TEST(Optimize, ReducesRealisticCircuits) {
  // H-T-Tdg-H on every qubit collapses entirely.
  Circuit c(4);
  for (Qubit q = 0; q < 4; ++q) {
    c.h(q);
    c.t(q);
    c.tdg(q);
    c.h(q);
  }
  const Circuit out = optimize(c);
  EXPECT_EQ(out.numOps(), 0U);
}

}  // namespace
}  // namespace ddsim::ir
