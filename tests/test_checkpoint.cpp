/// Checkpoint/resume durability tests. The core guarantee (documented on
/// sim/checkpoint.hpp): an interrupted-then-resumed run produces
/// measurement outcomes bit-identical to the uninterrupted run, across
/// combination schedules, kernel thread counts and pipeline depths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "test_util.hpp"

namespace ddsim::sim {
namespace {

/// A circuit that exercises every resume-relevant code path: unitary
/// streams (combinable / pipelineable), mid-circuit measurements and a
/// reset (RNG draws + classic bits mid-run), and a final full measurement.
ir::Circuit makeMeasuredCircuit(std::uint64_t seed) {
  constexpr std::size_t kQubits = 4;
  ir::Circuit c(kQubits, kQubits, "ckpt_" + std::to_string(seed));
  c.appendCircuit(test::randomCircuit(kQubits, 25, seed));
  c.measure(0, 0);
  c.reset(1);
  c.appendCircuit(test::randomCircuit(kQubits, 25, seed + 1));
  c.measure(2, 1);
  c.appendCircuit(test::randomCircuit(kQubits, 20, seed + 2));
  c.measureAll();
  return c;
}

/// Run \p circuit with checkpointing armed, capturing every snapshot. The
/// sink stores serialized blobs — exactly what a durable caller would keep.
struct CapturedRun {
  SimulationResult result;
  std::vector<std::vector<std::uint8_t>> blobs;
};

CapturedRun runCapturing(const ir::Circuit& circuit, StrategyConfig config,
                         std::uint64_t seed, std::size_t interval) {
  config.checkpointIntervalOps = interval;
  CapturedRun out;
  CircuitSimulator simulator(circuit, config, seed);
  simulator.setCheckpointSink(
      [&](const Checkpoint& ck) { out.blobs.push_back(ck.serialize()); });
  out.result = simulator.run();
  return out;
}

TEST(Checkpoint, SerializeRoundTripPreservesEveryField) {
  const auto circuit = makeMeasuredCircuit(5);
  StrategyConfig config;
  config.schedule = Schedule::KOperations;
  config.k = 3;
  const CapturedRun run = runCapturing(circuit, config, 11, 4);
  ASSERT_FALSE(run.blobs.empty());

  for (const auto& blob : run.blobs) {
    const Checkpoint ck = Checkpoint::deserialize(blob);
    const Checkpoint again = Checkpoint::deserialize(ck.serialize());
    EXPECT_EQ(again.circuitHash, ck.circuitHash);
    EXPECT_EQ(again.strategyHash, ck.strategyHash);
    EXPECT_EQ(again.seed, ck.seed);
    EXPECT_EQ(again.nextOpIndex, ck.nextOpIndex);
    EXPECT_EQ(again.rngState, ck.rngState);
    EXPECT_EQ(again.classicalBits, ck.classicalBits);
    EXPECT_EQ(again.state, ck.state);
    EXPECT_EQ(again.accPending, ck.accPending);
    EXPECT_EQ(again.acc, ck.acc);
    EXPECT_EQ(again.accCount, ck.accCount);
    EXPECT_EQ(again.accGates, ck.accGates);
    EXPECT_EQ(again.sequentialCooldown, ck.sequentialCooldown);
    EXPECT_EQ(again.pipelineDisabled, ck.pipelineDisabled);
    EXPECT_EQ(again.stats.appliedGates, ck.stats.appliedGates);
    EXPECT_EQ(again.stats.mxvCount, ck.stats.mxvCount);
    EXPECT_EQ(again.stats.mxmCount, ck.stats.mxmCount);
    EXPECT_EQ(again.stats.checkpointsTaken, ck.stats.checkpointsTaken);
  }
}

TEST(Checkpoint, DeserializeRejectsCorruption) {
  const auto circuit = makeMeasuredCircuit(7);
  const CapturedRun run = runCapturing(circuit, {}, 3, 10);
  ASSERT_FALSE(run.blobs.empty());
  const std::vector<std::uint8_t>& bytes = run.blobs.front();

  // Truncation at header and payload cuts.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, bytes.size() / 3, bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW((void)Checkpoint::deserialize(cut), CheckpointError)
        << "kept " << keep << " bytes";
  }

  // Bit flips across the blob: checksum (or a structural check) must trip.
  for (std::size_t pos = 0; pos < bytes.size();
       pos += std::max<std::size_t>(1, bytes.size() / 19)) {
    std::vector<std::uint8_t> bad = bytes;
    bad[pos] ^= 0x04U;
    EXPECT_THROW((void)Checkpoint::deserialize(bad), CheckpointError)
        << "bit flip at byte " << pos << " was accepted";
  }

  EXPECT_THROW((void)Checkpoint::deserialize(nullptr, 0), CheckpointError);
}

TEST(Checkpoint, ResumeRejectsIdentityMismatch) {
  const auto circuit = makeMeasuredCircuit(9);
  StrategyConfig config;
  config.schedule = Schedule::KOperations;
  config.k = 2;
  const CapturedRun run = runCapturing(circuit, config, 21, 6);
  ASSERT_FALSE(run.blobs.empty());
  const Checkpoint ck = Checkpoint::deserialize(run.blobs.front());

  // Wrong circuit.
  const auto other = makeMeasuredCircuit(10);
  {
    CircuitSimulator simulator(other, config, 21);
    EXPECT_THROW(simulator.resumeFrom(ck), CheckpointError);
  }
  // Wrong seed.
  {
    CircuitSimulator simulator(circuit, config, 22);
    EXPECT_THROW(simulator.resumeFrom(ck), CheckpointError);
  }
  // Wrong strategy (different k changes the strategy identity).
  {
    StrategyConfig otherConfig = config;
    otherConfig.k = 5;
    CircuitSimulator simulator(circuit, otherConfig, 21);
    EXPECT_THROW(simulator.resumeFrom(ck), CheckpointError);
  }
  // A different time limit does NOT change the identity: retries rebind
  // the remaining deadline per attempt and must still resume.
  {
    StrategyConfig rebound = config;
    rebound.timeLimitSeconds = 3600.0;
    CircuitSimulator simulator(circuit, rebound, 21);
    EXPECT_NO_THROW(simulator.resumeFrom(ck));
  }
  // Tampered op cursor past the end of the circuit.
  {
    Checkpoint bad = ck;
    bad.nextOpIndex = circuit.ops().size() + 1;
    CircuitSimulator simulator(circuit, config, 21);
    EXPECT_THROW(simulator.resumeFrom(bad), CheckpointError);
  }
  // Malformed RNG stream position.
  {
    Checkpoint bad = ck;
    bad.rngState = "not a generator state";
    CircuitSimulator simulator(circuit, config, 21);
    simulator.resumeFrom(bad);
    EXPECT_THROW((void)simulator.run(), CheckpointError);
  }
}

TEST(Checkpoint, ResumeAfterRunIsALogicError) {
  const auto circuit = makeMeasuredCircuit(13);
  const CapturedRun run = runCapturing(circuit, {}, 3, 8);
  ASSERT_FALSE(run.blobs.empty());
  const Checkpoint ck = Checkpoint::deserialize(run.blobs.front());

  CircuitSimulator simulator(circuit, {}, 3);
  (void)simulator.run();
  EXPECT_THROW(simulator.resumeFrom(ck), std::logic_error);
}

TEST(Checkpoint, SinkFiresAtQuiescentBoundariesOnly) {
  const auto circuit = makeMeasuredCircuit(15);
  constexpr std::size_t kInterval = 5;
  const CapturedRun run = runCapturing(circuit, {}, 3, kInterval);
  ASSERT_FALSE(run.blobs.empty());
  EXPECT_EQ(run.result.stats.checkpointsTaken, run.blobs.size());

  std::uint64_t lastNext = 0;
  for (const auto& blob : run.blobs) {
    const Checkpoint ck = Checkpoint::deserialize(blob);
    // Strictly advancing, never past the end (a checkpoint at nextOpIndex
    // == ops.size() would be pointless — the run is already done).
    EXPECT_GT(ck.nextOpIndex, lastNext);
    EXPECT_LT(ck.nextOpIndex, circuit.ops().size());
    lastNext = ck.nextOpIndex;
  }

  // Disarmed interval means no snapshots and no sink calls.
  const CapturedRun off = runCapturing(circuit, {}, 3, 0);
  EXPECT_TRUE(off.blobs.empty());
  EXPECT_EQ(off.result.stats.checkpointsTaken, 0U);
}

/// The determinism matrix: schedules x threads x pipeline depths. For each
/// configuration, capture a mid-run checkpoint, resume it in a fresh
/// simulator, and demand bit-identical classical outcomes.
TEST(Checkpoint, ResumedRunsAreBitIdenticalAcrossConfigurations) {
  const auto circuit = makeMeasuredCircuit(17);
  constexpr std::uint64_t kSeed = 99;

  std::vector<StrategyConfig> configs;
  for (const Schedule schedule :
       {Schedule::Sequential, Schedule::KOperations, Schedule::MaxSize,
        Schedule::Adaptive}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      for (const std::size_t depth :
           {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
        StrategyConfig c;
        c.schedule = schedule;
        c.k = 3;
        c.maxSize = 256;
        c.threads = threads;
        c.pipeline = depth > 0;
        c.pipelineDepth = depth > 0 ? depth : 2;
        configs.push_back(c);
      }
    }
  }

  for (const StrategyConfig& config : configs) {
    const std::string label =
        scheduleName(config.schedule) + "/threads=" +
        std::to_string(config.threads) + "/pipeline=" +
        (config.pipeline ? std::to_string(config.pipelineDepth) : "off");

    // Uninterrupted baseline (checkpointing off — the sink must be a pure
    // observer, so the captured run below must match it too).
    const DetachedResult baseline = simulate(circuit, config, kSeed);

    const CapturedRun captured = runCapturing(circuit, config, kSeed, 4);
    ASSERT_FALSE(captured.blobs.empty()) << label;
    EXPECT_EQ(captured.result.classicalBits, baseline.classicalBits)
        << label << ": the checkpoint sink perturbed the run";

    // Resume from a snapshot near the middle of the run — the interesting
    // case: state, RNG position and possibly a pending accumulator all
    // carry over.
    const auto& blob = captured.blobs[captured.blobs.size() / 2];
    const Checkpoint ck = Checkpoint::deserialize(blob);
    CircuitSimulator resumed(circuit, config, kSeed);
    resumed.resumeFrom(ck);
    const SimulationResult result = resumed.run();

    EXPECT_EQ(result.classicalBits, baseline.classicalBits)
        << label << ": resumed outcomes diverged from the uninterrupted run";
    EXPECT_EQ(result.stats.resumedFromCheckpoint, 1U) << label;
    EXPECT_EQ(result.stats.appliedGates, baseline.stats.appliedGates)
        << label << ": carried statistics missed gates";
  }
}

TEST(Checkpoint, ResumesMidAccumulator) {
  // With KOperations k=5 and a 1-op interval, some snapshot lands between
  // flushes — accumulated gates not yet applied to the state. Resuming
  // from exactly such a snapshot must still match the baseline.
  const auto circuit = makeMeasuredCircuit(19);
  StrategyConfig config;
  config.schedule = Schedule::KOperations;
  config.k = 5;
  constexpr std::uint64_t kSeed = 7;

  const DetachedResult baseline = simulate(circuit, config, kSeed);
  const CapturedRun captured = runCapturing(circuit, config, kSeed, 1);

  bool sawPending = false;
  for (const auto& blob : captured.blobs) {
    const Checkpoint ck = Checkpoint::deserialize(blob);
    if (!ck.accPending) {
      continue;
    }
    sawPending = true;
    EXPECT_GT(ck.accGates, 0U);
    CircuitSimulator resumed(circuit, config, kSeed);
    resumed.resumeFrom(ck);
    const SimulationResult result = resumed.run();
    EXPECT_EQ(result.classicalBits, baseline.classicalBits)
        << "resume at op " << ck.nextOpIndex << " with " << ck.accGates
        << " pending accumulator gates diverged";
  }
  EXPECT_TRUE(sawPending)
      << "no checkpoint captured a pending accumulator — interval/k "
         "combination no longer exercises the mid-accumulator path";
}

TEST(Checkpoint, StatsEncodingRoundTrips) {
  SimulationStats s;
  s.appliedGates = 123;
  s.mxvCount = 45;
  s.mxmCount = 67;
  s.peakStateNodes = 89;
  s.approxFidelity = 0.875;
  s.degradationEvents = 3;
  s.migratedNodes = 1000;
  s.checkpointsTaken = 4;
  s.resumedFromCheckpoint = 1;

  std::vector<std::uint8_t> bytes;
  encodeStats(bytes, s);
  std::size_t offset = 0;
  const SimulationStats back = decodeStats(bytes.data(), bytes.size(), offset);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(back.appliedGates, s.appliedGates);
  EXPECT_EQ(back.mxvCount, s.mxvCount);
  EXPECT_EQ(back.mxmCount, s.mxmCount);
  EXPECT_EQ(back.peakStateNodes, s.peakStateNodes);
  EXPECT_DOUBLE_EQ(back.approxFidelity, s.approxFidelity);
  EXPECT_EQ(back.degradationEvents, s.degradationEvents);
  EXPECT_EQ(back.migratedNodes, s.migratedNodes);
  EXPECT_EQ(back.checkpointsTaken, s.checkpointsTaken);
  EXPECT_EQ(back.resumedFromCheckpoint, s.resumedFromCheckpoint);

  // Truncated stats block is rejected, not misread.
  std::size_t off2 = 0;
  EXPECT_THROW((void)decodeStats(bytes.data(), bytes.size() - 1, off2),
               CheckpointError);
}

}  // namespace
}  // namespace ddsim::sim
