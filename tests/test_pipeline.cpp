#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "algo/grover.hpp"
#include "algo/qft.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim::sim {
namespace {

/// A measured circuit that exercises long unitary runs, mid-circuit
/// measurement, and classically controlled gates.
ir::Circuit measuredCircuit(std::uint64_t seed) {
  ir::Circuit circuit = test::randomCircuit(5, 60, seed);
  ir::Circuit full(5, 5, "measured_" + std::to_string(seed));
  full.appendCircuit(circuit);
  full.measure(0, 0);
  full.classicControlled(ir::GateType::X, 2, {}, {}, 0, true);
  full.appendCircuit(test::randomCircuit(5, 40, seed + 1));
  full.measureAll();
  return full;
}

StrategyConfig withPipeline(StrategyConfig config, std::size_t depth = 2) {
  config.pipeline = true;
  config.pipelineDepth = depth;
  return config;
}

std::vector<StrategyConfig> combiningSchedules() {
  return {StrategyConfig::kOperations(4), StrategyConfig::kOperations(16),
          StrategyConfig::maxSizeStrategy(64),
          StrategyConfig::maxSizeStrategy(1024),
          StrategyConfig::adaptive(0.25), StrategyConfig::adaptive(1.0)};
}

TEST(Pipeline, MatchesSerialSeedForSeedAcrossSchedules) {
  for (const std::uint64_t seed : {1ULL, 42ULL}) {
    const auto circuit = measuredCircuit(seed);
    for (const StrategyConfig& serial : combiningSchedules()) {
      const auto serialResult = simulate(circuit, serial, seed);
      const auto piped = simulate(circuit, withPipeline(serial), seed);
      EXPECT_EQ(piped.classicalBits, serialResult.classicalBits)
          << serial.toString() << " seed " << seed;
    }
  }
}

TEST(Pipeline, MatchesSerialAmplitudes) {
  // Measurement-free circuit: compare the full state, not just outcomes.
  const auto circuit = test::randomCircuit(6, 80, 9);
  for (const StrategyConfig& serial : combiningSchedules()) {
    CircuitSimulator serialSim(circuit, serial);
    const auto serialState =
        serialSim.package().getVector(serialSim.run().finalState);

    CircuitSimulator pipedSim(circuit, withPipeline(serial));
    const auto pipedResult = pipedSim.run();
    const auto pipedState = pipedSim.package().getVector(pipedResult.finalState);

    // Identical block boundaries mean identical multiplication groupings;
    // only complex-table tolerance snapping (<= 1e-13 per weight) may
    // differ between the packages.
    test::expectAmplitudesNear(pipedState, serialState, 1e-12);
    EXPECT_GT(pipedResult.stats.pipelinedBlocks, 0U) << serial.toString();
    EXPECT_EQ(pipedResult.stats.pipelineBowOuts, 0U);
  }
}

TEST(Pipeline, FanOutMatchesSerialAcrossDepthsAndSchedules) {
  // The acceptance bar of the parallel engine: any pipelineDepth (1 = the
  // old single-builder pipeline, 8 = full fan-out) on any schedule yields
  // bit-identical measurement outcomes to the serial engine.
  const auto circuit = measuredCircuit(7);
  for (const StrategyConfig& serial : combiningSchedules()) {
    const auto serialResult = simulate(circuit, serial, 23);
    for (const std::size_t depth : {1, 3, 8}) {
      const auto piped = simulate(circuit, withPipeline(serial, depth), 23);
      EXPECT_EQ(piped.classicalBits, serialResult.classicalBits)
          << serial.toString() << " depth " << depth;
    }
  }
}

TEST(Pipeline, ThreadedKernelsMatchSerialOutcomesAcrossSchedules) {
  // Kernel parallelism in the main package (threads knob), alone and
  // combined with the builder fan-out: measurement outcomes stay identical
  // to the serial engine for the same seed.
  const auto circuit = measuredCircuit(5);
  for (const StrategyConfig& serial : combiningSchedules()) {
    const auto serialResult = simulate(circuit, serial, 29);
    StrategyConfig threaded = serial;
    threaded.threads = 3;
    const auto kernels = simulate(circuit, threaded, 29);
    EXPECT_EQ(kernels.classicalBits, serialResult.classicalBits)
        << serial.toString();
    const auto both = simulate(circuit, withPipeline(threaded, 4), 29);
    EXPECT_EQ(both.classicalBits, serialResult.classicalBits)
        << serial.toString();
  }
}

TEST(Pipeline, GroverMatchesSerial) {
  const auto circuit =
      algo::makeGroverCircuit(7, 0x2a, {.iterations = 4, .measure = true});
  const StrategyConfig serial = StrategyConfig::kOperations(8);
  for (const std::uint64_t seed : {3ULL, 1234ULL}) {
    const auto serialResult = simulate(circuit, serial, seed);
    const auto piped = simulate(circuit, withPipeline(serial, 4), seed);
    EXPECT_EQ(piped.classicalBits, serialResult.classicalBits);
    EXPECT_GT(piped.stats.pipelinedBlocks, 0U);
  }
}

TEST(Pipeline, SequentialScheduleIgnoresPipelineFlag) {
  const auto circuit = test::randomCircuit(5, 40, 2);
  auto config = withPipeline(StrategyConfig::sequential());
  const auto result = simulate(circuit, config, 7);
  EXPECT_EQ(result.stats.pipelinedBlocks, 0U);
}

TEST(Pipeline, StatsAccountBuilderWork) {
  const auto circuit = test::randomCircuit(6, 120, 13);
  const auto config = withPipeline(StrategyConfig::kOperations(8));
  const auto result = simulate(circuit, config, 1);
  EXPECT_GT(result.stats.pipelinedBlocks, 0U);
  EXPECT_GT(result.stats.migratedNodes, 0U);
  EXPECT_GT(result.stats.mxmCount, 0U);
  EXPECT_GE(result.stats.builderBuildSeconds, 0.0);
}

TEST(Pipeline, CancellationDrainsCleanly) {
  const auto circuit = test::randomCircuit(8, 400, 5);
  CircuitSimulator sim(circuit, withPipeline(StrategyConfig::kOperations(4)));
  // Thread-safe hook (also polled by the builder thread): cancel after a
  // handful of polls.
  auto polls = std::make_shared<std::atomic<std::uint64_t>>(0);
  sim.setCancelCheck([polls] { return polls->fetch_add(1) > 64; });
  try {
    (void)sim.run();
    FAIL() << "expected SimulationCancelled";
  } catch (const SimulationCancelled& e) {
    EXPECT_GE(e.partial().elapsedSeconds, 0.0);
  }
  // If the builder thread leaked, the simulator's destructor (and TSan)
  // would catch it after this scope.
}

TEST(Pipeline, TimeoutDrainsCleanly) {
  // Big enough that the time limit trips mid-run.
  const auto circuit = test::randomCircuit(10, 2000, 8);
  auto config = withPipeline(StrategyConfig::maxSizeStrategy(4096));
  config.timeLimitSeconds = 0.05;
  CircuitSimulator sim(circuit, config);
  try {
    (void)sim.run();
    // Fast machines may legitimately finish; nothing to assert then.
  } catch (const SimulationTimeout& e) {
    EXPECT_GE(e.partial().elapsedSeconds, 0.0);
    EXPECT_EQ(e.limitSeconds(), 0.05);
  }
}

TEST(Pipeline, BuilderFaultInjectionBowsOutAndFallsBack) {
  const auto circuit = test::randomCircuit(6, 100, 21);
  const StrategyConfig serial = StrategyConfig::kOperations(4);
  const auto serialResult = simulate(circuit, serial, 11);

  dd::FaultInjector injector;
  injector.configure({.failAllocationAfter = 200});
  CircuitSimulator sim(circuit, withPipeline(serial), 11);
  sim.setBuilderFaultInjector(&injector);
  const auto result = sim.run();
  // The builder bowed out (its package hits the injected allocation
  // failure) and the run completed serially with identical results.
  EXPECT_GE(result.stats.pipelineBowOuts, 1U);
  EXPECT_GT(injector.injectedAllocFailures(), 0U);
  EXPECT_EQ(result.classicalBits, serialResult.classicalBits);
}

TEST(Pipeline, MainPackagePressureFallsBackWithoutFailing) {
  const auto circuit = test::randomCircuit(8, 300, 4);
  auto config = withPipeline(StrategyConfig::maxSizeStrategy(4096));
  config.nodeBudget = 4000;
  try {
    const auto result = simulate(circuit, config, 2);
    // Degraded but completed: the drain rung must have fired at most once
    // and the pipeline stayed off afterwards.
    EXPECT_GE(result.stats.degradationEvents, 0U);
  } catch (const ResourceExhausted& e) {
    // Acceptable under a tight budget — but it must carry progress and not
    // leak the builder.
    EXPECT_GE(e.partial().elapsedSeconds, 0.0);
  }
}

TEST(Pipeline, ContentHashIgnoresPipelineKnobs) {
  // Pipelining must not change the serve-layer cache key: pipelined and
  // serial runs produce identical outcomes, so they must coalesce (same
  // guarantee collectTrace has).
  const StrategyConfig serial = StrategyConfig::kOperations(4);
  EXPECT_EQ(serial.contentHash(), withPipeline(serial).contentHash());
  EXPECT_EQ(withPipeline(serial, 2).contentHash(),
            withPipeline(serial, 8).contentHash());
  // ... while outcome-relevant knobs still change it.
  EXPECT_NE(serial.contentHash(), StrategyConfig::kOperations(5).contentHash());
}

TEST(Pipeline, ValidateRejectsBadDepth) {
  auto config = withPipeline(StrategyConfig::kOperations(4), 0);
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.pipelineDepth = 1025;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.pipelineDepth = 1;
  EXPECT_NO_THROW(config.validate());
  EXPECT_NE(config.toString().find("+pipeline(depth=1)"), std::string::npos);
}

TEST(Pipeline, ThreadsKnobValidatesAndStaysOutOfContentHash) {
  StrategyConfig config = StrategyConfig::kOperations(4);
  config.threads = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.threads = 257;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.threads = 4;
  EXPECT_NO_THROW(config.validate());
  EXPECT_NE(config.toString().find("+threads(4)"), std::string::npos);
  // Kernel parallelism never changes outcomes, so threaded and serial
  // submissions must share a serve-layer cache entry.
  EXPECT_EQ(config.contentHash(), StrategyConfig::kOperations(4).contentHash());
}

/// Toy SharedBlockCache: enough to prove the simulator's lookup/insert
/// protocol; the production LRU lives in serve/.
class MapBlockCache final : public SharedBlockCache {
 public:
  std::shared_ptr<const dd::FlatMatrixDD> lookup(std::uint64_t key) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++lookups_;
    const auto it = map_.find(key);
    if (it == map_.end()) {
      return nullptr;
    }
    ++hits_;
    return it->second;
  }
  void insert(std::uint64_t key,
              std::shared_ptr<const dd::FlatMatrixDD> block) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    map_[key] = std::move(block);
  }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t lookups() const { return lookups_; }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const dd::FlatMatrixDD>>
      map_;
  std::uint64_t hits_ = 0;
  std::uint64_t lookups_ = 0;
};

TEST(Pipeline, SharedBlockCacheReusesPrebuiltBlocks) {
  // A DD-repeating circuit: the Grover iteration body is the cacheable unit.
  ir::Circuit circuit(5, 5, "grover_repeating");
  circuit.h(0); circuit.h(1); circuit.h(2); circuit.h(3); circuit.h(4);
  circuit.appendRepeated(algo::makeGroverIteration(5, 7), 4,
                         "grover-iteration");
  circuit.measureAll();

  StrategyConfig config = StrategyConfig::kOperations(4);
  config.reuseRepeatedBlocks = true;

  const auto uncached = simulate(circuit, config, 99);

  const auto cache = std::make_shared<MapBlockCache>();
  CircuitSimulator first(circuit, config, 99);
  first.setSharedBlockCache(cache);
  const auto firstResult = first.run();
  EXPECT_EQ(cache->hits(), 0U);  // built and published
  EXPECT_EQ(firstResult.classicalBits, uncached.classicalBits);

  CircuitSimulator second(circuit, config, 99);
  second.setSharedBlockCache(cache);
  const auto secondResult = second.run();
  EXPECT_GT(cache->hits(), 0U);  // imported instead of rebuilt
  EXPECT_GT(secondResult.stats.migratedNodes, 0U);
  EXPECT_EQ(secondResult.classicalBits, uncached.classicalBits);
}

}  // namespace
}  // namespace ddsim::sim
