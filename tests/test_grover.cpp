#include <gtest/gtest.h>

#include "algo/grover.hpp"
#include "baseline/statevector.hpp"
#include "sim/simulator.hpp"

namespace ddsim::algo {
namespace {

TEST(Grover, IterationCounts) {
  EXPECT_EQ(groverIterations(2), 1U);
  EXPECT_EQ(groverIterations(4), 3U);
  EXPECT_EQ(groverIterations(8), 12U);
  EXPECT_EQ(groverIterations(10), 25U);
}

TEST(Grover, RejectsBadArguments) {
  EXPECT_THROW(makeGroverCircuit(1, 0), std::invalid_argument);
  EXPECT_THROW(makeGroverCircuit(3, 8), std::invalid_argument);
}

TEST(Grover, CircuitShape) {
  const auto circuit = makeGroverCircuit(5, 17);
  EXPECT_EQ(circuit.numQubits(), 5U);
  // H layer + one compound op.
  EXPECT_EQ(circuit.numOps(), 6U);
  EXPECT_EQ(circuit.ops()[5]->kind(), ir::OpKind::Compound);
  const auto& comp = static_cast<const ir::CompoundOperation&>(*circuit.ops()[5]);
  EXPECT_EQ(comp.repetitions(), groverIterations(5));
}

class GroverMarkedTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(GroverMarkedTest, AmplifiesMarkedElement) {
  const auto [n, markedSeed] = GetParam();
  const std::uint64_t marked = markedSeed % (1ULL << n);
  const auto circuit = makeGroverCircuit(n, marked);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  const double p =
      simulator.package().getAmplitude(result.finalState, marked).mag2();
  // The optimal iteration count pushes success probability close to 1.
  EXPECT_GT(p, 0.8) << "n=" << n << " marked=" << marked;
  // And it dominates every other basis state.
  auto& pkg = simulator.package();
  for (std::uint64_t i = 0; i < (1ULL << n); ++i) {
    if (i != marked) {
      EXPECT_LT(pkg.getAmplitude(result.finalState, i).mag2(), p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, GroverMarkedTest,
    ::testing::Combine(::testing::Values(2U, 3U, 4U, 6U, 8U),
                       ::testing::Values(0ULL, 1ULL, 6ULL, 123456789ULL)));

TEST(Grover, MatchesDenseSimulation) {
  const auto circuit = makeGroverCircuit(6, 45);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  const auto dense = baseline::runOnStateVector(circuit);
  const auto got = simulator.package().getVector(result.finalState);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].r, dense.state.amplitudes()[i].real(), 1e-7);
    EXPECT_NEAR(got[i].i, dense.state.amplitudes()[i].imag(), 1e-7);
  }
}

TEST(Grover, DDRepeatingProducesSameState) {
  const auto circuit = makeGroverCircuit(7, 100);

  sim::CircuitSimulator plain(circuit, sim::StrategyConfig::sequential());
  const auto a = plain.run();

  sim::StrategyConfig repeating = sim::StrategyConfig::sequential();
  repeating.reuseRepeatedBlocks = true;
  sim::CircuitSimulator reusing(circuit, repeating);
  const auto b = reusing.run();

  const auto va = plain.package().getVector(a.finalState);
  const auto vb = reusing.package().getVector(b.finalState);
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i].r, vb[i].r, 1e-7);
    EXPECT_NEAR(va[i].i, vb[i].i, 1e-7);
  }
}

TEST(Grover, DDRepeatingDoesFarFewerMultiplications) {
  const auto circuit = makeGroverCircuit(9, 333);
  const auto seq =
      sim::simulate(circuit, sim::StrategyConfig::sequential());

  sim::StrategyConfig repeating = sim::StrategyConfig::sequential();
  repeating.reuseRepeatedBlocks = true;
  const auto reused = sim::simulate(circuit, repeating);

  // Once the block matrix exists, each iteration is a single MxV.
  EXPECT_LT(reused.stats.mxvCount, seq.stats.mxvCount / 4);
  EXPECT_GT(reused.stats.mxmCount, 0U);
}

TEST(Grover, DeepRunsKeepCompactDDs) {
  // Regression: with a loose canonicalization tolerance (1e-10), snapping
  // error re-injected on every operation de-synchronized shared subtrees
  // for particular marked elements and the 2-valued Grover state DD blew up
  // from ~40 nodes to hundreds of thousands within a few iterations.
  const std::size_t n = 19;
  const std::uint64_t marked = 900847ULL % (1ULL << n);
  const auto circuit = makeGroverCircuit(n, marked);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  EXPECT_LT(result.stats.peakStateNodes, 200U);
  EXPECT_LT(result.stats.finalStateNodes, 50U);
  const double p =
      simulator.package().getAmplitude(result.finalState, marked).mag2();
  EXPECT_GT(p, 0.99);
}

TEST(Grover, MeasurementFindsMarkedElement) {
  GroverOptions options;
  options.measure = true;
  const auto circuit = makeGroverCircuit(5, 19, options);
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto result = sim::simulate(circuit, {}, seed);
    std::uint64_t outcome = 0;
    for (std::size_t q = 0; q < 5; ++q) {
      outcome |= static_cast<std::uint64_t>(result.classicalBits[q]) << q;
    }
    hits += outcome == 19 ? 1 : 0;
  }
  EXPECT_GE(hits, 15);  // ~96% per-shot success probability
}

TEST(Grover, ExplicitIterationOverride) {
  GroverOptions options;
  options.iterations = 2;
  const auto circuit = makeGroverCircuit(4, 7, options);
  const auto& comp = static_cast<const ir::CompoundOperation&>(
      *circuit.ops()[circuit.numOps() - 1]);
  EXPECT_EQ(comp.repetitions(), 2U);
}

}  // namespace
}  // namespace ddsim::algo
