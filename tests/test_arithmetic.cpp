#include <gtest/gtest.h>

#include "algo/arithmetic.hpp"
#include "algo/numbertheory.hpp"
#include "algo/qft.hpp"
#include "baseline/statevector.hpp"
#include "sim/simulator.hpp"

namespace ddsim::algo {
namespace {

using ir::Circuit;
using ir::Control;
using ir::Qubit;

std::vector<Qubit> range(Qubit first, std::size_t count) {
  std::vector<Qubit> qs;
  for (std::size_t i = 0; i < count; ++i) {
    qs.push_back(static_cast<Qubit>(first + static_cast<Qubit>(i)));
  }
  return qs;
}

/// Run a unitary circuit from basis state |init> and return the basis state
/// it maps to (requires the result to be a computational basis state).
std::uint64_t mapBasisState(const Circuit& circuit, std::uint64_t init) {
  Circuit full(circuit.numQubits(), circuit.numClbits());
  for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
    if (((init >> q) & 1U) != 0) {
      full.x(static_cast<Qubit>(q));
    }
  }
  full.appendCircuit(circuit);
  sim::CircuitSimulator simulator(full);
  const auto result = simulator.run();
  auto& pkg = simulator.package();
  std::mt19937_64 rng(1);
  dd::VEdge state = result.finalState;
  const std::uint64_t outcome = pkg.measureAll(state, rng, false);
  // Verify it really is a basis state.
  EXPECT_NEAR(pkg.getAmplitude(state, outcome).mag2(), 1.0, 1e-7)
      << "result is not a basis state";
  return outcome;
}

class AdderTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(AdderTest, AddsModuloPowerOfTwo) {
  const auto [n, a] = GetParam();
  const Circuit adder = makeAdderCircuit(n, a);
  const std::uint64_t mask = (1ULL << n) - 1;
  for (std::uint64_t x : {0ULL, 1ULL, 3ULL, (1ULL << n) - 1, (1ULL << n) / 2}) {
    x &= mask;
    EXPECT_EQ(mapBasisState(adder, x), (x + a) & mask)
        << "n=" << n << " a=" << a << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdderTest,
                         ::testing::Combine(::testing::Values(2U, 3U, 5U),
                                            ::testing::Values(0U, 1U, 5U, 11U)));

TEST(PhiAdd, ControlledAdderRespectsControl) {
  // 4 value qubits + 1 control on top.
  const std::size_t n = 4;
  Circuit circuit(n + 1);
  const auto reg = range(0, n);
  appendQFT(circuit, reg, false);
  appendPhiAdd(circuit, reg, 5, false, {Control{static_cast<Qubit>(n)}});
  appendInverseQFT(circuit, reg, false);

  EXPECT_EQ(mapBasisState(circuit, 3), 3U);            // control 0: no-op
  EXPECT_EQ(mapBasisState(circuit, 3 | (1U << n)), (8U | (1U << n)));
}

TEST(PhiAdd, SubtractIsInverse) {
  const std::size_t n = 4;
  Circuit circuit(n);
  const auto reg = range(0, n);
  appendQFT(circuit, reg, false);
  appendPhiAdd(circuit, reg, 7);
  appendPhiAdd(circuit, reg, 7, /*subtract=*/true);
  appendInverseQFT(circuit, reg, false);
  for (std::uint64_t x = 0; x < (1U << n); x += 3) {
    EXPECT_EQ(mapBasisState(circuit, x), x);
  }
}

class PhiAddModTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(PhiAddModTest, ModularAdditionOnAllResidues) {
  const auto [N, a] = GetParam();
  const std::size_t n = bitLength(N);
  // Layout: b = 0..n, ancilla = n+1, two controls n+2, n+3.
  const std::size_t width = n + 4;
  const auto b = range(0, n + 1);
  const Qubit anc = static_cast<Qubit>(n + 1);
  const Qubit c1 = static_cast<Qubit>(n + 2);
  const Qubit c2 = static_cast<Qubit>(n + 3);

  Circuit circuit(width);
  appendQFT(circuit, b, false);
  appendCCPhiAddMod(circuit, b, anc, a, N, {Control{c1}, Control{c2}});
  appendInverseQFT(circuit, b, false);

  const std::uint64_t ctrlMask = (1ULL << c1) | (1ULL << c2);
  for (std::uint64_t x = 0; x < N; ++x) {
    // Both controls set: modular addition.
    EXPECT_EQ(mapBasisState(circuit, x | ctrlMask), ((x + a) % N) | ctrlMask)
        << "N=" << N << " a=" << a << " x=" << x;
  }
  // One control set only: identity (and ancilla restored).
  EXPECT_EQ(mapBasisState(circuit, 2 | (1ULL << c1)), 2 | (1ULL << c1));
}

INSTANTIATE_TEST_SUITE_P(Instances, PhiAddModTest,
                         ::testing::Values(std::make_tuple(5U, 3U),
                                           std::make_tuple(7U, 1U),
                                           std::make_tuple(7U, 6U),
                                           std::make_tuple(15U, 8U),
                                           std::make_tuple(13U, 12U)));

TEST(CMultMod, MultiplyAccumulate) {
  const std::uint64_t N = 7;
  const std::uint64_t a = 3;
  const std::size_t n = bitLength(N);
  // Layout: b = 0..n, x = n+1..2n, ancilla = 2n+1, control = 2n+2.
  const std::size_t width = 2 * n + 3;
  const auto b = range(0, n + 1);
  const auto x = range(static_cast<Qubit>(n + 1), n);
  const Qubit anc = static_cast<Qubit>(2 * n + 1);
  const Qubit ctrl = static_cast<Qubit>(2 * n + 2);

  Circuit circuit(width);
  appendCMultMod(circuit, x, b, anc, a, N, ctrl);

  for (std::uint64_t xv = 0; xv < N; ++xv) {
    const std::uint64_t init = (xv << (n + 1)) | (1ULL << ctrl);
    const std::uint64_t expectB = a * xv % N;
    EXPECT_EQ(mapBasisState(circuit, init),
              (expectB | init))
        << "x=" << xv;
    // Control off: identity.
    EXPECT_EQ(mapBasisState(circuit, xv << (n + 1)), xv << (n + 1));
  }
}

class CUaTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(CUaTest, ModularMultiplicationInPlace) {
  const auto [N, a] = GetParam();
  ASSERT_EQ(gcd(a, N), 1U);
  const std::size_t n = bitLength(N);
  const std::size_t width = 2 * n + 3;
  const auto b = range(0, n + 1);
  const auto x = range(static_cast<Qubit>(n + 1), n);
  const Qubit anc = static_cast<Qubit>(2 * n + 1);
  const Qubit ctrl = static_cast<Qubit>(2 * n + 2);

  Circuit circuit(width);
  appendCUa(circuit, x, b, anc, a, N, ctrl);

  for (std::uint64_t xv = 1; xv < N; ++xv) {
    const std::uint64_t init = (xv << (n + 1)) | (1ULL << ctrl);
    const std::uint64_t expected =
        ((a * xv % N) << (n + 1)) | (1ULL << ctrl);
    EXPECT_EQ(mapBasisState(circuit, init), expected)
        << "N=" << N << " a=" << a << " x=" << xv;
  }
}

INSTANTIATE_TEST_SUITE_P(Instances, CUaTest,
                         ::testing::Values(std::make_tuple(5U, 2U),
                                           std::make_tuple(7U, 3U),
                                           std::make_tuple(9U, 4U),
                                           std::make_tuple(15U, 7U)));

TEST(CUa, RejectsNonCoprimeMultiplier) {
  Circuit circuit(9);
  EXPECT_THROW(
      appendCUa(circuit, range(4, 3), range(0, 4), 7, 3, 9, 8),
      std::invalid_argument);
}

}  // namespace
}  // namespace ddsim::algo
