/// Tests for the distributed front-end: consistent-hash ring properties
/// (bounded skew, minimal remapping), the stats-merge invariants, and
/// end-to-end routing over in-process WorkerServers — cache affinity
/// (identical jobs -> one simulation cluster-wide), byte-identical results
/// vs a direct SimulationService run, and worker-death re-routing with
/// zero lost jobs. Thread-interleaving tests are written to pass under
/// TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/hash.hpp"
#include "ir/qasm.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "router/router.hpp"
#include "serve/service.hpp"

namespace ddsim {
namespace {

constexpr const char* kBellQasm = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
)";

constexpr const char* kGhzQasm = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
)";

/// Deterministic pseudo-random 64-bit stream for ring experiments.
std::uint64_t mix(std::uint64_t i) { return ir::hashCombine(0x9E3779B9, i); }

// --------------------------------------------------------------- HashRing

TEST(HashRing, EmptyRingThrows) {
  router::HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.lookup(42), router::RouterError);
}

TEST(HashRing, LookupIsDeterministicAndMembershipTracks) {
  router::HashRing ring;
  ring.add("a:1");
  ring.add("b:2");
  ring.add("b:2");  // idempotent
  EXPECT_EQ(ring.size(), 2U);
  EXPECT_TRUE(ring.contains("a:1"));
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.lookup(mix(i)), ring.lookup(mix(i)));
  }
  ring.remove("a:1");
  ring.remove("a:1");  // idempotent
  EXPECT_EQ(ring.size(), 1U);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.lookup(mix(i)), "b:2");
  }
}

TEST(HashRing, DistributionSkewIsBounded) {
  // With 64 virtual nodes per worker, no worker's share of 1000 uniform
  // hashes should stray far from fair. The bound is loose (2x fair share)
  // — it catches broken point placement, not statistical noise.
  router::HashRing ring(64);
  const std::vector<std::string> workers = {"10.0.0.1:4000", "10.0.0.2:4000",
                                            "10.0.0.3:4000", "10.0.0.4:4000"};
  for (const auto& w : workers) {
    ring.add(w);
  }
  std::map<std::string, std::size_t> share;
  constexpr std::size_t kHashes = 1000;
  for (std::uint64_t i = 0; i < kHashes; ++i) {
    ++share[ring.lookup(mix(i))];
  }
  EXPECT_EQ(share.size(), workers.size()) << "some worker owns nothing";
  for (const auto& [worker, count] : share) {
    EXPECT_GT(count, kHashes / workers.size() / 2)
        << worker << " owns too little";
    EXPECT_LT(count, 2 * kHashes / workers.size())
        << worker << " owns too much";
  }
}

TEST(HashRing, JoinAndLeaveRemapMinimally) {
  router::HashRing ring(64);
  ring.add("w1:1");
  ring.add("w2:1");
  ring.add("w3:1");
  constexpr std::size_t kHashes = 1000;
  std::vector<std::string> before;
  before.reserve(kHashes);
  for (std::uint64_t i = 0; i < kHashes; ++i) {
    before.push_back(ring.lookup(mix(i)));
  }
  // Join: only hashes that MOVE TO the new worker may change owners.
  ring.add("w4:1");
  std::size_t moved = 0;
  for (std::uint64_t i = 0; i < kHashes; ++i) {
    const std::string& now = ring.lookup(mix(i));
    if (now != before[i]) {
      ++moved;
      EXPECT_EQ(now, "w4:1") << "hash " << i
                             << " moved between pre-existing workers";
    }
  }
  // Expect roughly 1/4 to move; assert well under half as the hard bound.
  EXPECT_GT(moved, 0U);
  EXPECT_LT(moved, kHashes / 2);
  // Leave: removing w4 restores the original assignment exactly.
  ring.remove("w4:1");
  for (std::uint64_t i = 0; i < kHashes; ++i) {
    EXPECT_EQ(ring.lookup(mix(i)), before[i]);
  }
}

// ------------------------------------------------------------ stats merge

TEST(StatsMerge, HistogramSnapshotsMergeBucketwise) {
  obs::Histogram a;
  obs::Histogram b;
  for (int i = 1; i <= 100; ++i) {
    a.observe(i * 1e-4);
  }
  for (int i = 1; i <= 50; ++i) {
    b.observe(i * 1e-2);
  }
  const obs::HistogramSnapshot sa = a.snapshot();
  const obs::HistogramSnapshot sb = b.snapshot();
  const obs::HistogramSnapshot merged = obs::mergeHistogramSnapshots(sa, sb);
  EXPECT_EQ(merged.count, sa.count + sb.count);
  EXPECT_DOUBLE_EQ(merged.max, std::max(sa.max, sb.max));
  std::uint64_t bucketTotal = 0;
  for (const auto& [bound, count] : merged.buckets) {
    bucketTotal += count;
  }
  EXPECT_EQ(bucketTotal, merged.count);
  // Merging must equal observing everything into one histogram: same
  // buckets, same quantiles (the p-fields are recomputed, never added).
  obs::Histogram all;
  for (int i = 1; i <= 100; ++i) {
    all.observe(i * 1e-4);
  }
  for (int i = 1; i <= 50; ++i) {
    all.observe(i * 1e-2);
  }
  const obs::HistogramSnapshot expected = all.snapshot();
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_DOUBLE_EQ(merged.p50, expected.p50);
  EXPECT_DOUBLE_EQ(merged.p95, expected.p95);
  EXPECT_DOUBLE_EQ(merged.p99, expected.p99);
}

TEST(StatsMerge, CountersSumAndDerivedFieldsRecompute) {
  serve::ServiceStats a;
  a.workers = 2;
  a.elapsedSeconds = 10.0;
  a.submitted = 8;
  a.completed = 6;
  a.cached = 2;
  a.simulationsRun = 6;
  a.queueLatencyMeanSeconds = 0.5;
  a.queueLatencyMaxSeconds = 2.0;
  a.execSecondsTotal = 5.0;
  a.cache.hits = 2;
  a.retriesScheduled = 1;
  serve::ServiceStats b;
  b.workers = 3;
  b.elapsedSeconds = 4.0;
  b.submitted = 4;
  b.completed = 2;
  b.cached = 2;
  b.simulationsRun = 2;
  b.queueLatencyMeanSeconds = 1.0;
  b.queueLatencyMaxSeconds = 1.5;
  b.execSecondsTotal = 3.0;
  b.cache.hits = 2;
  b.retriesScheduled = 3;

  serve::ServiceStats into;
  serve::mergeStats(into, a);
  serve::mergeStats(into, b);
  EXPECT_EQ(into.workers, 5U);
  EXPECT_DOUBLE_EQ(into.elapsedSeconds, 10.0);  // max, not sum
  EXPECT_EQ(into.submitted, 12U);
  EXPECT_EQ(into.completed, 8U);
  EXPECT_EQ(into.cached, 4U);
  EXPECT_EQ(into.simulationsRun, 8U);
  EXPECT_EQ(into.cache.hits, 4U);
  EXPECT_EQ(into.retriesScheduled, 4U);
  EXPECT_DOUBLE_EQ(into.queueLatencyMaxSeconds, 2.0);
  EXPECT_DOUBLE_EQ(into.execSecondsTotal, 8.0);
  // Weighted mean over finished jobs: (8*0.5 + 4*1.0) / 12.
  EXPECT_NEAR(into.queueLatencyMeanSeconds, (8 * 0.5 + 4 * 1.0) / 12.0,
              1e-12);
  // Throughput re-derived from merged totals, not added.
  EXPECT_NEAR(into.jobsPerSecond, 12.0 / 10.0, 1e-12);
}

// ---------------------------------------------------------------- cluster

struct Cluster {
  std::vector<std::unique_ptr<net::WorkerServer>> workers;
  std::vector<std::string> endpoints;

  explicit Cluster(std::size_t n, serve::ServiceConfig config = {}) {
    config.workers = 1;
    for (std::size_t i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<net::WorkerServer>(config, 0));
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(workers.back()->port()));
    }
  }
  ~Cluster() {
    for (auto& w : workers) {
      w->requestStop();
    }
  }

  [[nodiscard]] router::RouterConfig routerConfig() const {
    router::RouterConfig rc;
    rc.workers = endpoints;
    return rc;
  }
};

router::RouterJob bellJob(const std::string& label, std::uint64_t seed) {
  router::RouterJob job;
  job.label = label;
  job.qasm = kBellQasm;
  job.seed = seed;
  return job;
}

TEST(Router, IdenticalJobsRunOneSimulationClusterWide) {
  Cluster cluster(3);
  router::Router r(cluster.routerConfig());
  r.connect();
  EXPECT_EQ(r.liveWorkers(), 3U);

  // 6 submissions of the SAME job (identical cache identity).
  std::vector<router::RouterJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(bellJob("dup#" + std::to_string(i), 7));
  }
  const auto results = r.run(jobs);
  ASSERT_EQ(results.size(), 6U);
  std::set<std::string> workersUsed;
  for (const auto& res : results) {
    EXPECT_FALSE(res.lost);
    EXPECT_EQ(res.payload.status, net::wireStatus(serve::JobStatus::Completed))
        << res.payload.error;
    EXPECT_EQ(res.payload.classicalBits, results[0].payload.classicalBits);
    workersUsed.insert(res.worker);
  }
  // Consistent hashing: every duplicate landed on the same shard...
  EXPECT_EQ(workersUsed.size(), 1U);
  // ...and the cluster simulated exactly once (the rest coalesced/cached).
  const router::ClusterStats stats = r.clusterStats();
  EXPECT_EQ(stats.shards.size(), 3U);
  EXPECT_EQ(stats.aggregate.simulationsRun, 1U);
  // Every submission resolved on that one shard — as the simulation, a
  // coalesced follower of it, or a cache hit (completed counts coalesced
  // followers too).
  EXPECT_EQ(stats.aggregate.submitted, 6U);
  EXPECT_EQ(stats.aggregate.completed + stats.aggregate.cached, 6U);
  r.shutdown();
}

TEST(Router, ResultsMatchDirectServiceRun) {
  // Distributed answers must be byte-identical to a single-process run of
  // the same (circuit, config, seed) triples.
  std::vector<router::RouterJob> jobs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    router::RouterJob job;
    job.label = "ghz-" + std::to_string(seed);
    job.qasm = kGhzQasm;
    job.seed = seed;
    jobs.push_back(job);
  }

  std::vector<std::vector<bool>> direct;
  {
    serve::ServiceConfig config;
    config.workers = 1;
    serve::SimulationService service(config);
    for (const auto& job : jobs) {
      serve::JobSpec spec;
      spec.circuit = std::make_shared<const ir::Circuit>(
          ir::parseQasm(job.qasm));
      spec.config = job.config;
      spec.seed = job.seed;
      auto handle = service.trySubmit(std::move(spec));
      ASSERT_TRUE(handle.has_value());
      direct.push_back(handle->wait().classicalBits);
    }
    service.shutdown(true);
  }

  Cluster cluster(2);
  router::Router r(cluster.routerConfig());
  r.connect();
  const auto results = r.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].lost);
    EXPECT_EQ(results[i].payload.classicalBits, direct[i])
        << "job " << i << " diverged from the direct run";
  }
  r.shutdown();
}

TEST(Router, WorkerDeathReroutesWithZeroLostJobs) {
  Cluster cluster(3);
  router::RouterConfig rc = cluster.routerConfig();
  rc.retry.maxAttempts = 4;
  router::Router r(rc);
  r.connect();

  // Enough distinct jobs that every shard owns some.
  std::vector<router::RouterJob> jobs;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    jobs.push_back(bellJob("j" + std::to_string(seed), seed));
  }
  // Kill one worker while the batch is in flight. abortHard tears the
  // sockets down mid-conversation (raw EOF, no goodbye) — exactly what a
  // SIGKILLed process looks like to the router.
  std::thread killer([&] { cluster.workers[0]->abortHard(); });
  const auto results = r.run(jobs);
  killer.join();

  ASSERT_EQ(results.size(), jobs.size());
  for (const auto& res : results) {
    EXPECT_FALSE(res.lost) << res.payload.error;
    EXPECT_EQ(res.payload.status,
              net::wireStatus(serve::JobStatus::Completed))
        << res.payload.error;
  }
  EXPECT_LE(r.liveWorkers(), 2U);
  const router::RouterCounters c = r.counters();
  EXPECT_EQ(c.lostJobs, 0U);
  EXPECT_EQ(c.resultsReceived, jobs.size());
  r.shutdown();
}

TEST(Router, AllWorkersDeadMarksJobsLostNotHung) {
  Cluster cluster(1);
  router::RouterConfig rc = cluster.routerConfig();
  rc.retry.maxAttempts = 2;
  router::Router r(rc);
  r.connect();
  cluster.workers[0]->abortHard();  // die before the batch

  const auto results = r.run({bellJob("doomed", 1)});
  ASSERT_EQ(results.size(), 1U);
  EXPECT_TRUE(results[0].lost);
  EXPECT_FALSE(results[0].payload.error.empty());
  EXPECT_EQ(r.liveWorkers(), 0U);
  r.shutdown();
}

TEST(Router, UnparseableJobFailsRouterSideWithoutAWorker)
{
  Cluster cluster(1);
  router::Router r(cluster.routerConfig());
  r.connect();
  router::RouterJob bad;
  bad.label = "garbage";
  bad.qasm = "not qasm at all";
  const auto results = r.run({bad});
  ASSERT_EQ(results.size(), 1U);
  EXPECT_FALSE(results[0].lost);
  EXPECT_EQ(results[0].payload.status,
            net::wireStatus(serve::JobStatus::Failed));
  EXPECT_FALSE(results[0].payload.error.empty());
  EXPECT_EQ(r.counters().submissionsSent, 0U);
  r.shutdown();
}

TEST(Router, ClusterStatsAggregateEqualsShardMerge) {
  Cluster cluster(2);
  router::Router r(cluster.routerConfig());
  r.connect();
  std::vector<router::RouterJob> jobs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    jobs.push_back(bellJob("s" + std::to_string(seed), seed));
  }
  const auto results = r.run(jobs);
  for (const auto& res : results) {
    ASSERT_FALSE(res.lost);
  }
  const router::ClusterStats stats = r.clusterStats();
  ASSERT_EQ(stats.shards.size(), 2U);
  serve::ServiceStats expected;
  for (const auto& [endpoint, shard] : stats.shards) {
    serve::mergeStats(expected, shard);
  }
  EXPECT_EQ(stats.aggregate.toJson(), expected.toJson());
  EXPECT_EQ(stats.aggregate.submitted, 6U);
  r.shutdown();
}

TEST(Router, ShutdownIsIdempotentAndDestructorSafe) {
  Cluster cluster(1);
  router::Router r(cluster.routerConfig());
  r.connect();
  const auto results = r.run({bellJob("one", 1)});
  ASSERT_EQ(results.size(), 1U);
  r.shutdown();
  r.shutdown();  // second call is a no-op; destructor runs a third
}

}  // namespace
}  // namespace ddsim
