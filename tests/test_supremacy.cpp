#include <gtest/gtest.h>

#include "algo/supremacy.hpp"
#include "baseline/statevector.hpp"
#include "sim/simulator.hpp"

namespace ddsim::algo {
namespace {

TEST(Supremacy, RejectsBadGrids) {
  EXPECT_THROW(makeSupremacyCircuit({0, 4, 8, 1}), std::invalid_argument);
  EXPECT_THROW(makeSupremacyCircuit({1, 1, 8, 1}), std::invalid_argument);
  EXPECT_THROW(makeSupremacyCircuit({8, 8, 8, 1}), std::invalid_argument);
}

TEST(Supremacy, DeterministicForFixedSeed) {
  const SupremacyOptions options{3, 3, 10, 1234};
  const auto a = makeSupremacyCircuit(options);
  const auto b = makeSupremacyCircuit(options);
  ASSERT_EQ(a.numOps(), b.numOps());
  for (std::size_t i = 0; i < a.numOps(); ++i) {
    EXPECT_EQ(a.ops()[i]->toString(), b.ops()[i]->toString());
  }
}

TEST(Supremacy, DifferentSeedsDiffer) {
  const auto a = makeSupremacyCircuit({3, 3, 12, 1});
  const auto b = makeSupremacyCircuit({3, 3, 12, 2});
  bool anyDifference = a.numOps() != b.numOps();
  for (std::size_t i = 0; !anyDifference && i < a.numOps(); ++i) {
    anyDifference = a.ops()[i]->toString() != b.ops()[i]->toString();
  }
  EXPECT_TRUE(anyDifference);
}

TEST(Supremacy, StartsWithHadamardLayer) {
  const auto circuit = makeSupremacyCircuit({2, 3, 4, 7});
  for (std::size_t q = 0; q < 6; ++q) {
    const auto& op = static_cast<const ir::StandardOperation&>(*circuit.ops()[q]);
    EXPECT_EQ(op.type(), ir::GateType::H);
    EXPECT_EQ(op.targets()[0], static_cast<ir::Qubit>(q));
  }
}

TEST(Supremacy, FirstSingleQubitGateOnEachQubitIsT) {
  const auto circuit = makeSupremacyCircuit({3, 3, 16, 99});
  std::vector<bool> seenSingle(9, false);
  for (const auto& op : circuit.ops()) {
    const auto& s = static_cast<const ir::StandardOperation&>(*op);
    if (s.type() == ir::GateType::H || !s.controls().empty()) {
      continue;
    }
    const auto q = static_cast<std::size_t>(s.targets()[0]);
    if (!seenSingle[q]) {
      EXPECT_EQ(s.type(), ir::GateType::T) << "qubit " << q;
      seenSingle[q] = true;
    } else {
      EXPECT_TRUE(s.type() == ir::GateType::SX || s.type() == ir::GateType::SY);
    }
  }
}

TEST(Supremacy, NoImmediateRepetitionOfSqrtGates) {
  const auto circuit = makeSupremacyCircuit({4, 4, 32, 5});
  std::vector<ir::GateType> last(16, ir::GateType::I);
  for (const auto& op : circuit.ops()) {
    const auto& s = static_cast<const ir::StandardOperation&>(*op);
    if (s.type() != ir::GateType::SX && s.type() != ir::GateType::SY) {
      continue;
    }
    const auto q = static_cast<std::size_t>(s.targets()[0]);
    EXPECT_NE(s.type(), last[q]) << "repeated sqrt gate on qubit " << q;
    last[q] = s.type();
  }
}

TEST(Supremacy, CZLayersTouchDisjointPairs) {
  const auto circuit = makeSupremacyCircuit({4, 4, 8, 11});
  // Within one cycle (between single-qubit bursts) CZs must be disjoint.
  std::vector<bool> used(16, false);
  for (const auto& op : circuit.ops()) {
    const auto& s = static_cast<const ir::StandardOperation&>(*op);
    if (s.controls().empty()) {
      std::fill(used.begin(), used.end(), false);  // new cycle boundary proxy
      continue;
    }
    const auto a = static_cast<std::size_t>(s.controls()[0].qubit);
    const auto b = static_cast<std::size_t>(s.targets()[0]);
    EXPECT_FALSE(used[a]);
    EXPECT_FALSE(used[b]);
    used[a] = true;
    used[b] = true;
  }
}

TEST(Supremacy, MatchesDenseSimulation) {
  const auto circuit = makeSupremacyCircuit({3, 3, 12, 77});
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  const auto dense = baseline::runOnStateVector(circuit);
  const auto got = simulator.package().getVector(result.finalState);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].r, dense.state.amplitudes()[i].real(), 1e-8);
    EXPECT_NEAR(got[i].i, dense.state.amplitudes()[i].imag(), 1e-8);
  }
}

TEST(Supremacy, StrategiesAgree) {
  const auto circuit = makeSupremacyCircuit({4, 4, 16, 3});
  sim::CircuitSimulator seq(circuit, sim::StrategyConfig::sequential());
  sim::CircuitSimulator k4(circuit, sim::StrategyConfig::kOperations(4));
  const auto a = seq.run();
  const auto b = k4.run();
  // Compare via fidelity computed in the first package after rebuilding.
  const auto va = seq.package().getVector(a.finalState);
  const auto vb = k4.package().getVector(b.finalState);
  double overlapR = 0;
  double overlapI = 0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    // conj(va) * vb
    overlapR += va[i].r * vb[i].r + va[i].i * vb[i].i;
    overlapI += va[i].r * vb[i].i - va[i].i * vb[i].r;
  }
  EXPECT_NEAR(overlapR * overlapR + overlapI * overlapI, 1.0, 1e-7);
}

TEST(Supremacy, NameEncodesDepthAndQubits) {
  const auto circuit = makeSupremacyCircuit({4, 5, 13, 2});
  EXPECT_EQ(circuit.name(), "supremacy_13_20");
}

}  // namespace
}  // namespace ddsim::algo
