/// Tests for the distributed-serving wire layer: explicit little-endian
/// primitives, the length-prefixed checksummed frame protocol (including
/// the full corruption matrix — truncation, bit flips, bad magic — which
/// must always surface as a clean FrameError, never undefined behaviour),
/// the loopback TCP transport and the WorkerServer conversation.
/// Thread-interleaving tests are written to pass under TSan.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "serve/service.hpp"

namespace ddsim {
namespace {

constexpr const char* kBellQasm = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
)";

// ------------------------------------------------------- wire primitives

TEST(Wire, LittleEndianGoldenBytes) {
  std::vector<std::uint8_t> out;
  net::putU16(out, 0x1234);
  net::putU32(out, 0xAABBCCDDU);
  net::putU64(out, 0x1122334455667788ULL);
  const std::vector<std::uint8_t> expected = {
      0x34, 0x12,                                      // u16 LSB first
      0xDD, 0xCC, 0xBB, 0xAA,                          // u32
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // u64
  };
  EXPECT_EQ(out, expected);
}

TEST(Wire, RoundTripAllPrimitives) {
  std::vector<std::uint8_t> out;
  net::putU8(out, 200);
  net::putU16(out, 65535);
  net::putU32(out, 4000000000U);
  net::putU64(out, std::numeric_limits<std::uint64_t>::max());
  net::putI32(out, -12345);
  net::putF64(out, -0.12345678901234567);
  net::putString(out, "hello \xE2\x9C\x93 world");
  net::putBytes(out, {1, 2, 3});
  net::putBits(out, {true, false, true, true, false, true, false, true,
                     true});  // 9 bits: crosses a byte boundary

  net::WireReader r(out.data(), out.size());
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 4000000000U);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.f64(), -0.12345678901234567);
  EXPECT_EQ(r.string(), "hello \xE2\x9C\x93 world");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.bits(), (std::vector<bool>{true, false, true, true, false,
                                         true, false, true, true}));
  EXPECT_EQ(r.remaining(), 0U);
}

TEST(Wire, TruncatedReadsThrowCleanly) {
  std::vector<std::uint8_t> out;
  net::putU64(out, 42);
  {
    net::WireReader r(out.data(), 7);  // one byte short
    EXPECT_THROW((void)r.u64(), net::WireError);
  }
  // A string whose declared length exceeds the buffer must not read past
  // the end.
  std::vector<std::uint8_t> lying;
  net::putU32(lying, 1000);
  lying.push_back('x');
  net::WireReader r(lying.data(), lying.size());
  EXPECT_THROW((void)r.string(), net::WireError);
}

TEST(Wire, BitCountOverflowIsRejected) {
  // A bit vector claiming ~2^63 entries must not overflow the byte-count
  // arithmetic into a small allocation.
  std::vector<std::uint8_t> lying;
  net::putU64(lying, std::numeric_limits<std::uint64_t>::max() - 6);
  lying.push_back(0xFF);
  net::WireReader r(lying.data(), lying.size());
  EXPECT_THROW((void)r.bits(), net::WireError);
}

// ----------------------------------------------------------- frame layer

TEST(Frame, HeaderGoldenBytes) {
  const net::Frame frame{net::FrameType::Hello, {0x01, 0x02}};
  const std::vector<std::uint8_t> bytes = net::encodeFrame(frame);
  ASSERT_EQ(bytes.size(), net::kFrameHeaderSize + 2);
  // magic "DDSF" little-endian, version 1, type Hello, reserved 0,
  // length 2 — all byte positions pinned so the format cannot silently
  // drift.
  EXPECT_EQ(bytes[0], 0x44);  // 'D'
  EXPECT_EQ(bytes[1], 0x44);  // 'D'
  EXPECT_EQ(bytes[2], 0x53);  // 'S'
  EXPECT_EQ(bytes[3], 0x46);  // 'F'
  EXPECT_EQ(bytes[4], 0x01);
  EXPECT_EQ(bytes[5], 0x00);
  EXPECT_EQ(bytes[6], 0x01);  // FrameType::Hello
  EXPECT_EQ(bytes[7], 0x00);  // reserved
  EXPECT_EQ(bytes[8], 0x02);  // payload length
  EXPECT_EQ(bytes[9], 0x00);
  EXPECT_EQ(bytes[10], 0x00);
  EXPECT_EQ(bytes[11], 0x00);

  const net::Frame back = net::decodeFrame(bytes);
  EXPECT_EQ(back.type, net::FrameType::Hello);
  EXPECT_EQ(back.payload, frame.payload);
}

TEST(Frame, CorruptionMatrixThrowsNeverUB) {
  const net::Frame frame{net::FrameType::Submit,
                         {0xDE, 0xAD, 0xBE, 0xEF, 0x42}};
  const std::vector<std::uint8_t> good = net::encodeFrame(frame);
  ASSERT_NO_THROW((void)net::decodeFrame(good));

  // Truncation at every single length below the full frame.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW((void)net::decodeFrame(good.data(), len), net::FrameError)
        << "truncated to " << len;
  }
  // Trailing garbage (length field inconsistent with the buffer).
  {
    std::vector<std::uint8_t> longer = good;
    longer.push_back(0x00);
    EXPECT_THROW((void)net::decodeFrame(longer), net::FrameError);
  }
  // A bit flip in EVERY byte must be caught: header fields by their
  // validators, payload bytes by the checksum.
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x01;
    EXPECT_THROW((void)net::decodeFrame(bad), net::FrameError)
        << "bit flip at byte " << i;
  }
  // Unknown frame types on both sides of the valid range.
  for (const std::uint8_t type : {0x00, 0x09, 0xFF}) {
    std::vector<std::uint8_t> bad = good;
    bad[6] = type;
    EXPECT_THROW((void)net::decodeFrame(bad), net::FrameError);
  }
  // Oversized declared length.
  {
    std::vector<std::uint8_t> bad = good;
    const std::uint32_t huge = net::kMaxFramePayload + 1;
    std::memcpy(&bad[8], &huge, sizeof huge);
    EXPECT_THROW((void)net::decodeFrameHeader(bad.data()), net::FrameError);
  }
}

TEST(Frame, PayloadRoundTrips) {
  {
    net::HelloPayload p;
    const auto back = net::decodeHello(net::encodeHello(p));
    EXPECT_EQ(back.wireVersion, net::kWireVersion);
    EXPECT_EQ(back.software, "ddsim_serve");
  }
  {
    net::SubmitPayload p;
    p.jobId = 77;
    p.label = "bell";
    p.qasm = kBellQasm;
    p.config.schedule = sim::Schedule::KOperations;
    p.config.k = 4;
    p.config.pipeline = true;
    p.config.pipelineDepth = 3;
    p.config.threads = 2;
    p.config.checkpointIntervalOps = 128;
    p.config.nodeBudget = 1000;
    p.config.adaptiveRatio = 0.75;
    p.seed = 12345;
    p.priority = serve::JobPriority::High;
    p.deadlineSeconds = 2.5;
    p.detectRepetitions = true;
    p.checkpoint = {9, 8, 7};
    const auto back = net::decodeSubmit(net::encodeSubmit(p));
    EXPECT_EQ(back.jobId, 77U);
    EXPECT_EQ(back.label, "bell");
    EXPECT_EQ(back.qasm, kBellQasm);
    EXPECT_EQ(back.config.schedule, sim::Schedule::KOperations);
    EXPECT_EQ(back.config.k, 4U);
    EXPECT_TRUE(back.config.pipeline);
    EXPECT_EQ(back.config.pipelineDepth, 3U);
    EXPECT_EQ(back.config.threads, 2U);
    EXPECT_EQ(back.config.checkpointIntervalOps, 128U);
    EXPECT_EQ(back.config.nodeBudget, 1000U);
    EXPECT_EQ(back.config.adaptiveRatio, 0.75);
    EXPECT_EQ(back.seed, 12345U);
    EXPECT_EQ(back.priority, serve::JobPriority::High);
    EXPECT_EQ(back.deadlineSeconds, 2.5);
    EXPECT_TRUE(back.detectRepetitions);
    EXPECT_EQ(back.checkpoint, (std::vector<std::uint8_t>{9, 8, 7}));
    // The config hash must survive the wire bit-exactly — routing and
    // result-cache identity depend on it.
    EXPECT_EQ(back.config.contentHash(), p.config.contentHash());
  }
  {
    net::ResultPayload p;
    p.jobId = 99;
    p.status = net::wireStatus(serve::JobStatus::Completed);
    p.classicalBits = {true, false, true};
    p.stats.appliedGates = 42;
    p.stats.peakStateNodes = 17;
    p.hasPartial = true;
    p.partial.opsCompleted = 7;
    p.partial.peakLiveNodes = 5;
    p.partial.elapsedSeconds = 0.25;
    p.error = "nope";
    p.queueSeconds = 0.5;
    p.runSeconds = 1.5;
    p.fromCache = true;
    p.coalesced = true;
    p.attempts = 3;
    p.resumed = true;
    const auto back = net::decodeResult(net::encodeResult(p));
    EXPECT_EQ(back.jobId, 99U);
    EXPECT_EQ(back.status, net::wireStatus(serve::JobStatus::Completed));
    EXPECT_EQ(back.classicalBits, (std::vector<bool>{true, false, true}));
    EXPECT_EQ(back.stats.appliedGates, 42U);
    EXPECT_EQ(back.stats.peakStateNodes, 17U);
    ASSERT_TRUE(back.hasPartial);
    EXPECT_EQ(back.partial.opsCompleted, 7U);
    EXPECT_EQ(back.partial.peakLiveNodes, 5U);
    EXPECT_EQ(back.partial.elapsedSeconds, 0.25);
    EXPECT_EQ(back.error, "nope");
    EXPECT_EQ(back.queueSeconds, 0.5);
    EXPECT_EQ(back.runSeconds, 1.5);
    EXPECT_TRUE(back.fromCache);
    EXPECT_TRUE(back.coalesced);
    EXPECT_EQ(back.attempts, 3U);
    EXPECT_TRUE(back.resumed);
  }
  {
    const auto back = net::decodeCheckpoint(
        net::encodeCheckpoint({123, {0xAA, 0xBB}}));
    EXPECT_EQ(back.jobId, 123U);
    EXPECT_EQ(back.blob, (std::vector<std::uint8_t>{0xAA, 0xBB}));
  }
  {
    EXPECT_EQ(net::decodeGoodbye(net::encodeGoodbye({"bye"})).reason, "bye");
    EXPECT_EQ(net::decodeError(net::encodeError({"oops"})).message, "oops");
  }
}

TEST(Frame, TruncatedPayloadsThrowCleanly) {
  net::SubmitPayload p;
  p.qasm = kBellQasm;
  const std::vector<std::uint8_t> full = net::encodeSubmit(p);
  for (std::size_t len = 0; len < full.size(); len += 7) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)net::decodeSubmit(cut), net::FrameError)
        << "submit truncated to " << len;
  }
}

TEST(Frame, ServiceStatsSurviveTheWireBitExactly) {
  // Produce a real stats snapshot (histograms included) by running jobs.
  serve::ServiceConfig config;
  config.workers = 1;
  serve::SimulationService service(config);
  for (int i = 0; i < 3; ++i) {
    ir::Circuit c(2, 2);
    c.h(0);
    c.cx(0, 1);
    c.measureAll();
    serve::JobSpec spec;
    spec.circuit = std::make_shared<const ir::Circuit>(std::move(c));
    spec.seed = static_cast<std::uint64_t>(i);  // distinct cache identities
    auto handle = service.trySubmit(std::move(spec));
    ASSERT_TRUE(handle.has_value());
    handle->wait();
  }
  service.shutdown(/*drain=*/true);
  const serve::ServiceStats stats = service.stats();
  const serve::ServiceStats back =
      net::decodeServiceStats(net::encodeServiceStats(stats));
  // toJson covers every exported field including histogram buckets, so a
  // string compare pins the whole structure (doubles travel as IEEE-754
  // bit patterns — bit-exact, not approximate).
  EXPECT_EQ(back.toJson(), stats.toJson());
}

// ------------------------------------------------------------- transport

TEST(Socket, FrameRoundTripOverLoopback) {
  net::TcpListener listener = net::TcpListener::listen(0);
  const std::uint16_t port = listener.port();
  ASSERT_NE(port, 0);

  std::thread server([&] {
    auto conn = listener.accept(5.0);
    ASSERT_TRUE(conn.has_value());
    auto frame = net::readFrame(*conn);
    ASSERT_TRUE(frame.has_value());
    net::writeFrame(*conn, *frame);  // echo
    // Peer closes; expect a clean EOF, not an error.
    EXPECT_FALSE(net::readFrame(*conn).has_value());
  });

  net::TcpConnection client = net::TcpConnection::connect("127.0.0.1", port);
  client.setDeadlines(5.0, 5.0);
  const net::Frame sent{net::FrameType::Checkpoint, {1, 2, 3, 4}};
  net::writeFrame(client, sent);
  const auto echoed = net::readFrame(client);
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(echoed->type, sent.type);
  EXPECT_EQ(echoed->payload, sent.payload);
  client.close();
  server.join();
}

TEST(Socket, MidFrameEofIsATransportError) {
  net::TcpListener listener = net::TcpListener::listen(0);
  std::thread server([&] {
    auto conn = listener.accept(5.0);
    ASSERT_TRUE(conn.has_value());
    // Send only half a frame, then slam the connection shut.
    const std::vector<std::uint8_t> full =
        net::encodeFrame({net::FrameType::Goodbye, {9, 9, 9, 9, 9, 9}});
    conn->sendAll(full.data(), full.size() - 3);
    conn->close();
  });
  net::TcpConnection client =
      net::TcpConnection::connect("127.0.0.1", listener.port());
  client.setDeadlines(5.0, 5.0);
  EXPECT_THROW((void)net::readFrame(client), net::SocketError);
  server.join();
}

TEST(Socket, GarbageBytesAreAFrameError) {
  net::TcpListener listener = net::TcpListener::listen(0);
  std::thread server([&] {
    auto conn = listener.accept(5.0);
    ASSERT_TRUE(conn.has_value());
    std::vector<std::uint8_t> junk(64, 0x5A);  // wrong magic
    conn->sendAll(junk.data(), junk.size());
    conn->close();
  });
  net::TcpConnection client =
      net::TcpConnection::connect("127.0.0.1", listener.port());
  client.setDeadlines(5.0, 5.0);
  EXPECT_THROW((void)net::readFrame(client), net::FrameError);
  server.join();
}

TEST(Socket, ConnectToClosedPortFails) {
  // Bind-then-close yields a port that is very likely unbound.
  std::uint16_t port = 0;
  {
    net::TcpListener probe = net::TcpListener::listen(0);
    port = probe.port();
  }
  EXPECT_THROW(net::TcpConnection::connect("127.0.0.1", port, 1.0),
               net::SocketError);
}

// ----------------------------------------------------------- WorkerServer

net::SubmitPayload bellSubmit(std::uint64_t jobId, std::uint64_t seed) {
  net::SubmitPayload p;
  p.jobId = jobId;
  p.label = "bell";
  p.qasm = kBellQasm;
  p.seed = seed;
  return p;
}

/// Read frames until the first Result (skipping Hello/Checkpoint).
net::ResultPayload awaitResult(net::TcpConnection& conn) {
  for (;;) {
    auto frame = net::readFrame(conn);
    if (!frame) {
      throw std::runtime_error("connection closed before a Result arrived");
    }
    if (frame->type == net::FrameType::Result) {
      return net::decodeResult(frame->payload);
    }
  }
}

TEST(WorkerServer, ServesFramedSubmissions) {
  serve::ServiceConfig config;
  config.workers = 1;
  net::WorkerServer server(std::move(config), 0);

  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  conn.setDeadlines(30.0, 30.0);
  // Handshake.
  auto hello = net::readFrame(conn);
  ASSERT_TRUE(hello.has_value());
  ASSERT_EQ(hello->type, net::FrameType::Hello);
  EXPECT_EQ(net::decodeHello(hello->payload).wireVersion, net::kWireVersion);

  net::writeFrame(conn, {net::FrameType::Submit,
                         net::encodeSubmit(bellSubmit(1, 7))});
  const net::ResultPayload r = awaitResult(conn);
  EXPECT_EQ(r.jobId, 1U);
  EXPECT_EQ(r.status, net::wireStatus(serve::JobStatus::Completed));
  ASSERT_EQ(r.classicalBits.size(), 2U);
  EXPECT_EQ(r.classicalBits[0], r.classicalBits[1]);  // Bell correlation

  // Same cache identity again: answered from the result cache.
  net::writeFrame(conn, {net::FrameType::Submit,
                         net::encodeSubmit(bellSubmit(2, 7))});
  const net::ResultPayload cached = awaitResult(conn);
  EXPECT_EQ(cached.jobId, 2U);
  EXPECT_TRUE(cached.fromCache);
  EXPECT_EQ(cached.classicalBits, r.classicalBits);

  // Stats over the wire.
  net::writeFrame(conn, {net::FrameType::StatsQuery, {}});
  for (;;) {
    auto frame = net::readFrame(conn);
    ASSERT_TRUE(frame.has_value());
    if (frame->type == net::FrameType::StatsReport) {
      const serve::ServiceStats stats =
          net::decodeServiceStats(frame->payload);
      EXPECT_EQ(stats.simulationsRun, 1U);
      EXPECT_EQ(stats.cached, 1U);
      break;
    }
  }

  // Clean goodbye: the worker answers with its own and closes.
  net::writeFrame(conn, {net::FrameType::Goodbye, net::encodeGoodbye({"done"})});
  bool sawGoodbye = false;
  for (;;) {
    auto frame = net::readFrame(conn);
    if (!frame) {
      break;
    }
    sawGoodbye |= frame->type == net::FrameType::Goodbye;
  }
  EXPECT_TRUE(sawGoodbye);
  server.requestStop();
}

TEST(WorkerServer, UnparseableQasmFailsTerminally) {
  serve::ServiceConfig config;
  config.workers = 1;
  net::WorkerServer server(std::move(config), 0);
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  conn.setDeadlines(30.0, 30.0);
  net::SubmitPayload p;
  p.jobId = 5;
  p.qasm = "this is not qasm";
  net::writeFrame(conn, {net::FrameType::Submit, net::encodeSubmit(p)});
  const net::ResultPayload r = awaitResult(conn);
  EXPECT_EQ(r.jobId, 5U);
  // Failed (terminal), NOT Rejected — the router must not re-route a job
  // that fails deterministically.
  EXPECT_EQ(r.status, net::wireStatus(serve::JobStatus::Failed));
  EXPECT_FALSE(r.error.empty());
  server.requestStop();
}

TEST(WorkerServer, CorruptFrameGetsErrorReply) {
  serve::ServiceConfig config;
  config.workers = 1;
  net::WorkerServer server(std::move(config), 0);
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  conn.setDeadlines(30.0, 30.0);
  auto hello = net::readFrame(conn);
  ASSERT_TRUE(hello.has_value());

  std::vector<std::uint8_t> bad =
      net::encodeFrame({net::FrameType::Submit, {1, 2, 3}});
  bad.back() ^= 0xFF;  // checksum mismatch
  conn.sendAll(bad.data(), bad.size());
  bool sawError = false;
  for (;;) {
    std::optional<net::Frame> frame;
    try {
      frame = net::readFrame(conn);
    } catch (const net::SocketError&) {
      break;  // worker hung up after reporting
    }
    if (!frame) {
      break;
    }
    sawError |= frame->type == net::FrameType::Error;
  }
  EXPECT_TRUE(sawError);
  server.requestStop();
}

TEST(WorkerServer, DrainStreamsPendingResultsBeforeGoodbye) {
  serve::ServiceConfig config;
  config.workers = 1;
  net::WorkerServer server(std::move(config), 0);
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  conn.setDeadlines(30.0, 30.0);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    net::writeFrame(conn, {net::FrameType::Submit,
                           net::encodeSubmit(bellSubmit(id, id))});
  }
  // Wait until all three submissions are admitted, then drain: every
  // in-flight job must still stream its Result before the Goodbye.
  while (server.stats().submitted < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread stopper([&] { server.requestStop(); });
  std::size_t results = 0;
  bool sawGoodbye = false;
  for (;;) {
    std::optional<net::Frame> frame;
    try {
      frame = net::readFrame(conn);
    } catch (const std::exception&) {
      break;
    }
    if (!frame) {
      break;
    }
    if (frame->type == net::FrameType::Result) {
      const auto r = net::decodeResult(frame->payload);
      if (r.status != net::kWireStatusRejected) {
        ++results;
      }
    }
    sawGoodbye |= frame->type == net::FrameType::Goodbye;
  }
  stopper.join();
  // Every admitted job resolved before the goodbye; a drain loses nothing.
  EXPECT_EQ(results, 3U);
  EXPECT_TRUE(sawGoodbye);
}

}  // namespace
}  // namespace ddsim
