/// \file test_cross_engine.cpp
/// \brief Cross-engine consistency sweeps: the vector simulator, the
///        density-matrix simulator and the stochastic trajectory engine
///        must agree wherever their domains overlap.

#include <gtest/gtest.h>

#include <cctype>

#include "sim/density.hpp"
#include "sim/simulator.hpp"
#include "sim/stochastic.hpp"
#include "test_util.hpp"

namespace ddsim::sim {
namespace {

// ---------------------------------------------------------------------------
// Noiseless: density diagonal == vector probabilities, across random
// circuits.
// ---------------------------------------------------------------------------

class NoiselessAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NoiselessAgreement, DensityDiagonalMatchesVectorProbabilities) {
  const auto circuit = test::randomCircuit(4, 25, GetParam());

  CircuitSimulator vsim(circuit);
  const auto vres = vsim.run();
  const auto amps = vsim.package().getVector(vres.finalState);

  DensityMatrixSimulator dsim(circuit);
  const auto dres = dsim.run();

  for (std::uint64_t i = 0; i < amps.size(); ++i) {
    ASSERT_NEAR(dsim.basisProbability(dres.rho, i), amps[i].mag2(), 1e-8)
        << "seed " << GetParam() << " basis " << i;
  }
  EXPECT_NEAR(dsim.purity(dres.rho), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NoiselessAgreement,
                         ::testing::Range<std::uint64_t>(600, 608));

// ---------------------------------------------------------------------------
// Noisy: trajectory averages converge to the exact density result for every
// built-in channel.
// ---------------------------------------------------------------------------

struct ChannelCase {
  const char* name;
  NoiseChannel channel;
};

class ChannelAgreement : public ::testing::TestWithParam<ChannelCase> {};

TEST_P(ChannelAgreement, TrajectoriesMatchDensity) {
  ir::Circuit circuit(3);
  circuit.h(0);
  circuit.cx(0, 1);
  circuit.t(1);
  circuit.cx(1, 2);
  circuit.h(2);

  const NoiseModel noise{{GetParam().channel}};
  DensityMatrixSimulator dsim(circuit, noise);
  const auto dres = dsim.run();

  const auto stoch = simulateStochastic(circuit, noise, 600, 37);
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_NEAR(stoch.meanProbabilityOfOne[q],
                dsim.probabilityOfOne(dres.rho, static_cast<dd::Qubit>(q)),
                0.06)
        << GetParam().name << " qubit " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Channels, ChannelAgreement,
    ::testing::Values(
        ChannelCase{"depolarizing", NoiseChannel::depolarizing(0.05)},
        ChannelCase{"bitflip", NoiseChannel::bitFlip(0.1)},
        ChannelCase{"phaseflip", NoiseChannel::phaseFlip(0.1)},
        ChannelCase{"ampdamp", NoiseChannel::amplitudeDamping(0.1)},
        ChannelCase{"phasedamp", NoiseChannel::phaseDamping(0.1)}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// Zero-strength channels are exact identities on all three engines.
// ---------------------------------------------------------------------------

TEST(CrossEngine, ZeroStrengthNoiseIsIdentity) {
  const auto circuit = test::randomCircuit(4, 20, 71);
  const NoiseModel zero{{NoiseChannel::depolarizing(0.0),
                         NoiseChannel::amplitudeDamping(0.0)}};

  CircuitSimulator vsim(circuit);
  const auto vres = vsim.run();

  DensityMatrixSimulator dsim(circuit, zero);
  const auto dres = dsim.run();
  EXPECT_NEAR(dsim.purity(dres.rho), 1.0, 1e-8);

  const auto stoch = simulateStochastic(circuit, zero, 3, 5);
  for (std::size_t q = 0; q < 4; ++q) {
    const double pv = vsim.package().probabilityOfOne(
        vres.finalState, static_cast<dd::Qubit>(q));
    EXPECT_NEAR(dsim.probabilityOfOne(dres.rho, static_cast<dd::Qubit>(q)), pv,
                1e-8);
    EXPECT_NEAR(stoch.meanProbabilityOfOne[q], pv, 1e-8);
  }
}

// ---------------------------------------------------------------------------
// Full-strength phase flip == classical mixture: all coherence witnesses
// vanish identically on both noisy engines.
// ---------------------------------------------------------------------------

TEST(CrossEngine, CompleteDephasingAgreesExactly) {
  ir::Circuit circuit(1);
  circuit.h(0);
  const NoiseModel noise{{NoiseChannel::phaseFlip(0.5)}};

  DensityMatrixSimulator dsim(circuit, noise);
  const auto dres = dsim.run();
  EXPECT_NEAR(dsim.purity(dres.rho), 0.5, 1e-9);
  EXPECT_NEAR(dsim.probabilityOfOne(dres.rho, 0), 0.5, 1e-9);

  const auto stoch = simulateStochastic(circuit, noise, 2000, 41);
  EXPECT_NEAR(stoch.meanProbabilityOfOne[0], 0.5, 1e-9);  // exact per trajectory
}

}  // namespace
}  // namespace ddsim::sim
