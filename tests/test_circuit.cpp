#include <gtest/gtest.h>

#include "baseline/statevector.hpp"
#include "ir/circuit.hpp"
#include "test_util.hpp"

namespace ddsim::ir {
namespace {

TEST(Circuit, BasicConstruction) {
  Circuit c(3, 2, "demo");
  EXPECT_EQ(c.numQubits(), 3U);
  EXPECT_EQ(c.numClbits(), 2U);
  EXPECT_EQ(c.name(), "demo");
  EXPECT_TRUE(c.empty());
  c.h(0);
  c.cx(0, 1);
  EXPECT_EQ(c.numOps(), 2U);
  EXPECT_EQ(c.flatGateCount(), 2U);
}

TEST(Circuit, RejectsZeroQubits) {
  EXPECT_THROW(Circuit(0), std::invalid_argument);
}

TEST(Circuit, ValidatesQubitRange) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), std::invalid_argument);
  EXPECT_THROW(c.cx(0, 5), std::invalid_argument);
}

TEST(Circuit, ValidatesClassicalRange) {
  Circuit c(2, 1);
  EXPECT_NO_THROW(c.measure(0, 0));
  EXPECT_THROW(c.measure(0, 1), std::invalid_argument);
  EXPECT_THROW(c.classicControlled(GateType::X, 0, {}, {}, 3),
               std::invalid_argument);
}

TEST(StandardOperationTest, RejectsControlOnTarget) {
  EXPECT_THROW(StandardOperation(GateType::X, {1}, {Control{1}}),
               std::invalid_argument);
}

TEST(StandardOperationTest, RejectsWrongParamCount) {
  EXPECT_THROW(StandardOperation(GateType::RX, {0}), std::invalid_argument);
  EXPECT_THROW(StandardOperation(GateType::X, {0}, {}, {0.5}),
               std::invalid_argument);
}

TEST(StandardOperationTest, SwapNeedsTwoTargets) {
  EXPECT_THROW(StandardOperation(GateType::Swap, {0}), std::invalid_argument);
  EXPECT_NO_THROW(StandardOperation(GateType::Swap, {0, 1}));
}

TEST(StandardOperationTest, InverseRoundTrip) {
  const StandardOperation rx(GateType::RX, {0}, {}, {0.7});
  const StandardOperation inv = rx.inverse();
  EXPECT_EQ(inv.type(), GateType::RX);
  EXPECT_DOUBLE_EQ(inv.params()[0], -0.7);
  const StandardOperation s(GateType::S, {1});
  EXPECT_EQ(s.inverse().type(), GateType::Sdg);
  const StandardOperation u(GateType::U, {0}, {}, {0.5, 1.0, -0.25});
  const StandardOperation uInv = u.inverse();
  EXPECT_DOUBLE_EQ(uInv.params()[0], -0.5);
  EXPECT_DOUBLE_EQ(uInv.params()[1], 0.25);
  EXPECT_DOUBLE_EQ(uInv.params()[2], -1.0);
}

TEST(Circuit, CloneIsDeep) {
  Circuit c(2);
  c.h(0);
  c.appendRepeated(
      [] {
        Circuit block(2);
        block.cx(0, 1);
        return block;
      }(),
      3, "loop");
  Circuit copy = c.clone();
  EXPECT_EQ(copy.numOps(), c.numOps());
  EXPECT_EQ(copy.flatGateCount(), c.flatGateCount());
  c.h(1);
  EXPECT_NE(copy.numOps(), c.numOps());
}

TEST(Circuit, CompoundFlattening) {
  Circuit c(2);
  c.h(0);
  Circuit block(2);
  block.x(0);
  block.cx(0, 1);
  c.appendRepeated(std::move(block), 4, "iter");
  EXPECT_EQ(c.numOps(), 2U);
  EXPECT_EQ(c.flatGateCount(), 1U + 4U * 2U);
  const Circuit flat = c.flattened();
  EXPECT_EQ(flat.numOps(), 9U);
  EXPECT_EQ(flat.flatGateCount(), 9U);
}

TEST(Circuit, NestedCompoundFlatten) {
  Circuit inner(1);
  inner.x(0);
  Circuit outer(1);
  outer.appendRepeated(std::move(inner), 2, "inner");
  Circuit c(1);
  Circuit mid(1);
  mid.appendCircuit(outer);
  c.appendRepeated(std::move(mid), 3, "outer");
  EXPECT_EQ(c.flatGateCount(), 6U);
  EXPECT_EQ(c.flattened().numOps(), 6U);
}

TEST(Circuit, InvertedUndoesUnitaryCircuit) {
  const auto circuit = test::randomCircuit(4, 30, 9001);
  Circuit both(4);
  both.appendCircuit(circuit);
  both.appendCircuit(circuit.inverted());
  const auto result = baseline::runOnStateVector(both);
  EXPECT_NEAR(std::norm(result.state.amplitude(0)), 1.0, 1e-9);
}

TEST(Circuit, InvertedRejectsMeasurement) {
  Circuit c(1, 1);
  c.measure(0, 0);
  EXPECT_THROW(c.inverted(), std::invalid_argument);
}

TEST(Circuit, AppendRepeatedValidation) {
  Circuit c(2);
  Circuit wide(3);
  wide.h(2);
  EXPECT_THROW(c.appendRepeated(std::move(wide), 2), std::invalid_argument);
  Circuit ok(2);
  ok.h(0);
  EXPECT_THROW(c.appendRepeated(ok.clone(), 0), std::invalid_argument);
}

TEST(Circuit, MeasureAllNeedsClbits) {
  Circuit c(3, 1);
  EXPECT_THROW(c.measureAll(), std::logic_error);
  Circuit ok(3, 3);
  EXPECT_NO_THROW(ok.measureAll());
  EXPECT_EQ(ok.numOps(), 3U);
}

TEST(Circuit, ToStringListsOperations) {
  Circuit c(2, 1, "listing");
  c.h(0);
  c.cx(0, 1);
  c.measure(1, 0);
  const std::string s = c.toString();
  EXPECT_NE(s.find("listing"), std::string::npos);
  EXPECT_NE(s.find("h q0"), std::string::npos);
  EXPECT_NE(s.find("measure q1 -> c0"), std::string::npos);
}

TEST(OracleOperationTest, ValidatesControlPlacement) {
  EXPECT_THROW(OracleOperation("bad", 3, [](std::uint64_t x) { return x; },
                               {Control{1}}),
               std::invalid_argument);
  EXPECT_NO_THROW(OracleOperation("ok", 3, [](std::uint64_t x) { return x; },
                                  {Control{4}}));
}

TEST(OracleOperationTest, PermutationTable) {
  const OracleOperation op("xor1", 2,
                           [](std::uint64_t x) { return x ^ 1U; });
  const auto table = op.permutationTable();
  EXPECT_EQ(table, (std::vector<std::uint64_t>{1, 0, 3, 2}));
  EXPECT_EQ(op.flatGateCount(), 1U);
}

TEST(CompoundOperationTest, CopyIsDeep) {
  std::vector<std::unique_ptr<Operation>> body;
  body.push_back(std::make_unique<StandardOperation>(GateType::H,
                                                     std::vector<Qubit>{0}));
  const CompoundOperation comp(std::move(body), 5, "block");
  const CompoundOperation copy(comp);
  EXPECT_EQ(copy.repetitions(), 5U);
  EXPECT_EQ(copy.body().size(), 1U);
  EXPECT_NE(copy.body()[0].get(), comp.body()[0].get());
}

}  // namespace
}  // namespace ddsim::ir
