#include <gtest/gtest.h>

#include <complex>
#include <numbers>

#include "baseline/statevector.hpp"
#include "dd/pauli.hpp"
#include "sim/density.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim::sim {
namespace {

TEST(NoiseChannels, AllBuiltinsAreTracePreserving) {
  for (const double p : {0.0, 0.01, 0.3, 1.0}) {
    EXPECT_TRUE(NoiseChannel::depolarizing(p).isTracePreserving()) << p;
    EXPECT_TRUE(NoiseChannel::bitFlip(p).isTracePreserving()) << p;
    EXPECT_TRUE(NoiseChannel::phaseFlip(p).isTracePreserving()) << p;
    EXPECT_TRUE(NoiseChannel::amplitudeDamping(p).isTracePreserving()) << p;
    EXPECT_TRUE(NoiseChannel::phaseDamping(p).isTracePreserving()) << p;
  }
}

TEST(NoiseChannels, RejectsBadParameters) {
  EXPECT_THROW(NoiseChannel::depolarizing(-0.1), std::invalid_argument);
  EXPECT_THROW(NoiseChannel::amplitudeDamping(1.5), std::invalid_argument);
  EXPECT_THROW(NoiseChannel("empty", {}), std::invalid_argument);
}

TEST(NoiseChannels, NonTracePreservingDetected) {
  const NoiseChannel broken(
      "broken", {dd::GateMatrix{dd::ComplexValue{0.5, 0}, {0, 0}, {0, 0}, {0.5, 0}}});
  EXPECT_FALSE(broken.isTracePreserving());
  ir::Circuit circuit(1);
  circuit.h(0);
  EXPECT_THROW(DensityMatrixSimulator(circuit, NoiseModel{{broken}}),
               std::invalid_argument);
}

TEST(Density, NoiselessMatchesVectorSimulation) {
  const auto circuit = test::randomCircuit(4, 30, 55);
  DensityMatrixSimulator dsim(circuit);
  const auto dres = dsim.run();

  CircuitSimulator vsim(circuit);
  const auto vres = vsim.run();
  const auto amps = vsim.package().getVector(vres.finalState);

  // rho = |psi><psi|: check diagonal and trace/purity.
  EXPECT_NEAR(dsim.trace(dres.rho), 1.0, 1e-9);
  EXPECT_NEAR(dsim.purity(dres.rho), 1.0, 1e-9);
  for (std::uint64_t i = 0; i < amps.size(); ++i) {
    EXPECT_NEAR(dsim.basisProbability(dres.rho, i), amps[i].mag2(), 1e-9);
  }
}

TEST(Density, FullDensityMatrixMatchesOuterProduct) {
  const auto circuit = test::randomCircuit(3, 20, 56);
  DensityMatrixSimulator dsim(circuit);
  const auto dres = dsim.run();
  const auto rho = dsim.package().getMatrix(dres.rho);

  CircuitSimulator vsim(circuit);
  const auto amps = vsim.package().getVector(vsim.run().finalState);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const auto expected = amps[r].toStd() * std::conj(amps[c].toStd());
      EXPECT_NEAR(rho[r * 8 + c].r, expected.real(), 1e-9);
      EXPECT_NEAR(rho[r * 8 + c].i, expected.imag(), 1e-9);
    }
  }
}

TEST(Density, DepolarizingReducesPurity) {
  ir::Circuit circuit(2);
  circuit.h(0);
  circuit.cx(0, 1);
  NoiseModel noise{{NoiseChannel::depolarizing(0.05)}};
  DensityMatrixSimulator dsim(circuit, noise);
  const auto result = dsim.run();
  EXPECT_NEAR(dsim.trace(result.rho), 1.0, 1e-9);
  EXPECT_LT(dsim.purity(result.rho), 0.999);
  EXPECT_GT(dsim.purity(result.rho), 0.5);
}

TEST(Density, FullDepolarizationIsMaximallyMixed) {
  ir::Circuit circuit(1);
  circuit.h(0);
  NoiseModel noise{{NoiseChannel::depolarizing(1.0)}};
  // depolarizing(p=1) maps to I/2 plus residual coherence weight 1/3 each on
  // X rho X etc.; applying it repeatedly converges to the maximally mixed
  // state. Use three gates to apply it thrice.
  circuit.h(0);
  circuit.h(0);
  DensityMatrixSimulator dsim(circuit, noise);
  const auto result = dsim.run();
  EXPECT_NEAR(dsim.probabilityOfOne(result.rho, 0), 0.5, 0.15);
  EXPECT_LT(dsim.purity(result.rho), 0.7);
}

TEST(Density, AmplitudeDampingDecaysExcitedState) {
  // |1> through n identity-ish gates with damping converges towards |0>.
  ir::Circuit circuit(1);
  circuit.x(0);
  for (int i = 0; i < 10; ++i) {
    circuit.i(0);
  }
  NoiseModel noise{{NoiseChannel::amplitudeDamping(0.2)}};
  DensityMatrixSimulator dsim(circuit, noise);
  const auto result = dsim.run();
  // 11 applications of gamma=0.2: P(1) = 0.8^11 ~ 0.086.
  EXPECT_NEAR(dsim.probabilityOfOne(result.rho, 0), std::pow(0.8, 11), 1e-9);
  EXPECT_NEAR(dsim.trace(result.rho), 1.0, 1e-9);
}

TEST(Density, PhaseFlipKillsCoherencesNotPopulations) {
  ir::Circuit circuit(1);
  circuit.h(0);
  NoiseModel noise{{NoiseChannel::phaseFlip(0.5)}};  // complete dephasing
  DensityMatrixSimulator dsim(circuit, noise);
  const auto result = dsim.run();
  const auto rho = dsim.package().getMatrix(result.rho);
  EXPECT_NEAR(rho[0].r, 0.5, 1e-9);   // populations intact
  EXPECT_NEAR(rho[3].r, 0.5, 1e-9);
  EXPECT_NEAR(rho[1].mag2(), 0.0, 1e-12);  // off-diagonals gone
  EXPECT_NEAR(rho[2].mag2(), 0.0, 1e-12);
}

TEST(Density, MeasurementCollapsesAndRecords) {
  ir::Circuit circuit(2, 2);
  circuit.h(0);
  circuit.cx(0, 1);
  circuit.measure(0, 0);
  circuit.measure(1, 1);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    DensityMatrixSimulator dsim(circuit, {}, seed);
    const auto result = dsim.run();
    EXPECT_EQ(result.classicalBits[0], result.classicalBits[1]);
    EXPECT_NEAR(dsim.trace(result.rho), 1.0, 1e-9);
    EXPECT_NEAR(dsim.purity(result.rho), 1.0, 1e-9);
  }
}

TEST(Density, ClassicControlledAndReset) {
  ir::Circuit circuit(2, 1);
  circuit.h(0);
  circuit.measure(0, 0);
  circuit.classicControlled(ir::GateType::X, 1, {}, {}, 0);
  circuit.reset(0);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    DensityMatrixSimulator dsim(circuit, {}, seed);
    const auto result = dsim.run();
    EXPECT_NEAR(dsim.probabilityOfOne(result.rho, 0), 0.0, 1e-9);
    EXPECT_NEAR(dsim.probabilityOfOne(result.rho, 1),
                result.classicalBits[0] ? 1.0 : 0.0, 1e-9);
  }
}

TEST(Density, ExpectationViaPauliString) {
  ir::Circuit circuit(2);
  circuit.h(0);
  circuit.cx(0, 1);
  DensityMatrixSimulator dsim(circuit);
  const auto result = dsim.run();
  const dd::MEdge zz = dd::makePauliStringDD(dsim.package(), "ZZ");
  EXPECT_NEAR(dsim.expectation(result.rho, zz).r, 1.0, 1e-9);
  // Dephasing noise degrades <XX> but not <ZZ>.
  NoiseModel noise{{NoiseChannel::phaseFlip(0.2)}};
  ir::Circuit circuit2(2);
  circuit2.h(0);
  circuit2.cx(0, 1);
  DensityMatrixSimulator noisy(circuit2, noise);
  const auto nres = noisy.run();
  const dd::MEdge zz2 = dd::makePauliStringDD(noisy.package(), "ZZ");
  const dd::MEdge xx2 = dd::makePauliStringDD(noisy.package(), "XX");
  EXPECT_NEAR(noisy.expectation(nres.rho, zz2).r, 1.0, 1e-9);
  EXPECT_LT(noisy.expectation(nres.rho, xx2).r, 0.9);
}

TEST(Density, GhzDensityDDStaysCompact) {
  ir::Circuit circuit(10);
  circuit.h(0);
  for (ir::Qubit q = 1; q < 10; ++q) {
    circuit.cx(q - 1, q);
  }
  DensityMatrixSimulator dsim(circuit);
  const auto result = dsim.run();
  // |GHZ><GHZ| has 4 path families; the DD stays linear in qubit count.
  EXPECT_LE(result.finalNodes, 4U * 10U + 2U);
}

TEST(Density, OracleOperationsSupported) {
  ir::Circuit circuit(3);
  circuit.h(0);
  circuit.oracle("inc", 3, [](std::uint64_t x) { return (x + 1) % 8; });
  DensityMatrixSimulator dsim(circuit);
  const auto result = dsim.run();
  // (|000>+|001>)/sqrt2 -> (|001>+|010>)/sqrt2
  EXPECT_NEAR(dsim.basisProbability(result.rho, 1), 0.5, 1e-9);
  EXPECT_NEAR(dsim.basisProbability(result.rho, 2), 0.5, 1e-9);
}

TEST(Density, RunTwiceThrows) {
  ir::Circuit circuit(1);
  circuit.h(0);
  DensityMatrixSimulator dsim(circuit);
  dsim.run();
  EXPECT_THROW(dsim.run(), std::logic_error);
}

}  // namespace
}  // namespace ddsim::sim
