#include <gtest/gtest.h>

#include <numbers>

#include "algo/qaoa.hpp"
#include "baseline/statevector.hpp"
#include "sim/simulator.hpp"

namespace ddsim::algo {
namespace {

TEST(Graph, RingAndRandom) {
  const Graph ring = Graph::ring(5);
  EXPECT_EQ(ring.numVertices, 5U);
  EXPECT_EQ(ring.edges.size(), 5U);

  const Graph g1 = Graph::random(8, 0.5, 3);
  const Graph g2 = Graph::random(8, 0.5, 3);
  EXPECT_EQ(g1.edges, g2.edges);  // deterministic for a fixed seed
  const Graph dense = Graph::random(6, 1.0, 1);
  EXPECT_EQ(dense.edges.size(), 15U);
  const Graph empty = Graph::random(6, 0.0, 1);
  EXPECT_TRUE(empty.edges.empty());
}

TEST(Qaoa, Validation) {
  const Graph ring = Graph::ring(4);
  EXPECT_THROW(makeQaoaMaxCutCircuit(ring, {}, {}), std::invalid_argument);
  EXPECT_THROW(makeQaoaMaxCutCircuit(ring, {0.1}, {0.1, 0.2}),
               std::invalid_argument);
  Graph bad = ring;
  bad.edges.emplace_back(0, 9);
  EXPECT_THROW(makeQaoaMaxCutCircuit(bad, {0.1}, {0.1}), std::invalid_argument);
}

TEST(Qaoa, ZeroAnglesGiveUniformExpectation) {
  // gamma = beta = 0: the state stays uniform, <Z_u Z_v> = 0, so the
  // expected cut is half the edge count.
  const Graph ring = Graph::ring(6);
  const double cut = qaoaExpectedCut(ring, {0.0}, {0.0});
  EXPECT_NEAR(cut, ring.edges.size() / 2.0, 1e-9);
}

TEST(Qaoa, MatchesDenseSimulation) {
  const Graph g = Graph::random(5, 0.6, 7);
  const auto circuit = makeQaoaMaxCutCircuit(g, {0.4, 0.7}, {0.3, 0.2});
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  const auto dense = baseline::runOnStateVector(circuit);
  const auto got = simulator.package().getVector(result.finalState);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].r, dense.state.amplitudes()[i].real(), 1e-8);
    EXPECT_NEAR(got[i].i, dense.state.amplitudes()[i].imag(), 1e-8);
  }
}

TEST(Qaoa, KnownOptimumForRing) {
  // Ring with even n: MaxCut = n (alternating assignment). p=1 QAOA at the
  // known ring optimum (gamma = pi/4... use a small grid search instead of
  // hardcoding folklore angles).
  const Graph ring = Graph::ring(4);
  EXPECT_EQ(maxCutBruteForce(ring), 4U);

  double best = 0;
  for (double gamma = 0.1; gamma < 1.6; gamma += 0.25) {
    for (double beta = 0.1; beta < 1.6; beta += 0.25) {
      best = std::max(best, qaoaExpectedCut(ring, {gamma}, {beta}));
    }
  }
  // p=1 QAOA on the 4-ring reaches <C> = 3 at the optimum; the grid gets
  // close.
  EXPECT_GT(best, 2.6);
  EXPECT_LE(best, 4.0 + 1e-9);
}

TEST(Qaoa, DeeperCircuitsDoNotDecreaseBestExpectation) {
  const Graph g = Graph::random(6, 0.5, 11);
  // Fixed angles: appending a zero-angle round leaves <C> unchanged, so the
  // p=2 search space contains the p=1 optimum.
  const double p1 = qaoaExpectedCut(g, {0.5}, {0.4});
  const double p2same = qaoaExpectedCut(g, {0.5, 0.0}, {0.4, 0.0});
  EXPECT_NEAR(p1, p2same, 1e-9);
}

TEST(Qaoa, ExpectationBoundedByBruteForceOptimum) {
  const Graph g = Graph::random(6, 0.6, 13);
  const auto optimum = static_cast<double>(maxCutBruteForce(g));
  for (double gamma : {0.2, 0.5, 0.9}) {
    EXPECT_LE(qaoaExpectedCut(g, {gamma}, {0.35}), optimum + 1e-9);
  }
}

}  // namespace
}  // namespace ddsim::algo
