#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "algo/grover.hpp"
#include "algo/qft.hpp"
#include "dd/migration.hpp"
#include "dd/package.hpp"
#include "sim/build_dd.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim::dd {
namespace {

/// Final state of \p circuit simulated in a fresh simulator (the simulator
/// and its package are returned so the edge stays rooted).
struct SimulatedState {
  explicit SimulatedState(const ir::Circuit& circuit)
      : sim(circuit) {
    state = sim.run().finalState;
  }
  sim::CircuitSimulator sim;
  VEdge state{};
};

/// Combined matrix DD of a purely unitary circuit, built in \p pkg.
MEdge buildCircuitMatrix(Package& pkg, const ir::Circuit& circuit) {
  const ir::Circuit flat = circuit.flattened();
  MEdge acc = pkg.makeIdent();
  pkg.incRef(acc);
  for (const auto& op : flat.ops()) {
    const MEdge g = sim::buildOperationDD(pkg, *op);
    const MEdge combined = pkg.multiply(g, acc);
    pkg.incRef(combined);
    pkg.decRef(acc);
    acc = combined;
  }
  pkg.decRef(acc);
  return acc;
}

TEST(DDMigration, VectorRoundTripRandomCircuits) {
  for (const std::uint64_t seed : {7ULL, 21ULL, 99ULL}) {
    const auto circuit = test::randomCircuit(5, 60, seed);
    SimulatedState src(circuit);
    Package& a = src.sim.package();
    const FlatVectorDD flat = exportDD(a, src.state);
    EXPECT_EQ(flat.numQubits, 5U);
    EXPECT_EQ(flat.nodeCount(), a.size(src.state));

    Package b(5);
    const VEdge imported = importDD(b, flat);
    b.incRef(imported);
    // Same node count: the import reproduces the canonical shape.
    EXPECT_EQ(b.size(imported), a.size(src.state));
    // Same amplitudes (weights go through the destination's tolerance
    // snapping, so near-exact rather than bitwise).
    test::expectAmplitudesNear(b.getVector(imported), a.getVector(src.state),
                               1e-12);
    // Canonicity: re-exporting the imported DD reproduces the flat form —
    // node order, levels and normalized edge weights all round-trip.
    EXPECT_EQ(exportDD(b, imported), flat);
  }
}

TEST(DDMigration, VectorRoundTripFidelityViaReimport) {
  const auto circuit = test::randomCircuit(6, 80, 3);
  SimulatedState src(circuit);
  Package& a = src.sim.package();
  Package b(6);
  const VEdge viaB = importDD(b, exportDD(a, src.state));
  b.incRef(viaB);
  // Bounce the state back into the source package and compare there —
  // fidelity is only defined within one package.
  const VEdge back = importDD(a, exportDD(b, viaB));
  a.incRef(back);
  EXPECT_NEAR(a.fidelity(src.state, back), 1.0, 1e-12);
}

TEST(DDMigration, MatrixRoundTripGroverAndQFT) {
  const auto grover = algo::makeGroverIteration(5, 19);
  const auto qft = algo::makeQFTCircuit(5);
  for (const ir::Circuit* circuit : {&grover, &qft}) {
    Package a(5);
    const MEdge m = buildCircuitMatrix(a, *circuit);
    a.incRef(m);
    const FlatMatrixDD flat = exportDD(a, m);
    EXPECT_EQ(flat.nodeCount(), a.size(m));

    Package b(5);
    const MEdge imported = importDD(b, flat);
    b.incRef(imported);
    EXPECT_EQ(b.size(imported), a.size(m));
    test::expectAmplitudesNear(b.getMatrix(imported), a.getMatrix(m), 1e-12);
    EXPECT_EQ(exportDD(b, imported), flat);
  }
}

TEST(DDMigration, SnappedZeroEdgeExportsAsCanonicalZero) {
  // makeMNode normalizes child weights by dividing through the maximum-
  // magnitude child and re-looking the quotient up in the complex table.
  // A quotient below the canonicalization tolerance snaps to the exact
  // zero pointer *after* the zero-stub pass already ran, so the package
  // can legitimately hold a zero-weight edge that still points at an
  // internal node. Export must flatten it as the canonical zero edge
  // (terminal child), or import's validation rejects the flat form.
  Package a(2);
  const MEdge ident0 = a.makeIdent(0);  // internal level-0 node
  const MEdge big = {ident0.p, a.clookup({1e14, 0.0})};
  const MEdge tiny = {ident0.p, a.clookup({1.0, 0.0})};
  // Normalization divides by 1e14: child 1's weight becomes 1e-14, below
  // kTolerance, and snaps to the canonical zero while keeping ident0.p.
  const MEdge m = a.makeMNode(1, {big, tiny, a.mZero(), a.mZero()});
  ASSERT_FALSE(m.p->e[1].p->isTerminal());
  ASSERT_TRUE(m.p->e[1].w->exactlyZero());
  a.incRef(m);

  const FlatMatrixDD flat = exportDD(a, m);
  for (const FlatNode<4>& n : flat.nodes) {
    for (const FlatEdge& e : n.children) {
      if (e.w.exactlyZero()) {
        EXPECT_EQ(e.node, kFlatTerminal);
      }
    }
  }

  Package b(2);
  const MEdge imported = importDD(b, flat);
  b.incRef(imported);
  test::expectAmplitudesNear(b.getMatrix(imported), a.getMatrix(m), 1e-3);
  EXPECT_EQ(exportDD(b, imported), flat);
}

TEST(DDMigration, ZeroVectorAndScalarRoots) {
  Package a(3);
  const FlatVectorDD flat = exportDD(a, a.vZero());
  EXPECT_EQ(flat.root.node, kFlatTerminal);
  EXPECT_TRUE(flat.root.w.exactlyZero());
  EXPECT_TRUE(flat.nodes.empty());

  Package b(3);
  const VEdge imported = importDD(b, flat);
  EXPECT_TRUE(imported.isZeroTerminal());
}

TEST(DDMigration, ImportDeduplicatesIntoUniqueTable) {
  const auto circuit = test::randomCircuit(4, 40, 11);
  SimulatedState src(circuit);
  const FlatVectorDD flat = exportDD(src.sim.package(), src.state);

  Package b(4);
  const VEdge first = importDD(b, flat);
  b.incRef(first);
  const VEdge second = importDD(b, flat);
  // The second import resolves every node through the unique table: same
  // canonical node, same canonical weight pointer.
  EXPECT_EQ(first.p, second.p);
  EXPECT_EQ(first.w, second.w);
}

TEST(DDMigration, ImportSurvivesEmergencyCollect) {
  const auto circuit = test::randomCircuit(5, 60, 5);
  SimulatedState src(circuit);
  Package& a = src.sim.package();
  const FlatVectorDD flat = exportDD(a, src.state);

  // Import into a package whose allocator already went through an
  // emergency collection (released chunks, bumped incarnation stamps).
  Package b(5);
  const VEdge warmup = importDD(b, flat);
  b.incRef(warmup);
  b.emergencyCollect();
  const VEdge imported = importDD(b, flat);
  b.incRef(imported);
  test::expectAmplitudesNear(b.getVector(imported), a.getVector(src.state),
                             1e-12);

  // And the imported DD itself survives a later emergency collection (it
  // is rooted like any other edge).
  b.emergencyCollect();
  test::expectAmplitudesNear(b.getVector(imported), a.getVector(src.state),
                             1e-12);
}

TEST(DDMigration, ValidationRejectsMalformedInput) {
  Package dst(3);

  FlatVectorDD tooWide;
  tooWide.numQubits = 4;
  EXPECT_THROW((void)importDD(dst, tooWide), std::invalid_argument);

  // Child index at/after the parent (children must precede parents).
  FlatVectorDD forwardRef;
  forwardRef.numQubits = 2;
  forwardRef.nodes.push_back({0, {FlatEdge{kFlatTerminal, {1.0, 0.0}},
                                  FlatEdge{kFlatTerminal, {0.0, 0.0}}}});
  forwardRef.nodes.push_back({1, {FlatEdge{1, {1.0, 0.0}},
                                  FlatEdge{kFlatTerminal, {0.0, 0.0}}}});
  forwardRef.root = {1, {1.0, 0.0}};
  EXPECT_THROW((void)importDD(dst, forwardRef), std::invalid_argument);

  // Level gap: a level-2 node pointing at a level-0 child.
  FlatVectorDD levelGap;
  levelGap.numQubits = 3;
  levelGap.nodes.push_back({0, {FlatEdge{kFlatTerminal, {1.0, 0.0}},
                                FlatEdge{kFlatTerminal, {0.0, 0.0}}}});
  levelGap.nodes.push_back({2, {FlatEdge{0, {1.0, 0.0}},
                                FlatEdge{kFlatTerminal, {0.0, 0.0}}}});
  levelGap.root = {1, {1.0, 0.0}};
  EXPECT_THROW((void)importDD(dst, levelGap), std::invalid_argument);

  // Exactly-zero weight on an internal edge (zero edges must point at the
  // terminal).
  FlatVectorDD zeroEdge;
  zeroEdge.numQubits = 2;
  zeroEdge.nodes.push_back({0, {FlatEdge{kFlatTerminal, {1.0, 0.0}},
                                FlatEdge{kFlatTerminal, {0.0, 0.0}}}});
  zeroEdge.nodes.push_back({1, {FlatEdge{0, {0.0, 0.0}},
                                FlatEdge{0, {1.0, 0.0}}}});
  zeroEdge.root = {1, {1.0, 0.0}};
  EXPECT_THROW((void)importDD(dst, zeroEdge), std::invalid_argument);

  // Node index out of range.
  FlatVectorDD badRef;
  badRef.numQubits = 1;
  badRef.root = {3, {1.0, 0.0}};
  EXPECT_THROW((void)importDD(dst, badRef), std::invalid_argument);

  // Weighted terminal child above level 0.
  FlatVectorDD fatTerminal;
  fatTerminal.numQubits = 2;
  fatTerminal.nodes.push_back({1, {FlatEdge{kFlatTerminal, {1.0, 0.0}},
                                   FlatEdge{kFlatTerminal, {0.0, 0.0}}}});
  fatTerminal.root = {0, {1.0, 0.0}};
  EXPECT_THROW((void)importDD(dst, fatTerminal), std::invalid_argument);
}

TEST(DDMigration, SerializedBytesRoundTrip) {
  const auto circuit = test::randomCircuit(5, 60, 13);
  SimulatedState src(circuit);
  const FlatVectorDD flat = exportDD(src.sim.package(), src.state);

  const std::vector<std::uint8_t> bytes = serializeDD(flat);
  EXPECT_EQ(deserializeVectorDD(bytes), flat);

  // Matrix arity through the same wire format.
  Package a(4);
  const MEdge m = buildCircuitMatrix(a, algo::makeQFTCircuit(4));
  a.incRef(m);
  const FlatMatrixDD mflat = exportDD(a, m);
  EXPECT_EQ(deserializeMatrixDD(serializeDD(mflat)), mflat);

  // Arity confusion is rejected: a vector blob is not a matrix blob.
  EXPECT_THROW((void)deserializeMatrixDD(bytes), MigrationError);
}

TEST(DDMigration, GoldenBlobPinsTheWireFormat) {
  // Byte-level golden blob: the serialized form of a small hand-built DD,
  // hardcoded so ANY change to the on-disk layout — field order, widths,
  // endianness, checksum chaining — fails this test instead of silently
  // breaking persisted spill files and cross-process migration. The format
  // is explicit little-endian; these bytes must decode identically on
  // every platform.
  //
  // Layout (offsets in bytes):
  //    0  u32  magic "MDdD" (0x4464444D)
  //    4  u32  version (1)
  //    8  u32  arity (2 = vector)
  //   12  u64  numQubits (1)
  //   20  u64  node count (1, excluding the terminal)
  //   28  u64  payload length (64 = one 20-byte root edge + one 44-byte node)
  //   36  u64  FNV-1a over the header with this field zeroed, then payload
  //   44  ...  root edge (i32 node index, f64 re, f64 im), then nodes
  //        (i32 level, then `arity` edges), children-before-parents.
  FlatVectorDD flat;
  flat.numQubits = 1;
  FlatNode<2> node;
  node.v = 0;
  node.children[0] = FlatEdge{kFlatTerminal, ComplexValue{1.0, 0.0}};
  node.children[1] = FlatEdge{kFlatTerminal, ComplexValue{0.5, -0.25}};
  flat.nodes.push_back(node);
  flat.root = FlatEdge{0, ComplexValue{0.75, 0.0}};

  const std::vector<std::uint8_t> kGoldenBlob = {
      0x4D, 0x44, 0x64, 0x44, 0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xC7, 0x31, 0x9F, 0x04, 0xF4, 0x3D, 0x90, 0x53, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE8, 0x3F, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0xE0, 0x3F, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0xBF,
  };
  // Encode: byte-for-byte identical to the pinned blob.
  EXPECT_EQ(serializeDD(flat), kGoldenBlob);
  // Decode: the pinned bytes reproduce the DD exactly.
  EXPECT_EQ(deserializeVectorDD(kGoldenBlob), flat);
  // And the blob is semantically live, not just parseable: it imports into
  // a real package.
  Package pkg(1);
  const VEdge imported = importDD(pkg, deserializeVectorDD(kGoldenBlob));
  pkg.incRef(imported);
  EXPECT_EQ(pkg.size(imported), flat.nodeCount());
}

TEST(DDMigration, DeserializeRejectsTruncation) {
  const auto circuit = test::randomCircuit(4, 40, 29);
  SimulatedState src(circuit);
  const std::vector<std::uint8_t> bytes =
      serializeDD(exportDD(src.sim.package(), src.state));
  ASSERT_GT(bytes.size(), 8U);

  // Every truncation point — header cuts and payload cuts alike — must be
  // rejected, never read out of bounds or produce a partial DD.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, bytes.size() / 2,
        bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + keep);
    EXPECT_THROW((void)deserializeVectorDD(cut), MigrationError)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(DDMigration, DeserializeRejectsBitFlips) {
  const auto circuit = test::randomCircuit(4, 40, 31);
  SimulatedState src(circuit);
  const std::vector<std::uint8_t> bytes =
      serializeDD(exportDD(src.sim.package(), src.state));

  // Flip one bit at a spread of positions across header and payload. Any
  // flip must either fail the checksum or trip a header/structure check —
  // importing silently-wrong edges is the failure mode this guards.
  for (std::size_t pos = 0; pos < bytes.size();
       pos += std::max<std::size_t>(1, bytes.size() / 23)) {
    std::vector<std::uint8_t> bad = bytes;
    bad[pos] ^= 0x10U;
    EXPECT_THROW((void)deserializeVectorDD(bad), MigrationError)
        << "bit flip at byte " << pos << " was accepted";
  }
}

TEST(DDMigration, DeserializeRejectsBadMagicAndVersion) {
  const auto circuit = test::randomCircuit(3, 20, 37);
  SimulatedState src(circuit);
  const std::vector<std::uint8_t> bytes =
      serializeDD(exportDD(src.sim.package(), src.state));

  std::vector<std::uint8_t> badMagic = bytes;
  badMagic[0] ^= 0xFFU;
  EXPECT_THROW((void)deserializeVectorDD(badMagic), MigrationError);

  // Version field sits right after the 4-byte magic; a future version must
  // be rejected up front rather than misparsed.
  std::vector<std::uint8_t> badVersion = bytes;
  badVersion[4] += 1;
  EXPECT_THROW((void)deserializeVectorDD(badVersion), MigrationError);

  EXPECT_THROW((void)deserializeVectorDD(nullptr, 0), MigrationError);
}

TEST(DDMigration, SerializedBlobSurvivesReimportAcrossPackages) {
  // End-to-end: bytes produced from one package rebuild an amplitude-
  // identical state in a fresh package — the property checkpoint/resume
  // and the cache spill rely on.
  const auto circuit = test::randomCircuit(5, 60, 41);
  SimulatedState src(circuit);
  Package& a = src.sim.package();
  const std::vector<std::uint8_t> bytes = serializeDD(exportDD(a, src.state));

  Package b(5);
  const VEdge imported = importDD(b, deserializeVectorDD(bytes));
  b.incRef(imported);
  test::expectAmplitudesNear(b.getVector(imported), a.getVector(src.state),
                             1e-12);
}

TEST(DDMigration, SourcePackageUntouchedByExport) {
  const auto circuit = test::randomCircuit(5, 50, 17);
  SimulatedState src(circuit);
  Package& a = src.sim.package();
  const std::size_t liveBefore = a.liveNodes();
  const auto statsBefore = a.stats();
  const FlatVectorDD flat = exportDD(a, src.state);
  (void)flat;
  EXPECT_EQ(a.liveNodes(), liveBefore);
  EXPECT_EQ(a.stats().garbageCollections, statsBefore.garbageCollections);
}

}  // namespace
}  // namespace ddsim::dd
