#include <gtest/gtest.h>

#include "sim/density.hpp"
#include "sim/simulator.hpp"
#include "sim/stochastic.hpp"
#include "test_util.hpp"

namespace ddsim::sim {
namespace {

TEST(Stochastic, Validation) {
  ir::Circuit circuit(1);
  circuit.h(0);
  EXPECT_THROW(simulateStochastic(circuit, {}, 0), std::invalid_argument);
  const NoiseChannel broken(
      "broken",
      {dd::GateMatrix{dd::ComplexValue{0.5, 0}, {0, 0}, {0, 0}, {0.5, 0}}});
  EXPECT_THROW(simulateStochastic(circuit, NoiseModel{{broken}}, 2),
               std::invalid_argument);
}

TEST(Stochastic, NoiselessTrajectoriesAreDeterministic) {
  // Without noise every trajectory is the exact pure state: the per-qubit
  // probabilities match the vector simulator exactly.
  const auto circuit = test::randomCircuit(4, 25, 91);
  const auto stoch = simulateStochastic(circuit, {}, 5, 3);

  CircuitSimulator vsim(circuit);
  const auto vres = vsim.run();
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_NEAR(stoch.meanProbabilityOfOne[q],
                vsim.package().probabilityOfOne(vres.finalState,
                                                static_cast<dd::Qubit>(q)),
                1e-9);
  }
  std::size_t total = 0;
  for (const auto& [outcome, count] : stoch.counts) {
    total += count;
  }
  EXPECT_EQ(total, 5U);
}

TEST(Stochastic, ConvergesToDensityMatrixResult) {
  // Bell pair under bit-flip noise: trajectory average vs. exact density
  // simulation, within Monte-Carlo tolerance.
  ir::Circuit circuit(2);
  circuit.h(0);
  circuit.cx(0, 1);
  const NoiseModel noise{{NoiseChannel::bitFlip(0.1)}};

  DensityMatrixSimulator dsim(circuit, noise);
  const auto dres = dsim.run();

  const auto stoch = simulateStochastic(circuit, noise, 800, 17);
  for (std::size_t q = 0; q < 2; ++q) {
    EXPECT_NEAR(stoch.meanProbabilityOfOne[q],
                dsim.probabilityOfOne(dres.rho, static_cast<dd::Qubit>(q)),
                0.05)
        << "qubit " << q;
  }
}

TEST(Stochastic, AmplitudeDampingDecaysTowardsGround) {
  ir::Circuit circuit(1);
  circuit.x(0);
  for (int i = 0; i < 5; ++i) {
    circuit.i(0);
  }
  const NoiseModel noise{{NoiseChannel::amplitudeDamping(0.3)}};
  const auto stoch = simulateStochastic(circuit, noise, 600, 23);
  // 6 applications: P(1) = 0.7^6 ~ 0.118.
  EXPECT_NEAR(stoch.meanProbabilityOfOne[0], std::pow(0.7, 6), 0.06);
}

TEST(Stochastic, MidCircuitMeasurementPerTrajectory) {
  ir::Circuit circuit(2, 1);
  circuit.h(0);
  circuit.measure(0, 0);
  circuit.classicControlled(ir::GateType::X, 1, {}, {}, 0);
  const auto stoch = simulateStochastic(circuit, {}, 400, 29);
  // Qubit 1 copies the measured bit: mean P(1) ~ 0.5 over trajectories, and
  // both qubits always agree in the sampled outcomes.
  EXPECT_NEAR(stoch.meanProbabilityOfOne[1], 0.5, 0.08);
  for (const auto& [outcome, count] : stoch.counts) {
    EXPECT_EQ((outcome & 1U) != 0, (outcome & 2U) != 0) << outcome;
    (void)count;
  }
}

TEST(Stochastic, DepolarizingSpreadsOutcomes) {
  ir::Circuit circuit(3);
  circuit.x(0);  // deterministic |001> without noise
  circuit.i(1);
  circuit.i(2);
  const auto clean = simulateStochastic(circuit, {}, 50, 31);
  EXPECT_EQ(clean.counts.size(), 1U);
  EXPECT_EQ(clean.counts.begin()->first, 1U);

  const NoiseModel noise{{NoiseChannel::depolarizing(0.5)}};
  const auto noisy = simulateStochastic(circuit, noise, 300, 31);
  EXPECT_GT(noisy.counts.size(), 2U);  // mass spread over many outcomes
}

}  // namespace
}  // namespace ddsim::sim
