/// Tests for the observability subsystem: span tracer lifecycle, Chrome
/// trace-event export + validation, metrics primitives, and the ServiceStats
/// latency histograms under a contended queue.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "ir/circuit.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "sim/simulator.hpp"

namespace ddsim {
namespace {

// ------------------------------------------------------------- histograms

TEST(Histogram, EmptyReportsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, QuantilesAreOrderedAndClampedToMax) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.observe(static_cast<double>(i) * 1e-4);  // 0.1 ms .. 100 ms
  }
  EXPECT_EQ(h.count(), 1000U);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_DOUBLE_EQ(h.max(), 0.1);
  // Geometric buckets carry bounded relative error (factor 1.5 layout).
  EXPECT_NEAR(p50, 0.05, 0.05 * 0.6);
  EXPECT_GT(p50, 0.0);
}

TEST(Histogram, NegativeAndNaNClampIntoFirstBucket) {
  obs::Histogram h;
  h.observe(-1.0);
  h.observe(std::nan(""));
  EXPECT_EQ(h.count(), 2U);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, OverflowBucketReportsMax) {
  obs::Histogram h;
  h.observe(1e9);  // far beyond the last finite bucket bound
  EXPECT_EQ(h.count(), 1U);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e9);
}

TEST(Histogram, SnapshotBucketsSumToCount) {
  obs::Histogram h;
  for (int i = 0; i < 257; ++i) {
    h.observe(1e-5 * (1 + i % 13));
  }
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 257U);
  std::uint64_t bucketSum = 0;
  for (const auto& [bound, count] : s.buckets) {
    bucketSum += count;
  }
  EXPECT_EQ(bucketSum, 257U);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(Histogram, ConcurrentObserversLoseNothing) {
  obs::Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(1e-6 * (t + 1) * (i % 50 + 1));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, RegistryReturnsStableInstancesAndExportsJson) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("jobs_total");
  c.add(3);
  registry.counter("jobs_total").add(2);  // same instance
  EXPECT_EQ(c.value(), 5U);

  registry.gauge("queue_depth").set(7.5);
  registry.histogram("latency").observe(0.25);

  const std::string json = registry.toJson();
  EXPECT_NE(json.find("\"jobs_total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 7.5"), std::string::npos);
  EXPECT_NE(json.find("\"latency\": {"), std::string::npos);
}

// ------------------------------------------------------------ span tracer

TEST(TraceCollector, DisabledSpansRecordNothing) {
  {
    const obs::ScopedSpan span("noop", obs::cat::kDd);
    obs::traceInstant("noop-instant", obs::cat::kDd);
  }
  obs::TraceCollector collector;  // never installed
  EXPECT_EQ(collector.eventCount(), 0U);
}

TEST(TraceCollector, RecordsBalancedNestedSpans) {
  obs::TraceCollector collector;
  collector.install();
  {
    const obs::ScopedSpan outer("outer", obs::cat::kSim);
    {
      const obs::ScopedSpan inner("inner", obs::cat::kDd, /*id=*/42);
    }
    obs::traceInstant("marker", obs::cat::kServe, /*id=*/7);
  }
  collector.stop();

  EXPECT_EQ(collector.eventCount(), 5U);  // 2x B, 2x E, 1x i
  const auto tracks = collector.tracks();
  ASSERT_EQ(tracks.size(), 1U);
  const auto& events = tracks[0]->events;
  ASSERT_EQ(events.size(), 5U);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[3].phase, 'i');
  EXPECT_EQ(events[3].id, 7U);
  EXPECT_EQ(events[4].phase, 'E');
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].timeNs, events[i - 1].timeNs);
  }
}

TEST(TraceCollector, SecondInstallThrowsStoppingFreesSlot) {
  obs::TraceCollector first;
  first.install();
  obs::TraceCollector second;
  EXPECT_THROW(second.install(), std::logic_error);
  first.stop();
  EXPECT_NO_THROW(second.install());
  second.stop();
}

TEST(TraceCollector, SpansAfterStopAreNoOps) {
  obs::TraceCollector collector;
  collector.install();
  { const obs::ScopedSpan span("recorded", obs::cat::kDd); }
  collector.stop();
  { const obs::ScopedSpan span("ignored", obs::cat::kDd); }
  EXPECT_EQ(collector.eventCount(), 2U);
}

TEST(TraceCollector, EachThreadGetsItsOwnTrack) {
  obs::TraceCollector collector;
  collector.install();
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 10; ++i) {
        const obs::ScopedSpan span("worker-span", obs::cat::kSim);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  collector.stop();
  EXPECT_EQ(collector.tracks().size(), kThreads);
  EXPECT_EQ(collector.eventCount(), kThreads * 10 * 2);
}

// ------------------------------------------------- Chrome trace validation

std::string exportToString(const obs::TraceCollector& collector) {
  std::ostringstream os;
  obs::writeChromeTrace(os, collector);
  return os.str();
}

TEST(ChromeTrace, ExportOfRealSpansValidates) {
  obs::TraceCollector collector;
  collector.install();
  std::vector<std::thread> threads;
  threads.reserve(2);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5; ++i) {
        const obs::ScopedSpan outer("outer", obs::cat::kSim);
        const obs::ScopedSpan inner("inner", obs::cat::kDd);
        obs::traceInstant("tick", obs::cat::kServe);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  collector.stop();

  const obs::TraceValidation v = obs::validateChromeTrace(exportToString(collector));
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.tracks, 2U);
  EXPECT_EQ(v.events, 2U * 5U * 5U);  // per thread: 2B + 2E + 1i per loop
}

TEST(ChromeTrace, ValidatorRejectsMalformedInput) {
  EXPECT_FALSE(obs::validateChromeTrace("not json at all").ok);
  EXPECT_FALSE(obs::validateChromeTrace("{\"noTraceEvents\": 1}").ok);
  EXPECT_FALSE(obs::validateChromeTrace("[1, 2, 3]").ok);
}

TEST(ChromeTrace, ValidatorRejectsUnbalancedSpans) {
  const std::string unbalanced =
      R"({"traceEvents": [{"ph": "B", "name": "a", "tid": 0, "ts": 1.0}]})";
  const obs::TraceValidation v = obs::validateChromeTrace(unbalanced);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("unclosed"), std::string::npos) << v.error;
}

TEST(ChromeTrace, ValidatorRejectsMismatchedEndName) {
  const std::string mismatched =
      R"({"traceEvents": [)"
      R"({"ph": "B", "name": "a", "tid": 0, "ts": 1.0},)"
      R"({"ph": "E", "name": "b", "tid": 0, "ts": 2.0}]})";
  EXPECT_FALSE(obs::validateChromeTrace(mismatched).ok);
}

TEST(ChromeTrace, ValidatorRejectsNonMonotoneTimestamps) {
  const std::string backwards =
      R"({"traceEvents": [)"
      R"({"ph": "B", "name": "a", "tid": 0, "ts": 5.0},)"
      R"({"ph": "E", "name": "a", "tid": 0, "ts": 2.0}]})";
  const obs::TraceValidation v = obs::validateChromeTrace(backwards);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("< previous"), std::string::npos) << v.error;
}

TEST(ChromeTrace, MissingFileFailsGracefully) {
  const obs::TraceValidation v =
      obs::validateChromeTraceFile("/nonexistent/trace.json");
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.error.empty());
}

/// CI hook: when DDSIM_TRACE_FILE points at a trace produced by
/// `ddsim_serve --trace-out`, validate it end-to-end.
TEST(ChromeTrace, ValidatesExternalTraceFileWhenProvided) {
  const char* path = std::getenv("DDSIM_TRACE_FILE");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "DDSIM_TRACE_FILE not set";
  }
  const obs::TraceValidation v = obs::validateChromeTraceFile(path);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_GT(v.events, 0U);
  EXPECT_GT(v.tracks, 0U);
}

// ----------------------------------------- end-to-end traced service runs

std::shared_ptr<const ir::Circuit> makeBell() {
  ir::Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.measureAll();
  return std::make_shared<const ir::Circuit>(std::move(c));
}

TEST(ObservedService, TracedRunExportsValidChromeTrace) {
  obs::TraceCollector collector;
  collector.install();
  {
    serve::ServiceConfig sc;
    sc.workers = 2;
    serve::SimulationService service(sc);
    const auto bell = makeBell();
    std::vector<serve::JobHandle> handles;
    handles.reserve(12);
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      serve::JobSpec spec;
      spec.circuit = bell;
      spec.seed = seed;
      handles.push_back(service.submit(std::move(spec)));
    }
    for (const auto& h : handles) {
      h.wait();
    }
    service.shutdown(/*drain=*/true);  // quiesce workers before export
  }
  collector.stop();

  EXPECT_GT(collector.eventCount(), 0U);
  EXPECT_EQ(collector.droppedCount(), 0U);
  const obs::TraceValidation v = obs::validateChromeTrace(exportToString(collector));
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_GT(v.events, 0U);
  // At least the two worker tracks carry events (submitters may add more).
  EXPECT_GE(v.tracks, 2U);
}

TEST(ObservedService, HistogramsUnderContendedQueue) {
  serve::ServiceConfig sc;
  sc.workers = 2;
  sc.startPaused = true;  // build up a real queue before any work starts
  sc.queueCapacity = 256;
  serve::SimulationService service(sc);
  const auto bell = makeBell();

  constexpr std::uint64_t kJobs = 40;
  std::vector<serve::JobHandle> handles;
  handles.reserve(kJobs);
  for (std::uint64_t seed = 0; seed < kJobs; ++seed) {
    serve::JobSpec spec;
    spec.circuit = bell;
    spec.seed = seed;  // distinct seeds: no coalescing, every job simulates
    handles.push_back(service.submit(std::move(spec)));
  }
  service.start();
  for (const auto& h : handles) {
    h.wait();
  }

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kJobs);

  // Queue-wait histogram covers every finished job.
  EXPECT_EQ(stats.queueLatencyHistogram.count, kJobs);
  EXPECT_LE(stats.queueLatencyP50Seconds, stats.queueLatencyP95Seconds);
  EXPECT_LE(stats.queueLatencyP95Seconds, stats.queueLatencyP99Seconds);
  EXPECT_LE(stats.queueLatencyP99Seconds, stats.queueLatencyHistogram.max);
  EXPECT_LE(stats.queueLatencyHistogram.max, stats.queueLatencyMaxSeconds +
                                                 1e-9);

  // Execution histogram covers exactly the simulated jobs.
  EXPECT_EQ(stats.execHistogram.count, stats.simulationsRun);
  EXPECT_LE(stats.execP50Seconds, stats.execP95Seconds);
  EXPECT_LE(stats.execP95Seconds, stats.execP99Seconds);
  EXPECT_LE(stats.execP99Seconds, stats.execHistogram.max);

  EXPECT_EQ(stats.degradationPerJobHistogram.count, stats.simulationsRun);

  // The JSON export carries the new quantile keys.
  const std::string json = stats.toJson();
  for (const char* needle :
       {"\"queue_latency_p50_seconds\":", "\"queue_latency_p95_seconds\":",
        "\"queue_latency_p99_seconds\":", "\"exec_p50_seconds\":",
        "\"exec_p95_seconds\":", "\"exec_p99_seconds\":",
        "\"queue_latency_histogram\":", "\"exec_histogram\":",
        "\"degradation_per_job_histogram\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace ddsim
