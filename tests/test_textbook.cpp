#include <gtest/gtest.h>

#include <cmath>

#include "algo/textbook.hpp"
#include "sim/simulator.hpp"

namespace ddsim::algo {
namespace {

std::uint64_t measuredValue(const std::vector<bool>& bits, std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(bits[i]) << i;
  }
  return v;
}

// ----------------------------------------------------------------------- QPE

class QpeExactTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(QpeExactTest, ExactPhasesAreMeasuredDeterministically) {
  const auto [bits, numerator] = GetParam();
  if (numerator >= (1ULL << bits)) {
    GTEST_SKIP();
  }
  const double phi =
      static_cast<double>(numerator) / static_cast<double>(1ULL << bits);
  const auto circuit = makePhaseEstimationCircuit(phi, bits);
  // Exactly representable phase: outcome is deterministic.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto result = sim::simulate(circuit, {}, seed);
    EXPECT_EQ(measuredValue(result.classicalBits, bits), numerator)
        << "bits=" << bits << " num=" << numerator;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, QpeExactTest,
                         ::testing::Combine(::testing::Values(3U, 5U, 8U),
                                            ::testing::Values(0ULL, 1ULL, 3ULL,
                                                              100ULL)));

TEST(Qpe, InexactPhaseConcentratesNearTruth) {
  const std::size_t bits = 7;
  const double phi = 1.0 / 3.0;
  const auto circuit = makePhaseEstimationCircuit(phi, bits);
  int near = 0;
  const int shots = 20;
  for (int seed = 0; seed < shots; ++seed) {
    const auto result =
        sim::simulate(circuit, {}, static_cast<std::uint64_t>(seed));
    const double estimate =
        static_cast<double>(measuredValue(result.classicalBits, bits)) /
        static_cast<double>(1ULL << bits);
    if (std::abs(estimate - phi) < 2.0 / (1ULL << bits)) {
      ++near;
    }
  }
  EXPECT_GE(near, shots * 3 / 5);  // theory: > 81% within +-2/2^m
}

// ---------------------------------------------------------------------- BV

TEST(BernsteinVazirani, RecoversHiddenString) {
  for (const std::uint64_t hidden : {0ULL, 1ULL, 0b101101ULL, 63ULL}) {
    const auto circuit = makeBernsteinVaziraniCircuit(hidden, 6);
    const auto result = sim::simulate(circuit);
    EXPECT_EQ(measuredValue(result.classicalBits, 6), hidden);
  }
}

TEST(BernsteinVazirani, SingleQueryScalesWide) {
  const std::uint64_t hidden = 0x2AAAAAAAAULL & ((1ULL << 30) - 1);
  const auto circuit = makeBernsteinVaziraniCircuit(hidden, 30);
  const auto result = sim::simulate(circuit);
  EXPECT_EQ(measuredValue(result.classicalBits, 30), hidden);
}

TEST(BernsteinVazirani, Validation) {
  EXPECT_THROW(makeBernsteinVaziraniCircuit(4, 2), std::invalid_argument);
  EXPECT_THROW(makeBernsteinVaziraniCircuit(0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------- DJ

TEST(DeutschJozsa, ConstantGivesAllZero) {
  const auto circuit = makeDeutschJozsaCircuit(7, /*balanced=*/false);
  const auto result = sim::simulate(circuit);
  EXPECT_EQ(measuredValue(result.classicalBits, 7), 0U);
}

TEST(DeutschJozsa, BalancedGivesNonZero) {
  for (const std::uint64_t mask : {1ULL, 0b1011ULL, 0b1111111ULL}) {
    const auto circuit = makeDeutschJozsaCircuit(7, true, mask);
    const auto result = sim::simulate(circuit);
    EXPECT_EQ(measuredValue(result.classicalBits, 7), mask);  // BV relation
    EXPECT_NE(measuredValue(result.classicalBits, 7), 0U);
  }
}

TEST(DeutschJozsa, Validation) {
  EXPECT_THROW(makeDeutschJozsaCircuit(3, true, 0), std::invalid_argument);
  EXPECT_THROW(makeDeutschJozsaCircuit(3, true, 16), std::invalid_argument);
}

// --------------------------------------------------------------- GHZ and W

TEST(GHZ, AmplitudesAndCompactness) {
  const auto circuit = makeGHZCircuit(10);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  auto& pkg = simulator.package();
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(pkg.getAmplitude(result.finalState, 0).r, s, 1e-12);
  EXPECT_NEAR(pkg.getAmplitude(result.finalState, (1ULL << 10) - 1).r, s, 1e-12);
  // GHZ is the classic compact-DD state: two paths, linear size.
  EXPECT_LE(pkg.size(result.finalState), 2 * 10 + 2);
}

TEST(WState, UniformOneHotAmplitudes) {
  const std::size_t n = 8;
  const auto circuit = makeWStateCircuit(n);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  auto& pkg = simulator.package();
  const double expected = 1.0 / std::sqrt(static_cast<double>(n));
  double total = 0;
  for (std::size_t q = 0; q < n; ++q) {
    const auto amp = pkg.getAmplitude(result.finalState, 1ULL << q);
    EXPECT_NEAR(amp.r, expected, 1e-9) << "one-hot " << q;
    total += amp.mag2();
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(pkg.getAmplitude(result.finalState, 0).mag2(), 0.0, 1e-12);
  EXPECT_NEAR(pkg.getAmplitude(result.finalState, 3).mag2(), 0.0, 1e-12);
}

TEST(WState, Validation) {
  EXPECT_THROW(makeWStateCircuit(1), std::invalid_argument);
}

}  // namespace
}  // namespace ddsim::algo
