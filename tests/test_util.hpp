/// \file test_util.hpp
/// \brief Shared helpers for the test suite: random states/circuits and
///        dense-vs-DD comparison utilities.

#pragma once

#include <gtest/gtest.h>

#include <complex>
#include <random>
#include <vector>

#include "baseline/dense_matrix.hpp"
#include "baseline/statevector.hpp"
#include "dd/package.hpp"
#include "ir/circuit.hpp"

namespace ddsim::test {

inline std::vector<dd::ComplexValue> randomAmplitudes(std::size_t numQubits,
                                                      std::mt19937_64& rng) {
  std::normal_distribution<double> dist;
  std::vector<dd::ComplexValue> amps(1ULL << numQubits);
  double norm = 0;
  for (auto& a : amps) {
    a = {dist(rng), dist(rng)};
    norm += a.mag2();
  }
  const double scale = 1.0 / std::sqrt(norm);
  for (auto& a : amps) {
    a = a * scale;
  }
  return amps;
}

inline void expectAmplitudesNear(const std::vector<dd::ComplexValue>& actual,
                                 const std::vector<std::complex<double>>& expected,
                                 double tol = 1e-8) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i].r, expected[i].real(), tol) << "index " << i;
    EXPECT_NEAR(actual[i].i, expected[i].imag(), tol) << "index " << i;
  }
}

inline void expectAmplitudesNear(const std::vector<dd::ComplexValue>& actual,
                                 const std::vector<dd::ComplexValue>& expected,
                                 double tol = 1e-8) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i].r, expected[i].r, tol) << "index " << i;
    EXPECT_NEAR(actual[i].i, expected[i].i, tol) << "index " << i;
  }
}

/// Global-phase-insensitive state comparison via fidelity.
inline void expectSameStateUpToPhase(
    const std::vector<dd::ComplexValue>& a,
    const std::vector<std::complex<double>>& b, double tol = 1e-8) {
  ASSERT_EQ(a.size(), b.size());
  std::complex<double> overlap{};
  for (std::size_t i = 0; i < a.size(); ++i) {
    overlap += std::conj(a[i].toStd()) * b[i];
  }
  EXPECT_NEAR(std::abs(overlap), 1.0, tol);
}

/// Random circuit over the full gate set (no measurements); suitable for
/// DD-vs-dense equivalence sweeps.
inline ir::Circuit randomCircuit(std::size_t numQubits, std::size_t numGates,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> qubitDist(0, numQubits - 1);
  std::uniform_real_distribution<double> angleDist(-3.14, 3.14);
  std::uniform_int_distribution<int> gateDist(0, 9);

  ir::Circuit circuit(numQubits, 0, "random_" + std::to_string(seed));
  for (std::size_t g = 0; g < numGates; ++g) {
    const auto target = static_cast<ir::Qubit>(qubitDist(rng));
    switch (gateDist(rng)) {
      case 0: circuit.h(target); break;
      case 1: circuit.x(target); break;
      case 2: circuit.t(target); break;
      case 3: circuit.sx(target); break;
      case 4: circuit.phase(angleDist(rng), target); break;
      case 5: circuit.ry(angleDist(rng), target); break;
      case 6: {
        auto control = static_cast<ir::Qubit>(qubitDist(rng));
        if (control == target) {
          control = static_cast<ir::Qubit>((control + 1) % numQubits);
        }
        circuit.cx(control, target);
        break;
      }
      case 7: {
        auto control = static_cast<ir::Qubit>(qubitDist(rng));
        if (control == target) {
          control = static_cast<ir::Qubit>((control + 1) % numQubits);
        }
        circuit.cphase(angleDist(rng), control, target);
        break;
      }
      case 8: {
        if (numQubits < 2) {
          circuit.h(target);
          break;
        }
        auto other = static_cast<ir::Qubit>(qubitDist(rng));
        if (other == target) {
          other = static_cast<ir::Qubit>((other + 1) % numQubits);
        }
        circuit.swap(target, other);
        break;
      }
      default: {
        // multi-controlled phase with mixed polarities
        dd::Controls controls;
        for (std::size_t q = 0; q < numQubits; ++q) {
          if (q != static_cast<std::size_t>(target) && (rng() & 3U) == 0) {
            controls.push_back(dd::Control{static_cast<dd::Qubit>(q),
                                           (rng() & 1U) != 0});
          }
        }
        circuit.mcphase(angleDist(rng), std::move(controls), target);
        break;
      }
    }
  }
  return circuit;
}

}  // namespace ddsim::test
