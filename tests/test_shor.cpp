#include <gtest/gtest.h>

#include "algo/numbertheory.hpp"
#include "algo/shor.hpp"
#include "sim/simulator.hpp"

namespace ddsim::algo {
namespace {

TEST(Shor, ValidatesInstances) {
  EXPECT_THROW(makeShorOracleCircuit(2, 1), std::invalid_argument);
  EXPECT_THROW(makeShorOracleCircuit(15, 1), std::invalid_argument);
  EXPECT_THROW(makeShorOracleCircuit(15, 5), std::invalid_argument);  // gcd>1
  EXPECT_THROW(makeShorBeauregardCircuit(15, 20), std::invalid_argument);
}

TEST(Shor, CircuitWidths) {
  // N=15: n=4 -> Beauregard 2n+3 = 11 qubits, oracle variant n+1 = 5.
  EXPECT_EQ(makeShorBeauregardCircuit(15, 7).numQubits(), 11U);
  EXPECT_EQ(makeShorOracleCircuit(15, 7).numQubits(), 5U);
  EXPECT_EQ(makeShorBeauregardCircuit(15, 7).numClbits(), 8U);
}

TEST(Shor, BenchmarkNames) {
  EXPECT_EQ(shorBenchmarkName(15, 7), "shor_15_7_11");
  EXPECT_EQ(shorBenchmarkName(15, 7, true), "shordd_15_7_5");
}

TEST(Shor, MeasuredValueAssembly) {
  const std::vector<bool> bits = {true, false, true, true};
  EXPECT_EQ(shorMeasuredValue(bits, 4), 0b1101U);
  EXPECT_THROW(shorMeasuredValue(bits, 6), std::invalid_argument);
}

TEST(Shor, FactorsFromOrder) {
  // N=15, a=7: order 4, 7^2=4 mod 15 -> gcd(5,15)=5, gcd(3,15)=3.
  const auto f = factorsFromOrder(15, 7, 4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->first * f->second, 15U);
  // Odd order gives nothing.
  EXPECT_FALSE(factorsFromOrder(15, 7, 3).has_value());
  // a^{r/2} = -1 mod N gives nothing: N=15, a=14 has order 2, 14 = -1.
  EXPECT_FALSE(factorsFromOrder(15, 14, 2).has_value());
}

/// Runs phase estimation repeatedly until the order is recovered; with 2n
/// phase bits a handful of trials succeeds with overwhelming probability.
std::optional<std::uint64_t> recoverOrder(const ir::Circuit& circuit,
                                          std::uint64_t N, std::uint64_t a,
                                          std::size_t phaseBits,
                                          sim::StrategyConfig config = {}) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result = sim::simulate(circuit, config, seed);
    const std::uint64_t measured =
        shorMeasuredValue(result.classicalBits, phaseBits);
    if (const auto r = orderFromPhase(measured, static_cast<std::uint32_t>(phaseBits), a, N)) {
      return r;
    }
  }
  return std::nullopt;
}

class ShorOracleTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(ShorOracleTest, RecoversMultiplicativeOrder) {
  const auto [N, a] = GetParam();
  const std::size_t m = 2 * bitLength(N);
  const auto circuit = makeShorOracleCircuit(N, a);
  const auto order = recoverOrder(circuit, N, a, m);
  ASSERT_TRUE(order.has_value()) << "N=" << N << " a=" << a;
  EXPECT_EQ(*order, multiplicativeOrder(a, N).value());
}

INSTANTIATE_TEST_SUITE_P(Instances, ShorOracleTest,
                         ::testing::Values(std::make_tuple(15U, 7U),
                                           std::make_tuple(15U, 2U),
                                           std::make_tuple(21U, 2U),
                                           std::make_tuple(21U, 13U),
                                           std::make_tuple(33U, 5U),
                                           std::make_tuple(35U, 4U)));

TEST(Shor, BeauregardRecoversOrderN15) {
  const std::uint64_t N = 15;
  const std::uint64_t a = 7;
  const auto circuit = makeShorBeauregardCircuit(N, a);
  const auto order = recoverOrder(circuit, N, a, 2 * bitLength(N));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, 4U);
  const auto factors = factorsFromOrder(N, a, *order);
  ASSERT_TRUE(factors.has_value());
  EXPECT_EQ(std::min(factors->first, factors->second), 3U);
  EXPECT_EQ(std::max(factors->first, factors->second), 5U);
}

TEST(Shor, BeauregardRecoversOrderN21) {
  const std::uint64_t N = 21;
  const std::uint64_t a = 2;
  const auto circuit = makeShorBeauregardCircuit(N, a);
  const auto order =
      recoverOrder(circuit, N, a, 2 * bitLength(N),
                   sim::StrategyConfig::kOperations(8));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, multiplicativeOrder(2, 21).value());
}

TEST(Shor, OracleAndBeauregardAgreeOnPhaseDistribution) {
  // Same seed does not imply the same sample (different circuits consume
  // randomness differently), but both must produce phases consistent with
  // multiples of 1/r. Check that every sample's best convergent divides r.
  const std::uint64_t N = 15;
  const std::uint64_t a = 2;  // order 4
  const std::size_t m = 2 * bitLength(N);
  for (const bool oracle : {true, false}) {
    const auto circuit = oracle ? makeShorOracleCircuit(N, a)
                                : makeShorBeauregardCircuit(N, a);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto result = sim::simulate(circuit, {}, seed);
      const std::uint64_t measured = shorMeasuredValue(result.classicalBits, m);
      // measured / 2^m must be close to s/4 for some integer s.
      const double phase =
          static_cast<double>(measured) / static_cast<double>(1ULL << m);
      const double nearest = std::round(phase * 4.0) / 4.0;
      EXPECT_NEAR(phase, nearest, 0.08)
          << (oracle ? "oracle" : "beauregard") << " seed " << seed;
    }
  }
}

TEST(Shor, EndToEndFactorization) {
  // Keep sampling until the classical post-processing yields factors.
  const std::uint64_t N = 15;
  const std::uint64_t a = 7;
  const std::size_t m = 2 * bitLength(N);
  const auto circuit = makeShorOracleCircuit(N, a);
  bool factored = false;
  for (std::uint64_t seed = 1; seed <= 20 && !factored; ++seed) {
    const auto result = sim::simulate(circuit, {}, seed);
    const std::uint64_t measured = shorMeasuredValue(result.classicalBits, m);
    const auto order = orderFromPhase(measured, static_cast<std::uint32_t>(m), a, N);
    if (!order) {
      continue;
    }
    if (const auto factors = factorsFromOrder(N, a, *order)) {
      EXPECT_EQ(factors->first * factors->second, N);
      factored = true;
    }
  }
  EXPECT_TRUE(factored);
}

TEST(Shor, OracleCircuitUsesOracleOps) {
  const auto circuit = makeShorOracleCircuit(15, 7);
  std::size_t oracles = 0;
  for (const auto& op : circuit.ops()) {
    oracles += op->kind() == ir::OpKind::Oracle ? 1U : 0U;
  }
  EXPECT_EQ(oracles, 2U * bitLength(15));
}

TEST(Shor, BeauregardGateCountIsSubstantial) {
  // The gate-level circuit is orders of magnitude larger than the oracle
  // variant — the very asymmetry DD-construct exploits.
  const auto gateLevel = makeShorBeauregardCircuit(15, 7);
  const auto oracle = makeShorOracleCircuit(15, 7);
  EXPECT_GT(gateLevel.flatGateCount(), 50U * oracle.flatGateCount());
}

}  // namespace
}  // namespace ddsim::algo
