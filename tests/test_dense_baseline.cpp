#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "baseline/dense_matrix.hpp"
#include "baseline/statevector.hpp"
#include "ir/gate.hpp"
#include "test_util.hpp"

namespace ddsim::baseline {
namespace {

TEST(DenseMatrix, IdentityAndMultiply) {
  const DenseMatrix id = DenseMatrix::identity(4);
  DenseMatrix m(4);
  m.at(0, 1) = {1.0, 2.0};
  m.at(3, 2) = {-1.0, 0.5};
  EXPECT_TRUE((id * m).approxEquals(m));
  EXPECT_TRUE((m * id).approxEquals(m));
}

TEST(DenseMatrix, KroneckerDimensions) {
  const DenseMatrix a = DenseMatrix::identity(2);
  const DenseMatrix b = DenseMatrix::identity(4);
  EXPECT_EQ(a.kron(b).dim(), 8U);
  EXPECT_TRUE(a.kron(b).approxEquals(DenseMatrix::identity(8)));
}

TEST(DenseMatrix, DaggerInvolution) {
  DenseMatrix m(2);
  m.at(0, 0) = {1.0, 1.0};
  m.at(0, 1) = {0.0, -2.0};
  m.at(1, 0) = {3.0, 0.0};
  m.at(1, 1) = {0.5, 0.25};
  EXPECT_TRUE(m.dagger().dagger().approxEquals(m));
  EXPECT_EQ(m.dagger().at(1, 0), std::conj(m.at(0, 1)));
}

TEST(DenseMatrix, GateUnitarity) {
  EXPECT_TRUE(DenseMatrix::fromGate(ir::gateMatrix(ir::GateType::H)).isUnitary());
  DenseMatrix notUnitary(2);
  notUnitary.at(0, 0) = 2.0;
  EXPECT_FALSE(notUnitary.isUnitary());
}

TEST(ExpandGate, CXTruthTable) {
  // CX with control 0, target 1 permutes |01> <-> |11>.
  const DenseMatrix cx =
      expandGate(ir::gateMatrix(ir::GateType::X), 2, 1, {dd::Control{0}});
  EXPECT_NEAR(cx.at(0, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(cx.at(3, 1).real(), 1.0, 1e-12);
  EXPECT_NEAR(cx.at(1, 3).real(), 1.0, 1e-12);
  EXPECT_NEAR(cx.at(2, 2).real(), 1.0, 1e-12);
  EXPECT_TRUE(cx.isUnitary());
}

TEST(ExpandGate, NegativeControl) {
  const DenseMatrix m = expandGate(ir::gateMatrix(ir::GateType::X), 2, 1,
                                   {dd::Control{0, false}});
  // applies X on target when control reads |0>: |00> <-> |10>.
  EXPECT_NEAR(m.at(2, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(m.at(0, 2).real(), 1.0, 1e-12);
  EXPECT_NEAR(m.at(1, 1).real(), 1.0, 1e-12);
  EXPECT_NEAR(m.at(3, 3).real(), 1.0, 1e-12);
}

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
  EXPECT_NEAR(sv.norm2(), 1.0, 1e-12);
}

TEST(StateVector, HadamardSuperposition) {
  StateVector sv(1);
  sv.applyGate(ir::gateMatrix(ir::GateType::H), 0);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), std::numbers::sqrt2 / 2, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), std::numbers::sqrt2 / 2, 1e-12);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  sv.applyGate(ir::gateMatrix(ir::GateType::H), 0);
  sv.applyGate(ir::gateMatrix(ir::GateType::X), 1, {dd::Control{0}});
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(3)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(1)), 0.0, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(2)), 0.0, 1e-12);
}

TEST(StateVector, GateApplicationMatchesDenseOperator) {
  std::mt19937_64 rng(77);
  StateVector sv(4);
  // Drive into a generic state first.
  sv.applyGate(ir::gateMatrix(ir::GateType::H), 0);
  sv.applyGate(ir::gateMatrix(ir::GateType::T), 0);
  sv.applyGate(ir::gateMatrix(ir::GateType::H), 2);
  sv.applyGate(ir::gateMatrix(ir::GateType::X), 3, {dd::Control{2}});

  const double theta = 0.77;
  const auto g = ir::gateMatrix(ir::GateType::RY, &theta);
  const dd::Controls controls{dd::Control{0}, dd::Control{3, false}};
  const DenseMatrix op = expandGate(g, 4, 1, controls);
  const auto expected = op * sv.amplitudes();
  sv.applyGate(g, 1, controls);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(std::abs(sv.amplitudes()[i] - expected[i]), 0.0, 1e-10);
  }
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector sv(2);
  sv.applyGate(ir::gateMatrix(ir::GateType::X), 0);  // |01>
  sv.applySwap(0, 1);                                // -> |10>
  EXPECT_NEAR(std::norm(sv.amplitude(2)), 1.0, 1e-12);
}

TEST(StateVector, ControlledSwapRespectsControl) {
  StateVector sv(3);
  sv.applyGate(ir::gateMatrix(ir::GateType::X), 0);
  sv.applySwap(0, 1, {dd::Control{2}});  // control |0>: no-op
  EXPECT_NEAR(std::norm(sv.amplitude(1)), 1.0, 1e-12);
  sv.applyGate(ir::gateMatrix(ir::GateType::X), 2);
  sv.applySwap(0, 1, {dd::Control{2}});  // control |1>: swap
  EXPECT_NEAR(std::norm(sv.amplitude(0b110)), 1.0, 1e-12);
}

TEST(StateVector, OracleAppliesPermutation) {
  StateVector sv(3);
  sv.setBasisState(0b011);
  const ir::OracleOperation oracle(
      "inc", 3, [](std::uint64_t x) { return (x + 1) % 8; });
  sv.applyOracle(oracle);
  EXPECT_NEAR(std::norm(sv.amplitude(0b100)), 1.0, 1e-12);
}

TEST(StateVector, ControlledOracle) {
  StateVector sv(3);
  sv.setBasisState(0b001);  // control (qubit 2) is 0
  const ir::OracleOperation oracle(
      "inc", 2, [](std::uint64_t x) { return (x + 1) % 4; },
      {dd::Control{2}});
  sv.applyOracle(oracle);
  EXPECT_NEAR(std::norm(sv.amplitude(0b001)), 1.0, 1e-12);  // unchanged
  sv.setBasisState(0b101);  // control is 1
  sv.applyOracle(oracle);
  EXPECT_NEAR(std::norm(sv.amplitude(0b110)), 1.0, 1e-12);
}

TEST(StateVector, MeasurementCollapses) {
  StateVector sv(2);
  sv.applyGate(ir::gateMatrix(ir::GateType::H), 0);
  sv.applyGate(ir::gateMatrix(ir::GateType::X), 1, {dd::Control{0}});
  std::mt19937_64 rng(5);
  const int m0 = sv.measureCollapsing(0, rng);
  // Entangled pair: the second qubit must agree.
  EXPECT_NEAR(sv.probabilityOfOne(1), m0 == 1 ? 1.0 : 0.0, 1e-12);
  EXPECT_NEAR(sv.norm2(), 1.0, 1e-12);
}

TEST(StateVector, RunCircuitHandlesAllOpKinds) {
  // Bell pair, then a conditional X undoes the correlation: qubit 1 always
  // ends in |0> regardless of the measurement outcome on qubit 0.
  ir::Circuit circuit(2, 2);
  circuit.h(0);
  circuit.cx(0, 1);
  circuit.barrier();
  circuit.measure(0, 0);
  circuit.classicControlled(ir::GateType::X, 1, {}, {}, 0);
  circuit.measure(1, 1);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = runOnStateVector(circuit, seed);
    EXPECT_FALSE(result.classicalBits[1]) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ddsim::baseline
