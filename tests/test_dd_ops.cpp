#include <gtest/gtest.h>

#include <random>

#include "baseline/dense_matrix.hpp"
#include "dd/package.hpp"
#include "ir/gate.hpp"
#include "test_util.hpp"

namespace ddsim::dd {
namespace {

using baseline::DenseMatrix;
using Cx = std::complex<double>;

std::vector<Cx> toStdVector(const std::vector<ComplexValue>& v) {
  std::vector<Cx> out;
  out.reserve(v.size());
  for (const auto& a : v) {
    out.push_back(a.toStd());
  }
  return out;
}

// ------------------------------------------------------------------ addition

TEST(DDOps, AddMatchesElementwiseSum) {
  Package p(5);
  std::mt19937_64 rng(101);
  const auto a = test::randomAmplitudes(5, rng);
  const auto b = test::randomAmplitudes(5, rng);
  const VEdge da = p.makeStateFromVector(a);
  const VEdge db = p.makeStateFromVector(b);
  const VEdge sum = p.add(da, db);
  const auto got = p.getVector(sum);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].r, a[i].r + b[i].r, 1e-9);
    EXPECT_NEAR(got[i].i, a[i].i + b[i].i, 1e-9);
  }
}

TEST(DDOps, AddIsCommutative) {
  Package p(4);
  std::mt19937_64 rng(102);
  const VEdge da = p.makeStateFromVector(test::randomAmplitudes(4, rng));
  const VEdge db = p.makeStateFromVector(test::randomAmplitudes(4, rng));
  const VEdge ab = p.add(da, db);
  const VEdge ba = p.add(db, da);
  EXPECT_EQ(ab.p, ba.p);
  EXPECT_EQ(ab.w, ba.w);
}

TEST(DDOps, AddWithZeroIsIdentity) {
  Package p(3);
  std::mt19937_64 rng(103);
  const VEdge v = p.makeStateFromVector(test::randomAmplitudes(3, rng));
  const VEdge sum = p.add(v, p.vZero());
  EXPECT_EQ(sum.p, v.p);
  EXPECT_EQ(sum.w, v.w);
}

TEST(DDOps, AddOppositeStatesIsZero) {
  Package p(3);
  std::mt19937_64 rng(104);
  auto amps = test::randomAmplitudes(3, rng);
  const VEdge v = p.makeStateFromVector(amps);
  for (auto& a : amps) {
    a = a * -1.0;
  }
  const VEdge neg = p.makeStateFromVector(amps);
  const VEdge sum = p.add(v, neg);
  EXPECT_TRUE(sum.isZeroTerminal());
}

TEST(DDOps, MatrixAddMatchesDense) {
  Package p(3);
  std::mt19937_64 rng(105);
  std::normal_distribution<double> dist;
  std::vector<ComplexValue> ma(64);
  std::vector<ComplexValue> mb(64);
  for (std::size_t i = 0; i < 64; ++i) {
    ma[i] = {dist(rng), dist(rng)};
    mb[i] = {dist(rng), dist(rng)};
  }
  const MEdge sum = p.add(p.makeMatrixFromDense(ma), p.makeMatrixFromDense(mb));
  const auto got = p.getMatrix(sum);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(got[i].r, ma[i].r + mb[i].r, 1e-9);
    EXPECT_NEAR(got[i].i, ma[i].i + mb[i].i, 1e-9);
  }
}

// ------------------------------------------------------- gate DDs vs. dense

struct GateCase {
  ir::GateType type;
  std::vector<double> params;
};

class GateDDTest : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateDDTest, MatchesDenseExpansion) {
  const auto& [type, params] = GetParam();
  const GateMatrix g =
      ir::gateMatrix(type, params.empty() ? nullptr : params.data());
  // Sweep targets and control configurations on 4 qubits.
  Package p(4);
  const std::vector<Controls> controlSets = {
      {},
      {Control{2}},
      {Control{0, false}},
      {Control{2}, Control{0}},
      {Control{3, false}, Control{0, true}},
  };
  for (Qubit target = 0; target < 4; ++target) {
    for (const auto& controls : controlSets) {
      bool clash = false;
      for (const auto& c : controls) {
        clash |= c.qubit == target;
      }
      if (clash) {
        continue;
      }
      const MEdge dd = p.makeGateDD(g, target, controls);
      const DenseMatrix expected = baseline::expandGate(g, 4, target, controls);
      const auto got = p.getMatrix(dd);
      for (std::size_t i = 0; i < got.size(); ++i) {
        const std::size_t r = i / 16;
        const std::size_t c = i % 16;
        EXPECT_NEAR(got[i].r, expected.at(r, c).real(), 1e-10)
            << "target " << target << " entry " << i;
        EXPECT_NEAR(got[i].i, expected.at(r, c).imag(), 1e-10);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateDDTest,
    ::testing::Values(GateCase{ir::GateType::I, {}}, GateCase{ir::GateType::X, {}},
                      GateCase{ir::GateType::Y, {}}, GateCase{ir::GateType::Z, {}},
                      GateCase{ir::GateType::H, {}}, GateCase{ir::GateType::S, {}},
                      GateCase{ir::GateType::Sdg, {}},
                      GateCase{ir::GateType::T, {}},
                      GateCase{ir::GateType::Tdg, {}},
                      GateCase{ir::GateType::SX, {}},
                      GateCase{ir::GateType::SXdg, {}},
                      GateCase{ir::GateType::SY, {}},
                      GateCase{ir::GateType::SYdg, {}},
                      GateCase{ir::GateType::RX, {0.7}},
                      GateCase{ir::GateType::RY, {-1.3}},
                      GateCase{ir::GateType::RZ, {2.1}},
                      GateCase{ir::GateType::Phase, {0.9}},
                      GateCase{ir::GateType::U, {0.5, 1.1, -0.4}}));

TEST(GateDD, AllGateMatricesAreUnitary) {
  for (const auto type :
       {ir::GateType::I, ir::GateType::X, ir::GateType::Y, ir::GateType::Z,
        ir::GateType::H, ir::GateType::S, ir::GateType::Sdg, ir::GateType::T,
        ir::GateType::Tdg, ir::GateType::SX, ir::GateType::SXdg,
        ir::GateType::SY, ir::GateType::SYdg}) {
    EXPECT_TRUE(DenseMatrix::fromGate(ir::gateMatrix(type)).isUnitary())
        << ir::gateName(type);
  }
  const double params[3] = {0.3, -0.8, 1.9};
  for (const auto type : {ir::GateType::RX, ir::GateType::RY, ir::GateType::RZ,
                          ir::GateType::Phase, ir::GateType::U}) {
    EXPECT_TRUE(DenseMatrix::fromGate(ir::gateMatrix(type, params)).isUnitary())
        << ir::gateName(type);
  }
}

TEST(GateDD, SqrtGatesSquareToPauli) {
  const DenseMatrix sx = DenseMatrix::fromGate(ir::gateMatrix(ir::GateType::SX));
  const DenseMatrix x = DenseMatrix::fromGate(ir::gateMatrix(ir::GateType::X));
  EXPECT_TRUE((sx * sx).approxEquals(x, 1e-12));
  const DenseMatrix sy = DenseMatrix::fromGate(ir::gateMatrix(ir::GateType::SY));
  const DenseMatrix y = DenseMatrix::fromGate(ir::gateMatrix(ir::GateType::Y));
  EXPECT_TRUE((sy * sy).approxEquals(y, 1e-12));
}

// ------------------------------------------------------------ multiplication

TEST(DDOps, MatrixVectorMatchesDense) {
  Package p(4);
  std::mt19937_64 rng(106);
  const auto amps = test::randomAmplitudes(4, rng);
  const VEdge v = p.makeStateFromVector(amps);
  const GateMatrix h = ir::gateMatrix(ir::GateType::H);
  for (Qubit t = 0; t < 4; ++t) {
    const VEdge got = p.multiply(p.makeGateDD(h, t), v);
    const auto expected = baseline::expandGate(h, 4, t) * toStdVector(amps);
    test::expectAmplitudesNear(p.getVector(got), expected);
  }
}

TEST(DDOps, MatrixMatrixMatchesDense) {
  Package p(3);
  const GateMatrix h = ir::gateMatrix(ir::GateType::H);
  const GateMatrix x = ir::gateMatrix(ir::GateType::X);
  const MEdge hd = p.makeGateDD(h, 0);
  const MEdge cx = p.makeGateDD(x, 1, {Control{0}});
  const MEdge prod = p.multiply(cx, hd);

  const DenseMatrix expected =
      baseline::expandGate(x, 3, 1, {Control{0}}) * baseline::expandGate(h, 3, 0);
  const auto got = p.getMatrix(prod);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].r, expected.at(i / 8, i % 8).real(), 1e-10);
    EXPECT_NEAR(got[i].i, expected.at(i / 8, i % 8).imag(), 1e-10);
  }
}

TEST(DDOps, AssociativityOfProductChains) {
  // (M3 M2) M1 v == M3 (M2 (M1 v)) — the algebraic fact behind Eq. 1 vs 2.
  Package p(4);
  std::mt19937_64 rng(107);
  const VEdge v = p.makeStateFromVector(test::randomAmplitudes(4, rng));
  const MEdge m1 = p.makeGateDD(ir::gateMatrix(ir::GateType::H), 0);
  const MEdge m2 = p.makeGateDD(ir::gateMatrix(ir::GateType::X), 2, {Control{0}});
  const MEdge m3 = p.makeGateDD(ir::gateMatrix(ir::GateType::T), 3);

  const VEdge seq = p.multiply(m3, p.multiply(m2, p.multiply(m1, v)));
  const VEdge combined = p.multiply(p.multiply(m3, p.multiply(m2, m1)), v);
  EXPECT_EQ(seq.p, combined.p);
  EXPECT_NEAR(p.fidelity(seq, combined), 1.0, 1e-10);
}

TEST(DDOps, ZeroShortCircuits) {
  Package p(3);
  const MEdge id = p.makeIdent();
  EXPECT_TRUE(p.multiply(id, p.vZero()).isZeroTerminal());
  EXPECT_TRUE(p.multiply(p.mZero(), p.makeZeroState()).isZeroTerminal());
  EXPECT_TRUE(p.multiply(p.mZero(), id).isZeroTerminal());
}

// -------------------------------------------------------------- kronecker

TEST(DDOps, KroneckerMatrixMatchesDense) {
  // H (x) T over 2 qubits: T on the low qubit, H shifted to the high one.
  Package p(2);
  const GateMatrix h = ir::gateMatrix(ir::GateType::H);
  const GateMatrix t = ir::gateMatrix(ir::GateType::T);
  const MEdge tLow = p.makeSmallMatrixFromDense(
      std::vector<ComplexValue>{t[0], t[1], t[2], t[3]});
  const MEdge hRaw = p.makeSmallMatrixFromDense(
      std::vector<ComplexValue>{h[0], h[1], h[2], h[3]});
  const MEdge kron = p.kronecker(hRaw, tLow);
  ASSERT_FALSE(kron.isTerminal());
  EXPECT_EQ(kron.p->v, 1);

  const DenseMatrix expected =
      DenseMatrix::fromGate(h).kron(DenseMatrix::fromGate(t));
  const auto got = p.getMatrix(kron);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].r, expected.at(i / 4, i % 4).real(), 1e-10);
    EXPECT_NEAR(got[i].i, expected.at(i / 4, i % 4).imag(), 1e-10);
  }
}

TEST(DDOps, KroneckerVectorBuildsProductState) {
  Package p(4);
  std::mt19937_64 rng(108);
  // |phi> on the high 2 qubits, |psi> on the low 2 qubits.
  const auto a = test::randomAmplitudes(2, rng);
  const auto b = test::randomAmplitudes(2, rng);
  const VEdge va = p.makeSmallStateFromVector(a);
  const VEdge vb = p.makeSmallStateFromVector(b);
  const VEdge prod = p.kronecker(vb, va);
  const auto got = p.getVector(prod);
  for (std::size_t hi = 0; hi < 4; ++hi) {
    for (std::size_t lo = 0; lo < 4; ++lo) {
      const ComplexValue expected = b[hi] * a[lo];
      EXPECT_NEAR(got[hi * 4 + lo].r, expected.r, 1e-10);
      EXPECT_NEAR(got[hi * 4 + lo].i, expected.i, 1e-10);
    }
  }
}

// ----------------------------------------------- transpose / inner products

TEST(DDOps, ConjugateTransposeMatchesDense) {
  Package p(3);
  std::mt19937_64 rng(109);
  std::normal_distribution<double> dist;
  std::vector<ComplexValue> m(64);
  for (auto& e : m) {
    e = {dist(rng), dist(rng)};
  }
  const MEdge dd = p.makeMatrixFromDense(m);
  const auto got = p.getMatrix(p.conjugateTranspose(dd));
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(got[r * 8 + c].r, m[c * 8 + r].r, 1e-10);
      EXPECT_NEAR(got[r * 8 + c].i, -m[c * 8 + r].i, 1e-10);
    }
  }
}

TEST(DDOps, ConjugateTransposeOfUnitaryIsInverse) {
  Package p(3);
  const MEdge cx = p.makeGateDD(ir::gateMatrix(ir::GateType::X), 2, {Control{0}});
  const MEdge h = p.makeGateDD(ir::gateMatrix(ir::GateType::H), 1);
  const MEdge u = p.multiply(cx, h);
  const MEdge prod = p.multiply(p.conjugateTranspose(u), u);
  EXPECT_EQ(prod.p, p.makeIdent().p);
  EXPECT_NEAR(prod.w->r, 1.0, 1e-9);
  EXPECT_NEAR(prod.w->i, 0.0, 1e-9);
}

TEST(DDOps, InnerProductMatchesDense) {
  Package p(5);
  std::mt19937_64 rng(110);
  const auto a = test::randomAmplitudes(5, rng);
  const auto b = test::randomAmplitudes(5, rng);
  const VEdge va = p.makeStateFromVector(a);
  const VEdge vb = p.makeStateFromVector(b);
  std::complex<double> expected{};
  for (std::size_t i = 0; i < a.size(); ++i) {
    expected += std::conj(a[i].toStd()) * b[i].toStd();
  }
  const ComplexValue got = p.innerProduct(va, vb);
  EXPECT_NEAR(got.r, expected.real(), 1e-9);
  EXPECT_NEAR(got.i, expected.imag(), 1e-9);
  EXPECT_NEAR(p.norm2(va), 1.0, 1e-9);
  EXPECT_NEAR(p.fidelity(va, va), 1.0, 1e-9);
}

TEST(DDOps, UnitaryPreservesNorm) {
  Package p(6);
  std::mt19937_64 rng(111);
  VEdge v = p.makeStateFromVector(test::randomAmplitudes(6, rng));
  for (int i = 0; i < 20; ++i) {
    const auto t = static_cast<Qubit>(rng() % 6);
    const MEdge g = p.makeGateDD(ir::gateMatrix(ir::GateType::H), t);
    v = p.multiply(g, v);
  }
  EXPECT_NEAR(p.norm2(v), 1.0, 1e-8);
}

}  // namespace
}  // namespace ddsim::dd
