/// Tests for the multi-core DD engine: concurrent canonicalization tables,
/// quadrant-parallel kernels, and their interaction with garbage collection.
///
/// The determinism contract under test: a parallel run performs the same
/// arithmetic in the same operand order as the serial recursion, so results
/// are bit-identical (not merely within tolerance) — every EXPECT below that
/// compares amplitudes uses exact double equality on purpose.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "dd/complex_table.hpp"
#include "dd/memory_manager.hpp"
#include "dd/package.hpp"
#include "dd/unique_table.hpp"
#include "ir/gate.hpp"
#include "sim/pipeline.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim::dd {
namespace {

// ------------------------------------------------------- table-level races

TEST(ParallelTables, ComplexTableConcurrentLookupIsCanonical) {
  ComplexTable tab;
  tab.setConcurrent(true);

  // A fixed set of values, several of which collide within tolerance, so
  // racing threads are forced through overlapping shard lock sets.
  constexpr std::size_t kValues = 64;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 4000;
  std::vector<ComplexValue> values;
  values.reserve(kValues);
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t i = 0; i < kValues / 2; ++i) {
    const ComplexValue v{dist(rng), dist(rng)};
    values.push_back(v);
    // A near-duplicate inside tolerance: must canonicalize to the same entry.
    values.push_back(ComplexValue{v.r + kTolerance / 4, v.i - kTolerance / 4});
  }

  std::vector<std::vector<CWeight>> seen(kThreads,
                                         std::vector<CWeight>(kValues));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        const std::size_t i = (r + t * 17) % kValues;
        CWeight w = tab.lookup(values[i]);
        ASSERT_NE(w, nullptr);
        if (seen[t][i] == nullptr) {
          seen[t][i] = w;
        } else {
          // The canonical pointer for a value never changes mid-run.
          ASSERT_EQ(seen[t][i], w);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  // All threads agree on one canonical representative per value, and the
  // near-duplicates collapsed onto their base value's entry.
  for (std::size_t i = 0; i < kValues; ++i) {
    for (std::size_t t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[0][i], seen[t][i]) << "value " << i;
    }
  }
  for (std::size_t i = 0; i < kValues; i += 2) {
    EXPECT_EQ(seen[0][i], seen[0][i + 1]) << "near-duplicate pair " << i;
  }

  // Quiescent point: GC drops everything unreferenced and the table shrinks
  // back to the two constants.
  tab.setConcurrent(false);
  EXPECT_GT(tab.garbageCollect({}), 0U);
  EXPECT_EQ(tab.size(), 2U);
}

TEST(ParallelTables, UniqueTableConcurrentInsertIsCanonical) {
  ComplexTable ctab;
  MemoryManager<VNode> mm;
  UniqueTable<VNode> ut(mm);
  ut.resize(1);
  mm.setConcurrent(true);
  ut.setConcurrent(true);

  VNode terminal;
  terminal.v = kTerminalVar;

  // A pool of weight pairs; every (wa, wb) pair describes one logical node
  // that all threads race to insert.
  constexpr std::size_t kKeys = 32;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 3000;
  std::vector<CWeight> wa(kKeys);
  std::vector<CWeight> wb(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    wa[i] = ctab.lookup(0.25 + static_cast<double>(i), 0.0);
    wb[i] = ctab.lookup(0.0, -0.5 - static_cast<double>(i));
  }

  std::vector<std::vector<VNode*>> seen(kThreads,
                                        std::vector<VNode*>(kKeys, nullptr));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        const std::size_t i = (r + t * 7) % kKeys;
        VNode* cand = mm.get();
        cand->v = 0;
        cand->next = nullptr;
        cand->ref = 0;
        cand->flags = 0;
        cand->e[0] = VEdge{&terminal, wa[i]};
        cand->e[1] = VEdge{&terminal, wb[i]};
        VNode* n = ut.lookup(cand);
        ASSERT_NE(n, nullptr);
        if (seen[t][i] == nullptr) {
          seen[t][i] = n;
        } else {
          ASSERT_EQ(seen[t][i], n);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  for (std::size_t i = 0; i < kKeys; ++i) {
    for (std::size_t t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[0][i], seen[t][i]) << "key " << i;
    }
  }
  // Exactly one node per key survived the race.
  EXPECT_EQ(ut.liveCount(), kKeys);

  // Quiescent sweep recycles everything (ref == 0 throughout).
  ut.setConcurrent(false);
  mm.setConcurrent(false);
  EXPECT_EQ(ut.garbageCollect(), kKeys);
  EXPECT_EQ(ut.liveCount(), 0U);
}

// --------------------------------------------------- kernel-level identity

/// Apply a deterministic pseudo-random gate sequence via top-level MxV
/// multiplications and return the final amplitude vector. With
/// \p rotations false the sequence is Clifford+T only: every weight the
/// recursion ever computes then has a single association order, so parallel
/// runs are *bit-identical* to serial ones. Random RZ angles additionally
/// exercise the ulp-level canonicalization caveat (see Package::setWorkers).
std::vector<ComplexValue> runMxV(Package& p, std::size_t numQubits,
                                 std::size_t numGates, bool rotations) {
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<Qubit> qubit(
      0, static_cast<Qubit>(numQubits - 1));
  std::uniform_real_distribution<double> angle(0.0, 6.28);
  VEdge state = p.makeBasisState(0);
  p.incRef(state);
  for (std::size_t g = 0; g < numGates; ++g) {
    const Qubit target = qubit(rng);
    MEdge gate;
    switch (g % 4) {
      case 0:
        gate = p.makeGateDD(ir::gateMatrix(ir::GateType::H), target);
        break;
      case 1: {
        Qubit control = qubit(rng);
        if (control == target) {
          control = static_cast<Qubit>((target + 1) % numQubits);
        }
        gate = p.makeGateDD(ir::gateMatrix(ir::GateType::X), target,
                            Controls{Control{control, true}});
        break;
      }
      case 2: {
        if (rotations) {
          const double theta = angle(rng);
          gate = p.makeGateDD(ir::gateMatrix(ir::GateType::RZ, &theta), target);
        } else {
          angle(rng);  // keep the gate schedule identical either way
          gate = p.makeGateDD(ir::gateMatrix(ir::GateType::S), target);
        }
        break;
      }
      default:
        gate = p.makeGateDD(ir::gateMatrix(ir::GateType::T), target);
        break;
    }
    const VEdge next = p.multiply(gate, state);
    p.incRef(next);
    p.decRef(state);
    state = next;
  }
  auto amps = p.getVector(state);
  p.decRef(state);
  return amps;
}

TEST(ParallelKernels, MultiplyMxVBitIdenticalToSerial) {
  constexpr std::size_t kQubits = 9;
  constexpr std::size_t kGates = 60;
  Package serial(kQubits);
  Package parallel(kQubits);
  parallel.setWorkers(4);
  EXPECT_EQ(parallel.workers(), 4U);

  const auto expected = runMxV(serial, kQubits, kGates, /*rotations=*/false);
  const auto got = runMxV(parallel, kQubits, kGates, /*rotations=*/false);
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].r, got[i].r) << "amplitude " << i;
    EXPECT_EQ(expected[i].i, got[i].i) << "amplitude " << i;
  }
}

TEST(ParallelKernels, MultiplyMxVWithRotationsMatchesSerialToUlp) {
  // With random RZ angles, algebraically equal weights reached through
  // different association orders differ in the last ulp; which one becomes
  // the tolerance class's canonical representative is insertion-order
  // dependent, so serial and parallel runs may disagree *below* the
  // canonicalization tolerance (1e-13) while the DD structure is identical.
  constexpr std::size_t kQubits = 9;
  constexpr std::size_t kGates = 60;
  Package serial(kQubits);
  Package parallel(kQubits);
  parallel.setWorkers(4);

  const auto expected = runMxV(serial, kQubits, kGates, /*rotations=*/true);
  const auto got = runMxV(parallel, kQubits, kGates, /*rotations=*/true);
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected[i].r, got[i].r, 1e-12) << "amplitude " << i;
    EXPECT_NEAR(expected[i].i, got[i].i, 1e-12) << "amplitude " << i;
  }
}

/// Accumulate a block of gates with MxM products, then apply the block to a
/// basis state; returns the resulting amplitudes.
std::vector<ComplexValue> runMxM(Package& p, std::size_t numQubits,
                                 std::size_t numGates) {
  std::mt19937_64 rng(91);
  std::uniform_int_distribution<Qubit> qubit(
      0, static_cast<Qubit>(numQubits - 1));
  MEdge acc = p.makeIdent();
  p.incRef(acc);
  for (std::size_t g = 0; g < numGates; ++g) {
    const Qubit target = qubit(rng);
    MEdge gate;
    if (g % 3 == 0) {
      gate = p.makeGateDD(ir::gateMatrix(ir::GateType::H), target);
    } else if (g % 3 == 1) {
      Qubit control = qubit(rng);
      if (control == target) {
        control = static_cast<Qubit>((target + 1) % numQubits);
      }
      gate = p.makeGateDD(ir::gateMatrix(ir::GateType::X), target,
                          Controls{Control{control, true}});
    } else {
      gate = p.makeGateDD(ir::gateMatrix(ir::GateType::S), target);
    }
    const MEdge next = p.multiply(gate, acc);
    p.incRef(next);
    p.decRef(acc);
    acc = next;
  }
  const VEdge out = p.multiply(acc, p.makeBasisState(0));
  p.incRef(out);
  p.decRef(acc);
  auto amps = p.getVector(out);
  p.decRef(out);
  return amps;
}

TEST(ParallelKernels, MultiplyMxMBitIdenticalToSerial) {
  constexpr std::size_t kQubits = 8;
  constexpr std::size_t kGates = 40;
  Package serial(kQubits);
  Package parallel(kQubits);
  parallel.setWorkers(4);

  const auto expected = runMxM(serial, kQubits, kGates);
  const auto got = runMxM(parallel, kQubits, kGates);
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].r, got[i].r) << "amplitude " << i;
    EXPECT_EQ(expected[i].i, got[i].i) << "amplitude " << i;
  }
}

TEST(ParallelKernels, AddBitIdenticalToSerial) {
  constexpr std::size_t kQubits = 9;
  Package serial(kQubits);
  Package parallel(kQubits);
  parallel.setWorkers(3);

  const auto run = [&](Package& p) {
    std::mt19937_64 rng(33);
    const VEdge a = p.makeStateFromVector(test::randomAmplitudes(kQubits, rng));
    const VEdge b = p.makeStateFromVector(test::randomAmplitudes(kQubits, rng));
    return p.getVector(p.add(a, b));
  };
  const auto expected = run(serial);
  const auto got = run(parallel);
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].r, got[i].r);
    EXPECT_EQ(expected[i].i, got[i].i);
  }
}

TEST(ParallelKernels, SurvivesCollectionsBetweenParallelOps) {
  constexpr std::size_t kQubits = 9;
  Package serial(kQubits);
  Package parallel(kQubits);
  parallel.setWorkers(4);

  const auto run = [&](Package& p) {
    std::vector<ComplexValue> out;
    // Three rounds of work with full collections in between: collections are
    // quiescent-point operations and must leave the concurrent tables in a
    // consistent state for the next parallel round.
    for (int round = 0; round < 3; ++round) {
      auto amps = runMxV(p, kQubits, 25, /*rotations=*/false);
      out.insert(out.end(), amps.begin(), amps.end());
      p.garbageCollect();
      p.emergencyCollect();
    }
    return out;
  };
  const auto expected = run(serial);
  const auto got = run(parallel);
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].r, got[i].r) << "amplitude " << i;
    EXPECT_EQ(expected[i].i, got[i].i) << "amplitude " << i;
  }
  // Contention counters are exposed through CacheStats (may be zero on a
  // lightly loaded run, but must be readable and finite).
  const CacheStats cs = parallel.cacheStats();
  EXPECT_GE(cs.uniqueTableLockWaits, 0U);
  EXPECT_GE(cs.complexTableLockWaits, 0U);
  EXPECT_GE(cs.computeTableLockWaits, 0U);
}

TEST(ParallelKernels, SetWorkersRoundTripRestoresSerialEngine) {
  constexpr std::size_t kQubits = 8;
  Package p(kQubits);
  EXPECT_EQ(p.workers(), 1U);
  const auto before = runMxV(p, kQubits, 20, /*rotations=*/false);
  p.setWorkers(4);
  const auto during = runMxV(p, kQubits, 20, /*rotations=*/false);
  p.setWorkers(1);
  EXPECT_EQ(p.workers(), 1U);
  const auto after = runMxV(p, kQubits, 20, /*rotations=*/false);
  ASSERT_EQ(before.size(), during.size());
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].r, during[i].r);
    EXPECT_EQ(before[i].i, during[i].i);
    EXPECT_EQ(before[i].r, after[i].r);
    EXPECT_EQ(before[i].i, after[i].i);
  }
}

TEST(ParallelKernels, ResourceExhaustionPropagatesFromWorkers) {
  constexpr std::size_t kQubits = 10;
  Package p(kQubits);
  p.setWorkers(4);
  ResourceBudget budget;
  budget.maxLiveNodes = 64;  // far too small for a dense 10-qubit state
  p.governor().setBudget(budget);
  EXPECT_THROW(runMxV(p, kQubits, 40, /*rotations=*/true), ResourceExhausted);
  // The package stays usable after the failed operation: lift the budget,
  // collect, and run to completion.
  p.governor().setBudget(ResourceBudget{});
  p.garbageCollect();
  EXPECT_NO_THROW(runMxV(p, kQubits, 10, /*rotations=*/true));
}

}  // namespace
}  // namespace ddsim::dd

// ------------------------------------------------- pipeline reorder buffer

namespace ddsim::sim {
namespace {

/// A PipelineBlock whose firstOp doubles as its sequence-number marker.
PipelineBlock marker(std::uint64_t seq) {
  PipelineBlock blk;
  blk.firstOp = static_cast<std::size_t>(seq);
  return blk;
}

TEST(ReorderBuffer, DeliversInSequenceOrderAcrossRacingProducers) {
  ReorderBuffer buf(4);
  constexpr std::uint64_t kBlocks = 24;
  constexpr std::size_t kProducers = 3;
  // Producers complete blocks in interleaved (round-robin) order with
  // deterministic jitter — exactly the completion-order scramble an N-deep
  // builder fan-out produces.
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&buf, t] {
      for (std::uint64_t seq = t; seq < kBlocks; seq += kProducers) {
        if (seq % (t + 2) == 0) {
          std::this_thread::yield();
        }
        EXPECT_TRUE(buf.push(seq, marker(seq)));
      }
    });
  }
  std::vector<std::size_t> order;
  while (order.size() < kBlocks) {
    PipelineBlock blk;
    const auto status = buf.popFor(blk, std::chrono::milliseconds(500));
    ASSERT_EQ(status, ReorderBuffer::PopStatus::Ok);
    order.push_back(blk.firstOp);
  }
  for (auto& p : producers) {
    p.join();
  }
  for (std::uint64_t s = 0; s < kBlocks; ++s) {
    EXPECT_EQ(order[s], s) << "position " << s;
  }
  buf.truncate(kBlocks);
  PipelineBlock blk;
  EXPECT_EQ(buf.popFor(blk, std::chrono::milliseconds(1)),
            ReorderBuffer::PopStatus::Drained);
}

TEST(ReorderBuffer, TruncateDropsQueuedTailAndDrains) {
  ReorderBuffer buf(8);
  for (const std::uint64_t seq : {4ULL, 1ULL, 3ULL, 0ULL}) {
    EXPECT_TRUE(buf.push(seq, marker(seq)));
  }
  // A builder failed on block 2: everything at/above it is unconsumable.
  buf.truncate(2);
  // Late pushes of truncated sequences are silently dropped, not errors —
  // another builder may have been mid-flight on a doomed block.
  EXPECT_TRUE(buf.push(2, marker(2)));
  EXPECT_TRUE(buf.push(7, marker(7)));
  PipelineBlock blk;
  ASSERT_EQ(buf.popFor(blk, std::chrono::milliseconds(50)),
            ReorderBuffer::PopStatus::Ok);
  EXPECT_EQ(blk.firstOp, 0U);
  ASSERT_EQ(buf.popFor(blk, std::chrono::milliseconds(50)),
            ReorderBuffer::PopStatus::Ok);
  EXPECT_EQ(blk.firstOp, 1U);
  EXPECT_EQ(buf.popFor(blk, std::chrono::milliseconds(1)),
            ReorderBuffer::PopStatus::Drained);
  EXPECT_EQ(buf.depth(), 0U);
}

TEST(ReorderBuffer, AbortUnblocksBlockedProducer) {
  ReorderBuffer buf(1);
  EXPECT_TRUE(buf.push(0, marker(0)));
  std::atomic<int> result{-1};
  std::thread producer(
      [&] { result = buf.push(1, marker(1)) ? 1 : 0; });
  // Give the producer time to park on the backpressure window.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(result.load(), -1);
  buf.abort();
  producer.join();
  EXPECT_EQ(result.load(), 0);
}

TEST(ReorderBuffer, FaultInjectionAcrossBuildersPreservesBlockOrder) {
  // End-to-end: 8 builders race over static KOperations boundaries, a
  // shared fault injector kills whichever one trips it first, and the
  // reorder buffer must still deliver the surviving prefix in order — the
  // run completes serially with outcomes identical to the serial engine.
  ir::Circuit circuit(6, 6, "fanout_fault");
  circuit.appendCircuit(ddsim::test::randomCircuit(6, 120, 31));
  circuit.measureAll();

  const StrategyConfig serial = StrategyConfig::kOperations(3);
  const auto serialResult = simulate(circuit, serial, 17);

  StrategyConfig piped = serial;
  piped.pipeline = true;
  piped.pipelineDepth = 8;
  dd::FaultInjector injector;
  injector.configure({.failAllocationAfter = 150});
  CircuitSimulator sim(circuit, piped, 17);
  sim.setBuilderFaultInjector(&injector);
  const auto result = sim.run();
  EXPECT_GE(result.stats.pipelineBowOuts, 1U);
  EXPECT_GT(injector.injectedAllocFailures(), 0U);
  EXPECT_GT(result.stats.serialFallbackOps, 0U);
  EXPECT_EQ(result.classicalBits, serialResult.classicalBits);
}

}  // namespace
}  // namespace ddsim::sim
