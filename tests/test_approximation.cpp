#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "dd/approximation.hpp"
#include "dd/package.hpp"
#include "dd/pauli.hpp"
#include "ir/gate.hpp"
#include "test_util.hpp"

namespace ddsim::dd {
namespace {

TEST(Approximation, FidelityOneIsIdentity) {
  Package p(4);
  std::mt19937_64 rng(1);
  const VEdge v = p.makeStateFromVector(test::randomAmplitudes(4, rng));
  const auto result = approximate(p, v, 1.0);
  EXPECT_EQ(result.state.p, v.p);
  EXPECT_EQ(result.state.w, v.w);
  EXPECT_DOUBLE_EQ(result.fidelity, 1.0);
  EXPECT_EQ(result.removedEdges, 0U);
}

TEST(Approximation, RejectsBadTargets) {
  Package p(2);
  const VEdge v = p.makeZeroState();
  EXPECT_THROW(approximate(p, v, 0.0), std::invalid_argument);
  EXPECT_THROW(approximate(p, v, 1.5), std::invalid_argument);
}

TEST(Approximation, PrunesTinyBranch) {
  Package p(2);
  // Dominant |00> with a tiny |11> branch.
  const double eps = 1e-3;
  const double major = std::sqrt(1.0 - eps * eps);
  std::vector<ComplexValue> amps = {{major, 0}, {0, 0}, {0, 0}, {eps, 0}};
  const VEdge v = p.makeStateFromVector(amps);
  const auto result = approximate(p, v, 0.99);
  EXPECT_GT(result.removedEdges, 0U);
  EXPECT_LT(result.nodesAfter, result.nodesBefore);
  // Now a pure |00> state.
  EXPECT_NEAR(p.getAmplitude(result.state, 0).mag2(), 1.0, 1e-9);
  EXPECT_NEAR(p.getAmplitude(result.state, 3).mag2(), 0.0, 1e-12);
  EXPECT_GE(result.fidelity, 0.99);
  EXPECT_NEAR(p.norm2(result.state), 1.0, 1e-9);
}

TEST(Approximation, RespectsFidelityBudget) {
  Package p(6);
  std::mt19937_64 rng(7);
  const VEdge v = p.makeStateFromVector(test::randomAmplitudes(6, rng));
  for (const double target : {0.999, 0.99, 0.9, 0.5}) {
    const auto result = approximate(p, v, target);
    EXPECT_GE(result.fidelity, target) << "target " << target;
    EXPECT_NEAR(p.norm2(result.state), 1.0, 1e-9);
  }
}

TEST(Approximation, MonotoneSizeInBudget) {
  Package p(7);
  std::mt19937_64 rng(13);
  const VEdge v = p.makeStateFromVector(test::randomAmplitudes(7, rng));
  const auto tight = approximate(p, v, 0.999);
  const auto loose = approximate(p, v, 0.7);
  EXPECT_LE(loose.nodesAfter, tight.nodesAfter);
}

TEST(Approximation, DominantBasisStateSurvives) {
  Package p(5);
  // 99% on |10101>, the rest spread uniformly.
  std::vector<ComplexValue> amps(32, ComplexValue{std::sqrt(0.01 / 31.0), 0});
  amps[0b10101] = {std::sqrt(0.99), 0};
  const VEdge v = p.makeStateFromVector(amps);
  const auto result = approximate(p, v, 0.95);
  EXPECT_GT(p.getAmplitude(result.state, 0b10101).mag2(), 0.9);
}

TEST(PauliStrings, SingleQubitExpectations) {
  Package p(1);
  // |+> eigenstate of X.
  const double s = std::numbers::sqrt2 / 2;
  const VEdge plus = p.makeStateFromVector(
      std::vector<ComplexValue>{{s, 0}, {s, 0}});
  EXPECT_NEAR(pauliExpectation(p, "X", plus).r, 1.0, 1e-10);
  EXPECT_NEAR(pauliExpectation(p, "Z", plus).r, 0.0, 1e-10);
  EXPECT_NEAR(pauliExpectation(p, "Y", plus).r, 0.0, 1e-10);
  EXPECT_NEAR(pauliExpectation(p, "I", plus).r, 1.0, 1e-10);
}

TEST(PauliStrings, BellCorrelations) {
  Package p(2);
  const double s = std::numbers::sqrt2 / 2;
  const VEdge bell = p.makeStateFromVector(
      std::vector<ComplexValue>{{s, 0}, {0, 0}, {0, 0}, {s, 0}});
  // <ZZ> = <XX> = 1, <YY> = -1, single-qubit expectations vanish.
  EXPECT_NEAR(pauliExpectation(p, "ZZ", bell).r, 1.0, 1e-10);
  EXPECT_NEAR(pauliExpectation(p, "XX", bell).r, 1.0, 1e-10);
  EXPECT_NEAR(pauliExpectation(p, "YY", bell).r, -1.0, 1e-10);
  EXPECT_NEAR(pauliExpectation(p, "ZI", bell).r, 0.0, 1e-10);
  EXPECT_NEAR(pauliExpectation(p, "IZ", bell).r, 0.0, 1e-10);
}

TEST(PauliStrings, StringOrientation) {
  Package p(2);
  // |01>: qubit 0 = 1, qubit 1 = 0. Last character acts on qubit 0.
  const VEdge v = p.makeBasisState(0b01);
  EXPECT_NEAR(pauliExpectation(p, "IZ", v).r, -1.0, 1e-12);  // Z on qubit 0
  EXPECT_NEAR(pauliExpectation(p, "ZI", v).r, 1.0, 1e-12);   // Z on qubit 1
}

TEST(PauliStrings, PauliDDIsLinearSize) {
  Package p(12);
  const MEdge dd = makePauliStringDD(p, "XZXZYIYIXZXZ");
  EXPECT_LE(p.size(dd), 13U);
}

TEST(PauliStrings, Validation) {
  Package p(3);
  EXPECT_THROW(makePauliStringDD(p, "XX"), std::invalid_argument);
  EXPECT_THROW(makePauliStringDD(p, "XQZ"), std::invalid_argument);
  EXPECT_NO_THROW(makePauliStringDD(p, "xyz"));  // case-insensitive
}

TEST(PauliStrings, SquareToIdentity) {
  Package p(4);
  const MEdge dd = makePauliStringDD(p, "XYZX");
  const MEdge sq = p.multiply(dd, dd);
  EXPECT_EQ(sq.p, p.makeIdent().p);
  EXPECT_NEAR(sq.w->r, 1.0, 1e-10);
}

}  // namespace
}  // namespace ddsim::dd
