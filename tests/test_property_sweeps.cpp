/// \file test_property_sweeps.cpp
/// \brief Parameterized property sweeps across random circuits, strategies
///        and seeds — the invariants of DESIGN.md Section 7 checked in bulk.

#include <gtest/gtest.h>

#include <cctype>
#include <random>

#include "baseline/statevector.hpp"
#include "sim/equivalence.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim {
namespace {

// ---------------------------------------------------------------------------
// Invariant 3: DD simulation equals the dense baseline on random circuits.
// ---------------------------------------------------------------------------

class RandomCircuitSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(RandomCircuitSweep, DDMatchesDense) {
  const auto [numQubits, seed] = GetParam();
  const auto circuit = test::randomCircuit(numQubits, 20 * numQubits, seed);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  const auto dense = baseline::runOnStateVector(circuit);
  const auto got = simulator.package().getVector(result.finalState);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i].r, dense.state.amplitudes()[i].real(), 1e-7)
        << "qubits=" << numQubits << " seed=" << seed << " amp=" << i;
    ASSERT_NEAR(got[i].i, dense.state.amplitudes()[i].imag(), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCircuitSweep,
                         ::testing::Combine(::testing::Values(2U, 3U, 5U, 7U,
                                                              9U),
                                            ::testing::Range<std::uint64_t>(100,
                                                                            106)));

// ---------------------------------------------------------------------------
// Invariants 4 + 5: all strategies produce the same normalized state.
// ---------------------------------------------------------------------------

class StrategyAgreementSweep
    : public ::testing::TestWithParam<std::tuple<sim::StrategyConfig, std::uint64_t>> {
};

TEST_P(StrategyAgreementSweep, FidelityOneWithSequentialAndUnitNorm) {
  const auto& [config, seed] = GetParam();
  const auto circuit = test::randomCircuit(6, 90, seed);

  sim::CircuitSimulator ref(circuit, sim::StrategyConfig::sequential());
  const auto refVec = ref.package().getVector(ref.run().finalState);

  sim::CircuitSimulator simulator(circuit, config);
  const auto result = simulator.run();
  EXPECT_NEAR(simulator.package().norm2(result.finalState), 1.0, 1e-7);

  const auto vec = simulator.package().getVector(result.finalState);
  std::complex<double> overlap{};
  for (std::size_t i = 0; i < vec.size(); ++i) {
    overlap += std::conj(refVec[i].toStd()) * vec[i].toStd();
  }
  EXPECT_NEAR(std::abs(overlap), 1.0, 1e-7) << config.toString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyAgreementSweep,
    ::testing::Combine(::testing::Values(sim::StrategyConfig::kOperations(3),
                                         sim::StrategyConfig::kOperations(7),
                                         sim::StrategyConfig::maxSizeStrategy(24),
                                         sim::StrategyConfig::maxSizeStrategy(512),
                                         sim::StrategyConfig::adaptive(0.1),
                                         sim::StrategyConfig::adaptive(2.0)),
                       ::testing::Range<std::uint64_t>(200, 204)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param).toString() + "_s" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) {
          c = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Invariant 1: canonicity — the same circuit simulated twice (any strategy)
// yields pointer-identical DDs inside one package.
// ---------------------------------------------------------------------------

TEST(Canonicity, SameUnitarySameNode) {
  for (std::uint64_t seed = 300; seed < 305; ++seed) {
    const auto circuit = test::randomCircuit(5, 40, seed);
    dd::Package pkg(5);
    const dd::MEdge a = sim::buildCircuitMatrix(pkg, circuit);
    pkg.incRef(a);
    const dd::MEdge b = sim::buildCircuitMatrix(pkg, circuit);
    EXPECT_EQ(a.p, b.p) << "seed " << seed;
    EXPECT_EQ(a.w, b.w) << "seed " << seed;
    pkg.decRef(a);
  }
}

// ---------------------------------------------------------------------------
// Invariant 2: normalization — every node's strongest out-edge has weight of
// magnitude 1, for states produced by real simulations (not just random
// vectors).
// ---------------------------------------------------------------------------

TEST(Normalization, HoldsAfterSimulation) {
  const auto circuit = test::randomCircuit(6, 60, 777);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();

  std::vector<const dd::VNode*> stack{result.finalState.p};
  std::unordered_set<const dd::VNode*> seen;
  while (!stack.empty()) {
    const dd::VNode* n = stack.back();
    stack.pop_back();
    if (n->isTerminal() || !seen.insert(n).second) {
      continue;
    }
    double maxMag = 0;
    for (const auto& e : n->e) {
      maxMag = std::max(maxMag, e.w->mag2());
      stack.push_back(e.p);
    }
    ASSERT_NEAR(maxMag, 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Invariant 6: makePermutationDD equals the gate-built oracle.
// ---------------------------------------------------------------------------

class PermutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationSweep, RandomPermutationMatchesDenseApplication) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  const std::size_t n = 4;
  std::vector<std::uint64_t> perm(1U << n);
  for (std::uint64_t i = 0; i < perm.size(); ++i) {
    perm[i] = i;
  }
  std::shuffle(perm.begin(), perm.end(), rng);

  dd::Package pkg(n);
  const dd::MEdge dd = pkg.makePermutationDD(perm);
  const auto amps = test::randomAmplitudes(n, rng);
  const dd::VEdge v = pkg.makeStateFromVector(amps);
  const auto got = pkg.getVector(pkg.multiply(dd, v));
  // (P v)[perm[x]] = v[x]
  for (std::uint64_t x = 0; x < perm.size(); ++x) {
    EXPECT_NEAR(got[perm[x]].r, amps[x].r, 1e-10);
    EXPECT_NEAR(got[perm[x]].i, amps[x].i, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PermutationSweep,
                         ::testing::Range<std::uint64_t>(400, 410));

// ---------------------------------------------------------------------------
// Measurement statistics agree between DD and dense simulators for circuits
// with mid-circuit measurement (same seeds need not give same outcomes, but
// the produced states must stay valid).
// ---------------------------------------------------------------------------

TEST(MidCircuitMeasurement, StateStaysNormalized) {
  for (std::uint64_t seed = 500; seed < 505; ++seed) {
    ir::Circuit circuit(4, 4);
    std::mt19937_64 rng(seed);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.h(2);
    circuit.measure(1, 0);
    circuit.cx(2, 3);
    circuit.classicControlled(ir::GateType::X, 3, {}, {}, 0);
    circuit.measure(2, 1);
    circuit.h(3);

    sim::CircuitSimulator simulator(circuit, {}, seed);
    const auto result = simulator.run();
    EXPECT_NEAR(simulator.package().norm2(result.finalState), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace ddsim
