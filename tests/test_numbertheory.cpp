#include <gtest/gtest.h>

#include "algo/numbertheory.hpp"

namespace ddsim::algo {
namespace {

TEST(NumberTheory, Gcd) {
  EXPECT_EQ(gcd(12, 18), 6U);
  EXPECT_EQ(gcd(17, 5), 1U);
  EXPECT_EQ(gcd(0, 7), 7U);
  EXPECT_EQ(gcd(7, 0), 7U);
  EXPECT_EQ(gcd(0, 0), 0U);
}

TEST(NumberTheory, MulModHandlesLargeOperands) {
  const std::uint64_t big = 0x7fffffffffffffffULL;
  EXPECT_EQ(mulMod(big - 1, big - 1, big), 1U);
  EXPECT_EQ(mulMod(123456789ULL, 987654321ULL, 1000000007ULL),
            123456789ULL * 987654321ULL % 1000000007ULL);
}

TEST(NumberTheory, PowMod) {
  EXPECT_EQ(powMod(2, 10, 1000), 24U);
  EXPECT_EQ(powMod(7, 0, 13), 1U);
  EXPECT_EQ(powMod(7, 4, 15), 1U);  // order of 7 mod 15 is 4
  EXPECT_EQ(powMod(5, 1ULL << 40, 3), powMod(5, (1ULL << 40) % 2, 3));
}

TEST(NumberTheory, InvMod) {
  const auto inv = invMod(7, 15);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(mulMod(7, *inv, 15), 1U);
  EXPECT_FALSE(invMod(6, 15).has_value());
  for (std::uint64_t a = 1; a < 21; ++a) {
    if (gcd(a, 21) == 1) {
      EXPECT_EQ(mulMod(a, invMod(a, 21).value(), 21), 1U) << a;
    }
  }
}

TEST(NumberTheory, MultiplicativeOrder) {
  EXPECT_EQ(multiplicativeOrder(7, 15).value(), 4U);
  EXPECT_EQ(multiplicativeOrder(2, 15).value(), 4U);
  EXPECT_EQ(multiplicativeOrder(14, 15).value(), 2U);
  EXPECT_EQ(multiplicativeOrder(2, 21).value(), 6U);
  EXPECT_FALSE(multiplicativeOrder(6, 15).has_value());
}

TEST(NumberTheory, BitLength) {
  EXPECT_EQ(bitLength(0), 0U);
  EXPECT_EQ(bitLength(1), 1U);
  EXPECT_EQ(bitLength(15), 4U);
  EXPECT_EQ(bitLength(16), 5U);
  EXPECT_EQ(bitLength(1ULL << 40), 41U);
}

TEST(NumberTheory, IsPrime) {
  EXPECT_FALSE(isPrime(0));
  EXPECT_FALSE(isPrime(1));
  EXPECT_TRUE(isPrime(2));
  EXPECT_TRUE(isPrime(97));
  EXPECT_FALSE(isPrime(91));  // 7*13
}

TEST(NumberTheory, ConvergentsOfKnownFraction) {
  // 205/256 = 0.1100 1101 b; its convergents include 4/5 (towards 0.8).
  const auto cs = convergents(205, 8, 64);
  ASSERT_FALSE(cs.empty());
  bool found = false;
  for (const auto& c : cs) {
    if (c.num == 4 && c.den == 5) {
      found = true;
    }
    EXPECT_LE(c.den, 64U);
  }
  EXPECT_TRUE(found);
}

TEST(NumberTheory, OrderFromExactPhase) {
  // N=15, a=7, r=4. Phase s/r with s=1 over 8 bits: 64/256.
  EXPECT_EQ(orderFromPhase(64, 8, 7, 15).value(), 4U);
  // s=2 gives denominator 2 but a^2 != 1, so the multiple search finds 4.
  EXPECT_EQ(orderFromPhase(128, 8, 7, 15).value(), 4U);
  // s=3: 192/256 = 3/4.
  EXPECT_EQ(orderFromPhase(192, 8, 7, 15).value(), 4U);
  // s=0 carries no information.
  EXPECT_FALSE(orderFromPhase(0, 8, 7, 15).has_value());
}

TEST(NumberTheory, OrderFromNoisyPhase) {
  // Rounded phase measurements still land on the right convergent:
  // r=6 (a=2, N=21), s=1 -> phase 1/6; over 10 bits: round(1024/6)=171.
  EXPECT_EQ(orderFromPhase(171, 10, 2, 21).value(), 6U);
}

}  // namespace
}  // namespace ddsim::algo
