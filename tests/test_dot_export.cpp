#include <gtest/gtest.h>

#include "dd/dot_export.hpp"
#include "dd/package.hpp"
#include "ir/gate.hpp"

namespace ddsim::dd {
namespace {

TEST(DotExport, VectorDDContainsAllLevels) {
  Package p(3);
  const VEdge v = p.makeBasisState(0b101);
  const std::string dot = toDot(v);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q0"), std::string::npos);
  EXPECT_NE(dot.find("q1"), std::string::npos);
  EXPECT_NE(dot.find("q2"), std::string::npos);
  EXPECT_NE(dot.find("root"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, ZeroEdgesBecomeStubs) {
  Package p(2);
  const VEdge v = p.makeBasisState(0);
  const std::string dot = toDot(v);
  // Basis state has one zero stub per level.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotExport, SharedNodesAppearOnce) {
  Package p(4);
  // Uniform superposition: one node per level.
  std::vector<ComplexValue> amps(16, ComplexValue{0.25, 0.0});
  const VEdge v = p.makeStateFromVector(amps);
  const std::string dot = toDot(v);
  // Node ids n0..n4 (4 levels + terminal): n5 must not exist.
  EXPECT_NE(dot.find("n4"), std::string::npos);
  EXPECT_EQ(dot.find("n5"), std::string::npos);
}

TEST(DotExport, MatrixDDExports) {
  Package p(2);
  const MEdge cx = p.makeGateDD(ir::gateMatrix(ir::GateType::X), 1, {Control{0}});
  const std::string dot = toDot(cx);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q1"), std::string::npos);
}

TEST(DotExport, ZeroVectorExportsZeroBox) {
  Package p(2);
  const std::string dot = toDot(p.vZero());
  EXPECT_NE(dot.find("zero"), std::string::npos);
}

TEST(DotExport, EdgeWeightsAreLabelled) {
  Package p(1);
  const std::vector<ComplexValue> amps = {{0.6, 0.0}, {0.0, 0.8}};
  const VEdge v = p.makeStateFromVector(amps);
  const std::string dot = toDot(v);
  EXPECT_NE(dot.find("label="), std::string::npos);
}

}  // namespace
}  // namespace ddsim::dd
