#include <gtest/gtest.h>

#include <complex>
#include <numbers>

#include "algo/qft.hpp"
#include "baseline/statevector.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim::algo {
namespace {

using Cx = std::complex<double>;

std::vector<Cx> dftOfBasisState(std::size_t n, std::uint64_t x) {
  const std::size_t dim = 1ULL << n;
  std::vector<Cx> out(dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  for (std::uint64_t y = 0; y < dim; ++y) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(x) *
                         static_cast<double>(y) / static_cast<double>(dim);
    out[y] = scale * Cx{std::cos(angle), std::sin(angle)};
  }
  return out;
}

class QFTBasisTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(QFTBasisTest, MatchesDiscreteFourierTransform) {
  const auto [n, x] = GetParam();
  if (x >= (1ULL << n)) {
    GTEST_SKIP();
  }
  ir::Circuit circuit(n);
  for (std::size_t q = 0; q < n; ++q) {
    if (((x >> q) & 1U) != 0) {
      circuit.x(static_cast<ir::Qubit>(q));
    }
  }
  appendQFT(circuit, [&] {
    std::vector<ir::Qubit> qs;
    for (std::size_t q = 0; q < n; ++q) {
      qs.push_back(static_cast<ir::Qubit>(q));
    }
    return qs;
  }());

  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  const auto got = simulator.package().getVector(result.finalState);
  const auto expected = dftOfBasisState(n, x);
  test::expectAmplitudesNear(got, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, QFTBasisTest,
                         ::testing::Combine(::testing::Values(1U, 2U, 3U, 4U, 5U),
                                            ::testing::Values(0U, 1U, 5U, 13U,
                                                              30U)));

TEST(QFT, InverseUndoesQFT) {
  const std::size_t n = 5;
  const auto base = test::randomCircuit(n, 25, 321);
  ir::Circuit circuit(n);
  circuit.appendCircuit(base);
  std::vector<ir::Qubit> qs;
  for (std::size_t q = 0; q < n; ++q) {
    qs.push_back(static_cast<ir::Qubit>(q));
  }
  appendQFT(circuit, qs);
  appendInverseQFT(circuit, qs);

  sim::CircuitSimulator withQft(circuit);
  sim::CircuitSimulator without(base);
  const auto a = withQft.run();
  const auto b = without.run();
  const auto va = withQft.package().getVector(a.finalState);
  const auto vb = without.package().getVector(b.finalState);
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i].r, vb[i].r, 1e-8);
    EXPECT_NEAR(va[i].i, vb[i].i, 1e-8);
  }
}

TEST(QFT, SwaplessVariantIsBitReversed) {
  const std::size_t n = 3;
  const std::uint64_t x = 5;
  ir::Circuit plain(n);
  plain.x(0);
  plain.x(2);
  std::vector<ir::Qubit> qs{0, 1, 2};
  appendQFT(plain, qs, /*withSwaps=*/false);
  sim::CircuitSimulator simulator(plain);
  const auto result = simulator.run();
  const auto got = simulator.package().getVector(result.finalState);
  const auto expected = dftOfBasisState(n, x);
  // Amplitude of |y> in the swapless result equals amplitude of bit-reversed
  // y in the true QFT.
  const auto reverse = [n](std::uint64_t y) {
    std::uint64_t r = 0;
    for (std::size_t b = 0; b < n; ++b) {
      r |= ((y >> b) & 1U) << (n - 1 - b);
    }
    return r;
  };
  for (std::uint64_t y = 0; y < (1ULL << n); ++y) {
    EXPECT_NEAR(got[y].r, expected[reverse(y)].real(), 1e-9);
    EXPECT_NEAR(got[y].i, expected[reverse(y)].imag(), 1e-9);
  }
}

TEST(QFT, UniformSuperpositionOfZero) {
  // QFT|0> = uniform superposition.
  const auto circuit = makeQFTCircuit(6);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  const auto got = simulator.package().getVector(result.finalState);
  const double expected = 1.0 / 8.0;
  for (const auto& a : got) {
    EXPECT_NEAR(a.r, expected, 1e-10);
    EXPECT_NEAR(a.i, 0.0, 1e-10);
  }
  // Uniform superposition is maximally redundant: linear-size DD.
  EXPECT_EQ(simulator.package().size(result.finalState), 7U);
}

TEST(QFT, GateCountIsQuadratic) {
  const auto circuit = makeQFTCircuit(10);
  // n H gates + n(n-1)/2 controlled phases + n/2 swaps.
  EXPECT_EQ(circuit.flatGateCount(), 10U + 45U + 5U);
}

}  // namespace
}  // namespace ddsim::algo
