/// \file test_structure_kernels.cpp
/// \brief Tests of the structure-aware multiply kernels (cached
///        identity/diagonal node flags, fast-path counters) and of the
///        GC-surviving generation-tagged compute tables.

#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "baseline/statevector.hpp"
#include "dd/package.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim {
namespace {

const dd::GateMatrix kHadamard = {
    dd::ComplexValue{1.0 / std::numbers::sqrt2, 0.0},
    dd::ComplexValue{1.0 / std::numbers::sqrt2, 0.0},
    dd::ComplexValue{1.0 / std::numbers::sqrt2, 0.0},
    dd::ComplexValue{-1.0 / std::numbers::sqrt2, 0.0}};
const dd::GateMatrix kPauliX = {dd::ComplexValue{0, 0}, dd::ComplexValue{1, 0},
                                dd::ComplexValue{1, 0}, dd::ComplexValue{0, 0}};
const dd::GateMatrix kTGate = {
    dd::ComplexValue{1, 0}, dd::ComplexValue{0, 0}, dd::ComplexValue{0, 0},
    dd::ComplexValue{1.0 / std::numbers::sqrt2, 1.0 / std::numbers::sqrt2}};

// ---------------------------------------------------------------------------
// Structure flags
// ---------------------------------------------------------------------------

TEST(StructureFlags, IdentityDDIsFlaggedIdentityAndDiagonal) {
  dd::Package pkg(4);
  const dd::MEdge id = pkg.makeIdent();
  EXPECT_TRUE(id.p->isIdentity());
  EXPECT_TRUE(id.p->isDiagonal());
}

TEST(StructureFlags, DiagonalGateIsDiagonalButNotIdentity) {
  dd::Package pkg(4);
  const dd::MEdge t = pkg.makeGateDD(kTGate, 2);
  EXPECT_TRUE(t.p->isDiagonal());
  EXPECT_FALSE(t.p->isIdentity());
}

TEST(StructureFlags, OffDiagonalGateIsNeither) {
  dd::Package pkg(4);
  const dd::MEdge x = pkg.makeGateDD(kPauliX, 1);
  EXPECT_FALSE(x.p->isDiagonal());
  EXPECT_FALSE(x.p->isIdentity());
  const dd::MEdge h = pkg.makeGateDD(kHadamard, 0);
  EXPECT_FALSE(h.p->isDiagonal());
  EXPECT_FALSE(h.p->isIdentity());
}

TEST(StructureFlags, ControlledGateKeepsDiagonalClassification) {
  dd::Package pkg(4);
  // CX has off-diagonal blocks; CPhase-like CT stays diagonal.
  const dd::MEdge cx =
      pkg.makeGateDD(kPauliX, 0, {dd::Control{2, true}});
  EXPECT_FALSE(cx.p->isDiagonal());
  const dd::MEdge ct = pkg.makeGateDD(kTGate, 0, {dd::Control{2, true}});
  EXPECT_TRUE(ct.p->isDiagonal());
  EXPECT_FALSE(ct.p->isIdentity());
}

// ---------------------------------------------------------------------------
// Identity fast paths (counter-based: the skip must actually be taken)
// ---------------------------------------------------------------------------

TEST(IdentityFastPath, MatrixVectorSkipsWithoutRecursion) {
  dd::Package pkg(5);
  std::mt19937_64 rng(7);
  const auto amps = test::randomAmplitudes(5, rng);
  const dd::VEdge v = pkg.makeStateFromVector(amps);
  const dd::MEdge id = pkg.makeIdent();

  const auto skipsBefore = pkg.stats().identitySkipsMV;
  const auto recBefore = pkg.stats().recursiveMulVCalls;
  const dd::VEdge w = pkg.multiply(id, v);
  EXPECT_EQ(w.p, v.p);  // same node, identical state
  EXPECT_EQ(w.w, v.w);
  EXPECT_GT(pkg.stats().identitySkipsMV, skipsBefore);
  // Top-level fast path: no recursive multiply call at all.
  EXPECT_EQ(pkg.stats().recursiveMulVCalls, recBefore);
}

TEST(IdentityFastPath, GateDDPaddingIsSkippedInsideRecursion) {
  // A controlled gate embeds an explicit identity chain on the unsatisfied
  // control branch; the multiply must resolve that whole subtree via the
  // flag instead of descending it level by level.
  dd::Package pkg(8);
  std::mt19937_64 rng(11);
  const auto amps = test::randomAmplitudes(8, rng);
  const dd::VEdge v = pkg.makeStateFromVector(amps);
  const dd::MEdge cx = pkg.makeGateDD(kPauliX, 0, {dd::Control{7, true}});

  const auto skipsBefore = pkg.stats().identitySkipsMV;
  (void)pkg.multiply(cx, v);
  EXPECT_GT(pkg.stats().identitySkipsMV, skipsBefore);
}

TEST(IdentityFastPath, MatrixMatrixSkips) {
  dd::Package pkg(5);
  const dd::MEdge h = pkg.makeGateDD(kHadamard, 2);
  const dd::MEdge id = pkg.makeIdent();

  const auto skipsBefore = pkg.stats().identitySkipsMM;
  const dd::MEdge l = pkg.multiply(id, h);
  EXPECT_EQ(l.p, h.p);
  const dd::MEdge r = pkg.multiply(h, id);
  EXPECT_EQ(r.p, h.p);
  EXPECT_GE(pkg.stats().identitySkipsMM, skipsBefore + 2);
}

TEST(IdentityFastPath, DiagonalProductPrunesOffDiagonalQuadrants) {
  dd::Package pkg(4);
  const dd::MEdge t0 = pkg.makeGateDD(kTGate, 0);
  const dd::MEdge t2 = pkg.makeGateDD(kTGate, 2);

  const auto beforeDiag = pkg.stats().diagonalFastPathsMM;
  const dd::MEdge prod = pkg.multiply(t0, t2);
  EXPECT_GT(pkg.stats().diagonalFastPathsMM, beforeDiag);
  EXPECT_TRUE(prod.p->isDiagonal());

  // Cross-check the result against the dense product.
  const auto dense = pkg.getMatrix(prod);
  dd::Package ref(4);
  const auto d0 = ref.getMatrix(ref.makeGateDD(kTGate, 0));
  const auto d2 = ref.getMatrix(ref.makeGateDD(kTGate, 2));
  const std::size_t dim = 1U << 4;
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      dd::ComplexValue sum{0.0, 0.0};
      for (std::size_t k = 0; k < dim; ++k) {
        sum += d0[r * dim + k] * d2[k * dim + c];
      }
      EXPECT_NEAR(dense[r * dim + c].r, sum.r, 1e-10);
      EXPECT_NEAR(dense[r * dim + c].i, sum.i, 1e-10);
    }
  }
}

// ---------------------------------------------------------------------------
// Structure-aware kernels are a pure optimization: random-circuit sweep
// against the dense baseline.
// ---------------------------------------------------------------------------

class StructureKernelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructureKernelSweep, MatchesDenseBaselineBitForBit) {
  const std::uint64_t seed = GetParam();
  const auto circuit = test::randomCircuit(6, 120, seed);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  const auto dense = baseline::runOnStateVector(circuit);
  const auto got = simulator.package().getVector(result.finalState);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i].r, dense.state.amplitudes()[i].real(), 1e-7)
        << "seed=" << seed << " amp=" << i;
    ASSERT_NEAR(got[i].i, dense.state.amplitudes()[i].imag(), 1e-7)
        << "seed=" << seed << " amp=" << i;
  }
  // The sweep should actually exercise the fast paths, not just agree.
  EXPECT_GT(simulator.package().stats().identitySkipsMV, 0U);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StructureKernelSweep,
                         ::testing::Range<std::uint64_t>(7100, 7110));

// ---------------------------------------------------------------------------
// GC retention: entries whose operands/result survive a collection are
// revalidated instead of recomputed.
// ---------------------------------------------------------------------------

TEST(CacheRetention, RootedMultiplyResultSurvivesGarbageCollection) {
  dd::Package pkg(6);
  std::mt19937_64 rng(23);
  const auto amps = test::randomAmplitudes(6, rng);
  dd::VEdge v = pkg.makeStateFromVector(amps);
  pkg.incRef(v);
  const dd::MEdge h = pkg.makeGateDD(kHadamard, 3);
  pkg.incRef(h);

  dd::VEdge w = pkg.multiply(h, v);
  pkg.incRef(w);

  // Everything referenced by the cached sub-products is rooted, so the
  // collection must not free any of it...
  pkg.garbageCollect();

  // ...and the repeated multiply must be served from retained entries:
  // hits (and the retained counter) go up, misses stay put.
  const auto before = pkg.cacheStats();
  const dd::VEdge w2 = pkg.multiply(h, v);
  const auto after = pkg.cacheStats();
  EXPECT_EQ(w2.p, w.p);
  EXPECT_EQ(w2.w, w.w);
  EXPECT_GT(after.mulMVHits, before.mulMVHits);
  EXPECT_EQ(after.mulMVMisses, before.mulMVMisses);
  EXPECT_GT(after.mulMVRetained, before.mulMVRetained);
  EXPECT_GT(after.gcRetentionRate(), 0.0);
}

TEST(CacheRetention, CollectedOperandsInvalidateStaleEntries) {
  dd::Package pkg(6);
  std::mt19937_64 rng(29);
  const auto amps = test::randomAmplitudes(6, rng);
  dd::VEdge v = pkg.makeStateFromVector(amps);
  pkg.incRef(v);
  const dd::MEdge h = pkg.makeGateDD(kHadamard, 2);
  pkg.incRef(h);

  const dd::VEdge w = pkg.multiply(h, v);
  // Deliberately do NOT root w: the product's nodes die in the collection,
  // so every cache entry referencing them must fail revalidation.
  (void)w;
  pkg.garbageCollect();

  const auto before = pkg.cacheStats();
  dd::VEdge w2 = pkg.multiply(h, v);
  pkg.incRef(w2);
  const auto after = pkg.cacheStats();
  // The recomputation is exact even though the stale entries died.
  dd::Package ref(6);
  const dd::VEdge rv = ref.makeStateFromVector(amps);
  const dd::VEdge rw = ref.multiply(ref.makeGateDD(kHadamard, 2), rv);
  test::expectAmplitudesNear(pkg.getVector(w2), ref.getVector(rw));
  EXPECT_GE(after.cacheStaleDropped, before.cacheStaleDropped);
}

TEST(CacheRetention, GenerationBumpIsNotAClear) {
  // After GC, previously cached additions on rooted operands are retained
  // too (the add table uses the same generation-tag protocol).
  dd::Package pkg(5);
  std::mt19937_64 rng(31);
  dd::VEdge a = pkg.makeStateFromVector(test::randomAmplitudes(5, rng));
  dd::VEdge b = pkg.makeStateFromVector(test::randomAmplitudes(5, rng));
  pkg.incRef(a);
  pkg.incRef(b);
  dd::VEdge s = pkg.add(a, b);
  pkg.incRef(s);

  pkg.garbageCollect();

  const auto before = pkg.cacheStats();
  const dd::VEdge s2 = pkg.add(a, b);
  const auto after = pkg.cacheStats();
  EXPECT_EQ(s2.p, s.p);
  EXPECT_GT(after.addRetained, before.addRetained);
  EXPECT_EQ(after.addMisses, before.addMisses);
}

}  // namespace
}  // namespace ddsim
