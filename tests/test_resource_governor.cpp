/// Tests for the resource governor, the deterministic fault injector and
/// the simulator's degradation ladder. Every failure mode covered here —
/// allocation failure, timeout mid-multiply, accumulator explosion — is
/// injected deterministically rather than provoked with a huge workload.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "algo/grover.hpp"
#include "dd/fault_injection.hpp"
#include "dd/package.hpp"
#include "dd/resource_governor.hpp"
#include "ir/circuit.hpp"
#include "ir/gate.hpp"
#include "sim/simulator.hpp"

namespace ddsim {
namespace {

// ------------------------------------------------------- governor policy

TEST(ResourceGovernor, ClassifiesPressureRungs) {
  dd::ResourceGovernor gov;
  gov.setBudget({/*maxLiveNodes=*/1000, /*maxBytes=*/0, /*softFraction=*/0.75});
  EXPECT_EQ(gov.classify(100, 0), dd::ResourcePressure::None);
  EXPECT_EQ(gov.classify(749, 0), dd::ResourcePressure::None);
  EXPECT_EQ(gov.classify(750, 0), dd::ResourcePressure::Soft);
  EXPECT_EQ(gov.classify(999, 0), dd::ResourcePressure::Soft);
  EXPECT_EQ(gov.classify(1000, 0), dd::ResourcePressure::Hard);
}

TEST(ResourceGovernor, ByteBudgetClassifiesIndependently) {
  dd::ResourceGovernor gov;
  gov.setBudget({0, /*maxBytes=*/1 << 20, 0.5});
  EXPECT_EQ(gov.classify(1'000'000, 1), dd::ResourcePressure::None);
  EXPECT_EQ(gov.classify(0, 1 << 19), dd::ResourcePressure::Soft);
  EXPECT_EQ(gov.classify(0, 1 << 20), dd::ResourcePressure::Hard);
}

TEST(ResourceGovernor, CallbackFiresOncePerEpisode) {
  dd::ResourceGovernor gov;
  gov.setBudget({100, 0, 0.5});
  int fired = 0;
  gov.setPressureCallback(
      [&fired](dd::ResourcePressure, std::size_t) { ++fired; });
  gov.observe(dd::ResourcePressure::Soft, 60);
  gov.observe(dd::ResourcePressure::Soft, 70);  // same episode: no re-fire
  EXPECT_EQ(fired, 1);
  gov.observe(dd::ResourcePressure::None, 10);  // pressure recedes: re-arm
  gov.observe(dd::ResourcePressure::Soft, 55);
  EXPECT_EQ(fired, 2);
}

TEST(ResourceGovernor, RejectsBadSoftFraction) {
  dd::ResourceGovernor gov;
  EXPECT_THROW(gov.setBudget({100, 0, 0.0}), std::invalid_argument);
  EXPECT_THROW(gov.setBudget({100, 0, 1.5}), std::invalid_argument);
}

TEST(ResourceExhaustedError, CarriesStructuredDiagnostics) {
  const dd::ResourceExhausted e("multiply(MxM)", 1234, 1000, 4096);
  EXPECT_EQ(e.operation(), "multiply(MxM)");
  EXPECT_EQ(e.liveNodes(), 1234U);
  EXPECT_EQ(e.nodeBudget(), 1000U);
  EXPECT_EQ(e.bytesAllocated(), 4096U);
  const std::string what = e.what();
  EXPECT_NE(what.find("multiply(MxM)"), std::string::npos);
  EXPECT_NE(what.find("1234"), std::string::npos);
  EXPECT_NE(what.find("1000"), std::string::npos);
}

// ------------------------------------------------------- fault injector

TEST(FaultInjector, AllocationFailureIsPersistent) {
  dd::FaultInjector inj({.failAllocationAfter = 3});
  EXPECT_FALSE(inj.onNodeRequest());
  EXPECT_FALSE(inj.onNodeRequest());
  EXPECT_FALSE(inj.onNodeRequest());
  // Past the threshold the failure repeats: a collect-and-retry caller must
  // keep failing until the injector is disarmed.
  EXPECT_TRUE(inj.onNodeRequest());
  EXPECT_TRUE(inj.onNodeRequest());
  EXPECT_EQ(inj.injectedAllocFailures(), 2U);
  inj.disarm();
  EXPECT_FALSE(inj.onNodeRequest());
}

TEST(FaultInjector, AbortFiresAtExactOperation) {
  dd::FaultInjector inj({.abortAtOperation = 2});
  EXPECT_FALSE(inj.onAbortPoll(1));
  EXPECT_TRUE(inj.onAbortPoll(2));
  EXPECT_FALSE(inj.onAbortPoll(3));
  EXPECT_EQ(inj.injectedAborts(), 1U);
}

TEST(FaultInjector, ForcedGcFiresAtExactPoll) {
  dd::FaultInjector inj({.forceGcAtPoll = 2});
  EXPECT_FALSE(inj.onGcPoll());
  EXPECT_TRUE(inj.onGcPoll());
  EXPECT_FALSE(inj.onGcPoll());
  EXPECT_EQ(inj.injectedGcs(), 1U);
}

TEST(FaultInjector, UnarmedInjectorIsInert) {
  dd::FaultInjector inj;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.onNodeRequest());
    EXPECT_FALSE(inj.onAbortPoll(static_cast<std::uint64_t>(i)));
    EXPECT_FALSE(inj.onGcPoll());
  }
  EXPECT_EQ(inj.injectedAllocFailures(), 0U);
}

// ------------------------------------------------- package-level behavior

TEST(PackageGovernor, InjectedAllocFailureNamesOperationInFlight) {
  dd::Package pkg(3);
  dd::FaultInjector inj({.failAllocationAfter = 1});
  pkg.setFaultInjector(&inj);
  try {
    // Gate construction allocates nodes, so it must trip the injector.
    (void)pkg.makeGateDD(ir::gateMatrix(ir::GateType::H), 0);
    FAIL() << "expected ResourceExhausted";
  } catch (const dd::ResourceExhausted& e) {
    EXPECT_EQ(e.operation(), "makeGateDD");
    EXPECT_NE(std::string(e.what()).find("fault injection"),
              std::string::npos);
  }
  pkg.setFaultInjector(nullptr);
}

TEST(PackageGovernor, HardBudgetThrowsDuringMultiply) {
  dd::Package pkg(8);
  // Leave generous room for setup, then clamp: the budget check happens at
  // node allocation, so the throw comes from inside an operation.
  dd::VEdge state = pkg.makeZeroState();
  pkg.incRef(state);
  const dd::MEdge h = pkg.makeGateDD(ir::gateMatrix(ir::GateType::H), 0);
  pkg.incRef(h);
  pkg.governor().setBudget({pkg.liveNodes() + 2, 0, 0.99});
  try {
    dd::VEdge v = state;
    for (dd::Qubit q = 0; q < 8; ++q) {
      const dd::MEdge g =
          pkg.makeGateDD(ir::gateMatrix(ir::GateType::H), q);
      v = pkg.multiply(g, v);
    }
    FAIL() << "expected ResourceExhausted";
  } catch (const dd::ResourceExhausted& e) {
    EXPECT_GE(e.liveNodes(), pkg.governor().budget().maxLiveNodes);
    EXPECT_EQ(e.nodeBudget(), pkg.governor().budget().maxLiveNodes);
  }
  // The package stays consistent: after lifting the budget and collecting,
  // normal operation resumes.
  pkg.governor().setBudget({0, 0, 0.75});
  pkg.garbageCollect();
  dd::VEdge v = pkg.multiply(h, state);
  EXPECT_NE(v.p, nullptr);
}

TEST(PackageGovernor, EmergencyCollectReclaimsAndCountsBytes) {
  dd::Package pkg(10);
  // Build a pile of unrooted intermediates, then collect.
  dd::VEdge state = pkg.makeZeroState();
  pkg.incRef(state);
  for (dd::Qubit q = 0; q < 10; ++q) {
    const double theta = 0.1 * q;
    const dd::MEdge g =
        pkg.makeGateDD(ir::gateMatrix(ir::GateType::RY, &theta), q);
    state = pkg.multiply(g, state);  // old states left unrooted
  }
  const std::size_t liveBefore = pkg.liveNodes();
  pkg.incRef(state);
  const std::size_t released = pkg.emergencyCollect();
  EXPECT_EQ(pkg.stats().emergencyCollections, 1U);
  EXPECT_EQ(pkg.stats().bytesReleased, released);
  EXPECT_LT(pkg.liveNodes(), liveBefore);
  // The rooted state survived.
  EXPECT_GT(pkg.getAmplitude(state, 0).mag2(), 0.0);
}

TEST(PackageGovernor, TimeoutInterruptsGiantPermutationBuild) {
  // Regression for timeout granularity: a single long-running entry point
  // (makePermutationDD over 2^14 entries) must notice the abort check
  // mid-construction instead of only between operations.
  dd::Package pkg(14);
  pkg.setAbortCheck([] { return true; });
  std::vector<std::uint64_t> perm(1ULL << 14);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    perm[i] = (i + 1) % perm.size();
  }
  EXPECT_THROW((void)pkg.makePermutationDD(perm), dd::ComputationAborted);
}

TEST(PackageGovernor, InjectedAbortFiresInsideChosenOperation) {
  dd::Package pkg(6);
  dd::FaultInjector inj;
  pkg.setFaultInjector(&inj);
  dd::VEdge state = pkg.makeZeroState();
  pkg.incRef(state);
  const dd::MEdge h = pkg.makeGateDD(ir::gateMatrix(ir::GateType::H), 0);
  // makeGateDD above was operation #1; arm the abort for the next one.
  inj.configure({.abortAtOperation = inj.injectedAborts() + 2});
  EXPECT_THROW((void)pkg.multiply(h, state), dd::ComputationAborted);
  pkg.setFaultInjector(nullptr);
  // Still usable afterwards.
  dd::VEdge v = pkg.multiply(h, state);
  EXPECT_NE(v.p, nullptr);
}

TEST(PackageGovernor, PermutationBijectionRejectedInRelease) {
  dd::Package pkg(2);
  // Promoted from assert: must throw in every build type.
  EXPECT_THROW((void)pkg.makePermutationDD({0, 0, 1, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)pkg.makePermutationDD({0, 1, 2, 7}),
               std::invalid_argument);
}

TEST(PackageGovernor, MeasurementValidatesQubitRange) {
  dd::Package pkg(2);
  dd::VEdge state = pkg.makeZeroState();
  pkg.incRef(state);
  std::mt19937_64 rng(42);
  EXPECT_THROW((void)pkg.probabilityOfOne(state, 5), std::invalid_argument);
  EXPECT_THROW((void)pkg.measureOneCollapsing(state, -1, rng),
               std::invalid_argument);
  EXPECT_THROW((void)pkg.makeGateDD(ir::gateMatrix(ir::GateType::X), 9),
               std::invalid_argument);
}

// ----------------------------------------------- simulator degradation

TEST(SimulatorDegradation, InjectedAllocFailureSurfacesPartialResult) {
  const auto circuit = algo::makeGroverCircuit(6, 11);
  sim::StrategyConfig config = sim::StrategyConfig::maxSizeStrategy(1U << 20);
  sim::CircuitSimulator simulator(circuit, config);
  dd::FaultInjector inj;
  simulator.package().setFaultInjector(&inj);
  // Let the run make progress first, then fail every further allocation:
  // the ladder collects and retries, keeps failing, and must surface the
  // partial result instead of crashing.
  inj.configure({.failAllocationAfter = 2000});
  try {
    (void)simulator.run();
    FAIL() << "expected sim::ResourceExhausted";
  } catch (const sim::ResourceExhausted& e) {
    EXPECT_GT(inj.injectedAllocFailures(), 0U);
    const sim::PartialResult& partial = e.partial();
    EXPECT_GT(partial.stats.appliedGates, 0U);
    EXPECT_GT(partial.peakLiveNodes, 0U);
    EXPECT_GE(partial.elapsedSeconds, 0.0);
    EXPECT_GE(partial.stats.appliedGates, partial.opsCompleted);
  }
}

TEST(SimulatorDegradation, AccumulatorExplosionSurfacesPartialResult) {
  // Deterministic accumulator explosion: MaxSize with an absurd s_max keeps
  // combining into one matrix DD; the injector fails every allocation past
  // the threshold, which first bites mid-MxM. The ladder collects and
  // retries, keeps failing, and the run must end with the partial snapshot
  // naming the multiplication that could not complete.
  const auto circuit = algo::makeGroverCircuit(6, 11);
  sim::StrategyConfig config = sim::StrategyConfig::maxSizeStrategy(1U << 20);
  sim::CircuitSimulator simulator(circuit, config);
  dd::FaultInjector inj({.failAllocationAfter = 3000});
  simulator.package().setFaultInjector(&inj);
  try {
    (void)simulator.run();
    FAIL() << "expected sim::ResourceExhausted";
  } catch (const sim::ResourceExhausted& e) {
    EXPECT_NE(e.operation().find("multiply"), std::string::npos)
        << "failed during: " << e.operation();
    EXPECT_GT(e.partial().stats.degradationEvents, 0U);
    EXPECT_GT(e.partial().stats.appliedGates, 0U);
  }
}

TEST(SimulatorDegradation, InjectedTimeoutMidMultiplyCarriesPartial) {
  const auto circuit = algo::makeGroverCircuit(6, 11);
  sim::StrategyConfig config;
  config.timeLimitSeconds = 3600.0;  // enables the abort plumbing
  sim::CircuitSimulator simulator(circuit, config);
  dd::FaultInjector inj({.abortAtOperation = 40});
  simulator.package().setFaultInjector(&inj);
  try {
    (void)simulator.run();
    FAIL() << "expected SimulationTimeout";
  } catch (const sim::SimulationTimeout& e) {
    EXPECT_EQ(inj.injectedAborts(), 1U);
    EXPECT_GT(e.partial().stats.appliedGates, 0U);
    EXPECT_GT(e.partial().peakLiveNodes, 0U);
  }
}

TEST(SimulatorDegradation, ForcedGcTriggersCollection) {
  const auto circuit = algo::makeGroverCircuit(5, 7);
  sim::CircuitSimulator simulator(circuit);
  dd::FaultInjector inj({.forceGcAtPoll = 3});
  simulator.package().setFaultInjector(&inj);
  const auto result = simulator.run();
  EXPECT_EQ(inj.injectedGcs(), 1U);
  EXPECT_GE(result.stats.dd.garbageCollections, 1U);
  // Correctness is unaffected by the extra collection.
  const double p =
      simulator.package().getAmplitude(result.finalState, 7).mag2();
  EXPECT_GT(p, 0.8);
}

TEST(SimulatorDegradation, GroverCompletesUnderTightBudgetViaLadder) {
  // Acceptance: with a node budget small enough that unconstrained MaxSize
  // accumulation would exceed it, Grover still completes — the governor's
  // soft rung flushes the accumulator and falls back to sequential MxV for
  // a cooldown window, visibly recorded in the stats.
  const std::uint64_t marked = 11;
  const auto circuit = algo::makeGroverCircuit(7, marked);

  // Reference: unconstrained max-size with an absurd s_max grows a big
  // accumulator.
  sim::StrategyConfig unbounded = sim::StrategyConfig::maxSizeStrategy(1U << 20);
  sim::CircuitSimulator reference(circuit, unbounded);
  const auto refResult = reference.run();
  ASSERT_EQ(refResult.stats.degradationEvents, 0U);

  sim::StrategyConfig budgeted = unbounded;
  // Comfortably above the sequential working set, well below the
  // unconstrained peak (live nodes include unique-table residents).
  budgeted.nodeBudget = 700;
  budgeted.degradeCooldownOps = 8;
  sim::CircuitSimulator simulator(circuit, budgeted);
  const auto result = simulator.run();

  EXPECT_GT(result.stats.degradationEvents, 0U);
  EXPECT_GT(result.stats.pressureFlushes, 0U);
  EXPECT_GT(result.stats.sequentialFallbackOps, 0U);
  EXPECT_GT(result.stats.dd.emergencyCollections, 0U);

  const double p =
      simulator.package().getAmplitude(result.finalState, marked).mag2();
  EXPECT_GT(p, 0.8) << "degraded run must still amplify the marked state";
}

TEST(SimulatorDegradation, EnvVarSuppliesDefaultBudget) {
  ASSERT_EQ(setenv("DDSIM_NODE_BUDGET", "700", 1), 0);
  const auto circuit = algo::makeGroverCircuit(7, 11);
  sim::StrategyConfig config = sim::StrategyConfig::maxSizeStrategy(1U << 20);
  sim::CircuitSimulator simulator(circuit, config);
  const auto result = simulator.run();
  ASSERT_EQ(unsetenv("DDSIM_NODE_BUDGET"), 0);
  EXPECT_GT(result.stats.degradationEvents, 0U);
  const double p =
      simulator.package().getAmplitude(result.finalState, 11).mag2();
  EXPECT_GT(p, 0.8);
}

TEST(SimulatorDegradation, ExplicitConfigBeatsEnvVar) {
  ASSERT_EQ(setenv("DDSIM_NODE_BUDGET", "1", 1), 0);  // absurdly small
  const auto circuit = algo::makeGroverCircuit(4, 3);
  sim::StrategyConfig config;
  config.nodeBudget = 1U << 20;  // explicit value wins over the env var
  sim::CircuitSimulator simulator(circuit, config);
  const auto result = simulator.run();
  ASSERT_EQ(unsetenv("DDSIM_NODE_BUDGET"), 0);
  EXPECT_EQ(result.stats.degradationEvents, 0U);
}

TEST(SimulatorDegradation, RejectsBadSoftFraction) {
  const auto circuit = algo::makeGroverCircuit(3, 1);
  sim::StrategyConfig config;
  config.nodeBudget = 1000;
  config.softBudgetFraction = 0.0;
  EXPECT_THROW(sim::CircuitSimulator(circuit, config), std::invalid_argument);
}

TEST(SimulatorDegradation, HardExhaustionWithoutLadderRoomSurfacesError) {
  // A budget below even the sequential working set: the ladder cannot save
  // the run, so it must end in sim::ResourceExhausted with a partial
  // snapshot, never a crash.
  const auto circuit = algo::makeGroverCircuit(7, 11);
  sim::StrategyConfig config;
  config.nodeBudget = 40;
  sim::CircuitSimulator simulator(circuit, config);
  try {
    (void)simulator.run();
    FAIL() << "expected sim::ResourceExhausted";
  } catch (const sim::ResourceExhausted& e) {
    EXPECT_EQ(e.nodeBudget(), 40U);
    EXPECT_GE(e.liveNodes(), 40U);
    EXPECT_GE(e.partial().stats.degradationEvents, 0U);
  }
}

}  // namespace
}  // namespace ddsim
