/// \file test_qasm_files.cpp
/// \brief End-to-end tests over the sample circuits in benchmarks/ — the
///        parser, the simulators and the transforms working off real files.

#include <gtest/gtest.h>

#include "algo/qft.hpp"
#include "ir/qasm.hpp"
#include "ir/transforms.hpp"
#include "sim/equivalence.hpp"
#include "sim/simulator.hpp"

namespace ddsim {
namespace {

std::string samplePath(const std::string& name) {
  return std::string(DDSIM_SOURCE_DIR) + "/benchmarks/" + name;
}

TEST(QasmFiles, BellPairCorrelates) {
  const auto circuit = ir::parseQasmFile(samplePath("bell.qasm"));
  EXPECT_EQ(circuit.numQubits(), 2U);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = sim::simulate(circuit, {}, seed);
    EXPECT_EQ(result.classicalBits[0], result.classicalBits[1]);
  }
}

TEST(QasmFiles, GhzHasTwoOutcomes) {
  const auto circuit = ir::parseQasmFile(samplePath("ghz_8.qasm"));
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  auto& pkg = simulator.package();
  EXPECT_NEAR(pkg.getAmplitude(result.finalState, 0).mag2(), 0.5, 1e-10);
  EXPECT_NEAR(pkg.getAmplitude(result.finalState, 255).mag2(), 0.5, 1e-10);
  EXPECT_LE(pkg.size(result.finalState), 18U);
}

TEST(QasmFiles, QftFileMatchesGenerator) {
  const auto fromFile = ir::parseQasmFile(samplePath("qft_4.qasm"));
  const auto generated = algo::makeQFTCircuit(4);
  EXPECT_TRUE(sim::areEquivalent(fromFile, generated));
}

TEST(QasmFiles, AdderAddsFiveModEight) {
  const auto adder = ir::parseQasmFile(samplePath("adder_3_plus_5.qasm"));
  for (std::uint64_t x = 0; x < 8; ++x) {
    ir::Circuit full(3, 3);
    for (std::size_t q = 0; q < 3; ++q) {
      if (((x >> q) & 1U) != 0) {
        full.x(static_cast<ir::Qubit>(q));
      }
    }
    full.appendCircuit(adder);
    sim::CircuitSimulator simulator(full);
    const auto result = simulator.run();
    EXPECT_NEAR(
        simulator.package().getAmplitude(result.finalState, (x + 5) % 8).mag2(),
        1.0, 1e-8)
        << "x=" << x;
  }
}

TEST(QasmFiles, GroverFileAmplifiesMarkedElement) {
  const auto circuit = ir::parseQasmFile(samplePath("grover_5.qasm"));
  EXPECT_EQ(circuit.numQubits(), 5U);
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto result = sim::simulate(circuit, {}, seed);
    std::uint64_t outcome = 0;
    for (std::size_t q = 0; q < 5; ++q) {
      outcome |= static_cast<std::uint64_t>(result.classicalBits[q]) << q;
    }
    hits += outcome == 22 ? 1 : 0;
  }
  EXPECT_GE(hits, 10);  // 4 iterations on 5 qubits: ~99.9% per shot
}

TEST(QasmFiles, RepetitionDetectionFindsGroverIterations) {
  const auto circuit = ir::parseQasmFile(samplePath("grover_5.qasm"));
  const auto folded = ir::detectRepetitions(circuit);
  // The four hand-unrolled iterations fold back into one compound op.
  bool hasCompound = false;
  std::size_t reps = 0;
  for (const auto& op : folded.ops()) {
    if (op->kind() == ir::OpKind::Compound) {
      hasCompound = true;
      reps = static_cast<const ir::CompoundOperation&>(*op).repetitions();
    }
  }
  EXPECT_TRUE(hasCompound);
  EXPECT_EQ(reps, 4U);
  EXPECT_LT(folded.numOps(), circuit.numOps() / 2);
}

}  // namespace
}  // namespace ddsim
