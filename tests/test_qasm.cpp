#include <gtest/gtest.h>

#include <fstream>
#include <numbers>

#include "baseline/statevector.hpp"
#include "ir/qasm.hpp"
#include "test_util.hpp"

namespace ddsim::ir {
namespace {

TEST(Qasm, ParsesMinimalProgram) {
  const auto circuit = parseQasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
)");
  EXPECT_EQ(circuit.numQubits(), 2U);
  EXPECT_EQ(circuit.numClbits(), 2U);
  EXPECT_EQ(circuit.numOps(), 4U);
  EXPECT_EQ(circuit.ops()[0]->kind(), OpKind::Standard);
  EXPECT_EQ(circuit.ops()[2]->kind(), OpKind::Measure);
}

TEST(Qasm, ParsesParameterExpressions) {
  const auto circuit = parseQasm(R"(
qreg q[1];
rz(pi/2) q[0];
p(-pi/4) q[0];
rx(2*pi/8 + 0.5) q[0];
u3(0.1, -0.2, 3e-1) q[0];
)");
  ASSERT_EQ(circuit.numOps(), 4U);
  const auto& rz = static_cast<const StandardOperation&>(*circuit.ops()[0]);
  EXPECT_DOUBLE_EQ(rz.params()[0], std::numbers::pi / 2);
  const auto& p = static_cast<const StandardOperation&>(*circuit.ops()[1]);
  EXPECT_DOUBLE_EQ(p.params()[0], -std::numbers::pi / 4);
  const auto& rx = static_cast<const StandardOperation&>(*circuit.ops()[2]);
  EXPECT_DOUBLE_EQ(rx.params()[0], std::numbers::pi / 4 + 0.5);
  const auto& u = static_cast<const StandardOperation&>(*circuit.ops()[3]);
  EXPECT_EQ(u.type(), GateType::U);
  EXPECT_DOUBLE_EQ(u.params()[2], 0.3);
}

TEST(Qasm, ParsesControlledForms) {
  const auto circuit = parseQasm(R"(
qreg q[4];
cx q[0], q[1];
ccx q[0], q[1], q[2];
cz q[2], q[3];
cp(pi/8) q[1], q[3];
cswap q[0], q[1], q[2];
mcx q[0], q[1], q[2], q[3];
mcp(0.5) q[0], q[1], q[2];
)");
  ASSERT_EQ(circuit.numOps(), 7U);
  const auto& ccx = static_cast<const StandardOperation&>(*circuit.ops()[1]);
  EXPECT_EQ(ccx.controls().size(), 2U);
  EXPECT_EQ(ccx.type(), GateType::X);
  const auto& cswap = static_cast<const StandardOperation&>(*circuit.ops()[4]);
  EXPECT_EQ(cswap.type(), GateType::Swap);
  EXPECT_EQ(cswap.controls().size(), 1U);
  const auto& mcx = static_cast<const StandardOperation&>(*circuit.ops()[5]);
  EXPECT_EQ(mcx.controls().size(), 3U);
  const auto& mcp = static_cast<const StandardOperation&>(*circuit.ops()[6]);
  EXPECT_EQ(mcp.controls().size(), 2U);
  EXPECT_DOUBLE_EQ(mcp.params()[0], 0.5);
}

TEST(Qasm, MultipleRegistersAreFlattened) {
  const auto circuit = parseQasm(R"(
qreg a[2];
qreg b[3];
creg m[1];
x a[1];
x b[0];
measure b[2] -> m[0];
)");
  EXPECT_EQ(circuit.numQubits(), 5U);
  const auto& x1 = static_cast<const StandardOperation&>(*circuit.ops()[0]);
  EXPECT_EQ(x1.targets()[0], 1);
  const auto& x2 = static_cast<const StandardOperation&>(*circuit.ops()[1]);
  EXPECT_EQ(x2.targets()[0], 2);
  const auto& m = static_cast<const MeasureOperation&>(*circuit.ops()[2]);
  EXPECT_EQ(m.qubit(), 4);
}

TEST(Qasm, CommentsAndResetAndBarrier) {
  const auto circuit = parseQasm(R"(
// leading comment
qreg q[1];
x q[0]; // trailing comment
barrier;
reset q[0];
)");
  EXPECT_EQ(circuit.numOps(), 3U);
  EXPECT_EQ(circuit.ops()[1]->kind(), OpKind::Barrier);
  EXPECT_EQ(circuit.ops()[2]->kind(), OpKind::Reset);
}

TEST(Qasm, Errors) {
  EXPECT_THROW(parseQasm("x q[0];"), QasmError);                     // no qreg
  EXPECT_THROW(parseQasm("qreg q[2]; frobnicate q[0];"), QasmError); // gate
  EXPECT_THROW(parseQasm("qreg q[2]; x q[5];"), QasmError);          // range
  EXPECT_THROW(parseQasm("qreg q[2]; x q[0]"), QasmError);           // ';'
  EXPECT_THROW(parseQasm("qreg q[2]; rx(foo) q[0];"), QasmError);    // expr
  EXPECT_THROW(parseQasm("qreg q[2]; qreg q[3];"), QasmError);       // dup
  EXPECT_THROW(parseQasm("qreg q[1]; creg c[1]; measure q[0] -> c[3];"),
               QasmError);
}

TEST(Qasm, WriteParseRoundTrip) {
  Circuit circuit(3, 3);
  circuit.h(0);
  circuit.cx(0, 1);
  circuit.mcphase(0.75, {Control{0}, Control{1}}, 2);
  circuit.swap(0, 2);
  circuit.rz(-0.5, 1);
  circuit.measure(2, 2);

  const std::string text = toQasm(circuit);
  const Circuit reparsed = parseQasm(text);
  ASSERT_EQ(reparsed.numOps(), circuit.numOps());
  ASSERT_EQ(reparsed.numQubits(), circuit.numQubits());

  // Behavioural equivalence on the dense simulator.
  const auto a = baseline::runOnStateVector(circuit, 7);
  const auto b = baseline::runOnStateVector(reparsed, 7);
  for (std::size_t i = 0; i < a.state.amplitudes().size(); ++i) {
    EXPECT_NEAR(std::abs(a.state.amplitudes()[i] - b.state.amplitudes()[i]),
                0.0, 1e-10);
  }
}

TEST(Qasm, NegativeControlSerializationUsesXConjugation) {
  Circuit circuit(2);
  circuit.gate(GateType::Z, 1, {Control{0, false}});
  const std::string text = toQasm(circuit);
  const Circuit reparsed = parseQasm(text);
  // X cz X pattern: 3 operations.
  EXPECT_EQ(reparsed.numOps(), 3U);
  const auto a = baseline::runOnStateVector(circuit);
  const auto b = baseline::runOnStateVector(reparsed);
  for (std::size_t i = 0; i < a.state.amplitudes().size(); ++i) {
    EXPECT_NEAR(std::abs(a.state.amplitudes()[i] - b.state.amplitudes()[i]),
                0.0, 1e-10);
  }
}

TEST(Qasm, WriterRejectsOracles) {
  Circuit circuit(2);
  circuit.oracle("f", 2, [](std::uint64_t x) { return x; });
  EXPECT_THROW(toQasm(circuit), std::invalid_argument);
}

class QasmRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QasmRoundTripSweep, RandomCircuitsSurviveSerialization) {
  const auto circuit = ddsim::test::randomCircuit(5, 40, GetParam());
  const Circuit reparsed = parseQasm(toQasm(circuit));
  EXPECT_EQ(reparsed.numQubits(), circuit.numQubits());
  const auto a = baseline::runOnStateVector(circuit);
  const auto b = baseline::runOnStateVector(reparsed);
  for (std::size_t i = 0; i < a.state.amplitudes().size(); ++i) {
    ASSERT_NEAR(std::abs(a.state.amplitudes()[i] - b.state.amplitudes()[i]),
                0.0, 1e-9)
        << "seed " << GetParam() << " amplitude " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QasmRoundTripSweep,
                         ::testing::Range<std::uint64_t>(1000, 1012));

TEST(Qasm, FileRoundTrip) {
  Circuit circuit(2, 2);
  circuit.h(0);
  circuit.cx(0, 1);
  circuit.measureAll();
  const std::string path = ::testing::TempDir() + "/ddsim_roundtrip.qasm";
  {
    std::ofstream out(path);
    writeQasm(circuit, out);
  }
  const Circuit loaded = parseQasmFile(path);
  EXPECT_EQ(loaded.numOps(), circuit.numOps());
  EXPECT_THROW(parseQasmFile("/nonexistent/file.qasm"), std::runtime_error);
}

TEST(Qasm, CompoundBlocksAreFlattenedOnWrite) {
  Circuit circuit(1);
  Circuit block(1);
  block.x(0);
  circuit.appendRepeated(std::move(block), 3);
  const Circuit reparsed = parseQasm(toQasm(circuit));
  EXPECT_EQ(reparsed.numOps(), 3U);
}

// ------------------------------------------------- hostile-input hardening
// Malformed or adversarial QASM must produce a QasmError — never a crash, a
// hang, or an attempted multi-GB allocation.

TEST(QasmHardening, HugeRegisterDeclarationIsRejectedAtParseTime) {
  // Would be ~100 TB of qubits if taken literally: must be a parse error,
  // not an out-of-range wrap or a bad_alloc.
  EXPECT_THROW(parseQasm("qreg q[99999999999999];"), QasmError);
  EXPECT_THROW(parseQasm("qreg q[18446744073709551617];"), QasmError);
  EXPECT_THROW(parseQasm("creg c[99999999999999]; qreg q[1];"), QasmError);
}

TEST(QasmHardening, RegisterSizesAreCappedAgainstSimulableLimit) {
  // The DD package tops out at 62 qubits; reject at parse time so errors
  // carry the offending line instead of surfacing later from dd::Package.
  EXPECT_THROW(parseQasm("qreg q[63];"), QasmError);
  EXPECT_THROW(parseQasm("qreg a[40]; qreg b[40];"), QasmError);
  EXPECT_NO_THROW(parseQasm("qreg q[62]; h q[0];"));
  EXPECT_THROW(parseQasm("qreg q[1]; creg c[65537];"), QasmError);
}

TEST(QasmHardening, MalformedIndicesAreRejected) {
  EXPECT_THROW(parseQasm("qreg q[-3];"), QasmError);
  EXPECT_THROW(parseQasm("qreg q[2x];"), QasmError);
  EXPECT_THROW(parseQasm("qreg q[];"), QasmError);
  EXPECT_THROW(parseQasm("qreg q[2]; h q[1e3];"), QasmError);
  EXPECT_THROW(parseQasm("qreg q[2]; h q]1[;"), QasmError);
}

TEST(QasmHardening, DeepParenthesisNestingIsBounded) {
  // 100k nested parentheses: naive recursive descent would overflow the
  // stack; the parser must fail gracefully instead.
  const std::string open(100'000, '(');
  const std::string close(100'000, ')');
  EXPECT_THROW(parseQasm("qreg q[1]; rz(" + open + "1.0" + close + ") q[0];"),
               QasmError);
  // Unary-minus chains recurse through the same path.
  EXPECT_THROW(parseQasm("qreg q[1]; rz(" + std::string(100'000, '-') +
                         "1.0) q[0];"),
               QasmError);
  // Reasonable nesting keeps working.
  EXPECT_NO_THROW(parseQasm("qreg q[1]; rz(((pi/2))) q[0];"));
}

TEST(QasmHardening, TruncatedProgramsFailCleanly) {
  EXPECT_THROW(parseQasm("qreg q[2]; h q["), QasmError);
  EXPECT_THROW(parseQasm("qreg q[2]; measure q[0] ->"), QasmError);
  EXPECT_THROW(parseQasm("qreg q[2]; rz(0.5"), QasmError);
  EXPECT_THROW(parseQasm("qreg"), QasmError);
  EXPECT_THROW(parseQasm(""), QasmError);
}

}  // namespace
}  // namespace ddsim::ir
