#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "dd/memory_manager.hpp"
#include "dd/node.hpp"
#include "dd/unique_table.hpp"

namespace ddsim::dd {
namespace {

TEST(MemoryManager, HandsOutDistinctNodes) {
  MemoryManager<VNode> mm;
  std::unordered_set<VNode*> seen;
  for (int i = 0; i < 1000; ++i) {
    VNode* n = mm.get();
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(seen.insert(n).second) << "duplicate node handed out";
  }
  EXPECT_EQ(mm.allocated(), 1000U);
  EXPECT_EQ(mm.inUse(), 1000U);
  EXPECT_EQ(mm.freeListSize(), 0U);
}

TEST(MemoryManager, RecyclesFreedNodes) {
  MemoryManager<VNode> mm;
  VNode* a = mm.get();
  a->v = 7;
  a->ref = 3;
  mm.free(a);
  EXPECT_EQ(mm.freeListSize(), 1U);
  VNode* b = mm.get();
  EXPECT_EQ(a, b);  // LIFO reuse
  // Recycled nodes come back default-initialized.
  EXPECT_EQ(b->v, kTerminalVar);
  EXPECT_EQ(b->ref, 0U);
  EXPECT_EQ(mm.freeListSize(), 0U);
}

TEST(MemoryManager, SurvivesChunkBoundaries) {
  // Chunk size 4: force many chunk allocations and interleaved frees.
  MemoryManager<MNode> mm(4);
  std::vector<MNode*> nodes;
  for (int i = 0; i < 64; ++i) {
    nodes.push_back(mm.get());
  }
  // Free every other node, then reallocate.
  std::size_t freed = 0;
  for (std::size_t i = 0; i < nodes.size(); i += 2) {
    mm.free(nodes[i]);
    ++freed;
  }
  EXPECT_EQ(mm.freeListSize(), freed);
  for (std::size_t i = 0; i < freed; ++i) {
    ASSERT_NE(mm.get(), nullptr);
  }
  EXPECT_EQ(mm.freeListSize(), 0U);
  // Reused allocations must not have bumped the total.
  EXPECT_EQ(mm.allocated(), 64U);
}

TEST(MemoryManager, InUseAccounting) {
  MemoryManager<VNode> mm;
  VNode* a = mm.get();
  VNode* b = mm.get();
  EXPECT_EQ(mm.inUse(), 2U);
  mm.free(a);
  EXPECT_EQ(mm.inUse(), 1U);
  mm.free(b);
  EXPECT_EQ(mm.inUse(), 0U);
}

TEST(MemoryManager, ReleaseFreeChunksReturnsFullyFreeChunks) {
  MemoryManager<MNode> mm(4);
  std::vector<MNode*> nodes;
  for (int i = 0; i < 64; ++i) {
    nodes.push_back(mm.get());
  }
  const std::size_t bytesBefore = mm.bytesAllocated();
  EXPECT_EQ(bytesBefore, 16U * 4 * sizeof(MNode));

  // Free chunks 0..7 entirely (nodes 0..31), keep the rest in use.
  for (std::size_t i = 0; i < 32; ++i) {
    mm.free(nodes[i]);
  }
  const std::size_t released = mm.releaseFreeChunks();
  EXPECT_EQ(released, 8U * 4 * sizeof(MNode));
  EXPECT_EQ(mm.bytesAllocated(), bytesBefore - released);
  EXPECT_EQ(mm.allocated(), 32U);
  EXPECT_EQ(mm.inUse(), 32U);
  EXPECT_EQ(mm.freeListSize(), 0U);

  // The surviving nodes keep working and further allocation is intact.
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(mm.get(), nullptr);
  }
  EXPECT_EQ(mm.inUse(), 40U);
}

TEST(MemoryManager, ReleaseFreeChunksKeepsPartiallyUsedChunks) {
  MemoryManager<MNode> mm(4);
  std::vector<MNode*> nodes;
  for (int i = 0; i < 16; ++i) {
    nodes.push_back(mm.get());
  }
  // Free every other node: no chunk becomes fully free.
  for (std::size_t i = 0; i < nodes.size(); i += 2) {
    mm.free(nodes[i]);
  }
  EXPECT_EQ(mm.releaseFreeChunks(), 0U);
  EXPECT_EQ(mm.allocated(), 16U);
  EXPECT_EQ(mm.freeListSize(), 8U);
}

TEST(MemoryManager, ReleaseFreeChunksHandlesCarveChunk) {
  MemoryManager<MNode> mm(4);
  // Only partially carve the first (and only) chunk, then free everything.
  MNode* a = mm.get();
  MNode* b = mm.get();
  mm.free(a);
  mm.free(b);
  EXPECT_EQ(mm.releaseFreeChunks(), 4U * sizeof(MNode));
  EXPECT_EQ(mm.bytesAllocated(), 0U);
  EXPECT_EQ(mm.allocated(), 0U);
  // Allocation restarts cleanly on a fresh chunk.
  EXPECT_NE(mm.get(), nullptr);
  EXPECT_EQ(mm.inUse(), 1U);
}

TEST(MemoryManager, IdEpochAdvancesAcrossChunkRelease) {
  MemoryManager<VNode> mm(4);
  std::vector<VNode*> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(mm.get());
  }
  // Bump incarnations, then release the chunk.
  for (VNode* n : nodes) {
    mm.free(n);  // id becomes 1
  }
  ASSERT_GT(mm.releaseFreeChunks(), 0U);
  // A fresh carve (possibly at the same address) must start above every id
  // that lived in the released chunk, or stale compute-table entries could
  // falsely revalidate.
  VNode* fresh = mm.get();
  EXPECT_GE(fresh->id, 2U);
}

TEST(MemoryManager, ChunkGrowthBadAllocBecomesResourceExhausted) {
  // A chunk too large for any allocator: make_unique throws, and the
  // manager must convert it into the structured taxonomy instead of
  // crashing with an unhandled bad_alloc.
  MemoryManager<VNode> mm(std::numeric_limits<std::size_t>::max() /
                          sizeof(VNode) / 2);
  EXPECT_THROW(mm.get(), ResourceExhausted);
  try {
    mm.get();
  } catch (const ResourceExhausted& e) {
    EXPECT_STREQ(e.operation().c_str(), "chunk allocation");
    EXPECT_NE(std::string(e.what()).find("bad_alloc"), std::string::npos);
  }
}

TEST(UniqueTableDirect, DeduplicatesStructurallyEqualNodes) {
  MemoryManager<VNode> mm;
  UniqueTable<VNode> table(mm);
  table.resize(2);

  // Two structurally identical candidates must resolve to one node.
  const ComplexValue half{0.5, 0.0};
  VNode terminal;
  terminal.v = kTerminalVar;

  VNode* c1 = mm.get();
  c1->v = 0;
  c1->e = {VEdge{&terminal, &half}, VEdge{&terminal, &half}};
  VNode* r1 = table.lookup(c1);

  VNode* c2 = mm.get();
  c2->v = 0;
  c2->e = {VEdge{&terminal, &half}, VEdge{&terminal, &half}};
  VNode* r2 = table.lookup(c2);

  EXPECT_EQ(r1, r2);
  EXPECT_EQ(table.liveCount(), 1U);
  EXPECT_EQ(table.hits(), 1U);
  EXPECT_EQ(table.misses(), 1U);
  // The duplicate candidate was recycled.
  EXPECT_EQ(mm.freeListSize(), 1U);
}

TEST(UniqueTableDirect, DistinguishesDifferentWeightPointers) {
  MemoryManager<VNode> mm;
  UniqueTable<VNode> table(mm);
  table.resize(1);

  const ComplexValue w1{0.5, 0.0};
  const ComplexValue w2{0.25, 0.0};
  VNode terminal;
  terminal.v = kTerminalVar;

  VNode* c1 = mm.get();
  c1->v = 0;
  c1->e = {VEdge{&terminal, &w1}, VEdge{&terminal, &w2}};
  VNode* r1 = table.lookup(c1);

  VNode* c2 = mm.get();
  c2->v = 0;
  c2->e = {VEdge{&terminal, &w2}, VEdge{&terminal, &w1}};
  VNode* r2 = table.lookup(c2);

  EXPECT_NE(r1, r2);
  EXPECT_EQ(table.liveCount(), 2U);
}

TEST(UniqueTableDirect, GarbageCollectRemovesUnreferenced) {
  MemoryManager<VNode> mm;
  UniqueTable<VNode> table(mm);
  table.resize(1);
  const ComplexValue w{0.5, 0.0};
  VNode terminal;
  terminal.v = kTerminalVar;

  std::vector<VNode*> nodes;
  for (int i = 0; i < 10; ++i) {
    VNode* c = mm.get();
    c->v = 0;
    // Distinct weights pointers (stack array) make distinct nodes.
    c->e = {VEdge{&terminal, &w}, VEdge{&terminal, nullptr}};
    c->e[1].w = reinterpret_cast<const ComplexValue*>(
        reinterpret_cast<const char*>(&w) + i);  // synthetic distinct keys
    nodes.push_back(table.lookup(c));
  }
  nodes[0]->ref = 1;
  nodes[5]->ref = 2;
  const std::size_t collected = table.garbageCollect();
  EXPECT_EQ(collected, 8U);
  EXPECT_EQ(table.liveCount(), 2U);
  // Referenced nodes still found via forEach.
  std::size_t count = 0;
  table.forEach([&count](const VNode*) { ++count; });
  EXPECT_EQ(count, 2U);
}

}  // namespace
}  // namespace ddsim::dd
