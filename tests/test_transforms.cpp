#include <gtest/gtest.h>

#include "algo/grover.hpp"
#include "ir/qasm.hpp"
#include "ir/transforms.hpp"
#include "sim/equivalence.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim::ir {
namespace {

TEST(DetectRepetitions, FoldsSimpleLoop) {
  Circuit circuit(2);
  for (int i = 0; i < 5; ++i) {
    circuit.h(0);
    circuit.cx(0, 1);
  }
  const Circuit folded = detectRepetitions(circuit);
  ASSERT_EQ(folded.numOps(), 1U);
  const auto& comp = static_cast<const CompoundOperation&>(*folded.ops()[0]);
  EXPECT_EQ(comp.repetitions(), 5U);
  EXPECT_EQ(comp.body().size(), 2U);
  EXPECT_EQ(folded.flatGateCount(), circuit.flatGateCount());
}

TEST(DetectRepetitions, PreservesSemantics) {
  Circuit circuit(3);
  circuit.x(2);
  for (int i = 0; i < 4; ++i) {
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.t(1);
  }
  circuit.h(2);
  const Circuit folded = detectRepetitions(circuit);
  EXPECT_LT(folded.numOps(), circuit.numOps());
  EXPECT_TRUE(sim::areEquivalent(circuit, folded));
}

TEST(DetectRepetitions, FlattenedGroverRecoversIterations) {
  // Flatten the Grover circuit (losing the annotation), re-detect, and
  // check DD-repeating works on the recovered structure.
  const auto annotated = algo::makeGroverCircuit(8, 99);
  const Circuit flat = annotated.flattened();
  const Circuit recovered = detectRepetitions(flat);

  // Far fewer top-level ops than the flat version, and one compound with
  // the right body size appears.
  EXPECT_LT(recovered.numOps(), flat.numOps() / 4);
  bool hasCompound = false;
  for (const auto& op : recovered.ops()) {
    hasCompound |= op->kind() == OpKind::Compound;
  }
  EXPECT_TRUE(hasCompound);

  sim::StrategyConfig repeating = sim::StrategyConfig::sequential();
  repeating.reuseRepeatedBlocks = true;
  sim::CircuitSimulator a(annotated, sim::StrategyConfig::sequential());
  sim::CircuitSimulator b(recovered, repeating);
  const auto ra = a.run();
  const auto rb = b.run();
  const auto va = a.package().getVector(ra.finalState);
  const auto vb = b.package().getVector(rb.finalState);
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i].r, vb[i].r, 1e-7);
    EXPECT_NEAR(va[i].i, vb[i].i, 1e-7);
  }
}

TEST(DetectRepetitions, MeasurementIsABoundary) {
  Circuit circuit(1, 1);
  for (int i = 0; i < 3; ++i) {
    circuit.h(0);
    circuit.t(0);
  }
  circuit.measure(0, 0);
  for (int i = 0; i < 3; ++i) {
    circuit.h(0);
    circuit.t(0);
  }
  const Circuit folded = detectRepetitions(circuit);
  // Two folded loops with the measurement between them.
  ASSERT_EQ(folded.numOps(), 3U);
  EXPECT_EQ(folded.ops()[1]->kind(), OpKind::Measure);
}

TEST(DetectRepetitions, RespectsMinimumThresholds) {
  Circuit circuit(1);
  circuit.x(0);
  circuit.x(0);  // an X-X pair is below minTotalOps=4
  const Circuit folded = detectRepetitions(circuit);
  EXPECT_EQ(folded.numOps(), 2U);

  RepetitionOptions loose;
  loose.minTotalOps = 2;
  const Circuit foldedLoose = detectRepetitions(circuit, loose);
  EXPECT_EQ(foldedLoose.numOps(), 1U);
}

TEST(DetectRepetitions, NoFalsePositives) {
  const auto circuit = test::randomCircuit(4, 40, 87);
  const Circuit folded = detectRepetitions(circuit);
  EXPECT_TRUE(sim::areEquivalent(circuit, folded));
}

TEST(DetectRepetitions, DistinguishesParameters) {
  Circuit circuit(1);
  circuit.rz(0.5, 0);
  circuit.rz(0.5, 0);
  circuit.rz(0.6, 0);  // different angle must not fold into the run
  circuit.rz(0.5, 0);
  const Circuit folded = detectRepetitions(circuit, {.minRepetitions = 2,
                                                     .maxPeriod = 4,
                                                     .minTotalOps = 2});
  EXPECT_TRUE(sim::areEquivalent(circuit, folded));
}

TEST(CircuitDepth, SequentialVsParallel) {
  Circuit seq(1);
  seq.h(0);
  seq.t(0);
  seq.h(0);
  EXPECT_EQ(circuitDepth(seq), 3U);

  Circuit par(3);
  par.h(0);
  par.h(1);
  par.h(2);
  EXPECT_EQ(circuitDepth(par), 1U);
}

TEST(CircuitDepth, ControlsCreateDependencies) {
  Circuit circuit(3);
  circuit.h(0);
  circuit.cx(0, 1);  // depends on h(0)
  circuit.h(2);      // independent
  EXPECT_EQ(circuitDepth(circuit), 2U);
}

TEST(CircuitDepth, BarrierSynchronizes) {
  Circuit circuit(2);
  circuit.h(0);
  circuit.barrier();
  circuit.h(1);  // after the barrier: level 2 even though qubit 1 was idle
  EXPECT_EQ(circuitDepth(circuit), 2U);
}

TEST(CircuitDepth, CompoundBlocksAreFlattened) {
  Circuit circuit(1);
  Circuit block(1);
  block.h(0);
  block.t(0);
  circuit.appendRepeated(std::move(block), 3);
  EXPECT_EQ(circuitDepth(circuit), 6U);
}

}  // namespace
}  // namespace ddsim::ir
