/// Tests for the batch-simulation service: admission, priorities, deadlines,
/// cancellation, result caching/coalescing, manifest parsing and the stats
/// export. Concurrency-sensitive tests are written to pass under TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "algo/grover.hpp"
#include "dd/fault_injection.hpp"
#include "ir/circuit.hpp"
#include "serve/manifest.hpp"
#include "serve/result_cache.hpp"
#include "serve/service.hpp"
#include "sim/simulator.hpp"

namespace ddsim {
namespace {

std::shared_ptr<const ir::Circuit> makeBell() {
  ir::Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.measureAll();
  return std::make_shared<const ir::Circuit>(std::move(c));
}

std::shared_ptr<const ir::Circuit> makeGrover(std::size_t n) {
  algo::GroverOptions options;
  options.measure = true;
  return std::make_shared<const ir::Circuit>(
      algo::makeGroverCircuit(n, /*marked=*/(1ULL << n) - 2, options));
}

/// Many cheap layers: minutes of work if run to completion (no test does —
/// every use is cut short by a cancel, deadline or time limit), with
/// per-gate granularity fine enough that the abort is honoured within
/// milliseconds.
constexpr std::uint64_t kLongCircuitGates = 23ULL * 2000000ULL;

std::shared_ptr<const ir::Circuit> makeLongCircuit() {
  ir::Circuit layer(12);
  for (std::size_t q = 0; q < 12; ++q) {
    layer.h(q);
  }
  for (std::size_t q = 0; q + 1 < 12; ++q) {
    layer.cx(q, q + 1);
  }
  ir::Circuit c(12);
  c.appendRepeated(std::move(layer), 2000000, "layer");
  return std::make_shared<const ir::Circuit>(std::move(c));
}

serve::JobSpec spec(std::shared_ptr<const ir::Circuit> circuit,
                    std::uint64_t seed = 0,
                    sim::StrategyConfig config = {}) {
  serve::JobSpec s;
  s.circuit = std::move(circuit);
  s.config = config;
  s.seed = seed;
  return s;
}

/// Long-circuit jobs skip the cache: content-hashing 46M flattened gates
/// costs real time in submit(), which would eat into deadline budgets.
serve::JobSpec longSpec(std::uint64_t seed,
                        sim::StrategyConfig config = {}) {
  serve::JobSpec s = spec(makeLongCircuit(), seed, config);
  s.bypassCache = true;
  return s;
}

// ------------------------------------------------------------ basic service

TEST(SimulationService, CompletedJobMatchesDirectSimulation) {
  const auto grover = makeGrover(8);
  const auto config = sim::StrategyConfig::kOperations(4);
  const sim::DetachedResult direct = sim::simulate(*grover, config, 7);

  serve::ServiceConfig sc;
  sc.workers = 2;
  serve::SimulationService service(sc);
  const serve::JobHandle handle = service.submit(spec(grover, 7, config));
  const serve::JobResult& r = handle.wait();

  EXPECT_EQ(r.status, serve::JobStatus::Completed);
  EXPECT_FALSE(r.fromCache);
  EXPECT_EQ(r.classicalBits, direct.classicalBits);
  EXPECT_EQ(r.stats.mxvCount, direct.stats.mxvCount);
  EXPECT_EQ(r.stats.mxmCount, direct.stats.mxmCount);
  EXPECT_EQ(r.stats.appliedGates, direct.stats.appliedGates);
  EXPECT_GE(r.worker, 0);
  EXPECT_GT(r.completionIndex, 0U);
}

TEST(SimulationService, RejectsNullCircuitAndBadConfig) {
  serve::SimulationService service({.workers = 1});
  EXPECT_THROW((void)service.submit(serve::JobSpec{}), std::invalid_argument);

  serve::JobSpec bad = spec(makeBell());
  bad.config.k = 0;
  EXPECT_THROW((void)service.submit(std::move(bad)), std::invalid_argument);
}

TEST(SimulationService, PriorityBandsDrainHighFirst) {
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.startPaused = true;
  serve::SimulationService service(sc);

  serve::JobSpec low = spec(makeBell(), 1);
  low.priority = serve::JobPriority::Low;
  serve::JobSpec normal = spec(makeBell(), 2);
  normal.priority = serve::JobPriority::Normal;
  serve::JobSpec high = spec(makeBell(), 3);
  high.priority = serve::JobPriority::High;

  // Submission order is worst-case: lowest priority first.
  const auto hLow = service.submit(std::move(low));
  const auto hNormal = service.submit(std::move(normal));
  const auto hHigh = service.submit(std::move(high));
  service.start();

  const auto& rLow = hLow.wait();
  const auto& rNormal = hNormal.wait();
  const auto& rHigh = hHigh.wait();
  EXPECT_LT(rHigh.completionIndex, rNormal.completionIndex);
  EXPECT_LT(rNormal.completionIndex, rLow.completionIndex);
}

TEST(SimulationService, BoundedQueueRejectsWhenFull) {
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.queueCapacity = 2;
  sc.startPaused = true;
  serve::SimulationService service(sc);

  const auto h1 = service.submit(spec(makeBell(), 1));
  const auto h2 = service.submit(spec(makeBell(), 2));
  EXPECT_THROW((void)service.submit(spec(makeBell(), 3)),
               serve::AdmissionError);
  EXPECT_FALSE(service.trySubmit(spec(makeBell(), 4)).has_value());

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 2U);
  EXPECT_EQ(stats.submitted, 2U);
  EXPECT_EQ(stats.queueDepth, 2U);

  service.start();
  h1.wait();
  h2.wait();
}

TEST(SimulationService, SubmitAfterShutdownIsRejected) {
  serve::SimulationService service({.workers = 1});
  service.shutdown();
  EXPECT_THROW((void)service.submit(spec(makeBell())), serve::AdmissionError);
}

// ------------------------------------------------- cancellation & deadlines

TEST(SimulationService, CancelBeforeExecutionSkipsSimulation) {
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.startPaused = true;
  serve::SimulationService service(sc);

  const auto handle = service.submit(spec(makeBell(), 5));
  EXPECT_TRUE(handle.cancel());
  service.start();
  const serve::JobResult& r = handle.wait();

  EXPECT_EQ(r.status, serve::JobStatus::Cancelled);
  EXPECT_EQ(r.runSeconds, 0.0);
  EXPECT_FALSE(r.partial.has_value());
  EXPECT_EQ(service.stats().simulationsRun, 0U);
  EXPECT_FALSE(handle.cancel());  // already resolved
}

TEST(SimulationService, CancelMidRunYieldsPartialResult) {
  serve::SimulationService service({.workers = 1});
  const auto handle = service.submit(longSpec(1));

  // Wait until the worker has actually started simulating, then cancel.
  while (service.stats().simulationsRun == 0) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(handle.cancel());
  const serve::JobResult& r = handle.wait();

  EXPECT_EQ(r.status, serve::JobStatus::Cancelled);
  ASSERT_TRUE(r.partial.has_value());
  EXPECT_LT(r.partial->opsCompleted, kLongCircuitGates);
  EXPECT_EQ(service.stats().cancelled, 1U);
}

TEST(SimulationService, DeadlinePassedWhileQueuedExpiresWithoutSimulating) {
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.startPaused = true;
  serve::SimulationService service(sc);

  serve::JobSpec job = spec(makeBell(), 9);
  job.deadlineSeconds = 0.02;
  const auto handle = service.submit(std::move(job));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  service.start();
  const serve::JobResult& r = handle.wait();

  EXPECT_EQ(r.status, serve::JobStatus::Expired);
  EXPECT_FALSE(r.partial.has_value());
  EXPECT_GE(r.queueSeconds, 0.02);
  EXPECT_EQ(service.stats().simulationsRun, 0U);
}

TEST(SimulationService, DeadlineBindingMidRunExpiresWithPartial) {
  serve::SimulationService service({.workers = 1});
  serve::JobSpec job = longSpec(2);
  job.deadlineSeconds = 0.25;
  const auto handle = service.submit(std::move(job));
  const serve::JobResult& r = handle.wait();

  // The deadline, not a config time limit, cut the run short.
  EXPECT_EQ(r.status, serve::JobStatus::Expired);
  EXPECT_TRUE(r.partial.has_value());
  EXPECT_EQ(service.stats().expired, 1U);
  EXPECT_EQ(service.stats().timedOut, 0U);
}

TEST(SimulationService, ConfigTimeLimitSurfacesAsTimedOut) {
  serve::SimulationService service({.workers = 1});
  sim::StrategyConfig config;
  config.timeLimitSeconds = 0.2;
  const auto handle = service.submit(longSpec(3, config));
  const serve::JobResult& r = handle.wait();

  EXPECT_EQ(r.status, serve::JobStatus::TimedOut);
  EXPECT_TRUE(r.partial.has_value());
  EXPECT_FALSE(r.error.empty());
}

// ------------------------------------------------------- caching & dedup

TEST(SimulationService, RepeatSubmissionIsAnsweredFromCache) {
  serve::SimulationService service({.workers = 1});
  const auto bell = makeBell();

  const auto first = service.submit(spec(bell, 11));
  const serve::JobResult& r1 = first.wait();
  EXPECT_EQ(r1.status, serve::JobStatus::Completed);

  const auto second = service.submit(spec(bell, 11));
  const serve::JobResult& r2 = second.wait();
  EXPECT_EQ(r2.status, serve::JobStatus::Cached);
  EXPECT_TRUE(r2.fromCache);
  EXPECT_EQ(r2.runSeconds, 0.0);
  EXPECT_EQ(r2.classicalBits, r1.classicalBits);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.simulationsRun, 1U);
  EXPECT_EQ(stats.cached, 1U);
  EXPECT_GE(stats.cache.hits, 1U);
}

TEST(SimulationService, DistinctSeedsAndConfigsDoNotShareCacheEntries) {
  serve::SimulationService service({.workers = 1});
  const auto bell = makeBell();

  service.submit(spec(bell, 1)).wait();
  service.submit(spec(bell, 2)).wait();  // different seed
  service.submit(spec(bell, 1, sim::StrategyConfig::kOperations(2))).wait();

  EXPECT_EQ(service.stats().simulationsRun, 3U);
}

TEST(SimulationService, BypassCacheForcesResimulation) {
  serve::SimulationService service({.workers = 1});
  const auto bell = makeBell();
  serve::JobSpec a = spec(bell, 4);
  a.bypassCache = true;
  serve::JobSpec b = spec(bell, 4);
  b.bypassCache = true;
  service.submit(std::move(a)).wait();
  service.submit(std::move(b)).wait();
  EXPECT_EQ(service.stats().simulationsRun, 2U);
}

TEST(SimulationService, TraceFlagDoesNotSplitCacheIdentity) {
  // Regression: collectTrace is observation-only, so trace-on and trace-off
  // submissions of the same job must coalesce onto one simulation. The
  // config hash used to include the flag, silently doubling the work.
  sim::StrategyConfig traced;
  traced.collectTrace = true;
  EXPECT_EQ(sim::StrategyConfig{}.contentHash(), traced.contentHash());

  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.startPaused = true;
  serve::SimulationService service(sc);
  const auto bell = makeBell();

  const auto plain = service.submit(spec(bell, 17));
  const auto withTrace = service.submit(spec(bell, 17, traced));
  service.start();

  EXPECT_EQ(plain.wait().status, serve::JobStatus::Completed);
  const serve::JobResult& r2 = withTrace.wait();
  EXPECT_TRUE(r2.coalesced || r2.fromCache);
  EXPECT_EQ(r2.classicalBits, plain.wait().classicalBits);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.simulationsRun, 1U);
  EXPECT_EQ(stats.coalesced, 1U);
}

TEST(SimulationService, ConcurrentIdenticalSubmissionsSimulateOnce) {
  serve::ServiceConfig sc;
  sc.workers = 4;
  serve::SimulationService service(sc);
  const auto grover = makeGrover(10);
  const auto config = sim::StrategyConfig::kOperations(4);

  constexpr std::size_t kThreads = 8;
  std::vector<serve::JobHandle> handles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      handles[i] = service.submit(spec(grover, 21, config));
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  const std::vector<bool> expected = handles[0].wait().classicalBits;
  for (const auto& handle : handles) {
    const serve::JobResult& r = handle.wait();
    EXPECT_TRUE(r.status == serve::JobStatus::Completed ||
                r.status == serve::JobStatus::Cached);
    EXPECT_EQ(r.classicalBits, expected);
  }

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.simulationsRun, 1U);
  EXPECT_EQ(stats.coalesced + stats.cached, kThreads - 1);
  EXPECT_EQ(stats.submitted, kThreads);
}

// --------------------------------------------------------- ResultCache LRU

serve::CacheKey key(std::uint64_t n) {
  return serve::CacheKey{n, 0, 0};
}

TEST(ResultCache, EvictsLeastRecentlyUsedAtCapacity) {
  serve::ResultCache cache(/*capacity=*/2, /*shards=*/1);
  cache.insert(key(1), {{true}, {}});
  cache.insert(key(2), {{false}, {}});
  ASSERT_TRUE(cache.lookup(key(1)).has_value());  // touch 1: now 2 is LRU
  cache.insert(key(3), {{true, true}, {}});       // evicts 2

  EXPECT_FALSE(cache.lookup(key(2)).has_value());
  EXPECT_TRUE(cache.lookup(key(1)).has_value());
  EXPECT_TRUE(cache.lookup(key(3)).has_value());

  const serve::CacheCounters c = cache.counters();
  EXPECT_EQ(c.insertions, 3U);
  EXPECT_EQ(c.evictions, 1U);
  EXPECT_EQ(c.entries, 2U);
  EXPECT_EQ(c.hits, 3U);
  EXPECT_EQ(c.misses, 1U);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  serve::ResultCache cache(0);
  cache.insert(key(1), {{true}, {}});
  EXPECT_FALSE(cache.lookup(key(1)).has_value());
  EXPECT_EQ(cache.counters().entries, 0U);
}

TEST(ResultCache, CapacityIsFullyUsableWithNonDivisibleShardCount) {
  // Regression: per-shard capacity used to be floor(capacity / shards),
  // silently dropping the remainder (10/4 -> 8 usable slots).
  serve::ResultCache cache(/*capacity=*/10, /*shards=*/4);
  EXPECT_EQ(cache.effectiveCapacity(), 10U);

  // Saturate every shard: far more distinct keys than capacity.
  for (std::uint64_t n = 0; n < 1000; ++n) {
    cache.insert(key(n), {{true}, {}});
  }
  EXPECT_EQ(cache.counters().entries, 10U);
}

TEST(ResultCache, EffectiveCapacityMatchesRequestedAcrossShardCounts) {
  for (std::size_t capacity : {1U, 2U, 5U, 7U, 10U, 64U, 1000U}) {
    for (std::size_t shards : {1U, 2U, 3U, 4U, 7U, 8U, 16U}) {
      serve::ResultCache cache(capacity, shards);
      EXPECT_EQ(cache.effectiveCapacity(), capacity)
          << "capacity=" << capacity << " shards=" << shards;
    }
  }
}

TEST(ResultCache, FullKeyComparisonSurvivesDigestCollisions) {
  // Same digest inputs arranged differently must not alias.
  serve::ResultCache cache(8, 1);
  cache.insert(serve::CacheKey{1, 2, 3}, {{true}, {}});
  EXPECT_FALSE(cache.lookup(serve::CacheKey{3, 2, 1}).has_value());
  EXPECT_TRUE(cache.lookup(serve::CacheKey{1, 2, 3}).has_value());
}

// ------------------------------------------------------------ block cache

std::shared_ptr<const dd::FlatMatrixDD> flatStub(std::size_t qubits) {
  auto flat = std::make_shared<dd::FlatMatrixDD>();
  flat->numQubits = qubits;
  return flat;
}

TEST(BlockCache, EvictsLeastRecentlyUsedAtCapacity) {
  serve::BlockCache cache(2);
  cache.insert(1, flatStub(1));
  cache.insert(2, flatStub(2));
  ASSERT_NE(cache.lookup(1), nullptr);  // touch 1: now 2 is LRU
  cache.insert(3, flatStub(3));         // evicts 2

  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);

  const serve::BlockCacheCounters c = cache.counters();
  EXPECT_EQ(c.insertions, 3U);
  EXPECT_EQ(c.evictions, 1U);
  EXPECT_EQ(c.entries, 2U);
  EXPECT_EQ(c.hits, 3U);
  EXPECT_EQ(c.misses, 1U);
}

TEST(BlockCache, ZeroCapacityDisablesCaching) {
  serve::BlockCache cache(0);
  cache.insert(1, flatStub(1));
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.counters().entries, 0U);
}

TEST(SimulationService, SharedBlockCacheSpansJobs) {
  // A DD-repeating circuit whose repeated block is the cacheable unit.
  ir::Circuit body(4);
  body.h(0);
  body.cx(0, 1);
  body.cx(1, 2);
  body.t(2);
  body.cx(2, 3);
  ir::Circuit c(4, 4, "repeating");
  c.appendRepeated(std::move(body), 6, "layer");
  c.measureAll();
  const auto circuit = std::make_shared<const ir::Circuit>(std::move(c));

  sim::StrategyConfig config = sim::StrategyConfig::kOperations(4);
  config.reuseRepeatedBlocks = true;
  const sim::DetachedResult direct = sim::simulate(*circuit, config, 5);

  serve::ServiceConfig sc;
  sc.workers = 2;
  sc.blockCacheCapacity = 8;
  serve::SimulationService service(sc);
  // Different seeds: distinct result-cache keys, so both jobs simulate —
  // but the second imports the block the first one built and published.
  const auto first = service.submit(spec(circuit, 5, config));
  EXPECT_EQ(first.wait().status, serve::JobStatus::Completed);
  const auto second = service.submit(spec(circuit, 6, config));
  EXPECT_EQ(second.wait().status, serve::JobStatus::Completed);

  EXPECT_EQ(first.wait().classicalBits, direct.classicalBits);
  const serve::ServiceStats stats = service.stats();
  EXPECT_GE(stats.blockCache.insertions, 1U);
  EXPECT_GE(stats.blockCache.hits, 1U);
  EXPECT_GT(stats.blockCache.sharedNodes, 0U);
  EXPECT_NE(stats.toJson().find("\"block_cache\": {\"hits\": "),
            std::string::npos);
}

// ------------------------------------------------------------ seed fan-out

TEST(DeriveSeed, StableAndDecorrelated) {
  EXPECT_EQ(sim::deriveSeed(42, 7), sim::deriveSeed(42, 7));
  EXPECT_NE(sim::deriveSeed(42, 0), sim::deriveSeed(42, 1));
  EXPECT_NE(sim::deriveSeed(42, 0), sim::deriveSeed(43, 0));

  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(sim::deriveSeed(0, i));
  }
  EXPECT_EQ(seen.size(), 1000U);
}

// ----------------------------------------------------------- stats export

TEST(ServiceStats, JsonExportCarriesAllCounterGroups) {
  serve::SimulationService service({.workers = 2});
  service.submit(spec(makeBell(), 1)).wait();
  service.submit(spec(makeBell(), 1)).wait();  // cache hit

  const std::string json = service.stats().toJson();
  for (const char* needle :
       {"\"workers\": 2", "\"submitted\": 2", "\"simulations_run\": 1",
        "\"cached\": 1", "\"cache\": {\"hits\": 1", "\"degradation\": {",
        "\"pipeline\": {\"blocks\": ", "\"serial_fallback_ops\": ",
        "\"per_worker_jobs\": [", "\"jobs_per_second\":",
        "\"queue_latency_mean_seconds\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
}

// -------------------------------------------------------------- manifests

TEST(Manifest, ParsesOptionsCommentsAndBlankLines) {
  const std::string text =
      "# mixed workload\n"
      "bell.qasm strategy=k=4 seed=11 repeat=3 priority=high deadline=2.5 "
      "label=hello\n"
      "\n"
      "ghz.qasm dd-repeating detect-repetitions time-limit=10 "
      "node-budget=5000 byte-budget=1000000 approx=0.99  # trailing comment\n";
  const auto entries = serve::parseManifest(text);
  ASSERT_EQ(entries.size(), 2U);

  const serve::ManifestEntry& a = entries[0];
  EXPECT_EQ(a.path, "bell.qasm");
  EXPECT_EQ(a.label, "hello");
  EXPECT_EQ(a.config.schedule, sim::Schedule::KOperations);
  EXPECT_EQ(a.config.k, 4U);
  EXPECT_EQ(a.seed, 11U);
  EXPECT_EQ(a.repeat, 3U);
  EXPECT_EQ(a.priority, serve::JobPriority::High);
  EXPECT_DOUBLE_EQ(a.deadlineSeconds, 2.5);

  const serve::ManifestEntry& b = entries[1];
  EXPECT_EQ(b.label, "ghz.qasm");
  EXPECT_TRUE(b.ddRepeating);
  EXPECT_TRUE(b.config.reuseRepeatedBlocks);
  EXPECT_TRUE(b.detectRepetitions);
  EXPECT_DOUBLE_EQ(b.config.timeLimitSeconds, 10.0);
  EXPECT_EQ(b.config.nodeBudget, 5000U);
  EXPECT_EQ(b.config.byteBudget, 1000000U);
  EXPECT_DOUBLE_EQ(b.config.approximateFidelity, 0.99);
}

TEST(Manifest, StrategyTokenPreservesEarlierOptions) {
  const auto entries =
      serve::parseManifest("a.qasm dd-repeating time-limit=5 strategy=k=8\n");
  ASSERT_EQ(entries.size(), 1U);
  EXPECT_EQ(entries[0].config.schedule, sim::Schedule::KOperations);
  EXPECT_EQ(entries[0].config.k, 8U);
  EXPECT_TRUE(entries[0].config.reuseRepeatedBlocks);
  EXPECT_DOUBLE_EQ(entries[0].config.timeLimitSeconds, 5.0);
}

TEST(Manifest, PipelineTokensParseAndSurviveStrategy) {
  const auto entries = serve::parseManifest(
      "a.qasm pipeline pipeline-depth=4 strategy=k=8\n"
      "b.qasm strategy=maxsize=256 pipeline=on\n"
      "c.qasm pipeline=off\n");
  ASSERT_EQ(entries.size(), 3U);
  // `strategy=` after `pipeline` must preserve it (same contract as
  // dd-repeating and the budget knobs).
  EXPECT_TRUE(entries[0].config.pipeline);
  EXPECT_EQ(entries[0].config.pipelineDepth, 4U);
  EXPECT_TRUE(entries[1].config.pipeline);
  EXPECT_FALSE(entries[2].config.pipeline);

  EXPECT_THROW((void)serve::parseManifest("a.qasm pipeline=maybe\n"),
               serve::ManifestError);
  // pipeline-depth out of range is caught by per-line config validation.
  EXPECT_THROW((void)serve::parseManifest("a.qasm pipeline-depth=0\n"),
               serve::ManifestError);
}

TEST(Manifest, ThreadsTokenParsesAndSurvivesStrategy) {
  const auto entries = serve::parseManifest(
      "a.qasm threads=4 strategy=k=8\n"
      "b.qasm strategy=maxsize=256 threads=2\n");
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].config.threads, 4U);
  EXPECT_EQ(entries[0].config.k, 8U);
  EXPECT_EQ(entries[1].config.threads, 2U);

  // Out-of-range values are caught by per-line config validation.
  EXPECT_THROW((void)serve::parseManifest("a.qasm threads=0\n"),
               serve::ManifestError);
  EXPECT_THROW((void)serve::parseManifest("a.qasm threads=999\n"),
               serve::ManifestError);
}

TEST(Manifest, ErrorsCarryLineNumbers) {
  const std::string text =
      "good.qasm\n"
      "# comment\n"
      "bad.qasm strategy=bogus\n";
  try {
    (void)serve::parseManifest(text);
    FAIL() << "expected ManifestError";
  } catch (const serve::ManifestError& e) {
    EXPECT_EQ(e.line(), 3U);
    EXPECT_NE(std::string(e.what()).find("manifest:3"), std::string::npos);
  }

  EXPECT_THROW((void)serve::parseManifest("a.qasm repeat=0\n"),
               serve::ManifestError);
  EXPECT_THROW((void)serve::parseManifest("a.qasm priority=urgent\n"),
               serve::ManifestError);
  EXPECT_THROW((void)serve::parseManifest("a.qasm seed=abc\n"),
               serve::ManifestError);
  EXPECT_THROW((void)serve::parseManifest("a.qasm frobnicate=1\n"),
               serve::ManifestError);
  // Config validation also runs per line (k=0 is malformed).
  EXPECT_THROW((void)serve::parseManifest("a.qasm strategy=k=0\n"),
               serve::ManifestError);
}

TEST(Manifest, StrategySpecGrammar) {
  EXPECT_TRUE(serve::parseStrategySpec("seq").has_value());
  EXPECT_TRUE(serve::parseStrategySpec("sequential").has_value());
  const auto k = serve::parseStrategySpec("k=8");
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(k->k, 8U);
  const auto ms = serve::parseStrategySpec("maxsize=2048");
  ASSERT_TRUE(ms.has_value());
  EXPECT_EQ(ms->maxSize, 2048U);
  const auto ad = serve::parseStrategySpec("adaptive=0.5");
  ASSERT_TRUE(ad.has_value());
  EXPECT_DOUBLE_EQ(ad->adaptiveRatio, 0.5);
  EXPECT_FALSE(serve::parseStrategySpec("bogus").has_value());
}

// --------------------------------------------------- durability & retries

/// Fresh per-test spill directory under the gtest temp dir.
std::string freshCacheDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ddsim_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SimulationService, SubmitRejectsInvalidDeadlines) {
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.startPaused = true;
  serve::SimulationService service(sc);

  for (const double bad :
       {-1.0, -0.001, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    serve::JobSpec job = spec(makeBell(), 1);
    job.deadlineSeconds = bad;
    EXPECT_THROW((void)service.submit(std::move(job)), std::invalid_argument)
        << "deadline " << bad << " was admitted";
  }
  // Nothing was admitted, so nothing to drain.
  EXPECT_EQ(service.stats().submitted, 0U);
  service.start();
}

TEST(SimulationService, TrySubmitDuringShutdownReturnsNullopt) {
  serve::SimulationService service({.workers = 1});
  service.shutdown();
  // trySubmit never throws — shutdown surfaces as nullopt, same as a full
  // queue, so callers with a single overflow path keep working.
  EXPECT_FALSE(service.trySubmit(spec(makeBell(), 1)).has_value());
  EXPECT_EQ(service.stats().rejected, 1U);
}

TEST(RetryPolicy, BackoffGrowsGeometricallyAndFiltersStatuses) {
  serve::RetryPolicy policy;
  policy.maxAttempts = 3;
  policy.baseBackoffSeconds = 0.5;
  policy.backoffMultiplier = 3.0;
  EXPECT_DOUBLE_EQ(policy.backoffFor(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoffFor(2), 1.5);
  EXPECT_DOUBLE_EQ(policy.backoffFor(3), 4.5);

  EXPECT_TRUE(policy.shouldRetry(serve::JobStatus::ResourceExhausted));
  EXPECT_FALSE(policy.shouldRetry(serve::JobStatus::Failed));
  policy.retryFailed = true;
  EXPECT_TRUE(policy.shouldRetry(serve::JobStatus::Failed));
  // Deadline-style and user-initiated outcomes are never retried: the
  // deadline would just expire again, and a cancel is a decision.
  EXPECT_FALSE(policy.shouldRetry(serve::JobStatus::TimedOut));
  EXPECT_FALSE(policy.shouldRetry(serve::JobStatus::Expired));
  EXPECT_FALSE(policy.shouldRetry(serve::JobStatus::Cancelled));
  EXPECT_FALSE(policy.shouldRetry(serve::JobStatus::Completed));
}

TEST(SimulationService, CacheDirAnswersAcrossRestart) {
  const std::string dir = freshCacheDir("restart");
  const auto bell = makeBell();
  const auto grover = makeGrover(6);
  std::vector<bool> bellBits;
  std::vector<bool> groverBits;

  {
    serve::ServiceConfig sc;
    sc.workers = 2;
    sc.cacheDir = dir;
    serve::SimulationService service(sc);
    bellBits = service.submit(spec(bell, 11)).wait().classicalBits;
    groverBits = service.submit(spec(grover, 12)).wait().classicalBits;
    service.shutdown();
    const serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.spill.appended, 2U);
    EXPECT_EQ(stats.spill.snapshots, 1U);
  }  // first incarnation destroyed — only the spill directory survives

  serve::ServiceConfig sc;
  sc.workers = 2;
  sc.cacheDir = dir;
  serve::SimulationService restarted(sc);

  // Keep the handles alive past wait(): the result reference lives inside
  // the handle's job record.
  const auto h1 = restarted.submit(spec(bell, 11));
  const auto h2 = restarted.submit(spec(grover, 12));
  const serve::JobResult& r1 = h1.wait();
  const serve::JobResult& r2 = h2.wait();
  EXPECT_EQ(r1.status, serve::JobStatus::Cached);
  EXPECT_EQ(r2.status, serve::JobStatus::Cached);
  EXPECT_EQ(r1.classicalBits, bellBits);
  EXPECT_EQ(r2.classicalBits, groverBits);

  const serve::ServiceStats stats = restarted.stats();
  EXPECT_EQ(stats.simulationsRun, 0U);
  EXPECT_EQ(stats.spill.loaded, 2U);
  EXPECT_EQ(stats.spill.corruptSkipped, 0U);
  // A different seed is still a miss — the spill preserved exact keys.
  const auto h3 = restarted.submit(spec(bell, 99));
  EXPECT_EQ(h3.wait().status, serve::JobStatus::Completed);
}

TEST(SimulationService, UnsnapshottedJournalAloneSurvivesRestart) {
  // Crash flavor: the process dies without ever calling shutdown(), so no
  // snapshot is written — recovery must come from the append-only journal.
  const std::string dir = freshCacheDir("journal_only");
  const auto bell = makeBell();
  {
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.cacheDir = dir;
    serve::SimulationService service(sc);
    service.submit(spec(bell, 21)).wait();
    // Simulate the crash: tear the snapshot step out by removing the
    // snapshot after shutdown, keeping whatever the journal held before.
    // (The journal is flushed per append, so it survives a real SIGKILL;
    // here shutdown() truncates it into the snapshot, so instead copy the
    // journal aside before shutdown.)
    std::filesystem::copy_file(dir + "/cache.log", dir + "/cache.log.keep");
    service.shutdown();
  }
  // Restore the pre-snapshot world: journal present, no snapshot.
  std::filesystem::remove(dir + "/cache.snapshot");
  std::filesystem::rename(dir + "/cache.log.keep", dir + "/cache.log");

  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.cacheDir = dir;
  serve::SimulationService restarted(sc);
  const auto handle = restarted.submit(spec(bell, 21));
  EXPECT_EQ(handle.wait().status, serve::JobStatus::Cached);
  EXPECT_EQ(restarted.stats().spill.loaded, 1U);
  EXPECT_EQ(restarted.stats().simulationsRun, 0U);
}

TEST(SimulationService, SpillJournalCompactsInlineWhenOverBudget) {
  // Regression: the append-only journal used to grow without bound until
  // shutdown. With spillCompactBytes set, finishing a job whose append
  // pushes the journal past the budget triggers an inline snapshot that
  // truncates it.
  const std::string dir = freshCacheDir("compact");
  const auto bell = makeBell();
  constexpr std::uint64_t kDistinctJobs = 5;
  {
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.cacheDir = dir;
    sc.spillCompactBytes = 1;  // every append overflows the budget
    serve::SimulationService service(sc);
    for (std::uint64_t seed = 1; seed <= kDistinctJobs; ++seed) {
      service.submit(spec(bell, seed)).wait();
    }
    const serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.spill.appended, kDistinctJobs);
    // One inline compaction per overflowing append — no shutdown needed.
    EXPECT_GE(stats.spill.snapshots, kDistinctJobs);
    // The journal shrank: the last compaction left it empty.
    EXPECT_EQ(std::filesystem::file_size(dir + "/cache.log"), 0U);
    service.shutdown();
  }

  // Replay is idempotent: everything lives in the snapshot, nothing was
  // lost across the repeated truncations.
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.cacheDir = dir;
  serve::SimulationService restarted(sc);
  EXPECT_EQ(restarted.stats().spill.loaded, kDistinctJobs);
  for (std::uint64_t seed = 1; seed <= kDistinctJobs; ++seed) {
    const auto handle = restarted.submit(spec(bell, seed));
    EXPECT_EQ(handle.wait().status, serve::JobStatus::Cached);
  }
  EXPECT_EQ(restarted.stats().simulationsRun, 0U);
}

TEST(SimulationService, SpillJournalGrowsUnboundedOnlyWhenCompactionOff) {
  // The default (spillCompactBytes == 0) keeps the seed behaviour:
  // journal grows per append, one snapshot only at shutdown.
  const std::string dir = freshCacheDir("no_compact");
  const auto bell = makeBell();
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.cacheDir = dir;
  serve::SimulationService service(sc);
  std::uintmax_t lastSize = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    service.submit(spec(bell, seed)).wait();
    const std::uintmax_t size = std::filesystem::file_size(dir + "/cache.log");
    EXPECT_GT(size, lastSize);  // strictly growing, never truncated
    lastSize = size;
  }
  EXPECT_EQ(service.stats().spill.snapshots, 0U);
  service.shutdown();
  EXPECT_EQ(service.stats().spill.snapshots, 1U);
}

TEST(SimulationService, CorruptedSpillIsSkippedNeverFatal) {
  const std::string dir = freshCacheDir("corrupt");
  const auto bell = makeBell();
  {
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.cacheDir = dir;
    serve::SimulationService service(sc);
    service.submit(spec(bell, 1)).wait();
    service.submit(spec(bell, 2)).wait();
    service.submit(spec(bell, 3)).wait();
    service.shutdown();
  }

  // Flip bytes in the middle of the snapshot (damages at least one record)
  // and append a torn fragment to the journal (a crash mid-append).
  {
    std::fstream f(dir + "/cache.snapshot",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    ASSERT_GT(size, 40U);
    f.seekp(static_cast<std::streamoff>(size / 2));
    const char garbage[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
    f.write(garbage, sizeof garbage);
  }
  {
    std::ofstream log(dir + "/cache.log",
                      std::ios::binary | std::ios::app);
    const char torn[7] = {'L', 'P', 'S', 'D', '\x05', '\x00', '\x00'};
    log.write(torn, sizeof torn);
  }

  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.cacheDir = dir;
  serve::SimulationService restarted(sc);  // must not throw
  const serve::ServiceStats stats = restarted.stats();
  EXPECT_GE(stats.spill.corruptSkipped, 1U);
  EXPECT_LT(stats.spill.loaded, 3U);
  // The service still works: a fresh job completes and re-persists.
  const auto handle = restarted.submit(spec(bell, 4));
  EXPECT_EQ(handle.wait().status, serve::JobStatus::Completed);
}

TEST(SimulationService, TransientFailureRetriesAndResumesFromCheckpoint) {
  const auto grover = makeGrover(8);
  const auto config = sim::StrategyConfig::kOperations(4);
  const sim::DetachedResult direct = sim::simulate(*grover, config, 7);

  // Measure the uninterrupted run's node-allocation demand, then arm the
  // injector to cut attempt 1 off halfway — deterministically mid-run.
  dd::FaultInjector probe;
  {
    sim::CircuitSimulator probeSim(*grover, config, 7);
    probeSim.package().setFaultInjector(&probe);
    (void)probeSim.run();
  }
  dd::FaultInjector::Config faultCfg;
  faultCfg.failAllocationAfter = probe.nodeRequests() / 2;
  dd::FaultInjector transientFault(faultCfg);

  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.checkpointIntervalOps = 3;
  sc.retry.maxAttempts = 2;
  sc.retry.baseBackoffSeconds = 0.001;
  sc.faultInjectorProvider = [&](std::uint64_t, std::size_t attempt) {
    return attempt == 1 ? &transientFault : nullptr;
  };
  serve::SimulationService service(sc);

  const auto handle = service.submit(spec(grover, 7, config));
  const serve::JobResult& r = handle.wait();
  EXPECT_EQ(r.status, serve::JobStatus::Completed) << r.error;
  EXPECT_EQ(r.attempts, 2U);
  EXPECT_TRUE(r.resumed);
  EXPECT_GT(r.backoffSeconds, 0.0);
  EXPECT_EQ(r.classicalBits, direct.classicalBits)
      << "resumed retry diverged from the uninterrupted simulation";

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retriesScheduled, 1U);
  EXPECT_EQ(stats.resumedAttempts, 1U);
  EXPECT_EQ(stats.restartedAttempts, 0U);
  EXPECT_GT(stats.backoffSecondsTotal, 0.0);
  EXPECT_GT(stats.checkpointsTaken, 0U);
  EXPECT_GE(stats.resourceExhausted, 0U);  // attempt 1's failure is internal
  EXPECT_EQ(stats.completed, 1U);
}

TEST(SimulationService, RetryWithoutCheckpointRestartsFromScratch) {
  // checkpointIntervalOps stays 0: the retry machinery must still work,
  // restarting (not resuming) the job — and counting it as restarted.
  const auto grover = makeGrover(7);
  const auto config = sim::StrategyConfig::kOperations(4);
  const sim::DetachedResult direct = sim::simulate(*grover, config, 5);

  dd::FaultInjector probe;
  {
    sim::CircuitSimulator probeSim(*grover, config, 5);
    probeSim.package().setFaultInjector(&probe);
    (void)probeSim.run();
  }
  dd::FaultInjector::Config faultCfg;
  faultCfg.failAllocationAfter = probe.nodeRequests() / 2;
  dd::FaultInjector transientFault(faultCfg);

  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.retry.maxAttempts = 2;
  sc.retry.baseBackoffSeconds = 0.001;
  sc.faultInjectorProvider = [&](std::uint64_t, std::size_t attempt) {
    return attempt == 1 ? &transientFault : nullptr;
  };
  serve::SimulationService service(sc);

  const auto handle = service.submit(spec(grover, 5, config));
  const serve::JobResult& r = handle.wait();
  EXPECT_EQ(r.status, serve::JobStatus::Completed) << r.error;
  EXPECT_EQ(r.attempts, 2U);
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(r.classicalBits, direct.classicalBits);
  EXPECT_EQ(service.stats().restartedAttempts, 1U);
  EXPECT_EQ(service.stats().resumedAttempts, 0U);
}

TEST(SimulationService, ExhaustedRetriesSurfaceTheLastFailure) {
  const auto grover = makeGrover(7);
  const auto config = sim::StrategyConfig::kOperations(4);

  dd::FaultInjector probe;
  {
    sim::CircuitSimulator probeSim(*grover, config, 3);
    probeSim.package().setFaultInjector(&probe);
    (void)probeSim.run();
  }
  dd::FaultInjector::Config faultCfg;
  faultCfg.failAllocationAfter = probe.nodeRequests() / 2;
  dd::FaultInjector permanentFault(faultCfg);

  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.retry.maxAttempts = 2;
  sc.retry.baseBackoffSeconds = 0.001;
  // Every attempt hits the same fault: the job must fail for good after
  // maxAttempts, not loop forever.
  sc.faultInjectorProvider = [&](std::uint64_t, std::size_t) {
    return &permanentFault;
  };
  serve::SimulationService service(sc);

  const auto handle = service.submit(spec(grover, 3, config));
  const serve::JobResult& r = handle.wait();
  EXPECT_EQ(r.status, serve::JobStatus::ResourceExhausted) << r.error;
  EXPECT_EQ(r.attempts, 2U);
  EXPECT_EQ(service.stats().retriesScheduled, 1U);
  EXPECT_EQ(service.stats().resourceExhausted, 1U);
}

TEST(FaultInjector, SeededRandomFaultsAreDeterministic) {
  dd::FaultInjector::Config cfg;
  cfg.failAllocationProbability = 0.125;
  cfg.randomSeed = 424242;

  auto runPattern = [&](std::size_t requests) {
    dd::FaultInjector injector(cfg);
    std::vector<bool> pattern;
    pattern.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      pattern.push_back(injector.onNodeRequest());
    }
    return pattern;
  };

  const std::vector<bool> a = runPattern(4096);
  const std::vector<bool> b = runPattern(4096);
  EXPECT_EQ(a, b) << "same seed must reproduce the identical fault pattern";

  const std::size_t failures =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  // ~12.5% of 4096 = 512; allow wide slack — the assertion is "roughly the
  // configured rate", not a distribution test.
  EXPECT_GT(failures, 256U);
  EXPECT_LT(failures, 1024U);

  cfg.randomSeed = 424243;
  dd::FaultInjector other(cfg);
  std::vector<bool> c;
  for (std::size_t i = 0; i < 4096; ++i) {
    c.push_back(other.onNodeRequest());
  }
  EXPECT_NE(a, c) << "different seeds should differ somewhere";
}

TEST(ServiceStats, JsonExportCarriesRetryAndSpillGroups) {
  const std::string dir = freshCacheDir("json");
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.cacheDir = dir;
  serve::SimulationService service(sc);
  service.submit(spec(makeBell(), 1)).wait();

  const std::string json = service.stats().toJson();
  for (const char* needle :
       {"\"retry\": {\"scheduled\": 0", "\"resumed_attempts\": 0",
        "\"restarted_attempts\": 0", "\"backoff_seconds_total\":",
        "\"checkpoints_taken\": 0", "\"spill\": {\"appended\": 1",
        "\"loaded\": 0", "\"corrupt_skipped\": 0", "\"snapshots\": 0"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
}

// ------------------------------------------------------------- shutdown

TEST(SimulationService, NonDrainingShutdownCancelsQueuedJobs) {
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.startPaused = true;
  serve::SimulationService service(sc);

  const auto h1 = service.submit(spec(makeBell(), 1));
  const auto h2 = service.submit(spec(makeBell(), 2));
  service.shutdown(/*drain=*/false);

  EXPECT_EQ(h1.wait().status, serve::JobStatus::Cancelled);
  EXPECT_EQ(h2.wait().status, serve::JobStatus::Cancelled);
  EXPECT_EQ(service.stats().simulationsRun, 0U);
}

}  // namespace
}  // namespace ddsim
