#include <gtest/gtest.h>

#include <random>

#include "dd/complex_table.hpp"

namespace ddsim::dd {
namespace {

TEST(ComplexValue, Arithmetic) {
  const ComplexValue a{1.0, 2.0};
  const ComplexValue b{-0.5, 1.0};
  const ComplexValue sum = a + b;
  EXPECT_DOUBLE_EQ(sum.r, 0.5);
  EXPECT_DOUBLE_EQ(sum.i, 3.0);
  const ComplexValue prod = a * b;
  EXPECT_DOUBLE_EQ(prod.r, 1.0 * -0.5 - 2.0 * 1.0);
  EXPECT_DOUBLE_EQ(prod.i, 1.0 * 1.0 + 2.0 * -0.5);
  const ComplexValue quot = prod / b;
  EXPECT_NEAR(quot.r, a.r, 1e-12);
  EXPECT_NEAR(quot.i, a.i, 1e-12);
}

TEST(ComplexValue, Predicates) {
  EXPECT_TRUE((ComplexValue{0.0, 0.0}).exactlyZero());
  EXPECT_TRUE((ComplexValue{1.0, 0.0}).exactlyOne());
  EXPECT_TRUE((ComplexValue{1e-14, -1e-14}).approximatelyZero());
  EXPECT_FALSE((ComplexValue{1e-6, 0.0}).approximatelyZero());
  EXPECT_TRUE((ComplexValue{1.0 + 1e-14, 1e-14}).approximatelyOne());
  EXPECT_TRUE(
      (ComplexValue{0.5, 0.5}).approximatelyEquals(ComplexValue{0.5 + 1e-14, 0.5}));
}

TEST(ComplexValue, MagnitudeAndConj) {
  const ComplexValue z{3.0, 4.0};
  EXPECT_DOUBLE_EQ(z.mag2(), 25.0);
  EXPECT_DOUBLE_EQ(z.mag(), 5.0);
  EXPECT_DOUBLE_EQ(z.conj().i, -4.0);
}

TEST(ComplexValue, ToString) {
  EXPECT_EQ((ComplexValue{0.5, 0.0}).toString(), "0.5");
  EXPECT_EQ((ComplexValue{0.0, -1.0}).toString(), "-1i");
  EXPECT_EQ((ComplexValue{0.5, 0.5}).toString(), "0.5+0.5i");
}

TEST(ComplexTable, CanonicalZeroAndOne) {
  ComplexTable tab;
  EXPECT_EQ(tab.lookup(0.0, 0.0), tab.zero());
  EXPECT_EQ(tab.lookup(1.0, 0.0), tab.one());
  // within tolerance of the constants
  EXPECT_EQ(tab.lookup(1e-14, -1e-14), tab.zero());
  EXPECT_EQ(tab.lookup(1.0 + 1e-14, 1e-14), tab.one());
  EXPECT_TRUE(tab.zero()->exactlyZero());
  EXPECT_TRUE(tab.one()->exactlyOne());
}

TEST(ComplexTable, DeduplicatesWithinTolerance) {
  ComplexTable tab;
  const CWeight a = tab.lookup(0.25, -0.75);
  const CWeight b = tab.lookup(0.25 + 1e-14, -0.75 - 1e-14);
  EXPECT_EQ(a, b);
  const CWeight c = tab.lookup(0.25 + 1e-3, -0.75);
  EXPECT_NE(a, c);
}

TEST(ComplexTable, NearBucketBoundary) {
  // Values straddling a grid-cell boundary must still canonicalize together;
  // the 3x3 neighbourhood search handles this.
  ComplexTable tab;
  const double x = 3.0 * tab.tolerance();  // lands exactly on a cell edge
  const CWeight a = tab.lookup(x - 1e-14, 0.0);
  const CWeight b = tab.lookup(x + 1e-14, 0.0);
  EXPECT_EQ(a, b);
}

TEST(ComplexTable, SizeGrowsOnlyForDistinctValues) {
  ComplexTable tab;
  const std::size_t initial = tab.size();
  for (int i = 0; i < 100; ++i) {
    tab.lookup(0.123456, 0.654321);
  }
  EXPECT_EQ(tab.size(), initial + 1);
  EXPECT_GE(tab.hits(), 99U);
}

TEST(ComplexTable, GarbageCollectRecyclesUnreferencedEntries) {
  ComplexTable tab;
  const CWeight keep = tab.lookup(0.111, 0.222);
  const CWeight pin = tab.lookup(0.333, 0.444);
  tab.incRef(pin);
  for (int i = 0; i < 100; ++i) {
    tab.lookup(0.5 + i * 1e-3, -0.25);
  }
  const std::size_t before = tab.size();
  const std::size_t collected = tab.garbageCollect({keep});
  EXPECT_EQ(collected, 100U);
  EXPECT_EQ(tab.size(), before - 100);
  // Survivors keep their identity.
  EXPECT_EQ(tab.lookup(0.111, 0.222), keep);
  EXPECT_EQ(tab.lookup(0.333, 0.444), pin);
  // Constants are never collected.
  tab.garbageCollect({});
  EXPECT_TRUE(tab.zero()->exactlyZero());
  EXPECT_TRUE(tab.one()->exactlyOne());
}

TEST(ComplexTable, RootRefCountingIsBalanced) {
  ComplexTable tab;
  const CWeight w = tab.lookup(0.9, -0.9);
  tab.incRef(w);
  tab.incRef(w);
  tab.decRef(w);
  // Still pinned by one reference.
  EXPECT_EQ(tab.garbageCollect({}), 0U);
  tab.decRef(w);
  EXPECT_EQ(tab.garbageCollect({}), 1U);
  // Constants tolerate arbitrary inc/dec.
  tab.incRef(tab.zero());
  tab.decRef(tab.zero());
  tab.decRef(tab.one());
}

TEST(ComplexTable, FreedEntriesAreReused) {
  ComplexTable tab;
  const CWeight a = tab.lookup(0.123, 0.456);
  tab.garbageCollect({});
  const CWeight b = tab.lookup(0.789, -0.123);
  EXPECT_EQ(a, b);  // the recycled slot is handed out again
  EXPECT_NEAR(b->r, 0.789, 1e-12);
}

TEST(ComplexTable, ManyRandomLookupsAreStable) {
  ComplexTable tab;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const double r = dist(rng);
    const double im = dist(rng);
    const CWeight first = tab.lookup(r, im);
    const CWeight second = tab.lookup(r, im);
    ASSERT_EQ(first, second);
    ASSERT_TRUE(first->approximatelyEquals({r, im}, tab.tolerance()));
  }
}

}  // namespace
}  // namespace ddsim::dd
