#include <gtest/gtest.h>

#include "algo/grover.hpp"
#include "algo/qft.hpp"
#include "ir/qasm.hpp"
#include "sim/equivalence.hpp"
#include "test_util.hpp"

namespace ddsim::sim {
namespace {

TEST(Equivalence, IdenticalCircuits) {
  const auto a = test::randomCircuit(4, 30, 17);
  EXPECT_EQ(checkEquivalence(a, a.clone()), Equivalence::Equivalent);
}

TEST(Equivalence, DifferentWidthsNeverEquivalent) {
  ir::Circuit a(2);
  a.h(0);
  ir::Circuit b(3);
  b.h(0);
  EXPECT_EQ(checkEquivalence(a, b), Equivalence::NotEquivalent);
}

TEST(Equivalence, CircuitTimesInverseIsIdentity) {
  const auto base = test::randomCircuit(4, 40, 23);
  ir::Circuit composed(4);
  composed.appendCircuit(base);
  composed.appendCircuit(base.inverted());
  ir::Circuit identity(4);  // empty circuit = identity
  EXPECT_EQ(checkEquivalence(composed, identity), Equivalence::Equivalent);
}

TEST(Equivalence, HXHEqualsZ) {
  ir::Circuit hxh(1);
  hxh.h(0);
  hxh.x(0);
  hxh.h(0);
  ir::Circuit z(1);
  z.z(0);
  EXPECT_EQ(checkEquivalence(hxh, z), Equivalence::Equivalent);
}

TEST(Equivalence, CZSymmetricUnderConjugation) {
  // CX(0->1) == H(1) CZ(0,1) H(1)
  ir::Circuit cx(2);
  cx.cx(0, 1);
  ir::Circuit conj(2);
  conj.h(1);
  conj.cz(0, 1);
  conj.h(1);
  EXPECT_EQ(checkEquivalence(cx, conj), Equivalence::Equivalent);
}

TEST(Equivalence, GlobalPhaseDetected) {
  // X = e^{i pi/2} Rx(pi): equivalent only up to global phase.
  ir::Circuit x(1);
  x.x(0);
  ir::Circuit rx(1);
  rx.rx(std::numbers::pi, 0);
  EXPECT_EQ(checkEquivalence(x, rx), Equivalence::EquivalentUpToPhase);
  EXPECT_TRUE(areEquivalent(x, rx));
}

TEST(Equivalence, DistinguishesNearbyAngles) {
  ir::Circuit a(2);
  a.cphase(0.5, 0, 1);
  ir::Circuit b(2);
  b.cphase(0.51, 0, 1);
  EXPECT_EQ(checkEquivalence(a, b), Equivalence::NotEquivalent);
}

TEST(Equivalence, SwapDecomposition) {
  ir::Circuit swapGate(2);
  swapGate.swap(0, 1);
  ir::Circuit threeCx(2);
  threeCx.cx(0, 1);
  threeCx.cx(1, 0);
  threeCx.cx(0, 1);
  EXPECT_EQ(checkEquivalence(swapGate, threeCx), Equivalence::Equivalent);
}

TEST(Equivalence, QasmRoundTripPreservesSemantics) {
  const auto circuit = test::randomCircuit(4, 25, 29);
  const auto reparsed = ir::parseQasm(ir::toQasm(circuit));
  EXPECT_TRUE(areEquivalent(circuit, reparsed));
}

TEST(Equivalence, OracleAgainstGateRealization) {
  ir::Circuit withOracle(2);
  withOracle.oracle("inc", 2, [](std::uint64_t x) { return (x + 1) % 4; });
  ir::Circuit withGates(2);
  withGates.cx(0, 1);
  withGates.x(0);
  EXPECT_EQ(checkEquivalence(withOracle, withGates), Equivalence::Equivalent);
}

TEST(Equivalence, CompoundBlocksExpandCorrectly) {
  ir::Circuit repeated(2);
  ir::Circuit block(2);
  block.t(0);
  block.cx(0, 1);
  repeated.appendRepeated(std::move(block), 3, "b");

  ir::Circuit unrolled(2);
  for (int i = 0; i < 3; ++i) {
    unrolled.t(0);
    unrolled.cx(0, 1);
  }
  EXPECT_EQ(checkEquivalence(repeated, unrolled), Equivalence::Equivalent);
}

TEST(Equivalence, GroverIterationNotIdentity) {
  const auto iteration = algo::makeGroverIteration(4, 11);
  ir::Circuit identity(4);
  EXPECT_EQ(checkEquivalence(iteration, identity), Equivalence::NotEquivalent);
}

TEST(Equivalence, QFTTimesInverseQFT) {
  ir::Circuit both(5);
  std::vector<ir::Qubit> qs{0, 1, 2, 3, 4};
  algo::appendQFT(both, qs);
  algo::appendInverseQFT(both, qs);
  ir::Circuit identity(5);
  EXPECT_EQ(checkEquivalence(both, identity), Equivalence::Equivalent);
}

TEST(Equivalence, RejectsMeasurement) {
  ir::Circuit a(1, 1);
  a.measure(0, 0);
  ir::Circuit b(1, 1);
  EXPECT_THROW(checkEquivalence(a, b), std::invalid_argument);
}

TEST(BuildCircuitMatrix, MatchesDenseProduct) {
  const auto circuit = test::randomCircuit(3, 15, 31);
  dd::Package pkg(3);
  const dd::MEdge u = buildCircuitMatrix(pkg, circuit);
  const auto got = pkg.getMatrix(u);

  baseline::DenseMatrix expected = baseline::DenseMatrix::identity(8);
  for (const auto& op : circuit.ops()) {
    const auto& s = static_cast<const ir::StandardOperation&>(*op);
    if (s.type() == ir::GateType::Swap) {
      const auto x = ir::gateMatrix(ir::GateType::X);
      dd::Controls ca = s.controls();
      ca.push_back(dd::Control{s.targets()[0]});
      dd::Controls cb = s.controls();
      cb.push_back(dd::Control{s.targets()[1]});
      expected = baseline::expandGate(x, 3, s.targets()[1], ca) *
                 (baseline::expandGate(x, 3, s.targets()[0], cb) *
                  (baseline::expandGate(x, 3, s.targets()[1], ca) * expected));
    } else {
      expected =
          baseline::expandGate(s.matrix(), 3, s.targets()[0], s.controls()) *
          expected;
    }
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].r, expected.at(i / 8, i % 8).real(), 1e-8);
    EXPECT_NEAR(got[i].i, expected.at(i / 8, i % 8).imag(), 1e-8);
  }
}

}  // namespace
}  // namespace ddsim::sim
