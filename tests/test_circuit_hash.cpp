/// Tests for the structural content hash that keys the serve-layer result
/// cache: stability across re-parsed identical QASM, sensitivity to every
/// outcome-relevant attribute, and canonicalization invariants (compound
/// folding, control ordering, name independence).

#include <gtest/gtest.h>

#include <cmath>

#include "algo/grover.hpp"
#include "ir/circuit.hpp"
#include "ir/hash.hpp"
#include "ir/qasm.hpp"
#include "ir/transforms.hpp"
#include "sim/stats.hpp"

namespace ddsim {
namespace {

TEST(CircuitHash, DeterministicAcrossRebuilds) {
  const auto make = [] {
    ir::Circuit c(3, 3);
    c.h(0);
    c.cx(0, 1);
    c.cphase(0.25, 1, 2);
    c.measureAll();
    return c;
  };
  EXPECT_EQ(ir::contentHash(make()), ir::contentHash(make()));
}

TEST(CircuitHash, StableAcrossReparsedIdenticalQasm) {
  ir::Circuit c(4, 4);
  c.h(0);
  c.cx(0, 1);
  c.ccx(0, 1, 2);
  c.rz(std::acos(-1.0) / 3.0, 3);
  c.measureAll();
  const std::string qasm = ir::toQasm(c);
  const ir::Circuit once = ir::parseQasm(qasm);
  const ir::Circuit twice = ir::parseQasm(qasm);
  EXPECT_EQ(ir::contentHash(once), ir::contentHash(twice));
}

TEST(CircuitHash, IgnoresCircuitName) {
  ir::Circuit a(2);
  a.h(0);
  ir::Circuit b(2);
  b.h(0);
  b.setName("something else entirely");
  EXPECT_EQ(ir::contentHash(a), ir::contentHash(b));
}

TEST(CircuitHash, SensitiveToGateParameterChange) {
  ir::Circuit a(1);
  a.rx(0.5, 0);
  ir::Circuit b(1);
  b.rx(0.5000001, 0);
  EXPECT_NE(ir::contentHash(a), ir::contentHash(b));
}

TEST(CircuitHash, SensitiveToTargetAndControl) {
  ir::Circuit a(3);
  a.cx(0, 1);
  ir::Circuit b(3);
  b.cx(0, 2);
  ir::Circuit c(3);
  c.cx(1, 0);
  EXPECT_NE(ir::contentHash(a), ir::contentHash(b));
  EXPECT_NE(ir::contentHash(a), ir::contentHash(c));
}

TEST(CircuitHash, SensitiveToControlPolarity) {
  ir::Circuit pos(2);
  pos.gate(ir::GateType::X, 1, {ir::Control{0, true}});
  ir::Circuit neg(2);
  neg.gate(ir::GateType::X, 1, {ir::Control{0, false}});
  EXPECT_NE(ir::contentHash(pos), ir::contentHash(neg));
}

TEST(CircuitHash, ControlOrderIsCanonicalized) {
  ir::Circuit a(3);
  a.gate(ir::GateType::X, 2, {ir::Control{0}, ir::Control{1}});
  ir::Circuit b(3);
  b.gate(ir::GateType::X, 2, {ir::Control{1}, ir::Control{0}});
  EXPECT_EQ(ir::contentHash(a), ir::contentHash(b));
}

TEST(CircuitHash, SensitiveToWidthAndClbitWiring) {
  ir::Circuit a(2, 2);
  a.h(0);
  a.measure(0, 0);
  ir::Circuit wider(3, 2);
  wider.h(0);
  wider.measure(0, 0);
  ir::Circuit otherBit(2, 2);
  otherBit.h(0);
  otherBit.measure(0, 1);
  EXPECT_NE(ir::contentHash(a), ir::contentHash(wider));
  EXPECT_NE(ir::contentHash(a), ir::contentHash(otherBit));
}

TEST(CircuitHash, CompoundFoldingIsCanonicalized) {
  // A folded repetition hashes like its flattened expansion — the fold
  // changes scheduling opportunities, not the computation.
  const ir::Circuit grover = algo::makeGroverCircuit(6, 11);
  const ir::Circuit flat = grover.flattened();
  EXPECT_EQ(ir::contentHash(grover), ir::contentHash(flat));

  const ir::Circuit refolded = ir::detectRepetitions(flat);
  EXPECT_EQ(ir::contentHash(grover), ir::contentHash(refolded));
}

TEST(CircuitHash, BarriersAreSchedulingRelevant) {
  ir::Circuit a(2);
  a.h(0);
  a.h(1);
  ir::Circuit b(2);
  b.h(0);
  b.barrier();
  b.h(1);
  EXPECT_NE(ir::contentHash(a), ir::contentHash(b));
}

TEST(CircuitHash, OracleFunctionalityIsKeyed) {
  ir::Circuit a(3);
  a.oracle("f", 3, [](std::uint64_t x) { return x ^ 1U; });
  ir::Circuit b(3);
  b.oracle("f", 3, [](std::uint64_t x) { return x ^ 2U; });
  ir::Circuit c(3);
  c.oracle("f", 3, [](std::uint64_t x) { return x ^ 1U; });
  EXPECT_NE(ir::contentHash(a), ir::contentHash(b));
  EXPECT_EQ(ir::contentHash(a), ir::contentHash(c));
}

// ------------------------------------------------- strategy-config hashing

TEST(StrategyConfigHash, DistinguishesSchedulesAndParameters) {
  using sim::StrategyConfig;
  const auto seq = StrategyConfig::sequential().contentHash();
  const auto k4 = StrategyConfig::kOperations(4).contentHash();
  const auto k8 = StrategyConfig::kOperations(8).contentHash();
  const auto ms = StrategyConfig::maxSizeStrategy(4096).contentHash();
  EXPECT_NE(seq, k4);
  EXPECT_NE(k4, k8);
  EXPECT_NE(k4, ms);

  StrategyConfig budget = StrategyConfig::kOperations(4);
  budget.nodeBudget = 100000;
  EXPECT_NE(k4, budget.contentHash());

  StrategyConfig approx = StrategyConfig::kOperations(4);
  approx.approximateFidelity = 0.99;
  EXPECT_NE(k4, approx.contentHash());
}

TEST(StrategyConfigHash, StableAcrossCopies) {
  sim::StrategyConfig a = sim::StrategyConfig::adaptive(0.3);
  a.reuseRepeatedBlocks = true;
  const sim::StrategyConfig b = a;
  EXPECT_EQ(a.contentHash(), b.contentHash());
}

}  // namespace
}  // namespace ddsim
