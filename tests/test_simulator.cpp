#include <gtest/gtest.h>

#include <cctype>
#include <complex>
#include <limits>
#include <numbers>
#include <random>
#include <sstream>

#include "baseline/statevector.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace ddsim::sim {
namespace {

/// DD simulation result vs. the dense reference, for a measurement-free
/// circuit (exact amplitude comparison).
void expectMatchesDense(const ir::Circuit& circuit, StrategyConfig config) {
  CircuitSimulator sim(circuit, config);
  const auto result = sim.run();
  const auto dense = baseline::runOnStateVector(circuit);
  const auto got = sim.package().getVector(result.finalState);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].r, dense.state.amplitudes()[i].real(), 1e-8)
        << config.toString() << " amp " << i;
    EXPECT_NEAR(got[i].i, dense.state.amplitudes()[i].imag(), 1e-8);
  }
}

TEST(Simulator, BellStateSequential) {
  ir::Circuit circuit(2);
  circuit.h(0);
  circuit.cx(0, 1);
  expectMatchesDense(circuit, StrategyConfig::sequential());
}

TEST(Simulator, PaperExample1) {
  // Fig. 1 of the paper: |01>, H on the most significant qubit, then CX.
  // In our encoding the paper's q0 is the top qubit (index 1).
  ir::Circuit circuit(2);
  circuit.x(0);      // paper's q1 = |1>
  circuit.h(1);      // H on q0
  circuit.cx(1, 0);  // CX with control q0
  CircuitSimulator sim(circuit);
  const auto result = sim.run();
  const auto vec = sim.package().getVector(result.finalState);
  // Expected final state (1/sqrt2)(|01> + |10>) in paper ordering, which is
  // amplitude on index 1 (q0=0,q1=1) and index 2 (q0=1,q1=0).
  const double s = std::numbers::sqrt2 / 2;
  EXPECT_NEAR(vec[1].r, s, 1e-12);
  EXPECT_NEAR(vec[2].r, s, 1e-12);
  EXPECT_NEAR(vec[0].mag2() + vec[3].mag2(), 0.0, 1e-12);
}

class StrategySweepTest : public ::testing::TestWithParam<StrategyConfig> {};

TEST_P(StrategySweepTest, RandomCircuitsMatchDense) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto circuit = test::randomCircuit(5, 60, seed);
    expectMatchesDense(circuit, GetParam());
  }
}

TEST_P(StrategySweepTest, AllStrategiesAgreeWithSequential) {
  const auto circuit = test::randomCircuit(6, 80, 42);
  CircuitSimulator ref(circuit, StrategyConfig::sequential());
  const auto refResult = ref.run();
  const auto refVec = ref.package().getVector(refResult.finalState);

  CircuitSimulator sim(circuit, GetParam());
  const auto result = sim.run();
  const auto vec = sim.package().getVector(result.finalState);
  for (std::size_t i = 0; i < vec.size(); ++i) {
    EXPECT_NEAR(vec[i].r, refVec[i].r, 1e-8);
    EXPECT_NEAR(vec[i].i, refVec[i].i, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, StrategySweepTest,
    ::testing::Values(StrategyConfig::sequential(),
                      StrategyConfig::kOperations(1),
                      StrategyConfig::kOperations(2),
                      StrategyConfig::kOperations(4),
                      StrategyConfig::kOperations(16),
                      StrategyConfig::kOperations(1000),  // everything combined
                      StrategyConfig::maxSizeStrategy(2),
                      StrategyConfig::maxSizeStrategy(64),
                      StrategyConfig::maxSizeStrategy(100000),
                      StrategyConfig::adaptive(0.05),
                      StrategyConfig::adaptive(0.5),
                      StrategyConfig::adaptive(10.0)),
    [](const auto& info) {
      std::string name = info.param.toString();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(Simulator, SequentialAppliesOneMxVPerGate) {
  const auto circuit = test::randomCircuit(4, 25, 7);
  const std::size_t swaps = [&] {
    std::size_t n = 0;
    for (const auto& op : circuit.ops()) {
      const auto& s = static_cast<const ir::StandardOperation&>(*op);
      n += s.type() == ir::GateType::Swap ? 1U : 0U;
    }
    return n;
  }();
  const auto result = simulate(circuit, StrategyConfig::sequential());
  EXPECT_EQ(result.stats.mxvCount, circuit.flatGateCount());
  EXPECT_EQ(result.stats.appliedGates, circuit.flatGateCount());
  EXPECT_EQ(result.stats.mxmCount, 0U);
  (void)swaps;
}

TEST(Simulator, KOperationsReducesMxVCount) {
  const auto circuit = test::randomCircuit(4, 40, 8);
  const auto seq = simulate(circuit, StrategyConfig::sequential());
  const auto k4 = simulate(circuit, StrategyConfig::kOperations(4));
  EXPECT_EQ(k4.stats.mxvCount, (seq.stats.mxvCount + 3) / 4);
  EXPECT_EQ(k4.stats.mxmCount, seq.stats.mxvCount - k4.stats.mxvCount);
}

TEST(Simulator, MaxSizeRespectsNodeBudget) {
  const auto circuit = test::randomCircuit(6, 60, 9);
  const auto result = simulate(circuit, StrategyConfig::maxSizeStrategy(32));
  EXPECT_GT(result.stats.mxmCount, 0U);
  EXPECT_LT(result.stats.mxvCount, circuit.flatGateCount());
}

TEST(Simulator, MeasurementFlushesAndRecords) {
  ir::Circuit circuit(2, 2);
  circuit.h(0);
  circuit.cx(0, 1);
  circuit.measure(0, 0);
  circuit.measure(1, 1);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = simulate(circuit, StrategyConfig::kOperations(10), seed);
    // Bell state: both bits agree.
    EXPECT_EQ(result.classicalBits[0], result.classicalBits[1]);
  }
}

TEST(Simulator, ClassicControlledGateRespectsBit) {
  // Teleportation-style conditional correction: measure, then conditionally
  // flip the second qubit so it always ends up |1>.
  ir::Circuit circuit(2, 1);
  circuit.h(0);
  circuit.measure(0, 0);
  circuit.classicControlled(ir::GateType::X, 1, {}, {}, 0, false);
  circuit.cx(0, 1);  // if bit was 1, CX copies it
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    CircuitSimulator sim(circuit, StrategyConfig::sequential(), seed);
    const auto result = sim.run();
    EXPECT_NEAR(sim.package().probabilityOfOne(result.finalState, 1), 1.0, 1e-9);
  }
}

TEST(Simulator, ResetReturnsQubitToZero) {
  ir::Circuit circuit(1, 1);
  circuit.h(0);
  circuit.reset(0);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    CircuitSimulator sim(circuit, StrategyConfig::sequential(), seed);
    const auto result = sim.run();
    EXPECT_NEAR(sim.package().probabilityOfOne(result.finalState, 0), 0.0, 1e-9);
  }
}

TEST(Simulator, BarrierFlushesAccumulator) {
  ir::Circuit circuit(2);
  circuit.h(0);
  circuit.barrier();
  circuit.h(1);
  const auto result = simulate(circuit, StrategyConfig::kOperations(10));
  // Barrier forces a flush after the first gate; second flush at the end.
  EXPECT_EQ(result.stats.mxvCount, 2U);
}

TEST(Simulator, CompoundInlinedByDefault) {
  ir::Circuit circuit(3);
  ir::Circuit block(3);
  block.h(0);
  block.cx(0, 1);
  circuit.appendRepeated(std::move(block), 5, "rep");
  expectMatchesDense(circuit, StrategyConfig::sequential());
  const auto result = simulate(circuit, StrategyConfig::sequential());
  EXPECT_EQ(result.stats.appliedGates, 10U);
}

TEST(Simulator, DDRepeatingMatchesInlined) {
  ir::Circuit circuit(4);
  circuit.h(0);
  circuit.h(1);
  ir::Circuit block(4);
  block.cx(0, 2);
  block.t(2);
  block.cx(1, 3);
  block.h(3);
  circuit.appendRepeated(std::move(block), 6, "rep");

  StrategyConfig repeating = StrategyConfig::sequential();
  repeating.reuseRepeatedBlocks = true;
  expectMatchesDense(circuit, repeating);

  // One MxM per block gate (once), then one MxV per repetition (+2 H).
  const auto result = simulate(circuit, repeating);
  EXPECT_EQ(result.stats.mxvCount, 2U + 6U);
  EXPECT_EQ(result.stats.mxmCount, 4U);
}

TEST(Simulator, DDRepeatingRejectsMeasurementInBlock) {
  ir::Circuit circuit(2, 1);
  ir::Circuit block(2, 1);
  block.h(0);
  block.measure(0, 0);
  circuit.appendRepeated(std::move(block), 2);
  StrategyConfig repeating = StrategyConfig::sequential();
  repeating.reuseRepeatedBlocks = true;
  CircuitSimulator sim(circuit, repeating);
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(Simulator, OracleMatchesGateDecomposition) {
  // Increment oracle vs. its textbook gate realization on 3 qubits.
  ir::Circuit withOracle(3);
  withOracle.h(0);
  withOracle.h(1);
  withOracle.t(1);
  withOracle.oracle("inc", 3, [](std::uint64_t x) { return (x + 1) % 8; });

  ir::Circuit withGates(3);
  withGates.h(0);
  withGates.h(1);
  withGates.t(1);
  withGates.mcx({ir::Control{0}, ir::Control{1}}, 2);
  withGates.cx(0, 1);
  withGates.x(0);

  CircuitSimulator a(withOracle);
  CircuitSimulator b(withGates);
  const auto ra = a.run();
  const auto rb = b.run();
  const auto va = a.package().getVector(ra.finalState);
  const auto vb = b.package().getVector(rb.finalState);
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i].r, vb[i].r, 1e-10);
    EXPECT_NEAR(va[i].i, vb[i].i, 1e-10);
  }
}

TEST(Simulator, RunTwiceThrows) {
  ir::Circuit circuit(1);
  circuit.h(0);
  CircuitSimulator sim(circuit);
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, InvalidConfigsRejected) {
  ir::Circuit circuit(1);
  circuit.h(0);
  EXPECT_THROW(CircuitSimulator(circuit, StrategyConfig::kOperations(0)),
               std::invalid_argument);
  EXPECT_THROW(CircuitSimulator(circuit, StrategyConfig::maxSizeStrategy(0)),
               std::invalid_argument);
}

TEST(Simulator, StatsTrackPeakSizes) {
  const auto circuit = test::randomCircuit(6, 50, 10);
  const auto result = simulate(circuit, StrategyConfig::kOperations(4));
  EXPECT_GT(result.stats.peakStateNodes, 0U);
  EXPECT_GT(result.stats.peakMatrixNodes, 0U);
  EXPECT_GT(result.stats.wallSeconds, 0.0);
  EXPECT_GT(result.stats.finalStateNodes, 0U);
}

TEST(Simulator, AdaptiveCombinesOperations) {
  const auto circuit = test::randomCircuit(6, 80, 13);
  const auto result = simulate(circuit, StrategyConfig::adaptive(0.5));
  EXPECT_GT(result.stats.mxmCount, 0U);
  EXPECT_LT(result.stats.mxvCount, circuit.flatGateCount());
}

TEST(Simulator, AdaptiveRejectsNonPositiveRatio) {
  ir::Circuit circuit(1);
  circuit.h(0);
  EXPECT_THROW(CircuitSimulator(circuit, StrategyConfig::adaptive(0.0)),
               std::invalid_argument);
}

// Every malformed StrategyConfig field is rejected at simulator
// construction (StrategyConfig::validate), one rejection per field.
TEST(Simulator, ValidateRejectsEachMalformedField) {
  ir::Circuit circuit(1);
  circuit.h(0);
  const auto reject = [&](void (*tweak)(StrategyConfig&)) {
    StrategyConfig config;
    tweak(config);
    EXPECT_THROW(CircuitSimulator(circuit, config), std::invalid_argument);
  };
  reject([](StrategyConfig& c) { c.k = 0; });
  reject([](StrategyConfig& c) { c.maxSize = 0; });
  reject([](StrategyConfig& c) { c.adaptiveRatio = 0.0; });
  reject([](StrategyConfig& c) { c.adaptiveRatio = -1.0; });
  reject([](StrategyConfig& c) {
    c.adaptiveRatio = std::numeric_limits<double>::quiet_NaN();
  });
  reject([](StrategyConfig& c) { c.timeLimitSeconds = -1.0; });
  reject([](StrategyConfig& c) {
    c.timeLimitSeconds = std::numeric_limits<double>::infinity();
  });
  reject([](StrategyConfig& c) { c.approximateFidelity = 0.0; });
  reject([](StrategyConfig& c) { c.approximateFidelity = 1.5; });
  reject([](StrategyConfig& c) { c.softBudgetFraction = 0.0; });
  reject([](StrategyConfig& c) { c.softBudgetFraction = 1.01; });

  // The default config and sane edge values still pass.
  EXPECT_NO_THROW(StrategyConfig{}.validate());
  StrategyConfig edge;
  edge.approximateFidelity = 1.0;
  edge.softBudgetFraction = 1.0;
  edge.timeLimitSeconds = 0.0;
  EXPECT_NO_THROW(edge.validate());
}

TEST(Simulator, TraceRecordsSteps) {
  ir::Circuit circuit(3, 1);
  circuit.h(0);
  circuit.cx(0, 1);
  circuit.cx(1, 2);
  circuit.measure(0, 0);

  StrategyConfig config = StrategyConfig::sequential();
  config.collectTrace = true;
  CircuitSimulator sim(circuit, config);
  const auto result = sim.run();
  ASSERT_EQ(result.trace.steps.size(), 4U);
  EXPECT_EQ(result.trace.steps[0].kind, StepKind::ApplyToState);
  EXPECT_EQ(result.trace.steps[3].kind, StepKind::Measure);
  // State sizes are recorded after each step and indices increase.
  for (std::size_t i = 0; i < result.trace.steps.size(); ++i) {
    EXPECT_EQ(result.trace.steps[i].index, i);
    EXPECT_GT(result.trace.steps[i].stateNodes, 0U);
  }
}

TEST(Simulator, TraceDistinguishesCombineFromApply) {
  const auto circuit = test::randomCircuit(4, 16, 14);
  StrategyConfig config = StrategyConfig::kOperations(4);
  config.collectTrace = true;
  CircuitSimulator sim(circuit, config);
  const auto result = sim.run();

  std::size_t combines = 0;
  std::size_t applies = 0;
  for (const auto& step : result.trace.steps) {
    combines += step.kind == StepKind::CombineMatrix ? 1U : 0U;
    applies += step.kind == StepKind::ApplyToState ? 1U : 0U;
  }
  EXPECT_EQ(combines, result.stats.mxvCount + result.stats.mxmCount);
  EXPECT_EQ(applies, result.stats.mxvCount);
}

TEST(Simulator, TraceCsvFormat) {
  ir::Circuit circuit(2);
  circuit.h(0);
  StrategyConfig config = StrategyConfig::sequential();
  config.collectTrace = true;
  CircuitSimulator sim(circuit, config);
  const auto result = sim.run();
  std::ostringstream ss;
  result.trace.writeCsv(ss);
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("index,kind,state_nodes,matrix_nodes,seconds"),
            std::string::npos);
  EXPECT_NE(csv.find("apply"), std::string::npos);
}

TEST(Simulator, TraceDisabledByDefault) {
  ir::Circuit circuit(2);
  circuit.h(0);
  CircuitSimulator sim(circuit);
  EXPECT_TRUE(sim.run().trace.steps.empty());
}

TEST(Simulator, TimeLimitAborts) {
  // A circuit too large to finish instantly, with a microscopic budget.
  const auto circuit = test::randomCircuit(10, 2000, 15);
  StrategyConfig config = StrategyConfig::sequential();
  config.timeLimitSeconds = 1e-4;
  CircuitSimulator sim(circuit, config);
  EXPECT_THROW(sim.run(), SimulationTimeout);
}

TEST(Simulator, TimeLimitGenerousEnoughPasses) {
  const auto circuit = test::randomCircuit(4, 20, 16);
  StrategyConfig config = StrategyConfig::kOperations(4);
  config.timeLimitSeconds = 60.0;
  CircuitSimulator sim(circuit, config);
  EXPECT_NO_THROW(sim.run());
}

TEST(Simulator, ApproximateWhileSimulatingBoundsStateSize) {
  // A random circuit whose exact state DD grows well past the threshold.
  const auto circuit = test::randomCircuit(10, 300, 19);

  StrategyConfig exact = StrategyConfig::sequential();
  CircuitSimulator exactSim(circuit, exact);
  const auto exactRes = exactSim.run();

  StrategyConfig approx = StrategyConfig::sequential();
  approx.approximateFidelity = 0.995;
  approx.approximateThreshold = 128;
  CircuitSimulator approxSim(circuit, approx);
  const auto approxRes = approxSim.run();

  EXPECT_GT(approxRes.stats.approxRounds, 0U);
  EXPECT_LT(approxRes.stats.approxFidelity, 1.0);
  EXPECT_GT(approxRes.stats.approxFidelity, 0.0);
  EXPECT_LE(approxRes.stats.finalStateNodes, exactRes.stats.finalStateNodes);
  // The state stays normalized and the true fidelity respects the bound.
  EXPECT_NEAR(approxSim.package().norm2(approxRes.finalState), 1.0, 1e-7);
  const auto exactVec = exactSim.package().getVector(exactRes.finalState);
  const auto approxVec = approxSim.package().getVector(approxRes.finalState);
  std::complex<double> overlap{};
  for (std::size_t i = 0; i < exactVec.size(); ++i) {
    overlap += std::conj(exactVec[i].toStd()) * approxVec[i].toStd();
  }
  EXPECT_GE(std::norm(overlap), approxRes.stats.approxFidelity - 1e-6);
}

TEST(Simulator, ApproximationDisabledByDefault) {
  const auto circuit = test::randomCircuit(8, 100, 21);
  const auto result = simulate(circuit);
  EXPECT_EQ(result.stats.approxRounds, 0U);
  EXPECT_DOUBLE_EQ(result.stats.approxFidelity, 1.0);
}

TEST(Simulator, ApproximationConfigValidated) {
  ir::Circuit circuit(1);
  circuit.h(0);
  StrategyConfig bad = StrategyConfig::sequential();
  bad.approximateFidelity = 0.0;
  EXPECT_THROW(CircuitSimulator(circuit, bad), std::invalid_argument);
  bad.approximateFidelity = 1.5;
  EXPECT_THROW(CircuitSimulator(circuit, bad), std::invalid_argument);
}

TEST(Simulator, LongCircuitSurvivesGarbageCollection) {
  // Enough volume to trigger several GC cycles; correctness must hold.
  const auto circuit = test::randomCircuit(8, 600, 11);
  CircuitSimulator sim(circuit, StrategyConfig::kOperations(3));
  const auto result = sim.run();
  EXPECT_NEAR(sim.package().norm2(result.finalState), 1.0, 1e-7);
}

}  // namespace
}  // namespace ddsim::sim
