#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "dd/package.hpp"
#include "ir/gate.hpp"
#include "test_util.hpp"

namespace ddsim::dd {
namespace {

TEST(Package, RejectsBadQubitCounts) {
  EXPECT_THROW(Package(0), std::invalid_argument);
  EXPECT_THROW(Package(63), std::invalid_argument);
  EXPECT_NO_THROW(Package(1));
}

TEST(Package, ZeroStateStructure) {
  Package p(3);
  const VEdge zero = p.makeZeroState();
  // |000>: one node per qubit plus the terminal.
  EXPECT_EQ(p.size(zero), 4U);
  EXPECT_TRUE(zero.w->exactlyOne());
  auto vec = p.getVector(zero);
  EXPECT_NEAR(vec[0].r, 1.0, 1e-12);
  for (std::size_t i = 1; i < vec.size(); ++i) {
    EXPECT_NEAR(vec[i].mag2(), 0.0, 1e-12);
  }
}

TEST(Package, BasisStates) {
  Package p(4);
  for (std::uint64_t bits = 0; bits < 16; ++bits) {
    const VEdge v = p.makeBasisState(bits);
    const auto amp = p.getAmplitude(v, bits);
    EXPECT_NEAR(amp.r, 1.0, 1e-12);
    EXPECT_NEAR(p.norm2(v), 1.0, 1e-12);
    // All other amplitudes vanish.
    for (std::uint64_t other = 0; other < 16; ++other) {
      if (other != bits) {
        EXPECT_NEAR(p.getAmplitude(v, other).mag2(), 0.0, 1e-12);
      }
    }
  }
  EXPECT_THROW(p.makeBasisState(16), std::invalid_argument);
}

TEST(Package, CanonicityIdenticalStatesShareNodes) {
  Package p(5);
  std::mt19937_64 rng(7);
  const auto amps = test::randomAmplitudes(5, rng);
  const VEdge a = p.makeStateFromVector(amps);
  const VEdge b = p.makeStateFromVector(amps);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.w, b.w);
}

TEST(Package, StateFromVectorRoundTrip) {
  Package p(6);
  std::mt19937_64 rng(3);
  const auto amps = test::randomAmplitudes(6, rng);
  const VEdge v = p.makeStateFromVector(amps);
  test::expectAmplitudesNear(p.getVector(v), amps);
  EXPECT_NEAR(p.norm2(v), 1.0, 1e-9);
}

TEST(Package, RedundantStateCompresses) {
  // Uniform superposition: every level has identical sub-vectors, so the DD
  // collapses to one node per qubit (the compactness argument of Fig. 2).
  Package p(8);
  std::vector<ComplexValue> amps(1ULL << 8, ComplexValue{1.0 / 16.0, 0.0});
  const VEdge v = p.makeStateFromVector(amps);
  EXPECT_EQ(p.size(v), 9U);
}

TEST(Package, NormalizationMaxMagnitudeIsOne) {
  Package p(4);
  std::mt19937_64 rng(11);
  const VEdge v = p.makeStateFromVector(test::randomAmplitudes(4, rng));
  // Walk all reachable nodes and check the normalization invariant.
  std::vector<const VNode*> stack{v.p};
  while (!stack.empty()) {
    const VNode* n = stack.back();
    stack.pop_back();
    if (n->isTerminal()) {
      continue;
    }
    double maxMag = 0;
    for (const auto& e : n->e) {
      maxMag = std::max(maxMag, e.w->mag2());
      stack.push_back(e.p);
    }
    EXPECT_NEAR(maxMag, 1.0, 1e-9);
  }
}

TEST(Package, IdentityIsLinearSize) {
  Package p(10);
  const MEdge id = p.makeIdent();
  EXPECT_EQ(p.size(id), 11U);  // one node per qubit + terminal
  EXPECT_TRUE(id.w->exactlyOne());
}

TEST(Package, IdentityActsTrivially) {
  Package p(5);
  std::mt19937_64 rng(19);
  const VEdge v = p.makeStateFromVector(test::randomAmplitudes(5, rng));
  const VEdge w = p.multiply(p.makeIdent(), v);
  EXPECT_EQ(w.p, v.p);
  EXPECT_NEAR(p.fidelity(v, w), 1.0, 1e-10);
}

TEST(Package, GateDDIsLinearForSingleQubitGate) {
  // The motivating observation of Section III: elementary-operation DDs are
  // linear in the number of qubits.
  Package p(16);
  const GateMatrix h = ir::gateMatrix(ir::GateType::H);
  const MEdge gate = p.makeGateDD(h, 7);
  EXPECT_EQ(p.size(gate), 17U);
}

TEST(Package, GateDDControlValidation) {
  Package p(3);
  const GateMatrix x = ir::gateMatrix(ir::GateType::X);
  EXPECT_THROW(p.makeGateDD(x, 1, {Control{1}}), std::invalid_argument);
  EXPECT_THROW(p.makeGateDD(x, 1, {Control{5}}), std::invalid_argument);
}

TEST(Package, RefCountingKeepsRootsAliveThroughGC) {
  Package p(4);
  std::mt19937_64 rng(23);
  const auto amps = test::randomAmplitudes(4, rng);
  VEdge v = p.makeStateFromVector(amps);
  p.incRef(v);

  // Generate garbage.
  for (int i = 0; i < 50; ++i) {
    p.makeStateFromVector(test::randomAmplitudes(4, rng));
  }
  const std::size_t before = p.vNodeCount();
  const std::size_t collected = p.garbageCollect();
  EXPECT_GT(collected, 0U);
  EXPECT_LT(p.vNodeCount(), before);

  // The rooted state is intact.
  test::expectAmplitudesNear(p.getVector(v), amps);
  p.decRef(v);
}

TEST(Package, GarbageCollectReclaimsUnreferencedNodes) {
  Package p(6);
  std::mt19937_64 rng(29);
  for (int i = 0; i < 10; ++i) {
    p.makeStateFromVector(test::randomAmplitudes(6, rng));
  }
  EXPECT_GT(p.vNodeCount(), 0U);
  p.garbageCollect();
  EXPECT_EQ(p.vNodeCount(), 0U);
  // Identity DDs are pinned and survive.
  const MEdge id = p.makeIdent();
  p.garbageCollect();
  EXPECT_EQ(p.size(id), 7U);
}

TEST(Package, GarbageCollectSweepsComplexTable) {
  Package p(6);
  std::mt19937_64 rng(41);
  const auto amps = test::randomAmplitudes(6, rng);
  VEdge keep = p.makeStateFromVector(amps);
  p.incRef(keep);
  for (int i = 0; i < 20; ++i) {
    p.makeStateFromVector(test::randomAmplitudes(6, rng));
  }
  const std::size_t before = p.complexTable().size();
  p.garbageCollect();
  EXPECT_LT(p.complexTable().size(), before);
  // The rooted state (including its canonical weights) is intact.
  test::expectAmplitudesNear(p.getVector(keep), amps);
  EXPECT_NEAR(p.norm2(keep), 1.0, 1e-9);
  p.decRef(keep);
}

TEST(Package, ComplexTableStaysBoundedOverManyGenerations) {
  Package p(5);
  std::mt19937_64 rng(43);
  std::size_t peak = 0;
  for (int gen = 0; gen < 30; ++gen) {
    p.makeStateFromVector(test::randomAmplitudes(5, rng));
    p.garbageCollect();
    peak = std::max(peak, p.complexTable().size());
  }
  // Without weight GC this would be ~30 generations x 32 fresh weights; with
  // it, at most one generation's weights are alive after each sweep.
  EXPECT_LT(peak, 200U);
}

TEST(Package, SizeCountsSharedNodesOnce) {
  Package p(2);
  // |00> + |11> (Bell pair, unnormalized weights handled by the package).
  std::vector<ComplexValue> amps = {
      {std::numbers::sqrt2 / 2, 0}, {0, 0}, {0, 0}, {std::numbers::sqrt2 / 2, 0}};
  const VEdge bell = p.makeStateFromVector(amps);
  // Root, two distinct level-0 nodes, terminal.
  EXPECT_EQ(p.size(bell), 4U);
  EXPECT_NEAR(p.norm2(bell), 1.0, 1e-12);
}

TEST(Package, CacheStatsReflectMemoization) {
  Package p(6);
  std::mt19937_64 rng(47);
  const VEdge v = p.makeStateFromVector(test::randomAmplitudes(6, rng));
  const MEdge h = p.makeGateDD(ir::gateMatrix(ir::GateType::H), 2);
  // First application populates the caches, second hits them.
  (void)p.multiply(h, v);
  const CacheStats before = p.cacheStats();
  (void)p.multiply(h, v);
  const CacheStats after = p.cacheStats();
  EXPECT_GT(after.mulMVHits, before.mulMVHits);
  EXPECT_EQ(after.mulMVMisses, before.mulMVMisses);
  // Constructing the same state twice is pure unique-table hits.
  EXPECT_GT(after.uniqueTableHits + after.uniqueTableMisses, 0U);
  EXPECT_GT(after.complexTableHits, 0U);
  EXPECT_GT(CacheStats::rate(after.mulMVHits, after.mulMVMisses), 0.0);
  EXPECT_EQ(CacheStats::rate(0, 0), 0.0);
}

TEST(Package, StatsTrackPeakNodes) {
  Package p(6);
  std::mt19937_64 rng(31);
  p.makeStateFromVector(test::randomAmplitudes(6, rng));
  EXPECT_GT(p.stats().peakLiveNodes, 0U);
}

TEST(Package, MakeMatrixFromDenseRoundTrip) {
  Package p(3);
  std::mt19937_64 rng(37);
  std::normal_distribution<double> dist;
  std::vector<ComplexValue> m(64);
  for (auto& e : m) {
    e = {dist(rng), dist(rng)};
  }
  const MEdge dd = p.makeMatrixFromDense(m);
  const auto back = p.getMatrix(dd);
  test::expectAmplitudesNear(back, m);
}

TEST(Package, PermutationDDMatchesTable) {
  Package p(3);
  const std::vector<std::uint64_t> perm = {3, 1, 0, 2, 7, 6, 5, 4};
  const MEdge dd = p.makePermutationDD(perm);
  const auto mat = p.getMatrix(dd);
  const std::size_t dim = 8;
  for (std::size_t col = 0; col < dim; ++col) {
    for (std::size_t row = 0; row < dim; ++row) {
      const double expected = perm[col] == row ? 1.0 : 0.0;
      EXPECT_NEAR(mat[row * dim + col].r, expected, 1e-12)
          << "row " << row << " col " << col;
      EXPECT_NEAR(mat[row * dim + col].i, 0.0, 1e-12);
    }
  }
}

TEST(Package, PermutationDDIdentityIsCompact) {
  Package p(8);
  std::vector<std::uint64_t> identity(256);
  for (std::uint64_t i = 0; i < identity.size(); ++i) {
    identity[i] = i;
  }
  const MEdge dd = p.makePermutationDD(identity);
  EXPECT_EQ(p.size(dd), 9U);
  EXPECT_EQ(dd.p, p.makeIdent().p);
}

TEST(Package, PermutationDDRejectsNonBijections) {
  Package p(2);
  EXPECT_THROW(p.makePermutationDD({0, 1, 2}), std::invalid_argument);
}

TEST(Package, ControlledPermutationDD) {
  Package p(3);
  // X on the low 2 qubits' value (x -> x ^ 3), controlled on qubit 2.
  const std::vector<std::uint64_t> perm = {3, 2, 1, 0};
  const MEdge dd = p.makePermutationDD(perm, {Control{2}});
  const auto mat = p.getMatrix(dd);
  const std::size_t dim = 8;
  for (std::size_t col = 0; col < dim; ++col) {
    const std::size_t expectRow =
        (col & 4U) != 0 ? (4U | perm[col & 3U]) : col;
    for (std::size_t row = 0; row < dim; ++row) {
      EXPECT_NEAR(mat[row * dim + col].r, row == expectRow ? 1.0 : 0.0, 1e-12);
    }
  }
}

}  // namespace
}  // namespace ddsim::dd
