#include <gtest/gtest.h>

#include <map>
#include <numbers>
#include <random>

#include "dd/package.hpp"
#include "ir/gate.hpp"
#include "test_util.hpp"

namespace ddsim::dd {
namespace {

TEST(Measure, ProbabilityOfOneOnBasisStates) {
  Package p(3);
  for (std::uint64_t bits = 0; bits < 8; ++bits) {
    const VEdge v = p.makeBasisState(bits);
    for (Qubit q = 0; q < 3; ++q) {
      const double expected = ((bits >> q) & 1U) != 0 ? 1.0 : 0.0;
      EXPECT_NEAR(p.probabilityOfOne(v, q), expected, 1e-12);
    }
  }
}

TEST(Measure, ProbabilityOfOneOnSuperposition) {
  Package p(2);
  // (|00> + |01> + |10> + |11>)/2: every qubit reads 1 with probability 1/2.
  std::vector<ComplexValue> amps(4, ComplexValue{0.5, 0.0});
  const VEdge v = p.makeStateFromVector(amps);
  EXPECT_NEAR(p.probabilityOfOne(v, 0), 0.5, 1e-12);
  EXPECT_NEAR(p.probabilityOfOne(v, 1), 0.5, 1e-12);
}

TEST(Measure, ProbabilityMatchesAmplitudes) {
  Package p(5);
  std::mt19937_64 rng(55);
  const auto amps = test::randomAmplitudes(5, rng);
  const VEdge v = p.makeStateFromVector(amps);
  for (Qubit q = 0; q < 5; ++q) {
    double expected = 0;
    for (std::size_t i = 0; i < amps.size(); ++i) {
      if (((i >> q) & 1U) != 0) {
        expected += amps[i].mag2();
      }
    }
    EXPECT_NEAR(p.probabilityOfOne(v, q), expected, 1e-9);
  }
}

TEST(Measure, CollapseProducesConsistentPosterior) {
  Package p(4);
  std::mt19937_64 rng(56);
  const auto amps = test::randomAmplitudes(4, rng);
  VEdge v = p.makeStateFromVector(amps);
  p.incRef(v);
  const int outcome = p.measureOneCollapsing(v, 2, rng);
  EXPECT_NEAR(p.norm2(v), 1.0, 1e-9);
  EXPECT_NEAR(p.probabilityOfOne(v, 2), outcome == 1 ? 1.0 : 0.0, 1e-9);
  // Conditional amplitudes preserved up to normalization.
  const auto post = p.getVector(v);
  double preMass = 0;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if ((((i >> 2) & 1U) != 0) == (outcome == 1)) {
      preMass += amps[i].mag2();
    }
  }
  const double scale = 1.0 / std::sqrt(preMass);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if ((((i >> 2) & 1U) != 0) == (outcome == 1)) {
      EXPECT_NEAR(post[i].r, amps[i].r * scale, 1e-9);
      EXPECT_NEAR(post[i].i, amps[i].i * scale, 1e-9);
    } else {
      EXPECT_NEAR(post[i].mag2(), 0.0, 1e-12);
    }
  }
  p.decRef(v);
}

TEST(Measure, MeasureAllOnBasisStateIsDeterministic) {
  Package p(6);
  std::mt19937_64 rng(57);
  VEdge v = p.makeBasisState(0b101101);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.measureAll(v, rng, false), 0b101101U);
  }
}

TEST(Measure, MeasureAllSamplesTheRightDistribution) {
  Package p(2);
  // Bell state: only 00 and 11 occur, roughly evenly.
  const double s = std::numbers::sqrt2 / 2;
  std::vector<ComplexValue> amps = {{s, 0}, {0, 0}, {0, 0}, {s, 0}};
  VEdge v = p.makeStateFromVector(amps);
  std::mt19937_64 rng(58);
  std::map<std::uint64_t, int> histogram;
  const int shots = 4000;
  for (int i = 0; i < shots; ++i) {
    ++histogram[p.measureAll(v, rng, false)];
  }
  EXPECT_EQ(histogram.count(1), 0U);
  EXPECT_EQ(histogram.count(2), 0U);
  EXPECT_NEAR(static_cast<double>(histogram[0]) / shots, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(histogram[3]) / shots, 0.5, 0.05);
}

TEST(Measure, MeasureAllCollapseYieldsBasisState) {
  Package p(3);
  std::mt19937_64 rng(59);
  VEdge v = p.makeStateFromVector(test::randomAmplitudes(3, rng));
  p.incRef(v);
  const std::uint64_t outcome = p.measureAll(v, rng, true);
  EXPECT_NEAR(p.getAmplitude(v, outcome).mag2(), 1.0, 1e-12);
  p.decRef(v);
}

TEST(Measure, SampleCountsMatchesDistribution) {
  Package p(2);
  // 3/4 weight on |00>, 1/4 on |11>.
  std::vector<ComplexValue> amps = {
      {std::sqrt(0.75), 0}, {0, 0}, {0, 0}, {0.5, 0}};
  const VEdge v = p.makeStateFromVector(amps);
  std::mt19937_64 rng(61);
  const auto histogram = p.sampleCounts(v, 8000, rng);
  EXPECT_EQ(histogram.count(1), 0U);
  EXPECT_EQ(histogram.count(2), 0U);
  EXPECT_NEAR(static_cast<double>(histogram.at(0)) / 8000.0, 0.75, 0.03);
  EXPECT_NEAR(static_cast<double>(histogram.at(3)) / 8000.0, 0.25, 0.03);
}

TEST(Measure, ExpectationValueOfPauliZ) {
  Package p(2);
  // |psi> = cos(t)|00> + sin(t)|01> (qubit 0 rotated): <Z_0> = cos(2t).
  const double t = 0.6;
  std::vector<ComplexValue> amps = {
      {std::cos(t), 0}, {std::sin(t), 0}, {0, 0}, {0, 0}};
  const VEdge v = p.makeStateFromVector(amps);
  const MEdge z0 = p.makeGateDD(ir::gateMatrix(ir::GateType::Z), 0);
  const ComplexValue expectation = p.expectationValue(z0, v);
  EXPECT_NEAR(expectation.r, std::cos(2 * t), 1e-10);
  EXPECT_NEAR(expectation.i, 0.0, 1e-10);
}

TEST(Measure, ExpectationValueOfProjector) {
  Package p(3);
  std::mt19937_64 rng(62);
  const auto amps = test::randomAmplitudes(3, rng);
  const VEdge v = p.makeStateFromVector(amps);
  // Projector |1><1| on qubit 2 has expectation = P(qubit 2 reads 1).
  static constexpr GateMatrix kP1{
      ComplexValue{0, 0}, ComplexValue{0, 0}, ComplexValue{0, 0},
      ComplexValue{1, 0}};
  const MEdge proj = p.makeGateDD(kP1, 2);
  EXPECT_NEAR(p.expectationValue(proj, v).r, p.probabilityOfOne(v, 2), 1e-10);
}

TEST(Measure, RepeatedCollapsesConverge) {
  Package p(4);
  std::mt19937_64 rng(60);
  VEdge v = p.makeStateFromVector(test::randomAmplitudes(4, rng));
  p.incRef(v);
  std::uint64_t bits = 0;
  for (Qubit q = 0; q < 4; ++q) {
    bits |= static_cast<std::uint64_t>(p.measureOneCollapsing(v, q, rng)) << q;
  }
  // Fully measured: the state is the basis state of the outcomes.
  EXPECT_NEAR(p.getAmplitude(v, bits).mag2(), 1.0, 1e-9);
  p.decRef(v);
}

}  // namespace
}  // namespace ddsim::dd
