#!/usr/bin/env python3
"""Validate a ddsim_router cluster-stats dump against its own shards.

The router's --stats file has the shape

    {"workers_live": N,
     "aggregate": { ...ServiceStats JSON... },
     "shards": [{"endpoint": "...", "stats": { ...ServiceStats JSON... }}]}

where `aggregate` is produced by serve::mergeStats folding the per-shard
snapshots. This script re-derives the aggregate element-wise in Python and
fails loudly when the C++ merge and the naive merge disagree:

  * counters (submitted, completed, cache.hits, spill.appended, ...) must
    be the exact sum across shards;
  * max fields (elapsed_seconds, queue_latency_max_seconds, histogram
    max) must be the max across shards;
  * histogram bucket counts must sum bound-by-bound, and count/sum must
    sum;
  * derived figures (jobs_per_second, means, quantiles) are NOT re-derived
    exactly — quantiles are interpolated from merged buckets — but they are
    sanity-bounded: a quantile must lie within [0, histogram max] and the
    mean within [0, max].

Exit code 0 = aggregate consistent, 1 = at least one mismatch, 2 = bad
input (missing file, malformed JSON, missing keys).
"""

import argparse
import json
import sys

# Integer counter fields at the top level of ServiceStats JSON: the
# aggregate must be the exact sum over shards.
TOP_SUM_FIELDS = [
    "workers",
    "queue_depth",
    "submitted",
    "rejected",
    "coalesced",
    "simulations_run",
    "completed",
    "cached",
    "timed_out",
    "expired",
    "cancelled",
    "resource_exhausted",
    "failed",
]

# Float fields that sum.
TOP_SUM_FLOAT_FIELDS = ["exec_seconds_total"]

# Fields where the merge takes the maximum across shards.
TOP_MAX_FIELDS = ["elapsed_seconds", "queue_latency_max_seconds"]

# Nested counter objects: every key inside sums (backoff_seconds_total is
# a double but still sums).
NESTED_SUM_OBJECTS = ["cache", "block_cache", "degradation", "pipeline",
                      "retry", "spill"]

HISTOGRAMS = ["queue_latency_histogram", "exec_histogram",
              "degradation_per_job_histogram"]

# Derived fields we only sanity-bound, never compare exactly.
DERIVED_FIELDS = [
    "jobs_per_second",
    "queue_latency_mean_seconds",
    "queue_latency_p50_seconds",
    "queue_latency_p95_seconds",
    "queue_latency_p99_seconds",
    "exec_p50_seconds",
    "exec_p95_seconds",
    "exec_p99_seconds",
]

EPS = 1e-9

# ServiceStats::toJson streams doubles at the default ostream precision
# (6 significant digits), so every float in the dump carries ~1e-6
# relative rounding and sums across shards accumulate it. The float
# tolerance is therefore a merge-correctness gate, not a precision gate.
FLOAT_REL = 1e-4
FLOAT_ABS = 1e-6


class Mismatch(Exception):
    pass


def approx_equal(a, b, rel=FLOAT_REL, abs_tol=FLOAT_ABS):
    return abs(a - b) <= max(abs_tol, rel * max(abs(a), abs(b)))


def check_sum(errors, path, aggregate_value, shard_values, integral):
    expected = sum(shard_values)
    if integral:
        ok = aggregate_value == expected
    else:
        ok = approx_equal(aggregate_value, expected)
    if not ok:
        errors.append(
            f"{path}: aggregate={aggregate_value!r} but shard sum="
            f"{expected!r} (shards: {shard_values!r})")


def check_max(errors, path, aggregate_value, shard_values):
    expected = max(shard_values) if shard_values else 0.0
    if not approx_equal(aggregate_value, expected):
        errors.append(
            f"{path}: aggregate={aggregate_value!r} but shard max="
            f"{expected!r} (shards: {shard_values!r})")


def check_histogram(errors, name, aggregate_hist, shard_hists):
    check_sum(errors, f"{name}.count", aggregate_hist["count"],
              [h["count"] for h in shard_hists], integral=True)
    check_sum(errors, f"{name}.sum", aggregate_hist["sum"],
              [h["sum"] for h in shard_hists], integral=False)
    check_max(errors, f"{name}.max", aggregate_hist["max"],
              [h["max"] for h in shard_hists])

    # Bucket counts must sum bound-by-bound. Shards share one layout (same
    # build), but be defensive: key by the `le` bound, not by position.
    agg_buckets = {b["le"]: b["count"] for b in aggregate_hist["buckets"]}
    merged = {}
    for h in shard_hists:
        for b in h["buckets"]:
            merged[b["le"]] = merged.get(b["le"], 0) + b["count"]
    if set(agg_buckets) != set(merged):
        errors.append(
            f"{name}.buckets: bound sets differ — aggregate has "
            f"{sorted(agg_buckets)} vs shards {sorted(merged)}")
        return
    for le in sorted(agg_buckets):
        if agg_buckets[le] != merged[le]:
            errors.append(
                f"{name}.buckets[le={le}]: aggregate={agg_buckets[le]} "
                f"but shard sum={merged[le]}")


def check_derived_bounds(errors, aggregate):
    hist_max = {
        "queue_latency": aggregate["queue_latency_histogram"]["max"],
        "exec": aggregate["exec_histogram"]["max"],
    }
    for field in DERIVED_FIELDS:
        value = aggregate[field]
        if value < -EPS:
            errors.append(f"aggregate.{field}: negative ({value!r})")
        if field.startswith("queue_latency_p") or field == \
                "queue_latency_mean_seconds":
            # Quantiles are interpolated inside a bucket, so they can
            # overshoot the exact max by up to one bucket width; only flag
            # the clearly-broken case where there were observations but the
            # quantile is wildly above everything recorded.
            count = aggregate["queue_latency_histogram"]["count"]
            if count > 0 and hist_max["queue_latency"] > 0 and \
                    value > 100.0 * hist_max["queue_latency"]:
                errors.append(
                    f"aggregate.{field}: {value!r} is implausibly above "
                    f"histogram max {hist_max['queue_latency']!r}")


def validate(cluster):
    for key in ("workers_live", "aggregate", "shards"):
        if key not in cluster:
            raise Mismatch(f"top-level key {key!r} missing from dump")

    aggregate = cluster["aggregate"]
    shards = [s["stats"] for s in cluster["shards"]]
    if not shards:
        raise Mismatch("dump has no shards to merge")

    errors = []

    for field in TOP_SUM_FIELDS:
        check_sum(errors, field, aggregate[field],
                  [s[field] for s in shards], integral=True)
    for field in TOP_SUM_FLOAT_FIELDS:
        check_sum(errors, field, aggregate[field],
                  [s[field] for s in shards], integral=False)
    for field in TOP_MAX_FIELDS:
        check_max(errors, field, aggregate[field],
                  [s[field] for s in shards])

    for obj in NESTED_SUM_OBJECTS:
        agg_obj = aggregate[obj]
        keys = set(agg_obj)
        for s in shards:
            if set(s[obj]) != keys:
                errors.append(
                    f"{obj}: shard key set {sorted(s[obj])} differs from "
                    f"aggregate key set {sorted(keys)}")
        for key in sorted(keys):
            values = [s[obj].get(key, 0) for s in shards]
            integral = all(isinstance(v, int) for v in values) and \
                isinstance(agg_obj[key], int)
            check_sum(errors, f"{obj}.{key}", agg_obj[key], values,
                      integral=integral)

    for name in HISTOGRAMS:
        check_histogram(errors, name, aggregate[name],
                        [s[name] for s in shards])

    check_derived_bounds(errors, aggregate)
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="Check a ddsim_router cluster stats dump for "
                    "aggregate/shard consistency.")
    parser.add_argument("dump", help="cluster stats JSON from "
                                     "ddsim_router --stats")
    args = parser.parse_args()

    try:
        with open(args.dump, "r", encoding="utf-8") as fh:
            cluster = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_stats_merge: cannot load {args.dump}: {exc}",
              file=sys.stderr)
        return 2

    try:
        errors = validate(cluster)
    except (Mismatch, KeyError, TypeError) as exc:
        print(f"check_stats_merge: malformed dump: {exc!r}",
              file=sys.stderr)
        return 2

    shard_count = len(cluster["shards"])
    if errors:
        print(f"check_stats_merge: FAIL — {len(errors)} mismatch(es) "
              f"across {shard_count} shard(s):")
        for e in errors:
            print(f"  - {e}")
        return 1

    print(f"check_stats_merge: OK — aggregate matches the element-wise "
          f"merge of {shard_count} shard(s) "
          f"(submitted={cluster['aggregate']['submitted']}, "
          f"simulations_run={cluster['aggregate']['simulations_run']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
