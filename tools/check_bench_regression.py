#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json artifacts.

Compares a freshly produced bench JSON against a committed baseline
(benchmarks/baselines/). Raw wall-clock is machine-dependent, so the gate
is *ratio-based*: for every configuration row `<instance>/<config>` the
speedup relative to that instance's `<instance>/sequential` row is computed
within the same file, and the gate fails when the current speedup falls
more than --threshold (default 15%) below the baseline's speedup for the
same row.

Rows are skipped (never failed by ratio) when:
  * either run timed out (`timed_out` / `partial_result`) — timeouts are
    capacity signals, not regressions measurable by ratio;
  * the sequential reference or the row itself ran under --min-ms in either
    file — sub-50ms cells are noise-dominated.

Rows that exist on only one side are *reported* in both directions:
baseline rows missing from the current run (a configuration silently
stopped being measured — the classic way a perf gate rots) and current
rows absent from the baseline (new configurations whose baselines should
be committed). By default these are warnings; with --strict any
baseline-only row fails the gate, so CI cannot drop coverage unnoticed.

Exit code 0 = no regression, 1 = at least one regression (or, under
--strict, a baseline row missing from the current run), 2 = bad input.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in data.get("results", []):
        rows[row["name"]] = row
    if not rows:
        print(f"error: {path} has no results", file=sys.stderr)
        sys.exit(2)
    return rows


def sequential_name(name):
    instance = name.split("/", 1)[0]
    return f"{instance}/sequential"


def usable(row, min_ms):
    return (
        row is not None
        and not row.get("timed_out", False)
        and not row.get("partial_result", False)
        and row.get("wall_ms", 0.0) >= min_ms
    )


def speedup(rows, name, min_ms):
    """Speedup of row `name` vs its instance's sequential row, or None when
    either side is missing/timed-out/too-fast-to-measure."""
    row = rows.get(name)
    seq = rows.get(sequential_name(name))
    if not usable(row, min_ms) or not usable(seq, min_ms):
        return None
    return seq["wall_ms"] / row["wall_ms"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum allowed relative speedup drop (default 0.15)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=50.0,
        help="skip rows whose wall time is below this in either file",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail when a baseline row is missing from the current run "
        "(instead of warning); current-only rows still only warn",
    )
    args = parser.parse_args()

    base = load_rows(args.baseline)
    curr = load_rows(args.current)

    missing_in_current = sorted(set(base) - set(curr))
    missing_in_baseline = sorted(set(curr) - set(base))
    for name in missing_in_current:
        print(f"   MISSING  {name:<40} in baseline but not in current run")
    for name in missing_in_baseline:
        print(f"       NEW  {name:<40} in current run but not in baseline")

    regressions = []
    checked = 0
    for name in sorted(base):
        if name.endswith("/sequential"):
            continue
        base_speedup = speedup(base, name, args.min_ms)
        curr_speedup = speedup(curr, name, args.min_ms)
        if base_speedup is None or curr_speedup is None:
            continue
        checked += 1
        floor = base_speedup * (1.0 - args.threshold)
        status = "ok"
        if curr_speedup < floor:
            status = "REGRESSION"
            regressions.append(name)
        print(
            f"{status:>10}  {name:<40} baseline {base_speedup:6.2f}x"
            f"  current {curr_speedup:6.2f}x  (floor {floor:.2f}x)"
        )

    print(
        f"\nchecked {checked} rows, {len(regressions)} regression(s), "
        f"{len(missing_in_current)} missing, {len(missing_in_baseline)} new"
    )
    failed = False
    if regressions:
        for name in regressions:
            print(f"  regressed: {name}", file=sys.stderr)
        failed = True
    if missing_in_current:
        for name in missing_in_current:
            print(f"  missing from current run: {name}", file=sys.stderr)
        if args.strict:
            failed = True
    if failed:
        return 1
    if checked == 0:
        print(
            "warning: no comparable rows (all skipped) — treating as pass",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
