#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json artifacts.

Compares a freshly produced bench JSON against a committed baseline
(benchmarks/baselines/). Raw wall-clock is machine-dependent, so the gate
is *ratio-based*: for every configuration row `<instance>/<config>` the
speedup relative to that instance's `<instance>/sequential` row is computed
within the same file, and the gate fails when the current speedup falls
more than --threshold (default 15%) below the baseline's speedup for the
same row.

Rows are skipped (never failed) when:
  * either run timed out (`timed_out` / `partial_result`) — timeouts are
    capacity signals, not regressions measurable by ratio;
  * the sequential reference or the row itself ran under --min-ms in either
    file — sub-50ms cells are noise-dominated;
  * the row only exists on one side (new configurations are allowed).

Exit code 0 = no regression, 1 = at least one regression, 2 = bad input.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in data.get("results", []):
        rows[row["name"]] = row
    if not rows:
        print(f"error: {path} has no results", file=sys.stderr)
        sys.exit(2)
    return rows


def sequential_name(name):
    instance = name.split("/", 1)[0]
    return f"{instance}/sequential"


def usable(row, min_ms):
    return (
        row is not None
        and not row.get("timed_out", False)
        and not row.get("partial_result", False)
        and row.get("wall_ms", 0.0) >= min_ms
    )


def speedup(rows, name, min_ms):
    """Speedup of row `name` vs its instance's sequential row, or None when
    either side is missing/timed-out/too-fast-to-measure."""
    row = rows.get(name)
    seq = rows.get(sequential_name(name))
    if not usable(row, min_ms) or not usable(seq, min_ms):
        return None
    return seq["wall_ms"] / row["wall_ms"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum allowed relative speedup drop (default 0.15)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=50.0,
        help="skip rows whose wall time is below this in either file",
    )
    args = parser.parse_args()

    base = load_rows(args.baseline)
    curr = load_rows(args.current)

    regressions = []
    checked = 0
    for name in sorted(base):
        if name.endswith("/sequential"):
            continue
        base_speedup = speedup(base, name, args.min_ms)
        curr_speedup = speedup(curr, name, args.min_ms)
        if base_speedup is None or curr_speedup is None:
            continue
        checked += 1
        floor = base_speedup * (1.0 - args.threshold)
        status = "ok"
        if curr_speedup < floor:
            status = "REGRESSION"
            regressions.append(name)
        print(
            f"{status:>10}  {name:<40} baseline {base_speedup:6.2f}x"
            f"  current {curr_speedup:6.2f}x  (floor {floor:.2f}x)"
        )

    print(f"\nchecked {checked} rows, {len(regressions)} regression(s)")
    if regressions:
        for name in regressions:
            print(f"  regressed: {name}", file=sys.stderr)
        return 1
    if checked == 0:
        print(
            "warning: no comparable rows (all skipped) — treating as pass",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
