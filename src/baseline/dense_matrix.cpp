#include "baseline/dense_matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ddsim::baseline {

DenseMatrix::DenseMatrix(std::size_t dim, std::vector<Complex> rowMajor)
    : dim_(dim), data_(std::move(rowMajor)) {
  if (data_.size() != dim * dim) {
    throw std::invalid_argument("DenseMatrix: data size mismatch");
  }
}

DenseMatrix DenseMatrix::identity(std::size_t dim) {
  DenseMatrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

DenseMatrix DenseMatrix::fromGate(const dd::GateMatrix& g) {
  DenseMatrix m(2);
  m.at(0, 0) = g[0].toStd();
  m.at(0, 1) = g[1].toStd();
  m.at(1, 0) = g[2].toStd();
  m.at(1, 1) = g[3].toStd();
  return m;
}

DenseMatrix DenseMatrix::operator*(const DenseMatrix& rhs) const {
  if (dim_ != rhs.dim_) {
    throw std::invalid_argument("DenseMatrix: dimension mismatch");
  }
  DenseMatrix out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t k = 0; k < dim_; ++k) {
      const Complex a = at(i, k);
      if (a == Complex{}) {
        continue;
      }
      for (std::size_t j = 0; j < dim_; ++j) {
        out.at(i, j) += a * rhs.at(k, j);
      }
    }
  }
  return out;
}

std::vector<Complex> DenseMatrix::operator*(const std::vector<Complex>& v) const {
  if (dim_ != v.size()) {
    throw std::invalid_argument("DenseMatrix: vector dimension mismatch");
  }
  std::vector<Complex> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    Complex sum{};
    for (std::size_t j = 0; j < dim_; ++j) {
      sum += at(i, j) * v[j];
    }
    out[i] = sum;
  }
  return out;
}

DenseMatrix DenseMatrix::kron(const DenseMatrix& rhs) const {
  DenseMatrix out(dim_ * rhs.dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      const Complex a = at(i, j);
      if (a == Complex{}) {
        continue;
      }
      for (std::size_t k = 0; k < rhs.dim_; ++k) {
        for (std::size_t l = 0; l < rhs.dim_; ++l) {
          out.at(i * rhs.dim_ + k, j * rhs.dim_ + l) = a * rhs.at(k, l);
        }
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::dagger() const {
  DenseMatrix out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      out.at(i, j) = std::conj(at(j, i));
    }
  }
  return out;
}

bool DenseMatrix::approxEquals(const DenseMatrix& other, double tol) const {
  if (dim_ != other.dim_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) {
      return false;
    }
  }
  return true;
}

bool DenseMatrix::isUnitary(double tol) const {
  return (*this * dagger()).approxEquals(identity(dim_), tol);
}

std::vector<dd::ComplexValue> DenseMatrix::toComplexValues() const {
  std::vector<dd::ComplexValue> out;
  out.reserve(data_.size());
  for (const Complex& c : data_) {
    out.push_back(dd::ComplexValue::fromStd(c));
  }
  return out;
}

DenseMatrix expandGate(const dd::GateMatrix& g, std::size_t numQubits,
                       dd::Qubit target, const dd::Controls& controls) {
  const std::size_t dim = 1ULL << numQubits;
  DenseMatrix out(dim);
  const std::size_t tMask = 1ULL << target;
  for (std::size_t col = 0; col < dim; ++col) {
    bool active = true;
    for (const auto& c : controls) {
      const bool bit = (col >> c.qubit) & 1U;
      if (bit != c.positive) {
        active = false;
        break;
      }
    }
    if (!active) {
      out.at(col, col) = 1.0;
      continue;
    }
    const bool t1 = (col & tMask) != 0;
    const std::size_t col0 = col & ~tMask;
    const std::size_t col1 = col | tMask;
    // Column `col` of the operator: entries of the gate in the target slice.
    if (!t1) {
      out.at(col0, col) = g[0].toStd();
      out.at(col1, col) = g[2].toStd();
    } else {
      out.at(col0, col) = g[1].toStd();
      out.at(col1, col) = g[3].toStd();
    }
  }
  return out;
}

}  // namespace ddsim::baseline
