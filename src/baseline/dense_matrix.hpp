/// \file dense_matrix.hpp
/// \brief Dense complex matrix utilities.
///
/// This is the array-based representation the paper contrasts DDs with
/// (Section I): explicit 2^n x 2^n storage. It exists (i) as the
/// correctness oracle for the DD package in the test suite and (ii) to
/// demonstrate the asymptotic cost asymmetry between array-based MxV and
/// MxM that motivates the conventional simulation schedule (Eq. 1).

#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "dd/package.hpp"

namespace ddsim::baseline {

using Complex = std::complex<double>;

class DenseMatrix {
 public:
  DenseMatrix() = default;
  /// Zero matrix of the given dimension.
  explicit DenseMatrix(std::size_t dim) : dim_(dim), data_(dim * dim) {}
  DenseMatrix(std::size_t dim, std::vector<Complex> rowMajor);

  static DenseMatrix identity(std::size_t dim);
  /// 2x2 matrix from a DD gate matrix.
  static DenseMatrix fromGate(const dd::GateMatrix& g);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] Complex& at(std::size_t r, std::size_t c) {
    return data_[r * dim_ + c];
  }
  [[nodiscard]] const Complex& at(std::size_t r, std::size_t c) const {
    return data_[r * dim_ + c];
  }
  [[nodiscard]] const std::vector<Complex>& data() const noexcept { return data_; }

  [[nodiscard]] DenseMatrix operator*(const DenseMatrix& rhs) const;
  [[nodiscard]] std::vector<Complex> operator*(const std::vector<Complex>& v) const;
  [[nodiscard]] DenseMatrix kron(const DenseMatrix& rhs) const;
  [[nodiscard]] DenseMatrix dagger() const;

  [[nodiscard]] bool approxEquals(const DenseMatrix& other,
                                  double tol = dd::kTolerance) const;
  [[nodiscard]] bool isUnitary(double tol = 1e-9) const;

  /// Row-major entries converted to DD complex values (to feed
  /// dd::Package::makeMatrixFromDense in tests).
  [[nodiscard]] std::vector<dd::ComplexValue> toComplexValues() const;

 private:
  std::size_t dim_ = 0;
  std::vector<Complex> data_;
};

/// Lift a 2x2 gate (optionally controlled) to an n-qubit dense operator,
/// qubit 0 = least significant bit of the basis index.
DenseMatrix expandGate(const dd::GateMatrix& g, std::size_t numQubits,
                       dd::Qubit target, const dd::Controls& controls = {});

}  // namespace ddsim::baseline
