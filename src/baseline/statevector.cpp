#include "baseline/statevector.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ddsim::baseline {

namespace {
bool controlsSatisfied(std::uint64_t basis, const dd::Controls& controls) {
  for (const auto& c : controls) {
    const bool bit = ((basis >> c.qubit) & 1U) != 0;
    if (bit != c.positive) {
      return false;
    }
  }
  return true;
}
}  // namespace

StateVector::StateVector(std::size_t numQubits)
    : numQubits_(numQubits), amps_(1ULL << numQubits) {
  if (numQubits == 0 || numQubits > 30) {
    throw std::invalid_argument("StateVector: qubit count must be in [1, 30]");
  }
  amps_[0] = 1.0;
}

double StateVector::norm2() const {
  double s = 0;
  for (const auto& a : amps_) {
    s += std::norm(a);
  }
  return s;
}

void StateVector::setBasisState(std::uint64_t basis) {
  std::fill(amps_.begin(), amps_.end(), std::complex<double>{});
  amps_.at(basis) = 1.0;
}

void StateVector::applyGate(const dd::GateMatrix& g, dd::Qubit target,
                            const dd::Controls& controls) {
  const std::uint64_t tMask = 1ULL << target;
  const std::complex<double> u00 = g[0].toStd();
  const std::complex<double> u01 = g[1].toStd();
  const std::complex<double> u10 = g[2].toStd();
  const std::complex<double> u11 = g[3].toStd();
  for (std::uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & tMask) != 0 || !controlsSatisfied(i, controls)) {
      continue;
    }
    const std::uint64_t j = i | tMask;
    const std::complex<double> a0 = amps_[i];
    const std::complex<double> a1 = amps_[j];
    amps_[i] = u00 * a0 + u01 * a1;
    amps_[j] = u10 * a0 + u11 * a1;
  }
}

void StateVector::applySwap(dd::Qubit a, dd::Qubit b, const dd::Controls& controls) {
  const std::uint64_t aMask = 1ULL << a;
  const std::uint64_t bMask = 1ULL << b;
  for (std::uint64_t i = 0; i < amps_.size(); ++i) {
    const bool ba = (i & aMask) != 0;
    const bool bb = (i & bMask) != 0;
    if (!ba || bb) {
      continue;  // visit each (01) pair once, from the a=1,b=0 side
    }
    if (!controlsSatisfied(i, controls)) {
      continue;
    }
    const std::uint64_t j = (i & ~aMask) | bMask;
    std::swap(amps_[i], amps_[j]);
  }
}

void StateVector::applyOracle(const ir::OracleOperation& oracle) {
  const std::uint64_t tMask = (1ULL << oracle.numTargets()) - 1;
  std::vector<std::complex<double>> out(amps_.size());
  for (std::uint64_t i = 0; i < amps_.size(); ++i) {
    if (amps_[i] == std::complex<double>{}) {
      continue;
    }
    std::uint64_t j = i;
    if (controlsSatisfied(i, oracle.controls())) {
      j = (i & ~tMask) | oracle.apply(i & tMask);
    }
    out[j] += amps_[i];
  }
  amps_ = std::move(out);
}

double StateVector::probabilityOfOne(dd::Qubit q) const {
  const std::uint64_t mask = 1ULL << q;
  double p = 0;
  for (std::uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & mask) != 0) {
      p += std::norm(amps_[i]);
    }
  }
  return p;
}

int StateVector::measureCollapsing(dd::Qubit q, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const double p1 = probabilityOfOne(q);
  const bool one = dist(rng) < p1;
  const double norm = std::sqrt(one ? p1 : 1.0 - p1);
  const std::uint64_t mask = 1ULL << q;
  for (std::uint64_t i = 0; i < amps_.size(); ++i) {
    if ((((i & mask) != 0) == one)) {
      amps_[i] /= norm;
    } else {
      amps_[i] = 0;
    }
  }
  return one ? 1 : 0;
}

namespace {
void runOps(const std::vector<std::unique_ptr<ir::Operation>>& ops,
            StateVector& sv, std::vector<bool>& clbits, std::mt19937_64& rng) {
  using ir::OpKind;
  for (const auto& op : ops) {
    switch (op->kind()) {
      case OpKind::Standard: {
        const auto& s = static_cast<const ir::StandardOperation&>(*op);
        if (s.type() == ir::GateType::Swap) {
          sv.applySwap(s.targets()[0], s.targets()[1], s.controls());
        } else {
          sv.applyGate(s.matrix(), s.targets()[0], s.controls());
        }
        break;
      }
      case OpKind::Measure: {
        const auto& m = static_cast<const ir::MeasureOperation&>(*op);
        clbits[m.clbit()] = sv.measureCollapsing(m.qubit(), rng) != 0;
        break;
      }
      case OpKind::Reset: {
        const auto& r = static_cast<const ir::ResetOperation&>(*op);
        if (sv.measureCollapsing(r.qubit(), rng) != 0) {
          sv.applyGate(ir::gateMatrix(ir::GateType::X), r.qubit());
        }
        break;
      }
      case OpKind::Barrier:
        break;
      case OpKind::Compound: {
        const auto& comp = static_cast<const ir::CompoundOperation&>(*op);
        for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
          runOps(comp.body(), sv, clbits, rng);
        }
        break;
      }
      case OpKind::ClassicControlled: {
        const auto& c = static_cast<const ir::ClassicControlledOperation&>(*op);
        if (clbits[c.clbit()] == c.expectedValue()) {
          const auto& s = c.op();
          if (s.type() == ir::GateType::Swap) {
            sv.applySwap(s.targets()[0], s.targets()[1], s.controls());
          } else {
            sv.applyGate(s.matrix(), s.targets()[0], s.controls());
          }
        }
        break;
      }
      case OpKind::Oracle:
        sv.applyOracle(static_cast<const ir::OracleOperation&>(*op));
        break;
    }
  }
}
}  // namespace

StateVectorResult runOnStateVector(const ir::Circuit& circuit, std::uint64_t seed) {
  StateVector sv(circuit.numQubits());
  std::vector<bool> clbits(std::max<std::size_t>(1, circuit.numClbits()), false);
  std::mt19937_64 rng(seed);
  runOps(circuit.ops(), sv, clbits, rng);
  return {std::move(sv), std::move(clbits)};
}

}  // namespace ddsim::baseline
