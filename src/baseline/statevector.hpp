/// \file statevector.hpp
/// \brief Dense array-based statevector simulator.
///
/// The conventional Schrödinger-style simulator the paper's introduction
/// describes: the state is a full 2^n amplitude array and every gate is a
/// strided sweep over it. It supports the complete operation set of the IR
/// (including oracles, measurements and classically controlled gates) and
/// is used as the ground-truth reference for the DD simulator in the tests.

#pragma once

#include <complex>
#include <cstdint>
#include <random>
#include <vector>

#include "ir/circuit.hpp"

namespace ddsim::baseline {

class StateVector {
 public:
  /// Initialize to |0...0>.
  explicit StateVector(std::size_t numQubits);

  [[nodiscard]] std::size_t numQubits() const noexcept { return numQubits_; }
  [[nodiscard]] const std::vector<std::complex<double>>& amplitudes() const noexcept {
    return amps_;
  }
  [[nodiscard]] std::complex<double> amplitude(std::uint64_t basis) const {
    return amps_[basis];
  }
  [[nodiscard]] double norm2() const;

  void setBasisState(std::uint64_t basis);

  /// Apply a 2x2 gate with optional positive/negative controls.
  void applyGate(const dd::GateMatrix& g, dd::Qubit target,
                 const dd::Controls& controls = {});
  void applySwap(dd::Qubit a, dd::Qubit b, const dd::Controls& controls = {});
  /// Apply a classical bijection on the packed low `numTargets` qubits,
  /// optionally controlled (oracle semantics, see ir::OracleOperation).
  void applyOracle(const ir::OracleOperation& oracle);

  [[nodiscard]] double probabilityOfOne(dd::Qubit q) const;
  int measureCollapsing(dd::Qubit q, std::mt19937_64& rng);

 private:
  std::size_t numQubits_;
  std::vector<std::complex<double>> amps_;
};

/// Run a full circuit on the dense simulator.
struct StateVectorResult {
  StateVector state;
  std::vector<bool> classicalBits;
};
StateVectorResult runOnStateVector(const ir::Circuit& circuit,
                                   std::uint64_t seed = 0);

}  // namespace ddsim::baseline
