/// \file frame.hpp
/// \brief Length-prefixed, checksummed binary frame protocol for
///        distributed ddsim serving.
///
/// Every message between the router and a `ddsim_serve --listen` worker is
/// one *frame*:
///
///     offset  size  field
///     0       4     magic 0x46534444 ("DDSF" little-endian)
///     4       2     protocol version (kWireVersion)
///     6       1     frame type (FrameType)
///     7       1     reserved (must be 0)
///     8       4     payload length in bytes (u32, <= kMaxFramePayload)
///     12      8     FNV-1a checksum over bytes 0..11 then the payload
///     20      ...   payload
///
/// All numbers are explicit little-endian (net/wire.hpp). The checksum is
/// the same FNV-1a the migration/checkpoint/spill formats use
/// (dd::fnv1a) — it detects truncation and bit flips, not adversaries.
/// Chaining the header prefix into it means a bit flip that turns one
/// valid header field into another (Submit -> Result in the type byte,
/// say) still fails verification, even though the field validators alone
/// could not catch it.
/// Decoding is defensive end to end: a bad magic, unsupported version,
/// unknown type, oversized length or checksum mismatch throws FrameError
/// before any payload structure is interpreted, and payload decoding is
/// bounds-checked (WireReader), so a corrupted or malicious frame can cost
/// a connection, never memory safety.
///
/// Frame payloads (codecs below):
///  * Submit      router -> worker: one job — QASM source, StrategyConfig,
///                seed, priority, deadline, plus an optional checkpoint
///                blob the worker resumes from (re-routed jobs).
///  * Result      worker -> router: terminal outcome — status, packed
///                classical bits, flat stats, optional partial progress.
///  * Checkpoint  worker -> router: latest checkpoint blob of a running
///                job (best-effort stream; enables resume-on-reroute).
///  * StatsQuery / StatsReport: per-shard serve::ServiceStats, binary.
///  * Hello       worker -> router on accept (protocol handshake).
///  * Goodbye     either direction: clean shutdown of the conversation.
///  * Error       worker -> router: the previous frame could not be
///                honoured (decode error, admission failure).

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "sim/stats.hpp"

namespace ddsim::net {

/// Structured frame-layer failure: bad magic, unsupported version, unknown
/// type, oversized or inconsistent length, checksum mismatch, or a payload
/// that does not decode. Connections surface it and close cleanly.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kFrameMagic = 0x46534444U;  // "DDSF"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 4 + 2 + 1 + 1 + 4 + 8;
/// Payload ceiling: a submission is QASM text + config (KiB), a result is
/// packed bits + stats (KiB), a checkpoint blob is two flat DDs (MiB for
/// big states). Anything above this is a corrupted length field.
inline constexpr std::uint32_t kMaxFramePayload = 256U * 1024U * 1024U;

enum class FrameType : std::uint8_t {
  Hello = 1,
  Submit = 2,
  Result = 3,
  Checkpoint = 4,
  StatsQuery = 5,
  StatsReport = 6,
  Goodbye = 7,
  Error = 8,
};

[[nodiscard]] std::string frameTypeName(FrameType t);

struct Frame {
  FrameType type = FrameType::Error;
  std::vector<std::uint8_t> payload;
};

/// Parsed frame header (the fixed 20-byte prefix).
struct FrameHeader {
  FrameType type = FrameType::Error;
  std::uint32_t payloadLength = 0;
  std::uint64_t checksum = 0;
};

/// Serialize a frame (header + payload, checksum computed).
[[nodiscard]] std::vector<std::uint8_t> encodeFrame(const Frame& frame);

/// Decode and validate the fixed header. \p data must hold at least
/// kFrameHeaderSize bytes. Throws FrameError on bad magic/version/type,
/// a nonzero reserved byte or an oversized length.
[[nodiscard]] FrameHeader decodeFrameHeader(const std::uint8_t* data);

/// Verify \p payload against the header's checksum; throws FrameError on
/// mismatch.
void verifyFramePayload(const FrameHeader& header, const std::uint8_t* payload,
                        std::size_t size);

/// Decode one complete frame from a contiguous buffer (header + payload,
/// exactly). Throws FrameError on any inconsistency.
[[nodiscard]] Frame decodeFrame(const std::uint8_t* data, std::size_t size);
[[nodiscard]] Frame decodeFrame(const std::vector<std::uint8_t>& bytes);

// --------------------------------------------------------- payload codecs

/// Handshake sent by the worker immediately after accepting a connection.
struct HelloPayload {
  std::uint16_t wireVersion = kWireVersion;
  std::string software = "ddsim_serve";
};

/// Wire status of a finished job: serve::JobStatus plus Rejected, which
/// only exists on the wire (the worker's admission queue was full or
/// draining — the router treats it as transiently re-routable).
inline constexpr std::uint8_t kWireStatusRejected = 255;

[[nodiscard]] std::uint8_t wireStatus(serve::JobStatus s) noexcept;
[[nodiscard]] std::string wireStatusName(std::uint8_t s);

struct SubmitPayload {
  /// Router-assigned id, echoed on every Result/Checkpoint frame.
  std::uint64_t jobId = 0;
  std::string label;
  /// Full OpenQASM source text — submissions are self-contained; workers
  /// never need the router's filesystem.
  std::string qasm;
  sim::StrategyConfig config;
  std::uint64_t seed = 0;
  serve::JobPriority priority = serve::JobPriority::Normal;
  double deadlineSeconds = 0.0;
  bool detectRepetitions = false;
  /// Non-empty: a serialized sim::Checkpoint the worker should resume
  /// from (a re-routed job continuing where the dead shard left off).
  std::vector<std::uint8_t> checkpoint;
};

struct ResultPayload {
  std::uint64_t jobId = 0;
  /// wireStatus(JobStatus) or kWireStatusRejected.
  std::uint8_t status = kWireStatusRejected;
  std::vector<bool> classicalBits;
  sim::SimulationStats stats;
  bool hasPartial = false;
  sim::PartialResult partial;
  std::string error;
  double queueSeconds = 0.0;
  double runSeconds = 0.0;
  bool fromCache = false;
  bool coalesced = false;
  std::uint64_t attempts = 1;
  bool resumed = false;
};

struct CheckpointPayload {
  std::uint64_t jobId = 0;
  std::vector<std::uint8_t> blob;
};

struct GoodbyePayload {
  std::string reason;
};

struct ErrorPayload {
  std::string message;
};

[[nodiscard]] std::vector<std::uint8_t> encodeHello(const HelloPayload& p);
[[nodiscard]] HelloPayload decodeHello(const std::vector<std::uint8_t>& b);

[[nodiscard]] std::vector<std::uint8_t> encodeSubmit(const SubmitPayload& p);
[[nodiscard]] SubmitPayload decodeSubmit(const std::vector<std::uint8_t>& b);

[[nodiscard]] std::vector<std::uint8_t> encodeResult(const ResultPayload& p);
[[nodiscard]] ResultPayload decodeResult(const std::vector<std::uint8_t>& b);

[[nodiscard]] std::vector<std::uint8_t> encodeCheckpoint(
    const CheckpointPayload& p);
[[nodiscard]] CheckpointPayload decodeCheckpoint(
    const std::vector<std::uint8_t>& b);

[[nodiscard]] std::vector<std::uint8_t> encodeGoodbye(const GoodbyePayload& p);
[[nodiscard]] GoodbyePayload decodeGoodbye(const std::vector<std::uint8_t>& b);

[[nodiscard]] std::vector<std::uint8_t> encodeError(const ErrorPayload& p);
[[nodiscard]] ErrorPayload decodeError(const std::vector<std::uint8_t>& b);

/// Binary codec for a full per-shard serve::ServiceStats snapshot —
/// counters, derived figures and the three bucketed histograms — so the
/// router can merge shards without parsing JSON.
[[nodiscard]] std::vector<std::uint8_t> encodeServiceStats(
    const serve::ServiceStats& s);
[[nodiscard]] serve::ServiceStats decodeServiceStats(
    const std::vector<std::uint8_t>& b);

}  // namespace ddsim::net
