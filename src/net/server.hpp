/// \file server.hpp
/// \brief Network worker: a SimulationService behind the frame protocol.
///
/// `ddsim_serve --listen <port>` wraps one WorkerServer. Topology: one
/// accept thread, one thread per router connection, one waiter thread per
/// in-flight job (the unit of work is a whole simulation — thread cost is
/// noise next to it). All frames of a connection are written under one
/// per-connection mutex, so Results, streamed Checkpoints and the final
/// Goodbye never interleave mid-frame.
///
/// Lifecycle:
///  * accept -> send Hello -> read frames.
///  * Submit: parse the QASM, admit into the service (trySubmit); a full
///    queue answers a Result frame with kWireStatusRejected (the router
///    re-routes); otherwise a waiter thread streams the Result back when
///    the job resolves. A checkpoint observer streams Checkpoint frames so
///    the router can resume the job elsewhere if this process dies.
///  * StatsQuery -> StatsReport with the binary per-shard ServiceStats.
///  * Goodbye -> drain this connection's waiters, reply Goodbye, close.
///  * requestStop() (SIGTERM path): stop accepting, let every connection
///    drain its in-flight jobs, send Goodbye, then shut the service down —
///    the router observes a clean end of conversation.
///  * abortHard() (test hook): tear every socket down mid-conversation
///    without goodbyes and cancel the service — simulates a worker death
///    for re-route tests.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "serve/service.hpp"

namespace ddsim::net {

namespace detail {
struct Connection;
}  // namespace detail

class WorkerServer {
 public:
  /// Bind 127.0.0.1:\p port (0 = ephemeral) and start serving submissions
  /// into a SimulationService built from \p config. Throws SocketError
  /// when the port cannot be bound.
  WorkerServer(serve::ServiceConfig config, std::uint16_t port);
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful drain: stop accepting, finish every in-flight job, stream
  /// the remaining Results, send Goodbye on every connection, shut the
  /// service down (writing its cache snapshot). Idempotent.
  void requestStop();

  /// Hard death (tests): close every socket mid-conversation without a
  /// goodbye and cancel queued work, so the router sees an unexpected EOF
  /// exactly as it would from a SIGKILLed process. Idempotent.
  void abortHard();

  [[nodiscard]] serve::ServiceStats stats() const { return service_.stats(); }

 private:
  void acceptLoop();
  void connectionLoop(const std::shared_ptr<detail::Connection>& conn);
  void joinAll();

  serve::SimulationService service_;
  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> aborting_{false};
  std::atomic<bool> joined_{false};

  std::mutex connectionsMutex_;
  std::vector<std::shared_ptr<detail::Connection>> connections_;
  std::vector<std::thread> connectionThreads_;
  std::thread acceptThread_;
};

}  // namespace ddsim::net
