#include "net/frame.hpp"

#include "dd/migration.hpp"  // dd::fnv1a — the shared integrity checksum
#include "net/wire.hpp"
#include "sim/checkpoint.hpp"  // sim::encodeStats / decodeStats

namespace ddsim::net {

namespace {

/// Rethrow bounds-check failures as protocol errors so callers handle one
/// exception type per layer.
template <typename F>
auto decodeGuard(const char* what, F&& f) {
  try {
    return f();
  } catch (const WireError& e) {
    throw FrameError(std::string(what) + ": " + e.what());
  } catch (const sim::CheckpointError& e) {
    // decodeStats shares the checkpoint blob's stats encoding.
    throw FrameError(std::string(what) + ": " + e.what());
  }
}

/// Frame checksum: FNV-1a chained over the 12-byte canonical header
/// prefix (magic, version, type, reserved, length) and then the payload.
/// Covering the prefix means a bit flip that turns one VALID header field
/// value into another (e.g. Submit -> Result in the type byte, which the
/// field validators cannot catch) still fails verification.
std::uint64_t frameChecksum(FrameType type, const std::uint8_t* payload,
                            std::size_t size) {
  std::vector<std::uint8_t> prefix;
  prefix.reserve(12);
  putU32(prefix, kFrameMagic);
  putU16(prefix, kWireVersion);
  putU8(prefix, static_cast<std::uint8_t>(type));
  putU8(prefix, 0);
  putU32(prefix, static_cast<std::uint32_t>(size));
  return dd::fnv1a(payload, size,
                   dd::fnv1a(prefix.data(), prefix.size()));
}

void putHistogram(std::vector<std::uint8_t>& out,
                  const obs::HistogramSnapshot& h) {
  putU64(out, h.count);
  putF64(out, h.sum);
  putF64(out, h.max);
  putF64(out, h.p50);
  putF64(out, h.p95);
  putF64(out, h.p99);
  putU32(out, static_cast<std::uint32_t>(h.buckets.size()));
  for (const auto& [bound, count] : h.buckets) {
    putF64(out, bound);
    putU64(out, count);
  }
}

obs::HistogramSnapshot getHistogram(WireReader& r) {
  obs::HistogramSnapshot h;
  h.count = r.u64();
  h.sum = r.f64();
  h.max = r.f64();
  h.p50 = r.f64();
  h.p95 = r.f64();
  h.p99 = r.f64();
  const std::uint32_t n = r.u32();
  h.buckets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double bound = r.f64();
    const std::uint64_t count = r.u64();
    h.buckets.emplace_back(bound, count);
  }
  return h;
}

void putStrategyConfig(std::vector<std::uint8_t>& out,
                       const sim::StrategyConfig& c) {
  putU8(out, static_cast<std::uint8_t>(c.schedule));
  putU64(out, c.k);
  putU64(out, c.maxSize);
  putF64(out, c.adaptiveRatio);
  putU8(out, c.reuseRepeatedBlocks ? 1 : 0);
  putU8(out, c.collectTrace ? 1 : 0);
  putF64(out, c.timeLimitSeconds);
  putF64(out, c.approximateFidelity);
  putU64(out, c.approximateThreshold);
  putU64(out, c.nodeBudget);
  putU64(out, c.byteBudget);
  putF64(out, c.softBudgetFraction);
  putU64(out, c.degradeCooldownOps);
  putU8(out, c.pipeline ? 1 : 0);
  putU64(out, c.pipelineDepth);
  putU64(out, c.threads);
  putU64(out, c.checkpointIntervalOps);
}

sim::StrategyConfig getStrategyConfig(WireReader& r) {
  sim::StrategyConfig c;
  const std::uint8_t schedule = r.u8();
  if (schedule > static_cast<std::uint8_t>(sim::Schedule::Adaptive)) {
    throw FrameError("decodeSubmit: unknown schedule " +
                     std::to_string(schedule));
  }
  c.schedule = static_cast<sim::Schedule>(schedule);
  c.k = r.u64();
  c.maxSize = r.u64();
  c.adaptiveRatio = r.f64();
  c.reuseRepeatedBlocks = r.u8() != 0;
  c.collectTrace = r.u8() != 0;
  c.timeLimitSeconds = r.f64();
  c.approximateFidelity = r.f64();
  c.approximateThreshold = r.u64();
  c.nodeBudget = r.u64();
  c.byteBudget = r.u64();
  c.softBudgetFraction = r.f64();
  c.degradeCooldownOps = r.u64();
  c.pipeline = r.u8() != 0;
  c.pipelineDepth = r.u64();
  c.threads = r.u64();
  c.checkpointIntervalOps = r.u64();
  return c;
}

void putStats(std::vector<std::uint8_t>& out, const sim::SimulationStats& s) {
  // Reuse the flat encoding shared with checkpoint blobs and spill records,
  // length-prefixed so the reader can skip it as one unit.
  std::vector<std::uint8_t> flat;
  sim::encodeStats(flat, s);
  putBytes(out, flat);
}

sim::SimulationStats getStats(WireReader& r) {
  const std::vector<std::uint8_t> flat = r.bytes();
  std::size_t off = 0;
  return sim::decodeStats(flat.data(), flat.size(), off);
}

}  // namespace

std::string frameTypeName(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "hello";
    case FrameType::Submit: return "submit";
    case FrameType::Result: return "result";
    case FrameType::Checkpoint: return "checkpoint";
    case FrameType::StatsQuery: return "stats-query";
    case FrameType::StatsReport: return "stats-report";
    case FrameType::Goodbye: return "goodbye";
    case FrameType::Error: return "error";
  }
  return "?";
}

std::uint8_t wireStatus(serve::JobStatus s) noexcept {
  return static_cast<std::uint8_t>(s);
}

std::string wireStatusName(std::uint8_t s) {
  if (s == kWireStatusRejected) {
    return "rejected";
  }
  if (s <= static_cast<std::uint8_t>(serve::JobStatus::Failed)) {
    return serve::statusName(static_cast<serve::JobStatus>(s));
  }
  return "?";
}

std::vector<std::uint8_t> encodeFrame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw FrameError("encodeFrame: payload of " +
                     std::to_string(frame.payload.size()) +
                     " bytes exceeds the frame ceiling");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  putU32(out, kFrameMagic);
  putU16(out, kWireVersion);
  putU8(out, static_cast<std::uint8_t>(frame.type));
  putU8(out, 0);  // reserved
  putU32(out, static_cast<std::uint32_t>(frame.payload.size()));
  putU64(out, frameChecksum(frame.type, frame.payload.data(),
                            frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

FrameHeader decodeFrameHeader(const std::uint8_t* data) {
  if (peekU32(data) != kFrameMagic) {
    throw FrameError("frame: bad magic (not a ddsim frame)");
  }
  const std::uint16_t version = peekU16(data + 4);
  if (version != kWireVersion) {
    throw FrameError("frame: unsupported protocol version " +
                     std::to_string(version) + " (expected " +
                     std::to_string(kWireVersion) + ")");
  }
  const std::uint8_t type = data[6];
  if (type < static_cast<std::uint8_t>(FrameType::Hello) ||
      type > static_cast<std::uint8_t>(FrameType::Error)) {
    throw FrameError("frame: unknown type " + std::to_string(type));
  }
  if (data[7] != 0) {
    throw FrameError("frame: nonzero reserved byte");
  }
  FrameHeader h;
  h.type = static_cast<FrameType>(type);
  h.payloadLength = peekU32(data + 8);
  if (h.payloadLength > kMaxFramePayload) {
    throw FrameError("frame: payload length " +
                     std::to_string(h.payloadLength) +
                     " exceeds the frame ceiling (corrupted length field)");
  }
  h.checksum = peekU64(data + 12);
  return h;
}

void verifyFramePayload(const FrameHeader& header, const std::uint8_t* payload,
                        std::size_t size) {
  if (size != header.payloadLength) {
    throw FrameError("frame: payload size mismatch");
  }
  if (frameChecksum(header.type, payload, size) != header.checksum) {
    throw FrameError("frame: checksum mismatch (corrupted frame)");
  }
}

Frame decodeFrame(const std::uint8_t* data, std::size_t size) {
  if (data == nullptr || size < kFrameHeaderSize) {
    throw FrameError("frame: buffer of " + std::to_string(size) +
                     " bytes is shorter than the header (" +
                     std::to_string(kFrameHeaderSize) + ")");
  }
  const FrameHeader header = decodeFrameHeader(data);
  if (size != kFrameHeaderSize + header.payloadLength) {
    throw FrameError("frame: buffer of " + std::to_string(size) +
                     " bytes, expected " +
                     std::to_string(kFrameHeaderSize + header.payloadLength) +
                     " (truncated or padded)");
  }
  verifyFramePayload(header, data + kFrameHeaderSize, header.payloadLength);
  Frame f;
  f.type = header.type;
  f.payload.assign(data + kFrameHeaderSize, data + size);
  return f;
}

Frame decodeFrame(const std::vector<std::uint8_t>& bytes) {
  return decodeFrame(bytes.data(), bytes.size());
}

// --------------------------------------------------------- payload codecs

std::vector<std::uint8_t> encodeHello(const HelloPayload& p) {
  std::vector<std::uint8_t> out;
  putU16(out, p.wireVersion);
  putString(out, p.software);
  return out;
}

HelloPayload decodeHello(const std::vector<std::uint8_t>& b) {
  return decodeGuard("decodeHello", [&] {
    WireReader r(b);
    HelloPayload p;
    p.wireVersion = r.u16();
    p.software = r.string();
    return p;
  });
}

std::vector<std::uint8_t> encodeSubmit(const SubmitPayload& p) {
  std::vector<std::uint8_t> out;
  putU64(out, p.jobId);
  putString(out, p.label);
  putString(out, p.qasm);
  putStrategyConfig(out, p.config);
  putU64(out, p.seed);
  putU8(out, static_cast<std::uint8_t>(p.priority));
  putF64(out, p.deadlineSeconds);
  putU8(out, p.detectRepetitions ? 1 : 0);
  putBytes(out, p.checkpoint);
  return out;
}

SubmitPayload decodeSubmit(const std::vector<std::uint8_t>& b) {
  return decodeGuard("decodeSubmit", [&] {
    WireReader r(b);
    SubmitPayload p;
    p.jobId = r.u64();
    p.label = r.string();
    p.qasm = r.string();
    p.config = getStrategyConfig(r);
    p.seed = r.u64();
    const std::uint8_t priority = r.u8();
    if (priority > static_cast<std::uint8_t>(serve::JobPriority::Low)) {
      throw FrameError("decodeSubmit: unknown priority " +
                       std::to_string(priority));
    }
    p.priority = static_cast<serve::JobPriority>(priority);
    p.deadlineSeconds = r.f64();
    p.detectRepetitions = r.u8() != 0;
    p.checkpoint = r.bytes();
    return p;
  });
}

std::vector<std::uint8_t> encodeResult(const ResultPayload& p) {
  std::vector<std::uint8_t> out;
  putU64(out, p.jobId);
  putU8(out, p.status);
  putBits(out, p.classicalBits);
  putStats(out, p.stats);
  putU8(out, p.hasPartial ? 1 : 0);
  if (p.hasPartial) {
    putU64(out, p.partial.opsCompleted);
    putU64(out, p.partial.peakLiveNodes);
    putF64(out, p.partial.elapsedSeconds);
    putStats(out, p.partial.stats);
  }
  putString(out, p.error);
  putF64(out, p.queueSeconds);
  putF64(out, p.runSeconds);
  putU8(out, p.fromCache ? 1 : 0);
  putU8(out, p.coalesced ? 1 : 0);
  putU64(out, p.attempts);
  putU8(out, p.resumed ? 1 : 0);
  return out;
}

ResultPayload decodeResult(const std::vector<std::uint8_t>& b) {
  return decodeGuard("decodeResult", [&] {
    WireReader r(b);
    ResultPayload p;
    p.jobId = r.u64();
    p.status = r.u8();
    if (p.status != kWireStatusRejected &&
        p.status > static_cast<std::uint8_t>(serve::JobStatus::Failed)) {
      throw FrameError("decodeResult: unknown status " +
                       std::to_string(p.status));
    }
    p.classicalBits = r.bits();
    p.stats = getStats(r);
    p.hasPartial = r.u8() != 0;
    if (p.hasPartial) {
      p.partial.opsCompleted = r.u64();
      p.partial.peakLiveNodes = r.u64();
      p.partial.elapsedSeconds = r.f64();
      p.partial.stats = getStats(r);
    }
    p.error = r.string();
    p.queueSeconds = r.f64();
    p.runSeconds = r.f64();
    p.fromCache = r.u8() != 0;
    p.coalesced = r.u8() != 0;
    p.attempts = r.u64();
    p.resumed = r.u8() != 0;
    return p;
  });
}

std::vector<std::uint8_t> encodeCheckpoint(const CheckpointPayload& p) {
  std::vector<std::uint8_t> out;
  putU64(out, p.jobId);
  putBytes(out, p.blob);
  return out;
}

CheckpointPayload decodeCheckpoint(const std::vector<std::uint8_t>& b) {
  return decodeGuard("decodeCheckpoint", [&] {
    WireReader r(b);
    CheckpointPayload p;
    p.jobId = r.u64();
    p.blob = r.bytes();
    return p;
  });
}

std::vector<std::uint8_t> encodeGoodbye(const GoodbyePayload& p) {
  std::vector<std::uint8_t> out;
  putString(out, p.reason);
  return out;
}

GoodbyePayload decodeGoodbye(const std::vector<std::uint8_t>& b) {
  return decodeGuard("decodeGoodbye", [&] {
    WireReader r(b);
    GoodbyePayload p;
    p.reason = r.string();
    return p;
  });
}

std::vector<std::uint8_t> encodeError(const ErrorPayload& p) {
  std::vector<std::uint8_t> out;
  putString(out, p.message);
  return out;
}

ErrorPayload decodeError(const std::vector<std::uint8_t>& b) {
  return decodeGuard("decodeError", [&] {
    WireReader r(b);
    ErrorPayload p;
    p.message = r.string();
    return p;
  });
}

std::vector<std::uint8_t> encodeServiceStats(const serve::ServiceStats& s) {
  std::vector<std::uint8_t> out;
  putU64(out, s.workers);
  putF64(out, s.elapsedSeconds);
  putU64(out, s.queueDepth);
  putU64(out, s.submitted);
  putU64(out, s.rejected);
  putU64(out, s.coalesced);
  putU64(out, s.simulationsRun);
  putU64(out, s.completed);
  putU64(out, s.cached);
  putU64(out, s.timedOut);
  putU64(out, s.expired);
  putU64(out, s.cancelled);
  putU64(out, s.resourceExhausted);
  putU64(out, s.failed);
  putF64(out, s.queueLatencyMeanSeconds);
  putF64(out, s.queueLatencyMaxSeconds);
  putF64(out, s.execSecondsTotal);
  putF64(out, s.jobsPerSecond);
  putF64(out, s.queueLatencyP50Seconds);
  putF64(out, s.queueLatencyP95Seconds);
  putF64(out, s.queueLatencyP99Seconds);
  putF64(out, s.execP50Seconds);
  putF64(out, s.execP95Seconds);
  putF64(out, s.execP99Seconds);
  putHistogram(out, s.queueLatencyHistogram);
  putHistogram(out, s.execHistogram);
  putHistogram(out, s.degradationPerJobHistogram);
  putU64(out, s.cacheBypassed);
  putU64(out, s.cache.hits);
  putU64(out, s.cache.misses);
  putU64(out, s.cache.insertions);
  putU64(out, s.cache.evictions);
  putU64(out, s.cache.entries);
  putU64(out, s.blockCache.hits);
  putU64(out, s.blockCache.misses);
  putU64(out, s.blockCache.insertions);
  putU64(out, s.blockCache.evictions);
  putU64(out, s.blockCache.entries);
  putU64(out, s.blockCache.sharedNodes);
  putU64(out, s.spill.appended);
  putU64(out, s.spill.loaded);
  putU64(out, s.spill.corruptSkipped);
  putU64(out, s.spill.snapshots);
  putU64(out, s.retriesScheduled);
  putU64(out, s.resumedAttempts);
  putU64(out, s.restartedAttempts);
  putF64(out, s.backoffSecondsTotal);
  putU64(out, s.checkpointsTaken);
  putU64(out, s.degradationEvents);
  putU64(out, s.pressureFlushes);
  putU64(out, s.sequentialFallbackOps);
  putU64(out, s.pressureApproximations);
  putU64(out, s.resourceRecoveries);
  putU64(out, s.pipelinedBlocks);
  putU64(out, s.pipelineStalls);
  putU64(out, s.pipelineBowOuts);
  putU64(out, s.pipelineSerialFallbackOps);
  putU32(out, static_cast<std::uint32_t>(s.perWorkerJobs.size()));
  for (const std::uint64_t jobs : s.perWorkerJobs) {
    putU64(out, jobs);
  }
  return out;
}

serve::ServiceStats decodeServiceStats(const std::vector<std::uint8_t>& b) {
  return decodeGuard("decodeServiceStats", [&] {
    WireReader r(b);
    serve::ServiceStats s;
    s.workers = r.u64();
    s.elapsedSeconds = r.f64();
    s.queueDepth = r.u64();
    s.submitted = r.u64();
    s.rejected = r.u64();
    s.coalesced = r.u64();
    s.simulationsRun = r.u64();
    s.completed = r.u64();
    s.cached = r.u64();
    s.timedOut = r.u64();
    s.expired = r.u64();
    s.cancelled = r.u64();
    s.resourceExhausted = r.u64();
    s.failed = r.u64();
    s.queueLatencyMeanSeconds = r.f64();
    s.queueLatencyMaxSeconds = r.f64();
    s.execSecondsTotal = r.f64();
    s.jobsPerSecond = r.f64();
    s.queueLatencyP50Seconds = r.f64();
    s.queueLatencyP95Seconds = r.f64();
    s.queueLatencyP99Seconds = r.f64();
    s.execP50Seconds = r.f64();
    s.execP95Seconds = r.f64();
    s.execP99Seconds = r.f64();
    s.queueLatencyHistogram = getHistogram(r);
    s.execHistogram = getHistogram(r);
    s.degradationPerJobHistogram = getHistogram(r);
    s.cacheBypassed = r.u64();
    s.cache.hits = r.u64();
    s.cache.misses = r.u64();
    s.cache.insertions = r.u64();
    s.cache.evictions = r.u64();
    s.cache.entries = r.u64();
    s.blockCache.hits = r.u64();
    s.blockCache.misses = r.u64();
    s.blockCache.insertions = r.u64();
    s.blockCache.evictions = r.u64();
    s.blockCache.entries = r.u64();
    s.blockCache.sharedNodes = r.u64();
    s.spill.appended = r.u64();
    s.spill.loaded = r.u64();
    s.spill.corruptSkipped = r.u64();
    s.spill.snapshots = r.u64();
    s.retriesScheduled = r.u64();
    s.resumedAttempts = r.u64();
    s.restartedAttempts = r.u64();
    s.backoffSecondsTotal = r.f64();
    s.checkpointsTaken = r.u64();
    s.degradationEvents = r.u64();
    s.pressureFlushes = r.u64();
    s.sequentialFallbackOps = r.u64();
    s.pressureApproximations = r.u64();
    s.resourceRecoveries = r.u64();
    s.pipelinedBlocks = r.u64();
    s.pipelineStalls = r.u64();
    s.pipelineBowOuts = r.u64();
    s.pipelineSerialFallbackOps = r.u64();
    const std::uint32_t n = r.u32();
    s.perWorkerJobs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      s.perWorkerJobs.push_back(r.u64());
    }
    return s;
  });
}

}  // namespace ddsim::net
