#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <utility>

#include "ir/qasm.hpp"
#include "ir/transforms.hpp"
#include "obs/trace.hpp"

namespace ddsim::net {

namespace detail {

/// Per-router-connection state. Shared (shared_ptr) between the connection
/// thread, per-job waiter threads and checkpoint observers, so a frame can
/// be written for a job that outlives the conversation that submitted it
/// (the write then fails quietly against the closed socket).
struct Connection {
  TcpConnection socket;
  /// Serializes every frame written to this socket (results, checkpoint
  /// streams and the goodbye race with each other). socket.close() also
  /// happens under this mutex so no writer ever races a reused fd.
  std::mutex writeMutex;
  std::atomic<bool> dead{false};

  std::vector<serve::JobHandle> handles;  ///< in-flight jobs (reader only)
  std::vector<std::thread> waiters;       ///< one per in-flight job

  /// Best-effort frame write: false (and dead) when the peer is gone.
  bool send(const Frame& frame) {
    const std::lock_guard<std::mutex> lock(writeMutex);
    if (dead.load(std::memory_order_relaxed) || !socket.valid()) {
      return false;
    }
    try {
      writeFrame(socket, frame);
      return true;
    } catch (const std::exception&) {
      dead.store(true, std::memory_order_relaxed);
      return false;
    }
  }

  void closeSocket() {
    const std::lock_guard<std::mutex> lock(writeMutex);
    dead.store(true, std::memory_order_relaxed);
    socket.close();
  }
};

}  // namespace detail

namespace {

/// Wait for readable data (or error/EOF) on \p fd. False on timeout.
bool waitReadable(int fd, int timeoutMs) {
  pollfd pfd{fd, POLLIN, 0};
  int rc = 0;
  do {
    rc = ::poll(&pfd, 1, timeoutMs);
  } while (rc < 0 && errno == EINTR);
  return rc > 0;
}

ResultPayload toResultPayload(std::uint64_t jobId,
                              const serve::JobResult& r) {
  ResultPayload p;
  p.jobId = jobId;
  p.status = wireStatus(r.status);
  p.classicalBits = r.classicalBits;
  p.stats = r.stats;
  if (r.partial) {
    p.hasPartial = true;
    p.partial = *r.partial;
  }
  p.error = r.error;
  p.queueSeconds = r.queueSeconds;
  p.runSeconds = r.runSeconds;
  p.fromCache = r.fromCache;
  p.coalesced = r.coalesced;
  p.attempts = r.attempts;
  p.resumed = r.resumed;
  return p;
}

}  // namespace

WorkerServer::WorkerServer(serve::ServiceConfig config, std::uint16_t port)
    : service_(std::move(config)), listener_(TcpListener::listen(port)) {
  port_ = listener_.port();
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

WorkerServer::~WorkerServer() { requestStop(); }

void WorkerServer::acceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<TcpConnection> accepted;
    try {
      accepted = listener_.accept(/*timeoutSeconds=*/0.2);
    } catch (const SocketError&) {
      break;  // listener torn down concurrently
    }
    if (!accepted) {
      continue;
    }
    auto conn = std::make_shared<detail::Connection>();
    conn->socket = std::move(*accepted);
    // Generous per-read deadline: data is only read after poll() reported
    // it, so this bounds a peer stalling mid-frame, not idle time.
    conn->socket.setDeadlines(/*readSeconds=*/30.0, /*writeSeconds=*/30.0);
    {
      const std::lock_guard<std::mutex> lock(connectionsMutex_);
      if (stopping_.load(std::memory_order_relaxed)) {
        break;
      }
      connections_.push_back(conn);
      connectionThreads_.emplace_back(
          [this, conn] { connectionLoop(conn); });
    }
  }
}

void WorkerServer::connectionLoop(
    const std::shared_ptr<detail::Connection>& conn) {
  obs::traceInstant("net.connection-open", obs::cat::kServe,
                    static_cast<std::uint64_t>(conn->socket.fd()));
  conn->send(Frame{FrameType::Hello, encodeHello(HelloPayload{})});

  bool goodbye = false;
  while (!goodbye && !conn->dead.load(std::memory_order_relaxed)) {
    if (stopping_.load(std::memory_order_relaxed)) {
      break;  // drain: stop reading new work, flush what is in flight
    }
    if (!waitReadable(conn->socket.fd(), /*timeoutMs=*/200)) {
      continue;
    }
    std::optional<Frame> frame;
    try {
      frame = readFrame(conn->socket);
    } catch (const FrameError& e) {
      // Corrupt frame: answer with a protocol error, then drop the
      // conversation — the stream offset can no longer be trusted.
      conn->send(Frame{FrameType::Error, encodeError(ErrorPayload{e.what()})});
      break;
    } catch (const SocketError&) {
      break;
    }
    if (!frame) {
      break;  // clean EOF without a Goodbye (peer died politely)
    }

    switch (frame->type) {
      case FrameType::Submit: {
        SubmitPayload submit;
        try {
          submit = decodeSubmit(frame->payload);
        } catch (const FrameError& e) {
          conn->send(
              Frame{FrameType::Error, encodeError(ErrorPayload{e.what()})});
          goodbye = true;  // framing is intact but the payload is not
          break;
        }
        const std::uint64_t jobId = submit.jobId;
        ResultPayload failure;
        failure.jobId = jobId;
        try {
          auto circuit = ir::parseQasm(submit.qasm);
          if (submit.detectRepetitions) {
            circuit = ir::detectRepetitions(circuit);
          }
          serve::JobSpec spec;
          spec.circuit =
              std::make_shared<const ir::Circuit>(std::move(circuit));
          spec.config = submit.config;
          spec.seed = submit.seed;
          spec.priority = submit.priority;
          spec.deadlineSeconds = submit.deadlineSeconds;
          spec.label = submit.label;
          spec.initialCheckpoint = std::move(submit.checkpoint);
          spec.checkpointObserver =
              [conn, jobId](const std::vector<std::uint8_t>& blob) {
                // Best-effort progress stream; a dead router costs nothing.
                conn->send(Frame{FrameType::Checkpoint,
                                 encodeCheckpoint({jobId, blob})});
              };
          std::optional<serve::JobHandle> handle =
              service_.trySubmit(std::move(spec));
          if (!handle) {
            // Admission queue full or service draining: tell the router to
            // take the job elsewhere.
            failure.status = kWireStatusRejected;
            failure.error = "admission rejected";
            conn->send(Frame{FrameType::Result, encodeResult(failure)});
            break;
          }
          conn->handles.push_back(*handle);
          conn->waiters.emplace_back([conn, jobId, handle = *handle] {
            const serve::JobResult& result = handle.wait();
            conn->send(Frame{FrameType::Result,
                             encodeResult(toResultPayload(jobId, result))});
          });
        } catch (const std::exception& e) {
          // Parse/config errors are deterministic: report Failed (terminal)
          // rather than Rejected, so the router does not bounce the job
          // around the ring forever.
          failure.status =
              wireStatus(serve::JobStatus::Failed);
          failure.error = e.what();
          conn->send(Frame{FrameType::Result, encodeResult(failure)});
        }
        break;
      }
      case FrameType::StatsQuery: {
        conn->send(Frame{FrameType::StatsReport,
                         encodeServiceStats(service_.stats())});
        break;
      }
      case FrameType::Goodbye: {
        goodbye = true;
        break;
      }
      case FrameType::Hello:
        break;  // symmetric handshakes are harmless
      default: {
        conn->send(Frame{
            FrameType::Error,
            encodeError(ErrorPayload{"unexpected frame: " +
                                     frameTypeName(frame->type)})});
        break;
      }
    }
  }

  if (aborting_.load(std::memory_order_relaxed)) {
    // Hard death: abandon in-flight jobs exactly like a killed process —
    // cancel them so the service unblocks, join waiters (their sends fail
    // against the dead socket), no goodbye.
    for (const auto& handle : conn->handles) {
      handle.cancel();
    }
  }
  for (auto& waiter : conn->waiters) {
    if (waiter.joinable()) {
      waiter.join();  // every accepted job gets its Result flushed
    }
  }
  if (!aborting_.load(std::memory_order_relaxed)) {
    conn->send(Frame{FrameType::Goodbye,
                     encodeGoodbye(GoodbyePayload{
                         stopping_.load(std::memory_order_relaxed)
                             ? "worker draining"
                             : "conversation complete"})});
  }
  conn->closeSocket();
  obs::traceInstant("net.connection-closed", obs::cat::kServe, 0);
}

void WorkerServer::joinAll() {
  if (joined_.exchange(true)) {
    return;
  }
  listener_.close();
  if (acceptThread_.joinable()) {
    acceptThread_.join();
  }
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(connectionsMutex_);
    threads.swap(connectionThreads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void WorkerServer::requestStop() {
  if (stopping_.exchange(true)) {
    joinAll();
    return;
  }
  joinAll();
  // Connections drained their in-flight jobs before saying goodbye, so a
  // drain here finds an empty queue unless jobs arrived and their
  // conversation died; draining those too loses nothing.
  service_.shutdown(/*drain=*/true);
}

void WorkerServer::abortHard() {
  if (aborting_.exchange(true)) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  // Tear the transport down first: the router must observe raw EOFs, not
  // goodbyes. shutdown(2) (not close) unblocks any in-flight read safely.
  {
    const std::lock_guard<std::mutex> lock(connectionsMutex_);
    for (const auto& conn : connections_) {
      conn->dead.store(true, std::memory_order_relaxed);
      if (conn->socket.valid()) {
        ::shutdown(conn->socket.fd(), SHUT_RDWR);
      }
    }
  }
  joinAll();
  service_.shutdown(/*drain=*/false);
}

}  // namespace ddsim::net
