#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace ddsim::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

timeval toTimeval(double seconds) {
  if (seconds < 0.0) {
    seconds = 0.0;
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                               1e6);
  return tv;
}

sockaddr_in loopbackAddr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("invalid IPv4 address '" + host +
                      "' (hostnames are not resolved; use a dotted quad)");
  }
  return addr;
}

}  // namespace

TcpConnection::~TcpConnection() { close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpConnection TcpConnection::connect(const std::string& host,
                                     std::uint16_t port,
                                     double timeoutSeconds) {
  const sockaddr_in addr = loopbackAddr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throwErrno("socket");
  }
  TcpConnection conn(fd);  // owns fd from here; closes on any throw below

  // Bounded handshake: non-blocking connect, poll for writability, then
  // check SO_ERROR — a refused or unreachable endpoint fails within the
  // timeout instead of the kernel's (much longer) default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throwErrno("fcntl(O_NONBLOCK)");
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    throwErrno("connect " + host + ":" + std::to_string(port));
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeoutMs = static_cast<int>(timeoutSeconds * 1000.0);
    do {
      rc = ::poll(&pfd, 1, timeoutMs);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      throwErrno("poll(connect)");
    }
    if (rc == 0) {
      throw SocketError("connect " + host + ":" + std::to_string(port) +
                        ": timed out after " +
                        std::to_string(timeoutSeconds) + " s");
    }
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) < 0) {
      throwErrno("getsockopt(SO_ERROR)");
    }
    if (soError != 0) {
      throw SocketError("connect " + host + ":" + std::to_string(port) +
                        ": " + std::strerror(soError));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    throwErrno("fcntl(restore flags)");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

void TcpConnection::setDeadlines(double readSeconds, double writeSeconds) {
  if (fd_ < 0) {
    throw SocketError("setDeadlines on a closed connection");
  }
  const timeval rd = toTimeval(readSeconds);
  const timeval wr = toTimeval(writeSeconds);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &rd, sizeof(rd)) < 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &wr, sizeof(wr)) < 0) {
    throwErrno("setsockopt(deadlines)");
  }
}

void TcpConnection::sendAll(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) {
    throw SocketError("send on a closed connection");
  }
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that vanished costs an EPIPE error here, not a
    // process-wide SIGPIPE.
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketError("send: write deadline expired");
      }
      throwErrno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool TcpConnection::recvAll(std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) {
    throw SocketError("recv on a closed connection");
  }
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketError("recv: read deadline expired");
      }
      throwErrno("recv");
    }
    if (n == 0) {
      if (got == 0) {
        return false;  // clean EOF before the first byte
      }
      throw SocketError("recv: connection closed mid-message (got " +
                        std::to_string(got) + " of " + std::to_string(size) +
                        " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void TcpConnection::shutdownWrite() noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_WR);
  }
}

void TcpConnection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpListener TcpListener::listen(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throwErrno("socket");
  }
  TcpListener lst;
  lst.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopbackAddr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throwErrno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    throwErrno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throwErrno("getsockname");
  }
  lst.port_ = ntohs(bound.sin_port);
  return lst;
}

std::optional<TcpConnection> TcpListener::accept(double timeoutSeconds) {
  if (fd_ < 0) {
    return std::nullopt;
  }
  pollfd pfd{fd_, POLLIN, 0};
  int rc = 0;
  do {
    rc = ::poll(&pfd, 1, static_cast<int>(timeoutSeconds * 1000.0));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EBADF) {
      return std::nullopt;  // closed concurrently during shutdown
    }
    throwErrno("poll(accept)");
  }
  if (rc == 0) {
    return std::nullopt;
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED ||
        errno == EINTR) {
      return std::nullopt;
    }
    throwErrno("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void writeFrame(TcpConnection& conn, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encodeFrame(frame);
  conn.sendAll(bytes.data(), bytes.size());
}

std::optional<Frame> readFrame(TcpConnection& conn) {
  std::uint8_t header[kFrameHeaderSize];
  if (!conn.recvAll(header, kFrameHeaderSize)) {
    return std::nullopt;  // peer closed between frames
  }
  const FrameHeader h = decodeFrameHeader(header);
  Frame frame;
  frame.type = h.type;
  frame.payload.resize(h.payloadLength);
  if (h.payloadLength > 0 &&
      !conn.recvAll(frame.payload.data(), h.payloadLength)) {
    throw SocketError("recv: connection closed mid-frame (header promised " +
                      std::to_string(h.payloadLength) + " payload bytes)");
  }
  verifyFramePayload(h, frame.payload.data(), frame.payload.size());
  return frame;
}

}  // namespace ddsim::net
