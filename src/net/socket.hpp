/// \file socket.hpp
/// \brief Minimal blocking TCP primitives for the distributed serving layer.
///
/// Deliberately plain: blocking sockets with per-connection read/write
/// deadlines (SO_RCVTIMEO / SO_SNDTIMEO), one OS thread per connection on
/// the worker side — the natural shape for a service whose unit of work is
/// a whole simulation, not a packet. The deadlines map the wire onto the
/// same timeout discipline the simulator already has: a peer that stalls
/// longer than the deadline costs a SocketError and the connection, never
/// a wedged thread.
///
/// readFrame()/writeFrame() marry these primitives to net/frame.hpp: a
/// frame is read header-first (validated before the payload is sized), the
/// payload checksum is verified before any byte of it is interpreted, and
/// a clean EOF *between* frames is a normal end-of-conversation (nullopt)
/// while EOF mid-frame is an error.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "net/frame.hpp"

namespace ddsim::net {

/// Transport-layer failure: connect/bind/accept errors, send/recv errors,
/// deadline expiry, or EOF in the middle of a frame.
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Move-only wrapper around one connected TCP stream socket.
class TcpConnection {
 public:
  TcpConnection() = default;
  /// Adopt an already-connected file descriptor (listener accept path).
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to host:port with a bounded handshake (non-blocking connect +
  /// poll). Throws SocketError on failure or timeout.
  [[nodiscard]] static TcpConnection connect(const std::string& host,
                                             std::uint16_t port,
                                             double timeoutSeconds = 5.0);

  /// Install per-operation read/write deadlines (0 = block forever).
  void setDeadlines(double readSeconds, double writeSeconds);

  /// Write the whole buffer or throw (EINTR retried; a deadline expiry or
  /// peer reset throws SocketError).
  void sendAll(const std::uint8_t* data, std::size_t size);

  /// Read exactly \p size bytes. Returns false on a clean EOF *before the
  /// first byte* (peer closed between messages); throws SocketError on
  /// errors, deadline expiry, or EOF after a partial read.
  [[nodiscard]] bool recvAll(std::uint8_t* data, std::size_t size);

  /// Half-close the write side (signals end-of-submissions to the peer
  /// while results may still stream back).
  void shutdownWrite() noexcept;
  void close() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to the loopback interface.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen on 127.0.0.1:\p port (0 = ephemeral; port() reports the
  /// chosen one). Throws SocketError on failure.
  [[nodiscard]] static TcpListener listen(std::uint16_t port,
                                          int backlog = 16);

  /// Wait up to \p timeoutSeconds for a connection. Returns nullopt on
  /// timeout or when the listener was closed concurrently; throws
  /// SocketError on hard errors.
  [[nodiscard]] std::optional<TcpConnection> accept(double timeoutSeconds);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Send one frame (header + checksummed payload) over \p conn.
void writeFrame(TcpConnection& conn, const Frame& frame);

/// Read one frame. Returns nullopt on clean EOF at a frame boundary.
/// Throws FrameError on a corrupted header/payload and SocketError on
/// transport failures (including EOF mid-frame).
[[nodiscard]] std::optional<Frame> readFrame(TcpConnection& conn);

}  // namespace ddsim::net
