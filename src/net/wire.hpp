/// \file wire.hpp
/// \brief Explicit little-endian primitive packing for the ddsim wire
///        formats (net/frame.hpp and everything layered on it).
///
/// Every multi-byte number that crosses a socket or hits disk in the
/// distributed serving layer goes through these helpers, so the byte layout
/// is pinned by construction — a blob produced on any supported host
/// decodes bit-identically on any other. Doubles travel as their IEEE-754
/// bit pattern (the same convention as dd/migration.cpp's edge-list
/// format). Strings and byte blobs are u32-length-prefixed.
///
/// The decode side is bounds-checked through WireReader: reading past the
/// end throws WireError instead of touching out-of-range memory, so a
/// truncated or forged frame can never cause undefined behaviour — only a
/// clean decode failure the caller maps to a protocol error.

#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace ddsim::net {

/// Structured decode failure: truncated buffer or a length field pointing
/// past the end. Callers surface it as a protocol error, never UB.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline void putU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int s = 0; s < 32; s += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

inline void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 0; s < 64; s += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

inline void putI32(std::vector<std::uint8_t>& out, std::int32_t v) {
  putU32(out, static_cast<std::uint32_t>(v));
}

inline void putF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

inline void putString(std::vector<std::uint8_t>& out, const std::string& s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

inline void putBytes(std::vector<std::uint8_t>& out,
                     const std::vector<std::uint8_t>& bytes) {
  putU32(out, static_cast<std::uint32_t>(bytes.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

/// Classical bits travel packed 8-per-byte, LSB first (the same packing as
/// the serve-layer spill records).
inline void putBits(std::vector<std::uint8_t>& out,
                    const std::vector<bool>& bits) {
  putU64(out, bits.size());
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    byte = static_cast<std::uint8_t>(byte | ((bits[i] ? 1U : 0U) << (i % 8)));
    if (i % 8 == 7) {
      out.push_back(byte);
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) {
    out.push_back(byte);
  }
}

inline std::uint16_t peekU16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

inline std::uint32_t peekU32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int b = 3; b >= 0; --b) {
    v = (v << 8) | p[b];
  }
  return v;
}

inline std::uint64_t peekU64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int b = 7; b >= 0; --b) {
    v = (v << 8) | p[b];
  }
  return v;
}

/// Bounds-checked sequential decoder over a borrowed byte range.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - offset_;
  }
  [[nodiscard]] bool atEnd() const noexcept { return offset_ == size_; }

  std::uint8_t u8() { return *need(1); }
  std::uint16_t u16() { return peekU16(need(2)); }
  std::uint32_t u32() { return peekU32(need(4)); }
  std::uint64_t u64() { return peekU64(need(8)); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string string() {
    const std::uint32_t n = u32();
    const std::uint8_t* p = need(n);
    return {reinterpret_cast<const char*>(p), n};
  }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    const std::uint8_t* p = need(n);
    return {p, p + n};
  }

  std::vector<bool> bits() {
    const std::uint64_t n = u64();
    // Overflow-immune: reject before computing (n + 7) / 8 on a forged n.
    if (n / 8 > remaining()) {
      throw WireError("wire decode: bit vector length exceeds payload");
    }
    const std::uint8_t* p = need((n + 7) / 8);
    std::vector<bool> out(n, false);
    for (std::uint64_t i = 0; i < n; ++i) {
      out[i] = (p[i / 8] >> (i % 8)) & 1U;
    }
    return out;
  }

 private:
  const std::uint8_t* need(std::size_t n) {
    if (n > size_ - offset_) {
      throw WireError("wire decode: truncated buffer (need " +
                      std::to_string(n) + " bytes, have " +
                      std::to_string(size_ - offset_) + ")");
    }
    const std::uint8_t* p = data_ + offset_;
    offset_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace ddsim::net
