/// \file noise.hpp
/// \brief Single-qubit noise channels in Kraus form.
///
/// Used by the density-matrix simulator: a channel maps
/// rho -> sum_k K_k rho K_k^dagger. All standard textbook channels are
/// provided; custom channels can be built from raw Kraus matrices.

#pragma once

#include <string>
#include <vector>

#include "dd/package.hpp"

namespace ddsim::sim {

class NoiseChannel {
 public:
  NoiseChannel(std::string name, std::vector<dd::GateMatrix> krausOperators);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<dd::GateMatrix>& kraus() const noexcept {
    return kraus_;
  }

  /// Completeness check: sum_k K_k^dagger K_k == I (within tolerance).
  [[nodiscard]] bool isTracePreserving(double tol = 1e-9) const;

  /// rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z)
  static NoiseChannel depolarizing(double p);
  /// rho -> (1-p) rho + p X rho X
  static NoiseChannel bitFlip(double p);
  /// rho -> (1-p) rho + p Z rho Z
  static NoiseChannel phaseFlip(double p);
  /// Amplitude damping with decay probability gamma (T1-style decay).
  static NoiseChannel amplitudeDamping(double gamma);
  /// Phase damping with parameter lambda (T2-style dephasing).
  static NoiseChannel phaseDamping(double lambda);

 private:
  std::string name_;
  std::vector<dd::GateMatrix> kraus_;
};

/// Which noise is applied where: after every gate, each qubit the gate
/// touches (targets and controls) passes through all channels in order.
struct NoiseModel {
  std::vector<NoiseChannel> channels;

  [[nodiscard]] bool empty() const noexcept { return channels.empty(); }
};

}  // namespace ddsim::sim
