#include "sim/checkpoint.hpp"

#include <cstring>

namespace ddsim::sim {

namespace {

constexpr std::uint32_t kMagic = 0x44436b70U;  // "pkCD"
constexpr std::uint32_t kVersion = 1;
/// magic, version, payload length, payload checksum.
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int s = 0; s < 32; s += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 0; s < 64; s += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void putF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

void putBlob(std::vector<std::uint8_t>& out,
             const std::vector<std::uint8_t>& blob) {
  putU64(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

void putString(std::vector<std::uint8_t>& out, const std::string& s) {
  putU64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void putBits(std::vector<std::uint8_t>& out, const std::vector<bool>& bits) {
  putU64(out, bits.size());
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    byte = static_cast<std::uint8_t>(byte | ((bits[i] ? 1U : 0U) << (i % 8)));
    if (i % 8 == 7) {
      out.push_back(byte);
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) {
    out.push_back(byte);
  }
}

/// Bounds-checked big-blob reader; every get* throws on overrun so a
/// truncated checkpoint fails cleanly instead of reading past the buffer.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t off = 0;

  void need(std::size_t n) const {
    // n > size - off rather than off + n > size: immune to overflow when a
    // corrupted length field decodes to a near-2^64 value.
    if (n > size - off) {
      throw CheckpointError("checkpoint truncated at offset " +
                            std::to_string(off));
    }
  }
  std::uint32_t getU32() {
    need(4);
    std::uint32_t v = 0;
    for (int b = 3; b >= 0; --b) {
      v = (v << 8) | data[off + static_cast<std::size_t>(b)];
    }
    off += 4;
    return v;
  }
  std::uint64_t getU64() {
    need(8);
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b) {
      v = (v << 8) | data[off + static_cast<std::size_t>(b)];
    }
    off += 8;
    return v;
  }
  double getF64() {
    const std::uint64_t bits = getU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::vector<std::uint8_t> getBlob() {
    const std::uint64_t n = getU64();
    need(n);
    std::vector<std::uint8_t> blob(data + off, data + off + n);
    off += n;
    return blob;
  }
  std::string getString() {
    const std::uint64_t n = getU64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data + off), n);
    off += n;
    return s;
  }
  std::vector<bool> getBits() {
    const std::uint64_t n = getU64();
    if (n / 8 > size - off) {  // guards the (n + 7) overflow below too
      throw CheckpointError("checkpoint truncated in classical-bit vector");
    }
    need((n + 7) / 8);
    std::vector<bool> bits(n, false);
    for (std::uint64_t i = 0; i < n; ++i) {
      bits[i] = (data[off + i / 8] >> (i % 8)) & 1U;
    }
    off += (n + 7) / 8;
    return bits;
  }
};

}  // namespace

void encodeStats(std::vector<std::uint8_t>& out, const SimulationStats& s) {
  putF64(out, s.wallSeconds);
  putU64(out, s.appliedGates);
  putU64(out, s.mxvCount);
  putU64(out, s.mxmCount);
  putU64(out, s.peakStateNodes);
  putU64(out, s.peakMatrixNodes);
  putU64(out, s.finalStateNodes);
  putF64(out, s.approxFidelity);
  putU64(out, s.approxRounds);
  putU64(out, s.degradationEvents);
  putU64(out, s.pressureFlushes);
  putU64(out, s.sequentialFallbackOps);
  putU64(out, s.pressureApproximations);
  putU64(out, s.resourceRecoveries);
  putU64(out, s.pipelinedBlocks);
  putU64(out, s.pipelineStalls);
  putU64(out, s.pipelineBowOuts);
  putU64(out, s.serialFallbackOps);
  putU64(out, s.migratedNodes);
  putU64(out, s.checkpointsTaken);
  putU64(out, s.resumedFromCheckpoint);
  putF64(out, s.builderBuildSeconds);
}

SimulationStats decodeStats(const std::uint8_t* data, std::size_t size,
                            std::size_t& offset) {
  Reader r{data, size, offset};
  SimulationStats s;
  s.wallSeconds = r.getF64();
  s.appliedGates = r.getU64();
  s.mxvCount = r.getU64();
  s.mxmCount = r.getU64();
  s.peakStateNodes = r.getU64();
  s.peakMatrixNodes = r.getU64();
  s.finalStateNodes = r.getU64();
  s.approxFidelity = r.getF64();
  s.approxRounds = r.getU64();
  s.degradationEvents = r.getU64();
  s.pressureFlushes = r.getU64();
  s.sequentialFallbackOps = r.getU64();
  s.pressureApproximations = r.getU64();
  s.resourceRecoveries = r.getU64();
  s.pipelinedBlocks = r.getU64();
  s.pipelineStalls = r.getU64();
  s.pipelineBowOuts = r.getU64();
  s.serialFallbackOps = r.getU64();
  s.migratedNodes = r.getU64();
  s.checkpointsTaken = r.getU64();
  s.resumedFromCheckpoint = r.getU64();
  s.builderBuildSeconds = r.getF64();
  offset = r.off;
  return s;
}

std::vector<std::uint8_t> Checkpoint::serialize() const {
  std::vector<std::uint8_t> payload;
  putU64(payload, circuitHash);
  putU64(payload, strategyHash);
  putU64(payload, seed);
  putU64(payload, nextOpIndex);
  putString(payload, rngState);
  putBits(payload, classicalBits);
  putBlob(payload, dd::serializeDD(state));
  putU32(payload, accPending ? 1U : 0U);
  if (accPending) {
    putBlob(payload, dd::serializeDD(acc));
  }
  putU64(payload, accCount);
  putU64(payload, accGates);
  putU64(payload, sequentialCooldown);
  putU32(payload, pipelineDisabled ? 1U : 0U);
  encodeStats(payload, stats);

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  putU32(out, kMagic);
  putU32(out, kVersion);
  putU64(out, payload.size());
  putU64(out, dd::fnv1a(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Checkpoint Checkpoint::deserialize(const std::uint8_t* data,
                                   std::size_t size) {
  if (data == nullptr || size < kHeaderSize) {
    throw CheckpointError("checkpoint blob shorter than its header");
  }
  Reader header{data, size};
  if (header.getU32() != kMagic) {
    throw CheckpointError("bad magic (not a checkpoint blob)");
  }
  if (const std::uint32_t version = header.getU32(); version != kVersion) {
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version));
  }
  const std::uint64_t payloadLen = header.getU64();
  const std::uint64_t checksum = header.getU64();
  if (size != kHeaderSize + payloadLen) {
    throw CheckpointError("checkpoint blob truncated (" +
                          std::to_string(size) + " bytes, expected " +
                          std::to_string(kHeaderSize + payloadLen) + ")");
  }
  const std::uint8_t* payload = data + kHeaderSize;
  if (dd::fnv1a(payload, payloadLen) != checksum) {
    throw CheckpointError("checkpoint payload checksum mismatch");
  }

  Reader r{payload, payloadLen};
  Checkpoint ck;
  ck.circuitHash = r.getU64();
  ck.strategyHash = r.getU64();
  ck.seed = r.getU64();
  ck.nextOpIndex = r.getU64();
  ck.rngState = r.getString();
  ck.classicalBits = r.getBits();
  try {
    ck.state = dd::deserializeVectorDD(r.getBlob());
    ck.accPending = r.getU32() != 0;
    if (ck.accPending) {
      ck.acc = dd::deserializeMatrixDD(r.getBlob());
    }
  } catch (const dd::MigrationError& e) {
    // The outer checksum passed but a nested DD blob is malformed —
    // surface it as a checkpoint problem, the caller's failure domain.
    throw CheckpointError(std::string("embedded DD rejected: ") + e.what());
  }
  ck.accCount = r.getU64();
  ck.accGates = r.getU64();
  ck.sequentialCooldown = r.getU64();
  ck.pipelineDisabled = r.getU32() != 0;
  std::size_t off = r.off;
  ck.stats = decodeStats(payload, payloadLen, off);
  return ck;
}

Checkpoint Checkpoint::deserialize(const std::vector<std::uint8_t>& bytes) {
  return deserialize(bytes.data(), bytes.size());
}

}  // namespace ddsim::sim
