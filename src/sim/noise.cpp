#include "sim/noise.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

namespace ddsim::sim {

using dd::ComplexValue;
using dd::GateMatrix;

NoiseChannel::NoiseChannel(std::string name,
                           std::vector<GateMatrix> krausOperators)
    : name_(std::move(name)), kraus_(std::move(krausOperators)) {
  if (kraus_.empty()) {
    throw std::invalid_argument("NoiseChannel: needs at least one Kraus operator");
  }
}

bool NoiseChannel::isTracePreserving(double tol) const {
  // sum_k K^dagger K accumulated entry-wise on 2x2 matrices.
  std::complex<double> sum[4] = {};
  for (const auto& k : kraus_) {
    const std::complex<double> m[4] = {k[0].toStd(), k[1].toStd(), k[2].toStd(),
                                       k[3].toStd()};
    // (K^dagger K)_{ij} = conj(K_{ki}) K_{kj}
    sum[0] += std::conj(m[0]) * m[0] + std::conj(m[2]) * m[2];
    sum[1] += std::conj(m[0]) * m[1] + std::conj(m[2]) * m[3];
    sum[2] += std::conj(m[1]) * m[0] + std::conj(m[3]) * m[2];
    sum[3] += std::conj(m[1]) * m[1] + std::conj(m[3]) * m[3];
  }
  return std::abs(sum[0] - 1.0) <= tol && std::abs(sum[1]) <= tol &&
         std::abs(sum[2]) <= tol && std::abs(sum[3] - 1.0) <= tol;
}

namespace {
void checkProbability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(what) +
                                ": parameter must be in [0, 1]");
  }
}
}  // namespace

NoiseChannel NoiseChannel::depolarizing(double p) {
  checkProbability(p, "depolarizing");
  const double s0 = std::sqrt(1.0 - p);
  const double s1 = std::sqrt(p / 3.0);
  return {"depolarizing(" + std::to_string(p) + ")",
          {
              GateMatrix{ComplexValue{s0, 0}, {0, 0}, {0, 0}, {s0, 0}},
              GateMatrix{ComplexValue{0, 0}, {s1, 0}, {s1, 0}, {0, 0}},   // X
              GateMatrix{ComplexValue{0, 0}, {0, -s1}, {0, s1}, {0, 0}},  // Y
              GateMatrix{ComplexValue{s1, 0}, {0, 0}, {0, 0}, {-s1, 0}},  // Z
          }};
}

NoiseChannel NoiseChannel::bitFlip(double p) {
  checkProbability(p, "bitFlip");
  const double s0 = std::sqrt(1.0 - p);
  const double s1 = std::sqrt(p);
  return {"bitflip(" + std::to_string(p) + ")",
          {
              GateMatrix{ComplexValue{s0, 0}, {0, 0}, {0, 0}, {s0, 0}},
              GateMatrix{ComplexValue{0, 0}, {s1, 0}, {s1, 0}, {0, 0}},
          }};
}

NoiseChannel NoiseChannel::phaseFlip(double p) {
  checkProbability(p, "phaseFlip");
  const double s0 = std::sqrt(1.0 - p);
  const double s1 = std::sqrt(p);
  return {"phaseflip(" + std::to_string(p) + ")",
          {
              GateMatrix{ComplexValue{s0, 0}, {0, 0}, {0, 0}, {s0, 0}},
              GateMatrix{ComplexValue{s1, 0}, {0, 0}, {0, 0}, {-s1, 0}},
          }};
}

NoiseChannel NoiseChannel::amplitudeDamping(double gamma) {
  checkProbability(gamma, "amplitudeDamping");
  return {"ampdamp(" + std::to_string(gamma) + ")",
          {
              GateMatrix{ComplexValue{1, 0},
                         {0, 0},
                         {0, 0},
                         {std::sqrt(1.0 - gamma), 0}},
              GateMatrix{ComplexValue{0, 0}, {std::sqrt(gamma), 0}, {0, 0}, {0, 0}},
          }};
}

NoiseChannel NoiseChannel::phaseDamping(double lambda) {
  checkProbability(lambda, "phaseDamping");
  return {"phasedamp(" + std::to_string(lambda) + ")",
          {
              GateMatrix{ComplexValue{1, 0},
                         {0, 0},
                         {0, 0},
                         {std::sqrt(1.0 - lambda), 0}},
              GateMatrix{ComplexValue{0, 0},
                         {0, 0},
                         {0, 0},
                         {std::sqrt(lambda), 0}},
          }};
}

}  // namespace ddsim::sim
