/// \file stochastic.hpp
/// \brief Stochastic (quantum-trajectory) noise simulation on vector DDs.
///
/// The Monte-Carlo alternative to the density-matrix engine: each
/// trajectory keeps a pure state; after every gate, for every touched
/// qubit and channel one Kraus operator is sampled with probability
/// ||K|psi>||^2 and applied (renormalized). Averaging trajectories
/// converges to the density-matrix result, at vector-DD cost per run —
/// the classic memory/samples trade-off.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ir/circuit.hpp"
#include "sim/noise.hpp"
#include "sim/stats.hpp"

namespace ddsim::sim {

struct StochasticResult {
  /// Histogram over full measurements of the final state, one entry per
  /// trajectory (bit i of the key = qubit i).
  std::map<std::uint64_t, std::size_t> counts;
  /// Mean probability of reading |1>, per qubit, across trajectories.
  std::vector<double> meanProbabilityOfOne;
  std::size_t trajectories = 0;
  double wallSeconds = 0.0;
};

/// Run \p trajectories independent noisy trajectories of \p circuit.
/// Classical bits and mid-circuit measurements are re-sampled per
/// trajectory. Channels are applied after every gate to each touched qubit
/// (same convention as DensityMatrixSimulator).
StochasticResult simulateStochastic(const ir::Circuit& circuit,
                                    const NoiseModel& noise,
                                    std::size_t trajectories,
                                    std::uint64_t seed = 0);

}  // namespace ddsim::sim
