/// \file stats.hpp
/// \brief Strategy configuration and instrumentation for DD-based simulation.

#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dd/package.hpp"

namespace ddsim::sim {

/// The scheduling strategies of the paper, plus an adaptive extension.
enum class Schedule {
  /// One matrix-vector multiplication per gate (Eq. 1) — the state of the
  /// art the paper improves on.
  Sequential,
  /// Combine k consecutive operations by matrix-matrix multiplication, then
  /// apply the product to the state (Section IV-A, strategy *k-operations*).
  KOperations,
  /// Combine operations until the product DD exceeds s_max nodes, then apply
  /// it (Section IV-A, strategy *max-size*).
  MaxSize,
  /// Extension beyond the paper: combine while the product DD stays below
  /// adaptiveRatio x (current state DD size). This operationalizes the
  /// Section III observation directly — matrix-matrix multiplication pays
  /// off exactly while the operand matrices are small *relative to the
  /// state* — without a hand-tuned absolute parameter.
  Adaptive,
};

[[nodiscard]] std::string scheduleName(Schedule s);

struct StrategyConfig {
  Schedule schedule = Schedule::Sequential;
  /// Number of operations to combine (KOperations).
  std::size_t k = 4;
  /// Node limit for the accumulated product DD (MaxSize).
  std::size_t maxSize = 4096;
  /// Relative product-size budget for Schedule::Adaptive.
  double adaptiveRatio = 0.25;
  /// *DD-repeating* (Section IV-B): build the matrix of each repeated block
  /// once and re-apply it, instead of streaming the block's gates.
  bool reuseRepeatedBlocks = false;
  /// Record a per-step trace (see SimulationTrace).
  bool collectTrace = false;
  /// Abort the run with SimulationTimeout once this much wall time has
  /// elapsed (0 = no limit). Mirrors the CPU-time budget of the paper's
  /// evaluation (">7 200.00" entries in Table II).
  double timeLimitSeconds = 0.0;
  /// Approximate-while-simulating: after every state update, if the state DD
  /// exceeds approximateThreshold nodes, prune it down with a per-step
  /// fidelity target of approximateFidelity (see dd::approximate). 1.0 (the
  /// default) disables approximation. The product of the per-step fidelities
  /// is reported in SimulationStats::approxFidelity — a lower bound on the
  /// fidelity of the final state against the exact run.
  double approximateFidelity = 1.0;
  std::size_t approximateThreshold = 512;
  /// Resource budget: abort-or-degrade once the package holds this many
  /// live DD nodes (0 = unlimited; the DDSIM_NODE_BUDGET environment
  /// variable supplies a default when unset). Soft pressure starts at
  /// softBudgetFraction x nodeBudget and triggers the degradation ladder
  /// (emergency collection, accumulator flush, sequential fallback,
  /// forced approximation); only the hard limit aborts.
  std::size_t nodeBudget = 0;
  /// Resource budget in bytes across node chunks and unique-table buckets
  /// (0 = unlimited).
  std::size_t byteBudget = 0;
  /// Fraction of the hard budget at which soft pressure fires, in (0, 1].
  double softBudgetFraction = 0.75;
  /// After a pressure event the simulator stays in sequential (MxV-only)
  /// mode for this many operations before re-enabling combination.
  std::size_t degradeCooldownOps = 16;
  /// Pipelined block building: a dedicated builder thread combines the
  /// *next* block of gates (per the configured schedule) in its own private
  /// dd::Package while the main thread applies the *previous* block to the
  /// state, handing blocks over through a bounded queue via cross-package DD
  /// migration (dd/migration.hpp). Deterministic: measurement outcomes are
  /// bit-identical to the serial path for the same seed. No effect under
  /// Schedule::Sequential (there is nothing to combine ahead).
  bool pipeline = false;
  /// Pipeline fan-out: capacity of the ordered builder-to-main reorder
  /// buffer (how far ahead builders may run, in blocks) *and* the number of
  /// concurrent builder threads (capped at BlockBuilder::kMaxBuilders).
  /// With the KOperations schedule, block boundaries are static, so N
  /// builders construct N different future blocks at once; dynamic
  /// schedules (MaxSize/Adaptive) relay instead. Also the feedback lag of
  /// the Adaptive schedule under pipelining: block i is sized against the
  /// state size after block i - pipelineDepth. In [1, 1024].
  std::size_t pipelineDepth = 2;
  /// Worker threads for the *main* package's DD kernels (multiply/add
  /// recursions fork over edge quadrants; the unique/complex/compute tables
  /// take their lock-striped concurrent paths). 1 = fully serial engine.
  /// Observation note: parallel canonicalization may pick a different
  /// last-ulp representative for weights that are equal within tolerance
  /// (see dd::Package::setWorkers); measurement outcomes are unaffected.
  /// In [1, 256]; excluded from contentHash like the pipeline knobs.
  std::size_t threads = 1;
  /// Durability: snapshot simulation progress into a Checkpoint (see
  /// sim/checkpoint.hpp) every this many top-level circuit operations and
  /// hand it to the sink installed via CircuitSimulator::setCheckpointSink.
  /// 0 (the default) disables checkpointing. A resumed run is required to
  /// produce bit-identical measurement outcomes to an uninterrupted one,
  /// so the knob is excluded from contentHash like the other
  /// outcome-neutral knobs (pipeline, threads, collectTrace).
  std::size_t checkpointIntervalOps = 0;

  [[nodiscard]] static StrategyConfig sequential() { return {}; }
  [[nodiscard]] static StrategyConfig kOperations(std::size_t k) {
    StrategyConfig c;
    c.schedule = Schedule::KOperations;
    c.k = k;
    return c;
  }
  [[nodiscard]] static StrategyConfig maxSizeStrategy(std::size_t sMax) {
    StrategyConfig c;
    c.schedule = Schedule::MaxSize;
    c.maxSize = sMax;
    return c;
  }
  [[nodiscard]] static StrategyConfig adaptive(double ratio = 0.25) {
    StrategyConfig c;
    c.schedule = Schedule::Adaptive;
    c.adaptiveRatio = ratio;
    return c;
  }

  /// Reject malformed configurations with std::invalid_argument. Checked
  /// unconditionally (a k of 0 is invalid even under Schedule::Sequential):
  /// k >= 1, maxSize > 0, adaptiveRatio > 0 and finite, a non-negative
  /// finite time limit, approximateFidelity in (0, 1], softBudgetFraction
  /// in (0, 1]. CircuitSimulator calls this at construction so a bad config
  /// fails fast instead of silently misbehaving mid-run.
  void validate() const;

  /// Stable 64-bit content hash over every field that influences the
  /// simulation outcome or its statistics — part of the serve-layer result
  /// cache key alongside ir::contentHash(circuit) and the seed.
  /// Observation-only knobs (collectTrace) are excluded so that otherwise
  /// identical submissions coalesce regardless of tracing.
  [[nodiscard]] std::uint64_t contentHash() const noexcept;

  [[nodiscard]] std::string toString() const;
};

/// What happened in one engine step (for the Section III style analysis of
/// "how DDs perform during simulation").
enum class StepKind {
  ApplyToState,   ///< matrix-vector multiplication (simulation step)
  CombineMatrix,  ///< matrix-matrix multiplication into the accumulator
  Measure,        ///< measurement / reset collapse
};

struct StepRecord {
  std::size_t index = 0;  ///< running step number
  StepKind kind = StepKind::ApplyToState;
  std::size_t stateNodes = 0;   ///< state DD size after the step
  std::size_t matrixNodes = 0;  ///< accumulator / applied matrix DD size
  double seconds = 0.0;         ///< wall time consumed by the step
};

/// Per-step trace of a simulation run (enabled via
/// StrategyConfig::collectTrace).
struct SimulationTrace {
  std::vector<StepRecord> steps;

  /// CSV with header: index,kind,state_nodes,matrix_nodes,seconds
  void writeCsv(std::ostream& os) const;
};

struct SimulationStats {
  double wallSeconds = 0.0;
  /// Elementary unitary gates consumed (compound blocks flattened).
  std::uint64_t appliedGates = 0;
  /// Top-level matrix-vector products (simulation steps).
  std::uint64_t mxvCount = 0;
  /// Top-level matrix-matrix products spent combining operations.
  std::uint64_t mxmCount = 0;
  std::size_t peakStateNodes = 0;
  std::size_t peakMatrixNodes = 0;
  std::size_t finalStateNodes = 0;
  /// Product of per-step approximation fidelities (1.0 when approximation
  /// is disabled or never triggered).
  double approxFidelity = 1.0;
  /// Number of approximation passes that actually pruned something.
  std::uint64_t approxRounds = 0;
  /// Times the degradation ladder engaged (any rung).
  std::uint64_t degradationEvents = 0;
  /// Accumulator flushes forced by resource pressure rather than the
  /// schedule's own combine criterion.
  std::uint64_t pressureFlushes = 0;
  /// Operations applied sequentially (MxV) while a pressure cooldown
  /// suppressed matrix-matrix combination.
  std::uint64_t sequentialFallbackOps = 0;
  /// Approximation rounds forced by resource pressure (also counted in
  /// approxRounds).
  std::uint64_t pressureApproximations = 0;
  /// Hard-rung ResourceExhausted throws the ladder absorbed (emergency
  /// collection + retry succeeded).
  std::uint64_t resourceRecoveries = 0;
  /// Blocks built by the pipeline's builder thread and applied to the state.
  std::uint64_t pipelinedBlocks = 0;
  /// Times the main thread waited on an empty handoff queue (the builder
  /// was the bottleneck at that moment).
  std::uint64_t pipelineStalls = 0;
  /// Times a builder thread bowed out (resource pressure / failure in its
  /// private package) and the run continued on the serial path.
  std::uint64_t pipelineBowOuts = 0;
  /// Operations replayed on the serial path after a pipeline degrade
  /// (builder bow-out or main-package pressure). Counted separately from
  /// pipelined work so a degraded run is distinguishable in the stats.
  std::uint64_t serialFallbackOps = 0;
  /// DD nodes rebuilt in the main package by cross-package imports
  /// (pipeline handoffs and shared-block-cache hits).
  std::uint64_t migratedNodes = 0;
  /// Progress snapshots handed to the checkpoint sink during this run.
  std::uint64_t checkpointsTaken = 0;
  /// 1 when this run was resumed from a checkpoint rather than started
  /// from |0...0> (counters above then continue from the checkpoint's).
  std::uint64_t resumedFromCheckpoint = 0;
  /// Wall time the builder thread spent constructing blocks — time the
  /// serial path would have added to the critical path. The overlap
  /// potential of a run is builderBuildSeconds / wallSeconds.
  double builderBuildSeconds = 0.0;
  /// Snapshot of the DD package counters at the end of the run.
  dd::PackageStats dd;
  /// Snapshot of the memoization-layer counters at the end of the run
  /// (multiply-cache hit rate, GC retention, ...).
  dd::CacheStats cache;

  [[nodiscard]] std::string toString() const;
};

/// Snapshot of how far a run got before it was cut short. Both
/// SimulationTimeout and sim::ResourceExhausted carry one, so a caller can
/// report progress (and the degradation attempts made) instead of losing
/// everything to the exception.
struct PartialResult {
  /// Elementary gates applied to the state before the abort.
  std::uint64_t opsCompleted = 0;
  std::size_t peakLiveNodes = 0;
  double elapsedSeconds = 0.0;
  /// Statistics as of the abort (wallSeconds/dd/cache snapshots included).
  SimulationStats stats;
};

/// Thrown by CircuitSimulator::run when StrategyConfig::timeLimitSeconds is
/// exceeded.
class SimulationTimeout : public std::runtime_error {
 public:
  explicit SimulationTimeout(double limitSeconds, PartialResult partial = {})
      : std::runtime_error("simulation exceeded the time limit of " +
                           std::to_string(limitSeconds) + " s"),
        limit_(limitSeconds),
        partial_(std::move(partial)) {}
  [[nodiscard]] double limitSeconds() const noexcept { return limit_; }
  /// Progress made before the limit hit.
  [[nodiscard]] const PartialResult& partial() const noexcept {
    return partial_;
  }

 private:
  double limit_;
  PartialResult partial_;
};

/// Thrown by CircuitSimulator::run when a cancellation hook installed via
/// CircuitSimulator::setCancelCheck reported true. Cancellation is
/// cooperative: the hook is polled between operations and — through the
/// package abort-poll machinery — inside long-running multiplications, so
/// even a single runaway MxM unwinds promptly.
class SimulationCancelled : public std::runtime_error {
 public:
  explicit SimulationCancelled(PartialResult partial = {})
      : std::runtime_error("simulation cancelled"),
        partial_(std::move(partial)) {}
  /// Progress made before the cancellation was honoured.
  [[nodiscard]] const PartialResult& partial() const noexcept {
    return partial_;
  }

 private:
  PartialResult partial_;
};

/// Thrown by CircuitSimulator::run when the resource budget is exhausted and
/// every rung of the degradation ladder failed to bring usage back under it.
/// Wraps the dd-layer diagnosis (live nodes, budget, operation in flight)
/// and adds the simulation progress snapshot.
class ResourceExhausted : public dd::ResourceExhausted {
 public:
  ResourceExhausted(const dd::ResourceExhausted& cause, PartialResult partial)
      : dd::ResourceExhausted(cause), partial_(std::move(partial)) {}
  /// Progress made before the budget ran out.
  [[nodiscard]] const PartialResult& partial() const noexcept {
    return partial_;
  }

 private:
  PartialResult partial_;
};

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ddsim::sim
