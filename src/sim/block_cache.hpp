/// \file block_cache.hpp
/// \brief Interface for sharing prebuilt DD-repeating block matrices across
///        simulations.
///
/// A DD-repeating compound block costs one expensive matrix construction
/// per simulation, even though every worker in a batch builds the exact
/// same matrix. Cross-package migration (dd/migration.hpp) makes the built
/// block portable, so it can be stashed once in its flat form and imported
/// into each worker's private package — canonically rebuilt, never sharing
/// a pointer.
///
/// The interface lives in sim/ (the consumer) while the serving layer
/// provides the LRU implementation, keeping sim/ free of a dependency on
/// serve/. Implementations must be thread-safe: workers look up and insert
/// concurrently. A lookup miss is always safe — the simulator simply builds
/// the block itself (and inserts the result), so a cache may drop entries
/// at any time.

#pragma once

#include <cstdint>
#include <memory>

#include "dd/migration.hpp"

namespace ddsim::sim {

class SharedBlockCache {
 public:
  virtual ~SharedBlockCache() = default;

  /// The flat block for \p key, or nullptr on a miss. Entries are
  /// immutable and shared — the caller imports, never mutates.
  [[nodiscard]] virtual std::shared_ptr<const dd::FlatMatrixDD> lookup(
      std::uint64_t key) = 0;

  /// Publish a freshly built block. Duplicate inserts for the same key are
  /// expected under concurrency; either copy may win.
  virtual void insert(std::uint64_t key,
                      std::shared_ptr<const dd::FlatMatrixDD> block) = 0;
};

}  // namespace ddsim::sim
