/// \file density.hpp
/// \brief Density-matrix simulation on decision diagrams.
///
/// Where the paper's vector simulation *chooses* between matrix-vector and
/// matrix-matrix multiplication, (noisy) density-matrix simulation consists
/// of matrix-matrix products only: every gate is rho -> U rho U^dagger and
/// every noise channel is rho -> sum_k K_k rho K_k^dagger. The same DD
/// package carries the whole computation; mixed states are matrix DDs like
/// any operator.

#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "dd/package.hpp"
#include "ir/circuit.hpp"
#include "sim/noise.hpp"
#include "sim/stats.hpp"

namespace ddsim::sim {

struct DensityResult {
  /// Final density matrix (rooted in the simulator's package).
  dd::MEdge rho{};
  std::vector<bool> classicalBits;
  double wallSeconds = 0.0;
  std::size_t peakNodes = 0;
  std::size_t finalNodes = 0;
};

class DensityMatrixSimulator {
 public:
  /// The circuit is referenced, not copied. Noise channels are applied after
  /// every gate to each touched qubit.
  DensityMatrixSimulator(const ir::Circuit& circuit, NoiseModel noise = {},
                         std::uint64_t seed = 0);

  /// Simulate the whole circuit; callable once.
  DensityResult run();

  [[nodiscard]] dd::Package& package() noexcept { return *pkg_; }

  // --- state queries on the final density matrix -------------------------
  /// Tr(rho) — 1 for a valid state (diagnostic).
  double trace(const dd::MEdge& rho);
  /// Tr(rho^2) — 1 for pure states, < 1 for mixed ones.
  double purity(const dd::MEdge& rho);
  /// P(qubit q = 1) = Tr(P1_q rho).
  double probabilityOfOne(const dd::MEdge& rho, dd::Qubit q);
  /// Probability of the computational basis state |bits><bits|.
  double basisProbability(const dd::MEdge& rho, std::uint64_t bits);
  /// Tr(observable * rho).
  dd::ComplexValue expectation(const dd::MEdge& rho, const dd::MEdge& observable);

 private:
  void processOps(const std::vector<std::unique_ptr<ir::Operation>>& ops);
  void applyConjugation(const dd::MEdge& u);
  void applyChannels(const ir::Operation& op);
  void applyChannelOnQubit(const NoiseChannel& channel, dd::Qubit q);
  int measureCollapsing(dd::Qubit q);
  void replaceRho(const dd::MEdge& next);
  dd::MEdge buildOpDD(const ir::Operation& op);

  const ir::Circuit& circuit_;
  NoiseModel noise_;
  std::unique_ptr<dd::Package> pkg_;
  std::mt19937_64 rng_;
  dd::MEdge rho_{};
  std::vector<bool> clbits_;
  std::size_t peakNodes_ = 0;
  bool ran_ = false;
};

}  // namespace ddsim::sim
