/// \file simulator.hpp
/// \brief DD-based circuit simulator with configurable operation-combination
///        strategies.
///
/// The simulator consumes an ir::Circuit and maintains the state as a vector
/// DD. Depending on the StrategyConfig it either applies every gate matrix
/// directly (Eq. 1 of the paper), or first combines operations by
/// matrix-matrix multiplication (*k-operations* / *max-size*, Section IV-A).
/// Repeated compound blocks can be combined once and re-applied
/// (*DD-repeating*), and oracle operations are turned into permutation DDs
/// directly (*DD-construct*), both per Section IV-B.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "dd/fault_injection.hpp"
#include "dd/package.hpp"
#include "ir/circuit.hpp"
#include "sim/block_cache.hpp"
#include "sim/checkpoint.hpp"
#include "sim/stats.hpp"

namespace ddsim::sim {

struct SimulationResult {
  /// Final state (rooted in the simulator's package; valid as long as the
  /// simulator is alive).
  dd::VEdge finalState{};
  std::vector<bool> classicalBits;
  SimulationStats stats;
  /// Per-step record (only populated with StrategyConfig::collectTrace).
  SimulationTrace trace;
};

class CircuitSimulator {
 public:
  /// The circuit is referenced, not copied; it must outlive run().
  /// The config is validated (StrategyConfig::validate) — malformed values
  /// throw std::invalid_argument here rather than misbehaving mid-run.
  ///
  /// Seeding and reproducibility: the simulator owns a private
  /// std::mt19937_64 engine constructed directly from \p seed, and nothing
  /// else consumes randomness, so the same (circuit, config, seed) triple
  /// produces bit-identical classical outcomes on every run — regardless of
  /// which thread runs it or what executes concurrently. Batch drivers that
  /// need several decorrelated streams from one base seed must not use
  /// base+i (adjacent mt19937_64 seeds correlate); derive stream i as
  /// deriveSeed(base, i) instead — that is the seed-derivation rule the
  /// serving layer applies when a manifest entry fans out into repeats.
  CircuitSimulator(const ir::Circuit& circuit, StrategyConfig config = {},
                   std::uint64_t seed = 0);

  /// Simulate the whole circuit. May be called once per simulator.
  /// Throws SimulationTimeout if StrategyConfig::timeLimitSeconds is set
  /// and exceeded, and sim::ResourceExhausted if a node/byte budget is set
  /// and the degradation ladder (emergency collection, pressure flush,
  /// sequential fallback, forced approximation) could not keep the run
  /// under it. Both carry a PartialResult progress snapshot.
  SimulationResult run();

  /// Install a cooperative cancellation hook, polled between operations and
  /// (via the package abort-poll) inside long multiplications. When it
  /// returns true, run() aborts with SimulationCancelled carrying a
  /// PartialResult. Must be called before run(); the hook is invoked
  /// frequently, so it should be cheap (typically an atomic flag load).
  /// With StrategyConfig::pipeline enabled the hook is additionally polled
  /// from the builder thread, so it must be thread-safe — an atomic load,
  /// like the hooks the serving layer installs.
  void setCancelCheck(std::function<bool()> check) {
    cancelCheck_ = std::move(check);
  }

  /// Arm a fault injector on the pipeline's *builder* package (the main
  /// package keeps its own via package().setFaultInjector()). Lets tests
  /// fail an allocation inside the builder thread deterministically. The
  /// injector must outlive run(); ignored when pipelining is off.
  void setBuilderFaultInjector(dd::FaultInjector* injector) noexcept {
    builderInjector_ = injector;
  }

  /// Install a checkpoint sink, called with a fresh progress snapshot every
  /// StrategyConfig::checkpointIntervalOps top-level operations (at
  /// quiescent block boundaries only — never mid-multiplication, never
  /// inside a compound body). The sink runs on the simulating thread; keep
  /// it cheap (typically Checkpoint::serialize into a buffer the caller
  /// owns). Must be installed before run(). No-op while
  /// checkpointIntervalOps == 0.
  void setCheckpointSink(std::function<void(const Checkpoint&)> sink) {
    ckptSink_ = std::move(sink);
  }

  /// Resume from a checkpoint instead of |0...0>: run() imports the state
  /// and accumulator, restores the RNG stream position, classical bits and
  /// carried statistics, and continues at Checkpoint::nextOpIndex.
  /// Measurement outcomes of interrupted-then-resumed runs are
  /// bit-identical to uninterrupted ones (enforced in
  /// tests/test_checkpoint.cpp across schedules x threads x pipeline
  /// depths). Throws CheckpointError when the checkpoint's (circuit,
  /// strategy, seed) identity triple does not match this simulator's, or
  /// when the embedded RNG state is malformed. Must be called before
  /// run().
  void resumeFrom(const Checkpoint& checkpoint);

  /// Share prebuilt DD-repeating block matrices across simulations (see
  /// sim/block_cache.hpp). On a hit the block is imported instead of
  /// rebuilt; on a miss the built block is exported and published. Only
  /// consulted for DD-repeating compound blocks
  /// (StrategyConfig::reuseRepeatedBlocks).
  void setSharedBlockCache(std::shared_ptr<SharedBlockCache> cache) {
    blockCache_ = std::move(cache);
  }

  /// The DD package holding the final state (for amplitude queries etc.).
  [[nodiscard]] dd::Package& package() noexcept { return *pkg_; }

 private:
  /// Top-level dispatch: with pipelining enabled, splits the circuit into
  /// maximal runs of pipelineable unitaries (see collectRun) and hands long
  /// runs to runPipelined; everything else streams through processOps.
  void processCircuit();
  void processOps(const std::vector<std::unique_ptr<ir::Operation>>& ops);
  void processOp(const ir::Operation& op);
  /// Collect the maximal pipelineable run starting at ops[begin]:
  /// Standard/Oracle gates, classic-controlled gates resolved against the
  /// (final, since runs never span measurements) classical bits, and pure-
  /// unitary compounds flattened by repetition. Returns the index of the
  /// first operation past the run. Measure/Reset/Barrier and DD-repeating
  /// or non-unitary compounds end a run.
  std::size_t collectRun(
      const std::vector<std::unique_ptr<ir::Operation>>& ops,
      std::size_t begin, std::vector<const ir::Operation*>& out);
  /// Execute one run on the pipelined engine: spawn a BlockBuilder, apply
  /// handed-over blocks as they arrive, and fall back to the serial path —
  /// for the rest of the simulation — on builder bow-out or main-package
  /// resource pressure.
  void runPipelined(const std::vector<const ir::Operation*>& run);
  void handleUnitary(const ir::Operation& op);
  void handleCompound(const ir::CompoundOperation& comp);
  dd::MEdge buildOpDD(const ir::Operation& op);
  dd::MEdge buildBlockDD(const std::vector<std::unique_ptr<ir::Operation>>& body);
  void enqueue(const dd::MEdge& gateDD, std::size_t gateCount);
  void applyToState(const dd::MEdge& m);
  void flush();
  void afterStep();
  /// Degradation ladder helpers (see stats.hpp for the rung accounting).
  void enterCooldown();
  void forcedApproximation();
  [[nodiscard]] bool pressureObserved();
  [[nodiscard]] PartialResult makePartial();
  /// Replace |0...0> with the checkpointed state: import the state DD (and
  /// pending accumulator), restore RNG/classical/ladder context, and move
  /// the op cursor to Checkpoint::nextOpIndex.
  void applyResume();
  /// Count \p opsDelta top-level operations toward the checkpoint interval
  /// and snapshot into the sink when it fills. \p nextOp is the index of
  /// the first operation a resumed run would execute.
  void maybeCheckpoint(std::size_t nextOp, std::size_t opsDelta);
  void takeCheckpoint(std::size_t nextOp);
  [[nodiscard]] std::uint64_t circuitIdentityHash();
  [[nodiscard]] std::uint64_t strategyIdentityHash() const;

  const ir::Circuit& circuit_;
  StrategyConfig config_;
  std::unique_ptr<dd::Package> pkg_;
  std::mt19937_64 rng_;

  void recordStep(StepKind kind, std::size_t matrixNodes, double seconds);

  dd::VEdge state_{};
  dd::MEdge acc_{};      ///< accumulated operation product (combining modes)
  bool accPending_ = false;
  std::size_t accCount_ = 0;
  /// Gates sitting in the accumulator, i.e. counted in appliedGates but not
  /// yet applied to the state (PartialResult::opsCompleted excludes them).
  std::uint64_t accGates_ = 0;
  std::size_t lastStateSize_ = 0;
  /// Remaining operations to apply sequentially after a pressure event
  /// before matrix-matrix combination is re-enabled.
  std::size_t sequentialCooldown_ = 0;
  /// Set by the governor's pressure callback (possibly deep inside a
  /// multiplication, and — with threads > 1 — from a kernel worker
  /// thread); consumed at the next quiescent point.
  std::atomic<bool> pressureSignaled_{false};
  std::function<bool()> cancelCheck_;
  Timer runTimer_;

  /// Gate-DD memoization: circuits apply the same ir::Operation objects
  /// over and over (every Grover iteration re-walks the same compound
  /// body), so the lowered matrix DD is cached per operation identity. The
  /// cached edges are rooted in the package, which also keeps the
  /// corresponding multiply compute-table entries revalidatable across
  /// garbage collections.
  std::unordered_map<const ir::Operation*, dd::MEdge> gateCache_;

  std::vector<bool> clbits_;
  SimulationStats stats_;
  SimulationTrace trace_;
  bool ran_ = false;

  /// Latched once the pipeline degrades (builder bow-out or main-package
  /// pressure): the rest of the run stays on the serial path.
  bool pipelineDisabled_ = false;
  dd::FaultInjector* builderInjector_ = nullptr;
  std::shared_ptr<SharedBlockCache> blockCache_;

  /// Durability (see sim/checkpoint.hpp): the identity seed this simulator
  /// was constructed with, the lazily computed circuit content hash, the
  /// installed sink, the pending resume snapshot, the op cursor run()
  /// starts at (nonzero only when resuming), and the interval counter.
  std::uint64_t seed_;
  std::optional<std::uint64_t> circuitHash_;
  std::function<void(const Checkpoint&)> ckptSink_;
  std::optional<Checkpoint> resume_;
  std::size_t startOpIndex_ = 0;
  std::size_t opsSinceCkpt_ = 0;
};

/// Result of the one-shot helper below: no DD handle, since the backing
/// package dies with the temporary simulator.
struct DetachedResult {
  std::vector<bool> classicalBits;
  SimulationStats stats;
};

/// Convenience: simulate and return classical outcome plus statistics.
/// Deterministic under the same seeding rule as CircuitSimulator: equal
/// (circuit, config, seed) yields equal results run-to-run and across
/// concurrent callers (each call owns an isolated package and RNG).
DetachedResult simulate(const ir::Circuit& circuit, StrategyConfig config = {},
                        std::uint64_t seed = 0);

/// The seed-derivation rule for fanning one base seed out into independent
/// streams (job repeats, shot batches): stream \p stream of base \p base
/// uses SplitMix64(base XOR golden-ratio spaced stream index). Adjacent
/// streams are decorrelated — unlike base+i fed straight into mt19937_64 —
/// and the mapping is a stable part of the public contract, so manifests
/// that record (base, stream) reproduce bit-identical outcomes anywhere.
[[nodiscard]] std::uint64_t deriveSeed(std::uint64_t base,
                                       std::uint64_t stream) noexcept;

}  // namespace ddsim::sim
