#include "sim/pipeline.hpp"

#include <unordered_map>
#include <utility>

#include "dd/package.hpp"
#include "ir/operation.hpp"
#include "obs/trace.hpp"
#include "sim/build_dd.hpp"

namespace ddsim::sim {

// ------------------------------------------------------------- BlockQueue

bool BlockQueue::push(PipelineBlock&& blk) {
  std::unique_lock<std::mutex> lock(mutex_);
  notFull_.wait(lock,
                [this] { return aborted_ || queue_.size() < capacity_; });
  if (aborted_) {
    return false;
  }
  queue_.push_back(std::move(blk));
  notEmpty_.notify_one();
  return true;
}

BlockQueue::PopStatus BlockQueue::popFor(PipelineBlock& out,
                                         std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  notEmpty_.wait_for(lock, timeout,
                     [this] { return closed_ || !queue_.empty(); });
  if (!queue_.empty()) {
    out = std::move(queue_.front());
    queue_.pop_front();
    notFull_.notify_one();
    return PopStatus::Ok;
  }
  return closed_ ? PopStatus::Drained : PopStatus::TimedOut;
}

void BlockQueue::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  notEmpty_.notify_all();
}

void BlockQueue::abort() {
  const std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = true;
  queue_.clear();
  notFull_.notify_all();
  notEmpty_.notify_all();
}

std::size_t BlockQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

// ------------------------------------------------------------ BlockBuilder

BlockBuilder::BlockBuilder(const std::vector<const ir::Operation*>& run,
                           std::size_t numQubits, const StrategyConfig& config,
                           std::size_t initialStateNodes,
                           dd::FaultInjector* faultInjector,
                           std::function<bool()> externalAbort)
    : run_(run),
      numQubits_(numQubits),
      config_(config),
      initialStateNodes_(initialStateNodes),
      injector_(faultInjector),
      externalAbort_(std::move(externalAbort)),
      queue_(config.pipelineDepth),
      thread_([this] { threadMain(); }) {}

BlockBuilder::~BlockBuilder() { finish(); }

BlockQueue::PopStatus BlockBuilder::next(PipelineBlock& out,
                                         std::chrono::milliseconds timeout) {
  return queue_.popFor(out, timeout);
}

void BlockBuilder::onBlockApplied(std::size_t stateNodes) {
  const std::lock_guard<std::mutex> lock(fbMutex_);
  fbSizes_.push_back(stateNodes);
  fbCv_.notify_one();
}

void BlockBuilder::finish() {
  if (joined_) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  queue_.abort();
  {
    const std::lock_guard<std::mutex> lock(fbMutex_);
    fbCv_.notify_all();
  }
  thread_.join();
  joined_ = true;
}

bool BlockBuilder::waitStateFeedback(std::uint64_t blockIndex,
                                     std::size_t& nodes) {
  if (blockIndex == 0) {
    nodes = initialStateNodes_;
    return true;
  }
  std::unique_lock<std::mutex> lock(fbMutex_);
  fbCv_.wait(lock, [&] {
    return stopRequested() || fbSizes_.size() >= blockIndex;
  });
  if (fbSizes_.size() >= blockIndex) {
    nodes = fbSizes_[blockIndex - 1];
    return true;
  }
  return false;
}

void BlockBuilder::threadMain() {
  obs::nameCurrentThreadTrack("sim.builder");
  try {
    dd::Package pkg(numQubits_);
    // Same budget as the main package: a block the serial engine could not
    // have afforded must not be built ahead either.
    if (config_.nodeBudget > 0 || config_.byteBudget > 0) {
      pkg.governor().setBudget({config_.nodeBudget, config_.byteBudget,
                                config_.softBudgetFraction});
    }
    if (injector_ != nullptr) {
      pkg.setFaultInjector(injector_);
    }
    pkg.setAbortCheck([this] {
      return stopRequested() || (externalAbort_ && externalAbort_());
    });
    try {
      buildLoop(pkg);
    } catch (const dd::ResourceExhausted&) {
      // The builder package cannot afford the current block: bow out and
      // let the main thread continue serially from its first operation.
      // Blocks already pushed stay valid.
      bowedOut_ = true;
    } catch (const dd::ComputationAborted&) {
      if (!stopRequested()) {
        // External abort (time limit / cancellation). Bow out; the main
        // thread notices the same condition through its own polls and
        // unwinds with the proper exception.
        bowedOut_ = true;
      }
    }
    stats_.dd = pkg.stats();
    stats_.cache = pkg.cacheStats();
    // close() last: its mutex release orders every write above before the
    // consumer's post-Drained reads.
    queue_.close();
  } catch (...) {
    failure_ = std::current_exception();
    queue_.close();
  }
}

void BlockBuilder::buildLoop(dd::Package& pkg) {
  // Per-run gate-DD memoization, mirroring the simulator's gateCache_: runs
  // revisit the same ir::Operation objects (flattened compound
  // repetitions), and rooting the cached edges keeps the corresponding
  // multiply compute-table entries revalidatable across collections.
  std::unordered_map<const ir::Operation*, dd::MEdge> gateCache;
  const auto buildGate = [&](const ir::Operation& op) {
    const auto it = gateCache.find(&op);
    if (it != gateCache.end()) {
      return it->second;
    }
    const dd::MEdge m = buildOperationDD(pkg, op);
    pkg.incRef(m);
    gateCache.emplace(&op, m);
    return m;
  };

  std::size_t i = 0;
  std::uint64_t blockIndex = 0;
  while (i < run_.size()) {
    if (stopRequested()) {
      return;
    }
    resumeIndex_ = i;
    const Timer blockTimer;
    dd::MEdge acc{};
    bool pending = false;
    std::size_t count = 0;
    std::uint64_t gates = 0;
    std::uint64_t mxm = 0;
    std::size_t adaptiveStateNodes = 0;
    bool haveAdaptiveNodes = false;
    {
      const obs::ScopedSpan span("sim.pipeline.build", obs::cat::kSim,
                                 blockIndex);
      while (i < run_.size()) {
        const dd::MEdge g = buildGate(*run_[i]);
        if (!pending) {
          acc = g;
          pkg.incRef(acc);
          pending = true;
          count = 1;
        } else {
          // Same left-multiplication order as the serial accumulator:
          // state' = g * (acc * v) = (g * acc) * v.
          const dd::MEdge combined = pkg.multiply(g, acc);
          ++mxm;
          pkg.incRef(combined);
          pkg.decRef(acc);
          acc = combined;
          ++count;
        }
        gates += run_[i]->flatGateCount();
        ++i;
        // Replicate the serial boundary decision exactly — identical block
        // boundaries are what make the pipelined run bit-identical.
        const std::size_t accSize = pkg.size(acc);
        bool full = false;
        switch (config_.schedule) {
          case Schedule::KOperations:
            full = count >= config_.k;
            break;
          case Schedule::MaxSize:
            full = accSize > config_.maxSize;
            break;
          case Schedule::Adaptive:
            // The serial loop compares against the state size after the
            // previous flush; wait for exactly that feedback. This couples
            // the builder one block behind the consumer — Adaptive
            // pipelining overlaps less than KOperations/MaxSize, but stays
            // deterministic.
            if (!haveAdaptiveNodes) {
              if (!waitStateFeedback(blockIndex, adaptiveStateNodes)) {
                pkg.decRef(acc);
                return;
              }
              haveAdaptiveNodes = true;
            }
            full = static_cast<double>(accSize) >
                   config_.adaptiveRatio *
                       static_cast<double>(adaptiveStateNodes);
            break;
          case Schedule::Sequential:
            full = true;  // unreachable: the simulator never pipelines it
            break;
        }
        if (full) {
          break;
        }
      }
    }

    PipelineBlock blk;
    blk.block = dd::exportDD(pkg, acc);
    blk.firstOp = resumeIndex_;
    blk.opCount = i - resumeIndex_;
    blk.gateCount = gates;
    blk.mxmCount = mxm;
    blk.builderNodes = pkg.size(acc);
    blk.buildSeconds = blockTimer.seconds();
    pkg.decRef(acc);
    pkg.maybeGarbageCollect();
    stats_.buildSeconds += blk.buildSeconds;
    obs::traceInstant("sim.pipeline.queue-depth", obs::cat::kSim,
                      queue_.depth());
    if (!queue_.push(std::move(blk))) {
      return;  // consumer aborted the queue
    }
    ++stats_.blocksBuilt;
    ++blockIndex;
  }
  resumeIndex_ = run_.size();
}

}  // namespace ddsim::sim
