#include "sim/pipeline.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "dd/package.hpp"
#include "ir/operation.hpp"
#include "obs/trace.hpp"
#include "sim/build_dd.hpp"

namespace ddsim::sim {
namespace {

void mergeInto(dd::PackageStats& into, const dd::PackageStats& from) {
  into.matrixVectorMultiplications += from.matrixVectorMultiplications;
  into.matrixMatrixMultiplications += from.matrixMatrixMultiplications;
  into.recursiveMulVCalls += from.recursiveMulVCalls;
  into.recursiveMulMCalls += from.recursiveMulMCalls;
  into.recursiveAddCalls += from.recursiveAddCalls;
  into.identitySkipsMV += from.identitySkipsMV;
  into.identitySkipsMM += from.identitySkipsMM;
  into.diagonalFastPathsMM += from.diagonalFastPathsMM;
  into.garbageCollections += from.garbageCollections;
  into.nodesCollected += from.nodesCollected;
  into.peakLiveNodes = std::max<std::uint64_t>(into.peakLiveNodes,
                                               from.peakLiveNodes);
  into.emergencyCollections += from.emergencyCollections;
  into.bytesReleased += from.bytesReleased;
}

void mergeInto(dd::CacheStats& into, const dd::CacheStats& from) {
  into.mulMVHits += from.mulMVHits;
  into.mulMVMisses += from.mulMVMisses;
  into.mulMMHits += from.mulMMHits;
  into.mulMMMisses += from.mulMMMisses;
  into.addHits += from.addHits;
  into.addMisses += from.addMisses;
  into.uniqueTableHits += from.uniqueTableHits;
  into.uniqueTableMisses += from.uniqueTableMisses;
  into.complexTableHits += from.complexTableHits;
  into.complexTableMisses += from.complexTableMisses;
  into.mulMVRetained += from.mulMVRetained;
  into.mulMMRetained += from.mulMMRetained;
  into.addRetained += from.addRetained;
  into.cacheRetained += from.cacheRetained;
  into.cacheStaleDropped += from.cacheStaleDropped;
  into.uniqueTableLockWaits += from.uniqueTableLockWaits;
  into.complexTableLockWaits += from.complexTableLockWaits;
  into.computeTableLockWaits += from.computeTableLockWaits;
}

}  // namespace

// ---------------------------------------------------------- ReorderBuffer

bool ReorderBuffer::push(std::uint64_t seq, PipelineBlock&& blk) {
  std::unique_lock<std::mutex> lock(mutex_);
  // A push is admissible once the block is inside the consumer's window.
  // The lowest outstanding sequence always satisfies seq < popNext_ +
  // capacity_ once everything below it was consumed, so producers can
  // never deadlock here (capacity_ >= 1).
  mayPush_.wait(lock, [&] {
    return aborted_ || seq >= limit_ || seq < popNext_ + capacity_;
  });
  if (aborted_) {
    return false;
  }
  if (seq >= limit_ || seq < popNext_) {
    return true;  // truncated while building: drop; the claim loop ends
  }
  ready_.emplace(seq, std::move(blk));
  mayPop_.notify_one();
  return true;
}

ReorderBuffer::PopStatus ReorderBuffer::popFor(
    PipelineBlock& out, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  mayPop_.wait_for(lock, timeout, [&] {
    return aborted_ || popNext_ >= limit_ || ready_.count(popNext_) != 0;
  });
  const auto it = ready_.find(popNext_);
  if (it != ready_.end()) {
    out = std::move(it->second);
    ready_.erase(it);
    ++popNext_;
    mayPush_.notify_all();
    return PopStatus::Ok;
  }
  return popNext_ >= limit_ ? PopStatus::Drained : PopStatus::TimedOut;
}

void ReorderBuffer::truncate(std::uint64_t limit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (limit >= limit_) {
    return;
  }
  limit_ = limit;
  ready_.erase(ready_.lower_bound(limit_), ready_.end());
  mayPush_.notify_all();
  mayPop_.notify_all();
}

void ReorderBuffer::abort() {
  const std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = true;
  ready_.clear();
  mayPush_.notify_all();
  mayPop_.notify_all();
}

std::size_t ReorderBuffer::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ready_.size();
}

// ------------------------------------------------------------ BlockBuilder

BlockBuilder::BlockBuilder(const std::vector<const ir::Operation*>& run,
                           std::size_t numQubits, const StrategyConfig& config,
                           std::size_t initialStateNodes,
                           dd::FaultInjector* faultInjector,
                           std::function<bool()> externalAbort)
    : run_(run),
      numQubits_(numQubits),
      config_(config),
      initialStateNodes_(initialStateNodes),
      injector_(faultInjector),
      externalAbort_(std::move(externalAbort)),
      buffer_(config.pipelineDepth),
      resumeIndex_(run.size()) {
  const std::size_t builders = std::min(config.pipelineDepth, kMaxBuilders);
  threads_.reserve(builders);
  for (std::size_t t = 0; t < builders; ++t) {
    threads_.emplace_back([this, t] { threadMain(t); });
  }
}

BlockBuilder::~BlockBuilder() { finish(); }

ReorderBuffer::PopStatus BlockBuilder::next(PipelineBlock& out,
                                            std::chrono::milliseconds timeout) {
  return buffer_.popFor(out, timeout);
}

void BlockBuilder::onBlockApplied(std::size_t stateNodes) {
  const std::lock_guard<std::mutex> lock(schedMutex_);
  fbSizes_.push_back(stateNodes);
  schedCv_.notify_all();
}

void BlockBuilder::finish() {
  if (joined_) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  buffer_.abort();
  {
    const std::lock_guard<std::mutex> lock(schedMutex_);
    schedCv_.notify_all();
  }
  for (std::thread& t : threads_) {
    t.join();
  }
  joined_ = true;
}

bool BlockBuilder::claimNext(std::uint64_t& seq, std::size_t& start) {
  std::unique_lock<std::mutex> lock(schedMutex_);
  for (;;) {
    if (stopRequested()) {
      return false;
    }
    const std::uint64_t bound = std::min(endSeq_, failSeq_);
    if (nextSeq_ >= bound) {
      return false;
    }
    const std::uint64_t s = nextSeq_;
    if (config_.schedule == Schedule::KOperations) {
      // Static boundaries: block s covers [s*k, s*k + k). Every builder can
      // claim a different future block immediately — this is the true
      // N-deep fan-out.
      const std::size_t st = static_cast<std::size_t>(s) * config_.k;
      if (st >= run_.size()) {
        endSeq_ = std::min(endSeq_, s);
        schedCv_.notify_all();
        continue;  // re-evaluates to nextSeq_ >= bound
      }
      ++nextSeq_;
      seq = s;
      start = st;
      return true;
    }
    // Dynamic boundaries (MaxSize/Adaptive): block s's start is block s-1's
    // published end. Builders relay — claim waits for the frontier.
    if (starts_.size() > s) {
      ++nextSeq_;
      seq = s;
      start = starts_[s];
      return true;
    }
    schedCv_.wait(lock);
  }
}

void BlockBuilder::publishBoundary(std::uint64_t seq, std::size_t end) {
  std::uint64_t limit;
  {
    const std::lock_guard<std::mutex> lock(schedMutex_);
    if (end >= run_.size()) {
      endSeq_ = std::min(endSeq_, seq + 1);
    } else if (config_.schedule != Schedule::KOperations) {
      // Dynamic schedules complete in sequence order (block seq+1 cannot
      // start before this publish), so push_back stays contiguous.
      if (starts_.size() == seq + 1) {
        starts_.push_back(end);
      }
    }
    limit = std::min(endSeq_, failSeq_);
    schedCv_.notify_all();
  }
  buffer_.truncate(limit);
}

void BlockBuilder::reportFailure(std::uint64_t seq, std::size_t start,
                                 bool bowOut) {
  std::uint64_t limit;
  {
    const std::lock_guard<std::mutex> lock(schedMutex_);
    if (seq < failSeq_) {
      failSeq_ = seq;
      resumeIndex_ = start;
      failSeqAtomic_.store(failSeq_, std::memory_order_relaxed);
    }
    if (bowOut) {
      bowedOut_ = true;
    }
    limit = std::min(endSeq_, failSeq_);
    schedCv_.notify_all();
  }
  buffer_.truncate(limit);
}

bool BlockBuilder::waitStateFeedback(std::uint64_t seq, std::size_t& nodes) {
  if (seq == 0) {
    nodes = initialStateNodes_;
    return true;
  }
  std::unique_lock<std::mutex> lock(schedMutex_);
  schedCv_.wait(lock, [&] {
    return stopRequested() || fbSizes_.size() >= seq ||
           std::min(endSeq_, failSeq_) <= seq;
  });
  if (fbSizes_.size() >= seq) {
    nodes = fbSizes_[seq - 1];
    return true;
  }
  return false;
}

void BlockBuilder::threadMain(std::size_t builderId) {
  // One trace track per builder so overlapping block spans stay legible.
  obs::nameCurrentThreadTrack("sim.builder." + std::to_string(builderId));
  std::uint64_t blocksBuilt = 0;
  double buildSeconds = 0.0;
  try {
    dd::Package pkg(numQubits_);
    // Same budget as the main package: a block the serial engine could not
    // have afforded must not be built ahead either. Builder kernels stay
    // single-threaded — fan-out parallelism comes from the builder count,
    // and N builders x M kernel workers would oversubscribe the host.
    if (config_.nodeBudget > 0 || config_.byteBudget > 0) {
      pkg.governor().setBudget({config_.nodeBudget, config_.byteBudget,
                                config_.softBudgetFraction});
    }
    if (injector_ != nullptr) {
      pkg.setFaultInjector(injector_);
    }
    pkg.setAbortCheck([this] {
      return stopRequested() || (externalAbort_ && externalAbort_());
    });
    buildLoop(pkg, blocksBuilt, buildSeconds);
    const std::lock_guard<std::mutex> lock(schedMutex_);
    mergeInto(stats_.dd, pkg.stats());
    mergeInto(stats_.cache, pkg.cacheStats());
    stats_.blocksBuilt += blocksBuilt;
    stats_.buildSeconds += buildSeconds;
  } catch (...) {
    // Package construction/teardown failure — not a per-block condition.
    {
      const std::lock_guard<std::mutex> lock(schedMutex_);
      if (failure_ == nullptr) {
        failure_ = std::current_exception();
      }
    }
    reportFailure(0, 0, false);
  }
}

void BlockBuilder::buildLoop(dd::Package& pkg, std::uint64_t& blocksBuilt,
                             double& buildSeconds) {
  // Per-run gate-DD memoization, mirroring the simulator's gateCache_: runs
  // revisit the same ir::Operation objects (flattened compound
  // repetitions), and rooting the cached edges keeps the corresponding
  // multiply compute-table entries revalidatable across collections.
  std::unordered_map<const ir::Operation*, dd::MEdge> gateCache;
  const std::function<dd::MEdge(const ir::Operation&)> buildGate =
      [&](const ir::Operation& op) {
        const auto it = gateCache.find(&op);
        if (it != gateCache.end()) {
          return it->second;
        }
        const dd::MEdge m = buildOperationDD(pkg, op);
        pkg.incRef(m);
        gateCache.emplace(&op, m);
        return m;
      };

  std::uint64_t seq = 0;
  std::size_t start = 0;
  while (claimNext(seq, start)) {
    try {
      if (!buildBlock(pkg, buildGate, seq, start, blocksBuilt, buildSeconds)) {
        return;
      }
    } catch (const dd::ResourceExhausted&) {
      // This builder's package cannot afford block `seq`: bow out. Blocks
      // below it (possibly from other builders) stay valid; the main
      // thread drains them and continues serially from this block's start.
      reportFailure(seq, start, true);
      return;
    } catch (const dd::ComputationAborted&) {
      if (!stopRequested()) {
        // External abort (time limit / cancellation). Bow out; the main
        // thread notices the same condition through its own polls and
        // unwinds with the proper exception.
        reportFailure(seq, start, true);
      }
      return;
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(schedMutex_);
        if (failure_ == nullptr) {
          failure_ = std::current_exception();
        }
      }
      reportFailure(seq, start, false);
      return;
    }
  }
}

bool BlockBuilder::buildBlock(
    dd::Package& pkg,
    const std::function<dd::MEdge(const ir::Operation&)>& gate,
    std::uint64_t seq, std::size_t start, std::uint64_t& blocksBuilt,
    double& buildSeconds) {
  const Timer blockTimer;
  dd::MEdge acc{};
  bool pending = false;
  std::size_t count = 0;
  std::uint64_t gates = 0;
  std::uint64_t mxm = 0;
  std::size_t adaptiveStateNodes = 0;
  bool haveAdaptiveNodes = false;
  std::size_t i = start;
  {
    const obs::ScopedSpan span("sim.pipeline.build", obs::cat::kSim, seq);
    while (i < run_.size()) {
      if (stopRequested() ||
          failSeqAtomic_.load(std::memory_order_relaxed) <= seq) {
        // Stopped, or a lower block failed: this block will never be
        // consumed — abandon it instead of finishing dead work.
        if (pending) {
          pkg.decRef(acc);
        }
        return false;
      }
      const dd::MEdge g = gate(*run_[i]);
      if (!pending) {
        acc = g;
        pkg.incRef(acc);
        pending = true;
        count = 1;
      } else {
        // Same left-multiplication order as the serial accumulator:
        // state' = g * (acc * v) = (g * acc) * v.
        const dd::MEdge combined = pkg.multiply(g, acc);
        ++mxm;
        pkg.incRef(combined);
        pkg.decRef(acc);
        acc = combined;
        ++count;
      }
      gates += run_[i]->flatGateCount();
      ++i;
      // Replicate the serial boundary decision exactly — identical block
      // boundaries are what make the pipelined run bit-identical.
      const std::size_t accSize = pkg.size(acc);
      bool full = false;
      switch (config_.schedule) {
        case Schedule::KOperations:
          full = count >= config_.k;
          break;
        case Schedule::MaxSize:
          full = accSize > config_.maxSize;
          break;
        case Schedule::Adaptive:
          // The serial loop compares against the state size after the
          // previous flush; wait for exactly that feedback. This couples
          // block seq one step behind the consumer — Adaptive pipelining
          // overlaps less than KOperations/MaxSize, but stays
          // deterministic.
          if (!haveAdaptiveNodes) {
            if (!waitStateFeedback(seq, adaptiveStateNodes)) {
              pkg.decRef(acc);
              return false;
            }
            haveAdaptiveNodes = true;
          }
          full = static_cast<double>(accSize) >
                 config_.adaptiveRatio * static_cast<double>(adaptiveStateNodes);
          break;
        case Schedule::Sequential:
          full = true;  // unreachable: the simulator never pipelines it
          break;
      }
      if (full) {
        break;
      }
    }
  }

  // Publish before the export/push so the next block's claim (and its
  // builder) can proceed while this thread serializes the handoff.
  publishBoundary(seq, i);

  PipelineBlock blk;
  blk.block = dd::exportDD(pkg, acc);
  blk.firstOp = start;
  blk.opCount = i - start;
  blk.gateCount = gates;
  blk.mxmCount = mxm;
  blk.builderNodes = pkg.size(acc);
  blk.buildSeconds = blockTimer.seconds();
  pkg.decRef(acc);
  pkg.maybeGarbageCollect();
  buildSeconds += blk.buildSeconds;
  obs::traceInstant("sim.pipeline.queue-depth", obs::cat::kSim,
                    buffer_.depth());
  if (!buffer_.push(seq, std::move(blk))) {
    return false;  // consumer aborted the buffer
  }
  ++blocksBuilt;
  return true;
}

}  // namespace ddsim::sim
