#include "sim/stats.hpp"

#include <ostream>
#include <sstream>

namespace ddsim::sim {

std::string scheduleName(Schedule s) {
  switch (s) {
    case Schedule::Sequential: return "sequential";
    case Schedule::KOperations: return "k-operations";
    case Schedule::MaxSize: return "max-size";
    case Schedule::Adaptive: return "adaptive";
  }
  return "?";
}

std::string StrategyConfig::toString() const {
  std::ostringstream ss;
  ss << scheduleName(schedule);
  if (schedule == Schedule::KOperations) {
    ss << "(k=" << k << ")";
  } else if (schedule == Schedule::MaxSize) {
    ss << "(s_max=" << maxSize << ")";
  } else if (schedule == Schedule::Adaptive) {
    ss << "(ratio=" << adaptiveRatio << ")";
  }
  if (reuseRepeatedBlocks) {
    ss << "+DD-repeating";
  }
  if (nodeBudget > 0 || byteBudget > 0) {
    ss << "+budget(nodes=" << nodeBudget << ",bytes=" << byteBudget << ")";
  }
  return ss.str();
}

void SimulationTrace::writeCsv(std::ostream& os) const {
  os << "index,kind,state_nodes,matrix_nodes,seconds\n";
  for (const auto& step : steps) {
    const char* kind = step.kind == StepKind::ApplyToState ? "apply"
                       : step.kind == StepKind::CombineMatrix ? "combine"
                                                              : "measure";
    os << step.index << ',' << kind << ',' << step.stateNodes << ','
       << step.matrixNodes << ',' << step.seconds << '\n';
  }
}

std::string SimulationStats::toString() const {
  std::ostringstream ss;
  ss << "time=" << wallSeconds << "s gates=" << appliedGates
     << " MxV=" << mxvCount << " MxM=" << mxmCount
     << " peakStateNodes=" << peakStateNodes
     << " peakMatrixNodes=" << peakMatrixNodes
     << " finalStateNodes=" << finalStateNodes
     << " identitySkipRate=" << dd.identitySkipRate()
     << " mulCacheHitRate=" << cache.mulHitRate()
     << " gcRetentionRate=" << cache.gcRetentionRate();
  if (degradationEvents > 0) {
    ss << " degradationEvents=" << degradationEvents
       << " pressureFlushes=" << pressureFlushes
       << " sequentialFallbackOps=" << sequentialFallbackOps
       << " pressureApproximations=" << pressureApproximations
       << " resourceRecoveries=" << resourceRecoveries;
  }
  return ss.str();
}

}  // namespace ddsim::sim
