#include "sim/stats.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "ir/hash.hpp"

namespace ddsim::sim {

std::string scheduleName(Schedule s) {
  switch (s) {
    case Schedule::Sequential: return "sequential";
    case Schedule::KOperations: return "k-operations";
    case Schedule::MaxSize: return "max-size";
    case Schedule::Adaptive: return "adaptive";
  }
  return "?";
}

void StrategyConfig::validate() const {
  if (k < 1) {
    throw std::invalid_argument("StrategyConfig: k must be >= 1");
  }
  if (maxSize == 0) {
    throw std::invalid_argument("StrategyConfig: maxSize (s_max) must be > 0");
  }
  if (!(adaptiveRatio > 0.0) || !std::isfinite(adaptiveRatio)) {
    throw std::invalid_argument(
        "StrategyConfig: adaptiveRatio must be positive and finite");
  }
  if (timeLimitSeconds < 0.0 || !std::isfinite(timeLimitSeconds)) {
    throw std::invalid_argument(
        "StrategyConfig: timeLimitSeconds must be non-negative and finite");
  }
  if (!(approximateFidelity > 0.0) || approximateFidelity > 1.0) {
    throw std::invalid_argument(
        "StrategyConfig: approximateFidelity must be in (0, 1]");
  }
  if (!(softBudgetFraction > 0.0) || softBudgetFraction > 1.0) {
    throw std::invalid_argument(
        "StrategyConfig: softBudgetFraction must be in (0, 1]");
  }
  if (pipelineDepth < 1 || pipelineDepth > 1024) {
    throw std::invalid_argument(
        "StrategyConfig: pipelineDepth must be in [1, 1024]");
  }
  if (threads < 1 || threads > 256) {
    throw std::invalid_argument("StrategyConfig: threads must be in [1, 256]");
  }
}

std::uint64_t StrategyConfig::contentHash() const noexcept {
  using ir::hashCombine;
  using ir::hashDouble;
  std::uint64_t h = hashCombine(ir::kHashSeed, 0x53434647ULL);  // "SCFG"
  h = hashCombine(h, static_cast<std::uint64_t>(schedule));
  h = hashCombine(h, k);
  h = hashCombine(h, maxSize);
  h = hashDouble(h, adaptiveRatio);
  h = hashCombine(h, reuseRepeatedBlocks ? 1U : 0U);
  // collectTrace is deliberately excluded: it only toggles step-trace
  // recording and never changes the simulation outcome, so trace-on and
  // trace-off submissions must coalesce to the same cache entry.
  // pipeline / pipelineDepth are likewise excluded: the pipelined engine is
  // required to produce bit-identical measurement outcomes for the same
  // seed, so pipelined and serial submissions must share a cache entry.
  // threads is excluded for the same reason: kernel parallelism never
  // changes measurement outcomes (only last-ulp weight representatives —
  // see dd::Package::setWorkers), so parallel and serial submissions must
  // coalesce too.
  h = hashDouble(h, timeLimitSeconds);
  h = hashDouble(h, approximateFidelity);
  h = hashCombine(h, approximateThreshold);
  h = hashCombine(h, nodeBudget);
  h = hashCombine(h, byteBudget);
  h = hashDouble(h, softBudgetFraction);
  h = hashCombine(h, degradeCooldownOps);
  return h;
}

std::string StrategyConfig::toString() const {
  std::ostringstream ss;
  ss << scheduleName(schedule);
  if (schedule == Schedule::KOperations) {
    ss << "(k=" << k << ")";
  } else if (schedule == Schedule::MaxSize) {
    ss << "(s_max=" << maxSize << ")";
  } else if (schedule == Schedule::Adaptive) {
    ss << "(ratio=" << adaptiveRatio << ")";
  }
  if (reuseRepeatedBlocks) {
    ss << "+DD-repeating";
  }
  if (pipeline) {
    ss << "+pipeline(depth=" << pipelineDepth << ")";
  }
  if (threads > 1) {
    ss << "+threads(" << threads << ")";
  }
  if (nodeBudget > 0 || byteBudget > 0) {
    ss << "+budget(nodes=" << nodeBudget << ",bytes=" << byteBudget << ")";
  }
  return ss.str();
}

void SimulationTrace::writeCsv(std::ostream& os) const {
  os << "index,kind,state_nodes,matrix_nodes,seconds\n";
  for (const auto& step : steps) {
    const char* kind = step.kind == StepKind::ApplyToState ? "apply"
                       : step.kind == StepKind::CombineMatrix ? "combine"
                                                              : "measure";
    os << step.index << ',' << kind << ',' << step.stateNodes << ','
       << step.matrixNodes << ',' << step.seconds << '\n';
  }
}

std::string SimulationStats::toString() const {
  std::ostringstream ss;
  ss << "time=" << wallSeconds << "s gates=" << appliedGates
     << " MxV=" << mxvCount << " MxM=" << mxmCount
     << " peakStateNodes=" << peakStateNodes
     << " peakMatrixNodes=" << peakMatrixNodes
     << " finalStateNodes=" << finalStateNodes
     << " identitySkipRate=" << dd.identitySkipRate()
     << " mulCacheHitRate=" << cache.mulHitRate()
     << " gcRetentionRate=" << cache.gcRetentionRate();
  if (pipelinedBlocks > 0 || pipelineBowOuts > 0) {
    ss << " pipelinedBlocks=" << pipelinedBlocks
       << " pipelineStalls=" << pipelineStalls
       << " pipelineBowOuts=" << pipelineBowOuts
       << " serialFallbackOps=" << serialFallbackOps
       << " migratedNodes=" << migratedNodes
       << " builderBuildSeconds=" << builderBuildSeconds;
  }
  if (degradationEvents > 0) {
    ss << " degradationEvents=" << degradationEvents
       << " pressureFlushes=" << pressureFlushes
       << " sequentialFallbackOps=" << sequentialFallbackOps
       << " pressureApproximations=" << pressureApproximations
       << " resourceRecoveries=" << resourceRecoveries;
  }
  return ss.str();
}

}  // namespace ddsim::sim
