#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "dd/approximation.hpp"
#include "obs/trace.hpp"
#include "sim/build_dd.hpp"

namespace ddsim::sim {

using dd::MEdge;
using dd::VEdge;
using ir::OpKind;

CircuitSimulator::CircuitSimulator(const ir::Circuit& circuit,
                                   StrategyConfig config, std::uint64_t seed)
    : circuit_(circuit),
      config_(config),
      pkg_(std::make_unique<dd::Package>(circuit.numQubits())),
      rng_(seed),
      clbits_(std::max<std::size_t>(1, circuit.numClbits()), false) {
  config_.validate();
  // DDSIM_NODE_BUDGET supplies a process-wide default (used e.g. by the CI
  // job that runs the whole suite under a tiny budget); an explicit config
  // value wins.
  if (config_.nodeBudget == 0) {
    if (const char* env = std::getenv("DDSIM_NODE_BUDGET")) {
      config_.nodeBudget = std::strtoull(env, nullptr, 10);
    }
  }
  if (config_.nodeBudget > 0 || config_.byteBudget > 0) {
    pkg_->governor().setBudget({config_.nodeBudget, config_.byteBudget,
                                config_.softBudgetFraction});
    // Fires deep inside a multiplication; only flag it — the ladder reacts
    // at the next quiescent point.
    pkg_->governor().setPressureCallback(
        [this](dd::ResourcePressure, std::size_t) {
          pressureSignaled_ = true;
        });
  }
}

SimulationResult CircuitSimulator::run() {
  if (ran_) {
    throw std::logic_error("CircuitSimulator::run may only be called once");
  }
  ran_ = true;

  runTimer_ = Timer{};
  const Timer& timer = runTimer_;
  if (config_.timeLimitSeconds > 0.0 || cancelCheck_) {
    // Interrupts even a single runaway multiplication, not just the gaps
    // between operations. The cancellation hook rides the same abort poll.
    pkg_->setAbortCheck([this] {
      return (cancelCheck_ && cancelCheck_()) ||
             (config_.timeLimitSeconds > 0.0 &&
              runTimer_.seconds() > config_.timeLimitSeconds);
    });
  }
  state_ = pkg_->makeZeroState();
  pkg_->incRef(state_);
  lastStateSize_ = pkg_->size(state_);

  try {
    processOps(circuit_.ops());
    flush();
  } catch (const dd::ComputationAborted&) {
    // Disambiguate who tripped the shared abort poll: an active
    // cancellation request wins (a cancelled job is not "timed out").
    if (cancelCheck_ && cancelCheck_()) {
      throw SimulationCancelled(makePartial());
    }
    throw SimulationTimeout(config_.timeLimitSeconds, makePartial());
  } catch (const dd::ResourceExhausted& e) {
    // Every rung of the degradation ladder failed; surface the dd-layer
    // diagnosis together with how far the run got.
    throw ResourceExhausted(e, makePartial());
  }

  stats_.wallSeconds = timer.seconds();
  stats_.finalStateNodes = pkg_->size(state_);
  stats_.dd = pkg_->stats();
  stats_.cache = pkg_->cacheStats();
  return {state_, clbits_, stats_, trace_};
}

void CircuitSimulator::recordStep(StepKind kind, std::size_t matrixNodes,
                                  double seconds) {
  if (!config_.collectTrace) {
    return;
  }
  trace_.steps.push_back(
      {trace_.steps.size(), kind, lastStateSize_, matrixNodes, seconds});
}

void CircuitSimulator::processOps(
    const std::vector<std::unique_ptr<ir::Operation>>& ops) {
  for (const auto& op : ops) {
    switch (op->kind()) {
      case OpKind::Standard:
      case OpKind::Oracle:
        handleUnitary(*op);
        break;
      case OpKind::ClassicControlled: {
        const auto& c = static_cast<const ir::ClassicControlledOperation&>(*op);
        // Any measurement defining this bit flushed the pipeline, so the
        // classical value is final by the time we get here.
        if (clbits_[c.clbit()] == c.expectedValue()) {
          handleUnitary(c.op());
        }
        break;
      }
      case OpKind::Measure: {
        flush();
        const auto& m = static_cast<const ir::MeasureOperation&>(*op);
        const obs::ScopedSpan span("sim.measure", obs::cat::kSim);
        const Timer t;
        clbits_[m.clbit()] =
            pkg_->measureOneCollapsing(state_, m.qubit(), rng_) != 0;
        lastStateSize_ = pkg_->size(state_);
        recordStep(StepKind::Measure, 0, t.seconds());
        afterStep();
        break;
      }
      case OpKind::Reset: {
        flush();
        const auto& r = static_cast<const ir::ResetOperation&>(*op);
        if (pkg_->measureOneCollapsing(state_, r.qubit(), rng_) != 0) {
          applyToState(pkg_->makeGateDD(ir::gateMatrix(ir::GateType::X), r.qubit()));
        }
        afterStep();
        break;
      }
      case OpKind::Barrier:
        flush();
        break;
      case OpKind::Compound:
        handleCompound(static_cast<const ir::CompoundOperation&>(*op));
        break;
    }
  }
}

void CircuitSimulator::handleUnitary(const ir::Operation& op) {
  enqueue(buildOpDD(op), op.flatGateCount());
}

void CircuitSimulator::handleCompound(const ir::CompoundOperation& comp) {
  if (!config_.reuseRepeatedBlocks) {
    // Inline the block: its gates stream through the normal combining logic
    // (a k-operations window may even span iteration boundaries).
    for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
      processOps(comp.body());
    }
    return;
  }
  // DD-repeating: combine the whole block into one matrix DD, then apply it
  // once per repetition. After the one-time construction no further
  // matrix-matrix multiplication is needed (paper Section IV-B).
  flush();
  MEdge block{};
  try {
    block = buildBlockDD(comp.body());
  } catch (const dd::ResourceExhausted&) {
    // The block matrix does not fit the budget. Reclaim and degrade
    // DD-repeating to plain repetition: stream the block's gates through
    // the normal combining logic instead.
    pkg_->emergencyCollect();
    ++stats_.degradationEvents;
    ++stats_.resourceRecoveries;
    for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
      processOps(comp.body());
    }
    return;
  }
  pkg_->incRef(block);
  stats_.peakMatrixNodes = std::max(stats_.peakMatrixNodes, pkg_->size(block));
  try {
    for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
      applyToState(block);
      stats_.appliedGates += comp.flatGateCount() / comp.repetitions();
      afterStep();
    }
  } catch (...) {
    pkg_->decRef(block);
    throw;
  }
  pkg_->decRef(block);
}

MEdge CircuitSimulator::buildBlockDD(
    const std::vector<std::unique_ptr<ir::Operation>>& body) {
  MEdge block = pkg_->makeIdent();
  pkg_->incRef(block);
  try {
    for (const auto& op : body) {
      MEdge g{};
      switch (op->kind()) {
        case OpKind::Standard:
        case OpKind::Oracle:
          g = buildOpDD(*op);
          break;
        case OpKind::Compound: {
          const auto& inner = static_cast<const ir::CompoundOperation&>(*op);
          MEdge innerBlock = buildBlockDD(inner.body());
          pkg_->incRef(innerBlock);
          g = pkg_->makeIdent();
          try {
            for (std::size_t rep = 0; rep < inner.repetitions(); ++rep) {
              g = pkg_->multiply(innerBlock, g);
              ++stats_.mxmCount;
            }
          } catch (...) {
            pkg_->decRef(innerBlock);
            throw;
          }
          pkg_->decRef(innerBlock);
          break;
        }
        default:
          throw std::invalid_argument(
              "DD-repeating requires purely unitary blocks, found: " +
              op->toString());
      }
      MEdge combined = pkg_->multiply(g, block);
      ++stats_.mxmCount;
      pkg_->incRef(combined);
      pkg_->decRef(block);
      block = combined;
      pkg_->maybeGarbageCollect();
    }
  } catch (...) {
    // Drop the root so an abandoned partial product is reclaimable by the
    // next (emergency) collection.
    pkg_->decRef(block);
    throw;
  }
  pkg_->decRef(block);  // caller re-roots
  return block;
}

MEdge CircuitSimulator::buildOpDD(const ir::Operation& op) {
  const auto it = gateCache_.find(&op);
  if (it != gateCache_.end()) {
    return it->second;
  }
  const MEdge m = buildOperationDD(*pkg_, op);
  pkg_->incRef(m);
  gateCache_.emplace(&op, m);
  return m;
}

void CircuitSimulator::enqueue(const MEdge& gateDD, std::size_t gateCount) {
  stats_.appliedGates += gateCount;
  if (config_.schedule == Schedule::Sequential) {
    applyToState(gateDD);
    afterStep();
    return;
  }
  // Degradation rung: while a pressure cooldown is active, run in the
  // paper's sequential mode (Eq. 1) — one MxV per operation, no accumulator
  // to blow up.
  if (sequentialCooldown_ > 0) {
    --sequentialCooldown_;
    ++stats_.sequentialFallbackOps;
    applyToState(gateDD);
    afterStep();
    return;
  }

  const obs::ScopedSpan span("sim.combine", obs::cat::kSim);
  const Timer t;
  if (!accPending_) {
    acc_ = gateDD;
    pkg_->incRef(acc_);
    accPending_ = true;
    accCount_ = 1;
    accGates_ = gateCount;
  } else {
    // state' = g * (acc * v) = (g * acc) * v: new factors multiply from the
    // left.
    MEdge combined{};
    try {
      combined = pkg_->multiply(gateDD, acc_);
    } catch (const dd::ResourceExhausted&) {
      // Accumulator explosion hit the hard rung mid-MxM. Reclaim, flush the
      // product built so far, apply the new gate directly, and cool down in
      // sequential mode.
      obs::traceInstant("sim.rung.collect-retry", obs::cat::kSim);
      pkg_->emergencyCollect();
      ++stats_.degradationEvents;
      ++stats_.pressureFlushes;
      pressureSignaled_ = false;
      flush();
      applyToState(gateDD);
      ++stats_.resourceRecoveries;
      enterCooldown();
      afterStep();
      return;
    }
    ++stats_.mxmCount;
    pkg_->incRef(combined);
    pkg_->decRef(acc_);
    acc_ = combined;
    ++accCount_;
    accGates_ += gateCount;
  }

  const std::size_t accSize = pkg_->size(acc_);
  stats_.peakMatrixNodes = std::max(stats_.peakMatrixNodes, accSize);
  recordStep(StepKind::CombineMatrix, accSize, t.seconds());

  // Soft rung: pressure observed while (or since) accumulating. Flush the
  // accumulator at this quiescent point and fall back to sequential
  // application for the cooldown window.
  if (pressureObserved()) {
    obs::traceInstant("sim.rung.pressure-flush", obs::cat::kSim);
    ++stats_.degradationEvents;
    ++stats_.pressureFlushes;
    flush();
    enterCooldown();
    return;
  }

  bool full = false;
  switch (config_.schedule) {
    case Schedule::KOperations:
      full = accCount_ >= config_.k;
      break;
    case Schedule::MaxSize:
      full = accSize > config_.maxSize;
      break;
    case Schedule::Adaptive:
      // Combine while the product stays small relative to the state: once
      // the matrix DD rivals the state DD, applying it costs as much as the
      // MxV we are trying to avoid.
      full = static_cast<double>(accSize) >
             config_.adaptiveRatio * static_cast<double>(lastStateSize_);
      break;
    case Schedule::Sequential:
      break;  // unreachable (handled above)
  }
  if (full) {
    flush();
  } else {
    afterStep();
  }
}

void CircuitSimulator::applyToState(const MEdge& m) {
  const obs::ScopedSpan span("sim.apply", obs::cat::kSim);
  const Timer t;
  VEdge next{};
  try {
    next = pkg_->multiply(m, state_);
  } catch (const dd::ResourceExhausted&) {
    // Hard rung mid-MxV: reclaim everything reclaimable, shrink the state
    // if approximation is allowed, then retry once. A second failure
    // propagates to run(), which wraps it with the progress snapshot.
    obs::traceInstant("sim.rung.collect-retry", obs::cat::kSim);
    pkg_->emergencyCollect();
    ++stats_.degradationEvents;
    if (config_.approximateFidelity < 1.0) {
      forcedApproximation();
    }
    next = pkg_->multiply(m, state_);
    ++stats_.resourceRecoveries;
  }
  ++stats_.mxvCount;
  pkg_->incRef(next);
  pkg_->decRef(state_);
  state_ = next;
  lastStateSize_ = pkg_->size(state_);

  // Approximate-while-simulating: trade bounded fidelity for a smaller
  // state DD (the size of which is exactly what every further step pays
  // for, per Section III of the paper).
  if (config_.approximateFidelity < 1.0 &&
      lastStateSize_ > config_.approximateThreshold) {
    const auto approx =
        dd::approximate(*pkg_, state_, config_.approximateFidelity);
    if (approx.removedEdges > 0) {
      pkg_->incRef(approx.state);
      pkg_->decRef(state_);
      state_ = approx.state;
      stats_.approxFidelity *= approx.fidelity;
      ++stats_.approxRounds;
      lastStateSize_ = approx.nodesAfter;
    }
  }

  // Soft rung on the state DD itself: if pressure was observed and lossy
  // compression is allowed, prune now rather than carrying an oversized
  // state into the next multiplication.
  if (config_.approximateFidelity < 1.0 && pressureObserved()) {
    ++stats_.degradationEvents;
    forcedApproximation();
  }

  stats_.peakStateNodes = std::max(stats_.peakStateNodes, lastStateSize_);
  recordStep(StepKind::ApplyToState,
             config_.collectTrace ? pkg_->size(m) : 0, t.seconds());
}

void CircuitSimulator::flush() {
  if (!accPending_) {
    return;
  }
  applyToState(acc_);
  pkg_->decRef(acc_);
  accPending_ = false;
  accCount_ = 0;
  accGates_ = 0;
  afterStep();
}

void CircuitSimulator::afterStep() {
  pkg_->maybeGarbageCollect();
  if (cancelCheck_ && cancelCheck_()) {
    throw SimulationCancelled(makePartial());
  }
  if (config_.timeLimitSeconds > 0.0 &&
      runTimer_.seconds() > config_.timeLimitSeconds) {
    throw SimulationTimeout(config_.timeLimitSeconds, makePartial());
  }
}

void CircuitSimulator::enterCooldown() {
  obs::traceInstant("sim.rung.sequential-fallback", obs::cat::kSim);
  sequentialCooldown_ = config_.degradeCooldownOps;
}

/// Prune the state DD down to the configured per-step fidelity, counting
/// the round as pressure-forced.
void CircuitSimulator::forcedApproximation() {
  const obs::ScopedSpan span("sim.forced-approximation", obs::cat::kSim);
  const auto approx =
      dd::approximate(*pkg_, state_, config_.approximateFidelity);
  if (approx.removedEdges > 0) {
    pkg_->incRef(approx.state);
    pkg_->decRef(state_);
    state_ = approx.state;
    stats_.approxFidelity *= approx.fidelity;
    ++stats_.approxRounds;
    ++stats_.pressureApproximations;
    lastStateSize_ = approx.nodesAfter;
  }
}

/// Consume the pressure flag: true if the governor signaled pressure since
/// the last check, or current usage still sits above the soft threshold.
bool CircuitSimulator::pressureObserved() {
  const bool signaled = pressureSignaled_;
  pressureSignaled_ = false;
  return signaled ||
         pkg_->resourcePressure() != dd::ResourcePressure::None;
}

PartialResult CircuitSimulator::makePartial() {
  PartialResult p;
  p.opsCompleted =
      stats_.appliedGates >= accGates_ ? stats_.appliedGates - accGates_ : 0;
  p.peakLiveNodes = std::max(
      {stats_.peakStateNodes, stats_.peakMatrixNodes, pkg_->liveNodes()});
  p.elapsedSeconds = runTimer_.seconds();
  p.stats = stats_;
  p.stats.wallSeconds = p.elapsedSeconds;
  p.stats.finalStateNodes = pkg_->size(state_);
  p.stats.dd = pkg_->stats();
  p.stats.cache = pkg_->cacheStats();
  return p;
}

DetachedResult simulate(const ir::Circuit& circuit, StrategyConfig config,
                        std::uint64_t seed) {
  CircuitSimulator sim(circuit, config, seed);
  SimulationResult result = sim.run();
  return {std::move(result.classicalBits), result.stats};
}

std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream) noexcept {
  // SplitMix64 over golden-ratio spaced stream offsets (same finalizer as
  // ir::hashCombine). Documented contract — see simulator.hpp.
  std::uint64_t z = base ^ (stream * 0x9e3779b97f4a7c15ULL +
                            0x9e3779b97f4a7c15ULL);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace ddsim::sim
