#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "dd/approximation.hpp"
#include "dd/migration.hpp"
#include "ir/hash.hpp"
#include "obs/trace.hpp"
#include "sim/build_dd.hpp"
#include "sim/pipeline.hpp"

namespace ddsim::sim {

using dd::MEdge;
using dd::VEdge;
using ir::OpKind;

namespace {

/// Shorter runs are not worth a builder thread + private package.
constexpr std::size_t kMinPipelineRun = 8;

/// True if the operation tree contains only Standard/Oracle gates (possibly
/// nested in compounds) — i.e. it can be flattened into a pipelineable gate
/// stream with no measurement, reset or classical control inside.
bool isPureUnitaryTree(const ir::Operation& op) {
  switch (op.kind()) {
    case OpKind::Standard:
    case OpKind::Oracle:
      return true;
    case OpKind::Compound: {
      const auto& c = static_cast<const ir::CompoundOperation&>(op);
      for (const auto& inner : c.body()) {
        if (!isPureUnitaryTree(*inner)) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

/// Flatten a pure-unitary operation tree into the gate order the serial
/// engine would stream it in (compound bodies repeated in place).
void appendFlattened(const ir::Operation& op,
                     std::vector<const ir::Operation*>& out) {
  if (op.kind() == OpKind::Compound) {
    const auto& c = static_cast<const ir::CompoundOperation&>(op);
    for (std::size_t rep = 0; rep < c.repetitions(); ++rep) {
      for (const auto& inner : c.body()) {
        appendFlattened(*inner, out);
      }
    }
    return;
  }
  out.push_back(&op);
}

/// Cache key of a DD-repeating block: the block's *body* content (not its
/// repetition count — a block repeated 5x and 50x is the same matrix) mixed
/// with the qubit count the matrix is built over.
std::uint64_t blockCacheKey(const ir::CompoundOperation& comp,
                            std::size_t numQubits) {
  std::uint64_t key = ir::hashCombine(ir::kHashSeed, 0x424c4b43ULL);  // "BLKC"
  key = ir::hashCombine(key, numQubits);
  for (const auto& op : comp.body()) {
    key = ir::contentHash(key, *op);
  }
  return key;
}

}  // namespace

CircuitSimulator::CircuitSimulator(const ir::Circuit& circuit,
                                   StrategyConfig config, std::uint64_t seed)
    : circuit_(circuit),
      config_(config),
      pkg_(std::make_unique<dd::Package>(circuit.numQubits())),
      rng_(seed),
      clbits_(std::max<std::size_t>(1, circuit.numClbits()), false),
      seed_(seed) {
  config_.validate();
  // Kernel parallelism for the main package (no-op at the default of 1).
  // Builder packages stay serial: the pipeline's fan-out supplies its own
  // parallelism, and N builders x M workers would oversubscribe the host.
  pkg_->setWorkers(config_.threads);
  // DDSIM_NODE_BUDGET supplies a process-wide default (used e.g. by the CI
  // job that runs the whole suite under a tiny budget); an explicit config
  // value wins.
  if (config_.nodeBudget == 0) {
    if (const char* env = std::getenv("DDSIM_NODE_BUDGET")) {
      config_.nodeBudget = std::strtoull(env, nullptr, 10);
    }
  }
  if (config_.nodeBudget > 0 || config_.byteBudget > 0) {
    pkg_->governor().setBudget({config_.nodeBudget, config_.byteBudget,
                                config_.softBudgetFraction});
    // Fires deep inside a multiplication; only flag it — the ladder reacts
    // at the next quiescent point.
    pkg_->governor().setPressureCallback(
        [this](dd::ResourcePressure, std::size_t) {
          pressureSignaled_ = true;
        });
  }
}

SimulationResult CircuitSimulator::run() {
  if (ran_) {
    throw std::logic_error("CircuitSimulator::run may only be called once");
  }
  ran_ = true;

  runTimer_ = Timer{};
  const Timer& timer = runTimer_;
  if (config_.timeLimitSeconds > 0.0 || cancelCheck_) {
    // Interrupts even a single runaway multiplication, not just the gaps
    // between operations. The cancellation hook rides the same abort poll.
    pkg_->setAbortCheck([this] {
      return (cancelCheck_ && cancelCheck_()) ||
             (config_.timeLimitSeconds > 0.0 &&
              runTimer_.seconds() > config_.timeLimitSeconds);
    });
  }
  state_ = pkg_->makeZeroState();
  pkg_->incRef(state_);
  lastStateSize_ = pkg_->size(state_);

  try {
    if (resume_) {
      // Inside the try so a budget-failed import surfaces the same way as
      // any other mid-run exhaustion (wrapped with a progress snapshot).
      applyResume();
    }
    processCircuit();
    flush();
  } catch (const dd::ComputationAborted&) {
    // Disambiguate who tripped the shared abort poll: an active
    // cancellation request wins (a cancelled job is not "timed out").
    if (cancelCheck_ && cancelCheck_()) {
      throw SimulationCancelled(makePartial());
    }
    throw SimulationTimeout(config_.timeLimitSeconds, makePartial());
  } catch (const dd::ResourceExhausted& e) {
    // Every rung of the degradation ladder failed; surface the dd-layer
    // diagnosis together with how far the run got.
    throw ResourceExhausted(e, makePartial());
  }

  stats_.wallSeconds = timer.seconds();
  stats_.finalStateNodes = pkg_->size(state_);
  stats_.dd = pkg_->stats();
  stats_.cache = pkg_->cacheStats();
  return {state_, clbits_, stats_, trace_};
}

void CircuitSimulator::recordStep(StepKind kind, std::size_t matrixNodes,
                                  double seconds) {
  if (!config_.collectTrace) {
    return;
  }
  trace_.steps.push_back(
      {trace_.steps.size(), kind, lastStateSize_, matrixNodes, seconds});
}

void CircuitSimulator::processCircuit() {
  const auto& ops = circuit_.ops();
  if (!config_.pipeline || config_.schedule == Schedule::Sequential) {
    // Indexed (not range-for) so a resumed run can start mid-circuit, and
    // so checkpoints land exactly on top-level operation boundaries.
    for (std::size_t i = startOpIndex_; i < ops.size(); ++i) {
      processOp(*ops[i]);
      maybeCheckpoint(i + 1, 1);
    }
    return;
  }
  std::size_t i = startOpIndex_;
  while (i < ops.size()) {
    if (!pipelineDisabled_ && sequentialCooldown_ == 0) {
      std::vector<const ir::Operation*> run;
      const std::size_t end = collectRun(ops, i, run);
      if (run.size() >= kMinPipelineRun) {
        runPipelined(run);
        maybeCheckpoint(end, end - i);
        i = end;
        continue;
      }
      if (end > i) {
        // A run too short to pay for a builder thread: serial path.
        for (std::size_t j = i; j < end; ++j) {
          processOp(*ops[j]);
        }
        maybeCheckpoint(end, end - i);
        i = end;
        continue;
      }
    }
    processOp(*ops[i]);
    ++i;
    maybeCheckpoint(i, 1);
  }
}

void CircuitSimulator::processOps(
    const std::vector<std::unique_ptr<ir::Operation>>& ops) {
  for (const auto& op : ops) {
    processOp(*op);
  }
}

void CircuitSimulator::processOp(const ir::Operation& op) {
  switch (op.kind()) {
    case OpKind::Standard:
    case OpKind::Oracle:
      handleUnitary(op);
      break;
    case OpKind::ClassicControlled: {
      const auto& c = static_cast<const ir::ClassicControlledOperation&>(op);
      // Any measurement defining this bit flushed the pipeline, so the
      // classical value is final by the time we get here.
      if (clbits_[c.clbit()] == c.expectedValue()) {
        handleUnitary(c.op());
      }
      break;
    }
    case OpKind::Measure: {
      flush();
      const auto& m = static_cast<const ir::MeasureOperation&>(op);
      const obs::ScopedSpan span("sim.measure", obs::cat::kSim);
      const Timer t;
      clbits_[m.clbit()] =
          pkg_->measureOneCollapsing(state_, m.qubit(), rng_) != 0;
      lastStateSize_ = pkg_->size(state_);
      recordStep(StepKind::Measure, 0, t.seconds());
      afterStep();
      break;
    }
    case OpKind::Reset: {
      flush();
      const auto& r = static_cast<const ir::ResetOperation&>(op);
      if (pkg_->measureOneCollapsing(state_, r.qubit(), rng_) != 0) {
        applyToState(pkg_->makeGateDD(ir::gateMatrix(ir::GateType::X), r.qubit()));
      }
      afterStep();
      break;
    }
    case OpKind::Barrier:
      flush();
      break;
    case OpKind::Compound:
      handleCompound(static_cast<const ir::CompoundOperation&>(op));
      break;
  }
}

std::size_t CircuitSimulator::collectRun(
    const std::vector<std::unique_ptr<ir::Operation>>& ops, std::size_t begin,
    std::vector<const ir::Operation*>& out) {
  std::size_t i = begin;
  for (; i < ops.size(); ++i) {
    const ir::Operation& op = *ops[i];
    switch (op.kind()) {
      case OpKind::Standard:
      case OpKind::Oracle:
        out.push_back(&op);
        break;
      case OpKind::ClassicControlled: {
        // Resolvable at collection time: every operation before `begin` has
        // executed, and runs never span measurements, so the controlling
        // bit cannot change while this run is in flight.
        const auto& c = static_cast<const ir::ClassicControlledOperation&>(op);
        if (clbits_[c.clbit()] == c.expectedValue()) {
          out.push_back(&c.op());
        }
        break;
      }
      case OpKind::Compound:
        // DD-repeating blocks keep their own (cacheable) build-once path;
        // impure bodies contain flush points. Both end the run.
        if (config_.reuseRepeatedBlocks || !isPureUnitaryTree(op)) {
          return i;
        }
        appendFlattened(op, out);
        break;
      default:
        return i;  // Measure / Reset / Barrier
    }
  }
  return i;
}

void CircuitSimulator::runPipelined(
    const std::vector<const ir::Operation*>& run) {
  // Runs start at a flush boundary by construction (the preceding operation
  // either flushed or does not exist); keep the invariant explicit.
  flush();
  obs::traceInstant("sim.pipeline.start", obs::cat::kSim, run.size());
  BlockBuilder builder(
      run, circuit_.numQubits(), config_, lastStateSize_, builderInjector_,
      [this] {
        return (cancelCheck_ && cancelCheck_()) ||
               (config_.timeLimitSeconds > 0.0 &&
                runTimer_.seconds() > config_.timeLimitSeconds);
      });
  bool pressureBreak = false;
  std::size_t next = 0;  // first run index not yet covered by an applied block
  std::uint64_t blockIndex = 0;
  while (true) {
    PipelineBlock blk;
    const auto status = builder.next(blk, std::chrono::milliseconds(20));
    if (status == ReorderBuffer::PopStatus::TimedOut) {
      // Builder-bound: keep honouring cancellation and the time limit
      // while we wait (afterStep throws if either tripped).
      ++stats_.pipelineStalls;
      afterStep();
      continue;
    }
    if (status == ReorderBuffer::PopStatus::Drained) {
      break;
    }
    obs::traceInstant("sim.pipeline.queue-depth", obs::cat::kSim,
                      builder.queueDepth());
    MEdge m{};
    {
      const obs::ScopedSpan span("sim.pipeline.import", obs::cat::kSim,
                                 blockIndex);
      try {
        m = dd::importDD(*pkg_, blk.block);
      } catch (const dd::ResourceExhausted&) {
        obs::traceInstant("sim.rung.collect-retry", obs::cat::kSim);
        pkg_->emergencyCollect();
        ++stats_.degradationEvents;
        m = dd::importDD(*pkg_, blk.block);
        ++stats_.resourceRecoveries;
      }
    }
    stats_.migratedNodes += blk.block.nodeCount();
    stats_.mxmCount += blk.mxmCount;
    stats_.builderBuildSeconds += blk.buildSeconds;
    stats_.peakMatrixNodes =
        std::max(stats_.peakMatrixNodes, blk.builderNodes);
    recordStep(StepKind::CombineMatrix, blk.builderNodes, blk.buildSeconds);
    pkg_->incRef(m);
    try {
      applyToState(m);
    } catch (...) {
      pkg_->decRef(m);
      throw;
    }
    pkg_->decRef(m);
    stats_.appliedGates += blk.gateCount;
    ++stats_.pipelinedBlocks;
    next = blk.firstOp + blk.opCount;
    ++blockIndex;
    builder.onBlockApplied(lastStateSize_);
    afterStep();
    if (pressureObserved()) {
      // Degradation rung: the *main* package is under pressure. Stop the
      // builder (discarding prebuilt blocks), and fall back to the serial
      // path — which has the whole ladder — for the rest of the run.
      obs::traceInstant("sim.rung.pipeline-drain", obs::cat::kSim);
      pressureBreak = true;
      break;
    }
  }
  builder.finish();
  if (const std::exception_ptr f = builder.failure()) {
    std::rethrow_exception(f);
  }
  std::size_t resume = run.size();
  bool degrade = false;
  if (pressureBreak) {
    degrade = true;
    resume = next;
  } else if (builder.bowedOut()) {
    // The builder's private package could not afford a block (or an abort
    // poll fired in it). Anything it did hand over has been applied;
    // continue serially from the first uncovered operation.
    obs::traceInstant("sim.rung.pipeline-bow-out", obs::cat::kSim);
    ++stats_.pipelineBowOuts;
    degrade = true;
    resume = builder.resumeIndex();
  }
  if (degrade) {
    ++stats_.degradationEvents;
    pipelineDisabled_ = true;
    enterCooldown();
    // Serial fallback: replay the uncovered tail through the normal path.
    // Counted separately from pipelined work so degraded runs are
    // distinguishable in the stats (and the serving layer's JSON).
    stats_.serialFallbackOps += run.size() - resume;
    for (std::size_t j = resume; j < run.size(); ++j) {
      handleUnitary(*run[j]);
    }
  }
}

void CircuitSimulator::handleUnitary(const ir::Operation& op) {
  enqueue(buildOpDD(op), op.flatGateCount());
}

void CircuitSimulator::handleCompound(const ir::CompoundOperation& comp) {
  if (!config_.reuseRepeatedBlocks) {
    // Inline the block: its gates stream through the normal combining logic
    // (a k-operations window may even span iteration boundaries).
    for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
      processOps(comp.body());
    }
    return;
  }
  // DD-repeating: combine the whole block into one matrix DD, then apply it
  // once per repetition. After the one-time construction no further
  // matrix-matrix multiplication is needed (paper Section IV-B).
  flush();
  MEdge block{};
  bool imported = false;
  std::uint64_t cacheKey = 0;
  if (blockCache_) {
    // Shared block cache: another simulation may already have built this
    // block matrix — import its flat form instead of rebuilding.
    cacheKey = blockCacheKey(comp, circuit_.numQubits());
    if (const auto flat = blockCache_->lookup(cacheKey)) {
      try {
        block = dd::importDD(*pkg_, *flat);
        stats_.migratedNodes += flat->nodeCount();
        imported = true;
      } catch (const dd::ResourceExhausted&) {
        // Cannot afford the import right now; reclaim and fall through to
        // the regular build, which has its own degradation path.
        pkg_->emergencyCollect();
        ++stats_.degradationEvents;
      }
    }
  }
  if (!imported) {
    try {
      block = buildBlockDD(comp.body());
    } catch (const dd::ResourceExhausted&) {
      // The block matrix does not fit the budget. Reclaim and degrade
      // DD-repeating to plain repetition: stream the block's gates through
      // the normal combining logic instead.
      pkg_->emergencyCollect();
      ++stats_.degradationEvents;
      ++stats_.resourceRecoveries;
      for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
        processOps(comp.body());
      }
      return;
    }
    if (blockCache_) {
      blockCache_->insert(cacheKey, std::make_shared<dd::FlatMatrixDD>(
                                        dd::exportDD(*pkg_, block)));
    }
  }
  pkg_->incRef(block);
  stats_.peakMatrixNodes = std::max(stats_.peakMatrixNodes, pkg_->size(block));
  try {
    for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
      applyToState(block);
      stats_.appliedGates += comp.flatGateCount() / comp.repetitions();
      afterStep();
    }
  } catch (...) {
    pkg_->decRef(block);
    throw;
  }
  pkg_->decRef(block);
}

MEdge CircuitSimulator::buildBlockDD(
    const std::vector<std::unique_ptr<ir::Operation>>& body) {
  MEdge block = pkg_->makeIdent();
  pkg_->incRef(block);
  try {
    for (const auto& op : body) {
      MEdge g{};
      switch (op->kind()) {
        case OpKind::Standard:
        case OpKind::Oracle:
          g = buildOpDD(*op);
          break;
        case OpKind::Compound: {
          const auto& inner = static_cast<const ir::CompoundOperation&>(*op);
          MEdge innerBlock = buildBlockDD(inner.body());
          pkg_->incRef(innerBlock);
          g = pkg_->makeIdent();
          try {
            for (std::size_t rep = 0; rep < inner.repetitions(); ++rep) {
              g = pkg_->multiply(innerBlock, g);
              ++stats_.mxmCount;
            }
          } catch (...) {
            pkg_->decRef(innerBlock);
            throw;
          }
          pkg_->decRef(innerBlock);
          break;
        }
        default:
          throw std::invalid_argument(
              "DD-repeating requires purely unitary blocks, found: " +
              op->toString());
      }
      MEdge combined = pkg_->multiply(g, block);
      ++stats_.mxmCount;
      pkg_->incRef(combined);
      pkg_->decRef(block);
      block = combined;
      pkg_->maybeGarbageCollect();
    }
  } catch (...) {
    // Drop the root so an abandoned partial product is reclaimable by the
    // next (emergency) collection.
    pkg_->decRef(block);
    throw;
  }
  pkg_->decRef(block);  // caller re-roots
  return block;
}

MEdge CircuitSimulator::buildOpDD(const ir::Operation& op) {
  const auto it = gateCache_.find(&op);
  if (it != gateCache_.end()) {
    return it->second;
  }
  const MEdge m = buildOperationDD(*pkg_, op);
  pkg_->incRef(m);
  gateCache_.emplace(&op, m);
  return m;
}

void CircuitSimulator::enqueue(const MEdge& gateDD, std::size_t gateCount) {
  stats_.appliedGates += gateCount;
  if (config_.schedule == Schedule::Sequential) {
    applyToState(gateDD);
    afterStep();
    return;
  }
  // Degradation rung: while a pressure cooldown is active, run in the
  // paper's sequential mode (Eq. 1) — one MxV per operation, no accumulator
  // to blow up.
  if (sequentialCooldown_ > 0) {
    --sequentialCooldown_;
    ++stats_.sequentialFallbackOps;
    applyToState(gateDD);
    afterStep();
    return;
  }

  const obs::ScopedSpan span("sim.combine", obs::cat::kSim);
  const Timer t;
  if (!accPending_) {
    acc_ = gateDD;
    pkg_->incRef(acc_);
    accPending_ = true;
    accCount_ = 1;
    accGates_ = gateCount;
  } else {
    // state' = g * (acc * v) = (g * acc) * v: new factors multiply from the
    // left.
    MEdge combined{};
    try {
      combined = pkg_->multiply(gateDD, acc_);
    } catch (const dd::ResourceExhausted&) {
      // Accumulator explosion hit the hard rung mid-MxM. Reclaim, flush the
      // product built so far, apply the new gate directly, and cool down in
      // sequential mode.
      obs::traceInstant("sim.rung.collect-retry", obs::cat::kSim);
      pkg_->emergencyCollect();
      ++stats_.degradationEvents;
      ++stats_.pressureFlushes;
      pressureSignaled_ = false;
      flush();
      applyToState(gateDD);
      ++stats_.resourceRecoveries;
      enterCooldown();
      afterStep();
      return;
    }
    ++stats_.mxmCount;
    pkg_->incRef(combined);
    pkg_->decRef(acc_);
    acc_ = combined;
    ++accCount_;
    accGates_ += gateCount;
  }

  const std::size_t accSize = pkg_->size(acc_);
  stats_.peakMatrixNodes = std::max(stats_.peakMatrixNodes, accSize);
  recordStep(StepKind::CombineMatrix, accSize, t.seconds());

  // Soft rung: pressure observed while (or since) accumulating. Flush the
  // accumulator at this quiescent point and fall back to sequential
  // application for the cooldown window.
  if (pressureObserved()) {
    obs::traceInstant("sim.rung.pressure-flush", obs::cat::kSim);
    ++stats_.degradationEvents;
    ++stats_.pressureFlushes;
    flush();
    enterCooldown();
    return;
  }

  bool full = false;
  switch (config_.schedule) {
    case Schedule::KOperations:
      full = accCount_ >= config_.k;
      break;
    case Schedule::MaxSize:
      full = accSize > config_.maxSize;
      break;
    case Schedule::Adaptive:
      // Combine while the product stays small relative to the state: once
      // the matrix DD rivals the state DD, applying it costs as much as the
      // MxV we are trying to avoid.
      full = static_cast<double>(accSize) >
             config_.adaptiveRatio * static_cast<double>(lastStateSize_);
      break;
    case Schedule::Sequential:
      break;  // unreachable (handled above)
  }
  if (full) {
    flush();
  } else {
    afterStep();
  }
}

void CircuitSimulator::applyToState(const MEdge& m) {
  const obs::ScopedSpan span("sim.apply", obs::cat::kSim);
  const Timer t;
  VEdge next{};
  try {
    next = pkg_->multiply(m, state_);
  } catch (const dd::ResourceExhausted&) {
    // Hard rung mid-MxV: reclaim everything reclaimable, shrink the state
    // if approximation is allowed, then retry once. A second failure
    // propagates to run(), which wraps it with the progress snapshot.
    obs::traceInstant("sim.rung.collect-retry", obs::cat::kSim);
    pkg_->emergencyCollect();
    ++stats_.degradationEvents;
    if (config_.approximateFidelity < 1.0) {
      forcedApproximation();
    }
    next = pkg_->multiply(m, state_);
    ++stats_.resourceRecoveries;
  }
  ++stats_.mxvCount;
  pkg_->incRef(next);
  pkg_->decRef(state_);
  state_ = next;
  lastStateSize_ = pkg_->size(state_);

  // Approximate-while-simulating: trade bounded fidelity for a smaller
  // state DD (the size of which is exactly what every further step pays
  // for, per Section III of the paper).
  if (config_.approximateFidelity < 1.0 &&
      lastStateSize_ > config_.approximateThreshold) {
    const auto approx =
        dd::approximate(*pkg_, state_, config_.approximateFidelity);
    if (approx.removedEdges > 0) {
      pkg_->incRef(approx.state);
      pkg_->decRef(state_);
      state_ = approx.state;
      stats_.approxFidelity *= approx.fidelity;
      ++stats_.approxRounds;
      lastStateSize_ = approx.nodesAfter;
    }
  }

  // Soft rung on the state DD itself: if pressure was observed and lossy
  // compression is allowed, prune now rather than carrying an oversized
  // state into the next multiplication.
  if (config_.approximateFidelity < 1.0 && pressureObserved()) {
    ++stats_.degradationEvents;
    forcedApproximation();
  }

  stats_.peakStateNodes = std::max(stats_.peakStateNodes, lastStateSize_);
  recordStep(StepKind::ApplyToState,
             config_.collectTrace ? pkg_->size(m) : 0, t.seconds());
}

void CircuitSimulator::flush() {
  if (!accPending_) {
    return;
  }
  applyToState(acc_);
  pkg_->decRef(acc_);
  accPending_ = false;
  accCount_ = 0;
  accGates_ = 0;
  afterStep();
}

void CircuitSimulator::afterStep() {
  pkg_->maybeGarbageCollect();
  if (cancelCheck_ && cancelCheck_()) {
    throw SimulationCancelled(makePartial());
  }
  if (config_.timeLimitSeconds > 0.0 &&
      runTimer_.seconds() > config_.timeLimitSeconds) {
    throw SimulationTimeout(config_.timeLimitSeconds, makePartial());
  }
}

void CircuitSimulator::enterCooldown() {
  obs::traceInstant("sim.rung.sequential-fallback", obs::cat::kSim);
  sequentialCooldown_ = config_.degradeCooldownOps;
}

/// Prune the state DD down to the configured per-step fidelity, counting
/// the round as pressure-forced.
void CircuitSimulator::forcedApproximation() {
  const obs::ScopedSpan span("sim.forced-approximation", obs::cat::kSim);
  const auto approx =
      dd::approximate(*pkg_, state_, config_.approximateFidelity);
  if (approx.removedEdges > 0) {
    pkg_->incRef(approx.state);
    pkg_->decRef(state_);
    state_ = approx.state;
    stats_.approxFidelity *= approx.fidelity;
    ++stats_.approxRounds;
    ++stats_.pressureApproximations;
    lastStateSize_ = approx.nodesAfter;
  }
}

/// Consume the pressure flag: true if the governor signaled pressure since
/// the last check, or current usage still sits above the soft threshold.
bool CircuitSimulator::pressureObserved() {
  const bool signaled = pressureSignaled_.exchange(false);
  return signaled ||
         pkg_->resourcePressure() != dd::ResourcePressure::None;
}

std::uint64_t CircuitSimulator::circuitIdentityHash() {
  if (!circuitHash_) {
    circuitHash_ = ir::contentHash(circuit_);
  }
  return *circuitHash_;
}

std::uint64_t CircuitSimulator::strategyIdentityHash() const {
  StrategyConfig c = config_;
  // timeLimitSeconds is outcome-neutral for resume purposes: it decides
  // whether the run finishes, never what it measures. The serve layer
  // re-derives a shrinking limit from the job deadline on every retry
  // attempt, so hashing it would force every deadline-bound retry to
  // restart from scratch instead of resuming.
  c.timeLimitSeconds = 0.0;
  return c.contentHash();
}

void CircuitSimulator::resumeFrom(const Checkpoint& checkpoint) {
  if (ran_) {
    throw std::logic_error(
        "CircuitSimulator::resumeFrom must be called before run()");
  }
  if (checkpoint.circuitHash != circuitIdentityHash()) {
    throw CheckpointError("checkpoint belongs to a different circuit");
  }
  if (checkpoint.strategyHash != strategyIdentityHash()) {
    throw CheckpointError("checkpoint belongs to a different strategy");
  }
  if (checkpoint.seed != seed_) {
    throw CheckpointError("checkpoint belongs to a different seed");
  }
  if (checkpoint.nextOpIndex > circuit_.ops().size()) {
    throw CheckpointError("checkpoint op index past the end of the circuit");
  }
  if (checkpoint.classicalBits.size() != clbits_.size()) {
    throw CheckpointError(
        "checkpoint classical register width does not match the circuit");
  }
  resume_ = checkpoint;
}

void CircuitSimulator::applyResume() {
  const Checkpoint& ck = *resume_;
  // Restore the RNG stream position first: mt19937_64's operator>> sets
  // failbit on malformed input without touching the engine, so a bad blob
  // is rejected before any package state changes hands.
  std::istringstream is(ck.rngState);
  is >> rng_;
  if (is.fail()) {
    throw CheckpointError("malformed RNG state in checkpoint");
  }

  const VEdge imported = dd::importDD(*pkg_, ck.state);
  pkg_->incRef(imported);
  pkg_->decRef(state_);
  state_ = imported;
  lastStateSize_ = pkg_->size(state_);

  clbits_ = ck.classicalBits;
  stats_ = ck.stats;
  stats_.migratedNodes += ck.state.nodeCount();
  if (ck.accPending) {
    acc_ = dd::importDD(*pkg_, ck.acc);
    pkg_->incRef(acc_);
    accPending_ = true;
    accCount_ = static_cast<std::size_t>(ck.accCount);
    accGates_ = ck.accGates;
    stats_.migratedNodes += ck.acc.nodeCount();
  }
  sequentialCooldown_ = static_cast<std::size_t>(ck.sequentialCooldown);
  pipelineDisabled_ = ck.pipelineDisabled;
  startOpIndex_ = static_cast<std::size_t>(ck.nextOpIndex);
  ++stats_.resumedFromCheckpoint;
  obs::traceInstant("sim.resume", obs::cat::kSim, startOpIndex_);
}

void CircuitSimulator::maybeCheckpoint(std::size_t nextOp,
                                       std::size_t opsDelta) {
  if (config_.checkpointIntervalOps == 0 || !ckptSink_) {
    return;
  }
  opsSinceCkpt_ += opsDelta;
  if (opsSinceCkpt_ < config_.checkpointIntervalOps) {
    return;
  }
  opsSinceCkpt_ = 0;
  if (nextOp >= circuit_.ops().size()) {
    return;  // nothing left to resume into — the run is about to finish
  }
  takeCheckpoint(nextOp);
}

void CircuitSimulator::takeCheckpoint(std::size_t nextOp) {
  const obs::ScopedSpan span("sim.checkpoint", obs::cat::kSim, nextOp);
  Checkpoint ck;
  ck.circuitHash = circuitIdentityHash();
  ck.strategyHash = strategyIdentityHash();
  ck.seed = seed_;
  ck.nextOpIndex = nextOp;
  std::ostringstream os;
  os << rng_;
  ck.rngState = os.str();
  ck.classicalBits = clbits_;
  ck.state = dd::exportDD(*pkg_, state_);
  ck.accPending = accPending_;
  if (accPending_) {
    ck.acc = dd::exportDD(*pkg_, acc_);
  }
  ck.accCount = accCount_;
  ck.accGates = accGates_;
  ck.sequentialCooldown = sequentialCooldown_;
  ck.pipelineDisabled = pipelineDisabled_;
  ++stats_.checkpointsTaken;
  ck.stats = stats_;
  ckptSink_(ck);
}

PartialResult CircuitSimulator::makePartial() {
  PartialResult p;
  p.opsCompleted =
      stats_.appliedGates >= accGates_ ? stats_.appliedGates - accGates_ : 0;
  p.peakLiveNodes = std::max(
      {stats_.peakStateNodes, stats_.peakMatrixNodes, pkg_->liveNodes()});
  p.elapsedSeconds = runTimer_.seconds();
  p.stats = stats_;
  p.stats.wallSeconds = p.elapsedSeconds;
  p.stats.finalStateNodes = pkg_->size(state_);
  p.stats.dd = pkg_->stats();
  p.stats.cache = pkg_->cacheStats();
  return p;
}

DetachedResult simulate(const ir::Circuit& circuit, StrategyConfig config,
                        std::uint64_t seed) {
  CircuitSimulator sim(circuit, config, seed);
  SimulationResult result = sim.run();
  return {std::move(result.classicalBits), result.stats};
}

std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream) noexcept {
  // SplitMix64 over golden-ratio spaced stream offsets (same finalizer as
  // ir::hashCombine). Documented contract — see simulator.hpp.
  std::uint64_t z = base ^ (stream * 0x9e3779b97f4a7c15ULL +
                            0x9e3779b97f4a7c15ULL);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace ddsim::sim
