/// \file build_dd.hpp
/// \brief Shared lowering of IR operations to matrix DDs, used by the vector
///        simulator, the density-matrix simulator and the equivalence
///        checker.

#pragma once

#include "dd/package.hpp"
#include "ir/operation.hpp"

namespace ddsim::sim {

/// Matrix DD of a unitary operation (standard gate incl. Swap lowering, or
/// oracle as a permutation DD). Throws std::invalid_argument for
/// non-unitary operation kinds.
dd::MEdge buildOperationDD(dd::Package& pkg, const ir::Operation& op);

}  // namespace ddsim::sim
