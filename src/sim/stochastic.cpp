#include "sim/stochastic.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "dd/package.hpp"
#include "sim/build_dd.hpp"

namespace ddsim::sim {

namespace {

using dd::MEdge;
using dd::VEdge;

class TrajectoryRunner {
 public:
  /// The package is shared across trajectories (construction of the
  /// compute tables is far more expensive than a single trajectory).
  TrajectoryRunner(const ir::Circuit& circuit, const NoiseModel& noise,
                   dd::Package& pkg, std::mt19937_64& rng)
      : circuit_(circuit), noise_(noise), rng_(rng), pkg_(&pkg),
        clbits_(std::max<std::size_t>(1, circuit.numClbits()), false) {}

  /// Returns the rooted final state; the caller must decRef it.
  VEdge run() {
    std::fill(clbits_.begin(), clbits_.end(), false);
    state_ = pkg_->makeZeroState();
    pkg_->incRef(state_);
    processOps(circuit_.ops());
    return state_;
  }

 private:
  void processOps(const std::vector<std::unique_ptr<ir::Operation>>& ops) {
    using ir::OpKind;
    for (const auto& op : ops) {
      switch (op->kind()) {
        case OpKind::Standard:
        case OpKind::Oracle:
          applyUnitary(*op);
          break;
        case OpKind::ClassicControlled: {
          const auto& c =
              static_cast<const ir::ClassicControlledOperation&>(*op);
          if (clbits_[c.clbit()] == c.expectedValue()) {
            applyUnitary(c.op());
          }
          break;
        }
        case OpKind::Measure: {
          const auto& m = static_cast<const ir::MeasureOperation&>(*op);
          clbits_[m.clbit()] =
              pkg_->measureOneCollapsing(state_, m.qubit(), rng_) != 0;
          break;
        }
        case OpKind::Reset: {
          const auto& r = static_cast<const ir::ResetOperation&>(*op);
          if (pkg_->measureOneCollapsing(state_, r.qubit(), rng_) != 0) {
            replace(pkg_->multiply(
                pkg_->makeGateDD(ir::gateMatrix(ir::GateType::X), r.qubit()),
                state_));
          }
          break;
        }
        case OpKind::Barrier:
          break;
        case OpKind::Compound: {
          const auto& comp = static_cast<const ir::CompoundOperation&>(*op);
          for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
            processOps(comp.body());
          }
          break;
        }
      }
      pkg_->maybeGarbageCollect();
    }
  }

  void applyUnitary(const ir::Operation& op) {
    replace(pkg_->multiply(buildOperationDD(*pkg_, op), state_));
    if (noise_.empty()) {
      return;
    }
    for (const auto& channel : noise_.channels) {
      for (const dd::Qubit q : touchedQubits(op)) {
        applyChannel(channel, q);
      }
    }
  }

  static std::vector<dd::Qubit> touchedQubits(const ir::Operation& op) {
    std::vector<dd::Qubit> touched;
    if (op.kind() == ir::OpKind::Oracle) {
      const auto& o = static_cast<const ir::OracleOperation&>(op);
      for (std::size_t q = 0; q < o.numTargets(); ++q) {
        touched.push_back(static_cast<dd::Qubit>(q));
      }
      for (const auto& c : o.controls()) {
        touched.push_back(c.qubit);
      }
    } else {
      const auto& s = static_cast<const ir::StandardOperation&>(op);
      touched = s.targets();
      for (const auto& c : s.controls()) {
        touched.push_back(c.qubit);
      }
    }
    return touched;
  }

  /// Monte-Carlo Kraus selection: operator K_k is chosen with probability
  /// ||K_k |psi>||^2 (they sum to 1 for a trace-preserving channel), then
  /// the state is renormalized.
  void applyChannel(const NoiseChannel& channel, dd::Qubit q) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    const double u = dist(rng_);
    double cumulative = 0.0;
    for (std::size_t k = 0; k < channel.kraus().size(); ++k) {
      const MEdge kdd = pkg_->makeGateDD(channel.kraus()[k], q);
      VEdge candidate = pkg_->multiply(kdd, state_);
      const double prob = pkg_->norm2(candidate);
      cumulative += prob;
      // The last operator absorbs residual rounding mass.
      if (u < cumulative || k + 1 == channel.kraus().size()) {
        if (prob <= 0.0) {
          continue;  // zero-probability branch: keep looking
        }
        candidate.w = pkg_->clookup(*candidate.w * (1.0 / std::sqrt(prob)));
        replace(candidate);
        return;
      }
    }
  }

  void replace(const VEdge& next) {
    pkg_->incRef(next);
    pkg_->decRef(state_);
    state_ = next;
  }

  const ir::Circuit& circuit_;
  const NoiseModel& noise_;
  std::mt19937_64& rng_;
  dd::Package* pkg_;
  VEdge state_{};
  std::vector<bool> clbits_;
};

}  // namespace

StochasticResult simulateStochastic(const ir::Circuit& circuit,
                                    const NoiseModel& noise,
                                    std::size_t trajectories,
                                    std::uint64_t seed) {
  if (trajectories == 0) {
    throw std::invalid_argument("simulateStochastic: need at least one trajectory");
  }
  for (const auto& channel : noise.channels) {
    if (!channel.isTracePreserving()) {
      throw std::invalid_argument("noise channel '" + channel.name() +
                                  "' is not trace preserving");
    }
  }

  const Timer timer;
  StochasticResult result;
  result.trajectories = trajectories;
  result.meanProbabilityOfOne.assign(circuit.numQubits(), 0.0);

  std::mt19937_64 rng(seed);
  dd::Package pkg(circuit.numQubits());
  TrajectoryRunner runner(circuit, noise, pkg, rng);
  for (std::size_t t = 0; t < trajectories; ++t) {
    VEdge state = runner.run();
    for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
      result.meanProbabilityOfOne[q] +=
          pkg.probabilityOfOne(state, static_cast<dd::Qubit>(q));
    }
    ++result.counts[pkg.measureAll(state, rng, /*collapse=*/false)];
    pkg.decRef(state);
    pkg.maybeGarbageCollect();
  }
  for (auto& p : result.meanProbabilityOfOne) {
    p /= static_cast<double>(trajectories);
  }
  result.wallSeconds = timer.seconds();
  return result;
}

}  // namespace ddsim::sim
