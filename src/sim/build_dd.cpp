#include "sim/build_dd.hpp"

#include <stdexcept>

namespace ddsim::sim {

using dd::MEdge;

MEdge buildOperationDD(dd::Package& pkg, const ir::Operation& op) {
  if (op.kind() == ir::OpKind::Oracle) {
    // DD-construct: the oracle's Boolean functionality becomes a
    // permutation-matrix DD directly, with no elementary-gate expansion.
    const auto& oracle = static_cast<const ir::OracleOperation&>(op);
    return pkg.makePermutationDD(oracle.permutationTable(), oracle.controls());
  }
  if (op.kind() != ir::OpKind::Standard) {
    throw std::invalid_argument("buildOperationDD: non-unitary operation '" +
                                op.toString() + "'");
  }
  const auto& s = static_cast<const ir::StandardOperation&>(op);
  if (s.type() == ir::GateType::Swap) {
    // SWAP = CX(a,b) CX(b,a) CX(a,b); extra controls distribute over the
    // factors since diag(I,U) diag(I,V) = diag(I,UV).
    const dd::Qubit a = s.targets()[0];
    const dd::Qubit b = s.targets()[1];
    const dd::GateMatrix x = ir::gateMatrix(ir::GateType::X);
    dd::Controls cab = s.controls();
    cab.push_back(dd::Control{a});
    dd::Controls cba = s.controls();
    cba.push_back(dd::Control{b});
    const MEdge cxAB = pkg.makeGateDD(x, b, cab);
    const MEdge cxBA = pkg.makeGateDD(x, a, cba);
    return pkg.multiply(cxAB, pkg.multiply(cxBA, cxAB));
  }
  return pkg.makeGateDD(s.matrix(), s.targets()[0], s.controls());
}

}  // namespace ddsim::sim
