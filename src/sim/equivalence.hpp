/// \file equivalence.hpp
/// \brief DD-based circuit equivalence checking.
///
/// A natural by-product of having matrix-matrix multiplication on DDs
/// (paper Section II-B / III): build the full unitary of each circuit as a
/// matrix DD and compare. Canonicity makes the comparison cheap — two equal
/// unitaries collapse to the same node, and phase-equivalent ones differ
/// only in the root weight.

#pragma once

#include "dd/package.hpp"
#include "ir/circuit.hpp"

namespace ddsim::sim {

/// The full unitary of a (purely unitary) circuit as a matrix DD inside
/// \p pkg. Throws std::invalid_argument for non-unitary operations.
dd::MEdge buildCircuitMatrix(dd::Package& pkg, const ir::Circuit& circuit);

enum class Equivalence {
  Equivalent,           ///< equal as matrices
  EquivalentUpToPhase,  ///< equal up to a global phase factor
  NotEquivalent,
};

/// Compare two circuits over the same number of qubits by building both
/// unitaries as DDs.
Equivalence checkEquivalence(const ir::Circuit& a, const ir::Circuit& b);

/// Convenience: true for Equivalent or EquivalentUpToPhase.
bool areEquivalent(const ir::Circuit& a, const ir::Circuit& b);

}  // namespace ddsim::sim
