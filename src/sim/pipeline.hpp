/// \file pipeline.hpp
/// \brief Pipelined block building: up to pipelineDepth builder threads
///        combine future blocks of gates in private dd::Packages while the
///        main thread applies finished blocks to the state, in order.
///
/// The paper separates simulation into two phases — combining operation
/// matrices (MxM) and applying the product to the state (MxV) — that run
/// serially on one thread, so combine wall time adds directly to apply wall
/// time. Block construction only depends on the gate stream (and, for the
/// Adaptive schedule, on the state *size*, not the state itself), so it can
/// run ahead on other threads. Packages never share nodes: blocks cross the
/// thread boundary as portable FlatMatrixDD values (dd/migration.hpp)
/// through an ordered reorder buffer with backpressure.
///
/// Fan-out: builders claim block sequence numbers from a shared scheduler.
/// With the KOperations schedule, block boundaries are static (block s
/// covers ops [s*k, (s+1)*k)), so N builders construct N different future
/// blocks concurrently. With MaxSize/Adaptive, block s+1's first operation
/// is only known once block s is fully combined, so builders form a relay:
/// one combines the frontier block while another overlaps the export /
/// handoff of the previous one. The consumer always receives blocks in
/// sequence order regardless of completion order.
///
/// Determinism contract: builders replicate the serial engine's block
/// boundaries exactly — KOperations counts gates, MaxSize measures its own
/// accumulator (DD canonicity makes node counts package-independent), and
/// Adaptive waits for the applied-state-size feedback of the previous block
/// before deciding boundaries, which is precisely the information the
/// serial loop uses. Identical boundaries mean identical floating-point
/// groupings, so pipelined runs produce bit-identical states and
/// measurement outcomes for the same seed as serial runs, at any
/// pipelineDepth. (Builder packages are private and single-threaded; the
/// `threads` knob parallelizes the *main* package's kernels and carries its
/// own, weaker last-ulp guarantee — see dd::Package::setWorkers.)
///
/// Failure protocol: if a builder's private package exhausts its resource
/// budget (or a fault injector fires in it), the builder *bows out* — it
/// reports the failed block's sequence number and first operation index to
/// the scheduler and exits. The scheduler truncates the stream at the
/// lowest failed sequence: blocks below it stay valid and are drained by
/// the simulator, blocks at/above it are discarded (other builders abandon
/// them mid-build via a cheap per-gate poll), and resumeIndex() names the
/// operation the serial fallback resumes from. Builder failure never fails
/// the simulation.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "dd/fault_injection.hpp"
#include "dd/migration.hpp"
#include "sim/stats.hpp"

namespace ddsim::ir {
class Operation;
}  // namespace ddsim::ir

namespace ddsim::sim {

/// One combined block in portable form, plus the accounting the main thread
/// folds into SimulationStats when it applies the block.
struct PipelineBlock {
  dd::FlatMatrixDD block;
  /// Index of the block's first operation in the run (flattened gate list).
  std::size_t firstOp = 0;
  /// Operations combined into this block.
  std::size_t opCount = 0;
  /// Elementary gates those operations amount to.
  std::uint64_t gateCount = 0;
  /// MxM multiplications the builder spent combining them.
  std::uint64_t mxmCount = 0;
  /// Accumulator DD size in the builder package (== size after import, by
  /// canonicity).
  std::size_t builderNodes = 0;
  /// Wall time the builder spent on this block — time the serial engine
  /// would have added to the critical path.
  double buildSeconds = 0.0;
};

/// Bounded multi-producer/single-consumer *ordered* handoff buffer.
/// Producers push blocks tagged with their sequence number in any
/// completion order; the consumer only ever pops the next sequence number,
/// so blocks are re-serialized into stream order. A producer blocks in
/// push() when its sequence is more than `capacity` ahead of the consumer
/// (backpressure); the consumer polls popFor() with a timeout so it can
/// keep honouring cancellation and time limits while builders work.
///
/// truncate(limit) declares that no sequence >= limit will ever be
/// consumed: queued blocks at/above it are discarded, pushes for them
/// return immediately, and popFor reports Drained once the consumer has
/// popped everything below. Producers call it when the end of the run (or
/// the lowest failed block) becomes known; limits only ever shrink.
class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::size_t capacity) : capacity_(capacity) {}

  enum class PopStatus {
    Ok,        ///< the next in-order block was dequeued
    TimedOut,  ///< next block not ready, producers still running
    Drained,   ///< every block below the truncation limit was consumed
  };

  /// Producer: enqueue block \p seq, waiting while it is outside the
  /// consumer's backpressure window. Returns false if the consumer aborted
  /// the buffer (the block is dropped and the producer should exit); blocks
  /// at/above the truncation limit are silently dropped with true.
  bool push(std::uint64_t seq, PipelineBlock&& blk);
  /// Consumer: dequeue the next in-order block, waiting up to \p timeout.
  PopStatus popFor(PipelineBlock& out, std::chrono::milliseconds timeout);
  /// Producer side: no sequence >= \p limit will ever arrive (min-combines
  /// with previous limits).
  void truncate(std::uint64_t limit);
  /// Consumer: discard queued blocks and unblock every producer (their next
  /// push fails). Used on early exit so builders never deadlock on a full
  /// buffer.
  void abort();
  [[nodiscard]] std::size_t depth() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable mayPush_;
  std::condition_variable mayPop_;
  std::map<std::uint64_t, PipelineBlock> ready_;
  std::size_t capacity_;
  std::uint64_t popNext_ = 0;
  std::uint64_t limit_ = std::numeric_limits<std::uint64_t>::max();
  bool aborted_ = false;
};

/// Builder-package counters, summed across all builder threads and merged
/// into the simulation stats after the builders exit (their MxM work would
/// otherwise vanish from the dd/cache totals).
struct BuilderStats {
  dd::PackageStats dd;
  dd::CacheStats cache;
  std::uint64_t blocksBuilt = 0;
  double buildSeconds = 0.0;
};

/// Owns the builder threads for one pipelined run (a maximal measurement-
/// free stretch of unitary operations). The constructor starts
/// min(config.pipelineDepth, kMaxBuilders) threads; the destructor stops
/// and joins them, so a BlockBuilder on the stack can never leak a thread
/// no matter how the consumer unwinds.
class BlockBuilder {
 public:
  /// Builder threads beyond this count cannot help: the reorder window is
  /// at most pipelineDepth blocks and each builder owns a full private
  /// package, so the fan-out is capped to bound memory.
  static constexpr std::size_t kMaxBuilders = 8;

  /// \p run must stay alive and unchanged until finish()/destruction.
  /// \p externalAbort is polled from the builder threads (through the
  /// builder packages' abort checks), so it must be thread-safe — an atomic
  /// flag or a monotonic-clock comparison, like the cancellation hooks the
  /// serving layer installs.
  BlockBuilder(const std::vector<const ir::Operation*>& run,
               std::size_t numQubits, const StrategyConfig& config,
               std::size_t initialStateNodes, dd::FaultInjector* faultInjector,
               std::function<bool()> externalAbort);
  ~BlockBuilder();

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// Consumer: fetch the next in-order block (see ReorderBuffer::popFor).
  ReorderBuffer::PopStatus next(PipelineBlock& out,
                                std::chrono::milliseconds timeout);
  /// Consumer: report the state DD size after applying a block, in block
  /// order. Feeds the Adaptive schedule's boundary decisions; harmless (and
  /// skippable) for the other schedules.
  void onBlockApplied(std::size_t stateNodes);
  /// Stop the builders and join their threads (idempotent; also run by the
  /// destructor). Queued-but-unapplied blocks are discarded.
  void finish();

  /// The following accessors are valid once popFor returned Drained or
  /// finish() was called.
  [[nodiscard]] bool bowedOut() const noexcept { return bowedOut_; }
  /// First run index *not* covered by a delivered block — where the serial
  /// fallback resumes after a bow-out (run size on a clean finish).
  [[nodiscard]] std::size_t resumeIndex() const noexcept {
    return resumeIndex_;
  }
  /// Unexpected builder-thread exception (not ResourceExhausted /
  /// ComputationAborted, which bow out instead); rethrow in the consumer.
  [[nodiscard]] std::exception_ptr failure() const noexcept {
    return failure_;
  }
  [[nodiscard]] const BuilderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queueDepth() const { return buffer_.depth(); }
  [[nodiscard]] std::size_t builderCount() const noexcept {
    return threads_.size();
  }

 private:
  void threadMain(std::size_t builderId);
  void buildLoop(dd::Package& pkg, std::uint64_t& blocksBuilt,
                 double& buildSeconds);
  /// Claim the next block sequence number and its first operation index.
  /// KOperations boundaries are static (start = seq * k), so claims return
  /// immediately; MaxSize/Adaptive claims wait until the previous block's
  /// end was published. Returns false when the run is exhausted, a lower
  /// block failed, or the builder was stopped.
  bool claimNext(std::uint64_t& seq, std::size_t& start);
  /// Build block \p seq starting at \p start and push it. Returns false if
  /// the builder should exit (stop, abandonment, aborted buffer). Throws
  /// dd::ResourceExhausted / dd::ComputationAborted like the serial engine.
  bool buildBlock(dd::Package& pkg,
                  const std::function<dd::MEdge(const ir::Operation&)>& gate,
                  std::uint64_t seq, std::size_t start,
                  std::uint64_t& blocksBuilt, double& buildSeconds);
  /// Publish block \p seq's end (one past its last operation): unlocks the
  /// claim of seq+1 for dynamic schedules and detects the end of the run.
  void publishBoundary(std::uint64_t seq, std::size_t end);
  /// Record a failed/abandoned block: truncates the stream at the lowest
  /// failed sequence and points resumeIndex() at its first operation.
  void reportFailure(std::uint64_t seq, std::size_t start, bool bowOut);
  /// Adaptive feedback: state size after block \p seq - 1 (the initial
  /// state size for block 0). False if the block became unconsumable (stop
  /// or a lower failure) before the feedback arrived.
  bool waitStateFeedback(std::uint64_t seq, std::size_t& nodes);
  [[nodiscard]] bool stopRequested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  const std::vector<const ir::Operation*>& run_;
  std::size_t numQubits_;
  StrategyConfig config_;
  std::size_t initialStateNodes_;
  dd::FaultInjector* injector_;
  std::function<bool()> externalAbort_;

  ReorderBuffer buffer_;
  std::atomic<bool> stop_{false};

  // Scheduler state: which block each builder works on next, where blocks
  // start, and where the stream ends (normally or by failure). schedCv_ is
  // also the Adaptive feedback channel (fbSizes_).
  std::mutex schedMutex_;
  std::condition_variable schedCv_;
  std::uint64_t nextSeq_ = 0;
  /// starts_[s] = first op index of block s; grown contiguously as dynamic
  /// (MaxSize/Adaptive) boundaries are published. Unused for KOperations.
  std::vector<std::size_t> starts_{0};
  /// First sequence number past the end of the run, once known.
  std::uint64_t endSeq_ = std::numeric_limits<std::uint64_t>::max();
  /// Lowest failed sequence number, once any builder failed.
  std::uint64_t failSeq_ = std::numeric_limits<std::uint64_t>::max();
  /// Mirror of failSeq_ for the builders' cheap per-gate abandon polls.
  std::atomic<std::uint64_t> failSeqAtomic_{
      std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::size_t> fbSizes_;

  // Written by builder threads under schedMutex_; read by the consumer
  // after finish() (the joins order these accesses).
  bool bowedOut_ = false;
  std::size_t resumeIndex_;
  std::exception_ptr failure_;
  BuilderStats stats_;

  std::vector<std::thread> threads_;
  bool joined_ = false;
};

}  // namespace ddsim::sim
