/// \file pipeline.hpp
/// \brief Pipelined block building: a dedicated builder thread combines the
///        next block of gates in its own private dd::Package while the main
///        thread applies the previous block to the state.
///
/// The paper separates simulation into two phases — combining operation
/// matrices (MxM) and applying the product to the state (MxV) — that run
/// serially on one thread, so combine wall time adds directly to apply wall
/// time. Block construction only depends on the gate stream (and, for the
/// Adaptive schedule, on the state *size*, not the state itself), so it can
/// run ahead on a second thread. The two packages never share nodes: blocks
/// cross the thread boundary as portable FlatMatrixDD values
/// (dd/migration.hpp) through a bounded SPSC queue with backpressure.
///
/// Determinism contract: the builder replicates the serial engine's block
/// boundaries exactly — KOperations counts gates, MaxSize measures its own
/// accumulator (DD canonicity makes node counts package-independent), and
/// Adaptive waits for the applied-state-size feedback of the previous block
/// before deciding boundaries, which is precisely the information the
/// serial loop uses. Identical boundaries mean identical floating-point
/// groupings, so pipelined runs produce bit-identical states and
/// measurement outcomes for the same seed as serial runs.
///
/// Failure protocol: if the builder's private package exhausts its resource
/// budget (or a fault injector fires in it), the builder *bows out* — it
/// records the run index the main thread must resume from, closes the
/// queue, and exits. Blocks already handed over stay valid; the simulator
/// drains them, then continues serially. Builder failure never fails the
/// simulation.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "dd/fault_injection.hpp"
#include "dd/migration.hpp"
#include "sim/stats.hpp"

namespace ddsim::ir {
class Operation;
}  // namespace ddsim::ir

namespace ddsim::sim {

/// One combined block in portable form, plus the accounting the main thread
/// folds into SimulationStats when it applies the block.
struct PipelineBlock {
  dd::FlatMatrixDD block;
  /// Index of the block's first operation in the run (flattened gate list).
  std::size_t firstOp = 0;
  /// Operations combined into this block.
  std::size_t opCount = 0;
  /// Elementary gates those operations amount to.
  std::uint64_t gateCount = 0;
  /// MxM multiplications the builder spent combining them.
  std::uint64_t mxmCount = 0;
  /// Accumulator DD size in the builder package (== size after import, by
  /// canonicity).
  std::size_t builderNodes = 0;
  /// Wall time the builder spent on this block — time the serial engine
  /// would have added to the critical path.
  double buildSeconds = 0.0;
};

/// Bounded single-producer/single-consumer handoff queue. The builder
/// blocks in push() when the consumer is pipelineDepth blocks behind
/// (backpressure); the consumer polls popFor() with a timeout so it can
/// keep honouring cancellation and time limits while the builder works.
class BlockQueue {
 public:
  explicit BlockQueue(std::size_t capacity) : capacity_(capacity) {}

  enum class PopStatus {
    Ok,        ///< a block was dequeued
    TimedOut,  ///< queue empty, producer still running
    Drained,   ///< queue empty and closed — no block will ever arrive
  };

  /// Producer: enqueue, waiting while the queue is full. Returns false if
  /// the consumer aborted the queue (the block is dropped).
  bool push(PipelineBlock&& blk);
  /// Consumer: dequeue, waiting up to \p timeout for a block.
  PopStatus popFor(PipelineBlock& out, std::chrono::milliseconds timeout);
  /// Producer: no more blocks will be pushed. Already-queued blocks remain
  /// drainable; popFor returns Drained once they are gone.
  void close();
  /// Consumer: discard queued blocks and unblock the producer (its next
  /// push fails). Used on early exit so the builder never deadlocks on a
  /// full queue.
  void abort();
  [[nodiscard]] std::size_t depth() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<PipelineBlock> queue_;
  std::size_t capacity_;
  bool closed_ = false;
  bool aborted_ = false;
};

/// Snapshot of the builder package's counters, merged into the simulation
/// stats after the builder exits (the builder's MxM work would otherwise
/// vanish from the dd/cache totals).
struct BuilderStats {
  dd::PackageStats dd;
  dd::CacheStats cache;
  std::uint64_t blocksBuilt = 0;
  double buildSeconds = 0.0;
};

/// Owns the builder thread for one pipelined run (a maximal measurement-
/// free stretch of unitary operations). The constructor starts the thread;
/// the destructor stops and joins it, so a BlockBuilder on the stack can
/// never leak a thread no matter how the consumer unwinds.
class BlockBuilder {
 public:
  /// \p run must stay alive and unchanged until finish()/destruction.
  /// \p externalAbort is polled from the builder thread (through the
  /// builder package's abort check), so it must be thread-safe — an atomic
  /// flag or a monotonic-clock comparison, like the cancellation hooks the
  /// serving layer installs.
  BlockBuilder(const std::vector<const ir::Operation*>& run,
               std::size_t numQubits, const StrategyConfig& config,
               std::size_t initialStateNodes, dd::FaultInjector* faultInjector,
               std::function<bool()> externalAbort);
  ~BlockBuilder();

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// Consumer: fetch the next block (see BlockQueue::popFor).
  BlockQueue::PopStatus next(PipelineBlock& out,
                             std::chrono::milliseconds timeout);
  /// Consumer: report the state DD size after applying a block, in block
  /// order. Feeds the Adaptive schedule's boundary decisions; harmless (and
  /// skippable) for the other schedules.
  void onBlockApplied(std::size_t stateNodes);
  /// Stop the builder and join its thread (idempotent; also run by the
  /// destructor). Queued-but-unapplied blocks are discarded.
  void finish();

  /// The following accessors are valid once popFor returned Drained or
  /// finish() was called.
  [[nodiscard]] bool bowedOut() const noexcept { return bowedOut_; }
  /// First run index *not* covered by a pushed block — where the serial
  /// fallback resumes after a bow-out.
  [[nodiscard]] std::size_t resumeIndex() const noexcept {
    return resumeIndex_;
  }
  /// Unexpected builder-thread exception (not ResourceExhausted /
  /// ComputationAborted, which bow out instead); rethrow in the consumer.
  [[nodiscard]] std::exception_ptr failure() const noexcept {
    return failure_;
  }
  [[nodiscard]] const BuilderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queueDepth() const { return queue_.depth(); }

 private:
  void threadMain();
  void buildLoop(dd::Package& pkg);
  /// Adaptive feedback: state size after block \p blockIndex - 1 (the
  /// initial state size for block 0). False if stopped before it arrived.
  bool waitStateFeedback(std::uint64_t blockIndex, std::size_t& nodes);
  [[nodiscard]] bool stopRequested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  const std::vector<const ir::Operation*>& run_;
  std::size_t numQubits_;
  StrategyConfig config_;
  std::size_t initialStateNodes_;
  dd::FaultInjector* injector_;
  std::function<bool()> externalAbort_;

  BlockQueue queue_;
  std::atomic<bool> stop_{false};

  std::mutex fbMutex_;
  std::condition_variable fbCv_;
  std::vector<std::size_t> fbSizes_;

  // Written by the builder thread before it closes the queue (or before
  // join); read by the consumer after Drained/finish(). The queue mutex
  // (respectively the join) orders these accesses.
  bool bowedOut_ = false;
  std::size_t resumeIndex_ = 0;
  std::exception_ptr failure_;
  BuilderStats stats_;

  std::thread thread_;
  bool joined_ = false;
};

}  // namespace ddsim::sim
