/// \file checkpoint.hpp
/// \brief Durable simulation checkpoints: snapshot a CircuitSimulator's
///        progress at a block boundary and resume it later — in another
///        simulator, another package, even another process.
///
/// The paper's MxM combination strategies deliberately make individual jobs
/// long-running (one accumulation chain instead of many cheap MxVs), which
/// makes losing a job to a timeout, budget kill or crash expensive. A
/// Checkpoint captures everything the engine needs to continue: the state
/// DD and the pending MxM accumulator in the portable edge-list migration
/// format (dd/migration.hpp), the index of the next top-level circuit
/// operation, the exact RNG stream position, the classical bits measured so
/// far, and the carried statistics. The (circuit, strategy, seed) identity
/// triple is stored alongside so a checkpoint can never be resumed against
/// the wrong job.
///
/// Determinism contract: resuming a checkpoint and running to completion
/// produces measurement outcomes bit-identical to the uninterrupted run —
/// across schedules, kernel thread counts and pipeline depths (enforced in
/// tests/test_checkpoint.cpp). This holds because the checkpoint is only
/// taken at quiescent block boundaries, the RNG position is exact, and DD
/// import rebuilds canonically in the destination package.
///
/// The serialized form is versioned and checksummed (FNV-1a over the
/// payload); deserialize() rejects truncated or bit-flipped blobs with a
/// CheckpointError instead of resuming from garbage.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dd/migration.hpp"
#include "sim/stats.hpp"

namespace ddsim::sim {

/// Structured failure of checkpoint encode/decode/resume: corrupted blob,
/// unsupported version, or an identity mismatch against the job being
/// resumed.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A resumable snapshot of simulation progress. Plain data — no package
/// pointers — so it outlives the simulator that produced it.
struct Checkpoint {
  /// Identity triple of the run this snapshot belongs to. resumeFrom()
  /// refuses a checkpoint whose triple does not match the target job.
  std::uint64_t circuitHash = 0;
  std::uint64_t strategyHash = 0;
  std::uint64_t seed = 0;

  /// Index of the first top-level circuit operation not yet executed.
  std::uint64_t nextOpIndex = 0;
  /// Exact std::mt19937_64 stream position (the engine's serialized state,
  /// via operator<<), so resumed measurement draws continue the original
  /// sequence rather than restarting it.
  std::string rngState;
  std::vector<bool> classicalBits;

  /// The state DD at the boundary, in portable edge-list form.
  dd::FlatVectorDD state;
  /// The pending MxM accumulator (combining schedules may checkpoint with
  /// gates accumulated but not yet applied). Meaningful iff accPending.
  bool accPending = false;
  dd::FlatMatrixDD acc;
  std::uint64_t accCount = 0;
  std::uint64_t accGates = 0;

  /// Degradation-ladder context carried across the boundary, so a resumed
  /// run makes the same combine/flush decisions the uninterrupted one
  /// would have.
  std::uint64_t sequentialCooldown = 0;
  bool pipelineDisabled = false;

  /// Statistics accumulated so far; a resumed run continues these totals,
  /// so the final stats of interrupted+resumed ≈ uninterrupted (wall time
  /// and package-local dd/cache snapshots excepted).
  SimulationStats stats;

  /// Versioned, checksummed binary blob (stable across processes).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Decode a blob; throws CheckpointError on truncation, bad magic,
  /// unsupported version or checksum mismatch.
  [[nodiscard]] static Checkpoint deserialize(const std::uint8_t* data,
                                              std::size_t size);
  [[nodiscard]] static Checkpoint deserialize(
      const std::vector<std::uint8_t>& bytes);
};

/// Flat binary encoding of the scalar SimulationStats fields, shared by the
/// checkpoint blob and the serve layer's result-cache spill file. The
/// package-snapshot sub-structs (dd, cache) are not encoded — they are
/// refreshed from the live package at the end of every run and would be
/// stale on disk.
void encodeStats(std::vector<std::uint8_t>& out, const SimulationStats& s);
/// Decode what encodeStats wrote, advancing \p offset past it. Throws
/// CheckpointError when \p bytes is too short.
[[nodiscard]] SimulationStats decodeStats(const std::uint8_t* data,
                                          std::size_t size,
                                          std::size_t& offset);

}  // namespace ddsim::sim
