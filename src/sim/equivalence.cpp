#include "sim/equivalence.hpp"

#include <stdexcept>

#include "sim/build_dd.hpp"

namespace ddsim::sim {

using dd::MEdge;

namespace {

MEdge buildOps(dd::Package& pkg,
               const std::vector<std::unique_ptr<ir::Operation>>& ops,
               MEdge acc) {
  for (const auto& op : ops) {
    MEdge g{};
    switch (op->kind()) {
      case ir::OpKind::Standard:
      case ir::OpKind::Oracle:
        g = buildOperationDD(pkg, *op);
        break;
      case ir::OpKind::Barrier:
        continue;
      case ir::OpKind::Compound: {
        const auto& comp = static_cast<const ir::CompoundOperation&>(*op);
        MEdge block = buildOps(pkg, comp.body(), pkg.makeIdent());
        pkg.incRef(block);
        for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
          MEdge next = pkg.multiply(block, acc);
          pkg.incRef(next);
          pkg.decRef(acc);
          acc = next;
          pkg.maybeGarbageCollect();
        }
        pkg.decRef(block);
        continue;
      }
      default:
        throw std::invalid_argument(
            "buildCircuitMatrix: non-unitary operation '" + op->toString() +
            "'");
    }
    MEdge next = pkg.multiply(g, acc);
    pkg.incRef(next);
    pkg.decRef(acc);
    acc = next;
    pkg.maybeGarbageCollect();
  }
  return acc;
}

}  // namespace

MEdge buildCircuitMatrix(dd::Package& pkg, const ir::Circuit& circuit) {
  MEdge acc = pkg.makeIdent();
  pkg.incRef(acc);
  acc = buildOps(pkg, circuit.ops(), acc);
  pkg.decRef(acc);  // hand back unrooted, like the construction primitives
  return acc;
}

Equivalence checkEquivalence(const ir::Circuit& a, const ir::Circuit& b) {
  if (a.numQubits() != b.numQubits()) {
    return Equivalence::NotEquivalent;
  }
  dd::Package pkg(a.numQubits());
  const MEdge ua = buildCircuitMatrix(pkg, a);
  pkg.incRef(ua);
  const MEdge ub = buildCircuitMatrix(pkg, b);

  // Fast path: canonical DDs of equal unitaries usually coincide exactly.
  if (ua.p == ub.p && ua.w == ub.w) {
    return Equivalence::Equivalent;
  }

  // Robust path: |Tr(Ua^dagger Ub)| = 2^n iff Ua = e^{i phi} Ub (Cauchy-
  // Schwarz with equality only for a scalar multiple of the identity).
  // This also covers builds whose DDs differ only by tolerance-level
  // canonicalization noise, where pointer comparison is too strict.
  pkg.incRef(ub);
  const MEdge diff = pkg.multiply(pkg.conjugateTranspose(ua), ub);
  const dd::ComplexValue tr = pkg.trace(diff);
  const double dim = static_cast<double>(1ULL << a.numQubits());
  // The |trace| criterion is quadratically insensitive to small parameter
  // deviations, so the tolerance is tight; observed cross-association noise
  // is ~1e-15.
  constexpr double kTol = 1e-9;
  if (std::abs(tr.mag() - dim) > kTol * dim) {
    return Equivalence::NotEquivalent;
  }
  const bool phaseIsOne =
      std::abs(tr.r - dim) <= kTol * dim && std::abs(tr.i) <= kTol * dim;
  return phaseIsOne ? Equivalence::Equivalent
                    : Equivalence::EquivalentUpToPhase;
}

bool areEquivalent(const ir::Circuit& a, const ir::Circuit& b) {
  const Equivalence e = checkEquivalence(a, b);
  return e != Equivalence::NotEquivalent;
}

}  // namespace ddsim::sim
