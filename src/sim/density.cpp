#include "sim/density.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/build_dd.hpp"

namespace ddsim::sim {

using dd::MEdge;

namespace {
constexpr dd::GateMatrix kProject0{dd::ComplexValue{1, 0}, {0, 0}, {0, 0}, {0, 0}};
constexpr dd::GateMatrix kProject1{dd::ComplexValue{0, 0}, {0, 0}, {0, 0}, {1, 0}};
}  // namespace

DensityMatrixSimulator::DensityMatrixSimulator(const ir::Circuit& circuit,
                                               NoiseModel noise,
                                               std::uint64_t seed)
    : circuit_(circuit),
      noise_(std::move(noise)),
      pkg_(std::make_unique<dd::Package>(circuit.numQubits())),
      rng_(seed),
      clbits_(std::max<std::size_t>(1, circuit.numClbits()), false) {
  for (const auto& channel : noise_.channels) {
    if (!channel.isTracePreserving()) {
      throw std::invalid_argument("noise channel '" + channel.name() +
                                  "' is not trace preserving");
    }
  }
}

DensityResult DensityMatrixSimulator::run() {
  if (ran_) {
    throw std::logic_error("DensityMatrixSimulator::run may only be called once");
  }
  ran_ = true;
  const Timer timer;

  // rho_0 = |0...0><0...0|: one node per qubit, everything in the
  // upper-left quadrant.
  MEdge rho = pkg_->mOneTerminal();
  for (std::size_t q = 0; q < circuit_.numQubits(); ++q) {
    rho = pkg_->makeMNode(static_cast<dd::Qubit>(q),
                          {rho, pkg_->mZero(), pkg_->mZero(), pkg_->mZero()});
  }
  rho_ = rho;
  pkg_->incRef(rho_);
  peakNodes_ = pkg_->size(rho_);

  processOps(circuit_.ops());

  return {rho_, clbits_, timer.seconds(), peakNodes_, pkg_->size(rho_)};
}

void DensityMatrixSimulator::processOps(
    const std::vector<std::unique_ptr<ir::Operation>>& ops) {
  using ir::OpKind;
  for (const auto& op : ops) {
    switch (op->kind()) {
      case OpKind::Standard:
      case OpKind::Oracle:
        applyConjugation(buildOpDD(*op));
        applyChannels(*op);
        break;
      case OpKind::ClassicControlled: {
        const auto& c = static_cast<const ir::ClassicControlledOperation&>(*op);
        if (clbits_[c.clbit()] == c.expectedValue()) {
          applyConjugation(buildOpDD(c.op()));
          applyChannels(c.op());
        }
        break;
      }
      case OpKind::Measure: {
        const auto& m = static_cast<const ir::MeasureOperation&>(*op);
        clbits_[m.clbit()] = measureCollapsing(m.qubit()) != 0;
        break;
      }
      case OpKind::Reset: {
        const auto& r = static_cast<const ir::ResetOperation&>(*op);
        if (measureCollapsing(r.qubit()) != 0) {
          applyConjugation(
              pkg_->makeGateDD(ir::gateMatrix(ir::GateType::X), r.qubit()));
        }
        break;
      }
      case OpKind::Barrier:
        break;
      case OpKind::Compound: {
        const auto& comp = static_cast<const ir::CompoundOperation&>(*op);
        for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
          processOps(comp.body());
        }
        break;
      }
    }
  }
}

dd::MEdge DensityMatrixSimulator::buildOpDD(const ir::Operation& op) {
  return buildOperationDD(*pkg_, op);
}

void DensityMatrixSimulator::replaceRho(const MEdge& next) {
  pkg_->incRef(next);
  pkg_->decRef(rho_);
  rho_ = next;
  peakNodes_ = std::max(peakNodes_, pkg_->size(rho_));
  pkg_->maybeGarbageCollect();
}

void DensityMatrixSimulator::applyConjugation(const MEdge& u) {
  // rho -> U rho U^dagger: pure matrix-matrix multiplication.
  const MEdge udag = pkg_->conjugateTranspose(u);
  replaceRho(pkg_->multiply(pkg_->multiply(u, rho_), udag));
}

void DensityMatrixSimulator::applyChannels(const ir::Operation& op) {
  if (noise_.empty()) {
    return;
  }
  // Every qubit the operation touches passes through every channel.
  std::vector<dd::Qubit> touched;
  if (op.kind() == ir::OpKind::Oracle) {
    const auto& o = static_cast<const ir::OracleOperation&>(op);
    for (std::size_t q = 0; q < o.numTargets(); ++q) {
      touched.push_back(static_cast<dd::Qubit>(q));
    }
    for (const auto& c : o.controls()) {
      touched.push_back(c.qubit);
    }
  } else {
    const auto& s = static_cast<const ir::StandardOperation&>(op);
    touched = s.targets();
    for (const auto& c : s.controls()) {
      touched.push_back(c.qubit);
    }
  }
  for (const auto& channel : noise_.channels) {
    for (const dd::Qubit q : touched) {
      applyChannelOnQubit(channel, q);
    }
  }
}

void DensityMatrixSimulator::applyChannelOnQubit(const NoiseChannel& channel,
                                                 dd::Qubit q) {
  // rho -> sum_k K_k rho K_k^dagger
  MEdge sum = pkg_->mZero();
  for (const auto& kraus : channel.kraus()) {
    const MEdge k = pkg_->makeGateDD(kraus, q);
    const MEdge kd = pkg_->conjugateTranspose(k);
    const MEdge term = pkg_->multiply(pkg_->multiply(k, rho_), kd);
    sum = pkg_->add(sum, term);
  }
  replaceRho(sum);
}

int DensityMatrixSimulator::measureCollapsing(dd::Qubit q) {
  const double p1 = probabilityOfOne(rho_, q);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const bool one = dist(rng_) < p1;
  const double prob = one ? p1 : 1.0 - p1;

  const MEdge projector = pkg_->makeGateDD(one ? kProject1 : kProject0, q);
  MEdge collapsed = pkg_->multiply(pkg_->multiply(projector, rho_), projector);
  collapsed.w = pkg_->clookup(*collapsed.w * (1.0 / prob));
  replaceRho(collapsed);
  return one ? 1 : 0;
}

double DensityMatrixSimulator::trace(const MEdge& rho) {
  return pkg_->trace(rho).r;
}

double DensityMatrixSimulator::purity(const MEdge& rho) {
  return pkg_->trace(pkg_->multiply(rho, rho)).r;
}

double DensityMatrixSimulator::probabilityOfOne(const MEdge& rho, dd::Qubit q) {
  const MEdge projector = pkg_->makeGateDD(kProject1, q);
  return pkg_->trace(pkg_->multiply(projector, rho)).r;
}

double DensityMatrixSimulator::basisProbability(const MEdge& rho,
                                                std::uint64_t bits) {
  // Diagonal entry (bits, bits): walk the matching quadrants.
  dd::ComplexValue value = *rho.w;
  const dd::MNode* node = rho.p;
  while (!node->isTerminal()) {
    const std::size_t bit = (bits >> node->v) & 1U;
    const dd::MEdge& e = node->e[3 * bit];  // e[0] or e[3]
    if (e.w->exactlyZero()) {
      return 0.0;
    }
    value *= *e.w;
    node = e.p;
  }
  return value.r;
}

dd::ComplexValue DensityMatrixSimulator::expectation(const MEdge& rho,
                                                     const MEdge& observable) {
  return pkg_->trace(pkg_->multiply(observable, rho));
}

}  // namespace ddsim::sim
