#include "algo/grover.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ddsim::algo {

using ir::Control;
using ir::Controls;
using ir::Qubit;

std::size_t groverIterations(std::size_t numQubits) noexcept {
  const double space = std::pow(2.0, static_cast<double>(numQubits));
  return static_cast<std::size_t>(
      std::floor(std::numbers::pi / 4.0 * std::sqrt(space)));
}

namespace {

/// Phase flip of |marked>: Z on qubit 0, controls on qubits 1..n-1 whose
/// polarity encodes the corresponding bit of `marked`. If bit 0 of `marked`
/// is 0 the Z is conjugated with X on qubit 0.
void appendOracle(ir::Circuit& circuit, std::size_t n, std::uint64_t marked) {
  Controls controls;
  for (std::size_t q = 1; q < n; ++q) {
    controls.push_back(Control{static_cast<Qubit>(q), ((marked >> q) & 1U) != 0});
  }
  const bool bit0 = (marked & 1U) != 0;
  if (!bit0) {
    circuit.x(0);
  }
  circuit.mcz(controls, 0);
  if (!bit0) {
    circuit.x(0);
  }
}

/// Diffusion operator: H^n X^n (controlled-Z on all) X^n H^n.
void appendDiffusion(ir::Circuit& circuit, std::size_t n) {
  for (std::size_t q = 0; q < n; ++q) {
    circuit.h(static_cast<Qubit>(q));
  }
  for (std::size_t q = 0; q < n; ++q) {
    circuit.x(static_cast<Qubit>(q));
  }
  Controls controls;
  for (std::size_t q = 1; q < n; ++q) {
    controls.push_back(Control{static_cast<Qubit>(q)});
  }
  circuit.mcz(controls, 0);
  for (std::size_t q = 0; q < n; ++q) {
    circuit.x(static_cast<Qubit>(q));
  }
  for (std::size_t q = 0; q < n; ++q) {
    circuit.h(static_cast<Qubit>(q));
  }
}

}  // namespace

ir::Circuit makeGroverIteration(std::size_t numQubits, std::uint64_t marked) {
  ir::Circuit block(numQubits, 0, "grover-iteration");
  appendOracle(block, numQubits, marked);
  appendDiffusion(block, numQubits);
  return block;
}

ir::Circuit makeGroverCircuit(std::size_t numQubits, std::uint64_t marked,
                              const GroverOptions& options) {
  if (numQubits < 2 || numQubits > 62) {
    throw std::invalid_argument("grover: qubit count must be in [2, 62]");
  }
  if (numQubits < 64 && (marked >> numQubits) != 0) {
    throw std::invalid_argument("grover: marked element out of range");
  }
  const std::size_t reps =
      options.iterations != 0 ? options.iterations : groverIterations(numQubits);

  ir::Circuit circuit(numQubits, options.measure ? numQubits : 0,
                      "grover_" + std::to_string(numQubits));
  for (std::size_t q = 0; q < numQubits; ++q) {
    circuit.h(static_cast<Qubit>(q));
  }
  circuit.appendRepeated(makeGroverIteration(numQubits, marked), reps,
                         "grover-iteration");
  if (options.measure) {
    circuit.measureAll();
  }
  return circuit;
}

}  // namespace ddsim::algo
