#include "algo/qft.hpp"

#include <numbers>

namespace ddsim::algo {

namespace {
constexpr double kPi = std::numbers::pi;
}

// Convention: qubits[k] carries weight 2^k of the represented integer. The
// QFT maps |x> to (1/sqrt(2^n)) sum_y exp(2 pi i x y / 2^n) |y>.
void appendQFT(ir::Circuit& circuit, const std::vector<ir::Qubit>& qubits,
               bool withSwaps) {
  const auto n = static_cast<int>(qubits.size());
  for (int j = n - 1; j >= 0; --j) {
    circuit.h(qubits[static_cast<std::size_t>(j)]);
    for (int k = j - 1; k >= 0; --k) {
      const double theta = kPi / static_cast<double>(1ULL << (j - k));
      circuit.cphase(theta, qubits[static_cast<std::size_t>(k)],
                     qubits[static_cast<std::size_t>(j)]);
    }
  }
  if (withSwaps) {
    for (int i = 0; i < n / 2; ++i) {
      circuit.swap(qubits[static_cast<std::size_t>(i)],
                   qubits[static_cast<std::size_t>(n - 1 - i)]);
    }
  }
}

void appendInverseQFT(ir::Circuit& circuit, const std::vector<ir::Qubit>& qubits,
                      bool withSwaps) {
  const auto n = static_cast<int>(qubits.size());
  if (withSwaps) {
    for (int i = 0; i < n / 2; ++i) {
      circuit.swap(qubits[static_cast<std::size_t>(i)],
                   qubits[static_cast<std::size_t>(n - 1 - i)]);
    }
  }
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < j; ++k) {
      const double theta = -kPi / static_cast<double>(1ULL << (j - k));
      circuit.cphase(theta, qubits[static_cast<std::size_t>(k)],
                     qubits[static_cast<std::size_t>(j)]);
    }
    circuit.h(qubits[static_cast<std::size_t>(j)]);
  }
}

ir::Circuit makeQFTCircuit(std::size_t numQubits, bool withSwaps) {
  ir::Circuit circuit(numQubits, 0, "qft_" + std::to_string(numQubits));
  std::vector<ir::Qubit> qubits;
  qubits.reserve(numQubits);
  for (std::size_t q = 0; q < numQubits; ++q) {
    qubits.push_back(static_cast<ir::Qubit>(q));
  }
  appendQFT(circuit, qubits, withSwaps);
  return circuit;
}

}  // namespace ddsim::algo
