/// \file grover.hpp
/// \brief Grover's database-search algorithm (paper Fig. 6).
///
/// n qubits are put in superposition, then the Grover iteration (oracle
/// phase flip of the marked element followed by the diffusion operator) is
/// repeated ~ (pi/4) sqrt(2^n) times. The iteration is emitted as a
/// CompoundOperation, which is exactly the repeated sub-circuit the paper's
/// *DD-repeating* strategy exploits. Oracles and diffusion use native
/// multi-controlled gates (the DD package handles arbitrary control sets
/// without ancilla decomposition).

#pragma once

#include <cstdint>

#include "ir/circuit.hpp"

namespace ddsim::algo {

/// Optimal number of Grover iterations for an n-qubit search space.
[[nodiscard]] std::size_t groverIterations(std::size_t numQubits) noexcept;

/// One Grover iteration (oracle for \p marked + diffusion) as a circuit.
[[nodiscard]] ir::Circuit makeGroverIteration(std::size_t numQubits,
                                              std::uint64_t marked);

struct GroverOptions {
  /// Override the iteration count (0 = optimal).
  std::size_t iterations = 0;
  /// Append a full measurement at the end.
  bool measure = false;
};

/// Complete Grover circuit searching for \p marked among 2^n elements.
[[nodiscard]] ir::Circuit makeGroverCircuit(std::size_t numQubits,
                                            std::uint64_t marked,
                                            const GroverOptions& options = {});

}  // namespace ddsim::algo
