/// \file benchmarks.hpp
/// \brief Named benchmark registry, following the paper's naming scheme:
///        grover_<qubits>, shor_<N>_<a> (Beauregard gate level),
///        shordd_<N>_<a> (DD-construct oracle variant), and
///        supremacy_<rows>x<cols>_<depth>[_<seed>].
///
/// Used by the bench binaries and the run_benchmark example so every
/// experiment is reproducible from a single string.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace ddsim::algo {

/// Build the named benchmark circuit; std::nullopt for unknown names.
[[nodiscard]] std::optional<ir::Circuit> makeBenchmark(const std::string& name);

/// Example names accepted by makeBenchmark (for --help texts).
[[nodiscard]] std::vector<std::string> benchmarkExamples();

}  // namespace ddsim::algo
