/// \file qaoa.hpp
/// \brief QAOA for MaxCut: parameterized circuits whose quality is measured
///        through Pauli-string expectation values on the DD state.
///
/// A variational workload rounds out the benchmark families: its circuits
/// are shallow but repeated (cost layer + mixer layer per round, a natural
/// CompoundOperation), and evaluating the cost function exercises
/// dd::pauliExpectation over many ZZ terms.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/circuit.hpp"

namespace ddsim::algo {

/// An undirected graph as an edge list over vertices 0..n-1.
struct Graph {
  std::size_t numVertices = 0;
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  /// Ring graph 0-1-...-n-1-0.
  static Graph ring(std::size_t n);
  /// Deterministic pseudo-random graph with the given edge probability.
  static Graph random(std::size_t n, double edgeProbability, std::uint64_t seed);
};

/// p-round QAOA circuit for MaxCut on \p graph: H layer, then per round a
/// cost layer exp(-i gamma_k sum_(u,v) Z_u Z_v) (via CX-RZ-CX) and a mixer
/// layer exp(-i beta_k sum_u X_u). gammas and betas must have equal size p.
[[nodiscard]] ir::Circuit makeQaoaMaxCutCircuit(const Graph& graph,
                                                const std::vector<double>& gammas,
                                                const std::vector<double>& betas);

/// Expected cut value <C> = sum_(u,v) (1 - <Z_u Z_v>)/2 of the circuit's
/// final state, evaluated with the DD simulator.
[[nodiscard]] double qaoaExpectedCut(const Graph& graph,
                                     const std::vector<double>& gammas,
                                     const std::vector<double>& betas);

/// Exact MaxCut value by brute force (for tests; exponential in n).
[[nodiscard]] std::size_t maxCutBruteForce(const Graph& graph);

}  // namespace ddsim::algo
