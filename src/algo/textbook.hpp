/// \file textbook.hpp
/// \brief Classic small quantum algorithms: quantum phase estimation,
///        Bernstein-Vazirani, Deutsch-Jozsa and entangled-state preparation.
///
/// These complement the paper's three benchmark families: they are standard
/// circuits a simulator release ships, they exercise the public API from a
/// different angle (explicit phase-estimation registers, bit-oracles) and
/// they provide easily checkable end-to-end results for the test suite.

#pragma once

#include <cstdint>

#include "ir/circuit.hpp"

namespace ddsim::algo {

/// Textbook quantum phase estimation with an explicit `precisionBits`-qubit
/// register (contrast with the semiclassical single-qubit version inside the
/// Shor circuits): estimates phi for the single-qubit phase gate
/// U = diag(1, e^{2 pi i phi}) applied to the eigenstate |1>.
///
/// Layout: counting register = qubits 0..precisionBits-1 (bit k of the
/// measured integer y = clbit k, phi ~ y / 2^precisionBits), eigenstate
/// qubit on top.
[[nodiscard]] ir::Circuit makePhaseEstimationCircuit(double phi,
                                                     std::size_t precisionBits);

/// Bernstein-Vazirani: recovers the hidden bit string s from a single query
/// to the oracle f(x) = s.x (mod 2). The circuit measures s directly into
/// the classical register (one clbit per data qubit).
[[nodiscard]] ir::Circuit makeBernsteinVaziraniCircuit(std::uint64_t hidden,
                                                       std::size_t numBits);

/// Deutsch-Jozsa on n data qubits: decides whether the oracle is constant
/// or balanced with one query. With `balanced == false` the identity-0
/// oracle is used; otherwise the balanced oracle f(x) = x.mask (mod 2).
/// All-zero measurement <=> constant.
[[nodiscard]] ir::Circuit makeDeutschJozsaCircuit(std::size_t numBits,
                                                  bool balanced,
                                                  std::uint64_t mask = 1);

/// GHZ state preparation (|0..0> + |1..1>)/sqrt(2).
[[nodiscard]] ir::Circuit makeGHZCircuit(std::size_t numQubits);

/// W state preparation (|10..0> + |01..0> + ... + |0..01>)/sqrt(n), built
/// from cascaded controlled rotations.
[[nodiscard]] ir::Circuit makeWStateCircuit(std::size_t numQubits);

}  // namespace ddsim::algo
