#include "algo/arithmetic.hpp"

#include <numbers>
#include <stdexcept>

#include "algo/numbertheory.hpp"
#include "algo/qft.hpp"

namespace ddsim::algo {

using ir::Circuit;
using ir::Control;
using ir::Controls;
using ir::GateType;
using ir::Qubit;

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void appendPhiAdd(Circuit& circuit, const std::vector<Qubit>& reg, std::uint64_t a,
                  bool subtract, const Controls& controls) {
  // One phase gate per register qubit; angle 2*pi*a / 2^{j+1} reduced mod
  // 2*pi (reg[j] holds the Fourier coefficient of weight 2^{len-1-j} after a
  // swapless QFT, which works out to exactly this angle — see qft.cpp).
  for (std::size_t j = 0; j < reg.size(); ++j) {
    const std::uint64_t denom = 1ULL << (j + 1);
    const std::uint64_t rem = a & (denom - 1);
    if (rem == 0) {
      continue;
    }
    double theta = kTwoPi * static_cast<double>(rem) / static_cast<double>(denom);
    if (subtract) {
      theta = -theta;
    }
    if (controls.empty()) {
      circuit.phase(theta, reg[j]);
    } else {
      circuit.mcphase(theta, controls, reg[j]);
    }
  }
}

namespace {

/// Forward phiADDmod(a, N) sequence of Beauregard into \p circuit.
void emitCCPhiAddModForward(Circuit& circuit, const std::vector<Qubit>& b,
                            Qubit ancilla, std::uint64_t a, std::uint64_t modulus,
                            const Controls& controls) {
  const Qubit msb = b.back();
  // 1. (controlled) += a
  appendPhiAdd(circuit, b, a, false, controls);
  // 2. -= N (unconditionally)
  appendPhiAdd(circuit, b, modulus, true);
  // 3. extract the underflow indicator (MSB after leaving Fourier space)
  appendInverseQFT(circuit, b, /*withSwaps=*/false);
  circuit.cx(msb, ancilla);
  appendQFT(circuit, b, /*withSwaps=*/false);
  // 4. += N conditioned on underflow
  appendPhiAdd(circuit, b, modulus, false, {Control{ancilla}});
  // 5. (controlled) -= a, to probe whether the controlled addition happened
  appendPhiAdd(circuit, b, a, true, controls);
  // 6. uncompute the ancilla
  appendInverseQFT(circuit, b, /*withSwaps=*/false);
  circuit.x(msb);
  circuit.cx(msb, ancilla);
  circuit.x(msb);
  appendQFT(circuit, b, /*withSwaps=*/false);
  // 7. (controlled) += a again
  appendPhiAdd(circuit, b, a, false, controls);
}

}  // namespace

void appendCCPhiAddMod(Circuit& circuit, const std::vector<Qubit>& b,
                       Qubit ancilla, std::uint64_t a, std::uint64_t modulus,
                       const Controls& controls, bool subtract) {
  if (b.size() < 2) {
    throw std::invalid_argument("phiADDmod: register too small");
  }
  Circuit block(circuit.numQubits(), 0, "phiaddmod");
  emitCCPhiAddModForward(block, b, ancilla, a % modulus, modulus, controls);
  if (subtract) {
    circuit.appendCircuit(block.inverted());
  } else {
    circuit.appendCircuit(block);
  }
}

void appendCMultMod(Circuit& circuit, const std::vector<Qubit>& x,
                    const std::vector<Qubit>& b, Qubit ancilla, std::uint64_t a,
                    std::uint64_t modulus, Qubit control, bool subtract) {
  Circuit block(circuit.numQubits(), 0, "cmultmod");
  appendQFT(block, b, /*withSwaps=*/false);
  for (std::size_t j = 0; j < x.size(); ++j) {
    const std::uint64_t addend =
        mulMod(a % modulus, (1ULL << j) % modulus, modulus);
    appendCCPhiAddMod(block, b, ancilla, addend, modulus,
                      {Control{control}, Control{x[j]}});
  }
  appendInverseQFT(block, b, /*withSwaps=*/false);
  if (subtract) {
    circuit.appendCircuit(block.inverted());
  } else {
    circuit.appendCircuit(block);
  }
}

void appendCUa(Circuit& circuit, const std::vector<Qubit>& x,
               const std::vector<Qubit>& b, Qubit ancilla, std::uint64_t a,
               std::uint64_t modulus, Qubit control) {
  const auto aInv = invMod(a, modulus);
  if (!aInv) {
    throw std::invalid_argument("CUa: a must be co-prime to the modulus");
  }
  // |x, 0> -> |x, a x mod N>
  appendCMultMod(circuit, x, b, ancilla, a, modulus, control);
  // swap x and the low n qubits of b (controlled)
  for (std::size_t j = 0; j < x.size(); ++j) {
    circuit.cswap(control, x[j], b[j]);
  }
  // |a x mod N, x> -> |a x mod N, x - a^-1 (a x) mod N> = |a x mod N, 0>
  appendCMultMod(circuit, x, b, ancilla, *aInv, modulus, control,
                 /*subtract=*/true);
}

Circuit makeAdderCircuit(std::size_t numQubits, std::uint64_t a) {
  Circuit circuit(numQubits, 0,
                  "add_" + std::to_string(a) + "_" + std::to_string(numQubits));
  std::vector<Qubit> reg;
  reg.reserve(numQubits);
  for (std::size_t q = 0; q < numQubits; ++q) {
    reg.push_back(static_cast<Qubit>(q));
  }
  appendQFT(circuit, reg, /*withSwaps=*/false);
  appendPhiAdd(circuit, reg, a);
  appendInverseQFT(circuit, reg, /*withSwaps=*/false);
  return circuit;
}

}  // namespace ddsim::algo
