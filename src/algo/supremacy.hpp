/// \file supremacy.hpp
/// \brief Random circuits in the style of the Google quantum-supremacy
///        proposal (Boixo et al. [11]), the third benchmark family of the
///        paper's evaluation.
///
/// Qubits form a rows x cols grid. Cycle 0 applies Hadamards everywhere;
/// each following cycle applies one of eight staggered CZ patterns and, on
/// qubits that idled this cycle but took part in a CZ in the previous one,
/// a random single-qubit gate: the first such gate on a qubit is a T, later
/// ones alternate randomly between sqrt(X) and sqrt(Y) (never repeating the
/// qubit's previous gate). The generator is fully deterministic given the
/// seed.

#pragma once

#include <cstdint>

#include "ir/circuit.hpp"

namespace ddsim::algo {

struct SupremacyOptions {
  std::size_t rows = 4;
  std::size_t cols = 4;
  /// Number of CZ cycles (circuit "depth" in the paper's naming
  /// supremacy_<depth>_<qubits>).
  std::size_t depth = 8;
  std::uint64_t seed = 1;
};

[[nodiscard]] ir::Circuit makeSupremacyCircuit(const SupremacyOptions& options);

}  // namespace ddsim::algo
