/// \file qft.hpp
/// \brief Quantum Fourier transform circuit builders.

#pragma once

#include <vector>

#include "ir/circuit.hpp"

namespace ddsim::algo {

/// Append the QFT over \p qubits (given least-significant first) to
/// \p circuit. With \p withSwaps the textbook bit-reversal swaps are
/// included at the end; the Draper-adder style usage inside Shor's circuit
/// leaves them out and reverses indices implicitly.
void appendQFT(ir::Circuit& circuit, const std::vector<ir::Qubit>& qubits,
               bool withSwaps = true);

/// Append the inverse QFT over \p qubits.
void appendInverseQFT(ir::Circuit& circuit, const std::vector<ir::Qubit>& qubits,
                      bool withSwaps = true);

/// Standalone QFT circuit on n qubits.
[[nodiscard]] ir::Circuit makeQFTCircuit(std::size_t numQubits,
                                         bool withSwaps = true);

}  // namespace ddsim::algo
