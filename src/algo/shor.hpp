/// \file shor.hpp
/// \brief Shor's factoring algorithm (paper Fig. 7) in two flavours:
///
///  * `makeShorBeauregardCircuit` — the gate-level 2n+3 qubit realization of
///    Beauregard [27]: controlled modular multipliers built from Draper
///    phi-adders, with the inverse QFT performed semiclassically on a single
///    recycled control qubit (measure + classically controlled phases).
///    This is what the paper's *sota* and *general* columns simulate.
///
///  * `makeShorOracleCircuit` — the *DD-construct* variant (Section IV-B):
///    each controlled modular multiplication is a single OracleOperation
///    whose permutation-matrix DD is constructed directly, so no working
///    qubits are needed; only n+1 qubits remain (n for the value register
///    plus the recycled control).
///
/// Both circuits measure 2n phase bits into the classical register,
/// LSB first; `shorMeasuredValue` reassembles them.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ir/circuit.hpp"

namespace ddsim::algo {

struct ShorOptions {
  /// Number of phase-estimation bits (0 = the standard 2n).
  std::size_t phaseBits = 0;
};

/// Gate-level Beauregard circuit for order finding of a mod N (2n+3 qubits).
[[nodiscard]] ir::Circuit makeShorBeauregardCircuit(std::uint64_t N,
                                                    std::uint64_t a,
                                                    const ShorOptions& options = {});

/// DD-construct variant with direct modular-multiplication oracles
/// (n+1 qubits).
[[nodiscard]] ir::Circuit makeShorOracleCircuit(std::uint64_t N, std::uint64_t a,
                                                const ShorOptions& options = {});

/// Reassemble the phase-estimation sample from the classical bits
/// (bit k of the result = clbit k).
[[nodiscard]] std::uint64_t shorMeasuredValue(const std::vector<bool>& clbits,
                                              std::size_t phaseBits);

/// Non-trivial factors of N from the multiplicative order r of a, if r is
/// even and a^{r/2} != -1 mod N.
[[nodiscard]] std::optional<std::pair<std::uint64_t, std::uint64_t>>
factorsFromOrder(std::uint64_t N, std::uint64_t a, std::uint64_t r);

/// Paper-style benchmark name "shor_N_a_<qubits>".
[[nodiscard]] std::string shorBenchmarkName(std::uint64_t N, std::uint64_t a,
                                            bool oracleVariant = false);

}  // namespace ddsim::algo
