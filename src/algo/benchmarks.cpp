#include "algo/benchmarks.hpp"

#include <cstdint>
#include <sstream>

#include "algo/grover.hpp"
#include "algo/qft.hpp"
#include "algo/shor.hpp"
#include "algo/qaoa.hpp"
#include "algo/supremacy.hpp"
#include "algo/textbook.hpp"

namespace ddsim::algo {

namespace {

std::vector<std::string> splitUnderscore(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  std::istringstream ss(s);
  while (std::getline(ss, cur, '_')) {
    parts.push_back(cur);
  }
  return parts;
}

std::optional<std::uint64_t> parseNumber(const std::string& s) {
  if (s.empty()) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

std::optional<ir::Circuit> makeBenchmark(const std::string& name) {
  const auto parts = splitUnderscore(name);
  if (parts.empty()) {
    return std::nullopt;
  }
  try {
    if (parts[0] == "grover" && parts.size() >= 2) {
      const auto n = parseNumber(parts[1]);
      if (!n) {
        return std::nullopt;
      }
      // Deterministic marked element: a fixed pattern folded into range.
      const std::uint64_t marked =
          0x5DEECE66DULL & ((1ULL << *n) - 1);
      return makeGroverCircuit(*n, parts.size() >= 3
                                       ? parseNumber(parts[2]).value_or(marked)
                                       : marked);
    }
    if ((parts[0] == "shor" || parts[0] == "shordd") && parts.size() >= 3) {
      const auto N = parseNumber(parts[1]);
      const auto a = parseNumber(parts[2]);
      if (!N || !a) {
        return std::nullopt;
      }
      return parts[0] == "shor" ? makeShorBeauregardCircuit(*N, *a)
                                : makeShorOracleCircuit(*N, *a);
    }
    if (parts[0] == "supremacy" && parts.size() >= 3) {
      const auto cross = parts[1].find('x');
      if (cross == std::string::npos) {
        return std::nullopt;
      }
      const auto rows = parseNumber(parts[1].substr(0, cross));
      const auto cols = parseNumber(parts[1].substr(cross + 1));
      const auto depth = parseNumber(parts[2]);
      if (!rows || !cols || !depth) {
        return std::nullopt;
      }
      SupremacyOptions options;
      options.rows = *rows;
      options.cols = *cols;
      options.depth = *depth;
      options.seed = parts.size() >= 4 ? parseNumber(parts[3]).value_or(1) : 1;
      return makeSupremacyCircuit(options);
    }
    if (parts[0] == "qft" && parts.size() >= 2) {
      const auto n = parseNumber(parts[1]);
      if (!n) {
        return std::nullopt;
      }
      return makeQFTCircuit(*n);
    }
    if (parts[0] == "ghz" && parts.size() >= 2) {
      const auto n = parseNumber(parts[1]);
      return n ? std::optional(makeGHZCircuit(*n)) : std::nullopt;
    }
    if (parts[0] == "wstate" && parts.size() >= 2) {
      const auto n = parseNumber(parts[1]);
      return n ? std::optional(makeWStateCircuit(*n)) : std::nullopt;
    }
    if (parts[0] == "bv" && parts.size() >= 2) {
      const auto n = parseNumber(parts[1]);
      if (!n) {
        return std::nullopt;
      }
      const std::uint64_t hidden =
          parts.size() >= 3
              ? parseNumber(parts[2]).value_or(0)
              : 0xB5F1C3A96E2D47ULL & ((*n >= 64 ? ~0ULL : (1ULL << *n) - 1));
      return makeBernsteinVaziraniCircuit(hidden, *n);
    }
    if (parts[0] == "qaoa" && parts.size() >= 3) {
      const auto n = parseNumber(parts[1]);
      const auto p = parseNumber(parts[2]);
      if (!n || !p || *p == 0 || *p > 16) {
        return std::nullopt;
      }
      const std::uint64_t seed =
          parts.size() >= 4 ? parseNumber(parts[3]).value_or(1) : 1;
      const Graph graph = Graph::random(*n, 0.5, seed);
      // Fixed representative angles; the registry provides workloads, not
      // optimized parameters.
      std::vector<double> gammas(*p, 0.45);
      std::vector<double> betas(*p, 0.35);
      return makeQaoaMaxCutCircuit(graph, gammas, betas);
    }
    if (parts[0] == "qpe" && parts.size() >= 2) {
      const auto bits = parseNumber(parts[1]);
      if (!bits) {
        return std::nullopt;
      }
      // Optional numerator: phi = num / 2^bits (default: a non-terminating
      // phase, 1/3).
      const double phi =
          parts.size() >= 3
              ? static_cast<double>(parseNumber(parts[2]).value_or(1)) /
                    static_cast<double>(1ULL << *bits)
              : 1.0 / 3.0;
      return makePhaseEstimationCircuit(phi, *bits);
    }
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // well-formed name, invalid instance parameters
  }
  return std::nullopt;
}

std::vector<std::string> benchmarkExamples() {
  return {
      "grover_14",        "grover_16_12345",    "shor_15_7",
      "shordd_15_7",      "shor_33_5",          "shordd_2561_2409",
      "supremacy_4x4_12", "supremacy_4x5_16_3", "qft_20",
      "ghz_24",           "wstate_16",          "bv_24",
      "qpe_10",           "qpe_8_3",            "qaoa_12_2",
  };
}

}  // namespace ddsim::algo
