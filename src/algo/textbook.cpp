#include "algo/textbook.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "algo/qft.hpp"

namespace ddsim::algo {

using ir::Circuit;
using ir::Control;
using ir::GateType;
using ir::Qubit;

Circuit makePhaseEstimationCircuit(double phi, std::size_t precisionBits) {
  if (precisionBits == 0 || precisionBits > 60) {
    throw std::invalid_argument("qpe: precision bits must be in [1, 60]");
  }
  const auto m = static_cast<Qubit>(precisionBits);
  Circuit circuit(precisionBits + 1, precisionBits,
                  "qpe_" + std::to_string(precisionBits));

  circuit.x(m);  // eigenstate |1> of the phase gate
  for (Qubit k = 0; k < m; ++k) {
    circuit.h(k);
  }
  // Counting qubit k picks up the phase of U^(2^k).
  for (Qubit k = 0; k < m; ++k) {
    const double theta =
        2.0 * std::numbers::pi * phi * static_cast<double>(1ULL << k);
    circuit.mcphase(theta, {Control{k}}, m);
  }
  std::vector<Qubit> counting;
  for (Qubit k = 0; k < m; ++k) {
    counting.push_back(k);
  }
  appendInverseQFT(circuit, counting);
  for (Qubit k = 0; k < m; ++k) {
    circuit.measure(k, static_cast<std::size_t>(k));
  }
  return circuit;
}

Circuit makeBernsteinVaziraniCircuit(std::uint64_t hidden, std::size_t numBits) {
  if (numBits == 0 || numBits > 62) {
    throw std::invalid_argument("bv: bit count must be in [1, 62]");
  }
  if (numBits < 64 && (hidden >> numBits) != 0) {
    throw std::invalid_argument("bv: hidden string exceeds bit count");
  }
  const auto anc = static_cast<Qubit>(numBits);
  Circuit circuit(numBits + 1, numBits, "bv_" + std::to_string(numBits));
  circuit.x(anc);
  circuit.h(anc);
  for (std::size_t i = 0; i < numBits; ++i) {
    circuit.h(static_cast<Qubit>(i));
  }
  // Oracle f(x) = s.x: one CX per set bit of s.
  for (std::size_t i = 0; i < numBits; ++i) {
    if (((hidden >> i) & 1U) != 0) {
      circuit.cx(static_cast<Qubit>(i), anc);
    }
  }
  for (std::size_t i = 0; i < numBits; ++i) {
    circuit.h(static_cast<Qubit>(i));
    circuit.measure(static_cast<Qubit>(i), i);
  }
  return circuit;
}

Circuit makeDeutschJozsaCircuit(std::size_t numBits, bool balanced,
                                std::uint64_t mask) {
  if (numBits == 0 || numBits > 62) {
    throw std::invalid_argument("dj: bit count must be in [1, 62]");
  }
  if (balanced && (mask == 0 || (numBits < 64 && (mask >> numBits) != 0))) {
    throw std::invalid_argument("dj: balanced oracle needs a non-zero in-range mask");
  }
  const auto anc = static_cast<Qubit>(numBits);
  Circuit circuit(numBits + 1, numBits, "dj_" + std::to_string(numBits));
  circuit.x(anc);
  circuit.h(anc);
  for (std::size_t i = 0; i < numBits; ++i) {
    circuit.h(static_cast<Qubit>(i));
  }
  if (balanced) {
    for (std::size_t i = 0; i < numBits; ++i) {
      if (((mask >> i) & 1U) != 0) {
        circuit.cx(static_cast<Qubit>(i), anc);
      }
    }
  }
  for (std::size_t i = 0; i < numBits; ++i) {
    circuit.h(static_cast<Qubit>(i));
    circuit.measure(static_cast<Qubit>(i), i);
  }
  return circuit;
}

Circuit makeGHZCircuit(std::size_t numQubits) {
  if (numQubits == 0 || numQubits > 62) {
    throw std::invalid_argument("ghz: qubit count must be in [1, 62]");
  }
  Circuit circuit(numQubits, 0, "ghz_" + std::to_string(numQubits));
  circuit.h(0);
  for (std::size_t q = 1; q < numQubits; ++q) {
    circuit.cx(static_cast<Qubit>(q) - 1, static_cast<Qubit>(q));
  }
  return circuit;
}

Circuit makeWStateCircuit(std::size_t numQubits) {
  if (numQubits < 2 || numQubits > 62) {
    throw std::invalid_argument("wstate: qubit count must be in [2, 62]");
  }
  Circuit circuit(numQubits, 0, "wstate_" + std::to_string(numQubits));
  circuit.x(0);
  // Cascade: at step i the excitation either stays on qubit i (amplitude
  // 1/sqrt(n-i)) or moves on to qubit i+1.
  for (std::size_t i = 0; i + 1 < numQubits; ++i) {
    const double theta =
        2.0 * std::acos(1.0 / std::sqrt(static_cast<double>(numQubits - i)));
    circuit.gate(GateType::RY, static_cast<Qubit>(i + 1),
                 {Control{static_cast<Qubit>(i)}}, {theta});
    circuit.cx(static_cast<Qubit>(i + 1), static_cast<Qubit>(i));
  }
  return circuit;
}

}  // namespace ddsim::algo
