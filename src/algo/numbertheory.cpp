#include "algo/numbertheory.hpp"

namespace ddsim::algo {

std::uint64_t gcd(std::uint64_t a, std::uint64_t b) noexcept {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t mulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powMod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp != 0) {
    if ((exp & 1U) != 0) {
      result = mulMod(result, base, m);
    }
    base = mulMod(base, base, m);
    exp >>= 1U;
  }
  return result;
}

std::optional<std::uint64_t> invMod(std::uint64_t a, std::uint64_t m) {
  // Extended Euclid on signed 128-bit to dodge negative-wraparound issues.
  __int128 t = 0;
  __int128 newT = 1;
  __int128 r = m;
  __int128 newR = a % m;
  while (newR != 0) {
    const __int128 q = r / newR;
    const __int128 tmpT = t - q * newT;
    t = newT;
    newT = tmpT;
    const __int128 tmpR = r - q * newR;
    r = newR;
    newR = tmpR;
  }
  if (r != 1) {
    return std::nullopt;
  }
  if (t < 0) {
    t += m;
  }
  return static_cast<std::uint64_t>(t);
}

std::optional<std::uint64_t> multiplicativeOrder(std::uint64_t a, std::uint64_t n) {
  if (n == 0 || gcd(a % n, n) != 1) {
    return std::nullopt;
  }
  std::uint64_t x = a % n;
  std::uint64_t r = 1;
  while (x != 1) {
    x = mulMod(x, a, n);
    ++r;
    if (r > n) {
      return std::nullopt;  // unreachable for valid input
    }
  }
  return r;
}

std::uint32_t bitLength(std::uint64_t n) noexcept {
  std::uint32_t bits = 0;
  while (n != 0) {
    ++bits;
    n >>= 1U;
  }
  return bits;
}

bool isPrime(std::uint64_t n) noexcept {
  if (n < 2) {
    return false;
  }
  for (std::uint64_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      return false;
    }
  }
  return true;
}

std::vector<Fraction> convergents(std::uint64_t x, std::uint32_t bits,
                                  std::uint64_t maxDen) {
  std::vector<Fraction> result;
  std::uint64_t num = x;
  std::uint64_t den = 1ULL << bits;
  // Continued-fraction coefficients of num/den; build convergents h_k/k_k.
  std::uint64_t h0 = 0;
  std::uint64_t h1 = 1;
  std::uint64_t k0 = 1;
  std::uint64_t k1 = 0;
  while (den != 0) {
    const std::uint64_t a = num / den;
    const std::uint64_t rem = num % den;
    const std::uint64_t h2 = a * h1 + h0;
    const std::uint64_t k2 = a * k1 + k0;
    if (k2 > maxDen) {
      break;
    }
    result.push_back({h2, k2});
    h0 = h1;
    h1 = h2;
    k0 = k1;
    k1 = k2;
    num = den;
    den = rem;
  }
  return result;
}

std::optional<std::uint64_t> orderFromPhase(std::uint64_t measured,
                                            std::uint32_t bits, std::uint64_t a,
                                            std::uint64_t n) {
  if (measured == 0) {
    return std::nullopt;
  }
  for (const auto& frac : convergents(measured, bits, n)) {
    if (frac.den == 0) {
      continue;
    }
    // The denominator may be a divisor of r when gcd(s, r) > 1; try small
    // multiples as is standard practice.
    for (std::uint64_t mult = 1; mult <= 8; ++mult) {
      const std::uint64_t r = frac.den * mult;
      if (r == 0 || r > n) {
        break;
      }
      if (powMod(a, r, n) == 1) {
        return r;
      }
    }
  }
  return std::nullopt;
}

}  // namespace ddsim::algo
