/// \file numbertheory.hpp
/// \brief Classical number theory used by Shor's algorithm (order finding,
///        continued-fraction postprocessing) and its oracles.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace ddsim::algo {

[[nodiscard]] std::uint64_t gcd(std::uint64_t a, std::uint64_t b) noexcept;

/// (a * b) mod m without overflow for m < 2^63.
[[nodiscard]] std::uint64_t mulMod(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t m) noexcept;

/// (base ^ exp) mod m.
[[nodiscard]] std::uint64_t powMod(std::uint64_t base, std::uint64_t exp,
                                   std::uint64_t m) noexcept;

/// Modular inverse of a mod m; empty if gcd(a, m) != 1.
[[nodiscard]] std::optional<std::uint64_t> invMod(std::uint64_t a, std::uint64_t m);

/// Multiplicative order of a mod n (smallest r > 0 with a^r = 1); empty if
/// gcd(a, n) != 1. Brute force — fine for the benchmark sizes.
[[nodiscard]] std::optional<std::uint64_t> multiplicativeOrder(std::uint64_t a,
                                                               std::uint64_t n);

/// Number of bits needed to represent n (bitLength(1) == 1).
[[nodiscard]] std::uint32_t bitLength(std::uint64_t n) noexcept;

[[nodiscard]] bool isPrime(std::uint64_t n) noexcept;

struct Fraction {
  std::uint64_t num = 0;
  std::uint64_t den = 1;
};

/// Convergents of the continued-fraction expansion of x / 2^bits with
/// denominators bounded by maxDen — the classical post-processing step of
/// Shor's phase estimation.
[[nodiscard]] std::vector<Fraction> convergents(std::uint64_t x, std::uint32_t bits,
                                                std::uint64_t maxDen);

/// Recover the multiplicative order r of a mod n from a phase-estimation
/// sample `measured` over `bits` bits (measured / 2^bits ~ s/r). Returns the
/// order if some convergent denominator (or a small multiple) verifies
/// a^r = 1 mod n.
[[nodiscard]] std::optional<std::uint64_t> orderFromPhase(std::uint64_t measured,
                                                          std::uint32_t bits,
                                                          std::uint64_t a,
                                                          std::uint64_t n);

}  // namespace ddsim::algo
