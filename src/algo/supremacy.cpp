#include "algo/supremacy.hpp"

#include <random>
#include <stdexcept>
#include <vector>

namespace ddsim::algo {

using ir::GateType;
using ir::Qubit;

namespace {

struct Pattern {
  bool horizontal;
  std::size_t colParity;
  std::size_t rowParity;
};

/// Eight staggered CZ layouts alternating between horizontal and vertical
/// neighbour pairs, offset so that every lattice edge recurs periodically.
constexpr Pattern kPatterns[8] = {
    {true, 0, 0}, {false, 0, 0}, {true, 1, 1}, {false, 1, 1},
    {true, 0, 1}, {false, 1, 0}, {true, 1, 0}, {false, 0, 1},
};

}  // namespace

ir::Circuit makeSupremacyCircuit(const SupremacyOptions& options) {
  const std::size_t rows = options.rows;
  const std::size_t cols = options.cols;
  if (rows == 0 || cols == 0 || rows * cols < 2 || rows * cols > 62) {
    throw std::invalid_argument("supremacy: grid must hold 2..62 qubits");
  }
  const std::size_t n = rows * cols;
  ir::Circuit circuit(n, 0,
                      "supremacy_" + std::to_string(options.depth) + "_" +
                          std::to_string(n));
  const auto qubitAt = [cols](std::size_t r, std::size_t c) {
    return static_cast<Qubit>(r * cols + c);
  };

  std::mt19937_64 rng(options.seed);

  // Cycle 0: Hadamard everywhere.
  for (std::size_t q = 0; q < n; ++q) {
    circuit.h(static_cast<Qubit>(q));
  }

  std::vector<bool> inCzPrev(n, true);  // the H layer counts as activity
  std::vector<bool> hadT(n, false);
  std::vector<GateType> lastSingle(n, GateType::I);

  for (std::size_t cycle = 0; cycle < options.depth; ++cycle) {
    const Pattern& pat = kPatterns[cycle % 8];
    std::vector<bool> inCzNow(n, false);

    if (pat.horizontal) {
      for (std::size_t r = 0; r < rows; ++r) {
        if (r % 2 != pat.rowParity) {
          continue;
        }
        for (std::size_t c = pat.colParity; c + 1 < cols; c += 2) {
          circuit.cz(qubitAt(r, c), qubitAt(r, c + 1));
          inCzNow[r * cols + c] = true;
          inCzNow[r * cols + c + 1] = true;
        }
      }
    } else {
      for (std::size_t c = 0; c < cols; ++c) {
        if (c % 2 != pat.colParity) {
          continue;
        }
        for (std::size_t r = pat.rowParity; r + 1 < rows; r += 2) {
          circuit.cz(qubitAt(r, c), qubitAt(r + 1, c));
          inCzNow[r * cols + c] = true;
          inCzNow[(r + 1) * cols + c] = true;
        }
      }
    }

    // Single-qubit gates on qubits idle this cycle but active last cycle.
    for (std::size_t q = 0; q < n; ++q) {
      if (inCzNow[q] || !inCzPrev[q]) {
        continue;
      }
      GateType g;
      if (!hadT[q]) {
        g = GateType::T;
        hadT[q] = true;
      } else {
        // Random sqrt(X)/sqrt(Y), never repeating the previous gate.
        const GateType other =
            lastSingle[q] == GateType::SX ? GateType::SY : GateType::SX;
        if (lastSingle[q] == GateType::SX || lastSingle[q] == GateType::SY) {
          g = other;
        } else {
          g = (rng() & 1U) != 0 ? GateType::SX : GateType::SY;
        }
      }
      circuit.gate(g, static_cast<Qubit>(q));
      lastSingle[q] = g;
    }

    inCzPrev = inCzNow;
  }
  return circuit;
}

}  // namespace ddsim::algo
