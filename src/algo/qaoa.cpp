#include "algo/qaoa.hpp"

#include <random>
#include <stdexcept>
#include <string>

#include "dd/pauli.hpp"
#include "sim/simulator.hpp"

namespace ddsim::algo {

using ir::Circuit;
using ir::Qubit;

Graph Graph::ring(std::size_t n) {
  Graph g;
  g.numVertices = n;
  for (std::size_t v = 0; v < n; ++v) {
    g.edges.emplace_back(v, (v + 1) % n);
  }
  return g;
}

Graph Graph::random(std::size_t n, double edgeProbability, std::uint64_t seed) {
  Graph g;
  g.numVertices = n;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (dist(rng) < edgeProbability) {
        g.edges.emplace_back(u, v);
      }
    }
  }
  return g;
}

Circuit makeQaoaMaxCutCircuit(const Graph& graph,
                              const std::vector<double>& gammas,
                              const std::vector<double>& betas) {
  if (graph.numVertices < 2 || graph.numVertices > 62) {
    throw std::invalid_argument("qaoa: vertex count must be in [2, 62]");
  }
  if (gammas.size() != betas.size() || gammas.empty()) {
    throw std::invalid_argument("qaoa: need equal, non-zero numbers of gammas and betas");
  }
  for (const auto& [u, v] : graph.edges) {
    if (u >= graph.numVertices || v >= graph.numVertices || u == v) {
      throw std::invalid_argument("qaoa: invalid edge");
    }
  }

  Circuit circuit(graph.numVertices, 0,
                  "qaoa_p" + std::to_string(gammas.size()) + "_" +
                      std::to_string(graph.numVertices));
  for (std::size_t q = 0; q < graph.numVertices; ++q) {
    circuit.h(static_cast<Qubit>(q));
  }
  for (std::size_t round = 0; round < gammas.size(); ++round) {
    // Cost layer: exp(-i gamma Z_u Z_v) per edge, via CX - RZ(2 gamma) - CX.
    Circuit layer(graph.numVertices);
    for (const auto& [u, v] : graph.edges) {
      layer.cx(static_cast<Qubit>(u), static_cast<Qubit>(v));
      layer.rz(2.0 * gammas[round], static_cast<Qubit>(v));
      layer.cx(static_cast<Qubit>(u), static_cast<Qubit>(v));
    }
    // Mixer layer: exp(-i beta X_u) per vertex.
    for (std::size_t q = 0; q < graph.numVertices; ++q) {
      layer.rx(2.0 * betas[round], static_cast<Qubit>(q));
    }
    circuit.appendCircuit(layer);
  }
  return circuit;
}

double qaoaExpectedCut(const Graph& graph, const std::vector<double>& gammas,
                       const std::vector<double>& betas) {
  const Circuit circuit = makeQaoaMaxCutCircuit(graph, gammas, betas);
  sim::CircuitSimulator simulator(circuit);
  const auto result = simulator.run();
  auto& pkg = simulator.package();

  double cut = 0.0;
  for (const auto& [u, v] : graph.edges) {
    std::string pauli(graph.numVertices, 'I');
    // String is read right-to-left: last character acts on qubit 0.
    pauli[graph.numVertices - 1 - u] = 'Z';
    pauli[graph.numVertices - 1 - v] = 'Z';
    const double zz = dd::pauliExpectation(pkg, pauli, result.finalState).r;
    cut += (1.0 - zz) / 2.0;
  }
  return cut;
}

std::size_t maxCutBruteForce(const Graph& graph) {
  std::size_t best = 0;
  for (std::uint64_t assignment = 0; assignment < (1ULL << graph.numVertices);
       ++assignment) {
    std::size_t cut = 0;
    for (const auto& [u, v] : graph.edges) {
      cut += ((assignment >> u) & 1U) != ((assignment >> v) & 1U) ? 1U : 0U;
    }
    best = std::max(best, cut);
  }
  return best;
}

}  // namespace ddsim::algo
