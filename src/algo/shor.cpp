#include "algo/shor.hpp"

#include <numbers>
#include <stdexcept>

#include "algo/arithmetic.hpp"
#include "algo/numbertheory.hpp"

namespace ddsim::algo {

using ir::Circuit;
using ir::Control;
using ir::GateType;
using ir::Qubit;

namespace {
constexpr double kPi = std::numbers::pi;

void validateInstance(std::uint64_t N, std::uint64_t a) {
  if (N < 3) {
    throw std::invalid_argument("shor: N must be >= 3");
  }
  if (a < 2 || a >= N) {
    throw std::invalid_argument("shor: need 2 <= a < N");
  }
  if (gcd(a, N) != 1) {
    throw std::invalid_argument("shor: a must be co-prime to N");
  }
}

/// Semiclassical inverse-QFT tail of one phase-estimation round: the
/// corrections conditioned on the k previously measured bits, then H,
/// measure, and the classically controlled reset of the control qubit.
void emitSemiclassicalRound(Circuit& circuit, Qubit control, std::size_t k) {
  for (std::size_t p = 0; p < k; ++p) {
    const double theta = -kPi / static_cast<double>(1ULL << (k - p));
    circuit.classicControlled(GateType::Phase, control, {}, {theta}, p);
  }
  circuit.h(control);
  circuit.measure(control, k);
  circuit.classicControlled(GateType::X, control, {}, {}, k);
}

}  // namespace

Circuit makeShorBeauregardCircuit(std::uint64_t N, std::uint64_t a,
                                  const ShorOptions& options) {
  validateInstance(N, a);
  const std::size_t n = bitLength(N);
  const std::size_t m = options.phaseBits != 0 ? options.phaseBits : 2 * n;

  // Layout: b = qubits 0..n (n+1 scratch), x = n+1..2n (value register),
  // ancilla = 2n+1, recycled control = 2n+2. Total 2n+3.
  const std::size_t numQubits = 2 * n + 3;
  Circuit circuit(numQubits, m, shorBenchmarkName(N, a));

  std::vector<Qubit> b;
  for (std::size_t j = 0; j <= n; ++j) {
    b.push_back(static_cast<Qubit>(j));
  }
  std::vector<Qubit> x;
  for (std::size_t j = 0; j < n; ++j) {
    x.push_back(static_cast<Qubit>(n + 1 + j));
  }
  const Qubit ancilla = static_cast<Qubit>(2 * n + 1);
  const Qubit control = static_cast<Qubit>(2 * n + 2);

  circuit.x(x[0]);  // value register starts at 1

  for (std::size_t k = 0; k < m; ++k) {
    circuit.h(control);
    // This round contributes phase bit m-1-k, so it applies U^(2^(m-1-k)).
    const std::uint64_t ak = powMod(a, 1ULL << (m - 1 - k), N);
    appendCUa(circuit, x, b, ancilla, ak, N, control);
    emitSemiclassicalRound(circuit, control, k);
  }
  return circuit;
}

Circuit makeShorOracleCircuit(std::uint64_t N, std::uint64_t a,
                              const ShorOptions& options) {
  validateInstance(N, a);
  const std::size_t n = bitLength(N);
  const std::size_t m = options.phaseBits != 0 ? options.phaseBits : 2 * n;

  // Layout: x = qubits 0..n-1, recycled control = n. Total n+1 (the paper's
  // point: no working qubits when the oracle is constructed directly).
  Circuit circuit(n + 1, m, shorBenchmarkName(N, a, /*oracleVariant=*/true));
  const Qubit control = static_cast<Qubit>(n);

  circuit.x(0);  // value register starts at 1

  for (std::size_t k = 0; k < m; ++k) {
    circuit.h(control);
    const std::uint64_t ak = powMod(a, 1ULL << (m - 1 - k), N);
    // Multiplication by a^(2^i) mod N as a permutation of [0, 2^n):
    // values >= N are fixed points, keeping the map a bijection.
    circuit.oracle("mul_" + std::to_string(ak) + "_mod_" + std::to_string(N), n,
                   [ak, N](std::uint64_t v) {
                     return v < N ? mulMod(ak, v, N) : v;
                   },
                   {Control{control}});
    emitSemiclassicalRound(circuit, control, k);
  }
  return circuit;
}

std::uint64_t shorMeasuredValue(const std::vector<bool>& clbits,
                                std::size_t phaseBits) {
  if (clbits.size() < phaseBits) {
    throw std::invalid_argument("shorMeasuredValue: not enough classical bits");
  }
  std::uint64_t value = 0;
  for (std::size_t k = 0; k < phaseBits; ++k) {
    if (clbits[k]) {
      value |= 1ULL << k;
    }
  }
  return value;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>> factorsFromOrder(
    std::uint64_t N, std::uint64_t a, std::uint64_t r) {
  if (r == 0 || (r & 1U) != 0) {
    return std::nullopt;
  }
  const std::uint64_t half = powMod(a, r / 2, N);
  if (half == N - 1) {
    return std::nullopt;  // a^{r/2} = -1 mod N: trivial
  }
  const std::uint64_t f1 = gcd(half + 1, N);
  const std::uint64_t f2 = gcd(half >= 1 ? half - 1 : 0, N);
  for (const std::uint64_t f : {f1, f2}) {
    if (f != 1 && f != N && N % f == 0) {
      return std::make_pair(f, N / f);
    }
  }
  return std::nullopt;
}

std::string shorBenchmarkName(std::uint64_t N, std::uint64_t a, bool oracleVariant) {
  const std::size_t n = bitLength(N);
  const std::size_t qubits = oracleVariant ? n + 1 : 2 * n + 3;
  return std::string("shor") + (oracleVariant ? "dd" : "") + "_" +
         std::to_string(N) + "_" + std::to_string(a) + "_" +
         std::to_string(qubits);
}

}  // namespace ddsim::algo
