/// \file arithmetic.hpp
/// \brief Quantum arithmetic building blocks for Beauregard's Shor circuit:
///        Draper adders in Fourier space and controlled modular blocks.
///
/// Conventions: a register is a list of qubits, least significant first.
/// "phi" blocks act on a register that is in the (swapless) Fourier basis,
/// i.e. after appendQFT(..., withSwaps=false) qubit reg[j] carries the
/// phase weight 2 pi / 2^{j+1}.

#pragma once

#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"

namespace ddsim::algo {

/// phiADD(a): add the classical constant \p a to the Fourier-space register
/// \p reg — one (possibly controlled) phase gate per qubit, no carries.
/// With \p subtract the angles are negated (phiADD(a)^-1).
void appendPhiAdd(ir::Circuit& circuit, const std::vector<ir::Qubit>& reg,
                  std::uint64_t a, bool subtract = false,
                  const ir::Controls& controls = {});

/// Doubly-controlled modular adder phiADDmod(a, N) of Beauregard: maps the
/// Fourier-space register b (n+1 qubits, value < N) to (b + a) mod N when
/// both controls are satisfied. \p ancilla is a scratch qubit that is
/// returned to |0>. With \p subtract the inverse is appended.
void appendCCPhiAddMod(ir::Circuit& circuit, const std::vector<ir::Qubit>& b,
                       ir::Qubit ancilla, std::uint64_t a, std::uint64_t modulus,
                       const ir::Controls& controls, bool subtract = false);

/// Controlled modular multiply-accumulate CMULT(a): |x>|b> -> |x>|(b + a x)
/// mod N> when \p control is satisfied (identity on b otherwise). b must
/// hold n+1 qubits in the computational basis; QFT/iQFT are emitted inside.
/// With \p subtract the inverse (b - a x mod N) is appended.
void appendCMultMod(ir::Circuit& circuit, const std::vector<ir::Qubit>& x,
                    const std::vector<ir::Qubit>& b, ir::Qubit ancilla,
                    std::uint64_t a, std::uint64_t modulus, ir::Qubit control,
                    bool subtract = false);

/// Controlled modular multiplier CUa: |x> -> |a x mod N> on register x when
/// \p control is satisfied, using b (n+1 zero-initialized qubits) and
/// \p ancilla as scratch returned to zero. Requires gcd(a, N) = 1.
void appendCUa(ir::Circuit& circuit, const std::vector<ir::Qubit>& x,
               const std::vector<ir::Qubit>& b, ir::Qubit ancilla,
               std::uint64_t a, std::uint64_t modulus, ir::Qubit control);

/// Self-contained adder circuit |x> -> |x + a mod 2^n> over n qubits
/// (QFT, phiADD(a), iQFT). Used by unit tests and the quickstart example.
[[nodiscard]] ir::Circuit makeAdderCircuit(std::size_t numQubits, std::uint64_t a);

}  // namespace ddsim::algo
