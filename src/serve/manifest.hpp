/// \file manifest.hpp
/// \brief Job-manifest format for the ddsim_serve batch driver.
///
/// A manifest is a plain-text file, one job per line:
///
///     <qasm-path> [key=value ...] [flags]
///
/// recognized options (any order after the path):
///     strategy=seq|k=<n>|maxsize=<n>|adaptive[=<ratio>]
///     dd-repeating            exploit repeated blocks (Section IV-B)
///     detect-repetitions      fold repeated gate runs before simulating
///     seed=<n>                base seed (default 0)
///     repeat=<n>              fan out into n jobs; job i runs with
///                             sim::deriveSeed(seed, i)  (default 1)
///     priority=high|normal|low
///     deadline=<seconds>      wall-clock deadline from submission
///     time-limit=<seconds>    StrategyConfig::timeLimitSeconds
///     node-budget=<n>         StrategyConfig::nodeBudget
///     byte-budget=<n>         StrategyConfig::byteBudget
///     approx=<fidelity>       approximate-while-simulating per-step target
///     label=<text>            report label (defaults to the path)
///
/// `#` starts a comment; blank lines are ignored. Errors carry the 1-based
/// line number (ManifestError).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "sim/stats.hpp"

namespace ddsim::serve {

class ManifestError : public std::runtime_error {
 public:
  ManifestError(const std::string& message, std::size_t line)
      : std::runtime_error("manifest:" + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// One manifest line, parsed. `repeat` fans out at submission time.
struct ManifestEntry {
  std::string path;
  std::string label;
  sim::StrategyConfig config;
  std::uint64_t seed = 0;
  std::size_t repeat = 1;
  JobPriority priority = JobPriority::Normal;
  double deadlineSeconds = 0.0;
  bool ddRepeating = false;        ///< alias kept distinct for reporting
  bool detectRepetitions = false;  ///< run ir::detectRepetitions first
};

/// Parse a strategy spec ("seq", "k=4", "maxsize=4096", "adaptive",
/// "adaptive=0.5") into a StrategyConfig with all other fields default.
/// Empty optional on an unrecognized spec.
[[nodiscard]] std::optional<sim::StrategyConfig> parseStrategySpec(
    const std::string& spec);

[[nodiscard]] std::vector<ManifestEntry> parseManifest(std::istream& in);
[[nodiscard]] std::vector<ManifestEntry> parseManifest(
    const std::string& text);
[[nodiscard]] std::vector<ManifestEntry> parseManifestFile(
    const std::string& path);

}  // namespace ddsim::serve
