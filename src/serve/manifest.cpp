#include "serve/manifest.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ddsim::serve {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ss(line);
  std::string token;
  while (ss >> token) {
    if (token[0] == '#') {
      break;
    }
    tokens.push_back(token);
  }
  return tokens;
}

std::uint64_t parseUint(const std::string& value, const std::string& what,
                        std::size_t line) {
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    throw ManifestError(what + ": expected an unsigned integer, got '" +
                            value + "'",
                        line);
  }
  return v;
}

double parseDouble(const std::string& value, const std::string& what,
                   std::size_t line) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    throw ManifestError(what + ": expected a number, got '" + value + "'",
                        line);
  }
  return v;
}

}  // namespace

std::optional<sim::StrategyConfig> parseStrategySpec(const std::string& spec) {
  using sim::StrategyConfig;
  if (spec == "seq" || spec == "sequential") {
    return StrategyConfig::sequential();
  }
  if (spec.rfind("k=", 0) == 0) {
    return StrategyConfig::kOperations(
        std::strtoul(spec.c_str() + 2, nullptr, 10));
  }
  if (spec.rfind("maxsize=", 0) == 0) {
    return StrategyConfig::maxSizeStrategy(
        std::strtoul(spec.c_str() + 8, nullptr, 10));
  }
  if (spec == "adaptive") {
    return StrategyConfig::adaptive();
  }
  if (spec.rfind("adaptive=", 0) == 0) {
    return StrategyConfig::adaptive(std::strtod(spec.c_str() + 9, nullptr));
  }
  return std::nullopt;
}

std::vector<ManifestEntry> parseManifest(std::istream& in) {
  std::vector<ManifestEntry> entries;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    ManifestEntry entry;
    entry.path = tokens[0];
    entry.label = tokens[0];
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::string& token = tokens[i];
      const auto eq = token.find('=');
      const std::string key = eq == std::string::npos ? token
                                                      : token.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? "" : token.substr(eq + 1);
      if (key == "strategy") {
        const auto config = parseStrategySpec(value);
        if (!config) {
          throw ManifestError("unknown strategy '" + value + "'", lineNo);
        }
        // Preserve options already set by earlier tokens.
        const sim::StrategyConfig base = entry.config;
        entry.config = *config;
        entry.config.reuseRepeatedBlocks = base.reuseRepeatedBlocks;
        entry.config.timeLimitSeconds = base.timeLimitSeconds;
        entry.config.nodeBudget = base.nodeBudget;
        entry.config.byteBudget = base.byteBudget;
        entry.config.approximateFidelity = base.approximateFidelity;
        entry.config.pipeline = base.pipeline;
        entry.config.pipelineDepth = base.pipelineDepth;
        entry.config.threads = base.threads;
      } else if (key == "dd-repeating") {
        entry.ddRepeating = true;
        entry.config.reuseRepeatedBlocks = true;
      } else if (key == "pipeline") {
        if (value == "on" || value.empty()) {
          entry.config.pipeline = true;
        } else if (value == "off") {
          entry.config.pipeline = false;
        } else {
          throw ManifestError("pipeline: expected on|off, got '" + value + "'",
                              lineNo);
        }
      } else if (key == "pipeline-depth") {
        entry.config.pipelineDepth = parseUint(value, "pipeline-depth", lineNo);
      } else if (key == "threads") {
        entry.config.threads = parseUint(value, "threads", lineNo);
      } else if (key == "detect-repetitions") {
        entry.detectRepetitions = true;
      } else if (key == "seed") {
        entry.seed = parseUint(value, "seed", lineNo);
      } else if (key == "repeat") {
        entry.repeat = parseUint(value, "repeat", lineNo);
        if (entry.repeat == 0) {
          throw ManifestError("repeat must be >= 1", lineNo);
        }
      } else if (key == "priority") {
        const auto p = priorityFromName(value);
        if (!p) {
          throw ManifestError("unknown priority '" + value + "'", lineNo);
        }
        entry.priority = *p;
      } else if (key == "deadline") {
        entry.deadlineSeconds = parseDouble(value, "deadline", lineNo);
        if (entry.deadlineSeconds < 0.0) {
          throw ManifestError("deadline must be non-negative", lineNo);
        }
      } else if (key == "time-limit") {
        entry.config.timeLimitSeconds =
            parseDouble(value, "time-limit", lineNo);
      } else if (key == "node-budget") {
        entry.config.nodeBudget = parseUint(value, "node-budget", lineNo);
      } else if (key == "byte-budget") {
        entry.config.byteBudget = parseUint(value, "byte-budget", lineNo);
      } else if (key == "approx") {
        entry.config.approximateFidelity = parseDouble(value, "approx", lineNo);
      } else if (key == "label") {
        entry.label = value;
      } else {
        throw ManifestError("unknown option '" + token + "'", lineNo);
      }
    }
    try {
      entry.config.validate();
    } catch (const std::invalid_argument& e) {
      throw ManifestError(e.what(), lineNo);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<ManifestEntry> parseManifest(const std::string& text) {
  std::istringstream ss(text);
  return parseManifest(ss);
}

std::vector<ManifestEntry> parseManifestFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ManifestError("cannot open manifest file '" + path + "'", 0);
  }
  return parseManifest(in);
}

}  // namespace ddsim::serve
