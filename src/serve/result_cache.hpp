/// \file result_cache.hpp
/// \brief Sharded, content-addressed LRU cache of finished simulation
///        results.
///
/// The batch-simulation service answers duplicate submissions without
/// re-simulating. A cache entry is keyed by the triple
/// (circuit content hash, strategy-config hash, seed): the circuit hash is
/// ir::contentHash over the canonicalized operation stream, the config hash
/// is sim::StrategyConfig::contentHash, and the seed pins the stochastic
/// measurement outcomes. The full triple is stored and compared — the
/// 64-bit hashes only pick the shard/bucket, so a hash collision costs a
/// missed dedup opportunity, never a wrong answer being served.
///
/// Sharding: the key is mixed down to a shard index; each shard holds an
/// independent mutex, hash map and LRU list, so concurrent workers on
/// different keys rarely contend. Counters are process-wide atomics.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/hash.hpp"
#include "sim/stats.hpp"

namespace ddsim::serve {

/// Content-addressed identity of a job whose outcome is cacheable.
struct CacheKey {
  std::uint64_t circuitHash = 0;
  std::uint64_t configHash = 0;
  std::uint64_t seed = 0;

  bool operator==(const CacheKey&) const noexcept = default;

  /// Mixed 64-bit digest used for shard and bucket selection.
  [[nodiscard]] std::uint64_t digest() const noexcept {
    std::uint64_t h = ir::hashCombine(ir::kHashSeed, circuitHash);
    h = ir::hashCombine(h, configHash);
    return ir::hashCombine(h, seed);
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(k.digest());
  }
};

/// The detached portion of a finished simulation that can be replayed to a
/// duplicate submitter (no DD handles — the backing package is long gone).
struct CachedOutcome {
  std::vector<bool> classicalBits;
  sim::SimulationStats stats;
};

/// Monotonic cache counters (snapshot via ResultCache::counters()).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;  ///< current live entries across all shards
};

class ResultCache {
 public:
  /// \p capacity is the total entry budget, distributed across \p shards
  /// independent LRU shards: every shard gets floor(capacity / shards)
  /// slots and the first capacity % shards shards one extra, so the
  /// per-shard capacities always sum to exactly \p capacity.
  /// capacity == 0 disables the cache (every lookup misses, inserts drop).
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look up and touch (move to most-recently-used) an entry.
  [[nodiscard]] std::optional<CachedOutcome> lookup(const CacheKey& key);

  /// Insert or refresh an entry, evicting the shard's LRU tail if full.
  void insert(const CacheKey& key, CachedOutcome outcome);

  [[nodiscard]] CacheCounters counters() const;

  /// Copy out every live entry (shard by shard, most-recently-used first
  /// within a shard) — the input of a persistence snapshot. Each shard is
  /// locked only while it is being copied, so the view is per-shard
  /// consistent, which is all a crash-consistent spill needs.
  [[nodiscard]] std::vector<std::pair<CacheKey, CachedOutcome>>
  snapshotEntries() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Sum of per-shard capacities; equals capacity() by construction.
  [[nodiscard]] std::size_t effectiveCapacity() const noexcept;

 private:
  struct Shard {
    std::mutex mutex;
    std::size_t capacity = 0;
    /// Front = most recently used.
    std::list<std::pair<CacheKey, CachedOutcome>> lru;
    std::unordered_map<CacheKey, decltype(lru)::iterator, CacheKeyHash> index;
  };

  [[nodiscard]] Shard& shardFor(const CacheKey& key) noexcept {
    // Shard on the high digest bits; the map re-hashes the low ones.
    return *shards_[(key.digest() >> 48) % shards_.size()];
  }

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> entries_{0};
};

}  // namespace ddsim::serve
