#include "serve/persistence.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "dd/migration.hpp"
#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"

namespace ddsim::serve {

namespace {

constexpr std::uint32_t kRecordMagic = 0x4453504cU;  // "LPSD" on disk (LE)
/// magic u32 + payload length u32 + FNV-1a payload checksum u64.
constexpr std::size_t kRecordHeader = 4 + 4 + 8;
/// Per-record payload ceiling: a cache outcome is a classical bit vector
/// plus flat stats — far below this. Anything larger is a corrupted length
/// field, not a record.
constexpr std::uint32_t kMaxPayload = 64U * 1024U * 1024U;

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int s = 0; s < 32; s += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 0; s < 64; s += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int b = 3; b >= 0; --b) {
    v = (v << 8) | p[b];
  }
  return v;
}

std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int b = 7; b >= 0; --b) {
    v = (v << 8) | p[b];
  }
  return v;
}

/// key triple + packed classical bits + flat stats (the encoding shared
/// with the checkpoint blob).
std::vector<std::uint8_t> encodeRecordPayload(const CacheKey& key,
                                              const CachedOutcome& outcome) {
  std::vector<std::uint8_t> payload;
  putU64(payload, key.circuitHash);
  putU64(payload, key.configHash);
  putU64(payload, key.seed);
  putU64(payload, outcome.classicalBits.size());
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < outcome.classicalBits.size(); ++i) {
    byte = static_cast<std::uint8_t>(
        byte | ((outcome.classicalBits[i] ? 1U : 0U) << (i % 8)));
    if (i % 8 == 7) {
      payload.push_back(byte);
      byte = 0;
    }
  }
  if (outcome.classicalBits.size() % 8 != 0) {
    payload.push_back(byte);
  }
  sim::encodeStats(payload, outcome.stats);
  return payload;
}

/// Throws sim::CheckpointError (via decodeStats) or std::runtime_error on
/// malformed input; the loader catches and counts.
std::pair<CacheKey, CachedOutcome> decodeRecordPayload(
    const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  const auto need = [&](std::size_t n) {
    if (n > size - off) {
      throw std::runtime_error("spill record payload truncated");
    }
  };
  need(8 * 4);
  CacheKey key;
  key.circuitHash = getU64(data + off);
  key.configHash = getU64(data + off + 8);
  key.seed = getU64(data + off + 16);
  const std::uint64_t bitCount = getU64(data + off + 24);
  off += 32;
  if (bitCount / 8 > size - off) {  // overflow-immune form of the check below
    throw std::runtime_error("spill record payload truncated");
  }
  need((bitCount + 7) / 8);
  CachedOutcome outcome;
  outcome.classicalBits.assign(bitCount, false);
  for (std::uint64_t i = 0; i < bitCount; ++i) {
    outcome.classicalBits[i] = (data[off + i / 8] >> (i % 8)) & 1U;
  }
  off += (bitCount + 7) / 8;
  outcome.stats = sim::decodeStats(data, size, off);
  return {key, std::move(outcome)};
}

std::vector<std::uint8_t> encodeRecord(const CacheKey& key,
                                       const CachedOutcome& outcome) {
  const std::vector<std::uint8_t> payload = encodeRecordPayload(key, outcome);
  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeader + payload.size());
  putU32(record, kRecordMagic);
  putU32(record, static_cast<std::uint32_t>(payload.size()));
  putU64(record, dd::fnv1a(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  return record;
}

bool fsyncFile(std::FILE* f) {
  return std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
}

}  // namespace

CacheSpill::CacheSpill(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("CacheSpill: cannot create cache directory '" +
                             dir_ + "': " + ec.message());
  }
  // Seed the journal-size gauge from any pre-existing log so the byte
  // threshold counts a restarted service's carried-over records too.
  std::error_code sizeEc;
  const auto existing = std::filesystem::file_size(logPath(), sizeEc);
  if (!sizeEc) {
    logBytes_ = existing;
  }
}

CacheSpill::~CacheSpill() {
  const std::lock_guard<std::mutex> lock(mutex_);
  closeLogLocked();
}

std::string CacheSpill::snapshotPath() const { return dir_ + "/cache.snapshot"; }
std::string CacheSpill::logPath() const { return dir_ + "/cache.log"; }

void CacheSpill::closeLogLocked() {
  if (log_ != nullptr) {
    std::fclose(log_);
    log_ = nullptr;
  }
}

std::size_t CacheSpill::load(
    const std::function<void(const CacheKey&, CachedOutcome)>& sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Snapshot first, then the journal: journal records are newer (or, in
  // the snapshot-then-truncate crash window, duplicates — idempotent).
  std::size_t restored = loadFile(snapshotPath(), sink);
  restored += loadFile(logPath(), sink);
  return restored;
}

std::size_t CacheSpill::loadFile(
    const std::string& path,
    const std::function<void(const CacheKey&, CachedOutcome)>& sink) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return 0;  // absent file = empty spill, a normal cold start
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  std::size_t restored = 0;
  std::size_t off = 0;
  bool inCorruptRun = false;  // count one skip per damaged region, not per byte
  const auto markCorrupt = [&] {
    if (!inCorruptRun) {
      ++corruptSkipped_;
      inCorruptRun = true;
      obs::traceInstant("serve.spill.corrupt-record", obs::cat::kServe, off);
    }
  };
  while (off + kRecordHeader <= bytes.size()) {
    if (getU32(bytes.data() + off) != kRecordMagic) {
      // Resync: scan forward for the next record magic.
      markCorrupt();
      ++off;
      continue;
    }
    const std::uint32_t payloadLen = getU32(bytes.data() + off + 4);
    const std::uint64_t checksum = getU64(bytes.data() + off + 8);
    if (payloadLen > kMaxPayload ||
        payloadLen > bytes.size() - off - kRecordHeader) {
      // Torn tail (the common SIGKILL artifact) or a corrupted length.
      // Step past the magic and rescan — if the length was the only
      // damaged field, the next record's magic is still findable.
      markCorrupt();
      off += 4;
      continue;
    }
    const std::uint8_t* payload = bytes.data() + off + kRecordHeader;
    if (dd::fnv1a(payload, payloadLen) != checksum) {
      markCorrupt();
      off += 4;
      continue;
    }
    try {
      auto [key, outcome] = decodeRecordPayload(payload, payloadLen);
      sink(key, std::move(outcome));
      ++restored;
      ++loaded_;
      inCorruptRun = false;
    } catch (const std::exception&) {
      markCorrupt();
      off += 4;
      continue;
    }
    off += kRecordHeader + payloadLen;
  }
  if (off < bytes.size()) {
    markCorrupt();  // trailing fragment shorter than a record header
  }
  return restored;
}

void CacheSpill::append(const CacheKey& key, const CachedOutcome& outcome) {
  const std::vector<std::uint8_t> record = encodeRecord(key, outcome);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (log_ == nullptr) {
    log_ = std::fopen(logPath().c_str(), "ab");
    if (log_ == nullptr) {
      return;  // persistence is best-effort; the in-memory cache still works
    }
  }
  if (std::fwrite(record.data(), 1, record.size(), log_) == record.size()) {
    // One flush per record keeps the journal crash-consistent up to the
    // last completed job without paying an fsync on the worker's path; a
    // torn in-flight record is skipped (and counted) by the loader.
    std::fflush(log_);
    ++appended_;
    logBytes_ += record.size();
  }
}

std::uint64_t CacheSpill::logBytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return logBytes_;
}

bool CacheSpill::snapshot(
    const std::vector<std::pair<CacheKey, CachedOutcome>>& entries) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string tmp = snapshotPath() + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return false;
  }
  bool ok = true;
  for (const auto& [key, outcome] : entries) {
    const std::vector<std::uint8_t> record = encodeRecord(key, outcome);
    if (std::fwrite(record.data(), 1, record.size(), out) != record.size()) {
      ok = false;
      break;
    }
  }
  // fsync before rename: the rename must never publish a file whose bytes
  // are still in flight, or a crash could atomically install a torn
  // snapshot.
  ok = fsyncFile(out) && ok;
  std::fclose(out);
  if (!ok || std::rename(tmp.c_str(), snapshotPath().c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // Snapshot is durable — the journal's records are all contained in it,
  // so truncate. A crash before this point replays them from both files;
  // replay is idempotent, so no sequencing is needed.
  closeLogLocked();
  if (std::FILE* trunc = std::fopen(logPath().c_str(), "wb")) {
    std::fclose(trunc);
  }
  logBytes_ = 0;
  ++snapshots_;
  return true;
}

SpillCounters CacheSpill::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SpillCounters c;
  c.appended = appended_;
  c.loaded = loaded_;
  c.corruptSkipped = corruptSkipped_;
  c.snapshots = snapshots_;
  return c;
}

}  // namespace ddsim::serve
