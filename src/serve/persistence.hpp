/// \file persistence.hpp
/// \brief Crash-consistent persistence for the serve-layer result cache.
///
/// A restarted `ddsim_serve --cache-dir <dir>` should answer previously
/// completed jobs without re-simulating them. The spill keeps two files in
/// the cache directory:
///
///  * `cache.snapshot` — a full dump of the cache, replaced atomically
///    (write to `cache.snapshot.tmp`, fsync, rename). Written at graceful
///    shutdown; never partially visible.
///  * `cache.log` — an append-only journal, one checksummed record per
///    completed job, flushed on every append. Survives a SIGKILL mid-run
///    up to the last flushed record.
///
/// Both files hold the same record format: a fixed header (magic, payload
/// length, FNV-1a payload checksum) followed by the cache key triple, the
/// classical bits and the flat SimulationStats encoding shared with the
/// checkpoint blob (sim/checkpoint.hpp). Loading is corruption-tolerant by
/// design: a record whose header, length or checksum does not line up is
/// *skipped and counted* — the loader rescans for the next record magic —
/// and never fails the restart. A torn final record (the common crash
/// artifact of an append-only log) therefore costs one cache entry, not
/// the whole spill.
///
/// Snapshot-then-truncate: after a successful snapshot rename the log is
/// truncated. The crash window between the two operations leaves records
/// present in both files; replaying them is idempotent (same key, same
/// deterministic outcome), so recovery needs no sequencing metadata.

#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/result_cache.hpp"

namespace ddsim::serve {

/// Monotonic spill counters (snapshot via CacheSpill::counters()).
struct SpillCounters {
  std::uint64_t appended = 0;       ///< records written to the log
  std::uint64_t loaded = 0;         ///< records restored at load()
  std::uint64_t corruptSkipped = 0; ///< records rejected (and survived) at load()
  std::uint64_t snapshots = 0;      ///< atomic snapshot rewrites completed
};

class CacheSpill {
 public:
  /// Bind to \p dir (created, with parents, if missing). Throws
  /// std::runtime_error when the directory cannot be created.
  explicit CacheSpill(std::string dir);
  ~CacheSpill();

  CacheSpill(const CacheSpill&) = delete;
  CacheSpill& operator=(const CacheSpill&) = delete;

  /// Replay the snapshot, then the log, invoking \p sink per decoded
  /// record (later records for the same key simply overwrite — replay is
  /// idempotent). Corrupted records are skipped and counted, never fatal;
  /// missing files mean an empty spill. Returns the number of records
  /// restored.
  std::size_t load(
      const std::function<void(const CacheKey&, CachedOutcome)>& sink);

  /// Append one record to the journal and flush it to the OS. Thread-safe.
  void append(const CacheKey& key, const CachedOutcome& outcome);

  /// Current journal size in bytes (existing file at construction plus
  /// every record appended since, reset to 0 by snapshot()'s truncation).
  /// The serve layer compares it against ServiceConfig::spillCompactBytes
  /// to trigger inline snapshot+truncate compaction between shutdowns.
  [[nodiscard]] std::uint64_t logBytes() const;

  /// Atomically replace the snapshot with \p entries (tmp + fsync +
  /// rename), then truncate the journal. Thread-safe; returns false when
  /// any filesystem step failed (the previous snapshot stays intact).
  bool snapshot(
      const std::vector<std::pair<CacheKey, CachedOutcome>>& entries);

  [[nodiscard]] SpillCounters counters() const;
  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }

 private:
  [[nodiscard]] std::string snapshotPath() const;
  [[nodiscard]] std::string logPath() const;
  /// Decode every salvageable record of one file (absent file = 0 records).
  std::size_t loadFile(
      const std::string& path,
      const std::function<void(const CacheKey&, CachedOutcome)>& sink);
  void closeLogLocked();

  std::string dir_;
  mutable std::mutex mutex_;
  /// Journal handle, opened lazily on first append and kept open so every
  /// completed job costs one write + flush, not an open/close pair.
  std::FILE* log_ = nullptr;

  std::uint64_t appended_ = 0;
  std::uint64_t logBytes_ = 0;
  std::uint64_t loaded_ = 0;
  std::uint64_t corruptSkipped_ = 0;
  std::uint64_t snapshots_ = 0;
};

}  // namespace ddsim::serve
