#include "serve/block_cache.hpp"

#include "dd/migration.hpp"

namespace ddsim::serve {

BlockCache::BlockCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const dd::FlatMatrixDD> BlockCache::lookup(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  sharedNodes_.fetch_add(it->second->second->nodeCount(),
                         std::memory_order_relaxed);
  return it->second->second;
}

void BlockCache::insert(std::uint64_t key,
                        std::shared_ptr<const dd::FlatMatrixDD> block) {
  if (capacity_ == 0 || !block) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: identical key implies identical content; keep the existing
    // entry (shared with any in-flight importer) and just touch it.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(block));
  index_[key] = lru_.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

BlockCacheCounters BlockCache::counters() const {
  BlockCacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.insertions = insertions_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.sharedNodes = sharedNodes_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    c.entries = lru_.size();
  }
  return c;
}

}  // namespace ddsim::serve
