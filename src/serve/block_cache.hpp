/// \file block_cache.hpp
/// \brief Shared LRU cache of prebuilt (exported) matrix DDs for
///        DD-repeating blocks.
///
/// When the service runs many jobs that share structure — e.g. Grover
/// circuits with the same iteration body, or parameter sweeps over a fixed
/// ansatz — each worker rebuilds the same combined block matrix in its own
/// private package. The block cache amortizes that: the first worker to
/// build a repeated block exports it to the portable dd::FlatMatrixDD form
/// (PR 5 migration layer) and publishes it here; later workers (and later
/// jobs) import it straight into their own package through the unique /
/// complex tables instead of re-multiplying the gate sequence.
///
/// Safety: FlatMatrixDD is immutable plain data with no package pointers,
/// so entries may be shared freely across worker threads and outlive every
/// package. Keys are content hashes of the block body (see
/// sim::CircuitSimulator's keying) — a collision costs a wrong *candidate*,
/// but import validation plus the fact that keys hash the full canonical
/// operation stream make a silently wrong block astronomically unlikely;
/// the cache stores only the hash, mirroring the simulator's intra-run
/// block cache.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>

#include <unordered_map>

#include "sim/block_cache.hpp"

namespace ddsim::serve {

/// Monotonic block-cache counters (snapshot via BlockCache::counters()).
struct BlockCacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;       ///< current live entries
  std::uint64_t sharedNodes = 0; ///< flat nodes handed out via hits
};

/// Thread-safe LRU over exported matrix DDs, implementing the simulator's
/// sim::SharedBlockCache extension point. A single mutex suffices: lookups
/// copy a shared_ptr (cheap), and the expensive work (building/importing
/// the DD) happens outside the lock in the workers.
class BlockCache final : public sim::SharedBlockCache {
 public:
  /// \p capacity is the maximum number of cached blocks (0 disables the
  /// cache: lookups miss, inserts drop).
  explicit BlockCache(std::size_t capacity);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  std::shared_ptr<const dd::FlatMatrixDD> lookup(std::uint64_t key) override;
  void insert(std::uint64_t key,
              std::shared_ptr<const dd::FlatMatrixDD> block) override;

  [[nodiscard]] BlockCacheCounters counters() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  using Entry = std::pair<std::uint64_t,
                          std::shared_ptr<const dd::FlatMatrixDD>>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> sharedNodes_{0};
};

}  // namespace ddsim::serve
