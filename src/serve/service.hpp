/// \file service.hpp
/// \brief Multi-tenant batch-simulation service: fixed worker pool, bounded
///        priority admission queue, content-addressed result cache.
///
/// Architecture (see DESIGN.md, "Serving layer"):
///  * **Worker/package ownership** — each worker thread simulates at most
///    one job at a time, and every simulation owns a private dd::Package
///    (unique table, compute tables, complex table). No DD state is ever
///    shared between threads, so the hot DD paths need no locking at all;
///    the only synchronized structures are the admission queue, the result
///    cache shards and the stats counters.
///  * **Admission** — a bounded queue with three priority bands (High /
///    Normal / Low, FIFO within a band). A full queue rejects at submit
///    time (AdmissionError) instead of buffering unboundedly.
///  * **Deduplication** — jobs are content-addressed by (circuit hash,
///    strategy hash, seed). A submission matching a finished job is
///    answered from the ResultCache without touching the queue; one
///    matching a queued/running job is *coalesced* onto it and receives a
///    copy of its result when it finishes. Coalesced handles share one
///    execution — cancelling it cancels every attached handle.
///  * **Deadlines & budgets** — a per-job deadline (wall seconds from
///    submission) is mapped onto the simulator's existing timeout
///    machinery: time spent queued is charged against it, an expired job
///    is failed without simulating, and a binding deadline mid-run
///    surfaces as JobStatus::Expired (with PartialResult) rather than
///    TimedOut. Node/byte budgets ride the StrategyConfig governor knobs
///    unchanged.
///  * **Cancellation** — cooperative, via CircuitSimulator::setCancelCheck
///    feeding the package abort-poll (PR 2 machinery): a cancel request
///    unwinds even mid-multiplication and yields a PartialResult.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dd/fault_injection.hpp"
#include "ir/circuit.hpp"
#include "obs/metrics.hpp"
#include "serve/block_cache.hpp"
#include "serve/persistence.hpp"
#include "serve/result_cache.hpp"
#include "sim/stats.hpp"

namespace ddsim::serve {

enum class JobPriority { High = 0, Normal = 1, Low = 2 };

[[nodiscard]] std::string priorityName(JobPriority p);
[[nodiscard]] std::optional<JobPriority> priorityFromName(
    const std::string& name);

enum class JobStatus {
  Completed,         ///< simulated to completion
  Cached,            ///< answered from the result cache, nothing simulated
  TimedOut,          ///< StrategyConfig::timeLimitSeconds exceeded
  Expired,           ///< per-job deadline passed (queued or mid-run)
  Cancelled,         ///< cancel() honoured (queued or mid-run)
  ResourceExhausted, ///< node/byte budget exhausted, ladder failed
  Failed,            ///< any other error (parse/config/internal)
};

[[nodiscard]] std::string statusName(JobStatus s);

/// One unit of admission: a circuit plus how to run it.
struct JobSpec {
  /// Shared so duplicate submissions and the worker can reference the same
  /// immutable circuit concurrently (readers only; Circuit is never
  /// mutated after submission).
  std::shared_ptr<const ir::Circuit> circuit;
  sim::StrategyConfig config;
  std::uint64_t seed = 0;
  JobPriority priority = JobPriority::Normal;
  /// Wall-clock deadline in seconds measured from submission (0 = none).
  /// Queue wait counts against it. Validated at submit: a negative or
  /// non-finite (NaN/inf) value throws std::invalid_argument before
  /// admission.
  double deadlineSeconds = 0.0;
  /// Presentation label for manifests/reports (not part of the cache key).
  std::string label;
  /// Skip cache lookup, coalescing and insertion for this job.
  bool bypassCache = false;
  /// Non-empty: a serialized sim::Checkpoint the FIRST attempt resumes
  /// from instead of starting at |0...0> — the cross-process hand-off used
  /// by the distributed router when it re-routes a job whose original
  /// worker died mid-run. A corrupt or mismatched blob falls back to a
  /// fresh start (same policy as retry resume).
  std::vector<std::uint8_t> initialCheckpoint;
  /// Called with the serialized checkpoint every time one is captured for
  /// this job (after it is stored for retry resume). Lets a network worker
  /// stream progress snapshots back to its router so the job survives this
  /// process. Invoked on the executing worker thread; must not throw.
  std::function<void(const std::vector<std::uint8_t>&)> checkpointObserver;
};

struct JobResult {
  JobStatus status = JobStatus::Failed;
  std::vector<bool> classicalBits;
  sim::SimulationStats stats;
  /// Progress snapshot when the run was cut short (timeout, deadline,
  /// cancellation, resource exhaustion).
  std::optional<sim::PartialResult> partial;
  std::string error;
  double queueSeconds = 0.0;  ///< submission -> execution start (or resolution)
  double runSeconds = 0.0;    ///< time spent simulating (0 for cache hits)
  int worker = -1;            ///< executing worker id (-1: never ran)
  bool fromCache = false;     ///< answered from the result cache
  bool coalesced = false;     ///< attached to another in-flight submission
  /// Global completion sequence number (1-based, total order over finished
  /// jobs of one service) — lets tests and reports reconstruct ordering.
  std::uint64_t completionIndex = 0;
  /// Attempts this job consumed (1 = first try sufficed; only retried jobs
  /// exceed it).
  std::size_t attempts = 1;
  /// True when the final attempt resumed from a checkpoint captured by an
  /// earlier attempt rather than restarting from |0...0>.
  bool resumed = false;
  /// Total backoff this job spent waiting between attempts.
  double backoffSeconds = 0.0;
};

namespace detail {
struct JobRecord;
}  // namespace detail

/// Handle to a submitted job. Cheap to copy; all copies refer to the same
/// job. Results stay retrievable for the handle's lifetime.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return rec_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const;
  /// Block until the job resolves; returns the result (stable reference,
  /// valid while any handle exists).
  const JobResult& wait() const;
  /// Wait up to \p seconds; true if the job resolved.
  bool waitFor(double seconds) const;
  [[nodiscard]] bool done() const;
  /// Request cooperative cancellation. Honoured before execution (queued
  /// jobs resolve Cancelled without simulating) or mid-run via the abort
  /// poll. Returns false if the job had already resolved.
  bool cancel() const;

 private:
  friend class SimulationService;
  explicit JobHandle(std::shared_ptr<detail::JobRecord> rec)
      : rec_(std::move(rec)) {}
  std::shared_ptr<detail::JobRecord> rec_;
};

/// Thrown by submit() when the admission queue is full or the service is
/// shutting down.
class AdmissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// When and how a transiently failed job is re-admitted. Retries are
/// delayed re-admissions: the failed job re-enters its priority band after
/// an exponential backoff (base x multiplier^(attempt-1)) and — when a
/// checkpoint was captured during the failed attempt — resumes from it
/// instead of restarting. Re-admission bypasses the queue-capacity check
/// (the job already holds a handle; rejecting the retry would strand it).
struct RetryPolicy {
  /// Total attempts a job may consume, first run included (1 = no retries).
  std::size_t maxAttempts = 1;
  /// Backoff before the first retry.
  double baseBackoffSeconds = 0.01;
  /// Backoff growth factor per further retry.
  double backoffMultiplier = 2.0;
  /// Retry ResourceExhausted outcomes (transient by construction: the
  /// degradation ladder already tried to recover, another attempt on a
  /// fresh package — resumed past the completed prefix — may succeed).
  bool retryResourceExhausted = true;
  /// Retry Failed outcomes (opt-in: most are deterministic — bad circuit,
  /// bad config — and would fail identically every attempt).
  bool retryFailed = false;

  /// Whether \p status is transient under this policy. TimedOut, Expired
  /// and Cancelled are never retried: the first two mean the time budget
  /// is spent, the last is the caller's explicit intent.
  [[nodiscard]] bool shouldRetry(JobStatus status) const noexcept {
    return (status == JobStatus::ResourceExhausted &&
            retryResourceExhausted) ||
           (status == JobStatus::Failed && retryFailed);
  }
  /// Backoff before re-admitting a job whose 1-based attempt \p attempt
  /// just failed.
  [[nodiscard]] double backoffFor(std::size_t attempt) const noexcept {
    double backoff = baseBackoffSeconds;
    for (std::size_t i = 1; i < attempt; ++i) {
      backoff *= backoffMultiplier;
    }
    return backoff;
  }
};

struct ServiceConfig {
  /// Worker threads (0 = hardware concurrency, at least 1).
  std::size_t workers = 0;
  /// Maximum queued (not yet executing) jobs before submissions reject.
  std::size_t queueCapacity = 256;
  /// Total result-cache entries (0 disables caching and coalescing).
  std::size_t cacheCapacity = 1024;
  std::size_t cacheShards = 8;
  /// Entries in the shared prebuilt-block cache (exported matrix DDs of
  /// DD-repeating blocks, shared across workers and jobs). 0 (the default)
  /// disables it: each simulation builds its own blocks as before.
  std::size_t blockCacheCapacity = 0;
  /// Construct with workers idle until start() — lets tests (and batch
  /// drivers that want strict priority order) enqueue everything first.
  bool startPaused = false;
  /// Durability: directory for the result cache's crash-consistent spill
  /// (see serve/persistence.hpp). Empty (the default) keeps the cache
  /// purely in-memory. When set, previously completed jobs are restored at
  /// construction, every completed job is journaled, and shutdown() writes
  /// an atomic snapshot.
  std::string cacheDir = {};
  /// Compaction threshold for the cache spill journal: once `cache.log`
  /// exceeds this many bytes, the next completed job triggers an inline
  /// snapshot+truncate (same atomic tmp+fsync+rename as shutdown), so the
  /// journal never grows unboundedly between graceful shutdowns. 0 (the
  /// default) keeps the PR 7 behaviour: compaction only at shutdown.
  std::uint64_t spillCompactBytes = 0;
  /// Default StrategyConfig::checkpointIntervalOps for jobs that leave the
  /// knob at 0. Nonzero makes every job resumable after a transient
  /// failure; 0 leaves checkpointing to per-job opt-in.
  std::size_t checkpointIntervalOps = 0;
  /// Transient-failure retry policy (default: no retries).
  RetryPolicy retry = {};
  /// Test hook: returns the fault injector to arm on the package of
  /// (jobId, 1-based attempt), or nullptr for none. The injector must
  /// outlive the service. Lets tests fail a specific attempt of a specific
  /// job and prove the retry path recovers.
  std::function<dd::FaultInjector*(std::uint64_t jobId, std::size_t attempt)>
      faultInjectorProvider = {};
};

/// Aggregated service statistics snapshot (all counters monotonic since
/// service construction).
struct ServiceStats {
  std::size_t workers = 0;
  double elapsedSeconds = 0.0;
  std::size_t queueDepth = 0;

  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t simulationsRun = 0;
  std::uint64_t completed = 0;
  std::uint64_t cached = 0;
  std::uint64_t timedOut = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t resourceExhausted = 0;
  std::uint64_t failed = 0;

  double queueLatencyMeanSeconds = 0.0;
  double queueLatencyMaxSeconds = 0.0;
  double execSecondsTotal = 0.0;
  /// Finished jobs (every status) per elapsed wall second.
  double jobsPerSecond = 0.0;

  /// Queue-wait quantiles over every finished job (histogram-estimated,
  /// clamped so p50 <= p95 <= p99 <= max always holds).
  double queueLatencyP50Seconds = 0.0;
  double queueLatencyP95Seconds = 0.0;
  double queueLatencyP99Seconds = 0.0;
  /// Execution-time quantiles over jobs that actually simulated.
  double execP50Seconds = 0.0;
  double execP95Seconds = 0.0;
  double execP99Seconds = 0.0;

  /// Full bucketed distributions backing the quantiles above.
  obs::HistogramSnapshot queueLatencyHistogram;
  obs::HistogramSnapshot execHistogram;
  /// Degradation-ladder engagements per simulated job (how hard each job
  /// leaned on the governor, not just the process-wide total).
  obs::HistogramSnapshot degradationPerJobHistogram;

  /// Submissions that opted out of the cache (bypassCache).
  std::uint64_t cacheBypassed = 0;

  CacheCounters cache;
  /// Shared prebuilt-block cache (all zeros when blockCacheCapacity == 0).
  BlockCacheCounters blockCache;
  /// Result-cache spill-file counters (all zeros without a cacheDir).
  SpillCounters spill;

  /// Durability & retry accounting. A retried attempt is either *resumed*
  /// (continued from a checkpoint of the failed attempt) or *restarted*
  /// (no usable checkpoint); the two always sum to the retry count.
  std::uint64_t retriesScheduled = 0;
  std::uint64_t resumedAttempts = 0;
  std::uint64_t restartedAttempts = 0;
  double backoffSecondsTotal = 0.0;
  /// Checkpoints captured across all job attempts.
  std::uint64_t checkpointsTaken = 0;

  /// Degradation-ladder engagements summed across all jobs, per rung.
  std::uint64_t degradationEvents = 0;
  std::uint64_t pressureFlushes = 0;
  std::uint64_t sequentialFallbackOps = 0;
  std::uint64_t pressureApproximations = 0;
  std::uint64_t resourceRecoveries = 0;

  /// Pipelined-engine accounting summed across all jobs. Serial-fallback
  /// ops (replayed after a builder bow-out or main-package pressure break)
  /// are counted separately from pipelined blocks so degraded runs are
  /// distinguishable from healthy pipelined runs in the JSON.
  std::uint64_t pipelinedBlocks = 0;
  std::uint64_t pipelineStalls = 0;
  std::uint64_t pipelineBowOuts = 0;
  std::uint64_t pipelineSerialFallbackOps = 0;

  std::vector<std::uint64_t> perWorkerJobs;

  /// Stable flat JSON object (keys documented in DESIGN.md).
  [[nodiscard]] std::string toJson() const;
};

/// Merge one shard's stats snapshot into a cluster aggregate (the
/// distributed router's stats-merge rule, see DESIGN.md): counters and
/// totals sum, maxima take the max, histograms merge bucket-wise with
/// quantiles recomputed from the merged buckets
/// (obs::mergeHistogramSnapshots), derived figures (means, jobs/s) are
/// re-derived from the merged totals, and per-worker job counts
/// concatenate. Merging shard snapshots is associative, so the router can
/// fold any number of shards into one report.
void mergeStats(ServiceStats& into, const ServiceStats& shard);

class SimulationService {
 public:
  explicit SimulationService(ServiceConfig config = {});
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// Admit a job. Throws AdmissionError when the queue is full or the
  /// service is shutting down; std::invalid_argument on a null circuit,
  /// malformed StrategyConfig or negative/non-finite deadlineSeconds
  /// (validated in the caller's thread, before admission). May resolve
  /// immediately (cache hit).
  JobHandle submit(JobSpec spec);

  /// Non-throwing admission: nullopt instead of AdmissionError, including
  /// for every submission that races shutdown. Argument errors (null
  /// circuit, malformed config, bad deadline) still throw
  /// std::invalid_argument — they are caller bugs, not load conditions.
  std::optional<JobHandle> trySubmit(JobSpec spec);

  /// Release paused workers (no-op when already running).
  void start();

  /// Stop accepting work. drain=true finishes everything queued (pending
  /// retry backoffs are cut short, not waited out); false resolves
  /// still-queued and backoff-parked jobs as Cancelled. Idempotent; joins
  /// workers, then (with a cacheDir) writes the cache snapshot.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t workerCount() const noexcept {
    return workers_.size();
  }

 private:
  using Clock = std::chrono::steady_clock;

  void workerLoop(int workerId);
  std::shared_ptr<detail::JobRecord> popLocked();
  /// Move every due delayed retry (all of them when stopping — drain must
  /// not wait out backoffs) into its priority band. Caller holds
  /// queueMutex_.
  void promoteDueRetriesLocked();
  /// Re-admit a transiently failed job after its backoff, or return false
  /// when the policy (attempts spent, non-transient status, shutdown,
  /// deadline already consumed by the backoff) says to fail it for good.
  bool scheduleRetry(const std::shared_ptr<detail::JobRecord>& rec,
                     const JobResult& result);
  void finishJob(const std::shared_ptr<detail::JobRecord>& rec,
                 JobResult result);
  void publish(const std::shared_ptr<detail::JobRecord>& rec,
               JobResult result);
  void accumulate(const JobResult& result);

  ServiceConfig config_;
  ResultCache cache_;
  /// Shared across workers; null when blockCacheCapacity == 0.
  std::shared_ptr<BlockCache> blockCache_;
  /// Crash-consistent cache persistence; null without a cacheDir.
  std::unique_ptr<CacheSpill> spill_;
  Clock::time_point started_;

  mutable std::mutex queueMutex_;
  std::condition_variable workAvailable_;
  std::deque<std::shared_ptr<detail::JobRecord>> queues_[3];
  std::size_t queueDepth_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  /// Backoff parking lot: retries keyed by the steady-clock instant they
  /// become due. Workers promote due entries into the priority bands and
  /// sleep until the earliest deadline otherwise. Guarded by queueMutex_.
  std::multimap<Clock::time_point, std::shared_ptr<detail::JobRecord>>
      delayed_;
  /// Leaders of queued/running cacheable jobs, for coalescing.
  std::unordered_map<CacheKey, std::shared_ptr<detail::JobRecord>,
                     CacheKeyHash>
      inflight_;

  std::vector<std::thread> workers_;
  /// Set by the first shutdown() that wrote the spill snapshot, so the
  /// destructor's implicit shutdown does not write (and count) a second.
  bool spillSnapshotDone_ = false;

  std::atomic<std::uint64_t> nextJobId_{1};
  std::atomic<std::uint64_t> completionCounter_{0};

  // Aggregation counters (relaxed; snapshot coherence is not required).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> simulationsRun_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cachedAnswers_{0};
  std::atomic<std::uint64_t> timedOut_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> resourceExhausted_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> queueLatencySumNs_{0};
  std::atomic<std::uint64_t> queueLatencyMaxNs_{0};
  std::atomic<std::uint64_t> execSumNs_{0};
  std::atomic<std::uint64_t> cacheBypassed_{0};
  obs::Histogram queueLatencyHist_;
  obs::Histogram execHist_;
  obs::Histogram degradationPerJobHist_;
  std::atomic<std::uint64_t> degradationEvents_{0};
  std::atomic<std::uint64_t> pressureFlushes_{0};
  std::atomic<std::uint64_t> sequentialFallbackOps_{0};
  std::atomic<std::uint64_t> pressureApproximations_{0};
  std::atomic<std::uint64_t> resourceRecoveries_{0};
  std::atomic<std::uint64_t> pipelinedBlocks_{0};
  std::atomic<std::uint64_t> pipelineStalls_{0};
  std::atomic<std::uint64_t> pipelineBowOuts_{0};
  std::atomic<std::uint64_t> pipelineSerialFallbackOps_{0};
  std::atomic<std::uint64_t> retriesScheduled_{0};
  std::atomic<std::uint64_t> resumedAttempts_{0};
  std::atomic<std::uint64_t> restartedAttempts_{0};
  std::atomic<std::uint64_t> backoffNs_{0};
  std::atomic<std::uint64_t> checkpointsTaken_{0};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> perWorkerJobs_;
};

}  // namespace ddsim::serve
