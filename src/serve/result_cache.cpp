#include "serve/result_cache.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace ddsim::serve {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  const std::size_t shardCount =
      std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(
                                                    1, capacity)));
  // Distribute the budget so per-shard capacities sum to exactly
  // `capacity`: floor(capacity / shardCount) each, with the remainder
  // handed out one slot at a time to the leading shards.
  const std::size_t base = capacity / shardCount;
  const std::size_t remainder = capacity % shardCount;
  shards_.reserve(shardCount);
  for (std::size_t i = 0; i < shardCount; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = base + (i < remainder ? 1 : 0);
  }
}

std::size_t ResultCache::effectiveCapacity() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->capacity;
  }
  return total;
}

std::optional<CachedOutcome> ResultCache::lookup(const CacheKey& key) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard& shard = shardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::insert(const CacheKey& key, CachedOutcome outcome) {
  if (capacity_ == 0) {
    return;
  }
  Shard& shard = shardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(outcome);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(outcome));
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<CacheKey, CachedOutcome>> ResultCache::snapshotEntries()
    const {
  std::vector<std::pair<CacheKey, CachedOutcome>> out;
  out.reserve(entries_.load(std::memory_order_relaxed));
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& entry : shard->lru) {
      out.push_back(entry);
    }
  }
  return out;
}

CacheCounters ResultCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.insertions = insertions_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.entries = entries_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace ddsim::serve
