#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "ir/hash.hpp"
#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulator.hpp"

namespace ddsim::serve {

namespace detail {

/// Shared state behind a JobHandle. The followers vector (coalesced
/// duplicates awaiting this job's result) is guarded by the service's
/// queue mutex; everything else by the record's own mutex or atomics.
struct JobRecord {
  JobSpec spec;
  std::uint64_t id = 0;
  CacheKey key{};
  bool cacheable = false;
  std::chrono::steady_clock::time_point submitted;
  std::atomic<bool> cancelRequested{false};

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool done = false;
  JobResult result;

  std::vector<std::shared_ptr<JobRecord>> followers;

  /// Retry state. Ownership of these fields passes hand-to-hand: the
  /// executing worker -> the delayed_ parking lot -> the next executing
  /// worker, with every handoff through queueMutex_, so no extra locking
  /// is needed.
  std::size_t attempt = 0;             ///< attempts consumed (1-based once running)
  double backoffTotal = 0.0;           ///< backoff waited across attempts
  double runTotal = 0.0;               ///< simulation time across attempts
  double firstQueueSeconds = -1.0;     ///< queue wait of the FIRST attempt
  /// Latest serialized checkpoint captured by any attempt of this job.
  std::vector<std::uint8_t> checkpoint;
};

}  // namespace detail

using detail::JobRecord;

namespace {

double secondsSince(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

std::uint64_t toNs(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
}

void atomicMax(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string priorityName(JobPriority p) {
  switch (p) {
    case JobPriority::High: return "high";
    case JobPriority::Normal: return "normal";
    case JobPriority::Low: return "low";
  }
  return "?";
}

std::optional<JobPriority> priorityFromName(const std::string& name) {
  if (name == "high") {
    return JobPriority::High;
  }
  if (name == "normal") {
    return JobPriority::Normal;
  }
  if (name == "low") {
    return JobPriority::Low;
  }
  return std::nullopt;
}

std::string statusName(JobStatus s) {
  switch (s) {
    case JobStatus::Completed: return "completed";
    case JobStatus::Cached: return "cached";
    case JobStatus::TimedOut: return "timed_out";
    case JobStatus::Expired: return "expired";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::ResourceExhausted: return "resource_exhausted";
    case JobStatus::Failed: return "failed";
  }
  return "?";
}

// ------------------------------------------------------------- JobHandle

std::uint64_t JobHandle::id() const { return rec_ ? rec_->id : 0; }

const JobResult& JobHandle::wait() const {
  std::unique_lock<std::mutex> lock(rec_->mutex);
  rec_->cv.wait(lock, [this] { return rec_->done; });
  return rec_->result;
}

bool JobHandle::waitFor(double seconds) const {
  std::unique_lock<std::mutex> lock(rec_->mutex);
  return rec_->cv.wait_for(lock, std::chrono::duration<double>(seconds),
                           [this] { return rec_->done; });
}

bool JobHandle::done() const {
  const std::lock_guard<std::mutex> lock(rec_->mutex);
  return rec_->done;
}

bool JobHandle::cancel() const {
  {
    const std::lock_guard<std::mutex> lock(rec_->mutex);
    if (rec_->done) {
      return false;
    }
  }
  rec_->cancelRequested.store(true, std::memory_order_relaxed);
  return true;
}

// ----------------------------------------------------- SimulationService

SimulationService::SimulationService(ServiceConfig config)
    : config_(config),
      cache_(config.cacheCapacity, config.cacheShards),
      blockCache_(config.blockCacheCapacity > 0
                      ? std::make_shared<BlockCache>(config.blockCacheCapacity)
                      : nullptr),
      started_(Clock::now()),
      paused_(config.startPaused) {
  if (!config_.cacheDir.empty()) {
    // Warm-start before any worker exists: a restarted service answers
    // previously completed jobs as Cached without re-simulating them.
    spill_ = std::make_unique<CacheSpill>(config_.cacheDir);
    spill_->load([this](const CacheKey& key, CachedOutcome outcome) {
      cache_.insert(key, std::move(outcome));
    });
  }
  std::size_t n = config_.workers;
  if (n == 0) {
    n = std::max(1U, std::thread::hardware_concurrency());
  }
  perWorkerJobs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    perWorkerJobs_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { workerLoop(static_cast<int>(i)); });
  }
}

SimulationService::~SimulationService() { shutdown(/*drain=*/true); }

void SimulationService::start() {
  {
    const std::lock_guard<std::mutex> lock(queueMutex_);
    paused_ = false;
  }
  workAvailable_.notify_all();
}

JobHandle SimulationService::submit(JobSpec spec) {
  if (!spec.circuit) {
    throw std::invalid_argument("submit: null circuit");
  }
  if (spec.deadlineSeconds < 0.0 || !std::isfinite(spec.deadlineSeconds)) {
    // Rejected before admission: a NaN deadline compares false against
    // everything and would otherwise silently mean "no deadline".
    throw std::invalid_argument(
        "submit: deadlineSeconds must be non-negative and finite");
  }
  spec.config.validate();

  auto rec = std::make_shared<JobRecord>();
  rec->id = nextJobId_.fetch_add(1, std::memory_order_relaxed);
  rec->submitted = Clock::now();
  rec->cacheable = !spec.bypassCache && cache_.capacity() > 0;
  rec->spec = std::move(spec);
  // A handed-over checkpoint (distributed re-route) primes the same slot
  // retry resume uses, so the first attempt continues where the previous
  // process left off.
  rec->checkpoint = rec->spec.initialCheckpoint;
  if (rec->cacheable) {
    // Hashing is the expensive part of admission — keep it off the lock.
    rec->key = CacheKey{ir::contentHash(*rec->spec.circuit),
                        rec->spec.config.contentHash(), rec->spec.seed};
  }

  // Cache lookup, coalescing and enqueueing must be one atomic decision:
  // finishJob inserts the outcome into the cache *before* retiring the
  // in-flight entry, so under this lock a duplicate always sees either the
  // in-flight leader or the cached result — never a gap that would start a
  // second simulation of the same key.
  std::optional<CachedOutcome> hit;
  {
    std::unique_lock<std::mutex> lock(queueMutex_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      throw AdmissionError("submit: service is shutting down");
    }
    if (rec->cacheable) {
      const auto it = inflight_.find(rec->key);
      if (it != inflight_.end()) {
        it->second->followers.push_back(rec);
        submitted_.fetch_add(1, std::memory_order_relaxed);
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        obs::traceInstant("serve.coalesced", obs::cat::kServe, rec->id);
        return JobHandle{std::move(rec)};
      }
      hit = cache_.lookup(rec->key);
    }
    if (!hit) {
      if (queueDepth_ >= config_.queueCapacity) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        throw AdmissionError("submit: admission queue is full (" +
                             std::to_string(config_.queueCapacity) + " jobs)");
      }
      queues_[static_cast<int>(rec->spec.priority)].push_back(rec);
      ++queueDepth_;
      if (rec->cacheable) {
        inflight_.emplace(rec->key, rec);
      }
      submitted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (rec->spec.bypassCache) {
    cacheBypassed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (hit) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    obs::traceInstant("serve.cache-hit", obs::cat::kServe, rec->id);
    JobResult r;
    r.status = JobStatus::Cached;
    r.classicalBits = std::move(hit->classicalBits);
    r.stats = hit->stats;
    r.fromCache = true;
    publish(rec, std::move(r));
    return JobHandle{std::move(rec)};
  }
  obs::traceInstant("serve.queued", obs::cat::kServe, rec->id);
  workAvailable_.notify_one();
  return JobHandle{std::move(rec)};
}

std::optional<JobHandle> SimulationService::trySubmit(JobSpec spec) {
  try {
    return submit(std::move(spec));
  } catch (const AdmissionError&) {
    return std::nullopt;
  }
}

std::shared_ptr<JobRecord> SimulationService::popLocked() {
  for (auto& queue : queues_) {
    if (!queue.empty()) {
      auto rec = std::move(queue.front());
      queue.pop_front();
      --queueDepth_;
      return rec;
    }
  }
  return nullptr;
}

void SimulationService::promoteDueRetriesLocked() {
  const auto now = Clock::now();
  std::size_t promoted = 0;
  // During shutdown every parked retry is due at once: a draining service
  // finishes the work, it does not sleep out backoffs.
  while (!delayed_.empty() && (stopping_ || delayed_.begin()->first <= now)) {
    auto rec = std::move(delayed_.begin()->second);
    delayed_.erase(delayed_.begin());
    queues_[static_cast<int>(rec->spec.priority)].push_back(std::move(rec));
    ++queueDepth_;
    ++promoted;
  }
  if (promoted > 1) {
    // The promoting worker takes one job itself; wake peers for the rest.
    workAvailable_.notify_all();
  }
}

bool SimulationService::scheduleRetry(const std::shared_ptr<JobRecord>& rec,
                                      const JobResult& result) {
  const RetryPolicy& policy = config_.retry;
  if (rec->attempt >= policy.maxAttempts ||
      rec->cancelRequested.load(std::memory_order_relaxed)) {
    return false;
  }
  const double backoff = policy.backoffFor(rec->attempt);
  if (rec->spec.deadlineSeconds > 0.0 &&
      secondsSince(rec->submitted) + backoff >= rec->spec.deadlineSeconds) {
    return false;  // the backoff alone would blow the deadline — fail now
  }
  // Mutate the record before parking it: once it sits in delayed_ another
  // worker may promote and run it.
  rec->backoffTotal += backoff;
  const auto due =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(backoff));
  {
    const std::lock_guard<std::mutex> lock(queueMutex_);
    if (stopping_) {
      rec->backoffTotal -= backoff;
      return false;  // no new attempts during shutdown
    }
    delayed_.emplace(due, rec);
  }
  retriesScheduled_.fetch_add(1, std::memory_order_relaxed);
  backoffNs_.fetch_add(toNs(backoff), std::memory_order_relaxed);
  obs::traceInstant("serve.retry-scheduled", obs::cat::kServe, rec->id);
  // Re-admission deliberately bypasses the queue-capacity check: the job
  // already holds a handle; rejecting the retry would strand it.
  workAvailable_.notify_all();
  (void)result;
  return true;
}

void SimulationService::workerLoop(int workerId) {
  for (;;) {
    std::shared_ptr<JobRecord> rec;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      for (;;) {
        promoteDueRetriesLocked();
        if ((!paused_ || stopping_) && queueDepth_ > 0) {
          rec = popLocked();
          break;
        }
        if (stopping_ && queueDepth_ == 0 && delayed_.empty()) {
          return;
        }
        if (!paused_ && !delayed_.empty()) {
          // Sleep at most until the earliest parked retry comes due.
          workAvailable_.wait_until(lock, delayed_.begin()->first);
        } else {
          workAvailable_.wait(lock);
        }
      }
    }
    if (!rec) {
      continue;
    }

    const double sinceSubmit = secondsSince(rec->submitted);
    const std::size_t attempt = ++rec->attempt;
    if (rec->firstQueueSeconds < 0.0) {
      rec->firstQueueSeconds = sinceSubmit;
    }
    JobResult r;
    r.worker = workerId;
    // Queue latency is pinned to the first attempt — retry backoff and
    // earlier run time are accounted separately (backoffSeconds), not
    // smeared into the queue-wait distribution.
    r.queueSeconds = rec->firstQueueSeconds;
    r.attempts = attempt;
    r.backoffSeconds = rec->backoffTotal;
    const JobSpec& spec = rec->spec;
    obs::traceInstant("serve.dequeued", obs::cat::kServe, rec->id);
    if (attempt > 1) {
      obs::traceInstant("serve.retry-attempt", obs::cat::kServe, rec->id);
    }

    if (rec->cancelRequested.load(std::memory_order_relaxed)) {
      r.status = JobStatus::Cancelled;
      finishJob(rec, std::move(r));
      continue;
    }
    if (spec.deadlineSeconds > 0.0 && sinceSubmit >= spec.deadlineSeconds) {
      r.status = JobStatus::Expired;
      r.error = attempt > 1 ? "deadline passed before retry attempt"
                            : "deadline passed while queued";
      finishJob(rec, std::move(r));
      continue;
    }

    // Map the remaining deadline onto the simulator's timeout machinery:
    // queue wait (and, for retries, earlier attempts plus backoff) already
    // consumed part of the budget.
    sim::StrategyConfig config = spec.config;
    if (config.checkpointIntervalOps == 0) {
      config.checkpointIntervalOps = config_.checkpointIntervalOps;
    }
    bool deadlineBinding = false;
    if (spec.deadlineSeconds > 0.0) {
      const double remaining = spec.deadlineSeconds - sinceSubmit;
      if (config.timeLimitSeconds <= 0.0 ||
          remaining < config.timeLimitSeconds) {
        config.timeLimitSeconds = remaining;
        deadlineBinding = true;
      }
    }

    simulationsRun_.fetch_add(1, std::memory_order_relaxed);
    perWorkerJobs_[static_cast<std::size_t>(workerId)]->fetch_add(
        1, std::memory_order_relaxed);
    const obs::ScopedSpan runSpan("serve.job-run", obs::cat::kServe, rec->id);
    const sim::Timer runTimer;
    try {
      sim::CircuitSimulator simulator(*spec.circuit, config, spec.seed);
      simulator.setCancelCheck([raw = rec.get()] {
        return raw->cancelRequested.load(std::memory_order_relaxed);
      });
      if (blockCache_) {
        simulator.setSharedBlockCache(blockCache_);
      }
      if (config_.faultInjectorProvider) {
        if (dd::FaultInjector* injector =
                config_.faultInjectorProvider(rec->id, attempt)) {
          simulator.package().setFaultInjector(injector);
        }
      }
      if (config.checkpointIntervalOps > 0) {
        simulator.setCheckpointSink(
            [this, raw = rec.get()](const sim::Checkpoint& ck) {
              raw->checkpoint = ck.serialize();
              checkpointsTaken_.fetch_add(1, std::memory_order_relaxed);
              obs::traceInstant("serve.checkpoint", obs::cat::kServe,
                                raw->id);
              if (raw->spec.checkpointObserver) {
                raw->spec.checkpointObserver(raw->checkpoint);
              }
            });
      }
      // Resume whenever a checkpoint exists: a retry's own snapshot, or a
      // handed-over initialCheckpoint on the very first attempt (a
      // re-routed distributed job). The retry counters stay attempt-based
      // so resumed+restarted still equals retriesScheduled.
      if (attempt > 1 || !rec->checkpoint.empty()) {
        bool resumed = false;
        if (!rec->checkpoint.empty()) {
          try {
            simulator.resumeFrom(
                sim::Checkpoint::deserialize(rec->checkpoint));
            resumed = true;
          } catch (const sim::CheckpointError&) {
            // Corrupt or mismatched snapshot: restart from scratch rather
            // than failing the retry outright.
          }
        }
        if (attempt > 1) {
          (resumed ? resumedAttempts_ : restartedAttempts_)
              .fetch_add(1, std::memory_order_relaxed);
        }
        obs::traceInstant(resumed ? "serve.attempt-resumed"
                                  : "serve.attempt-restarted",
                          obs::cat::kServe, rec->id);
        r.resumed = resumed;
      }
      sim::SimulationResult res = simulator.run();
      r.status = JobStatus::Completed;
      r.classicalBits = std::move(res.classicalBits);
      r.stats = res.stats;
    } catch (const sim::SimulationCancelled& e) {
      r.status = JobStatus::Cancelled;
      r.partial = e.partial();
      r.stats = e.partial().stats;
    } catch (const sim::SimulationTimeout& e) {
      r.status = deadlineBinding ? JobStatus::Expired : JobStatus::TimedOut;
      r.partial = e.partial();
      r.stats = e.partial().stats;
      r.error = e.what();
    } catch (const sim::ResourceExhausted& e) {
      r.status = JobStatus::ResourceExhausted;
      r.partial = e.partial();
      r.stats = e.partial().stats;
      r.error = e.what();
    } catch (const dd::ResourceExhausted& e) {
      // Exhaustion before the simulator's own wrapper is armed (e.g. while
      // building the initial state) carries no progress snapshot, but it is
      // still exhaustion — and still retryable.
      r.status = JobStatus::ResourceExhausted;
      r.error = e.what();
    } catch (const std::exception& e) {
      r.status = JobStatus::Failed;
      r.error = e.what();
    }
    rec->runTotal += runTimer.seconds();
    r.runSeconds = rec->runTotal;  // simulation time across every attempt
    if (config_.retry.shouldRetry(r.status) && scheduleRetry(rec, r)) {
      continue;  // parked for a delayed re-admission; no result published
    }
    finishJob(rec, std::move(r));
  }
}

void SimulationService::finishJob(const std::shared_ptr<JobRecord>& rec,
                                  JobResult result) {
  // Insert into the cache BEFORE retiring the in-flight entry: submit()
  // checks inflight-then-cache under the queue lock, so this order leaves
  // no window in which a duplicate sees neither and re-simulates.
  if (result.status == JobStatus::Completed && rec->cacheable) {
    cache_.insert(rec->key, CachedOutcome{result.classicalBits, result.stats});
    if (spill_) {
      // Journal after the in-memory insert: a crash between the two costs
      // the on-disk copy of this one entry, never serves a stale answer.
      spill_->append(rec->key,
                     CachedOutcome{result.classicalBits, result.stats});
      if (config_.spillCompactBytes > 0 &&
          spill_->logBytes() > config_.spillCompactBytes) {
        // Inline compaction: fold the journal into the snapshot and
        // truncate it, bounding journal growth between shutdowns. The
        // spill mutex serializes racing workers; the loser sees a log
        // already below the threshold and skips.
        if (spill_->snapshot(cache_.snapshotEntries())) {
          obs::traceInstant("serve.spill.compacted", obs::cat::kServe,
                            rec->id);
        }
      }
    }
  }

  std::vector<std::shared_ptr<JobRecord>> followers;
  {
    const std::lock_guard<std::mutex> lock(queueMutex_);
    if (rec->cacheable) {
      const auto it = inflight_.find(rec->key);
      if (it != inflight_.end() && it->second == rec) {
        inflight_.erase(it);
      }
    }
    followers = std::move(rec->followers);
    rec->followers.clear();
  }

  for (const auto& follower : followers) {
    JobResult fr = result;
    fr.coalesced = true;
    fr.runSeconds = 0.0;  // no worker time consumed by the duplicate
    fr.queueSeconds = secondsSince(follower->submitted);
    publish(follower, std::move(fr));
  }
  publish(rec, std::move(result));
}

void SimulationService::publish(const std::shared_ptr<JobRecord>& rec,
                                JobResult result) {
  result.completionIndex =
      completionCounter_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::traceInstant("serve.job-finished", obs::cat::kServe, rec->id);
  accumulate(result);
  {
    const std::lock_guard<std::mutex> lock(rec->mutex);
    rec->result = std::move(result);
    rec->done = true;
  }
  rec->cv.notify_all();
}

void SimulationService::accumulate(const JobResult& result) {
  switch (result.status) {
    case JobStatus::Completed:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::Cached:
      cachedAnswers_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::TimedOut:
      timedOut_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::Expired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::Cancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::ResourceExhausted:
      resourceExhausted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::Failed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  const std::uint64_t queueNs = toNs(result.queueSeconds);
  queueLatencySumNs_.fetch_add(queueNs, std::memory_order_relaxed);
  atomicMax(queueLatencyMaxNs_, queueNs);
  execSumNs_.fetch_add(toNs(result.runSeconds), std::memory_order_relaxed);
  queueLatencyHist_.observe(result.queueSeconds);
  // Execution/degradation distributions cover only jobs that consumed
  // worker time — cache hits and coalesced duplicates would flood the low
  // buckets with zeros.
  if (!result.fromCache && !result.coalesced && result.worker >= 0) {
    execHist_.observe(result.runSeconds);
    degradationPerJobHist_.observe(
        static_cast<double>(result.stats.degradationEvents));
  }
  degradationEvents_.fetch_add(result.stats.degradationEvents,
                               std::memory_order_relaxed);
  pressureFlushes_.fetch_add(result.stats.pressureFlushes,
                             std::memory_order_relaxed);
  sequentialFallbackOps_.fetch_add(result.stats.sequentialFallbackOps,
                                   std::memory_order_relaxed);
  pressureApproximations_.fetch_add(result.stats.pressureApproximations,
                                    std::memory_order_relaxed);
  resourceRecoveries_.fetch_add(result.stats.resourceRecoveries,
                                std::memory_order_relaxed);
  pipelinedBlocks_.fetch_add(result.stats.pipelinedBlocks,
                             std::memory_order_relaxed);
  pipelineStalls_.fetch_add(result.stats.pipelineStalls,
                            std::memory_order_relaxed);
  pipelineBowOuts_.fetch_add(result.stats.pipelineBowOuts,
                             std::memory_order_relaxed);
  pipelineSerialFallbackOps_.fetch_add(result.stats.serialFallbackOps,
                                       std::memory_order_relaxed);
}

void SimulationService::shutdown(bool drain) {
  std::vector<std::shared_ptr<JobRecord>> orphans;
  {
    const std::lock_guard<std::mutex> lock(queueMutex_);
    stopping_ = true;
    if (!drain) {
      for (auto& queue : queues_) {
        for (auto& rec : queue) {
          if (rec->cacheable) {
            const auto it = inflight_.find(rec->key);
            if (it != inflight_.end() && it->second == rec) {
              inflight_.erase(it);
            }
          }
          orphans.push_back(std::move(rec));
        }
        queue.clear();
      }
      queueDepth_ = 0;
      // Backoff-parked retries are as unstarted as queued jobs: cancel
      // them too instead of letting workers run one last attempt.
      for (auto& [due, rec] : delayed_) {
        if (rec->cacheable) {
          const auto it = inflight_.find(rec->key);
          if (it != inflight_.end() && it->second == rec) {
            inflight_.erase(it);
          }
        }
        orphans.push_back(std::move(rec));
      }
      delayed_.clear();
    }
  }
  for (const auto& rec : orphans) {
    std::vector<std::shared_ptr<JobRecord>> followers;
    {
      const std::lock_guard<std::mutex> lock(queueMutex_);
      followers = std::move(rec->followers);
      rec->followers.clear();
    }
    JobResult r;
    r.status = JobStatus::Cancelled;
    r.error = "service shut down before execution";
    r.queueSeconds = secondsSince(rec->submitted);
    for (const auto& follower : followers) {
      JobResult fr = r;
      fr.coalesced = true;
      fr.queueSeconds = secondsSince(follower->submitted);
      publish(follower, std::move(fr));
    }
    publish(rec, std::move(r));
  }
  workAvailable_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  if (spill_ && !spillSnapshotDone_) {
    // All workers are joined: the cache is final. One atomic snapshot,
    // then the journal is truncated (its records are all in the snapshot).
    spillSnapshotDone_ = spill_->snapshot(cache_.snapshotEntries());
  }
}

ServiceStats SimulationService::stats() const {
  ServiceStats s;
  s.workers = workers_.size();
  s.elapsedSeconds = secondsSince(started_);
  {
    const std::lock_guard<std::mutex> lock(queueMutex_);
    s.queueDepth = queueDepth_;
  }
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.simulationsRun = simulationsRun_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cached = cachedAnswers_.load(std::memory_order_relaxed);
  s.timedOut = timedOut_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.resourceExhausted = resourceExhausted_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  const std::uint64_t finished = s.completed + s.cached + s.timedOut +
                                 s.expired + s.cancelled +
                                 s.resourceExhausted + s.failed;
  if (finished > 0) {
    s.queueLatencyMeanSeconds =
        static_cast<double>(queueLatencySumNs_.load(
            std::memory_order_relaxed)) /
        1e9 / static_cast<double>(finished);
  }
  s.queueLatencyMaxSeconds =
      static_cast<double>(queueLatencyMaxNs_.load(std::memory_order_relaxed)) /
      1e9;
  s.execSecondsTotal =
      static_cast<double>(execSumNs_.load(std::memory_order_relaxed)) / 1e9;
  s.jobsPerSecond = s.elapsedSeconds > 0.0
                        ? static_cast<double>(finished) / s.elapsedSeconds
                        : 0.0;
  s.queueLatencyHistogram = queueLatencyHist_.snapshot();
  s.queueLatencyP50Seconds = s.queueLatencyHistogram.p50;
  s.queueLatencyP95Seconds = s.queueLatencyHistogram.p95;
  s.queueLatencyP99Seconds = s.queueLatencyHistogram.p99;
  s.execHistogram = execHist_.snapshot();
  s.execP50Seconds = s.execHistogram.p50;
  s.execP95Seconds = s.execHistogram.p95;
  s.execP99Seconds = s.execHistogram.p99;
  s.degradationPerJobHistogram = degradationPerJobHist_.snapshot();
  s.cacheBypassed = cacheBypassed_.load(std::memory_order_relaxed);
  s.cache = cache_.counters();
  if (blockCache_) {
    s.blockCache = blockCache_->counters();
  }
  if (spill_) {
    s.spill = spill_->counters();
  }
  s.retriesScheduled = retriesScheduled_.load(std::memory_order_relaxed);
  s.resumedAttempts = resumedAttempts_.load(std::memory_order_relaxed);
  s.restartedAttempts = restartedAttempts_.load(std::memory_order_relaxed);
  s.backoffSecondsTotal =
      static_cast<double>(backoffNs_.load(std::memory_order_relaxed)) / 1e9;
  s.checkpointsTaken = checkpointsTaken_.load(std::memory_order_relaxed);
  s.degradationEvents = degradationEvents_.load(std::memory_order_relaxed);
  s.pressureFlushes = pressureFlushes_.load(std::memory_order_relaxed);
  s.sequentialFallbackOps =
      sequentialFallbackOps_.load(std::memory_order_relaxed);
  s.pressureApproximations =
      pressureApproximations_.load(std::memory_order_relaxed);
  s.resourceRecoveries = resourceRecoveries_.load(std::memory_order_relaxed);
  s.pipelinedBlocks = pipelinedBlocks_.load(std::memory_order_relaxed);
  s.pipelineStalls = pipelineStalls_.load(std::memory_order_relaxed);
  s.pipelineBowOuts = pipelineBowOuts_.load(std::memory_order_relaxed);
  s.pipelineSerialFallbackOps =
      pipelineSerialFallbackOps_.load(std::memory_order_relaxed);
  s.perWorkerJobs.reserve(perWorkerJobs_.size());
  for (const auto& counter : perWorkerJobs_) {
    s.perWorkerJobs.push_back(counter->load(std::memory_order_relaxed));
  }
  return s;
}

namespace {

std::uint64_t finishedCount(const ServiceStats& s) {
  return s.completed + s.cached + s.timedOut + s.expired + s.cancelled +
         s.resourceExhausted + s.failed;
}

}  // namespace

void mergeStats(ServiceStats& into, const ServiceStats& shard) {
  // Weighted pieces first, while `into` still holds its pre-merge totals.
  const std::uint64_t finishedA = finishedCount(into);
  const std::uint64_t finishedB = finishedCount(shard);
  if (finishedA + finishedB > 0) {
    into.queueLatencyMeanSeconds =
        (into.queueLatencyMeanSeconds * static_cast<double>(finishedA) +
         shard.queueLatencyMeanSeconds * static_cast<double>(finishedB)) /
        static_cast<double>(finishedA + finishedB);
  }

  into.workers += shard.workers;
  into.elapsedSeconds = std::max(into.elapsedSeconds, shard.elapsedSeconds);
  into.queueDepth += shard.queueDepth;

  into.submitted += shard.submitted;
  into.rejected += shard.rejected;
  into.coalesced += shard.coalesced;
  into.simulationsRun += shard.simulationsRun;
  into.completed += shard.completed;
  into.cached += shard.cached;
  into.timedOut += shard.timedOut;
  into.expired += shard.expired;
  into.cancelled += shard.cancelled;
  into.resourceExhausted += shard.resourceExhausted;
  into.failed += shard.failed;

  into.queueLatencyMaxSeconds =
      std::max(into.queueLatencyMaxSeconds, shard.queueLatencyMaxSeconds);
  into.execSecondsTotal += shard.execSecondsTotal;
  into.jobsPerSecond =
      into.elapsedSeconds > 0.0
          ? static_cast<double>(finishedCount(into)) / into.elapsedSeconds
          : 0.0;

  into.queueLatencyHistogram = obs::mergeHistogramSnapshots(
      into.queueLatencyHistogram, shard.queueLatencyHistogram);
  into.execHistogram =
      obs::mergeHistogramSnapshots(into.execHistogram, shard.execHistogram);
  into.degradationPerJobHistogram = obs::mergeHistogramSnapshots(
      into.degradationPerJobHistogram, shard.degradationPerJobHistogram);
  into.queueLatencyP50Seconds = into.queueLatencyHistogram.p50;
  into.queueLatencyP95Seconds = into.queueLatencyHistogram.p95;
  into.queueLatencyP99Seconds = into.queueLatencyHistogram.p99;
  into.execP50Seconds = into.execHistogram.p50;
  into.execP95Seconds = into.execHistogram.p95;
  into.execP99Seconds = into.execHistogram.p99;

  into.cacheBypassed += shard.cacheBypassed;
  into.cache.hits += shard.cache.hits;
  into.cache.misses += shard.cache.misses;
  into.cache.insertions += shard.cache.insertions;
  into.cache.evictions += shard.cache.evictions;
  into.cache.entries += shard.cache.entries;
  into.blockCache.hits += shard.blockCache.hits;
  into.blockCache.misses += shard.blockCache.misses;
  into.blockCache.insertions += shard.blockCache.insertions;
  into.blockCache.evictions += shard.blockCache.evictions;
  into.blockCache.entries += shard.blockCache.entries;
  into.blockCache.sharedNodes += shard.blockCache.sharedNodes;
  into.spill.appended += shard.spill.appended;
  into.spill.loaded += shard.spill.loaded;
  into.spill.corruptSkipped += shard.spill.corruptSkipped;
  into.spill.snapshots += shard.spill.snapshots;

  into.retriesScheduled += shard.retriesScheduled;
  into.resumedAttempts += shard.resumedAttempts;
  into.restartedAttempts += shard.restartedAttempts;
  into.backoffSecondsTotal += shard.backoffSecondsTotal;
  into.checkpointsTaken += shard.checkpointsTaken;

  into.degradationEvents += shard.degradationEvents;
  into.pressureFlushes += shard.pressureFlushes;
  into.sequentialFallbackOps += shard.sequentialFallbackOps;
  into.pressureApproximations += shard.pressureApproximations;
  into.resourceRecoveries += shard.resourceRecoveries;
  into.pipelinedBlocks += shard.pipelinedBlocks;
  into.pipelineStalls += shard.pipelineStalls;
  into.pipelineBowOuts += shard.pipelineBowOuts;
  into.pipelineSerialFallbackOps += shard.pipelineSerialFallbackOps;

  into.perWorkerJobs.insert(into.perWorkerJobs.end(),
                            shard.perWorkerJobs.begin(),
                            shard.perWorkerJobs.end());
}

std::string ServiceStats::toJson() const {
  std::ostringstream os;
  os << "{";
  os << "\"workers\": " << workers;
  os << ", \"elapsed_seconds\": " << elapsedSeconds;
  os << ", \"queue_depth\": " << queueDepth;
  os << ", \"submitted\": " << submitted;
  os << ", \"rejected\": " << rejected;
  os << ", \"coalesced\": " << coalesced;
  os << ", \"simulations_run\": " << simulationsRun;
  os << ", \"completed\": " << completed;
  os << ", \"cached\": " << cached;
  os << ", \"timed_out\": " << timedOut;
  os << ", \"expired\": " << expired;
  os << ", \"cancelled\": " << cancelled;
  os << ", \"resource_exhausted\": " << resourceExhausted;
  os << ", \"failed\": " << failed;
  os << ", \"jobs_per_second\": " << jobsPerSecond;
  os << ", \"queue_latency_mean_seconds\": " << queueLatencyMeanSeconds;
  os << ", \"queue_latency_max_seconds\": " << queueLatencyMaxSeconds;
  os << ", \"queue_latency_p50_seconds\": " << queueLatencyP50Seconds;
  os << ", \"queue_latency_p95_seconds\": " << queueLatencyP95Seconds;
  os << ", \"queue_latency_p99_seconds\": " << queueLatencyP99Seconds;
  os << ", \"exec_seconds_total\": " << execSecondsTotal;
  os << ", \"exec_p50_seconds\": " << execP50Seconds;
  os << ", \"exec_p95_seconds\": " << execP95Seconds;
  os << ", \"exec_p99_seconds\": " << execP99Seconds;
  os << ", \"queue_latency_histogram\": " << queueLatencyHistogram.toJson();
  os << ", \"exec_histogram\": " << execHistogram.toJson();
  os << ", \"degradation_per_job_histogram\": "
     << degradationPerJobHistogram.toJson();
  os << ", \"cache\": {\"hits\": " << cache.hits
     << ", \"misses\": " << cache.misses
     << ", \"insertions\": " << cache.insertions
     << ", \"evictions\": " << cache.evictions
     << ", \"entries\": " << cache.entries
     << ", \"bypassed\": " << cacheBypassed << "}";
  os << ", \"block_cache\": {\"hits\": " << blockCache.hits
     << ", \"misses\": " << blockCache.misses
     << ", \"insertions\": " << blockCache.insertions
     << ", \"evictions\": " << blockCache.evictions
     << ", \"entries\": " << blockCache.entries
     << ", \"shared_nodes\": " << blockCache.sharedNodes << "}";
  os << ", \"degradation\": {\"events\": " << degradationEvents
     << ", \"pressure_flushes\": " << pressureFlushes
     << ", \"sequential_fallback_ops\": " << sequentialFallbackOps
     << ", \"pressure_approximations\": " << pressureApproximations
     << ", \"resource_recoveries\": " << resourceRecoveries << "}";
  os << ", \"pipeline\": {\"blocks\": " << pipelinedBlocks
     << ", \"stalls\": " << pipelineStalls
     << ", \"bow_outs\": " << pipelineBowOuts
     << ", \"serial_fallback_ops\": " << pipelineSerialFallbackOps << "}";
  os << ", \"retry\": {\"scheduled\": " << retriesScheduled
     << ", \"resumed_attempts\": " << resumedAttempts
     << ", \"restarted_attempts\": " << restartedAttempts
     << ", \"backoff_seconds_total\": " << backoffSecondsTotal
     << ", \"checkpoints_taken\": " << checkpointsTaken << "}";
  os << ", \"spill\": {\"appended\": " << spill.appended
     << ", \"loaded\": " << spill.loaded
     << ", \"corrupt_skipped\": " << spill.corruptSkipped
     << ", \"snapshots\": " << spill.snapshots << "}";
  os << ", \"per_worker_jobs\": [";
  for (std::size_t i = 0; i < perWorkerJobs.size(); ++i) {
    os << (i > 0 ? ", " : "") << perWorkerJobs[i];
  }
  os << "]}";
  return os.str();
}

}  // namespace ddsim::serve
