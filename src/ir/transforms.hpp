/// \file transforms.hpp
/// \brief Circuit transformations.
///
/// `detectRepetitions` is an enabling extension for the paper's
/// *DD-repeating* strategy (Section IV-B): the strategy needs to know which
/// sub-sequences repeat, which is obvious when the circuit is generated
/// programmatically (Grover iterations) but lost when a circuit arrives as
/// a flat gate list (e.g. parsed from OpenQASM). This pass recovers maximal
/// adjacent repetitions and folds them into CompoundOperations, after which
/// the simulator can exploit them without any user annotation.

#pragma once

#include <cstddef>

#include "ir/circuit.hpp"

namespace ddsim::ir {

struct RepetitionOptions {
  /// Only fold runs of at least this many repetitions.
  std::size_t minRepetitions = 2;
  /// Only consider block bodies of at most this many operations (bounds the
  /// quadratic search window).
  std::size_t maxPeriod = 256;
  /// Require the folded block to span at least this many operations in
  /// total (period * repetitions), so trivial X-X pairs are left alone.
  std::size_t minTotalOps = 4;
};

/// Fold maximal adjacent repeated sub-sequences of unitary operations into
/// CompoundOperations. The result is semantically identical to the input
/// (flattening it yields the original operation sequence). Measurements,
/// resets, barriers and classically controlled gates act as boundaries.
[[nodiscard]] Circuit detectRepetitions(const Circuit& circuit,
                                        const RepetitionOptions& options = {});

/// Parallel circuit depth: the length of the longest chain of operations
/// that touch overlapping qubits (barriers synchronize all qubits;
/// compound blocks are flattened).
[[nodiscard]] std::size_t circuitDepth(const Circuit& circuit);

}  // namespace ddsim::ir
