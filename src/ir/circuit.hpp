/// \file circuit.hpp
/// \brief Quantum circuit container with convenience emitters.
///
/// A Circuit owns an ordered sequence of operations over a fixed number of
/// qubits and classical bits. The emitter helpers (x(), h(), cx(), mcz(),
/// cphase(), ...) make the algorithm generators in algo/ read like the
/// circuit diagrams in the paper.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/operation.hpp"

namespace ddsim::ir {

class Circuit {
 public:
  explicit Circuit(std::size_t numQubits, std::size_t numClbits = 0,
                   std::string name = "");

  Circuit(Circuit&&) noexcept = default;
  Circuit& operator=(Circuit&&) noexcept = default;
  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;

  /// Deep copy (operations are cloned).
  [[nodiscard]] Circuit clone() const;

  [[nodiscard]] std::size_t numQubits() const noexcept { return numQubits_; }
  [[nodiscard]] std::size_t numClbits() const noexcept { return numClbits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::vector<std::unique_ptr<Operation>>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] std::size_t numOps() const noexcept { return ops_.size(); }
  /// Elementary unitary gate count with compound blocks flattened.
  [[nodiscard]] std::size_t flatGateCount() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

  /// Append a pre-built operation (validates qubit indices).
  void append(std::unique_ptr<Operation> op);

  // ----------------------------------------------------------- gate emitters
  void gate(GateType type, Qubit target, Controls controls = {},
            std::vector<double> params = {});

  void i(Qubit q) { gate(GateType::I, q); }
  void x(Qubit q) { gate(GateType::X, q); }
  void y(Qubit q) { gate(GateType::Y, q); }
  void z(Qubit q) { gate(GateType::Z, q); }
  void h(Qubit q) { gate(GateType::H, q); }
  void s(Qubit q) { gate(GateType::S, q); }
  void sdg(Qubit q) { gate(GateType::Sdg, q); }
  void t(Qubit q) { gate(GateType::T, q); }
  void tdg(Qubit q) { gate(GateType::Tdg, q); }
  void sx(Qubit q) { gate(GateType::SX, q); }
  void sy(Qubit q) { gate(GateType::SY, q); }

  void rx(double theta, Qubit q) { gate(GateType::RX, q, {}, {theta}); }
  void ry(double theta, Qubit q) { gate(GateType::RY, q, {}, {theta}); }
  void rz(double theta, Qubit q) { gate(GateType::RZ, q, {}, {theta}); }
  void phase(double theta, Qubit q) { gate(GateType::Phase, q, {}, {theta}); }

  void cx(Qubit control, Qubit target) {
    gate(GateType::X, target, {Control{control}});
  }
  void ccx(Qubit c0, Qubit c1, Qubit target) {
    gate(GateType::X, target, {Control{c0}, Control{c1}});
  }
  void mcx(Controls controls, Qubit target) {
    gate(GateType::X, target, std::move(controls));
  }
  void cz(Qubit control, Qubit target) {
    gate(GateType::Z, target, {Control{control}});
  }
  void mcz(Controls controls, Qubit target) {
    gate(GateType::Z, target, std::move(controls));
  }
  void cphase(double theta, Qubit control, Qubit target) {
    gate(GateType::Phase, target, {Control{control}}, {theta});
  }
  void mcphase(double theta, Controls controls, Qubit target) {
    gate(GateType::Phase, target, std::move(controls), {theta});
  }

  void swap(Qubit a, Qubit b, Controls controls = {});
  void cswap(Qubit control, Qubit a, Qubit b) {
    swap(a, b, {Control{control}});
  }

  // --------------------------------------------------------- non-unitary ops
  void measure(Qubit q, std::size_t clbit);
  /// Measure every qubit into the classical bit of the same index.
  void measureAll();
  void reset(Qubit q);
  void barrier();

  void classicControlled(GateType type, Qubit target, Controls controls,
                         std::vector<double> params, std::size_t clbit,
                         bool expectedValue = true);

  void oracle(std::string name, std::size_t numTargets, OracleFunction fn,
              Controls controls = {});

  /// Append the body of \p block as a CompoundOperation repeated \p reps
  /// times (the *DD-repeating* unit). The block must not be wider than this
  /// circuit.
  void appendRepeated(Circuit block, std::size_t reps, std::string label = "");

  /// Append all operations of \p other (cloned), e.g. to stitch sub-circuits.
  void appendCircuit(const Circuit& other);

  /// Flatten: expand all compound blocks into a plain operation sequence.
  [[nodiscard]] Circuit flattened() const;

  /// The inverse circuit: operations reversed, each gate inverted. Only
  /// defined for purely unitary circuits (standard gates, compound blocks,
  /// barriers); other operation kinds throw std::invalid_argument.
  [[nodiscard]] Circuit inverted() const;

  /// Multi-line human-readable listing.
  [[nodiscard]] std::string toString() const;

 private:
  void validate(const Operation& op) const;

  std::size_t numQubits_;
  std::size_t numClbits_;
  std::string name_;
  std::vector<std::unique_ptr<Operation>> ops_;
};

}  // namespace ddsim::ir
