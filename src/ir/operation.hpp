/// \file operation.hpp
/// \brief Circuit operations: standard (controlled) gates, measurements,
///        resets, barriers, repeated compound blocks and oracle operations.
///
/// Two of the operation kinds exist specifically for the paper's
/// knowledge-based strategies (Section IV-B):
///  * CompoundOperation marks a sub-circuit repeated r times (e.g. a Grover
///    iteration). The *DD-repeating* strategy combines the block into a
///    single matrix DD once and re-applies it, without any further
///    matrix-matrix multiplications.
///  * OracleOperation carries the Boolean functionality of an oracle as a
///    classical bijection instead of elementary gates. The *DD-construct*
///    strategy turns it into a permutation-matrix DD directly.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dd/package.hpp"
#include "ir/gate.hpp"

namespace ddsim::ir {

using dd::Control;
using dd::Controls;
using dd::Qubit;

enum class OpKind {
  Standard,
  Measure,
  Reset,
  Barrier,
  Compound,
  ClassicControlled,
  Oracle,
};

class Operation {
 public:
  Operation() = default;
  Operation(const Operation&) = default;
  Operation& operator=(const Operation&) = default;
  virtual ~Operation() = default;

  [[nodiscard]] virtual OpKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<Operation> clone() const = 0;
  [[nodiscard]] virtual std::string toString() const = 0;
  /// Number of elementary unitary gates after flattening compound blocks
  /// (Swap counts as one; measurements/resets/barriers count as zero).
  [[nodiscard]] virtual std::size_t flatGateCount() const noexcept { return 1; }
  /// Largest qubit index touched (-1 if none).
  [[nodiscard]] virtual Qubit maxQubit() const noexcept = 0;
};

/// A gate from the elementary set, on one target (two for Swap), with an
/// arbitrary set of positive/negative controls.
class StandardOperation final : public Operation {
 public:
  StandardOperation(GateType type, std::vector<Qubit> targets,
                    Controls controls = {}, std::vector<double> params = {});

  [[nodiscard]] OpKind kind() const noexcept override { return OpKind::Standard; }
  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<StandardOperation>(*this);
  }
  [[nodiscard]] std::string toString() const override;
  [[nodiscard]] Qubit maxQubit() const noexcept override;

  [[nodiscard]] GateType type() const noexcept { return type_; }
  [[nodiscard]] const std::vector<Qubit>& targets() const noexcept { return targets_; }
  [[nodiscard]] const Controls& controls() const noexcept { return controls_; }
  [[nodiscard]] const std::vector<double>& params() const noexcept { return params_; }
  /// The 2x2 matrix for single-target gates.
  [[nodiscard]] dd::GateMatrix matrix() const;
  /// A StandardOperation realizing the inverse gate (same targets/controls).
  [[nodiscard]] StandardOperation inverse() const;

 private:
  GateType type_;
  std::vector<Qubit> targets_;
  Controls controls_;
  std::vector<double> params_;
};

class MeasureOperation final : public Operation {
 public:
  MeasureOperation(Qubit qubit, std::size_t clbit) : qubit_(qubit), clbit_(clbit) {}

  [[nodiscard]] OpKind kind() const noexcept override { return OpKind::Measure; }
  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<MeasureOperation>(*this);
  }
  [[nodiscard]] std::string toString() const override;
  [[nodiscard]] std::size_t flatGateCount() const noexcept override { return 0; }
  [[nodiscard]] Qubit maxQubit() const noexcept override { return qubit_; }

  [[nodiscard]] Qubit qubit() const noexcept { return qubit_; }
  [[nodiscard]] std::size_t clbit() const noexcept { return clbit_; }

 private:
  Qubit qubit_;
  std::size_t clbit_;
};

/// Measure-and-restore-to-|0>: measurement followed by a conditional X.
class ResetOperation final : public Operation {
 public:
  explicit ResetOperation(Qubit qubit) : qubit_(qubit) {}

  [[nodiscard]] OpKind kind() const noexcept override { return OpKind::Reset; }
  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<ResetOperation>(*this);
  }
  [[nodiscard]] std::string toString() const override;
  [[nodiscard]] std::size_t flatGateCount() const noexcept override { return 0; }
  [[nodiscard]] Qubit maxQubit() const noexcept override { return qubit_; }

  [[nodiscard]] Qubit qubit() const noexcept { return qubit_; }

 private:
  Qubit qubit_;
};

/// Scheduling fence: strategies flush any accumulated operation product here.
class BarrierOperation final : public Operation {
 public:
  [[nodiscard]] OpKind kind() const noexcept override { return OpKind::Barrier; }
  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<BarrierOperation>(*this);
  }
  [[nodiscard]] std::string toString() const override { return "barrier"; }
  [[nodiscard]] std::size_t flatGateCount() const noexcept override { return 0; }
  [[nodiscard]] Qubit maxQubit() const noexcept override { return -1; }
};

/// A sub-circuit repeated `repetitions` times (Grover iterations, trotter
/// steps, ...). Simulators may inline it or exploit the repetition.
class CompoundOperation final : public Operation {
 public:
  CompoundOperation(std::vector<std::unique_ptr<Operation>> body,
                    std::size_t repetitions, std::string label = "");
  CompoundOperation(const CompoundOperation& other);
  CompoundOperation& operator=(const CompoundOperation& other);

  [[nodiscard]] OpKind kind() const noexcept override { return OpKind::Compound; }
  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<CompoundOperation>(*this);
  }
  [[nodiscard]] std::string toString() const override;
  [[nodiscard]] std::size_t flatGateCount() const noexcept override;
  [[nodiscard]] Qubit maxQubit() const noexcept override;

  [[nodiscard]] const std::vector<std::unique_ptr<Operation>>& body() const noexcept {
    return body_;
  }
  [[nodiscard]] std::size_t repetitions() const noexcept { return repetitions_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

 private:
  std::vector<std::unique_ptr<Operation>> body_;
  std::size_t repetitions_;
  std::string label_;
};

/// A gate applied only if a previously measured classical bit has the
/// expected value (semiclassical inverse QFT in Beauregard's Shor circuit).
class ClassicControlledOperation final : public Operation {
 public:
  ClassicControlledOperation(StandardOperation op, std::size_t clbit,
                             bool expectedValue = true)
      : op_(std::move(op)), clbit_(clbit), expected_(expectedValue) {}

  [[nodiscard]] OpKind kind() const noexcept override {
    return OpKind::ClassicControlled;
  }
  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<ClassicControlledOperation>(*this);
  }
  [[nodiscard]] std::string toString() const override;
  [[nodiscard]] Qubit maxQubit() const noexcept override { return op_.maxQubit(); }

  [[nodiscard]] const StandardOperation& op() const noexcept { return op_; }
  [[nodiscard]] std::size_t clbit() const noexcept { return clbit_; }
  [[nodiscard]] bool expectedValue() const noexcept { return expected_; }

 private:
  StandardOperation op_;
  std::size_t clbit_;
  bool expected_;
};

/// Classical bijection on the packed value of `numTargets` qubits.
using OracleFunction = std::function<std::uint64_t(std::uint64_t)>;

/// An oracle: unitary defined by a classical bijection f over the low
/// `numTargets` qubits (targets are qubits 0 .. numTargets-1 by convention),
/// optionally controlled by qubits above.
///
/// |c>|x> -> |c>|f(x)> when all controls are satisfied, identity otherwise.
class OracleOperation final : public Operation {
 public:
  OracleOperation(std::string name, std::size_t numTargets, OracleFunction fn,
                  Controls controls = {});

  [[nodiscard]] OpKind kind() const noexcept override { return OpKind::Oracle; }
  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<OracleOperation>(*this);
  }
  [[nodiscard]] std::string toString() const override;
  [[nodiscard]] Qubit maxQubit() const noexcept override;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t numTargets() const noexcept { return numTargets_; }
  [[nodiscard]] const Controls& controls() const noexcept { return controls_; }
  [[nodiscard]] std::uint64_t apply(std::uint64_t x) const { return fn_(x); }
  /// Materialize the full permutation table (size 2^numTargets).
  [[nodiscard]] std::vector<std::uint64_t> permutationTable() const;

 private:
  std::string name_;
  std::size_t numTargets_;
  OracleFunction fn_;
  Controls controls_;
};

}  // namespace ddsim::ir
