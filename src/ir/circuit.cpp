#include "ir/circuit.hpp"

#include <sstream>
#include <stdexcept>

namespace ddsim::ir {

Circuit::Circuit(std::size_t numQubits, std::size_t numClbits, std::string name)
    : numQubits_(numQubits), numClbits_(numClbits), name_(std::move(name)) {
  if (numQubits == 0) {
    throw std::invalid_argument("Circuit: must have at least one qubit");
  }
}

Circuit Circuit::clone() const {
  Circuit copy(numQubits_, numClbits_, name_);
  copy.ops_.reserve(ops_.size());
  for (const auto& op : ops_) {
    copy.ops_.push_back(op->clone());
  }
  return copy;
}

std::size_t Circuit::flatGateCount() const noexcept {
  std::size_t n = 0;
  for (const auto& op : ops_) {
    n += op->flatGateCount();
  }
  return n;
}

void Circuit::validate(const Operation& op) const {
  if (op.maxQubit() >= static_cast<Qubit>(numQubits_)) {
    throw std::invalid_argument("Circuit: operation '" + op.toString() +
                                "' exceeds qubit count");
  }
  if (op.kind() == OpKind::Measure) {
    const auto& m = static_cast<const MeasureOperation&>(op);
    if (m.clbit() >= numClbits_) {
      throw std::invalid_argument("Circuit: classical bit out of range");
    }
  }
  if (op.kind() == OpKind::ClassicControlled) {
    const auto& c = static_cast<const ClassicControlledOperation&>(op);
    if (c.clbit() >= numClbits_) {
      throw std::invalid_argument("Circuit: classical bit out of range");
    }
  }
}

void Circuit::append(std::unique_ptr<Operation> op) {
  validate(*op);
  ops_.push_back(std::move(op));
}

void Circuit::gate(GateType type, Qubit target, Controls controls,
                   std::vector<double> params) {
  append(std::make_unique<StandardOperation>(type, std::vector<Qubit>{target},
                                             std::move(controls),
                                             std::move(params)));
}

void Circuit::swap(Qubit a, Qubit b, Controls controls) {
  append(std::make_unique<StandardOperation>(
      GateType::Swap, std::vector<Qubit>{a, b}, std::move(controls)));
}

void Circuit::measure(Qubit q, std::size_t clbit) {
  append(std::make_unique<MeasureOperation>(q, clbit));
}

void Circuit::measureAll() {
  if (numClbits_ < numQubits_) {
    throw std::logic_error("measureAll: not enough classical bits");
  }
  for (std::size_t q = 0; q < numQubits_; ++q) {
    measure(static_cast<Qubit>(q), q);
  }
}

void Circuit::reset(Qubit q) { append(std::make_unique<ResetOperation>(q)); }

void Circuit::barrier() { append(std::make_unique<BarrierOperation>()); }

void Circuit::classicControlled(GateType type, Qubit target, Controls controls,
                                std::vector<double> params, std::size_t clbit,
                                bool expectedValue) {
  StandardOperation inner(type, std::vector<Qubit>{target}, std::move(controls),
                          std::move(params));
  append(std::make_unique<ClassicControlledOperation>(std::move(inner), clbit,
                                                      expectedValue));
}

void Circuit::oracle(std::string name, std::size_t numTargets, OracleFunction fn,
                     Controls controls) {
  append(std::make_unique<OracleOperation>(std::move(name), numTargets,
                                           std::move(fn), std::move(controls)));
}

void Circuit::appendRepeated(Circuit block, std::size_t reps, std::string label) {
  if (block.numQubits() > numQubits_) {
    throw std::invalid_argument("appendRepeated: block wider than circuit");
  }
  append(std::make_unique<CompoundOperation>(std::move(block.ops_), reps,
                                             std::move(label)));
}

void Circuit::appendCircuit(const Circuit& other) {
  if (other.numQubits() > numQubits_ || other.numClbits() > numClbits_) {
    throw std::invalid_argument("appendCircuit: other circuit is wider");
  }
  for (const auto& op : other.ops_) {
    append(op->clone());
  }
}

namespace {
void flattenInto(const std::vector<std::unique_ptr<Operation>>& ops,
                 Circuit& out) {
  for (const auto& op : ops) {
    if (op->kind() == OpKind::Compound) {
      const auto& comp = static_cast<const CompoundOperation&>(*op);
      for (std::size_t r = 0; r < comp.repetitions(); ++r) {
        flattenInto(comp.body(), out);
      }
    } else {
      out.append(op->clone());
    }
  }
}
}  // namespace

Circuit Circuit::flattened() const {
  Circuit out(numQubits_, numClbits_, name_);
  flattenInto(ops_, out);
  return out;
}

namespace {
std::unique_ptr<Operation> invertOperation(const Operation& op) {
  switch (op.kind()) {
    case OpKind::Standard:
      return std::make_unique<StandardOperation>(
          static_cast<const StandardOperation&>(op).inverse());
    case OpKind::Barrier:
      return std::make_unique<BarrierOperation>();
    case OpKind::Compound: {
      const auto& comp = static_cast<const CompoundOperation&>(op);
      std::vector<std::unique_ptr<Operation>> body;
      body.reserve(comp.body().size());
      for (auto it = comp.body().rbegin(); it != comp.body().rend(); ++it) {
        body.push_back(invertOperation(**it));
      }
      return std::make_unique<CompoundOperation>(
          std::move(body), comp.repetitions(), comp.label() + "-inverse");
    }
    default:
      throw std::invalid_argument("inverted: non-unitary operation '" +
                                  op.toString() + "'");
  }
}
}  // namespace

Circuit Circuit::inverted() const {
  Circuit out(numQubits_, numClbits_,
              name_.empty() ? "inverse" : name_ + "-inverse");
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    out.append(invertOperation(**it));
  }
  return out;
}

std::string Circuit::toString() const {
  std::ostringstream ss;
  ss << "circuit '" << name_ << "': " << numQubits_ << " qubits, " << numClbits_
     << " clbits, " << ops_.size() << " ops (" << flatGateCount()
     << " elementary gates)\n";
  for (const auto& op : ops_) {
    ss << "  " << op->toString() << "\n";
  }
  return ss.str();
}

}  // namespace ddsim::ir
