#include "ir/hash.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "ir/gate.hpp"
#include "ir/operation.hpp"

namespace ddsim::ir {

namespace {

/// Per-kind tags so that e.g. a Measure and a Reset on the same qubit can
/// never alias. Values are part of the stable hash — never reorder.
enum : std::uint64_t {
  kTagStandard = 0x5354,  // "ST"
  kTagMeasure = 0x4d45,   // "ME"
  kTagReset = 0x5245,     // "RE"
  kTagBarrier = 0x4241,   // "BA"
  kTagClassic = 0x434c,   // "CL"
  kTagOracle = 0x4f52,    // "OR"
};

std::uint64_t hashControls(std::uint64_t h, Controls controls) {
  // StandardOperation sorts on construction; re-sort so hand-built
  // operations hash canonically too.
  std::sort(controls.begin(), controls.end());
  h = hashCombine(h, controls.size());
  for (const auto& c : controls) {
    h = hashCombine(h, static_cast<std::uint64_t>(c.qubit) << 1 |
                           (c.positive ? 1U : 0U));
  }
  return h;
}

std::uint64_t hashStandard(std::uint64_t h, const StandardOperation& op) {
  h = hashCombine(h, kTagStandard);
  h = hashCombine(h, static_cast<std::uint64_t>(op.type()));
  h = hashCombine(h, op.targets().size());
  for (const auto t : op.targets()) {
    h = hashCombine(h, static_cast<std::uint64_t>(t));
  }
  h = hashControls(h, op.controls());
  h = hashCombine(h, op.params().size());
  for (const double p : op.params()) {
    h = hashDouble(h, p);
  }
  return h;
}

std::uint64_t hashOracle(std::uint64_t h, const OracleOperation& op) {
  h = hashCombine(h, kTagOracle);
  h = hashCombine(h, op.numTargets());
  h = hashControls(h, op.controls());
  for (const char ch : op.name()) {
    h = hashCombine(h, static_cast<std::uint64_t>(static_cast<unsigned char>(ch)));
  }
  // The functionality is an opaque callable; its behaviour is what must be
  // keyed. Exhaustive up to 2^10 points, deterministic stratified sampling
  // above (name + samples then disambiguate; documented caveat: two
  // same-named oracles differing only outside the probed points collide).
  const std::uint64_t domain = 1ULL << op.numTargets();
  if (op.numTargets() <= 10) {
    for (std::uint64_t x = 0; x < domain; ++x) {
      h = hashCombine(h, op.apply(x));
    }
  } else {
    const std::uint64_t samples = 256;
    const std::uint64_t stride = domain / samples;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const std::uint64_t x = i * stride + (i & 0xF);
      h = hashCombine(h, op.apply(x % domain));
    }
  }
  return h;
}

}  // namespace

std::uint64_t hashDouble(std::uint64_t h, double v) noexcept {
  if (v == 0.0) {
    v = 0.0;  // collapse -0.0
  }
  return hashCombine(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t contentHash(std::uint64_t h, const Operation& op) {
  switch (op.kind()) {
    case OpKind::Standard:
      return hashStandard(h, static_cast<const StandardOperation&>(op));
    case OpKind::Measure: {
      const auto& m = static_cast<const MeasureOperation&>(op);
      h = hashCombine(h, kTagMeasure);
      h = hashCombine(h, static_cast<std::uint64_t>(m.qubit()));
      return hashCombine(h, m.clbit());
    }
    case OpKind::Reset: {
      const auto& r = static_cast<const ResetOperation&>(op);
      h = hashCombine(h, kTagReset);
      return hashCombine(h, static_cast<std::uint64_t>(r.qubit()));
    }
    case OpKind::Barrier:
      // Barriers flush strategy accumulators — scheduling-relevant, so two
      // sources differing only in barriers get distinct keys (their stats
      // differ even though the final state does not).
      return hashCombine(h, kTagBarrier);
    case OpKind::Compound: {
      // Canonicalization: hash the flattened repetition, so folding a flat
      // gate list into a CompoundOperation does not change the key.
      const auto& comp = static_cast<const CompoundOperation&>(op);
      for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
        for (const auto& inner : comp.body()) {
          h = contentHash(h, *inner);
        }
      }
      return h;
    }
    case OpKind::ClassicControlled: {
      const auto& c = static_cast<const ClassicControlledOperation&>(op);
      h = hashCombine(h, kTagClassic);
      h = hashCombine(h, c.clbit());
      h = hashCombine(h, c.expectedValue() ? 1U : 0U);
      return hashStandard(h, c.op());
    }
    case OpKind::Oracle:
      return hashOracle(h, static_cast<const OracleOperation&>(op));
  }
  return h;
}

std::uint64_t contentHash(const Circuit& circuit) {
  std::uint64_t h = kHashSeed;
  h = hashCombine(h, circuit.numQubits());
  h = hashCombine(h, circuit.numClbits());
  for (const auto& op : circuit.ops()) {
    h = contentHash(h, *op);
  }
  return h;
}

}  // namespace ddsim::ir
