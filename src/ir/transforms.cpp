#include "ir/transforms.hpp"

#include <algorithm>
#include <vector>

namespace ddsim::ir {

namespace {

/// Cheap structural fingerprint used to compare operations for equality.
/// toString() encodes kind, gate type, parameters, targets and controls; two
/// operations with equal strings are interchangeable for repetition folding.
std::vector<std::string> fingerprints(
    const std::vector<std::unique_ptr<Operation>>& ops) {
  std::vector<std::string> fps;
  fps.reserve(ops.size());
  for (const auto& op : ops) {
    fps.push_back(op->toString());
  }
  return fps;
}

bool isFoldable(const Operation& op) {
  switch (op.kind()) {
    case OpKind::Standard:
    case OpKind::Oracle:
    case OpKind::Compound:
      return true;
    default:
      return false;  // measurement/reset/barrier/classic control: boundary
  }
}

}  // namespace

Circuit detectRepetitions(const Circuit& circuit,
                          const RepetitionOptions& options) {
  const auto& ops = circuit.ops();
  const auto fps = fingerprints(ops);

  Circuit out(circuit.numQubits(), circuit.numClbits(), circuit.name());
  std::size_t i = 0;
  while (i < ops.size()) {
    if (!isFoldable(*ops[i])) {
      out.append(ops[i]->clone());
      ++i;
      continue;
    }

    // Extent of the contiguous foldable window starting at i.
    std::size_t windowEnd = i;
    while (windowEnd < ops.size() && isFoldable(*ops[windowEnd])) {
      ++windowEnd;
    }

    // Greedy: at position i, find the (period, repetitions) pair with the
    // largest folded span; prefer smaller periods on ties (tighter loops).
    std::size_t bestPeriod = 0;
    std::size_t bestReps = 0;
    const std::size_t windowLen = windowEnd - i;
    const std::size_t maxPeriod = std::min(options.maxPeriod, windowLen / 2);
    for (std::size_t period = 1; period <= maxPeriod; ++period) {
      std::size_t reps = 1;
      while (i + (reps + 1) * period <= windowEnd) {
        bool match = true;
        for (std::size_t k = 0; k < period && match; ++k) {
          match = fps[i + reps * period + k] == fps[i + k];
        }
        if (!match) {
          break;
        }
        ++reps;
      }
      if (reps >= options.minRepetitions &&
          period * reps >= options.minTotalOps &&
          period * reps > bestPeriod * bestReps) {
        bestPeriod = period;
        bestReps = reps;
      }
    }

    if (bestReps == 0) {
      out.append(ops[i]->clone());
      ++i;
      continue;
    }

    std::vector<std::unique_ptr<Operation>> body;
    body.reserve(bestPeriod);
    for (std::size_t k = 0; k < bestPeriod; ++k) {
      body.push_back(ops[i + k]->clone());
    }
    out.append(std::make_unique<CompoundOperation>(std::move(body), bestReps,
                                                   "detected"));
    i += bestPeriod * bestReps;
  }
  return out;
}

std::size_t circuitDepth(const Circuit& circuit) {
  const Circuit flat = circuit.flattened();
  std::vector<std::size_t> level(circuit.numQubits(), 0);
  for (const auto& op : flat.ops()) {
    if (op->kind() == OpKind::Barrier) {
      const std::size_t sync = *std::max_element(level.begin(), level.end());
      std::fill(level.begin(), level.end(), sync);
      continue;
    }
    // Collect the qubits this operation touches.
    std::vector<Qubit> touched;
    if (op->kind() == OpKind::Standard ||
        op->kind() == OpKind::ClassicControlled) {
      const auto& s =
          op->kind() == OpKind::Standard
              ? static_cast<const StandardOperation&>(*op)
              : static_cast<const ClassicControlledOperation&>(*op).op();
      touched = s.targets();
      for (const auto& c : s.controls()) {
        touched.push_back(c.qubit);
      }
    } else if (op->kind() == OpKind::Oracle) {
      const auto& o = static_cast<const OracleOperation&>(*op);
      for (std::size_t q = 0; q < o.numTargets(); ++q) {
        touched.push_back(static_cast<Qubit>(q));
      }
      for (const auto& c : o.controls()) {
        touched.push_back(c.qubit);
      }
    } else {  // measure / reset
      touched.push_back(op->maxQubit());
    }
    std::size_t start = 0;
    for (const Qubit q : touched) {
      start = std::max(start, level[static_cast<std::size_t>(q)]);
    }
    for (const Qubit q : touched) {
      level[static_cast<std::size_t>(q)] = start + 1;
    }
  }
  return *std::max_element(level.begin(), level.end());
}

}  // namespace ddsim::ir
