#include "ir/operation.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ddsim::ir {

// ---------------------------------------------------------- StandardOperation

StandardOperation::StandardOperation(GateType type, std::vector<Qubit> targets,
                                     Controls controls, std::vector<double> params)
    : type_(type),
      targets_(std::move(targets)),
      controls_(std::move(controls)),
      params_(std::move(params)) {
  if (targets_.size() != gateNumTargets(type_)) {
    throw std::invalid_argument("StandardOperation: wrong number of targets for " +
                                gateName(type_));
  }
  if (params_.size() != gateNumParams(type_)) {
    throw std::invalid_argument("StandardOperation: wrong number of parameters for " +
                                gateName(type_));
  }
  for (const auto& c : controls_) {
    if (std::find(targets_.begin(), targets_.end(), c.qubit) != targets_.end()) {
      throw std::invalid_argument("StandardOperation: control equals target");
    }
  }
  std::sort(controls_.begin(), controls_.end());
}

dd::GateMatrix StandardOperation::matrix() const {
  return gateMatrix(type_, params_.empty() ? nullptr : params_.data());
}

StandardOperation StandardOperation::inverse() const {
  const InverseGate inv =
      gateInverse(type_, params_.empty() ? nullptr : params_.data());
  std::vector<double> invParams(gateNumParams(inv.type));
  for (std::size_t i = 0; i < invParams.size(); ++i) {
    invParams[i] = inv.params[i];
  }
  return {inv.type, targets_, controls_, std::move(invParams)};
}

Qubit StandardOperation::maxQubit() const noexcept {
  Qubit m = -1;
  for (const Qubit t : targets_) {
    m = std::max(m, t);
  }
  for (const auto& c : controls_) {
    m = std::max(m, c.qubit);
  }
  return m;
}

std::string StandardOperation::toString() const {
  std::ostringstream ss;
  ss << gateName(type_);
  if (!params_.empty()) {
    ss << "(";
    for (std::size_t i = 0; i < params_.size(); ++i) {
      ss << (i != 0 ? "," : "") << params_[i];
    }
    ss << ")";
  }
  ss << " ";
  bool first = true;
  for (const auto& c : controls_) {
    ss << (first ? "" : ", ") << (c.positive ? "c" : "!c") << "q" << c.qubit;
    first = false;
  }
  for (const Qubit t : targets_) {
    ss << (first ? "" : ", ") << "q" << t;
    first = false;
  }
  return ss.str();
}

// ----------------------------------------------------------- Measure / Reset

std::string MeasureOperation::toString() const {
  std::ostringstream ss;
  ss << "measure q" << qubit_ << " -> c" << clbit_;
  return ss.str();
}

std::string ResetOperation::toString() const {
  std::ostringstream ss;
  ss << "reset q" << qubit_;
  return ss.str();
}

// ---------------------------------------------------------- CompoundOperation

CompoundOperation::CompoundOperation(std::vector<std::unique_ptr<Operation>> body,
                                     std::size_t repetitions, std::string label)
    : body_(std::move(body)), repetitions_(repetitions), label_(std::move(label)) {
  if (repetitions_ == 0) {
    throw std::invalid_argument("CompoundOperation: zero repetitions");
  }
}

CompoundOperation::CompoundOperation(const CompoundOperation& other)
    : Operation(other), repetitions_(other.repetitions_), label_(other.label_) {
  body_.reserve(other.body_.size());
  for (const auto& op : other.body_) {
    body_.push_back(op->clone());
  }
}

CompoundOperation& CompoundOperation::operator=(const CompoundOperation& other) {
  if (this != &other) {
    repetitions_ = other.repetitions_;
    label_ = other.label_;
    body_.clear();
    body_.reserve(other.body_.size());
    for (const auto& op : other.body_) {
      body_.push_back(op->clone());
    }
  }
  return *this;
}

std::size_t CompoundOperation::flatGateCount() const noexcept {
  std::size_t inner = 0;
  for (const auto& op : body_) {
    inner += op->flatGateCount();
  }
  return inner * repetitions_;
}

Qubit CompoundOperation::maxQubit() const noexcept {
  Qubit m = -1;
  for (const auto& op : body_) {
    m = std::max(m, op->maxQubit());
  }
  return m;
}

std::string CompoundOperation::toString() const {
  std::ostringstream ss;
  ss << "repeat x" << repetitions_;
  if (!label_.empty()) {
    ss << " [" << label_ << "]";
  }
  ss << " { " << body_.size() << " ops }";
  return ss.str();
}

// ------------------------------------------------ ClassicControlledOperation

std::string ClassicControlledOperation::toString() const {
  std::ostringstream ss;
  ss << "if (c" << clbit_ << " == " << (expected_ ? 1 : 0) << ") "
     << op_.toString();
  return ss.str();
}

// ------------------------------------------------------------ OracleOperation

OracleOperation::OracleOperation(std::string name, std::size_t numTargets,
                                 OracleFunction fn, Controls controls)
    : name_(std::move(name)),
      numTargets_(numTargets),
      fn_(std::move(fn)),
      controls_(std::move(controls)) {
  if (numTargets_ == 0 || numTargets_ > 62) {
    throw std::invalid_argument("OracleOperation: bad target count");
  }
  for (const auto& c : controls_) {
    if (c.qubit < static_cast<Qubit>(numTargets_)) {
      throw std::invalid_argument(
          "OracleOperation: controls must lie above the target register");
    }
  }
  std::sort(controls_.begin(), controls_.end());
}

Qubit OracleOperation::maxQubit() const noexcept {
  Qubit m = static_cast<Qubit>(numTargets_) - 1;
  for (const auto& c : controls_) {
    m = std::max(m, c.qubit);
  }
  return m;
}

std::vector<std::uint64_t> OracleOperation::permutationTable() const {
  std::vector<std::uint64_t> table(1ULL << numTargets_);
  for (std::uint64_t x = 0; x < table.size(); ++x) {
    table[x] = fn_(x);
  }
  return table;
}

std::string OracleOperation::toString() const {
  std::ostringstream ss;
  ss << "oracle " << name_ << " on q0..q" << (numTargets_ - 1);
  for (const auto& c : controls_) {
    ss << (c.positive ? " cq" : " !cq") << c.qubit;
  }
  return ss.str();
}

}  // namespace ddsim::ir
