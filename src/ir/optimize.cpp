#include "ir/optimize.hpp"

#include <cmath>
#include <complex>
#include <memory>
#include <numbers>
#include <vector>

namespace ddsim::ir {

namespace {

constexpr double kEps = 1e-12;

using Cx = std::complex<double>;

std::array<Cx, 4> toStd(const dd::GateMatrix& m) {
  return {m[0].toStd(), m[1].toStd(), m[2].toStd(), m[3].toStd()};
}

/// All qubits an operation touches (targets + controls).
std::vector<Qubit> touchedQubits(const StandardOperation& op) {
  std::vector<Qubit> qs = op.targets();
  for (const auto& c : op.controls()) {
    qs.push_back(c.qubit);
  }
  return qs;
}

bool overlaps(const StandardOperation& a, const StandardOperation& b) {
  for (const Qubit qa : touchedQubits(a)) {
    for (const Qubit qb : touchedQubits(b)) {
      if (qa == qb) {
        return true;
      }
    }
  }
  return false;
}

bool sameOperands(const StandardOperation& a, const StandardOperation& b) {
  return a.targets() == b.targets() && a.controls() == b.controls();
}

/// 2x2 product check: does applying a then b realize the identity (up to
/// kEps, global phase included)?
bool productIsIdentity(const StandardOperation& a, const StandardOperation& b) {
  const auto ma = toStd(a.matrix());
  const auto mb = toStd(b.matrix());
  // b * a, row-major 2x2
  const Cx p00 = mb[0] * ma[0] + mb[1] * ma[2];
  const Cx p01 = mb[0] * ma[1] + mb[1] * ma[3];
  const Cx p10 = mb[2] * ma[0] + mb[3] * ma[2];
  const Cx p11 = mb[2] * ma[1] + mb[3] * ma[3];
  return std::abs(p00 - 1.0) < 1e-10 && std::abs(p01) < 1e-10 &&
         std::abs(p10) < 1e-10 && std::abs(p11 - 1.0) < 1e-10;
}

bool isIdentityGate(const StandardOperation& op) {
  if (op.type() == GateType::Swap) {
    return false;
  }
  if (op.type() == GateType::I) {
    return true;
  }
  const auto m = toStd(op.matrix());
  return std::abs(m[0] - 1.0) < kEps && std::abs(m[1]) < kEps &&
         std::abs(m[2]) < kEps && std::abs(m[3] - 1.0) < kEps;
}

bool isSingleQubitUncontrolled(const StandardOperation& op) {
  return op.type() != GateType::Swap && op.controls().empty();
}

/// One optimization sweep over a flat operation list. Returns true if
/// anything changed.
bool sweep(std::vector<std::unique_ptr<Operation>>& ops,
           const OptimizeOptions& options, OptimizeStats& stats) {
  bool changed = false;
  std::vector<bool> removed(ops.size(), false);

  const auto standard = [&](std::size_t i) -> const StandardOperation* {
    if (removed[i] || ops[i]->kind() != OpKind::Standard) {
      return nullptr;
    }
    return static_cast<const StandardOperation*>(ops[i].get());
  };

  // Pass 1: identity removal.
  if (options.removeIdentities) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (const auto* s = standard(i); s != nullptr && isIdentityGate(*s)) {
        removed[i] = true;
        ++stats.removedIdentities;
        changed = true;
      }
    }
  }

  // Pass 2: inverse-pair cancellation (commuting past disjoint operations).
  if (options.cancelInversePairs) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto* a = standard(i);
      if (a == nullptr) {
        continue;
      }
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (removed[j]) {
          continue;
        }
        if (ops[j]->kind() != OpKind::Standard) {
          break;  // measurements/barriers/compounds fence the search
        }
        const auto* b = standard(j);
        if (b == nullptr) {
          break;
        }
        if (sameOperands(*a, *b)) {
          const bool cancels = a->type() == GateType::Swap
                                   ? b->type() == GateType::Swap
                                   : productIsIdentity(*a, *b);
          if (cancels) {
            removed[i] = true;
            removed[j] = true;
            ++stats.cancelledPairs;
            changed = true;
          }
          break;  // same operands but no cancellation: blocked either way
        }
        if (overlaps(*a, *b)) {
          break;
        }
      }
    }
  }

  // Pass 3: single-qubit gate fusion.
  if (options.fuseSingleQubitGates) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto* first = standard(i);
      if (first == nullptr || !isSingleQubitUncontrolled(*first)) {
        continue;
      }
      const Qubit q = first->targets()[0];
      std::vector<std::size_t> run{i};
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (removed[j]) {
          continue;
        }
        if (ops[j]->kind() != OpKind::Standard) {
          break;
        }
        const auto* b = standard(j);
        if (b == nullptr) {
          break;
        }
        if (isSingleQubitUncontrolled(*b) && b->targets()[0] == q) {
          run.push_back(j);
          continue;
        }
        if (overlaps(*first, *b)) {
          break;
        }
      }
      if (run.size() < 2) {
        continue;
      }

      // Multiply the run (later gates on the left).
      std::array<Cx, 4> acc = toStd(
          static_cast<const StandardOperation*>(ops[run[0]].get())->matrix());
      for (std::size_t k = 1; k < run.size(); ++k) {
        const auto m = toStd(
            static_cast<const StandardOperation*>(ops[run[k]].get())->matrix());
        const std::array<Cx, 4> next = {
            m[0] * acc[0] + m[1] * acc[2], m[0] * acc[1] + m[1] * acc[3],
            m[2] * acc[0] + m[3] * acc[2], m[2] * acc[1] + m[3] * acc[3]};
        acc = next;
      }
      const dd::GateMatrix fusedMatrix = {
          dd::ComplexValue::fromStd(acc[0]), dd::ComplexValue::fromStd(acc[1]),
          dd::ComplexValue::fromStd(acc[2]), dd::ComplexValue::fromStd(acc[3])};
      const U3Decomposition dec = decomposeU3(fusedMatrix);

      stats.fusedGates += run.size();
      changed = true;
      // Replace the first op of the run with the fused gate; the rest go.
      ops[run[0]] = std::make_unique<StandardOperation>(
          GateType::U, std::vector<Qubit>{q}, Controls{},
          std::vector<double>{dec.theta, dec.phi, dec.lambda});
      for (std::size_t k = 1; k < run.size(); ++k) {
        removed[run[k]] = true;
      }
      if (std::abs(dec.alpha) > kEps) {
        // Global phase: re-use the last slot of the run for exactness.
        ops[run[1]] = std::make_unique<StandardOperation>(
            GateType::GPhase, std::vector<Qubit>{q}, Controls{},
            std::vector<double>{dec.alpha});
        removed[run[1]] = false;
        --stats.fusedGates;
      }
    }
  }

  if (changed) {
    std::vector<std::unique_ptr<Operation>> kept;
    kept.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!removed[i]) {
        kept.push_back(std::move(ops[i]));
      }
    }
    ops = std::move(kept);
  }
  return changed;
}

std::vector<std::unique_ptr<Operation>> optimizeOps(
    const std::vector<std::unique_ptr<Operation>>& in,
    const OptimizeOptions& options, OptimizeStats& stats) {
  std::vector<std::unique_ptr<Operation>> ops;
  ops.reserve(in.size());
  for (const auto& op : in) {
    if (op->kind() == OpKind::Compound) {
      const auto& comp = static_cast<const CompoundOperation&>(*op);
      auto body = optimizeOps(comp.body(), options, stats);
      if (!body.empty()) {
        ops.push_back(std::make_unique<CompoundOperation>(
            std::move(body), comp.repetitions(), comp.label()));
      }
    } else {
      ops.push_back(op->clone());
    }
  }

  for (int pass = 0; pass < 16; ++pass) {
    ++stats.passes;
    if (!sweep(ops, options, stats) || !options.iterateToFixpoint) {
      break;
    }
  }
  return ops;
}

}  // namespace

U3Decomposition decomposeU3(const dd::GateMatrix& matrix) {
  const auto m = toStd(matrix);
  U3Decomposition d;
  const double n00 = std::abs(m[0]);
  const double n10 = std::abs(m[2]);
  d.theta = 2.0 * std::atan2(n10, n00);
  if (n10 < kEps) {  // diagonal
    d.theta = 0.0;
    d.alpha = std::arg(m[0]);
    d.phi = 0.0;
    d.lambda = std::arg(m[3]) - d.alpha;
  } else if (n00 < kEps) {  // anti-diagonal
    d.theta = std::numbers::pi;
    d.alpha = 0.0;
    d.phi = std::arg(m[2]);
    d.lambda = std::arg(-m[1]);
  } else {
    d.alpha = std::arg(m[0]);
    d.phi = std::arg(m[2]) - d.alpha;
    d.lambda = std::arg(-m[1]) - d.alpha;
  }
  return d;
}

Circuit optimize(const Circuit& circuit, const OptimizeOptions& options,
                 OptimizeStats* stats) {
  OptimizeStats local;
  Circuit out(circuit.numQubits(), circuit.numClbits(), circuit.name());
  for (auto& op : optimizeOps(circuit.ops(), options, local)) {
    out.append(std::move(op));
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return out;
}

}  // namespace ddsim::ir
