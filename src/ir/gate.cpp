#include "ir/gate.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

namespace ddsim::ir {

using dd::ComplexValue;
using dd::GateMatrix;

std::size_t gateNumParams(GateType t) noexcept {
  switch (t) {
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::Phase:
    case GateType::GPhase:
      return 1;
    case GateType::U:
      return 3;
    default:
      return 0;
  }
}

std::size_t gateNumTargets(GateType t) noexcept {
  return t == GateType::Swap ? 2 : 1;
}

std::string gateName(GateType t) {
  switch (t) {
    case GateType::I: return "id";
    case GateType::X: return "x";
    case GateType::Y: return "y";
    case GateType::Z: return "z";
    case GateType::H: return "h";
    case GateType::S: return "s";
    case GateType::Sdg: return "sdg";
    case GateType::T: return "t";
    case GateType::Tdg: return "tdg";
    case GateType::SX: return "sx";
    case GateType::SXdg: return "sxdg";
    case GateType::SY: return "sy";
    case GateType::SYdg: return "sydg";
    case GateType::RX: return "rx";
    case GateType::RY: return "ry";
    case GateType::RZ: return "rz";
    case GateType::Phase: return "p";
    case GateType::GPhase: return "gphase";
    case GateType::U: return "u";
    case GateType::Swap: return "swap";
  }
  return "?";
}

std::optional<GateType> gateFromName(const std::string& name) {
  static const std::unordered_map<std::string, GateType> kMap = {
      {"id", GateType::I},     {"i", GateType::I},
      {"x", GateType::X},      {"y", GateType::Y},
      {"z", GateType::Z},      {"h", GateType::H},
      {"s", GateType::S},      {"sdg", GateType::Sdg},
      {"t", GateType::T},      {"tdg", GateType::Tdg},
      {"sx", GateType::SX},    {"sxdg", GateType::SXdg},
      {"sy", GateType::SY},    {"sydg", GateType::SYdg},
      {"rx", GateType::RX},    {"ry", GateType::RY},
      {"rz", GateType::RZ},    {"p", GateType::Phase},
      {"u1", GateType::Phase}, {"u3", GateType::U},
      {"u", GateType::U},      {"swap", GateType::Swap},
  };
  const auto it = kMap.find(name);
  if (it == kMap.end()) {
    return std::nullopt;
  }
  return it->second;
}

GateMatrix gateMatrix(GateType t, const double* params) {
  constexpr double kInvSqrt2 = std::numbers::sqrt2 / 2.0;
  switch (t) {
    case GateType::I:
      return {ComplexValue{1, 0}, {0, 0}, {0, 0}, {1, 0}};
    case GateType::X:
      return {ComplexValue{0, 0}, {1, 0}, {1, 0}, {0, 0}};
    case GateType::Y:
      return {ComplexValue{0, 0}, {0, -1}, {0, 1}, {0, 0}};
    case GateType::Z:
      return {ComplexValue{1, 0}, {0, 0}, {0, 0}, {-1, 0}};
    case GateType::H:
      return {ComplexValue{kInvSqrt2, 0}, {kInvSqrt2, 0}, {kInvSqrt2, 0},
              {-kInvSqrt2, 0}};
    case GateType::S:
      return {ComplexValue{1, 0}, {0, 0}, {0, 0}, {0, 1}};
    case GateType::Sdg:
      return {ComplexValue{1, 0}, {0, 0}, {0, 0}, {0, -1}};
    case GateType::T:
      return {ComplexValue{1, 0}, {0, 0}, {0, 0}, {kInvSqrt2, kInvSqrt2}};
    case GateType::Tdg:
      return {ComplexValue{1, 0}, {0, 0}, {0, 0}, {kInvSqrt2, -kInvSqrt2}};
    case GateType::SX:
      return {ComplexValue{0.5, 0.5}, {0.5, -0.5}, {0.5, -0.5}, {0.5, 0.5}};
    case GateType::SXdg:
      return {ComplexValue{0.5, -0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.5, -0.5}};
    case GateType::SY:
      return {ComplexValue{0.5, 0.5}, {-0.5, -0.5}, {0.5, 0.5}, {0.5, 0.5}};
    case GateType::SYdg:
      return {ComplexValue{0.5, -0.5}, {0.5, -0.5}, {-0.5, 0.5}, {0.5, -0.5}};
    case GateType::RX: {
      const double c = std::cos(params[0] / 2);
      const double s = std::sin(params[0] / 2);
      return {ComplexValue{c, 0}, {0, -s}, {0, -s}, {c, 0}};
    }
    case GateType::RY: {
      const double c = std::cos(params[0] / 2);
      const double s = std::sin(params[0] / 2);
      return {ComplexValue{c, 0}, {-s, 0}, {s, 0}, {c, 0}};
    }
    case GateType::RZ: {
      const double c = std::cos(params[0] / 2);
      const double s = std::sin(params[0] / 2);
      return {ComplexValue{c, -s}, {0, 0}, {0, 0}, {c, s}};
    }
    case GateType::Phase: {
      return {ComplexValue{1, 0},
              {0, 0},
              {0, 0},
              {std::cos(params[0]), std::sin(params[0])}};
    }
    case GateType::GPhase: {
      const ComplexValue w{std::cos(params[0]), std::sin(params[0])};
      return {w, {0, 0}, {0, 0}, w};
    }
    case GateType::U: {
      const double theta = params[0];
      const double phi = params[1];
      const double lambda = params[2];
      const double c = std::cos(theta / 2);
      const double s = std::sin(theta / 2);
      return {ComplexValue{c, 0},
              {-std::cos(lambda) * s, -std::sin(lambda) * s},
              {std::cos(phi) * s, std::sin(phi) * s},
              {std::cos(phi + lambda) * c, std::sin(phi + lambda) * c}};
    }
    case GateType::Swap:
      throw std::invalid_argument("gateMatrix: Swap has no single-qubit matrix");
  }
  throw std::invalid_argument("gateMatrix: unknown gate type");
}

InverseGate gateInverse(GateType t, const double* params) {
  switch (t) {
    case GateType::I:
    case GateType::X:
    case GateType::Y:
    case GateType::Z:
    case GateType::H:
    case GateType::Swap:
      return {t, {0, 0, 0}};
    case GateType::S:
      return {GateType::Sdg, {0, 0, 0}};
    case GateType::Sdg:
      return {GateType::S, {0, 0, 0}};
    case GateType::T:
      return {GateType::Tdg, {0, 0, 0}};
    case GateType::Tdg:
      return {GateType::T, {0, 0, 0}};
    case GateType::SX:
      return {GateType::SXdg, {0, 0, 0}};
    case GateType::SXdg:
      return {GateType::SX, {0, 0, 0}};
    case GateType::SY:
      return {GateType::SYdg, {0, 0, 0}};
    case GateType::SYdg:
      return {GateType::SY, {0, 0, 0}};
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::Phase:
    case GateType::GPhase:
      return {t, {-params[0], 0, 0}};
    case GateType::U:
      // U(theta, phi, lambda)^-1 = U(-theta, -lambda, -phi)
      return {t, {-params[0], -params[2], -params[1]}};
  }
  throw std::invalid_argument("gateInverse: unknown gate type");
}

}  // namespace ddsim::ir
