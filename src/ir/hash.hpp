/// \file hash.hpp
/// \brief Stable structural content hashing of circuits.
///
/// The serving layer answers duplicate submissions from a result cache, so
/// it needs a key that is (a) stable across process runs and re-parsed
/// copies of the same source, and (b) sensitive to anything that changes
/// the simulation outcome: gate structure, parameters, control polarities,
/// classical-bit wiring. `contentHash` provides that key by hashing a
/// *canonicalized* view of the operation stream:
///
///  * compound blocks are hashed as their flattened repetition, so a
///    circuit and its `flattened()` (or `detectRepetitions()`-folded)
///    form hash identically — the fold only changes scheduling, not the
///    computation;
///  * controls are hashed in sorted order (ir::StandardOperation already
///    canonicalizes them, the hash re-sorts defensively);
///  * the circuit name and other presentation-only attributes are ignored;
///  * floating-point parameters are hashed by bit pattern with -0.0
///    normalized to 0.0.
///
/// The hash is a 64-bit FNV-1a/SplitMix construction: deterministic,
/// platform-independent, and *not* cryptographic — the result cache stores
/// the full key triple and treats the hash as a bucket index, so a
/// collision costs a wasted lookup, never a wrong answer.

#pragma once

#include <cstdint>

#include "ir/circuit.hpp"

namespace ddsim::ir {

/// Seed/combine primitives, exposed so other layers (strategy-config
/// hashing in sim/, job keys in serve/) build on the same construction.
inline constexpr std::uint64_t kHashSeed = 0xcbf29ce484222325ULL;

/// SplitMix64 finalizer: mix one 64-bit word into a running hash.
[[nodiscard]] constexpr std::uint64_t hashCombine(std::uint64_t h,
                                                  std::uint64_t x) noexcept {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Hash a double by bit pattern, normalizing -0.0 to 0.0 so that
/// numerically identical parameters hash identically.
[[nodiscard]] std::uint64_t hashDouble(std::uint64_t h, double v) noexcept;

/// Structural content hash of a circuit (see file comment for what is and
/// is not part of the key). Oracle operations hash their permutation table
/// exhaustively up to 10 target qubits and by deterministic sampling above.
[[nodiscard]] std::uint64_t contentHash(const Circuit& circuit);

/// Content hash of a single operation (compound blocks flattened), using
/// \p h as the incoming state. Exposed for incremental/streaming use.
[[nodiscard]] std::uint64_t contentHash(std::uint64_t h, const Operation& op);

}  // namespace ddsim::ir
