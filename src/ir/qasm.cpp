#include "ir/qasm.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <numbers>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

namespace ddsim::ir {

namespace {

/// Hard caps keeping hostile or corrupted input from exhausting memory at
/// parse time: the DD package rejects anything above 62 qubits anyway, and
/// classical registers beyond 2^16 bits serve no simulatable purpose.
constexpr std::size_t kMaxQubits = 62;
constexpr std::size_t kMaxClbits = 1U << 16;
/// Parenthesis-nesting bound for parameter expressions — far above any real
/// circuit, low enough that deeply nested "((((..." input cannot overflow
/// the parser's recursion stack.
constexpr std::size_t kMaxExprDepth = 256;

// ------------------------------------------------- parameter expressions
// Grammar: expr := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)*
//          factor := ('-'|'+') factor | number | 'pi' | '(' expr ')'
class ExprParser {
 public:
  ExprParser(std::string_view text, std::size_t line) : text_(text), line_(line) {}

  double parse() {
    const double v = expr();
    skipSpace();
    if (pos_ != text_.size()) {
      throw QasmError("trailing characters in expression", line_);
    }
    return v;
  }

 private:
  double expr() {
    double v = term();
    for (;;) {
      skipSpace();
      if (consume('+')) {
        v += term();
      } else if (consume('-')) {
        v -= term();
      } else {
        return v;
      }
    }
  }

  double term() {
    double v = factor();
    for (;;) {
      skipSpace();
      if (consume('*')) {
        v *= factor();
      } else if (consume('/')) {
        v /= factor();
      } else {
        return v;
      }
    }
  }

  double factor() {
    // Every recursion step goes through factor(), so this single counter
    // bounds the whole parser against stack overflow from pathological
    // input like "((((((...1" or "------...1".
    if (++depth_ > kMaxExprDepth) {
      throw QasmError("expression nested too deeply", line_);
    }
    struct DepthGuard {
      std::size_t& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    skipSpace();
    if (consume('-')) {
      return -factor();
    }
    if (consume('+')) {
      return factor();
    }
    if (consume('(')) {
      const double v = expr();
      skipSpace();
      if (!consume(')')) {
        throw QasmError("expected ')'", line_);
      }
      return v;
    }
    if (pos_ + 1 < text_.size() && text_.compare(pos_, 2, "pi") == 0) {
      pos_ += 2;
      return std::numbers::pi;
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) {
      throw QasmError("expected number, 'pi' or '('", line_);
    }
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view text_;
  std::size_t line_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

struct Statement {
  std::string text;
  std::size_t line;
};

/// Strip comments, split on ';', remember originating line numbers.
std::vector<Statement> splitStatements(const std::string& source) {
  std::vector<Statement> stmts;
  std::string current;
  std::size_t line = 1;
  std::size_t stmtLine = 1;
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') {
        ++i;
      }
      --i;
      continue;
    }
    if (source[i] == '\n') {
      ++line;
      current.push_back(' ');
      continue;
    }
    if (source[i] == ';') {
      stmts.push_back({current, stmtLine});
      current.clear();
      stmtLine = line;
      continue;
    }
    if (current.empty() &&
        std::isspace(static_cast<unsigned char>(source[i])) != 0) {
      stmtLine = line;
      continue;
    }
    current.push_back(source[i]);
  }
  // A trailing statement without ';' is tolerated if blank.
  std::string trimmed = current;
  while (!trimmed.empty() &&
         std::isspace(static_cast<unsigned char>(trimmed.back())) != 0) {
    trimmed.pop_back();
  }
  if (!trimmed.empty()) {
    throw QasmError("missing ';' after '" + trimmed + "'", stmtLine);
  }
  return stmts;
}

std::string trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.erase(s.begin());
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.pop_back();
  }
  return s;
}

/// Strict replacement for std::stoul on register indices/sizes: digits only
/// (stoul would accept "+-0x" forms and silently stop at garbage), bounded
/// length, and a QasmError instead of std::out_of_range on overflow — a
/// multi-GB declaration like "qreg q[99999999999999]" must be a parse
/// error, not a bad_alloc or a wrapped value.
std::size_t parseIndex(const std::string& text, std::size_t line,
                       const char* what) {
  const std::string digits = trim(text);
  if (digits.empty()) {
    throw QasmError(std::string("missing ") + what, line);
  }
  if (digits.size() > 15) {
    throw QasmError(std::string(what) + " '" + digits + "' is out of range",
                    line);
  }
  std::size_t value = 0;
  for (const char c : digits) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      throw QasmError(std::string("malformed ") + what + " '" + digits + "'",
                      line);
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

std::vector<std::string> splitList(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    }
    if (c == sep && depth == 0) {
      parts.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!trim(cur).empty() || !parts.empty()) {
    parts.push_back(trim(cur));
  }
  return parts;
}

class Parser {
 public:
  explicit Parser(const std::string& source) : stmts_(splitStatements(source)) {}

  Circuit parse() {
    // First pass: register declarations (to size the circuit).
    for (const auto& [text, line] : stmts_) {
      handleDeclaration(text, line);
    }
    if (numQubits_ == 0) {
      throw QasmError("no qreg declared", 1);
    }
    Circuit circuit(numQubits_, numClbits_ == 0 ? numQubits_ : numClbits_);
    for (const auto& [text, line] : stmts_) {
      handleStatement(circuit, text, line);
    }
    return circuit;
  }

 private:
  void handleDeclaration(const std::string& text, std::size_t line) {
    std::istringstream ss(text);
    std::string keyword;
    ss >> keyword;
    if (keyword != "qreg" && keyword != "creg") {
      return;
    }
    std::string decl;
    std::getline(ss, decl);
    decl = trim(decl);
    const auto open = decl.find('[');
    const auto close = decl.find(']');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      throw QasmError("malformed register declaration", line);
    }
    const std::string name = trim(decl.substr(0, open));
    const std::size_t size =
        parseIndex(decl.substr(open + 1, close - open - 1), line,
                   "register size");
    if (size == 0) {
      throw QasmError("empty register", line);
    }
    if (keyword == "qreg") {
      if (qregs_.count(name) != 0) {
        throw QasmError("duplicate qreg '" + name + "'", line);
      }
      if (size > kMaxQubits || numQubits_ + size > kMaxQubits) {
        throw QasmError("qreg '" + name + "' exceeds the " +
                            std::to_string(kMaxQubits) + "-qubit limit",
                        line);
      }
      qregs_[name] = {numQubits_, size};
      numQubits_ += size;
    } else {
      if (cregs_.count(name) != 0) {
        throw QasmError("duplicate creg '" + name + "'", line);
      }
      if (size > kMaxClbits || numClbits_ + size > kMaxClbits) {
        throw QasmError("creg '" + name + "' exceeds the " +
                            std::to_string(kMaxClbits) + "-bit limit",
                        line);
      }
      cregs_[name] = {numClbits_, size};
      numClbits_ += size;
    }
  }

  Qubit resolveQubit(const std::string& ref, std::size_t line) const {
    return static_cast<Qubit>(resolve(qregs_, ref, line, "qubit"));
  }

  std::size_t resolveClbit(const std::string& ref, std::size_t line) const {
    return resolve(cregs_, ref, line, "classical bit");
  }

  static std::size_t resolve(
      const std::map<std::string, std::pair<std::size_t, std::size_t>>& regs,
      const std::string& ref, std::size_t line, const char* what) {
    const auto open = ref.find('[');
    const auto close = ref.find(']');
    if (open == std::string::npos || close == std::string::npos) {
      throw QasmError(std::string("expected indexed ") + what + " reference '" +
                          ref + "'",
                      line);
    }
    if (close < open) {
      throw QasmError(std::string("malformed ") + what + " reference '" + ref +
                          "'",
                      line);
    }
    const std::string name = trim(ref.substr(0, open));
    const std::size_t idx = parseIndex(
        ref.substr(open + 1, close - open - 1), line, "register index");
    const auto it = regs.find(name);
    if (it == regs.end()) {
      throw QasmError("unknown register '" + name + "'", line);
    }
    if (idx >= it->second.second) {
      throw QasmError("index out of range in '" + ref + "'", line);
    }
    return it->second.first + idx;
  }

  void handleStatement(Circuit& circuit, const std::string& stmt,
                       std::size_t line) {
    if (stmt.empty()) {
      return;
    }
    std::istringstream ss(stmt);
    std::string head;
    ss >> head;
    if (head == "OPENQASM" || head == "include" || head == "qreg" ||
        head == "creg") {
      return;
    }
    if (head == "barrier") {
      circuit.barrier();
      return;
    }

    std::string rest;
    std::getline(ss, rest);
    rest = trim(rest);

    if (head == "measure") {
      const auto arrow = rest.find("->");
      if (arrow == std::string::npos) {
        throw QasmError("measure expects 'q -> c'", line);
      }
      circuit.measure(resolveQubit(trim(rest.substr(0, arrow)), line),
                      resolveClbit(trim(rest.substr(arrow + 2)), line));
      return;
    }
    if (head == "reset") {
      circuit.reset(resolveQubit(rest, line));
      return;
    }

    // Gate application. `head` may carry the parameter list: name(expr,...)
    std::string name = head;
    std::vector<double> params;
    const auto paren = head.find('(');
    if (paren != std::string::npos) {
      if (head.back() != ')') {
        // Parameters may contain spaces; re-join from the raw statement.
        const auto openPos = stmt.find('(');
        const auto closePos = stmt.rfind(')');
        if (closePos == std::string::npos || closePos < openPos) {
          throw QasmError("malformed parameter list", line);
        }
        name = trim(stmt.substr(0, openPos));
        for (const auto& p :
             splitList(stmt.substr(openPos + 1, closePos - openPos - 1), ',')) {
          params.push_back(ExprParser(p, line).parse());
        }
        rest = trim(stmt.substr(closePos + 1));
      } else {
        name = head.substr(0, paren);
        for (const auto& p :
             splitList(head.substr(paren + 1, head.size() - paren - 2), ',')) {
          params.push_back(ExprParser(p, line).parse());
        }
      }
    }

    std::vector<Qubit> operands;
    for (const auto& ref : splitList(rest, ',')) {
      operands.push_back(resolveQubit(ref, line));
    }
    emitGate(circuit, name, params, operands, line);
  }

  static void emitGate(Circuit& circuit, const std::string& name,
                       const std::vector<double>& params,
                       const std::vector<Qubit>& operands, std::size_t line) {
    // Count leading 'c's for the controlled shorthand, then the multi-control
    // extension prefix "mc".
    std::string base = name;
    bool multiControl = false;
    std::size_t numControls = 0;
    if (base.rfind("mc", 0) == 0) {
      base = base.substr(2);
      multiControl = true;
    } else {
      // Strip the shortest prefix of 'c's that leaves a known gate, so that
      // "ccx" resolves to X with two controls even though "cx" itself is not
      // a base gate name.
      std::size_t leading = 0;
      while (leading + 1 < base.size() && base[leading] == 'c') {
        ++leading;
      }
      for (std::size_t k = 0; k <= leading; ++k) {
        if (gateFromName(base.substr(k))) {
          base = base.substr(k);
          numControls = k;
          break;
        }
      }
    }
    const auto type = gateFromName(base);
    if (!type) {
      throw QasmError("unknown gate '" + name + "'", line);
    }
    const std::size_t numTargets = gateNumTargets(*type);
    if (multiControl) {
      if (operands.size() <= numTargets) {
        throw QasmError("mc-gate needs at least one control", line);
      }
      numControls = operands.size() - numTargets;
    }
    if (operands.size() != numControls + numTargets) {
      throw QasmError("wrong operand count for '" + name + "'", line);
    }
    Controls controls;
    for (std::size_t i = 0; i < numControls; ++i) {
      controls.push_back(Control{operands[i]});
    }
    std::vector<Qubit> targets(operands.begin() + static_cast<long>(numControls),
                               operands.end());
    circuit.append(std::make_unique<StandardOperation>(*type, std::move(targets),
                                                       std::move(controls),
                                                       params));
  }

  std::vector<Statement> stmts_;
  std::map<std::string, std::pair<std::size_t, std::size_t>> qregs_;
  std::map<std::string, std::pair<std::size_t, std::size_t>> cregs_;
  std::size_t numQubits_ = 0;
  std::size_t numClbits_ = 0;
};

void writeOperation(const Operation& op, std::ostream& os);

void writeStandard(const StandardOperation& op, std::ostream& os) {
  const std::size_t nc = op.controls().size();
  for (const auto& c : op.controls()) {
    if (!c.positive) {
      // Negative controls: conjugate with X in the serialized form.
      os << "x q[" << c.qubit << "];\n";
    }
  }
  std::string name = gateName(op.type());
  if (nc == 1) {
    name = "c" + name;
  } else if (nc == 2 && op.type() == GateType::X) {
    name = "ccx";
  } else if (nc >= 2) {
    name = "mc" + name;
  }
  os << name;
  if (!op.params().empty()) {
    // Round-trip exactly: max_digits10 guarantees the parsed double equals
    // the written one.
    const auto oldPrecision =
        os.precision(std::numeric_limits<double>::max_digits10);
    os << "(";
    for (std::size_t i = 0; i < op.params().size(); ++i) {
      os << (i != 0 ? "," : "") << op.params()[i];
    }
    os << ")";
    os.precision(oldPrecision);
  }
  os << " ";
  bool first = true;
  for (const auto& c : op.controls()) {
    os << (first ? "" : ", ") << "q[" << c.qubit << "]";
    first = false;
  }
  for (const Qubit t : op.targets()) {
    os << (first ? "" : ", ") << "q[" << t << "]";
    first = false;
  }
  os << ";\n";
  for (const auto& c : op.controls()) {
    if (!c.positive) {
      os << "x q[" << c.qubit << "];\n";
    }
  }
}

void writeOperation(const Operation& op, std::ostream& os) {
  switch (op.kind()) {
    case OpKind::Standard:
      writeStandard(static_cast<const StandardOperation&>(op), os);
      break;
    case OpKind::Measure: {
      const auto& m = static_cast<const MeasureOperation&>(op);
      os << "measure q[" << m.qubit() << "] -> c[" << m.clbit() << "];\n";
      break;
    }
    case OpKind::Reset: {
      const auto& r = static_cast<const ResetOperation&>(op);
      os << "reset q[" << r.qubit() << "];\n";
      break;
    }
    case OpKind::Barrier:
      os << "barrier q;\n";
      break;
    case OpKind::Compound: {
      const auto& comp = static_cast<const CompoundOperation&>(op);
      for (std::size_t rep = 0; rep < comp.repetitions(); ++rep) {
        for (const auto& inner : comp.body()) {
          writeOperation(*inner, os);
        }
      }
      break;
    }
    case OpKind::ClassicControlled:
      throw std::invalid_argument(
          "writeQasm: classically controlled operations are not representable "
          "in the OpenQASM 2.0 subset");
    case OpKind::Oracle:
      throw std::invalid_argument(
          "writeQasm: oracle operations have no gate-level representation");
  }
}

}  // namespace

Circuit parseQasm(const std::string& source) { return Parser(source).parse(); }

Circuit parseQasmFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open QASM file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parseQasm(ss.str());
}

void writeQasm(const Circuit& circuit, std::ostream& os) {
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.numQubits() << "];\n";
  os << "creg c[" << std::max<std::size_t>(1, circuit.numClbits()) << "];\n";
  for (const auto& op : circuit.ops()) {
    writeOperation(*op, os);
  }
}

std::string toQasm(const Circuit& circuit) {
  std::ostringstream ss;
  writeQasm(circuit, ss);
  return ss.str();
}

}  // namespace ddsim::ir
