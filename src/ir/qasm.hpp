/// \file qasm.hpp
/// \brief OpenQASM 2.0 subset reader/writer.
///
/// Supported statements: OPENQASM/include headers (ignored), qreg/creg
/// declarations (multiple registers are flattened in declaration order),
/// the built-in gate applications of our gate set with controlled forms
/// (cx, cz, cp, ccx, cswap), measure, reset, barrier, and — as an
/// extension used for round-tripping multi-controlled gates — `mcx`,
/// `mcz` and `mcp(theta)` whose last operand is the target. Parameter
/// expressions understand numbers, `pi`, parentheses and + - * /.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "ir/circuit.hpp"

namespace ddsim::ir {

class QasmError : public std::runtime_error {
 public:
  QasmError(const std::string& message, std::size_t line)
      : std::runtime_error("qasm:" + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parse QASM source text into a circuit.
[[nodiscard]] Circuit parseQasm(const std::string& source);
/// Parse a QASM file.
[[nodiscard]] Circuit parseQasmFile(const std::string& path);

/// Serialize. Compound blocks are flattened; oracle operations cannot be
/// represented and raise std::invalid_argument.
void writeQasm(const Circuit& circuit, std::ostream& os);
[[nodiscard]] std::string toQasm(const Circuit& circuit);

}  // namespace ddsim::ir
