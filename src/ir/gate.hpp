/// \file gate.hpp
/// \brief Elementary gate set and their 2x2 unitaries.
///
/// The set covers everything the paper's benchmarks need: the textbook
/// single-qubit gates (Section II-A), the rotation/phase family used by the
/// QFT and the Draper adders inside Beauregard's Shor circuit, and the
/// sqrt(X)/sqrt(Y)/T gates of the Google supremacy circuits. Controls are
/// not part of the gate type: any gate can carry an arbitrary set of
/// positive/negative controls (see ir::StandardOperation).

#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "dd/package.hpp"

namespace ddsim::ir {

enum class GateType {
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  SX,    ///< sqrt(X)
  SXdg,  ///< sqrt(X)^dagger
  SY,    ///< sqrt(Y)
  SYdg,  ///< sqrt(Y)^dagger
  RX,    ///< exp(-i X theta/2), one parameter
  RY,    ///< exp(-i Y theta/2), one parameter
  RZ,    ///< exp(-i Z theta/2), one parameter
  Phase, ///< diag(1, e^{i theta}), one parameter
  GPhase,///< global phase e^{i theta} I, one parameter (exact gate fusion)
  U,     ///< generic single-qubit unitary U(theta, phi, lambda)
  Swap,  ///< two-target; lowered to three CX by the simulators
};

/// Number of real parameters the gate type expects.
[[nodiscard]] std::size_t gateNumParams(GateType t) noexcept;

/// Number of target qubits (1, or 2 for Swap).
[[nodiscard]] std::size_t gateNumTargets(GateType t) noexcept;

/// Lower-case mnemonic ("x", "sdg", "rx", ...).
[[nodiscard]] std::string gateName(GateType t);

/// Inverse of gateName; empty optional for unknown names. Accepts the
/// OpenQASM aliases "p"/"u1" (Phase), "u3" (U) and "id" (I).
[[nodiscard]] std::optional<GateType> gateFromName(const std::string& name);

/// The 2x2 unitary of a single-target gate. \p params must have
/// gateNumParams(t) entries. Throws std::invalid_argument for Swap.
[[nodiscard]] dd::GateMatrix gateMatrix(GateType t, const double* params = nullptr);

/// The gate type realizing the inverse, together with adjusted parameters.
/// Used by circuit builders that emit un-computation blocks.
struct InverseGate {
  GateType type;
  double params[3];
};
[[nodiscard]] InverseGate gateInverse(GateType t, const double* params = nullptr);

}  // namespace ddsim::ir
