/// \file optimize.hpp
/// \brief Gate-level circuit optimization passes.
///
/// Reducing the number of elementary operations before simulation helps
/// every schedule (fewer multiplications of either kind), making this the
/// natural companion of the paper's combination strategies. Three classic
/// passes are provided; all preserve the circuit's unitary exactly
/// (fusion emits an explicit global-phase gate instead of dropping phases).

#pragma once

#include <cstddef>

#include "ir/circuit.hpp"

namespace ddsim::ir {

struct OptimizeOptions {
  /// Drop identity gates and zero-angle rotations/phases.
  bool removeIdentities = true;
  /// Cancel adjacent gate/inverse pairs (commuting past operations on
  /// disjoint qubits).
  bool cancelInversePairs = true;
  /// Fuse runs of uncontrolled single-qubit gates on the same qubit into a
  /// single U gate plus (when needed) a global-phase gate.
  bool fuseSingleQubitGates = true;
  /// Re-run the pass pipeline until nothing changes.
  bool iterateToFixpoint = true;
};

struct OptimizeStats {
  std::size_t removedIdentities = 0;
  std::size_t cancelledPairs = 0;
  std::size_t fusedGates = 0;  ///< gates consumed by fusion
  std::size_t passes = 0;
};

/// Optimize a circuit. Compound blocks are optimized recursively (their
/// repetition structure is preserved); non-unitary operations are barriers
/// for all passes. The result is exactly equivalent (including global
/// phase) to the input.
[[nodiscard]] Circuit optimize(const Circuit& circuit,
                               const OptimizeOptions& options = {},
                               OptimizeStats* stats = nullptr);

/// Decompose a 2x2 unitary into U(theta, phi, lambda) parameters and a
/// global phase alpha such that matrix == e^{i alpha} * U3(theta,phi,lambda).
struct U3Decomposition {
  double theta = 0;
  double phi = 0;
  double lambda = 0;
  double alpha = 0;  ///< global phase
};
[[nodiscard]] U3Decomposition decomposeU3(const dd::GateMatrix& matrix);

}  // namespace ddsim::ir
