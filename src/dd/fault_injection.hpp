/// \file fault_injection.hpp
/// \brief Deterministic fault injection for the resource-governance paths.
///
/// Resource exhaustion, timeouts mid-multiply and emergency collections are
/// inherently timing- and size-dependent — impossible to hit reliably with
/// real workloads in a unit test. The FaultInjector turns each of them into
/// a deterministic, countable event: fail node allocation after N requests,
/// trip the abort check during top-level operation K, force a garbage
/// collection at GC-poll S. It is compiled in unconditionally; an
/// uninstalled injector costs one null-pointer check on the affected paths.
///
/// One injector may be shared between packages on different threads (the
/// pipeline tests install the same injector into the main and the builder
/// packages, and parallel kernels poll it from worker threads), so every
/// counter is a relaxed atomic. configure()/disarm() remain
/// quiescent-point-only operations.

#pragma once

#include <atomic>
#include <cstdint>

namespace ddsim::dd {

class FaultInjector {
 public:
  struct Config {
    /// Let this many node requests succeed, then fail every further one
    /// with ResourceExhausted (0 = disabled). Persistent, not one-shot:
    /// callers that collect-and-retry keep failing until disarm().
    std::uint64_t failAllocationAfter = 0;
    /// Trip the abort check (ComputationAborted) at the first poll inside
    /// the K-th top-level package operation, 1-based (0 = disabled). This
    /// simulates a timeout firing mid-multiply, deterministically.
    std::uint64_t abortAtOperation = 0;
    /// Force a garbage collection at the S-th maybeGarbageCollect() poll,
    /// 1-based (0 = disabled) — one poll happens per simulator step.
    std::uint64_t forceGcAtPoll = 0;
    /// Seeded random-fault mode: fail each node request independently with
    /// this probability (0.0 = disabled). Deterministic per
    /// (randomSeed, request index) — the decision for request N is a pure
    /// SplitMix64 hash of the two, so a given seed produces the identical
    /// fault pattern on every run regardless of thread interleaving, and
    /// two injectors with the same seed agree request-for-request.
    /// Composes with failAllocationAfter (either trigger fails a request).
    double failAllocationProbability = 0.0;
    /// Stream selector for failAllocationProbability.
    std::uint64_t randomSeed = 0;
  };

  FaultInjector() = default;
  explicit FaultInjector(const Config& config) : cfg_(config) {}

  /// Quiescent-point rule (shared by configure() and disarm()): cfg_ is a
  /// plain struct read without synchronization from the injection hooks,
  /// so reconfiguration is only safe while no package that holds this
  /// injector is executing an operation — between simulator steps, or
  /// before/after a run. The counters, by contrast, are relaxed atomics
  /// and may be read at any time.
  void configure(const Config& config) noexcept { cfg_ = config; }
  /// Clear every armed fault (counters keep their values for inspection).
  void disarm() noexcept { cfg_ = Config{}; }

  /// Called by the package on every node request. True => fail this one.
  [[nodiscard]] bool onNodeRequest() noexcept {
    const std::uint64_t count =
        nodeRequests_.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fail =
        cfg_.failAllocationAfter != 0 && count > cfg_.failAllocationAfter;
    if (!fail && cfg_.failAllocationProbability > 0.0) {
      // Hash (seed, request index) to a uniform double in [0, 1): the
      // fault pattern is a pure function of the seed, reproducible across
      // runs and thread schedules.
      std::uint64_t z = cfg_.randomSeed ^
                        (count * 0x9e3779b97f4a7c15ULL +
                         0x9e3779b97f4a7c15ULL);
      z ^= z >> 30;
      z *= 0xbf58476d1ce4e5b9ULL;
      z ^= z >> 27;
      z *= 0x94d049bb133111ebULL;
      z ^= z >> 31;
      const double u =
          static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
      fail = u < cfg_.failAllocationProbability;
    }
    if (fail) {
      injectedAllocFailures_.fetch_add(1, std::memory_order_relaxed);
    }
    return fail;
  }

  /// Called from the abort poll with the current top-level operation index.
  [[nodiscard]] bool onAbortPoll(std::uint64_t opIndex) noexcept {
    const bool fire =
        cfg_.abortAtOperation != 0 && opIndex == cfg_.abortAtOperation;
    if (fire) {
      injectedAborts_.fetch_add(1, std::memory_order_relaxed);
    }
    return fire;
  }

  /// Called from maybeGarbageCollect(). True => collect now regardless of
  /// the adaptive threshold.
  [[nodiscard]] bool onGcPoll() noexcept {
    const std::uint64_t polls =
        gcPolls_.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool fire = cfg_.forceGcAtPoll != 0 && polls == cfg_.forceGcAtPoll;
    if (fire) {
      injectedGcs_.fetch_add(1, std::memory_order_relaxed);
    }
    return fire;
  }

  // Observed-event counters for test assertions.
  [[nodiscard]] std::uint64_t nodeRequests() const noexcept {
    return nodeRequests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injectedAllocFailures() const noexcept {
    return injectedAllocFailures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injectedAborts() const noexcept {
    return injectedAborts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injectedGcs() const noexcept {
    return injectedGcs_.load(std::memory_order_relaxed);
  }

 private:
  Config cfg_;
  std::atomic<std::uint64_t> nodeRequests_{0};
  std::atomic<std::uint64_t> gcPolls_{0};
  std::atomic<std::uint64_t> injectedAllocFailures_{0};
  std::atomic<std::uint64_t> injectedAborts_{0};
  std::atomic<std::uint64_t> injectedGcs_{0};
};

}  // namespace ddsim::dd
