/// \file pauli.hpp
/// \brief Pauli-string observables as matrix DDs.
///
/// A Pauli string like "ZXIY" denotes a tensor product of single-qubit
/// operators; its matrix DD is linear in the number of qubits, which makes
/// expectation values <psi|P|psi> cheap to evaluate on DD states — one of
/// the standard applications of the matrix-matrix machinery this package
/// provides.

#pragma once

#include <string>

#include "dd/package.hpp"

namespace ddsim::dd {

/// Matrix DD of the Pauli string \p pauli. The string is read right to
/// left: the last character acts on qubit 0. Characters: I, X, Y, Z
/// (case-insensitive). The string must have exactly pkg.qubits() characters.
MEdge makePauliStringDD(Package& pkg, const std::string& pauli);

/// <v|P|v> for the Pauli string \p pauli; the imaginary part vanishes for
/// normalized states (Pauli strings are Hermitian) and is returned for
/// diagnostic purposes.
ComplexValue pauliExpectation(Package& pkg, const std::string& pauli,
                              const VEdge& v);

}  // namespace ddsim::dd
