/// \file task_pool.hpp
/// \brief Small fork-join work-stealing task pool for intra-package
///        parallelism (quadrant-parallel multiply / add recursion).
///
/// Design goals, in order: correctness under TSan, bounded memory, and low
/// overhead for the *serial* path (a Package without workers never touches
/// the pool). The pool is deliberately simple — a handful of workers, one
/// mutex-protected deque per worker, stealing from the front of sibling
/// deques — because DD recursion spawns O(4^cutoff) coarse tasks, not
/// millions of fine-grained ones; scheduler sophistication would be noise.
///
/// Fork-join protocol: callers group tasks into a TaskGroup, submit() each
/// task, then wait() on the group. The waiting thread *helps execute* queued
/// tasks while it waits, so nested fork-join (a task that itself forks a
/// group) can never deadlock on pool capacity. The first exception thrown by
/// any task in a group is captured and rethrown from wait() — this is how
/// ResourceExhausted / ComputationAborted propagate out of parallel
/// sub-multiplies exactly as they do from serial recursion.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ddsim::dd {

class TaskPool {
 public:
  /// Join handle for one fork-join region. Not reusable while tasks are in
  /// flight; reusable (pending back at zero) after wait() returns.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class TaskPool;
    std::atomic<std::size_t> pending_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    std::exception_ptr exception_;  // first failure, guarded by mutex_
  };

  /// Spawns \p workers threads (>= 1). Total parallelism available to a
  /// fork-join region is workers + 1: the waiting thread helps.
  explicit TaskPool(std::size_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }

  /// Enqueue \p fn under \p group. The task runs on a worker thread or
  /// inline in a wait()-ing thread, whichever claims it first.
  void submit(TaskGroup& group, std::function<void()> fn);

  /// Block until every task submitted under \p group has finished, helping
  /// to execute queued tasks (from any group — helping strangers is what
  /// prevents nested-join deadlock) while waiting. Rethrows the group's
  /// first captured exception, if any.
  void wait(TaskGroup& group);

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void workerMain(std::size_t index);
  /// Claim one task: own queue back first (for workers), then steal from
  /// sibling fronts. Returns false when every queue is empty.
  bool tryRunOne(std::size_t homeIndex);
  void execute(Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex idleMutex_;
  std::condition_variable idleCv_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> nextQueue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace ddsim::dd
