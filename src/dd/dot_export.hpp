/// \file dot_export.hpp
/// \brief Graphviz export of decision diagrams (debugging/visualization,
///        mirrors the DD drawings in Figs. 2-5 of the paper).

#pragma once

#include <ostream>
#include <string>

#include "dd/node.hpp"

namespace ddsim::dd {

/// Write a vector DD in Graphviz dot format.
void exportDot(const VEdge& root, std::ostream& os,
               const std::string& graphName = "vectorDD");
/// Write a matrix DD in Graphviz dot format.
void exportDot(const MEdge& root, std::ostream& os,
               const std::string& graphName = "matrixDD");

/// Convenience: dot text as a string.
std::string toDot(const VEdge& root);
std::string toDot(const MEdge& root);

}  // namespace ddsim::dd
