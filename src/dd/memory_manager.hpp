/// \file memory_manager.hpp
/// \brief Chunked node allocator with an intrusive free list.
///
/// DD simulation allocates and discards nodes at a very high rate; going
/// through the general-purpose heap for every node dominates runtime. This
/// manager hands out nodes from large chunks and recycles garbage-collected
/// nodes through a free list threaded over Node::next.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace ddsim::dd {

template <typename NodeT>
class MemoryManager {
 public:
  explicit MemoryManager(std::size_t chunkSize = 1U << 14)
      : chunkSize_(chunkSize) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// Obtain a fresh (default-initialized) node. The incarnation counter
  /// NodeT::id is preserved across recycling: together with the bump in
  /// free() it counts how often this address has been reclaimed, which is
  /// what lets stale compute-table entries detect pointer reuse.
  NodeT* get() {
    if (free_ != nullptr) {
      NodeT* n = free_;
      free_ = n->next;
      --freeCount_;
      const auto incarnation = n->id;
      *n = NodeT{};
      n->id = incarnation;
      return n;
    }
    if (used_ == chunkCapacity_) {
      chunks_.push_back(std::make_unique<NodeT[]>(chunkSize_));
      chunkCapacity_ = chunkSize_;
      used_ = 0;
    }
    ++allocated_;
    return &chunks_.back()[used_++];
  }

  /// Return a node to the free list. The caller must guarantee that no live
  /// DD references it anymore. Bumping the incarnation here (not on reuse)
  /// immediately invalidates any cached reference to the old node, even
  /// while the node still sits on the free list.
  void free(NodeT* n) noexcept {
    ++n->id;
    n->next = free_;
    free_ = n;
    ++freeCount_;
  }

  /// Total nodes ever carved out of chunks (monotone).
  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }
  /// Nodes currently sitting on the free list.
  [[nodiscard]] std::size_t freeListSize() const noexcept { return freeCount_; }
  /// Nodes currently in use (allocated minus free-listed).
  [[nodiscard]] std::size_t inUse() const noexcept {
    return allocated_ - freeCount_;
  }

 private:
  std::size_t chunkSize_;
  std::vector<std::unique_ptr<NodeT[]>> chunks_;
  std::size_t chunkCapacity_ = 0;
  std::size_t used_ = 0;
  NodeT* free_ = nullptr;
  std::size_t allocated_ = 0;
  std::size_t freeCount_ = 0;
};

}  // namespace ddsim::dd
