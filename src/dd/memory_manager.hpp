/// \file memory_manager.hpp
/// \brief Chunked node allocator with an intrusive free list.
///
/// DD simulation allocates and discards nodes at a very high rate; going
/// through the general-purpose heap for every node dominates runtime. This
/// manager hands out nodes from large chunks and recycles garbage-collected
/// nodes through a free list threaded over Node::next.
///
/// Two resource-governance duties live here as well: a std::bad_alloc from
/// chunk growth is converted into the structured ResourceExhausted taxonomy
/// (with allocated/in-use diagnostics) instead of crashing the caller, and
/// releaseFreeChunks() returns fully-reclaimed chunks to the OS so a
/// governor-triggered garbage collection actually frees memory.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "dd/resource_governor.hpp"

namespace ddsim::dd {

/// Concurrency: in concurrent mode (Package::setWorkers > 1) one mutex
/// serializes get()/free() — correctness-first; the parallel engine's
/// speedup comes from builder fan-out and coarse quadrant tasks, not from a
/// lock-free allocator. The byte/occupancy accessors read atomics so the
/// resource governor can poll them from any thread without the lock.
template <typename NodeT>
class MemoryManager {
 public:
  explicit MemoryManager(std::size_t chunkSize = 1U << 14)
      : chunkSize_(chunkSize) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// Toggle the allocator lock. Only flip at quiescent points.
  void setConcurrent(bool on) noexcept { concurrent_ = on; }

  /// Obtain a fresh (default-initialized) node. The incarnation counter
  /// NodeT::id is preserved across recycling: together with the bump in
  /// free() it counts how often this address has been reclaimed, which is
  /// what lets stale compute-table entries detect pointer reuse.
  /// Throws ResourceExhausted when chunk growth hits std::bad_alloc.
  NodeT* get() {
    if (concurrent_) {
      const std::lock_guard<std::mutex> lock(mutex_);
      return getLocked();
    }
    return getLocked();
  }

  /// Return a node to the free list. The caller must guarantee that no live
  /// DD references it anymore. Bumping the incarnation here (not on reuse)
  /// immediately invalidates any cached reference to the old node, even
  /// while the node still sits on the free list.
  void free(NodeT* n) noexcept {
    if (concurrent_) {
      const std::lock_guard<std::mutex> lock(mutex_);
      freeLocked(n);
      return;
    }
    freeLocked(n);
  }

 private:
  NodeT* getLocked() {
    if (free_ != nullptr) {
      NodeT* n = free_;
      free_ = n->next;
      freeCount_.fetch_sub(1, std::memory_order_relaxed);
      const auto incarnation = n->id;
      *n = NodeT{};
      n->id = incarnation;
      return n;
    }
    if (used_ == chunkCapacity_) {
      try {
        chunks_.push_back(std::make_unique<NodeT[]>(chunkSize_));
      } catch (const std::bad_alloc&) {
        throw ResourceExhausted(
            "chunk allocation", inUse(), /*nodeBudget=*/0, bytesAllocated(),
            "std::bad_alloc growing a " + std::to_string(chunkSize_) +
                "-node chunk; " + std::to_string(allocated()) +
                " nodes carved, " + std::to_string(freeListSize()) + " free");
      }
      chunkBytes_.fetch_add(chunkSize_ * sizeof(NodeT),
                            std::memory_order_relaxed);
      chunkCapacity_ = chunkSize_;
      used_ = 0;
    }
    allocated_.fetch_add(1, std::memory_order_relaxed);
    NodeT* n = &chunks_.back()[used_++];
    // Fresh carves start at the release epoch: every id in use stays above
    // any id that ever lived in a released chunk, so a new chunk landing on
    // a recycled address can never revalidate a stale compute-table entry.
    n->id = idEpoch_;
    return n;
  }

  void freeLocked(NodeT* n) noexcept {
    ++n->id;
    n->next = free_;
    free_ = n;
    freeCount_.fetch_add(1, std::memory_order_relaxed);
  }

 public:
  /// Return chunks whose nodes are all on the free list to the OS. The
  /// caller must first drop every raw pointer into freed nodes (stale
  /// compute-table entries!) — Package::emergencyCollect clears the compute
  /// tables before calling this. Returns the number of bytes released.
  std::size_t releaseFreeChunks() {
    if (chunks_.empty() || freeCount_ == 0) {
      return 0;
    }
    // Count free-listed nodes per chunk. Chunks are equally sized and only
    // the last one can be partially carved.
    struct Range {
      const NodeT* lo;
      std::size_t chunkIdx;
    };
    std::vector<Range> ranges;
    ranges.reserve(chunks_.size());
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      ranges.push_back({chunks_[i].get(), i});
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const Range& a, const Range& b) { return a.lo < b.lo; });
    const auto chunkOf = [&](const NodeT* n) -> std::size_t {
      auto it = std::upper_bound(
          ranges.begin(), ranges.end(), n,
          [](const NodeT* x, const Range& r) { return x < r.lo; });
      return std::prev(it)->chunkIdx;
    };
    std::vector<std::size_t> freeIn(chunks_.size(), 0);
    for (const NodeT* n = free_; n != nullptr; n = n->next) {
      ++freeIn[chunkOf(n)];
    }

    std::vector<bool> release(chunks_.size(), false);
    std::uint64_t maxReleasedId = 0;
    bool any = false;
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      const std::size_t carved =
          i + 1 == chunks_.size() ? used_ : chunkSize_;
      if (carved == 0 || freeIn[i] != carved) {
        continue;
      }
      release[i] = true;
      any = true;
      for (std::size_t k = 0; k < carved; ++k) {
        maxReleasedId = std::max(maxReleasedId, chunks_[i][k].id);
      }
    }
    if (!any) {
      return 0;
    }
    idEpoch_ = std::max(idEpoch_, maxReleasedId + 1);

    // Rebuild the free list without nodes from released chunks.
    NodeT* newFree = nullptr;
    std::size_t newFreeCount = 0;
    for (NodeT* n = free_; n != nullptr;) {
      NodeT* next = n->next;
      if (!release[chunkOf(n)]) {
        n->next = newFree;
        newFree = n;
        ++newFreeCount;
      }
      n = next;
    }
    free_ = newFree;
    freeCount_ = newFreeCount;

    std::size_t releasedChunks = 0;
    const bool lastReleased = release.back();
    std::vector<std::unique_ptr<NodeT[]>> kept;
    kept.reserve(chunks_.size());
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      if (release[i]) {
        allocated_ -= i + 1 == chunks_.size() ? used_ : chunkSize_;
        ++releasedChunks;
      } else {
        kept.push_back(std::move(chunks_[i]));
      }
    }
    chunks_ = std::move(kept);
    if (lastReleased) {
      // The carve chunk is gone; the next get() starts a fresh one.
      chunkCapacity_ = 0;
      used_ = 0;
    }
    const std::size_t releasedBytes = releasedChunks * chunkSize_ *
                                      sizeof(NodeT);
    chunkBytes_.fetch_sub(releasedBytes, std::memory_order_relaxed);
    return releasedBytes;
  }

  /// Nodes carved out of current chunks minus released ones.
  [[nodiscard]] std::size_t allocated() const noexcept {
    return allocated_.load(std::memory_order_relaxed);
  }
  /// Nodes currently sitting on the free list.
  [[nodiscard]] std::size_t freeListSize() const noexcept {
    return freeCount_.load(std::memory_order_relaxed);
  }
  /// Nodes currently in use (allocated minus free-listed).
  [[nodiscard]] std::size_t inUse() const noexcept {
    return allocated() - freeListSize();
  }
  /// Bytes currently held in chunks (what a byte budget governs). Atomic so
  /// the governor may poll it while another thread is allocating.
  [[nodiscard]] std::size_t bytesAllocated() const noexcept {
    return chunkBytes_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t chunkSize_;
  std::vector<std::unique_ptr<NodeT[]>> chunks_;
  std::size_t chunkCapacity_ = 0;
  std::size_t used_ = 0;
  NodeT* free_ = nullptr;
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> freeCount_{0};
  std::atomic<std::size_t> chunkBytes_{0};
  std::mutex mutex_;
  bool concurrent_ = false;
  /// One past the largest incarnation id that ever lived in a released
  /// chunk; fresh carves start here (see get()).
  std::uint64_t idEpoch_ = 0;
};

}  // namespace ddsim::dd
