/// \file approximation.hpp
/// \brief Fidelity-driven state-DD approximation.
///
/// An extension in the spirit of the DD-simulation line of work the paper
/// belongs to: prune the lowest-probability branches of a state DD until a
/// probability budget of 1 - targetFidelity is exhausted, then renormalize.
/// Trading a bounded fidelity loss for a (often drastically) smaller DD
/// directly attacks the cost driver identified in Section III — the size of
/// the state DD every multiplication touches.

#pragma once

#include "dd/package.hpp"

namespace ddsim::dd {

struct ApproximationResult {
  /// The approximated, renormalized state (unrooted; incRef to keep).
  VEdge state{};
  /// Fidelity |<original|approx>|^2 actually achieved (>= targetFidelity).
  double fidelity = 1.0;
  std::size_t removedEdges = 0;
  std::size_t nodesBefore = 0;
  std::size_t nodesAfter = 0;
};

/// Greedily remove the smallest-contribution edges of \p root (a normalized
/// state) while the removed probability mass stays below
/// 1 - \p targetFidelity, then renormalize. targetFidelity must be in
/// (0, 1]; 1 returns the state unchanged.
ApproximationResult approximate(Package& pkg, const VEdge& root,
                                double targetFidelity);

}  // namespace ddsim::dd
