/// \file migration.hpp
/// \brief Cross-package DD migration: serialize a vector/matrix DD into a
///        portable flat edge-list form and rebuild it inside another
///        dd::Package.
///
/// A Package's node pointers and canonical weight pointers are only
/// meaningful inside that package — its unique table, complex table and
/// incarnation counters are private state. The FlatDD form removes every
/// pointer: nodes become indices in children-before-parents order, weights
/// become plain ComplexValue copies. Importing rebuilds the DD bottom-up
/// through the destination's makeVNode/makeMNode and complex-table lookup,
/// so the result is canonical *in the destination* — normalized weights,
/// unique-table-deduplicated nodes, structure flags recomputed — and is
/// bit-for-bit independent of the source package's history (GC epochs,
/// incarnation stamps, chunk layout).
///
/// Two consumers in this codebase:
///  * the pipelined block builder (sim/pipeline.hpp) hands combined gate
///    blocks from its private builder package to the simulation package;
///  * the serving layer's shared block cache migrates prebuilt DD-repeating
///    blocks across worker packages instead of rebuilding them per worker.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dd/complex_value.hpp"
#include "dd/node.hpp"

namespace ddsim::dd {

class Package;

/// Child index of a flat edge that points at the terminal node.
inline constexpr std::int32_t kFlatTerminal = -1;

/// One edge of a flattened DD: the child's index into FlatDD::nodes
/// (kFlatTerminal for the terminal) plus the plain-value weight.
struct FlatEdge {
  std::int32_t node = kFlatTerminal;
  ComplexValue w{};

  bool operator==(const FlatEdge&) const noexcept = default;
};

template <std::size_t Arity>
struct FlatNode {
  Qubit v = 0;
  std::array<FlatEdge, Arity> children{};

  bool operator==(const FlatNode&) const noexcept = default;
};

/// A pointer-free DD. `nodes` is topologically ordered children-before-
/// parents (every child index is strictly smaller than its parent's index),
/// which importDD validates and exploits for a single bottom-up pass.
template <std::size_t Arity>
struct FlatDD {
  std::size_t numQubits = 0;
  std::vector<FlatNode<Arity>> nodes;
  FlatEdge root{};

  /// Internal nodes plus the terminal — comparable to Package::size().
  [[nodiscard]] std::size_t nodeCount() const noexcept {
    return nodes.size() + 1;
  }

  bool operator==(const FlatDD&) const noexcept = default;
};

using FlatVectorDD = FlatDD<2>;
using FlatMatrixDD = FlatDD<4>;

/// Flatten the DD rooted at \p root. Read-only on \p src (no package state
/// is mutated, no references are taken); the result stays valid after the
/// source DD — or the whole source package — is gone.
[[nodiscard]] FlatVectorDD exportDD(const Package& src, const VEdge& root);
[[nodiscard]] FlatMatrixDD exportDD(const Package& src, const MEdge& root);

/// Rebuild a flattened DD inside \p dst and return its (unrooted) root
/// edge. The caller roots it with dst.incRef() like any other fresh edge.
///
/// Structural validation happens up front — child indices in bounds and
/// children-before-parents, levels descending exactly one per edge,
/// terminal children only with an exactly-zero weight or at level 0, the
/// root level inside the destination's qubit range — and malformed input
/// throws std::invalid_argument before any node is created. Node creation
/// goes through the destination's resource checks, so a budgeted or
/// fault-injected destination can throw dd::ResourceExhausted mid-import;
/// partially built nodes are unrooted and reclaimed by the next collection.
[[nodiscard]] VEdge importDD(Package& dst, const FlatVectorDD& flat);
[[nodiscard]] MEdge importDD(Package& dst, const FlatMatrixDD& flat);

}  // namespace ddsim::dd
