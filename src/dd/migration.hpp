/// \file migration.hpp
/// \brief Cross-package DD migration: serialize a vector/matrix DD into a
///        portable flat edge-list form and rebuild it inside another
///        dd::Package.
///
/// A Package's node pointers and canonical weight pointers are only
/// meaningful inside that package — its unique table, complex table and
/// incarnation counters are private state. The FlatDD form removes every
/// pointer: nodes become indices in children-before-parents order, weights
/// become plain ComplexValue copies. Importing rebuilds the DD bottom-up
/// through the destination's makeVNode/makeMNode and complex-table lookup,
/// so the result is canonical *in the destination* — normalized weights,
/// unique-table-deduplicated nodes, structure flags recomputed — and is
/// bit-for-bit independent of the source package's history (GC epochs,
/// incarnation stamps, chunk layout).
///
/// Two consumers in this codebase:
///  * the pipelined block builder (sim/pipeline.hpp) hands combined gate
///    blocks from its private builder package to the simulation package;
///  * the serving layer's shared block cache migrates prebuilt DD-repeating
///    blocks across worker packages instead of rebuilding them per worker.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dd/complex_value.hpp"
#include "dd/node.hpp"

namespace ddsim::dd {

class Package;

/// Structured failure of DD migration: malformed flat structure, or a byte
/// stream that is truncated, version-incompatible or fails its checksum.
/// Derives from std::invalid_argument so pre-existing callers that treat a
/// bad flat DD as an argument error keep working unchanged.
class MigrationError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Child index of a flat edge that points at the terminal node.
inline constexpr std::int32_t kFlatTerminal = -1;

/// One edge of a flattened DD: the child's index into FlatDD::nodes
/// (kFlatTerminal for the terminal) plus the plain-value weight.
struct FlatEdge {
  std::int32_t node = kFlatTerminal;
  ComplexValue w{};

  bool operator==(const FlatEdge&) const noexcept = default;
};

template <std::size_t Arity>
struct FlatNode {
  Qubit v = 0;
  std::array<FlatEdge, Arity> children{};

  bool operator==(const FlatNode&) const noexcept = default;
};

/// A pointer-free DD. `nodes` is topologically ordered children-before-
/// parents (every child index is strictly smaller than its parent's index),
/// which importDD validates and exploits for a single bottom-up pass.
template <std::size_t Arity>
struct FlatDD {
  std::size_t numQubits = 0;
  std::vector<FlatNode<Arity>> nodes;
  FlatEdge root{};

  /// Internal nodes plus the terminal — comparable to Package::size().
  [[nodiscard]] std::size_t nodeCount() const noexcept {
    return nodes.size() + 1;
  }

  bool operator==(const FlatDD&) const noexcept = default;
};

using FlatVectorDD = FlatDD<2>;
using FlatMatrixDD = FlatDD<4>;

/// Flatten the DD rooted at \p root. Read-only on \p src (no package state
/// is mutated, no references are taken); the result stays valid after the
/// source DD — or the whole source package — is gone.
[[nodiscard]] FlatVectorDD exportDD(const Package& src, const VEdge& root);
[[nodiscard]] FlatMatrixDD exportDD(const Package& src, const MEdge& root);

/// Rebuild a flattened DD inside \p dst and return its (unrooted) root
/// edge. The caller roots it with dst.incRef() like any other fresh edge.
///
/// Structural validation happens up front — child indices in bounds and
/// children-before-parents, levels descending exactly one per edge,
/// terminal children only with an exactly-zero weight or at level 0, the
/// root level inside the destination's qubit range — and malformed input
/// throws std::invalid_argument before any node is created. Node creation
/// goes through the destination's resource checks, so a budgeted or
/// fault-injected destination can throw dd::ResourceExhausted mid-import;
/// partially built nodes are unrooted and reclaimed by the next collection.
[[nodiscard]] VEdge importDD(Package& dst, const FlatVectorDD& flat);
[[nodiscard]] MEdge importDD(Package& dst, const FlatMatrixDD& flat);

/// FNV-1a over a byte range — the integrity checksum of the serialized
/// migration format (and of the checkpoint / cache-spill formats built on
/// top of it). Stable, platform-independent, not cryptographic: it detects
/// truncation and bit flips, not adversaries. Pass a previous result as
/// \p seed to chain the hash over discontiguous ranges.
[[nodiscard]] std::uint64_t fnv1a(
    const std::uint8_t* data, std::size_t size,
    std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

/// Byte-level wire format of a FlatDD, for checkpoints, disk spill and
/// (eventually) cross-process shipping. Layout: a fixed header — magic,
/// format version, arity, qubit count, node count, payload length, FNV-1a
/// checksum over the entire blob (checksum field zeroed) — followed by the
/// payload (root edge, then the nodes in
/// their children-before-parents order). Numbers are little-endian,
/// weights are IEEE-754 doubles by bit pattern, so a blob re-imports
/// bit-identically on any supported host.
[[nodiscard]] std::vector<std::uint8_t> serializeDD(const FlatVectorDD& flat);
[[nodiscard]] std::vector<std::uint8_t> serializeDD(const FlatMatrixDD& flat);

/// Decode a serialized flat DD. Throws MigrationError on a truncated
/// buffer, bad magic, unsupported version, arity mismatch, payload-length
/// mismatch or checksum failure — a corrupted blob is rejected before any
/// FlatDD structure is built (and importDD re-validates the structure
/// itself, so even a forged checksum cannot cause undefined
/// reconstruction).
[[nodiscard]] FlatVectorDD deserializeVectorDD(const std::uint8_t* data,
                                               std::size_t size);
[[nodiscard]] FlatMatrixDD deserializeMatrixDD(const std::uint8_t* data,
                                               std::size_t size);
[[nodiscard]] FlatVectorDD deserializeVectorDD(
    const std::vector<std::uint8_t>& bytes);
[[nodiscard]] FlatMatrixDD deserializeMatrixDD(
    const std::vector<std::uint8_t>& bytes);

}  // namespace ddsim::dd
