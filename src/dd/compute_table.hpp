/// \file compute_table.hpp
/// \brief Set-associative operation caches with generation-tagged entries.
///
/// Re-occurring sub-products/sub-sums only have to be computed once — this
/// memoization is what makes the recursive DD operations of Figs. 3 and 4
/// of the paper polynomial in the *DD size* rather than the vector size.
///
/// Two properties matter for the constant factor:
///
///  * **Associativity.** A direct-mapped table drops a still-hot entry on
///    every index collision. Each table here is 4-way set-associative with
///    round-robin replacement, which keeps conflicting hot entries alive.
///
///  * **GC survival.** Garbage collection does not iterate the table;
///    instead `newGeneration()` bumps a 64-bit generation counter in O(1),
///    which logically invalidates every entry at once. A *stale* entry
///    (older generation) whose key still matches is not discarded outright:
///    the caller-supplied revalidator checks — via the incarnation counters
///    on nodes (Node::id) and canonical weights (ComplexTable::incarnation)
///    — whether all operands and the result survived the collection. If so,
///    the entry is re-tagged with the current generation and the memoized
///    result is reused ("GC retention"); otherwise the entry dies. This is
///    sound even when the memory manager recycles a freed node into a new
///    one at the same address, because recycling changes the incarnation.
///
/// Concurrency: in concurrent mode each set is guarded by one of a fixed
/// pool of stripe mutexes (set index modulo pool size); insert and lookup
/// take the stripe lock for the duration of the probe, so entries are never
/// torn. The generation counter stays a plain integer — it only changes at
/// quiescent points (GC, clear), never while parallel operations are in
/// flight. Serial mode takes no locks.
///
/// Counter semantics (see also CacheStats): `hits()` counts lookups served
/// from the table (including revalidated stale entries), `misses()` counts
/// every unsuccessful lookup — including lookups that are never followed by
/// an insert() because the surrounding operation aborted; an entry is not
/// required to materialize for the miss to have happened.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace ddsim::dd {

namespace detail {
inline void hashMix(std::uint64_t& h, const void* p) noexcept {
  h ^= reinterpret_cast<std::uintptr_t>(p);
  h *= 0x100000001b3ULL;
  h ^= h >> 32;
}

/// Stripe-mutex pool shared by the compute-table templates. try_lock-first
/// so contention is observable (lockWaits) without a timing probe.
template <std::size_t N>
class StripeLocks {
 public:
  std::mutex& acquire(std::size_t index,
                      std::atomic<std::uint64_t>& waits) noexcept {
    std::mutex& m = locks_[index & (N - 1)];
    if (!m.try_lock()) {
      waits.fetch_add(1, std::memory_order_relaxed);
      m.lock();
    }
    return m;
  }

 private:
  std::array<std::mutex, N> locks_;
};
}  // namespace detail

/// Aggregate hit/miss/retention counters of one table, exposed to
/// Package::cacheStats(). 64-bit so week-long runs cannot wrap them.
struct ComputeTableCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Stale entries revalidated across a GC (subset of hits).
  std::uint64_t retained = 0;
  /// Stale entries whose operands/result died in a GC.
  std::uint64_t staleDropped = 0;
  /// Concurrent probes that found their stripe lock already held.
  std::uint64_t lockWaits = 0;
};

/// Cache for binary DD operations. Keys are two edges (node and weight are
/// canonical pointers, so equality is exact); the value is caller-defined —
/// typically a node pointer plus the result's top weight *by value* (see
/// Package::CachedVEdge), so that a retained entry does not depend on the
/// liveness of a canonical weight pointer.
template <typename LEdge, typename REdge, typename Result,
          std::size_t NumEntries = (1U << 17)>
class ComputeTable {
  static_assert((NumEntries & (NumEntries - 1)) == 0,
                "table size must be a power of two");

 public:
  static constexpr std::size_t kWays = 4;
  static constexpr std::size_t kNumSets = NumEntries / kWays;
  static constexpr std::size_t kStripes = 64;

  struct Entry {
    LEdge a{};
    REdge b{};
    Result result{};
    /// Incarnation stamp over every pointer the entry references, computed
    /// by the caller at insert time (Package::opStamp).
    std::uint64_t stamp = 0;
    /// Generation tag; 0 = empty. Valid iff equal to the table generation.
    std::uint64_t gen = 0;
  };

  ComputeTable() : table_(NumEntries) {}

  /// Toggle striped locking. Only flip at quiescent points.
  void setConcurrent(bool on) noexcept { concurrent_ = on; }

  void insert(const LEdge& a, const REdge& b, const Result& r,
              std::uint64_t stamp) noexcept {
    const std::size_t set = setIndex(a, b);
    if (!concurrent_) {
      insertIn(set, a, b, r, stamp);
      return;
    }
    std::mutex& m = stripes_.acquire(set, lockWaits_);
    const std::lock_guard<std::mutex> lock(m, std::adopt_lock);
    insertIn(set, a, b, r, stamp);
  }

  /// On a hit the cached result is copied into \p out and true is returned
  /// (returning a pointer would dangle once the stripe lock is released).
  /// \p revalidate is only invoked for key-matching entries from an older
  /// generation; it must return true iff the entry's stamp still matches
  /// the current incarnations of everything it references.
  template <typename Revalidate>
  bool lookup(const LEdge& a, const REdge& b, Result& out,
              Revalidate&& revalidate) noexcept {
    const std::size_t set = setIndex(a, b);
    if (!concurrent_) {
      return lookupIn(set, a, b, out, revalidate);
    }
    std::mutex& m = stripes_.acquire(set, lockWaits_);
    const std::lock_guard<std::mutex> lock(m, std::adopt_lock);
    return lookupIn(set, a, b, out, revalidate);
  }

  /// O(1) whole-table invalidation: entries become stale and individually
  /// eligible for revalidation on their next lookup. Quiescent points only.
  void newGeneration() noexcept { ++gen_; }

  /// Hard reset (tests / explicit cache flush): discards every entry with
  /// no chance of revalidation. Quiescent points only.
  void clear() noexcept {
    for (auto& entry : table_) {
      entry.gen = 0;
    }
    gen_ = 1;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] ComputeTableCounters counters() const noexcept {
    return ComputeTableCounters{
        hits_.load(std::memory_order_relaxed),
        misses_.load(std::memory_order_relaxed),
        retained_.load(std::memory_order_relaxed),
        staleDropped_.load(std::memory_order_relaxed),
        lockWaits_.load(std::memory_order_relaxed)};
  }

 private:
  static std::size_t setIndex(const LEdge& a, const REdge& b) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    detail::hashMix(h, a.p);
    detail::hashMix(h, a.w);
    detail::hashMix(h, b.p);
    detail::hashMix(h, b.w);
    return static_cast<std::size_t>(h) & (kNumSets - 1);
  }

  void insertIn(std::size_t setIdx, const LEdge& a, const REdge& b,
                const Result& r, std::uint64_t stamp) noexcept {
    Entry* set = &table_[setIdx * kWays];
    Entry* victim = nullptr;
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = set[w];
      if (e.gen != gen_) {
        // Empty or stale way: preferred victim (stale entries that still
        // mattered would have been revalidated by a lookup before the
        // recomputation that leads to this insert).
        if (victim == nullptr) {
          victim = &e;
        }
        continue;
      }
      if (e.a == a && e.b == b) {
        victim = &e;  // refresh an existing entry in place
        break;
      }
    }
    if (victim == nullptr) {
      victim =
          &set[roundRobin_.fetch_add(1, std::memory_order_relaxed) &
               (kWays - 1)];
    }
    *victim = Entry{a, b, r, stamp, gen_};
  }

  template <typename Revalidate>
  bool lookupIn(std::size_t setIdx, const LEdge& a, const REdge& b,
                Result& out, Revalidate&& revalidate) noexcept {
    Entry* set = &table_[setIdx * kWays];
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = set[w];
      if (e.a == a && e.b == b && e.gen != 0) [[likely]] {
        if (e.gen == gen_) [[likely]] {
          hits_.fetch_add(1, std::memory_order_relaxed);
          out = e.result;
          return true;
        }
        if (revalidate(e)) {
          e.gen = gen_;
          retained_.fetch_add(1, std::memory_order_relaxed);
          hits_.fetch_add(1, std::memory_order_relaxed);
          out = e.result;
          return true;
        }
        e.gen = 0;
        staleDropped_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Heap storage: a Package aggregates several of these tables, and stack
  // allocation of multi-megabyte members would overflow the stack.
  std::vector<Entry> table_;
  std::uint64_t gen_ = 1;
  std::atomic<std::uint32_t> roundRobin_{0};
  bool concurrent_ = false;
  detail::StripeLocks<kStripes> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> retained_{0};
  std::atomic<std::uint64_t> staleDropped_{0};
  std::atomic<std::uint64_t> lockWaits_{0};
};

/// Cache for unary DD operations (conjugate-transpose, norm, ...). Same
/// associativity, generation-tag, and striping protocol as ComputeTable.
template <typename ArgEdge, typename Result, std::size_t NumEntries = (1U << 15)>
class UnaryComputeTable {
  static_assert((NumEntries & (NumEntries - 1)) == 0,
                "table size must be a power of two");

 public:
  static constexpr std::size_t kWays = 4;
  static constexpr std::size_t kNumSets = NumEntries / kWays;
  static constexpr std::size_t kStripes = 64;

  struct Entry {
    ArgEdge a{};
    Result result{};
    std::uint64_t stamp = 0;
    std::uint64_t gen = 0;
  };

  UnaryComputeTable() : table_(NumEntries) {}

  /// Toggle striped locking. Only flip at quiescent points.
  void setConcurrent(bool on) noexcept { concurrent_ = on; }

  void insert(const ArgEdge& a, const Result& r, std::uint64_t stamp) noexcept {
    const std::size_t set = setIndex(a);
    if (!concurrent_) {
      insertIn(set, a, r, stamp);
      return;
    }
    std::mutex& m = stripes_.acquire(set, lockWaits_);
    const std::lock_guard<std::mutex> lock(m, std::adopt_lock);
    insertIn(set, a, r, stamp);
  }

  template <typename Revalidate>
  bool lookup(const ArgEdge& a, Result& out, Revalidate&& revalidate) noexcept {
    const std::size_t set = setIndex(a);
    if (!concurrent_) {
      return lookupIn(set, a, out, revalidate);
    }
    std::mutex& m = stripes_.acquire(set, lockWaits_);
    const std::lock_guard<std::mutex> lock(m, std::adopt_lock);
    return lookupIn(set, a, out, revalidate);
  }

  void newGeneration() noexcept { ++gen_; }

  void clear() noexcept {
    for (auto& entry : table_) {
      entry.gen = 0;
    }
    gen_ = 1;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] ComputeTableCounters counters() const noexcept {
    return ComputeTableCounters{
        hits_.load(std::memory_order_relaxed),
        misses_.load(std::memory_order_relaxed),
        retained_.load(std::memory_order_relaxed),
        staleDropped_.load(std::memory_order_relaxed),
        lockWaits_.load(std::memory_order_relaxed)};
  }

 private:
  static std::size_t setIndex(const ArgEdge& a) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    detail::hashMix(h, a.p);
    detail::hashMix(h, a.w);
    return static_cast<std::size_t>(h) & (kNumSets - 1);
  }

  void insertIn(std::size_t setIdx, const ArgEdge& a, const Result& r,
                std::uint64_t stamp) noexcept {
    Entry* set = &table_[setIdx * kWays];
    Entry* victim = nullptr;
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = set[w];
      if (e.gen != gen_) {
        if (victim == nullptr) {
          victim = &e;
        }
        continue;
      }
      if (e.a == a) {
        victim = &e;
        break;
      }
    }
    if (victim == nullptr) {
      victim =
          &set[roundRobin_.fetch_add(1, std::memory_order_relaxed) &
               (kWays - 1)];
    }
    *victim = Entry{a, r, stamp, gen_};
  }

  template <typename Revalidate>
  bool lookupIn(std::size_t setIdx, const ArgEdge& a, Result& out,
                Revalidate&& revalidate) noexcept {
    Entry* set = &table_[setIdx * kWays];
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = set[w];
      if (e.a == a && e.gen != 0) [[likely]] {
        if (e.gen == gen_) [[likely]] {
          hits_.fetch_add(1, std::memory_order_relaxed);
          out = e.result;
          return true;
        }
        if (revalidate(e)) {
          e.gen = gen_;
          retained_.fetch_add(1, std::memory_order_relaxed);
          hits_.fetch_add(1, std::memory_order_relaxed);
          out = e.result;
          return true;
        }
        e.gen = 0;
        staleDropped_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::vector<Entry> table_;
  std::uint64_t gen_ = 1;
  std::atomic<std::uint32_t> roundRobin_{0};
  bool concurrent_ = false;
  detail::StripeLocks<kStripes> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> retained_{0};
  std::atomic<std::uint64_t> staleDropped_{0};
  std::atomic<std::uint64_t> lockWaits_{0};
};

}  // namespace ddsim::dd
