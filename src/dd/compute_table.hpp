/// \file compute_table.hpp
/// \brief Fixed-size direct-mapped operation caches.
///
/// Re-occurring sub-products/sub-sums only have to be computed once — this
/// memoization is what makes the recursive DD operations of Figs. 3 and 4
/// of the paper polynomial in the *DD size* rather than the vector size.
/// A direct-mapped table (overwrite on collision) keeps lookup O(1) without
/// any invalidation machinery; it is flushed on garbage collection because
/// cached entries do not hold references.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ddsim::dd {

namespace detail {
inline void hashMix(std::uint64_t& h, const void* p) noexcept {
  h ^= reinterpret_cast<std::uintptr_t>(p);
  h *= 0x100000001b3ULL;
  h ^= h >> 32;
}
}  // namespace detail

/// Cache for binary DD operations. Keys are two edges (node and weight are
/// canonical pointers, so equality is exact); the value is a result edge.
template <typename LEdge, typename REdge, typename ResultEdge,
          std::size_t NumEntries = (1U << 17)>
class ComputeTable {
  static_assert((NumEntries & (NumEntries - 1)) == 0,
                "table size must be a power of two");

 public:
  ComputeTable() : table_(NumEntries) {}

  void insert(const LEdge& a, const REdge& b, const ResultEdge& r) noexcept {
    auto& entry = table_[slot(a, b)];
    entry.a = a;
    entry.b = b;
    entry.result = r;
    entry.valid = true;
  }

  /// Returns nullptr on miss; a pointer to the cached result on hit.
  const ResultEdge* lookup(const LEdge& a, const REdge& b) noexcept {
    auto& entry = table_[slot(a, b)];
    if (entry.valid && entry.a == a && entry.b == b) {
      ++hits_;
      return &entry.result;
    }
    ++misses_;
    return nullptr;
  }

  void clear() noexcept {
    for (auto& entry : table_) {
      entry.valid = false;
    }
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    LEdge a{};
    REdge b{};
    ResultEdge result{};
    bool valid = false;
  };

  static std::size_t slot(const LEdge& a, const REdge& b) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    detail::hashMix(h, a.p);
    detail::hashMix(h, a.w);
    detail::hashMix(h, b.p);
    detail::hashMix(h, b.w);
    return static_cast<std::size_t>(h) & (NumEntries - 1);
  }

  // Heap storage: a Package aggregates several of these tables, and stack
  // allocation of multi-megabyte members would overflow the stack.
  std::vector<Entry> table_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Cache for unary DD operations (conjugate-transpose, norm, ...).
template <typename ArgEdge, typename ResultEdge, std::size_t NumEntries = (1U << 15)>
class UnaryComputeTable {
  static_assert((NumEntries & (NumEntries - 1)) == 0,
                "table size must be a power of two");

 public:
  UnaryComputeTable() : table_(NumEntries) {}

  void insert(const ArgEdge& a, const ResultEdge& r) noexcept {
    auto& entry = table_[slot(a)];
    entry.a = a;
    entry.result = r;
    entry.valid = true;
  }

  const ResultEdge* lookup(const ArgEdge& a) noexcept {
    auto& entry = table_[slot(a)];
    if (entry.valid && entry.a == a) {
      ++hits_;
      return &entry.result;
    }
    ++misses_;
    return nullptr;
  }

  void clear() noexcept {
    for (auto& entry : table_) {
      entry.valid = false;
    }
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    ArgEdge a{};
    ResultEdge result{};
    bool valid = false;
  };

  static std::size_t slot(const ArgEdge& a) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    detail::hashMix(h, a.p);
    detail::hashMix(h, a.w);
    return static_cast<std::size_t>(h) & (NumEntries - 1);
  }

  std::vector<Entry> table_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ddsim::dd
