/// \file compute_table.hpp
/// \brief Set-associative operation caches with generation-tagged entries.
///
/// Re-occurring sub-products/sub-sums only have to be computed once — this
/// memoization is what makes the recursive DD operations of Figs. 3 and 4
/// of the paper polynomial in the *DD size* rather than the vector size.
///
/// Two properties matter for the constant factor:
///
///  * **Associativity.** A direct-mapped table drops a still-hot entry on
///    every index collision. Each table here is 4-way set-associative with
///    round-robin replacement, which keeps conflicting hot entries alive.
///
///  * **GC survival.** Garbage collection does not iterate the table;
///    instead `newGeneration()` bumps a 64-bit generation counter in O(1),
///    which logically invalidates every entry at once. A *stale* entry
///    (older generation) whose key still matches is not discarded outright:
///    the caller-supplied revalidator checks — via the incarnation counters
///    on nodes (Node::id) and canonical weights (ComplexTable::incarnation)
///    — whether all operands and the result survived the collection. If so,
///    the entry is re-tagged with the current generation and the memoized
///    result is reused ("GC retention"); otherwise the entry dies. This is
///    sound even when the memory manager recycles a freed node into a new
///    one at the same address, because recycling changes the incarnation.
///
/// Counter semantics (see also CacheStats): `hits()` counts lookups served
/// from the table (including revalidated stale entries), `misses()` counts
/// every unsuccessful lookup — including lookups that are never followed by
/// an insert() because the surrounding operation aborted; an entry is not
/// required to materialize for the miss to have happened.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ddsim::dd {

namespace detail {
inline void hashMix(std::uint64_t& h, const void* p) noexcept {
  h ^= reinterpret_cast<std::uintptr_t>(p);
  h *= 0x100000001b3ULL;
  h ^= h >> 32;
}
}  // namespace detail

/// Aggregate hit/miss/retention counters of one table, exposed to
/// Package::cacheStats(). 64-bit so week-long runs cannot wrap them.
struct ComputeTableCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Stale entries revalidated across a GC (subset of hits).
  std::uint64_t retained = 0;
  /// Stale entries whose operands/result died in a GC.
  std::uint64_t staleDropped = 0;
};

/// Cache for binary DD operations. Keys are two edges (node and weight are
/// canonical pointers, so equality is exact); the value is caller-defined —
/// typically a node pointer plus the result's top weight *by value* (see
/// Package::CachedVEdge), so that a retained entry does not depend on the
/// liveness of a canonical weight pointer.
template <typename LEdge, typename REdge, typename Result,
          std::size_t NumEntries = (1U << 17)>
class ComputeTable {
  static_assert((NumEntries & (NumEntries - 1)) == 0,
                "table size must be a power of two");

 public:
  static constexpr std::size_t kWays = 4;
  static constexpr std::size_t kNumSets = NumEntries / kWays;

  struct Entry {
    LEdge a{};
    REdge b{};
    Result result{};
    /// Incarnation stamp over every pointer the entry references, computed
    /// by the caller at insert time (Package::opStamp).
    std::uint64_t stamp = 0;
    /// Generation tag; 0 = empty. Valid iff equal to the table generation.
    std::uint64_t gen = 0;
  };

  ComputeTable() : table_(NumEntries) {}

  void insert(const LEdge& a, const REdge& b, const Result& r,
              std::uint64_t stamp) noexcept {
    Entry* set = &table_[setIndex(a, b) * kWays];
    Entry* victim = nullptr;
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = set[w];
      if (e.gen != gen_) {
        // Empty or stale way: preferred victim (stale entries that still
        // mattered would have been revalidated by a lookup before the
        // recomputation that leads to this insert).
        if (victim == nullptr) {
          victim = &e;
        }
        continue;
      }
      if (e.a == a && e.b == b) {
        victim = &e;  // refresh an existing entry in place
        break;
      }
    }
    if (victim == nullptr) {
      victim = &set[roundRobin_++ & (kWays - 1)];
    }
    *victim = Entry{a, b, r, stamp, gen_};
  }

  /// Returns nullptr on miss; a pointer to the cached result on hit.
  /// \p revalidate is only invoked for key-matching entries from an older
  /// generation; it must return true iff the entry's stamp still matches
  /// the current incarnations of everything it references.
  template <typename Revalidate>
  const Result* lookup(const LEdge& a, const REdge& b,
                       Revalidate&& revalidate) noexcept {
    Entry* set = &table_[setIndex(a, b) * kWays];
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = set[w];
      if (e.a == a && e.b == b && e.gen != 0) [[likely]] {
        if (e.gen == gen_) [[likely]] {
          ++counters_.hits;
          return &e.result;
        }
        if (revalidate(e)) {
          e.gen = gen_;
          ++counters_.retained;
          ++counters_.hits;
          return &e.result;
        }
        e.gen = 0;
        ++counters_.staleDropped;
        ++counters_.misses;
        return nullptr;
      }
    }
    ++counters_.misses;
    return nullptr;
  }

  /// O(1) whole-table invalidation: entries become stale and individually
  /// eligible for revalidation on their next lookup.
  void newGeneration() noexcept { ++gen_; }

  /// Hard reset (tests / explicit cache flush): discards every entry with
  /// no chance of revalidation.
  void clear() noexcept {
    for (auto& entry : table_) {
      entry.gen = 0;
    }
    gen_ = 1;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return counters_.hits; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return counters_.misses; }
  [[nodiscard]] const ComputeTableCounters& counters() const noexcept {
    return counters_;
  }

 private:
  static std::size_t setIndex(const LEdge& a, const REdge& b) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    detail::hashMix(h, a.p);
    detail::hashMix(h, a.w);
    detail::hashMix(h, b.p);
    detail::hashMix(h, b.w);
    return static_cast<std::size_t>(h) & (kNumSets - 1);
  }

  // Heap storage: a Package aggregates several of these tables, and stack
  // allocation of multi-megabyte members would overflow the stack.
  std::vector<Entry> table_;
  std::uint64_t gen_ = 1;
  std::uint32_t roundRobin_ = 0;
  ComputeTableCounters counters_;
};

/// Cache for unary DD operations (conjugate-transpose, norm, ...). Same
/// associativity and generation-tag protocol as ComputeTable.
template <typename ArgEdge, typename Result, std::size_t NumEntries = (1U << 15)>
class UnaryComputeTable {
  static_assert((NumEntries & (NumEntries - 1)) == 0,
                "table size must be a power of two");

 public:
  static constexpr std::size_t kWays = 4;
  static constexpr std::size_t kNumSets = NumEntries / kWays;

  struct Entry {
    ArgEdge a{};
    Result result{};
    std::uint64_t stamp = 0;
    std::uint64_t gen = 0;
  };

  UnaryComputeTable() : table_(NumEntries) {}

  void insert(const ArgEdge& a, const Result& r, std::uint64_t stamp) noexcept {
    Entry* set = &table_[setIndex(a) * kWays];
    Entry* victim = nullptr;
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = set[w];
      if (e.gen != gen_) {
        if (victim == nullptr) {
          victim = &e;
        }
        continue;
      }
      if (e.a == a) {
        victim = &e;
        break;
      }
    }
    if (victim == nullptr) {
      victim = &set[roundRobin_++ & (kWays - 1)];
    }
    *victim = Entry{a, r, stamp, gen_};
  }

  template <typename Revalidate>
  const Result* lookup(const ArgEdge& a, Revalidate&& revalidate) noexcept {
    Entry* set = &table_[setIndex(a) * kWays];
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = set[w];
      if (e.a == a && e.gen != 0) [[likely]] {
        if (e.gen == gen_) [[likely]] {
          ++counters_.hits;
          return &e.result;
        }
        if (revalidate(e)) {
          e.gen = gen_;
          ++counters_.retained;
          ++counters_.hits;
          return &e.result;
        }
        e.gen = 0;
        ++counters_.staleDropped;
        ++counters_.misses;
        return nullptr;
      }
    }
    ++counters_.misses;
    return nullptr;
  }

  void newGeneration() noexcept { ++gen_; }

  void clear() noexcept {
    for (auto& entry : table_) {
      entry.gen = 0;
    }
    gen_ = 1;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return counters_.hits; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return counters_.misses; }
  [[nodiscard]] const ComputeTableCounters& counters() const noexcept {
    return counters_;
  }

 private:
  static std::size_t setIndex(const ArgEdge& a) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    detail::hashMix(h, a.p);
    detail::hashMix(h, a.w);
    return static_cast<std::size_t>(h) & (kNumSets - 1);
  }

  std::vector<Entry> table_;
  std::uint64_t gen_ = 1;
  std::uint32_t roundRobin_ = 0;
  ComputeTableCounters counters_;
};

}  // namespace ddsim::dd
