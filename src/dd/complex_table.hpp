/// \file complex_table.hpp
/// \brief Canonicalization table for complex edge weights.
///
/// Every edge weight used by the DD package is a pointer to an entry owned
/// by this table. lookup() maps a plain ComplexValue to its canonical entry:
/// values that agree within tolerance share a single pointer. This turns
/// node equality/hashing into exact pointer comparison, which is what makes
/// the unique tables and compute tables of the package sound in the presence
/// of floating-point rounding (machine-accuracy handling per [21]).
///
/// Implementation: entries are bucketed on a 2D grid whose cell size equals
/// the tolerance; a lookup inspects the 3x3 neighbourhood of the target cell
/// so that near-boundary values still find their canonical representative.
///
/// Long simulations create millions of transient weights, so the table is
/// garbage-collected together with the node tables: entries referenced by a
/// live node, pinned as a root weight (incRef/decRef — used by
/// Package::incRef for the top weight of rooted edges), or equal to the
/// 0/1 constants survive; everything else is recycled through a free list.
///
/// Concurrency: the grid is split into a fixed number of shards (cell key
/// modulo shard count), each owning its own bucket map and mutex. A lookup
/// probes the home cell under its shard lock, then each candidate neighbour
/// cell under *its* shard lock; only on a complete miss does it lock every
/// involved shard (deduplicated, in index order — no deadlock) and re-probe
/// before inserting, so two threads racing to canonicalize values within
/// tolerance of each other are forced through overlapping lock sets and one
/// of them finds the other's entry. Entry allocation nests a dedicated
/// allocator mutex inside the shard locks. Serial mode takes no locks.
/// incRef/decRef/garbageCollect/size are quiescent-point-only operations.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dd/complex_value.hpp"

namespace ddsim::dd {

/// Canonical complex weight: an immutable pointer into a ComplexTable.
using CWeight = const ComplexValue*;

class ComplexTable {
 public:
  explicit ComplexTable(double tolerance = kTolerance);

  ComplexTable(const ComplexTable&) = delete;
  ComplexTable& operator=(const ComplexTable&) = delete;

  /// Toggle shard locking. Only flip at quiescent points.
  void setConcurrent(bool on) noexcept { concurrent_ = on; }

  /// Canonical pointer for the given value. Returns the shared zero/one
  /// entries for values within tolerance of 0 and 1 respectively.
  CWeight lookup(ComplexValue v);
  CWeight lookup(double r, double i) { return lookup(ComplexValue{r, i}); }

  /// Shared canonical constants.
  [[nodiscard]] CWeight zero() const noexcept { return &zero_; }
  [[nodiscard]] CWeight one() const noexcept { return &one_; }

  /// Pin/unpin a weight as the top weight of a rooted edge. The constants
  /// are permanently pinned; calls on them are no-ops.
  void incRef(CWeight w) noexcept;
  void decRef(CWeight w) noexcept;

  /// Drop every entry that is neither in \p live, nor root-pinned, nor a
  /// constant. Freed entries are recycled by later lookups. Returns the
  /// number of collected entries. Any un-rooted CWeight held by a caller is
  /// dangling afterwards (same contract as node GC).
  std::size_t garbageCollect(const std::unordered_set<CWeight>& live);

  [[nodiscard]] double tolerance() const noexcept { return tol_; }

  /// Incarnation counter of the entry behind \p w: bumped every time the
  /// entry is recycled by garbageCollect(). The shared 0/1 constants are
  /// never recycled and report a fixed incarnation. Compute-table entries
  /// that survive a GC use this to detect weight-pointer reuse (the same
  /// mechanism as Node::id for node pointers).
  [[nodiscard]] std::uint64_t incarnation(CWeight w) const noexcept {
    if (w == &zero_ || w == &one_) {
      return 0;
    }
    return asEntry(w)->id;
  }

  /// Number of live canonical entries (the two constants included).
  /// Quiescent points only.
  [[nodiscard]] std::size_t size() const noexcept {
    return entries_.size() - freeList_.size() + 2;
  }

  /// Lookup statistics (for instrumentation and tests).
  [[nodiscard]] std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Times a concurrent probe found a shard lock already held.
  [[nodiscard]] std::size_t lockWaits() const noexcept {
    return lockWaits_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kShards = 64;

 private:
  struct Entry {
    ComplexValue v;
    std::uint32_t rootRef = 0;
    /// Incarnation counter for this entry address (see incarnation()).
    std::uint64_t id = 0;
  };

  /// One slice of the cell grid: cells whose key maps here by modulo.
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<CWeight>> buckets;
  };

  static const Entry* asEntry(CWeight w) noexcept {
    // Every non-constant CWeight handed out by lookup() points at the `v`
    // member (first member, standard layout) of an Entry.
    return reinterpret_cast<const Entry*>(w);
  }

  [[nodiscard]] std::int64_t cellOf(double x) const noexcept;
  static std::uint64_t cellKey(std::int64_t cr, std::int64_t ci) noexcept;
  static std::size_t shardOf(std::uint64_t key) noexcept {
    return static_cast<std::size_t>(key) & (kShards - 1);
  }

  /// Find v in cell \p key (shard already locked by the caller when
  /// concurrent).
  CWeight probeCell(std::uint64_t key, const ComplexValue& v) const;
  /// Allocate (or recycle) an entry for v and link it into cell \p key.
  CWeight insertEntry(std::uint64_t key, const ComplexValue& v);

  double tol_;
  double cell_;  ///< grid cell size (2 * tolerance)
  ComplexValue zero_{0.0, 0.0};
  ComplexValue one_{1.0, 0.0};
  std::deque<Entry> entries_;  ///< deque: stable addresses
  std::vector<Entry*> freeList_;
  std::array<Shard, kShards> shards_;
  std::mutex allocMutex_;  ///< guards entries_/freeList_ (nested in shards)
  bool concurrent_ = false;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> lockWaits_{0};
};

}  // namespace ddsim::dd
