/// \file complex_table.hpp
/// \brief Canonicalization table for complex edge weights.
///
/// Every edge weight used by the DD package is a pointer to an entry owned
/// by this table. lookup() maps a plain ComplexValue to its canonical entry:
/// values that agree within tolerance share a single pointer. This turns
/// node equality/hashing into exact pointer comparison, which is what makes
/// the unique tables and compute tables of the package sound in the presence
/// of floating-point rounding (machine-accuracy handling per [21]).
///
/// Implementation: entries are bucketed on a 2D grid whose cell size equals
/// the tolerance; a lookup inspects the 3x3 neighbourhood of the target cell
/// so that near-boundary values still find their canonical representative.
///
/// Long simulations create millions of transient weights, so the table is
/// garbage-collected together with the node tables: entries referenced by a
/// live node, pinned as a root weight (incRef/decRef — used by
/// Package::incRef for the top weight of rooted edges), or equal to the
/// 0/1 constants survive; everything else is recycled through a free list.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dd/complex_value.hpp"

namespace ddsim::dd {

/// Canonical complex weight: an immutable pointer into a ComplexTable.
using CWeight = const ComplexValue*;

class ComplexTable {
 public:
  explicit ComplexTable(double tolerance = kTolerance);

  ComplexTable(const ComplexTable&) = delete;
  ComplexTable& operator=(const ComplexTable&) = delete;

  /// Canonical pointer for the given value. Returns the shared zero/one
  /// entries for values within tolerance of 0 and 1 respectively.
  CWeight lookup(ComplexValue v);
  CWeight lookup(double r, double i) { return lookup(ComplexValue{r, i}); }

  /// Shared canonical constants.
  [[nodiscard]] CWeight zero() const noexcept { return &zero_; }
  [[nodiscard]] CWeight one() const noexcept { return &one_; }

  /// Pin/unpin a weight as the top weight of a rooted edge. The constants
  /// are permanently pinned; calls on them are no-ops.
  void incRef(CWeight w) noexcept;
  void decRef(CWeight w) noexcept;

  /// Drop every entry that is neither in \p live, nor root-pinned, nor a
  /// constant. Freed entries are recycled by later lookups. Returns the
  /// number of collected entries. Any un-rooted CWeight held by a caller is
  /// dangling afterwards (same contract as node GC).
  std::size_t garbageCollect(const std::unordered_set<CWeight>& live);

  [[nodiscard]] double tolerance() const noexcept { return tol_; }

  /// Incarnation counter of the entry behind \p w: bumped every time the
  /// entry is recycled by garbageCollect(). The shared 0/1 constants are
  /// never recycled and report a fixed incarnation. Compute-table entries
  /// that survive a GC use this to detect weight-pointer reuse (the same
  /// mechanism as Node::id for node pointers).
  [[nodiscard]] std::uint64_t incarnation(CWeight w) const noexcept {
    if (w == &zero_ || w == &one_) {
      return 0;
    }
    return asEntry(w)->id;
  }

  /// Number of live canonical entries (the two constants included).
  [[nodiscard]] std::size_t size() const noexcept {
    return entries_.size() - freeList_.size() + 2;
  }

  /// Lookup statistics (for instrumentation and tests).
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    ComplexValue v;
    std::uint32_t rootRef = 0;
    /// Incarnation counter for this entry address (see incarnation()).
    std::uint64_t id = 0;
  };

  static const Entry* asEntry(CWeight w) noexcept {
    // Every non-constant CWeight handed out by lookup() points at the `v`
    // member (first member, standard layout) of an Entry.
    return reinterpret_cast<const Entry*>(w);
  }

  [[nodiscard]] std::int64_t cellOf(double x) const noexcept;
  static std::uint64_t cellKey(std::int64_t cr, std::int64_t ci) noexcept;

  double tol_;
  double cell_;  ///< grid cell size (2 * tolerance)
  ComplexValue zero_{0.0, 0.0};
  ComplexValue one_{1.0, 0.0};
  std::deque<Entry> entries_;  ///< deque: stable addresses
  std::vector<Entry*> freeList_;
  std::unordered_map<std::uint64_t, std::vector<CWeight>> buckets_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ddsim::dd
