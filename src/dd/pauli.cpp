#include "dd/pauli.hpp"

#include <cctype>
#include <stdexcept>

namespace ddsim::dd {

namespace {
GateMatrix pauliMatrix(char p) {
  switch (p) {
    case 'I':
      return {ComplexValue{1, 0}, {0, 0}, {0, 0}, {1, 0}};
    case 'X':
      return {ComplexValue{0, 0}, {1, 0}, {1, 0}, {0, 0}};
    case 'Y':
      return {ComplexValue{0, 0}, {0, -1}, {0, 1}, {0, 0}};
    case 'Z':
      return {ComplexValue{1, 0}, {0, 0}, {0, 0}, {-1, 0}};
    default:
      throw std::invalid_argument(std::string("invalid Pauli character '") + p +
                                  "'");
  }
}
}  // namespace

MEdge makePauliStringDD(Package& pkg, const std::string& pauli) {
  if (pauli.size() != pkg.qubits()) {
    throw std::invalid_argument("Pauli string length must equal qubit count");
  }
  // Single-qubit factors act on disjoint qubits, so the product of their
  // identity-padded DDs is exactly the tensor product.
  MEdge result = pkg.makeIdent();
  for (std::size_t i = 0; i < pauli.size(); ++i) {
    const char p =
        static_cast<char>(std::toupper(static_cast<unsigned char>(pauli[i])));
    if (p == 'I') {
      continue;
    }
    const auto target = static_cast<Qubit>(pauli.size() - 1 - i);
    result = pkg.multiply(pkg.makeGateDD(pauliMatrix(p), target), result);
  }
  return result;
}

ComplexValue pauliExpectation(Package& pkg, const std::string& pauli,
                              const VEdge& v) {
  return pkg.expectationValue(makePauliStringDD(pkg, pauli), v);
}

}  // namespace ddsim::dd
