#include "dd/task_pool.hpp"

#include <chrono>

namespace ddsim::dd {

TaskPool::TaskPool(std::size_t workers) {
  const std::size_t n = workers == 0 ? 1 : workers;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { workerMain(i); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(idleMutex_);
    stop_.store(true, std::memory_order_relaxed);
    idleCv_.notify_all();
  }
  for (auto& t : threads_) {
    t.join();
  }
}

void TaskPool::submit(TaskGroup& group, std::function<void()> fn) {
  group.pending_.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t home =
      nextQueue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    auto& q = *queues_[home];
    const std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(Task{std::move(fn), &group});
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Notify under the idle mutex so a worker between its predicate check
    // and its wait() cannot miss the wakeup.
    const std::lock_guard<std::mutex> lock(idleMutex_);
    idleCv_.notify_one();
  }
}

void TaskPool::wait(TaskGroup& group) {
  while (group.pending_.load(std::memory_order_acquire) != 0) {
    // Helping from index 0 is fine: stealing order only affects fairness.
    if (tryRunOne(0)) {
      continue;
    }
    // Nothing runnable — the group's remaining tasks are executing on other
    // threads. Sleep until the group drains (short timeout guards against
    // the benign race where the last task finished between the load above
    // and the wait below on a group whose notify we already consumed).
    std::unique_lock<std::mutex> lock(group.mutex_);
    group.cv_.wait_for(lock, std::chrono::microseconds(100), [&] {
      return group.pending_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr first;
  {
    const std::lock_guard<std::mutex> lock(group.mutex_);
    first = group.exception_;
    group.exception_ = nullptr;
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

void TaskPool::workerMain(std::size_t index) {
  for (;;) {
    if (tryRunOne(index)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(idleMutex_);
    idleCv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

bool TaskPool::tryRunOne(std::size_t homeIndex) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = (homeIndex + k) % n;
    Task task;
    {
      auto& q = *queues_[idx];
      const std::lock_guard<std::mutex> lock(q.mutex);
      if (q.tasks.empty()) {
        continue;
      }
      if (k == 0) {
        // Own queue: LIFO for locality.
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
      } else {
        // Steal: FIFO — take the oldest (usually largest) task.
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
      }
    }
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    execute(task);
    return true;
  }
  return false;
}

void TaskPool::execute(Task& task) {
  try {
    task.fn();
  } catch (...) {
    const std::lock_guard<std::mutex> lock(task.group->mutex_);
    if (!task.group->exception_) {
      task.group->exception_ = std::current_exception();
    }
  }
  if (task.group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(task.group->mutex_);
    task.group->cv_.notify_all();
  }
}

}  // namespace ddsim::dd
