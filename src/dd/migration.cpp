#include "dd/migration.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "dd/package.hpp"

namespace ddsim::dd {

namespace {

/// Post-order flattening: children are emitted before their parent, so the
/// parent's child indices are always valid when it is appended. Recursion
/// depth is bounded by the qubit count (<= 62), never by the node count.
template <std::size_t Arity>
std::int32_t exportNode(const Node<Arity>* p, FlatDD<Arity>& out,
                        std::unordered_map<const Node<Arity>*, std::int32_t>& index) {
  const auto it = index.find(p);
  if (it != index.end()) {
    return it->second;
  }
  FlatNode<Arity> fn;
  fn.v = p->v;
  for (std::size_t j = 0; j < Arity; ++j) {
    const Edge<Arity>& child = p->e[j];
    if (child.w->exactlyZero()) {
      // Normalization snaps near-zero quotients to the canonical zero
      // *after* the zero-stub pass, so a zero-weight edge can still point
      // at an internal node. The subtree is annihilated either way; emit
      // the canonical flat form (zero edge to the terminal).
      fn.children[j] = FlatEdge{};
      continue;
    }
    fn.children[j].w = *child.w;
    fn.children[j].node =
        child.p->isTerminal() ? kFlatTerminal : exportNode(child.p, out, index);
  }
  if (out.nodes.size() >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::length_error("exportDD: DD exceeds 2^31 nodes");
  }
  out.nodes.push_back(fn);
  const auto id = static_cast<std::int32_t>(out.nodes.size() - 1);
  index.emplace(p, id);
  return id;
}

template <std::size_t Arity>
FlatDD<Arity> exportImpl(const Package& src, const Edge<Arity>& root) {
  FlatDD<Arity> out;
  out.numQubits = src.qubits();
  if (root.p->isTerminal() || root.w->exactlyZero()) {
    out.root.w = root.w->exactlyZero() ? ComplexValue{} : *root.w;
    out.root.node = kFlatTerminal;
    return out;
  }
  out.root.w = *root.w;
  std::unordered_map<const Node<Arity>*, std::int32_t> index;
  out.root.node = exportNode(root.p, out, index);
  return out;
}

template <std::size_t Arity>
void validateFlat(const FlatDD<Arity>& flat, std::size_t dstQubits) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("importDD: " + what);
  };
  if (flat.numQubits == 0 || flat.numQubits > dstQubits) {
    fail("numQubits " + std::to_string(flat.numQubits) +
         " outside the destination package's range [1, " +
         std::to_string(dstQubits) + "]");
  }
  auto checkEdge = [&](const FlatEdge& e, Qubit parentLevel, std::size_t i,
                       bool isRoot) {
    if (e.node == kFlatTerminal) {
      // A terminal child mid-diagram is only the canonical zero; a weighted
      // terminal is legal at level 0 (and for a scalar root edge).
      if (!isRoot && parentLevel != 0 && !e.w.exactlyZero()) {
        fail("node " + std::to_string(i) + " at level " +
             std::to_string(parentLevel) +
             " has a non-zero terminal child (only legal at level 0)");
      }
      return;
    }
    if (e.node < 0 ||
        static_cast<std::size_t>(e.node) >= flat.nodes.size()) {
      fail("edge references node " + std::to_string(e.node) +
           " outside [0, " + std::to_string(flat.nodes.size()) + ")");
    }
    if (!isRoot && static_cast<std::size_t>(e.node) >= i) {
      fail("node " + std::to_string(i) + " references child " +
           std::to_string(e.node) +
           " at or after itself (children must precede parents)");
    }
    if (e.w.exactlyZero()) {
      fail("edge to node " + std::to_string(e.node) +
           " carries an exactly-zero weight (zero edges must point at the "
           "terminal)");
    }
    const Qubit childLevel = flat.nodes[static_cast<std::size_t>(e.node)].v;
    if (!isRoot && childLevel != parentLevel - 1) {
      fail("node " + std::to_string(i) + " at level " +
           std::to_string(parentLevel) + " has a child at level " +
           std::to_string(childLevel) + " (must be exactly one below)");
    }
  };
  for (std::size_t i = 0; i < flat.nodes.size(); ++i) {
    const FlatNode<Arity>& n = flat.nodes[i];
    if (n.v < 0 || static_cast<std::size_t>(n.v) >= flat.numQubits) {
      fail("node " + std::to_string(i) + " has level " + std::to_string(n.v) +
           " outside [0, " + std::to_string(flat.numQubits) + ")");
    }
    for (const FlatEdge& e : n.children) {
      checkEdge(e, n.v, i, /*isRoot=*/false);
    }
  }
  checkEdge(flat.root, /*parentLevel=*/0, /*i=*/0, /*isRoot=*/true);
}

}  // namespace

FlatVectorDD exportDD(const Package& src, const VEdge& root) {
  return exportImpl<2>(src, root);
}

FlatMatrixDD exportDD(const Package& src, const MEdge& root) {
  return exportImpl<4>(src, root);
}

VEdge importDD(Package& dst, const FlatVectorDD& flat) {
  validateFlat(flat, dst.qubits());
  // Rebuild bottom-up. makeVNode re-normalizes against the destination's
  // complex table, so each built edge may carry a top weight slightly
  // different from 1 (tolerance snapping); the stored child weight is
  // multiplied through to keep the represented function exact.
  std::vector<VEdge> built(flat.nodes.size());
  auto resolve = [&](const FlatEdge& fe) -> VEdge {
    if (fe.node == kFlatTerminal) {
      return fe.w.exactlyZero() ? dst.vZero()
                                : VEdge{dst.vOneTerminal().p, dst.clookup(fe.w)};
    }
    const VEdge& b = built[static_cast<std::size_t>(fe.node)];
    return {b.p, dst.clookup(fe.w * (*b.w))};
  };
  for (std::size_t i = 0; i < flat.nodes.size(); ++i) {
    const FlatNode<2>& n = flat.nodes[i];
    built[i] = dst.makeVNode(
        n.v, {resolve(n.children[0]), resolve(n.children[1])});
  }
  return resolve(flat.root);
}

MEdge importDD(Package& dst, const FlatMatrixDD& flat) {
  validateFlat(flat, dst.qubits());
  std::vector<MEdge> built(flat.nodes.size());
  auto resolve = [&](const FlatEdge& fe) -> MEdge {
    if (fe.node == kFlatTerminal) {
      return fe.w.exactlyZero() ? dst.mZero()
                                : MEdge{dst.mOneTerminal().p, dst.clookup(fe.w)};
    }
    const MEdge& b = built[static_cast<std::size_t>(fe.node)];
    return {b.p, dst.clookup(fe.w * (*b.w))};
  };
  for (std::size_t i = 0; i < flat.nodes.size(); ++i) {
    const FlatNode<4>& n = flat.nodes[i];
    built[i] = dst.makeMNode(
        n.v, {resolve(n.children[0]), resolve(n.children[1]),
              resolve(n.children[2]), resolve(n.children[3])});
  }
  return resolve(flat.root);
}

}  // namespace ddsim::dd
