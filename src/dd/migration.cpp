#include "dd/migration.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "dd/package.hpp"

namespace ddsim::dd {

namespace {

/// Post-order flattening: children are emitted before their parent, so the
/// parent's child indices are always valid when it is appended. Recursion
/// depth is bounded by the qubit count (<= 62), never by the node count.
template <std::size_t Arity>
std::int32_t exportNode(const Node<Arity>* p, FlatDD<Arity>& out,
                        std::unordered_map<const Node<Arity>*, std::int32_t>& index) {
  const auto it = index.find(p);
  if (it != index.end()) {
    return it->second;
  }
  FlatNode<Arity> fn;
  fn.v = p->v;
  for (std::size_t j = 0; j < Arity; ++j) {
    const Edge<Arity>& child = p->e[j];
    if (child.w->exactlyZero()) {
      // Normalization snaps near-zero quotients to the canonical zero
      // *after* the zero-stub pass, so a zero-weight edge can still point
      // at an internal node. The subtree is annihilated either way; emit
      // the canonical flat form (zero edge to the terminal).
      fn.children[j] = FlatEdge{};
      continue;
    }
    fn.children[j].w = *child.w;
    fn.children[j].node =
        child.p->isTerminal() ? kFlatTerminal : exportNode(child.p, out, index);
  }
  if (out.nodes.size() >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::length_error("exportDD: DD exceeds 2^31 nodes");
  }
  out.nodes.push_back(fn);
  const auto id = static_cast<std::int32_t>(out.nodes.size() - 1);
  index.emplace(p, id);
  return id;
}

template <std::size_t Arity>
FlatDD<Arity> exportImpl(const Package& src, const Edge<Arity>& root) {
  FlatDD<Arity> out;
  out.numQubits = src.qubits();
  if (root.p->isTerminal() || root.w->exactlyZero()) {
    out.root.w = root.w->exactlyZero() ? ComplexValue{} : *root.w;
    out.root.node = kFlatTerminal;
    return out;
  }
  out.root.w = *root.w;
  std::unordered_map<const Node<Arity>*, std::int32_t> index;
  out.root.node = exportNode(root.p, out, index);
  return out;
}

template <std::size_t Arity>
void validateFlat(const FlatDD<Arity>& flat, std::size_t dstQubits) {
  auto fail = [](const std::string& what) {
    throw MigrationError("importDD: " + what);
  };
  if (flat.numQubits == 0 || flat.numQubits > dstQubits) {
    fail("numQubits " + std::to_string(flat.numQubits) +
         " outside the destination package's range [1, " +
         std::to_string(dstQubits) + "]");
  }
  auto checkEdge = [&](const FlatEdge& e, Qubit parentLevel, std::size_t i,
                       bool isRoot) {
    if (e.node == kFlatTerminal) {
      // A terminal child mid-diagram is only the canonical zero; a weighted
      // terminal is legal at level 0 (and for a scalar root edge).
      if (!isRoot && parentLevel != 0 && !e.w.exactlyZero()) {
        fail("node " + std::to_string(i) + " at level " +
             std::to_string(parentLevel) +
             " has a non-zero terminal child (only legal at level 0)");
      }
      return;
    }
    if (e.node < 0 ||
        static_cast<std::size_t>(e.node) >= flat.nodes.size()) {
      fail("edge references node " + std::to_string(e.node) +
           " outside [0, " + std::to_string(flat.nodes.size()) + ")");
    }
    if (!isRoot && static_cast<std::size_t>(e.node) >= i) {
      fail("node " + std::to_string(i) + " references child " +
           std::to_string(e.node) +
           " at or after itself (children must precede parents)");
    }
    if (e.w.exactlyZero()) {
      fail("edge to node " + std::to_string(e.node) +
           " carries an exactly-zero weight (zero edges must point at the "
           "terminal)");
    }
    const Qubit childLevel = flat.nodes[static_cast<std::size_t>(e.node)].v;
    if (!isRoot && childLevel != parentLevel - 1) {
      fail("node " + std::to_string(i) + " at level " +
           std::to_string(parentLevel) + " has a child at level " +
           std::to_string(childLevel) + " (must be exactly one below)");
    }
  };
  for (std::size_t i = 0; i < flat.nodes.size(); ++i) {
    const FlatNode<Arity>& n = flat.nodes[i];
    if (n.v < 0 || static_cast<std::size_t>(n.v) >= flat.numQubits) {
      fail("node " + std::to_string(i) + " has level " + std::to_string(n.v) +
           " outside [0, " + std::to_string(flat.numQubits) + ")");
    }
    for (const FlatEdge& e : n.children) {
      checkEdge(e, n.v, i, /*isRoot=*/false);
    }
  }
  checkEdge(flat.root, /*parentLevel=*/0, /*i=*/0, /*isRoot=*/true);
}

// ------------------------------------------------- byte-level wire format

constexpr std::uint32_t kMagic = 0x4464444dU;  // "MDdD"
constexpr std::uint32_t kVersion = 1;
/// Header: magic, version, arity, numQubits, nodeCount, payloadLen,
/// checksum — all fixed-width little-endian. The checksum covers the whole
/// blob with the checksum field itself zeroed, so a bit flip anywhere —
/// including header fields like numQubits that no structural check would
/// catch — is detected.
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 8 + 8 + 8;
/// Payload entries: an edge is (child index i32, weight 2 x f64); a node is
/// its level (i32) followed by its Arity edges.
constexpr std::size_t kEdgeSize = 4 + 8 + 8;

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int s = 0; s < 32; s += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 0; s < 64; s += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void putI32(std::vector<std::uint8_t>& out, std::int32_t v) {
  putU32(out, static_cast<std::uint32_t>(v));
}

void putF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int b = 3; b >= 0; --b) {
    v = (v << 8) | p[b];
  }
  return v;
}

std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int b = 7; b >= 0; --b) {
    v = (v << 8) | p[b];
  }
  return v;
}

std::int32_t getI32(const std::uint8_t* p) {
  return static_cast<std::int32_t>(getU32(p));
}

double getF64(const std::uint8_t* p) {
  const std::uint64_t bits = getU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void putEdge(std::vector<std::uint8_t>& out, const FlatEdge& e) {
  putI32(out, e.node);
  putF64(out, e.w.r);
  putF64(out, e.w.i);
}

FlatEdge getEdge(const std::uint8_t* p) {
  FlatEdge e;
  e.node = getI32(p);
  e.w.r = getF64(p + 4);
  e.w.i = getF64(p + 12);
  return e;
}

template <std::size_t Arity>
std::vector<std::uint8_t> serializeImpl(const FlatDD<Arity>& flat) {
  const std::size_t nodeSize = 4 + Arity * kEdgeSize;
  const std::size_t payloadLen = kEdgeSize + flat.nodes.size() * nodeSize;
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payloadLen);
  putU32(out, kMagic);
  putU32(out, kVersion);
  putU32(out, static_cast<std::uint32_t>(Arity));
  putU64(out, flat.numQubits);
  putU64(out, flat.nodes.size());
  putU64(out, payloadLen);
  putU64(out, 0);  // checksum patched below, once the payload is written
  putEdge(out, flat.root);
  for (const FlatNode<Arity>& n : flat.nodes) {
    putI32(out, n.v);
    for (const FlatEdge& e : n.children) {
      putEdge(out, e);
    }
  }
  // The checksum field still holds its zero placeholder here, so hashing
  // the full buffer implements the zeroed-checksum-field convention.
  const std::uint64_t checksum = fnv1a(out.data(), out.size());
  std::vector<std::uint8_t> sum;
  putU64(sum, checksum);
  std::memcpy(out.data() + (kHeaderSize - 8), sum.data(), 8);
  return out;
}

template <std::size_t Arity>
FlatDD<Arity> deserializeImpl(const std::uint8_t* data, std::size_t size) {
  auto fail = [](const std::string& what) {
    throw MigrationError("deserializeDD: " + what);
  };
  if (data == nullptr || size < kHeaderSize) {
    fail("buffer of " + std::to_string(size) +
         " bytes is shorter than the header (" + std::to_string(kHeaderSize) +
         " bytes)");
  }
  if (getU32(data) != kMagic) {
    fail("bad magic (not a serialized DD)");
  }
  if (const std::uint32_t version = getU32(data + 4); version != kVersion) {
    fail("unsupported format version " + std::to_string(version) +
         " (expected " + std::to_string(kVersion) + ")");
  }
  if (const std::uint32_t arity = getU32(data + 8); arity != Arity) {
    fail("arity " + std::to_string(arity) + " does not match the requested " +
         (Arity == 2 ? std::string("vector") : std::string("matrix")) +
         " DD");
  }
  const std::uint64_t numQubits = getU64(data + 12);
  const std::uint64_t nodeCount = getU64(data + 20);
  const std::uint64_t payloadLen = getU64(data + 28);
  const std::uint64_t checksum = getU64(data + 36);
  const std::size_t nodeSize = 4 + Arity * kEdgeSize;
  if (nodeCount >
      static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max())) {
    fail("node count " + std::to_string(nodeCount) + " exceeds 2^31");
  }
  if (payloadLen != kEdgeSize + nodeCount * nodeSize) {
    fail("payload length " + std::to_string(payloadLen) +
         " inconsistent with node count " + std::to_string(nodeCount));
  }
  if (size != kHeaderSize + payloadLen) {
    fail("buffer of " + std::to_string(size) + " bytes, expected " +
         std::to_string(kHeaderSize + payloadLen) + " (truncated or padded)");
  }
  const std::uint8_t* payload = data + kHeaderSize;
  // Re-derive the zeroed-checksum-field hash by chaining: header prefix,
  // eight zero bytes in place of the checksum field, then the payload.
  const std::uint8_t zeros[8] = {};
  std::uint64_t expected = fnv1a(data, kHeaderSize - 8);
  expected = fnv1a(zeros, 8, expected);
  expected = fnv1a(payload, payloadLen, expected);
  if (expected != checksum) {
    fail("checksum mismatch (corrupted header or edge list)");
  }
  if (numQubits == 0) {
    fail("numQubits must be nonzero");
  }
  FlatDD<Arity> flat;
  flat.numQubits = numQubits;
  flat.root = getEdge(payload);
  const std::uint8_t* p = payload + kEdgeSize;
  flat.nodes.resize(nodeCount);
  for (std::uint64_t i = 0; i < nodeCount; ++i) {
    FlatNode<Arity>& n = flat.nodes[i];
    n.v = getI32(p);
    p += 4;
    for (std::size_t j = 0; j < Arity; ++j) {
      n.children[j] = getEdge(p);
      p += kEdgeSize;
    }
  }
  return flat;
}

}  // namespace

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::uint8_t> serializeDD(const FlatVectorDD& flat) {
  return serializeImpl<2>(flat);
}

std::vector<std::uint8_t> serializeDD(const FlatMatrixDD& flat) {
  return serializeImpl<4>(flat);
}

FlatVectorDD deserializeVectorDD(const std::uint8_t* data, std::size_t size) {
  return deserializeImpl<2>(data, size);
}

FlatMatrixDD deserializeMatrixDD(const std::uint8_t* data, std::size_t size) {
  return deserializeImpl<4>(data, size);
}

FlatVectorDD deserializeVectorDD(const std::vector<std::uint8_t>& bytes) {
  return deserializeImpl<2>(bytes.data(), bytes.size());
}

FlatMatrixDD deserializeMatrixDD(const std::vector<std::uint8_t>& bytes) {
  return deserializeImpl<4>(bytes.data(), bytes.size());
}

FlatVectorDD exportDD(const Package& src, const VEdge& root) {
  return exportImpl<2>(src, root);
}

FlatMatrixDD exportDD(const Package& src, const MEdge& root) {
  return exportImpl<4>(src, root);
}

VEdge importDD(Package& dst, const FlatVectorDD& flat) {
  validateFlat(flat, dst.qubits());
  // Rebuild bottom-up. makeVNode re-normalizes against the destination's
  // complex table, so each built edge may carry a top weight slightly
  // different from 1 (tolerance snapping); the stored child weight is
  // multiplied through to keep the represented function exact.
  std::vector<VEdge> built(flat.nodes.size());
  auto resolve = [&](const FlatEdge& fe) -> VEdge {
    if (fe.node == kFlatTerminal) {
      return fe.w.exactlyZero() ? dst.vZero()
                                : VEdge{dst.vOneTerminal().p, dst.clookup(fe.w)};
    }
    const VEdge& b = built[static_cast<std::size_t>(fe.node)];
    return {b.p, dst.clookup(fe.w * (*b.w))};
  };
  for (std::size_t i = 0; i < flat.nodes.size(); ++i) {
    const FlatNode<2>& n = flat.nodes[i];
    built[i] = dst.makeVNode(
        n.v, {resolve(n.children[0]), resolve(n.children[1])});
  }
  return resolve(flat.root);
}

MEdge importDD(Package& dst, const FlatMatrixDD& flat) {
  validateFlat(flat, dst.qubits());
  std::vector<MEdge> built(flat.nodes.size());
  auto resolve = [&](const FlatEdge& fe) -> MEdge {
    if (fe.node == kFlatTerminal) {
      return fe.w.exactlyZero() ? dst.mZero()
                                : MEdge{dst.mOneTerminal().p, dst.clookup(fe.w)};
    }
    const MEdge& b = built[static_cast<std::size_t>(fe.node)];
    return {b.p, dst.clookup(fe.w * (*b.w))};
  };
  for (std::size_t i = 0; i < flat.nodes.size(); ++i) {
    const FlatNode<4>& n = flat.nodes[i];
    built[i] = dst.makeMNode(
        n.v, {resolve(n.children[0]), resolve(n.children[1]),
              resolve(n.children[2]), resolve(n.children[3])});
  }
  return resolve(flat.root);
}

}  // namespace ddsim::dd
