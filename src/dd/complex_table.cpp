#include "dd/complex_table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ddsim::dd {

ComplexTable::ComplexTable(double tolerance)
    : tol_(tolerance), cell_(2.0 * tolerance) {}

std::int64_t ComplexTable::cellOf(double x) const noexcept {
  return static_cast<std::int64_t>(std::llround(x / cell_));
}

std::uint64_t ComplexTable::cellKey(std::int64_t cr, std::int64_t ci) noexcept {
  // Mix the two cell coordinates; splitmix64-style finalizer.
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return mix(static_cast<std::uint64_t>(cr)) ^
         (mix(static_cast<std::uint64_t>(ci)) << 1);
}

CWeight ComplexTable::lookup(ComplexValue v) {
  // Snap to the exact constants first; they are by far the most common
  // weights and pointer identity with zero()/one() is relied upon by the
  // package's fast paths.
  if (v.approximatelyZero(tol_)) {
    ++hits_;
    return &zero_;
  }
  if (v.approximatelyOne(tol_)) {
    ++hits_;
    return &one_;
  }

  const std::int64_t cr = cellOf(v.r);
  const std::int64_t ci = cellOf(v.i);
  const auto probe = [&](std::int64_t pr, std::int64_t pi) -> CWeight {
    const auto it = buckets_.find(cellKey(pr, pi));
    if (it == buckets_.end()) {
      return nullptr;
    }
    for (CWeight e : it->second) {
      if (e->approximatelyEquals(v, tol_)) {
        return e;
      }
    }
    return nullptr;
  };
  // Home cell first: by construction almost every hit lands in the value's
  // own cell, and hits dominate on the multiply/add hot path.
  if (CWeight e = probe(cr, ci)) {
    ++hits_;
    return e;
  }
  // Any other candidate within tolerance lies in a cell intersecting
  // [v ± tol]. With cell = 2*tol that interval spans at most one neighbor
  // per axis, so this probes at most 3 further cells (usually none) instead
  // of the full 3x3 neighborhood.
  const std::int64_t crLo = cellOf(v.r - tol_);
  const std::int64_t crHi = cellOf(v.r + tol_);
  const std::int64_t ciLo = cellOf(v.i - tol_);
  const std::int64_t ciHi = cellOf(v.i + tol_);
  for (std::int64_t pr = crLo; pr <= crHi; ++pr) {
    for (std::int64_t pi = ciLo; pi <= ciHi; ++pi) {
      if (pr == cr && pi == ci) {
        continue;  // already probed
      }
      if (CWeight e = probe(pr, pi)) {
        ++hits_;
        return e;
      }
    }
  }

  ++misses_;
  Entry* entry;
  if (!freeList_.empty()) {
    entry = freeList_.back();
    freeList_.pop_back();
    entry->v = v;
    entry->rootRef = 0;
  } else {
    entries_.push_back(Entry{v, 0});
    entry = &entries_.back();
  }
  CWeight w = &entry->v;
  buckets_[cellKey(cr, ci)].push_back(w);
  return w;
}

void ComplexTable::incRef(CWeight w) noexcept {
  if (w == nullptr || w == &zero_ || w == &one_) {
    return;
  }
  auto* entry = const_cast<Entry*>(asEntry(w));
  if (entry->rootRef != std::numeric_limits<std::uint32_t>::max()) {
    ++entry->rootRef;
  }
}

void ComplexTable::decRef(CWeight w) noexcept {
  if (w == nullptr || w == &zero_ || w == &one_) {
    return;
  }
  auto* entry = const_cast<Entry*>(asEntry(w));
  if (entry->rootRef != std::numeric_limits<std::uint32_t>::max()) {
    assert(entry->rootRef > 0 && "decRef on unreferenced weight");
    --entry->rootRef;
  }
}

std::size_t ComplexTable::garbageCollect(const std::unordered_set<CWeight>& live) {
  std::size_t collected = 0;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& vec = it->second;
    const auto removeBegin =
        std::remove_if(vec.begin(), vec.end(), [&](CWeight w) {
          if (live.count(w) != 0 || asEntry(w)->rootRef > 0) {
            return false;
          }
          auto* entry = const_cast<Entry*>(asEntry(w));
          // Bump the incarnation at free time so any compute-table entry
          // still referencing this weight fails revalidation immediately.
          ++entry->id;
          freeList_.push_back(entry);
          return true;
        });
    collected += static_cast<std::size_t>(vec.end() - removeBegin);
    vec.erase(removeBegin, vec.end());
    if (vec.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  return collected;
}

}  // namespace ddsim::dd
