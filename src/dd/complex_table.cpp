#include "dd/complex_table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ddsim::dd {

ComplexTable::ComplexTable(double tolerance)
    : tol_(tolerance), cell_(2.0 * tolerance) {}

std::int64_t ComplexTable::cellOf(double x) const noexcept {
  return static_cast<std::int64_t>(std::llround(x / cell_));
}

std::uint64_t ComplexTable::cellKey(std::int64_t cr, std::int64_t ci) noexcept {
  // Mix the two cell coordinates; splitmix64-style finalizer.
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return mix(static_cast<std::uint64_t>(cr)) ^
         (mix(static_cast<std::uint64_t>(ci)) << 1);
}

CWeight ComplexTable::probeCell(std::uint64_t key,
                                const ComplexValue& v) const {
  const auto& buckets = shards_[shardOf(key)].buckets;
  const auto it = buckets.find(key);
  if (it == buckets.end()) {
    return nullptr;
  }
  for (CWeight e : it->second) {
    if (e->approximatelyEquals(v, tol_)) {
      return e;
    }
  }
  return nullptr;
}

CWeight ComplexTable::insertEntry(std::uint64_t key, const ComplexValue& v) {
  Entry* entry;
  {
    // Nested inside the shard lock(s) in concurrent mode; lock order is
    // always shard(s) -> allocator.
    std::unique_lock<std::mutex> alloc(allocMutex_, std::defer_lock);
    if (concurrent_) {
      alloc.lock();
    }
    if (!freeList_.empty()) {
      entry = freeList_.back();
      freeList_.pop_back();
      entry->v = v;
      entry->rootRef = 0;
    } else {
      entries_.push_back(Entry{v, 0});
      entry = &entries_.back();
    }
  }
  CWeight w = &entry->v;
  shards_[shardOf(key)].buckets[key].push_back(w);
  return w;
}

CWeight ComplexTable::lookup(ComplexValue v) {
  // Snap to the exact constants first; they are by far the most common
  // weights and pointer identity with zero()/one() is relied upon by the
  // package's fast paths.
  if (v.approximatelyZero(tol_)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return &zero_;
  }
  if (v.approximatelyOne(tol_)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return &one_;
  }

  const std::int64_t cr = cellOf(v.r);
  const std::int64_t ci = cellOf(v.i);
  const std::uint64_t homeKey = cellKey(cr, ci);

  // Any candidate within tolerance lies in a cell intersecting [v ± tol].
  // With cell = 2*tol that interval spans at most one neighbour per axis,
  // so at most 3 cells beyond the home cell ever need probing.
  const std::int64_t crLo = cellOf(v.r - tol_);
  const std::int64_t crHi = cellOf(v.r + tol_);
  const std::int64_t ciLo = cellOf(v.i - tol_);
  const std::int64_t ciHi = cellOf(v.i + tol_);
  std::array<std::uint64_t, 4> keys{};
  std::size_t numKeys = 0;
  keys[numKeys++] = homeKey;
  for (std::int64_t pr = crLo; pr <= crHi; ++pr) {
    for (std::int64_t pi = ciLo; pi <= ciHi; ++pi) {
      if (pr == cr && pi == ci) {
        continue;  // home cell is always first
      }
      keys[numKeys++] = cellKey(pr, pi);
    }
  }

  if (!concurrent_) {
    for (std::size_t k = 0; k < numKeys; ++k) {
      if (CWeight e = probeCell(keys[k], v)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return e;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return insertEntry(homeKey, v);
  }

  // Concurrent path. Optimistic probe: each candidate cell under its own
  // shard lock — home cell first, where almost every hit lands.
  const auto lockShard = [&](std::size_t shard) -> std::mutex& {
    std::mutex& m = shards_[shard].mutex;
    if (!m.try_lock()) {
      lockWaits_.fetch_add(1, std::memory_order_relaxed);
      m.lock();
    }
    return m;
  };
  for (std::size_t k = 0; k < numKeys; ++k) {
    std::mutex& m = lockShard(shardOf(keys[k]));
    const std::lock_guard<std::mutex> lock(m, std::adopt_lock);
    if (CWeight e = probeCell(keys[k], v)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return e;
    }
  }

  // Miss: lock *every* involved shard (deduplicated, ascending index — no
  // deadlock) and re-probe before inserting. Two threads canonicalizing
  // values within tolerance of each other have overlapping candidate cells,
  // hence overlapping lock sets; whichever inserts first is found by the
  // other's re-probe, keeping the representative unique.
  std::array<std::size_t, 4> shardIds{};
  std::size_t numShards = 0;
  for (std::size_t k = 0; k < numKeys; ++k) {
    const std::size_t s = shardOf(keys[k]);
    bool seen = false;
    for (std::size_t j = 0; j < numShards; ++j) {
      seen = seen || shardIds[j] == s;
    }
    if (!seen) {
      shardIds[numShards++] = s;
    }
  }
  // Tiny fixed-capacity insertion sort (std::sort trips -Warray-bounds on
  // arrays smaller than its insertion-sort threshold).
  for (std::size_t j = 1; j < numShards; ++j) {
    for (std::size_t k = j; k > 0 && shardIds[k] < shardIds[k - 1]; --k) {
      std::swap(shardIds[k], shardIds[k - 1]);
    }
  }
  for (std::size_t j = 0; j < numShards; ++j) {
    lockShard(shardIds[j]);
  }
  CWeight result = nullptr;
  for (std::size_t k = 0; k < numKeys && result == nullptr; ++k) {
    result = probeCell(keys[k], v);
  }
  if (result != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    result = insertEntry(homeKey, v);
  }
  for (std::size_t j = numShards; j > 0; --j) {
    shards_[shardIds[j - 1]].mutex.unlock();
  }
  return result;
}

void ComplexTable::incRef(CWeight w) noexcept {
  if (w == nullptr || w == &zero_ || w == &one_) {
    return;
  }
  auto* entry = const_cast<Entry*>(asEntry(w));
  if (entry->rootRef != std::numeric_limits<std::uint32_t>::max()) {
    ++entry->rootRef;
  }
}

void ComplexTable::decRef(CWeight w) noexcept {
  if (w == nullptr || w == &zero_ || w == &one_) {
    return;
  }
  auto* entry = const_cast<Entry*>(asEntry(w));
  if (entry->rootRef != std::numeric_limits<std::uint32_t>::max()) {
    assert(entry->rootRef > 0 && "decRef on unreferenced weight");
    --entry->rootRef;
  }
}

std::size_t ComplexTable::garbageCollect(const std::unordered_set<CWeight>& live) {
  // Quiescent point: no concurrent lookups in flight, so no locks taken.
  std::size_t collected = 0;
  for (auto& shard : shards_) {
    for (auto it = shard.buckets.begin(); it != shard.buckets.end();) {
      auto& vec = it->second;
      const auto removeBegin =
          std::remove_if(vec.begin(), vec.end(), [&](CWeight w) {
            if (live.count(w) != 0 || asEntry(w)->rootRef > 0) {
              return false;
            }
            auto* entry = const_cast<Entry*>(asEntry(w));
            // Bump the incarnation at free time so any compute-table entry
            // still referencing this weight fails revalidation immediately.
            ++entry->id;
            freeList_.push_back(entry);
            return true;
          });
      collected += static_cast<std::size_t>(vec.end() - removeBegin);
      vec.erase(removeBegin, vec.end());
      if (vec.empty()) {
        it = shard.buckets.erase(it);
      } else {
        ++it;
      }
    }
  }
  return collected;
}

}  // namespace ddsim::dd
