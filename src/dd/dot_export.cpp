#include "dd/dot_export.hpp"

#include <sstream>
#include <unordered_map>

namespace ddsim::dd {

namespace {

template <std::size_t Arity>
class DotWriter {
 public:
  DotWriter(std::ostream& os, const std::string& name) : os_(os) {
    os_ << "digraph \"" << name << "\" {\n"
        << "  rankdir=TB;\n"
        << "  node [shape=circle, fixedsize=true, width=0.5];\n";
  }

  void write(const Edge<Arity>& root) {
    os_ << "  root [shape=point, style=invis];\n";
    if (root.w->exactlyZero()) {
      os_ << "  zero [shape=square, label=\"0\"];\n"
          << "  root -> zero;\n";
    } else {
      const std::size_t id = visit(root.p);
      os_ << "  root -> n" << id << edgeLabel(root.w) << ";\n";
    }
    os_ << "}\n";
  }

 private:
  std::size_t visit(const Node<Arity>* p) {
    if (const auto it = ids_.find(p); it != ids_.end()) {
      return it->second;
    }
    const std::size_t id = ids_.size();
    ids_.emplace(p, id);
    if (p->isTerminal()) {
      os_ << "  n" << id << " [shape=square, label=\"1\"];\n";
      return id;
    }
    os_ << "  n" << id << " [label=\"q" << p->v << "\"];\n";
    for (std::size_t i = 0; i < Arity; ++i) {
      const auto& e = p->e[i];
      if (e.w->exactlyZero()) {
        // Zero stubs are drawn as small filled points, as in the paper.
        os_ << "  z" << id << "_" << i
            << " [shape=point, width=0.1, label=\"\"];\n"
            << "  n" << id << " -> z" << id << "_" << i << " [style=dashed"
            << ", taillabel=\"" << i << "\"];\n";
        continue;
      }
      const std::size_t cid = visit(e.p);
      os_ << "  n" << id << " -> n" << cid << edgeLabel(e.w, i) << ";\n";
    }
    return id;
  }

  static std::string edgeLabel(CWeight w, std::size_t port = Arity) {
    std::ostringstream ss;
    ss << " [";
    if (port < Arity) {
      ss << "taillabel=\"" << port << "\", ";
    }
    if (!w->exactlyOne()) {
      ss << "label=\"" << w->toString(4) << "\", ";
    }
    ss << "arrowsize=0.6]";
    return ss.str();
  }

  std::ostream& os_;
  std::unordered_map<const Node<Arity>*, std::size_t> ids_;
};

}  // namespace

void exportDot(const VEdge& root, std::ostream& os, const std::string& graphName) {
  DotWriter<2>(os, graphName).write(root);
}

void exportDot(const MEdge& root, std::ostream& os, const std::string& graphName) {
  DotWriter<4>(os, graphName).write(root);
}

std::string toDot(const VEdge& root) {
  std::ostringstream ss;
  exportDot(root, ss);
  return ss.str();
}

std::string toDot(const MEdge& root) {
  std::ostringstream ss;
  exportDot(root, ss);
  return ss.str();
}

}  // namespace ddsim::dd
