/// \file node.hpp
/// \brief DD node and edge types for vectors (2 successors) and matrices
///        (4 successors, the quadrants M00 M01 M10 M11).
///
/// Conventions (matching the paper's Section II-B):
///  * Qubits are indexed 0..n-1; qubit n-1 ("q0" in the paper's notation,
///    the most significant one) labels the root node, qubit 0 sits just
///    above the terminal.
///  * DDs are level-complete: every root-to-terminal path visits every
///    variable exactly once. Gate DDs carry explicit identity chains, so
///    add/multiply may assume aligned variables.
///  * Edge weights are canonical pointers (CWeight) into a ComplexTable;
///    node equality is component-wise pointer equality.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "dd/complex_table.hpp"
#include "dd/complex_value.hpp"

namespace ddsim::dd {

/// Qubit/variable index. -1 marks the terminal node.
using Qubit = std::int32_t;
inline constexpr Qubit kTerminalVar = -1;

template <std::size_t Arity>
struct Node;

/// An edge: target node plus canonical complex weight.
template <std::size_t Arity>
struct Edge {
  Node<Arity>* p = nullptr;
  CWeight w = nullptr;

  constexpr bool operator==(const Edge&) const noexcept = default;

  [[nodiscard]] bool isTerminal() const noexcept {
    return p != nullptr && p->v == kTerminalVar;
  }
  /// True for the canonical representation of an all-zero vector/matrix:
  /// terminal node with (approximately) zero weight.
  [[nodiscard]] bool isZeroTerminal() const noexcept {
    return isTerminal() && w->exactlyZero();
  }
};

template <std::size_t Arity>
struct Node {
  std::array<Edge<Arity>, Arity> e{};
  Node* next = nullptr;   ///< unique-table chain / free-list link
  std::uint32_t ref = 0;  ///< root reference count (saturating)
  Qubit v = kTerminalVar;

  [[nodiscard]] bool isTerminal() const noexcept { return v == kTerminalVar; }
};

using VNode = Node<2>;
using MNode = Node<4>;
using VEdge = Edge<2>;
using MEdge = Edge<4>;

/// FNV-1a-style hash over the successor edges of a node candidate.
/// Weights are canonical pointers, so hashing the pointer values is exact.
template <std::size_t Arity>
[[nodiscard]] std::size_t hashNode(const Node<Arity>& n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mixIn = [&h](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
  };
  for (const auto& edge : n.e) {
    mixIn(reinterpret_cast<std::uintptr_t>(edge.p));
    mixIn(reinterpret_cast<std::uintptr_t>(edge.w));
  }
  return static_cast<std::size_t>(h);
}

template <std::size_t Arity>
[[nodiscard]] bool sameChildren(const Node<Arity>& a, const Node<Arity>& b) noexcept {
  return a.e == b.e;
}

}  // namespace ddsim::dd
