/// \file node.hpp
/// \brief DD node and edge types for vectors (2 successors) and matrices
///        (4 successors, the quadrants M00 M01 M10 M11).
///
/// Conventions (matching the paper's Section II-B):
///  * Qubits are indexed 0..n-1; qubit n-1 ("q0" in the paper's notation,
///    the most significant one) labels the root node, qubit 0 sits just
///    above the terminal.
///  * DDs are level-complete: every root-to-terminal path visits every
///    variable exactly once. Gate DDs carry explicit identity chains, so
///    add/multiply may assume aligned variables.
///  * Edge weights are canonical pointers (CWeight) into a ComplexTable;
///    node equality is component-wise pointer equality.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "dd/complex_table.hpp"
#include "dd/complex_value.hpp"

namespace ddsim::dd {

/// Qubit/variable index. -1 marks the terminal node.
using Qubit = std::int32_t;
inline constexpr Qubit kTerminalVar = -1;

template <std::size_t Arity>
struct Node;

/// An edge: target node plus canonical complex weight.
template <std::size_t Arity>
struct Edge {
  Node<Arity>* p = nullptr;
  CWeight w = nullptr;

  constexpr bool operator==(const Edge&) const noexcept = default;

  [[nodiscard]] bool isTerminal() const noexcept {
    return p != nullptr && p->v == kTerminalVar;
  }
  /// True for the canonical representation of an all-zero vector/matrix:
  /// terminal node with (approximately) zero weight.
  [[nodiscard]] bool isZeroTerminal() const noexcept {
    return isTerminal() && w->exactlyZero();
  }
};

/// Cached per-node structure flags (matrix nodes only; vector nodes leave
/// them 0). Computed once in Package::makeMNode from the children's flags,
/// so the classification is O(1) per node instead of O(subtree) per query.
/// Semantics are *up to the edge weight*: a node flagged kNodeIsIdentity
/// represents a scalar multiple of the identity; the scalar lives on the
/// incoming edge.
inline constexpr std::uint8_t kNodeIsDiagonal = 1U << 0;
inline constexpr std::uint8_t kNodeIsIdentity = 1U << 1;

template <std::size_t Arity>
struct Node {
  std::array<Edge<Arity>, Arity> e{};
  Node* next = nullptr;   ///< unique-table chain / free-list link
  /// Incarnation counter for this node *address*: bumped every time the node
  /// is returned to the memory manager. Compute-table entries that outlive a
  /// garbage collection use it to detect whether a pointer still refers to
  /// the same node or to a recycled one (see ComputeTable).
  std::uint64_t id = 0;
  std::uint32_t ref = 0;  ///< root reference count (saturating)
  Qubit v = kTerminalVar;
  std::uint8_t flags = 0;  ///< kNodeIs* structure flags (matrix nodes)
  /// Traversal mark for Package::size(): nodes stamped with the current
  /// sweep number are "seen", so counting needs no per-call hash set. Lives
  /// in what would otherwise be struct padding.
  std::uint32_t visit = 0;

  [[nodiscard]] bool isTerminal() const noexcept { return v == kTerminalVar; }
  [[nodiscard]] bool isIdentity() const noexcept {
    return (flags & kNodeIsIdentity) != 0;
  }
  [[nodiscard]] bool isDiagonal() const noexcept {
    return (flags & kNodeIsDiagonal) != 0;
  }
};

using VNode = Node<2>;
using MNode = Node<4>;
using VEdge = Edge<2>;
using MEdge = Edge<4>;

/// FNV-1a-style hash over the successor edges of a node candidate.
/// Weights are canonical pointers, so hashing the pointer values is exact.
template <std::size_t Arity>
[[nodiscard]] std::size_t hashNode(const Node<Arity>& n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mixIn = [&h](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
  };
  for (const auto& edge : n.e) {
    mixIn(reinterpret_cast<std::uintptr_t>(edge.p));
    mixIn(reinterpret_cast<std::uintptr_t>(edge.w));
  }
  return static_cast<std::size_t>(h);
}

template <std::size_t Arity>
[[nodiscard]] bool sameChildren(const Node<Arity>& a, const Node<Arity>& b) noexcept {
  return a.e == b.e;
}

}  // namespace ddsim::dd
