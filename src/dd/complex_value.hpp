/// \file complex_value.hpp
/// \brief Plain complex value type used for all DD edge-weight arithmetic.
///
/// Edge weights in the DD package are pointers to canonical ComplexValue
/// entries owned by a ComplexTable (see complex_table.hpp). Arithmetic is
/// performed on plain values and the results are re-canonicalized, so this
/// type stays a trivially copyable aggregate.

#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <string>

namespace ddsim::dd {

/// Default tolerance for treating two floating-point values as equal.
/// Deliberately close to machine precision: canonicalization *snaps* every
/// computed weight to its table entry, so the tolerance is also the rounding
/// error re-injected into subsequent arithmetic on every operation. A loose
/// tolerance (e.g. 1e-10) destroys the relative precision of small
/// amplitudes, de-synchronizes structurally shared subtrees over long gate
/// sequences and blows the DD up (observed on deep Grover runs; cf. the
/// accuracy/compactness trade-off analysis of [21]).
inline constexpr double kTolerance = 1e-13;

/// A complex number as a plain aggregate (real and imaginary part).
struct ComplexValue {
  double r = 0.0;
  double i = 0.0;

  [[nodiscard]] constexpr bool exactlyZero() const noexcept {
    return r == 0.0 && i == 0.0;
  }
  [[nodiscard]] constexpr bool exactlyOne() const noexcept {
    return r == 1.0 && i == 0.0;
  }

  [[nodiscard]] bool approximatelyZero(double tol = kTolerance) const noexcept {
    return std::abs(r) <= tol && std::abs(i) <= tol;
  }
  [[nodiscard]] bool approximatelyOne(double tol = kTolerance) const noexcept {
    return std::abs(r - 1.0) <= tol && std::abs(i) <= tol;
  }
  [[nodiscard]] bool approximatelyEquals(const ComplexValue& other,
                                         double tol = kTolerance) const noexcept {
    return std::abs(r - other.r) <= tol && std::abs(i - other.i) <= tol;
  }

  /// Squared magnitude |z|^2.
  [[nodiscard]] constexpr double mag2() const noexcept { return r * r + i * i; }
  /// Magnitude |z|.
  [[nodiscard]] double mag() const noexcept { return std::hypot(r, i); }

  [[nodiscard]] constexpr ComplexValue conj() const noexcept { return {r, -i}; }

  [[nodiscard]] std::complex<double> toStd() const noexcept { return {r, i}; }
  static ComplexValue fromStd(std::complex<double> z) noexcept {
    return {z.real(), z.imag()};
  }

  /// Human-readable form such as "0.5-0.5i" (used in dot export and tests).
  [[nodiscard]] std::string toString(int precision = 6) const;

  constexpr bool operator==(const ComplexValue&) const noexcept = default;
};

[[nodiscard]] constexpr ComplexValue operator+(ComplexValue a, ComplexValue b) noexcept {
  return {a.r + b.r, a.i + b.i};
}
[[nodiscard]] constexpr ComplexValue operator-(ComplexValue a, ComplexValue b) noexcept {
  return {a.r - b.r, a.i - b.i};
}
[[nodiscard]] constexpr ComplexValue operator*(ComplexValue a, ComplexValue b) noexcept {
  return {a.r * b.r - a.i * b.i, a.r * b.i + a.i * b.r};
}
[[nodiscard]] constexpr ComplexValue operator*(ComplexValue a, double s) noexcept {
  return {a.r * s, a.i * s};
}
[[nodiscard]] ComplexValue operator/(ComplexValue a, ComplexValue b) noexcept;

inline ComplexValue& operator+=(ComplexValue& a, ComplexValue b) noexcept {
  a = a + b;
  return a;
}
inline ComplexValue& operator*=(ComplexValue& a, ComplexValue b) noexcept {
  a = a * b;
  return a;
}

}  // namespace ddsim::dd
