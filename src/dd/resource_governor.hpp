/// \file resource_governor.hpp
/// \brief Node/byte budgets with a graduated pressure ladder.
///
/// The paper's evaluation is bounded by resource exhaustion (the ">7 200.00"
/// rows of Table II): intermediate DDs blowing up is the *normal* failure
/// mode of DD simulation, not an exception. The governor makes running out
/// of memory a first-class, recoverable outcome instead of an OS kill:
///
///  * **Soft rung** — live nodes (or allocated bytes) exceed a fraction of
///    the budget: a pressure callback fires once per episode, and the
///    package performs an emergency garbage collection (including chunk
///    release, see MemoryManager::releaseFreeChunks) at its next quiescent
///    point. Callers such as CircuitSimulator react by degrading (flushing
///    the MxM accumulator, falling back to sequential MxV, approximating).
///
///  * **Hard rung** — the budget itself is exceeded: the current operation
///    throws ResourceExhausted (sibling of ComputationAborted). The DD
///    package stays consistent: rooted DDs are untouched and abandoned
///    intermediates are reclaimed by the next garbage collection, so the
///    caller may collect and retry, degrade further, or surface the error.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace ddsim::dd {

/// Resource limits enforced by a ResourceGovernor. A zero limit means
/// "unlimited" for that dimension; a default-constructed budget disables
/// the governor entirely.
struct ResourceBudget {
  /// Hard cap on live DD nodes (vector + matrix unique-table residents).
  std::size_t maxLiveNodes = 0;
  /// Hard cap on bytes held by the node allocators (chunk memory).
  std::size_t maxBytes = 0;
  /// Soft rung at softFraction * hard limit; must be in (0, 1].
  double softFraction = 0.75;

  [[nodiscard]] bool active() const noexcept {
    return maxLiveNodes != 0 || maxBytes != 0;
  }
};

enum class ResourcePressure : std::uint8_t {
  None = 0,  ///< comfortably within budget
  Soft = 1,  ///< above the soft rung: collect, degrade, shed load
  Hard = 2,  ///< budget exceeded: the operation in flight must bail out
};

/// Thrown from inside DD operations when a resource budget is exhausted (or
/// when chunk allocation hits std::bad_alloc, converted by MemoryManager).
/// Carries the live-node count, the configured budget and the operation in
/// flight. Same consistency contract as ComputationAborted: rooted DDs are
/// untouched, abandoned intermediates are reclaimed by the next GC.
class ResourceExhausted : public std::runtime_error {
 public:
  ResourceExhausted(std::string operation, std::size_t liveNodes,
                    std::size_t nodeBudget, std::size_t bytesAllocated,
                    std::string reason = {})
      : std::runtime_error(
            "resource budget exhausted during " + operation + ": " +
            std::to_string(liveNodes) + " live nodes" +
            (nodeBudget != 0 ? " (budget " + std::to_string(nodeBudget) + ")"
                             : "") +
            ", " + std::to_string(bytesAllocated) + " bytes allocated" +
            (reason.empty() ? "" : " [" + reason + "]")),
        operation_(std::move(operation)),
        liveNodes_(liveNodes),
        nodeBudget_(nodeBudget),
        bytesAllocated_(bytesAllocated) {}

  /// The top-level package operation that was in flight (e.g.
  /// "multiply(MxM)"), or "idle" outside any operation.
  [[nodiscard]] const std::string& operation() const noexcept {
    return operation_;
  }
  [[nodiscard]] std::size_t liveNodes() const noexcept { return liveNodes_; }
  /// Configured node budget (0 when the failure was byte- or alloc-driven).
  [[nodiscard]] std::size_t nodeBudget() const noexcept { return nodeBudget_; }
  [[nodiscard]] std::size_t bytesAllocated() const noexcept {
    return bytesAllocated_;
  }

 private:
  std::string operation_;
  std::size_t liveNodes_;
  std::size_t nodeBudget_;
  std::size_t bytesAllocated_;
};

/// Pure policy object: classifies resource usage against a budget and
/// debounces the soft-pressure callback (once per rising edge). The owning
/// Package performs the actual checks at node-allocation time and decides
/// when an emergency collection is safe.
class ResourceGovernor {
 public:
  /// Callback fired on a None -> Soft/Hard transition. Invoked from *inside*
  /// DD operations (at node allocation), so it must not call back into the
  /// package or throw — set a flag, record stats, nothing more.
  using PressureCallback =
      std::function<void(ResourcePressure, std::size_t /*liveNodes*/)>;

  void setBudget(const ResourceBudget& budget) {
    if (budget.softFraction <= 0.0 || budget.softFraction > 1.0) {
      throw std::invalid_argument(
          "ResourceBudget: softFraction must be in (0, 1]");
    }
    budget_ = budget;
    softNodes_ = scaled(budget.maxLiveNodes, budget.softFraction);
    softBytes_ = scaled(budget.maxBytes, budget.softFraction);
    signaled_.store(false, std::memory_order_relaxed);
  }

  void setPressureCallback(PressureCallback cb) { onPressure_ = std::move(cb); }

  [[nodiscard]] const ResourceBudget& budget() const noexcept { return budget_; }
  [[nodiscard]] bool active() const noexcept { return budget_.active(); }

  [[nodiscard]] ResourcePressure classify(std::size_t liveNodes,
                                          std::size_t bytes) const noexcept {
    if ((budget_.maxLiveNodes != 0 && liveNodes >= budget_.maxLiveNodes) ||
        (budget_.maxBytes != 0 && bytes >= budget_.maxBytes)) {
      return ResourcePressure::Hard;
    }
    if ((softNodes_ != 0 && liveNodes >= softNodes_) ||
        (softBytes_ != 0 && bytes >= softBytes_)) {
      return ResourcePressure::Soft;
    }
    return ResourcePressure::None;
  }

  /// Record the current pressure level; fires the callback on a rising edge
  /// (None -> Soft/Hard) and re-arms once the pressure has receded.
  /// Thread-safe: worker threads observe from inside parallel kernels, and
  /// the atomic exchange guarantees exactly one caller wins each rising
  /// edge (the callback itself must be thread-safe — it only sets flags).
  void observe(ResourcePressure level, std::size_t liveNodes) {
    if (level == ResourcePressure::None) {
      signaled_.store(false, std::memory_order_relaxed);
      return;
    }
    if (!signaled_.exchange(true, std::memory_order_acq_rel)) {
      if (onPressure_) {
        onPressure_(level, liveNodes);
      }
    }
  }

 private:
  static std::size_t scaled(std::size_t limit, double fraction) noexcept {
    return limit == 0 ? 0
                      : static_cast<std::size_t>(
                            static_cast<double>(limit) * fraction);
  }

  ResourceBudget budget_;
  std::size_t softNodes_ = 0;
  std::size_t softBytes_ = 0;
  std::atomic<bool> signaled_{false};
  PressureCallback onPressure_;
};

}  // namespace ddsim::dd
