/// \file package.hpp
/// \brief The decision-diagram package: construction and manipulation of
///        vector DDs (quantum states) and matrix DDs (quantum operations).
///
/// This is a clean-room implementation of the QMDD-style package the paper
/// builds on ([19], [22], [23]): edge-weighted DDs with canonical complex
/// weights, unique tables, and memoized recursive operations following the
/// multiplication/addition schemes of the paper's Figs. 3 and 4. On top of
/// the classic operations it provides direct construction of permutation
/// matrices from classical functions (`makePermutationDD`), the engine
/// behind the paper's *DD-construct* strategy.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dd/complex_table.hpp"
#include "dd/complex_value.hpp"
#include "dd/compute_table.hpp"
#include "dd/fault_injection.hpp"
#include "dd/memory_manager.hpp"
#include "dd/node.hpp"
#include "dd/resource_governor.hpp"
#include "dd/task_pool.hpp"
#include "dd/unique_table.hpp"

namespace ddsim::dd {

/// Copyable counter with relaxed-atomic increments, so hot per-recursion
/// statistics stay data-race-free when quadrant tasks run on worker threads
/// while PackageStats remains a plain copyable value type for snapshots.
/// Relaxed ordering is sufficient: counters are only *read* at quiescent
/// points (after joins), never used for synchronization.
class RelaxedCounter {
 public:
  RelaxedCounter() noexcept = default;
  RelaxedCounter(std::uint64_t v) noexcept : v_(v) {}  // NOLINT(*-explicit-*)
  RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.get()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    v_.store(o.get(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  /// Monotonic max (for peak tracking across threads).
  void maxWith(std::uint64_t x) noexcept {
    std::uint64_t cur = get();
    while (x > cur &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  operator std::uint64_t() const noexcept { return get(); }  // NOLINT
  [[nodiscard]] std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Row-major 2x2 unitary: {u00, u01, u10, u11}.
using GateMatrix = std::array<ComplexValue, 4>;

/// A control qubit with polarity. `positive == true` means the operation is
/// applied when the control is |1> (the usual case); `false` conditions on
/// |0> (used e.g. by Grover oracles without X-conjugation).
/// Thrown from inside long-running recursive operations when the abort
/// check installed via Package::setAbortCheck returns true. Leaves the
/// package in a consistent state: rooted DDs are untouched, abandoned
/// intermediates are reclaimed by the next garbage collection.
class ComputationAborted : public std::runtime_error {
 public:
  ComputationAborted() : std::runtime_error("DD computation aborted") {}
};

struct Control {
  Qubit qubit = 0;
  bool positive = true;

  friend bool operator<(const Control& a, const Control& b) noexcept {
    return a.qubit < b.qubit;
  }
  bool operator==(const Control&) const noexcept = default;
};

using Controls = std::vector<Control>;

/// Operation counters exposed for the paper's cost analysis: the whole point
/// of the scheduling strategies is to trade top-level MxV applications
/// against MxM combinations, so both are counted separately, along with the
/// recursive work they trigger.
struct PackageStats {
  std::uint64_t matrixVectorMultiplications = 0;  ///< top-level M x v
  std::uint64_t matrixMatrixMultiplications = 0;  ///< top-level M x M
  // The recursive/fast-path counters are bumped from inside (possibly
  // task-parallel) recursions, hence relaxed-atomic (see RelaxedCounter).
  RelaxedCounter recursiveMulVCalls;
  RelaxedCounter recursiveMulMCalls;
  RelaxedCounter recursiveAddCalls;
  /// Structure-aware fast paths: recursions short-circuited because an
  /// operand (sub)matrix is a scalar multiple of the identity (I·v = v,
  /// I·M = M, M·I = M), without descending the explicit identity chain.
  RelaxedCounter identitySkipsMV;
  RelaxedCounter identitySkipsMM;
  /// Diagonal·diagonal products where the off-diagonal quadrant recursions
  /// were pruned wholesale.
  RelaxedCounter diagonalFastPathsMM;
  std::uint64_t garbageCollections = 0;
  std::uint64_t nodesCollected = 0;
  RelaxedCounter peakLiveNodes;
  /// Emergency collections triggered by resource pressure (subset of
  /// garbageCollections); these also release fully-free allocator chunks.
  std::uint64_t emergencyCollections = 0;
  /// Bytes returned to the OS by chunk release during emergency collections.
  std::uint64_t bytesReleased = 0;

  /// Fraction of recursive multiply calls resolved by the identity fast
  /// path (0 when no multiplies ran).
  [[nodiscard]] double identitySkipRate() const noexcept {
    const std::uint64_t calls = recursiveMulVCalls + recursiveMulMCalls;
    return calls == 0 ? 0.0
                      : static_cast<double>(identitySkipsMV + identitySkipsMM) /
                            static_cast<double>(calls);
  }
};

/// Hit/miss counters of the memoization layers. The compute-table hit rate
/// is what turns the recursions of Figs. 3/4 from exponential (in paths)
/// into linear (in nodes): "re-occurring sub-products only have to be
/// computed once".
struct CacheStats {
  std::uint64_t mulMVHits = 0;
  std::uint64_t mulMVMisses = 0;
  std::uint64_t mulMMHits = 0;
  std::uint64_t mulMMMisses = 0;
  std::uint64_t addHits = 0;
  std::uint64_t addMisses = 0;
  std::uint64_t uniqueTableHits = 0;
  std::uint64_t uniqueTableMisses = 0;
  std::uint64_t complexTableHits = 0;
  std::uint64_t complexTableMisses = 0;
  /// GC-survival counters of the generation-tagged compute tables: a
  /// *retained* entry is a stale (pre-GC) entry whose operands and result
  /// all survived the collection and was revalidated on lookup; a *dropped*
  /// entry is a stale key match whose pointers died or were recycled.
  std::uint64_t mulMVRetained = 0;
  std::uint64_t mulMMRetained = 0;
  std::uint64_t addRetained = 0;
  std::uint64_t cacheRetained = 0;      ///< total across all op caches
  std::uint64_t cacheStaleDropped = 0;  ///< total across all op caches
  /// Lock contention in concurrent mode (always 0 in serial mode): times a
  /// probe found its stripe/shard lock already held by another thread.
  std::uint64_t uniqueTableLockWaits = 0;
  std::uint64_t complexTableLockWaits = 0;
  std::uint64_t computeTableLockWaits = 0;  ///< total across all op caches

  [[nodiscard]] static double rate(std::uint64_t hits, std::uint64_t misses) noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Combined multiply-cache hit rate (MxV and MxM).
  [[nodiscard]] double mulHitRate() const noexcept {
    return rate(mulMVHits + mulMMHits, mulMVMisses + mulMMMisses);
  }
  /// Fraction of stale (pre-GC) cache entries that were successfully
  /// revalidated instead of recomputed (0 when no entry aged across a GC).
  [[nodiscard]] double gcRetentionRate() const noexcept {
    return rate(cacheRetained, cacheStaleDropped);
  }
};

class Package {
 public:
  /// \param numQubits width of all states/operators handled by this package.
  /// \param tolerance complex-canonicalization tolerance (see ComplexTable).
  explicit Package(std::size_t numQubits, double tolerance = kTolerance);

  Package(const Package&) = delete;
  Package& operator=(const Package&) = delete;

  [[nodiscard]] std::size_t qubits() const noexcept { return numQubits_; }
  [[nodiscard]] ComplexTable& complexTable() noexcept { return ctab_; }
  [[nodiscard]] const PackageStats& stats() const noexcept { return stats_; }
  void resetStats() noexcept { stats_ = PackageStats{}; }
  /// Snapshot of the memoization-layer hit/miss counters.
  [[nodiscard]] CacheStats cacheStats() const noexcept;

  // ---------------------------------------------------------------- weights
  [[nodiscard]] CWeight czero() const noexcept { return ctab_.zero(); }
  [[nodiscard]] CWeight cone() const noexcept { return ctab_.one(); }
  CWeight clookup(ComplexValue v) { return ctab_.lookup(v); }

  // ---------------------------------------------------- terminals and zeros
  [[nodiscard]] VEdge vZero() noexcept { return {&vTerminal_, czero()}; }
  [[nodiscard]] VEdge vOneTerminal() noexcept { return {&vTerminal_, cone()}; }
  [[nodiscard]] MEdge mZero() noexcept { return {&mTerminal_, czero()}; }
  [[nodiscard]] MEdge mOneTerminal() noexcept { return {&mTerminal_, cone()}; }

  // ------------------------------------------------------ node construction
  /// Create (or reuse) a normalized vector node. Children must either be
  /// zero-terminal or rooted exactly one level below \p v.
  VEdge makeVNode(Qubit v, std::array<VEdge, 2> children);
  /// Create (or reuse) a normalized matrix node (children = quadrants
  /// {M00, M01, M10, M11}).
  MEdge makeMNode(Qubit v, std::array<MEdge, 4> children);

  // ----------------------------------------------------- state construction
  /// |0...0> over all qubits.
  VEdge makeZeroState();
  /// Computational basis state |bits> (bit i of \p bits = qubit i).
  VEdge makeBasisState(std::uint64_t bits);
  /// Dense amplitude vector (size 2^n) to DD; used by tests and examples.
  VEdge makeStateFromVector(std::span<const ComplexValue> amplitudes);
  /// Dense amplitude vector over only the low log2(size) qubits (a building
  /// block for kronecker composition; not extended to full width).
  VEdge makeSmallStateFromVector(std::span<const ComplexValue> amplitudes);

  // ---------------------------------------------------- matrix construction
  /// Identity over all qubits.
  MEdge makeIdent();
  /// Identity over qubits [0 .. topVar]; cached and pinned against GC.
  MEdge makeIdent(Qubit topVar);
  /// Single-qubit gate \p u on \p target with arbitrary positive/negative
  /// controls, padded with explicit identities to full width.
  MEdge makeGateDD(const GateMatrix& u, Qubit target, const Controls& controls = {});
  /// Matrix DD of the permutation f given as a table over the low
  /// t = log2(perm.size()) qubits (perm[x] = f(x)), extended to full width
  /// with identities and the given controls (all controls must lie above
  /// the permuted qubits). This is the *DD-construct* primitive: the oracle
  /// functionality is turned into a DD directly, without elementary gates.
  MEdge makePermutationDD(const std::vector<std::uint64_t>& perm,
                          const Controls& controls = {});
  /// Dense matrix (row-major, 2^k x 2^k over the low k qubits) to DD,
  /// extended to full width; used by tests.
  MEdge makeMatrixFromDense(std::span<const ComplexValue> rowMajor,
                            const Controls& controls = {});
  /// Dense matrix over only the low k qubits, without width extension.
  MEdge makeSmallMatrixFromDense(std::span<const ComplexValue> rowMajor);

  // ----------------------------------------------------------- operations
  VEdge add(const VEdge& a, const VEdge& b);
  MEdge add(const MEdge& a, const MEdge& b);
  /// Matrix-vector multiplication (one simulation step, paper Eq. 1).
  VEdge multiply(const MEdge& m, const VEdge& v);
  /// Matrix-matrix multiplication (operation combination, paper Eq. 2).
  MEdge multiply(const MEdge& a, const MEdge& b);
  /// Kronecker product: \p top acting on qubits above \p bottom. \p bottom
  /// must span qubits [0 .. bottom.p->v] completely.
  MEdge kronecker(const MEdge& top, const MEdge& bottom);
  VEdge kronecker(const VEdge& top, const VEdge& bottom);
  MEdge conjugateTranspose(const MEdge& m);
  /// <a|b> with the conjugation applied to \p a.
  ComplexValue innerProduct(const VEdge& a, const VEdge& b);
  /// |<a|b>|^2
  double fidelity(const VEdge& a, const VEdge& b);
  /// <v|v>
  double norm2(const VEdge& v);
  /// <v|M|v> — expectation value of an observable given as a matrix DD.
  ComplexValue expectationValue(const MEdge& observable, const VEdge& v);
  /// Trace of a matrix DD (sum of the diagonal), computed recursively in
  /// O(DD size). Basis of the unitary-equivalence check: |Tr(A^dagger B)|
  /// equals 2^n iff A and B agree up to a global phase.
  ComplexValue trace(const MEdge& m);

  // ----------------------------------------------------------- inspection
  /// Amplitude of basis state \p index (bit i = qubit i).
  ComplexValue getAmplitude(const VEdge& v, std::uint64_t index);
  /// Full dense state vector (tests/examples; exponential in n).
  std::vector<ComplexValue> getVector(const VEdge& v);
  /// Full dense matrix, row-major (tests; exponential in n).
  std::vector<ComplexValue> getMatrix(const MEdge& m);
  /// Number of distinct nodes reachable from the edge, terminal included.
  std::size_t size(const VEdge& v) const;
  std::size_t size(const MEdge& m) const;

  // ----------------------------------------------------------- measurement
  /// Sample a complete measurement outcome (bit i = qubit i). The state must
  /// be normalized. Does not modify the state unless \p collapse is set.
  std::uint64_t measureAll(VEdge& v, std::mt19937_64& rng, bool collapse);
  /// Probability of reading |1> on qubit \p q.
  double probabilityOfOne(const VEdge& v, Qubit q);
  /// Measure one qubit, collapse and renormalize the state. Returns 0 or 1.
  int measureOneCollapsing(VEdge& v, Qubit q, std::mt19937_64& rng);
  /// Sample \p shots complete measurements without collapsing; returns a
  /// histogram of outcomes (bit i = qubit i).
  std::map<std::uint64_t, std::size_t> sampleCounts(const VEdge& v,
                                                    std::size_t shots,
                                                    std::mt19937_64& rng);

  // ------------------------------------------------- reference counting/GC
  // Rooting an edge pins both its node graph and its top weight (weights of
  // internal edges are kept alive by their owning nodes).
  void incRef(const VEdge& e) noexcept {
    incRefNode(e.p);
    ctab_.incRef(e.w);
  }
  void decRef(const VEdge& e) noexcept {
    decRefNode(e.p);
    ctab_.decRef(e.w);
  }
  void incRef(const MEdge& e) noexcept {
    incRefNode(e.p);
    ctab_.incRef(e.w);
  }
  void decRef(const MEdge& e) noexcept {
    decRefNode(e.p);
    ctab_.decRef(e.w);
  }

  /// Collect all unreferenced nodes and flush the compute tables. Must only
  /// be called at a quiescent point (no unrooted intermediate results held
  /// by the caller). Returns the number of nodes collected.
  std::size_t garbageCollect();
  /// Collect if the number of live nodes exceeds the adaptive threshold, a
  /// configured resource budget is under pressure, or an installed fault
  /// injector forces a collection.
  bool maybeGarbageCollect();
  /// Pressure response: garbage-collect, drop every compute-table entry
  /// (stale entries hold raw pointers into chunks about to be released),
  /// and return fully-free allocator chunks to the OS. Quiescent-point
  /// contract as garbageCollect(). Returns the number of bytes released.
  std::size_t emergencyCollect();

  /// Live node counts (diagnostics / max-size strategy instrumentation).
  [[nodiscard]] std::size_t vNodeCount() const noexcept { return vUnique_.liveCount(); }
  [[nodiscard]] std::size_t mNodeCount() const noexcept { return mUnique_.liveCount(); }
  /// Total live DD nodes (the quantity a node budget governs).
  [[nodiscard]] std::size_t liveNodes() const noexcept {
    return vUnique_.liveCount() + mUnique_.liveCount();
  }
  /// Bytes held by the node allocators plus the unique-table buckets.
  [[nodiscard]] std::size_t bytesAllocated() const noexcept {
    return vMem_.bytesAllocated() + mMem_.bytesAllocated() +
           vUnique_.bucketBytes() + mUnique_.bucketBytes();
  }

  /// Install a cancellation predicate polled periodically from inside the
  /// recursive operations (every few thousand recursion steps). When it
  /// returns true, the current operation throws ComputationAborted — this is
  /// how time budgets interrupt a single runaway multiplication. Pass an
  /// empty function to disable.
  void setAbortCheck(std::function<bool()> check) {
    abortCheck_ = std::move(check);
  }

  // --------------------------------------------------- resource governance
  /// Budget and pressure-ladder policy; configure via
  /// governor().setBudget(...) / setPressureCallback(...). The budget is
  /// checked on every node creation: the soft rung fires the callback and
  /// schedules an emergency collection at the next quiescent point, the
  /// hard rung throws ResourceExhausted from the operation in flight.
  [[nodiscard]] ResourceGovernor& governor() noexcept { return governor_; }
  /// Current pressure level against the configured budget (None when no
  /// budget is set).
  [[nodiscard]] ResourcePressure resourcePressure() const noexcept {
    return governor_.active()
               ? governor_.classify(liveNodes(), bytesAllocated())
               : ResourcePressure::None;
  }

  /// Install (or remove, with nullptr) a deterministic fault injector. The
  /// injector is polled on every node request, abort poll and GC poll; not
  /// owned. Zero-cost when unset beyond a null check.
  void setFaultInjector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  // ------------------------------------------------- intra-package workers
  /// Use \p n threads (including the caller) for the recursive kernels:
  /// multiply (MxV and MxM) and add fork their top-level quadrants into a
  /// work-stealing task pool down to a depth cutoff. n <= 1 restores the
  /// fully serial engine (no locks anywhere). Switching is a quiescent-point
  /// operation: never call it while an operation is in flight.
  ///
  /// Determinism: every subproblem computes the same arithmetic in the same
  /// operand order as the serial recursion, so the resulting DDs are
  /// canonically identical. One caveat: when two *distinct* weights within
  /// the canonicalization tolerance are first inserted concurrently (values
  /// that are algebraically equal but computed through different association
  /// orders differ in the last ulp), which of them becomes the tolerance
  /// class's representative depends on insertion order. Parallel amplitudes
  /// may therefore differ from serial ones in the last ulp (~1e-16, far
  /// below the 1e-13 tolerance). For gate sets whose weight arithmetic has a
  /// single association order (e.g. Clifford+T) results are bit-identical,
  /// and tests enforce exactly that; rotation-rich circuits are enforced to
  /// ulp-level agreement. Block-level bit-identity of the simulator pipeline
  /// is unaffected: builders use private packages and a deterministic
  /// hand-off order (see sim/pipeline.hpp).
  void setWorkers(std::size_t n);
  /// Current kernel parallelism (1 = serial).
  [[nodiscard]] std::size_t workers() const noexcept {
    return pool_ == nullptr ? 1 : pool_->workers() + 1;
  }

 private:
  template <std::size_t Arity>
  void incRefNode(Node<Arity>* n) noexcept;
  template <std::size_t Arity>
  void decRefNode(Node<Arity>* n) noexcept;

  VEdge normalizeZero(const VEdge& e) noexcept {
    return e.w->exactlyZero() ? vZero() : e;
  }

  // \p spawn is the remaining task-fork budget: a positive value lets the
  // call fork its quadrant subproblems into the task pool (each child runs
  // with spawn - 1); zero recurses serially. Always zero in serial mode.
  VEdge addRec(const VEdge& a, const VEdge& b, std::size_t spawn = 0);
  MEdge addRec(const MEdge& a, const MEdge& b, std::size_t spawn = 0);
  VEdge mulNodesMV(MNode* a, VNode* b, std::size_t spawn = 0);
  MEdge mulNodesMM(MNode* a, MNode* b, std::size_t spawn = 0);
  /// Fork budget for a top-level operation rooted at variable \p top: deep
  /// enough to keep all workers fed (log2(workers) + 1 levels of 2/4-way
  /// forks), but never parallelize shallow DDs where task overhead would
  /// dominate the subproblem cost.
  [[nodiscard]] std::size_t spawnBudget(Qubit top) const noexcept;
  /// Run fn(0) .. fn(count-1): branch 0 inline on the calling thread, the
  /// rest as pool tasks. Helps execute queued work while joining. A branch
  /// exception is rethrown only after *all* branches finished, so stack
  /// locals captured by the tasks stay alive for the full fork region.
  template <typename F>
  void forkJoin(std::size_t count, F&& fn) {
    TaskPool::TaskGroup group;
    for (std::size_t i = 1; i < count; ++i) {
      pool_->submit(group, [&fn, i] { fn(i); });
    }
    std::exception_ptr pending;
    try {
      fn(0);
    } catch (...) {
      pending = std::current_exception();
    }
    try {
      pool_->wait(group);
    } catch (...) {
      if (pending == nullptr) {
        pending = std::current_exception();
      }
    }
    if (pending != nullptr) {
      std::rethrow_exception(pending);
    }
  }
  MEdge kronRec(const MEdge& a, const MEdge& b);
  VEdge kronRec(const VEdge& a, const VEdge& b);
  MEdge transposeRec(const MEdge& m);
  ComplexValue innerProductRec(VNode* a, VNode* b);
  ComplexValue traceNode(MNode* p);
  double normNode(VNode* p);
  MEdge buildPermutation(Qubit level, std::vector<std::pair<std::uint64_t, std::uint64_t>>& entries);
  MEdge buildDense(Qubit level, std::span<const ComplexValue> rowMajor,
                   std::uint64_t rowOff, std::uint64_t colOff, std::uint64_t dim);
  VEdge buildDenseVector(Qubit level, std::span<const ComplexValue> amps,
                         std::uint64_t off, std::uint64_t dim);
  /// Lift a matrix DD spanning the low qubits to full width, inserting
  /// identity tensor factors and control tests at the levels above.
  MEdge extendToFullWidth(MEdge e, const Controls& controls);

  std::size_t numQubits_;
  ComplexTable ctab_;

  MemoryManager<VNode> vMem_;
  MemoryManager<MNode> mMem_;
  UniqueTable<VNode> vUnique_;
  UniqueTable<MNode> mUnique_;

  VNode vTerminal_;
  MNode mTerminal_;

  // Cached operation results. The result's top weight is stored *by value*
  // (not as a canonical pointer): a retained entry therefore survives the
  // complex table's GC even when no live node happens to reference the
  // weight anymore — rehydration re-canonicalizes it in O(1).
  struct CachedVEdge {
    VNode* p = nullptr;
    ComplexValue w{};
  };
  struct CachedMEdge {
    MNode* p = nullptr;
    ComplexValue w{};
  };
  VEdge rehydrate(const CachedVEdge& c) { return {c.p, clookup(c.w)}; }
  MEdge rehydrate(const CachedMEdge& c) { return {c.p, clookup(c.w)}; }

  // ------------------------------------------ incarnation stamps (GC survival)
  // An entry's stamp mixes the incarnation counters of every pointer it
  // references. After a GC, a stale entry is reusable iff its recorded
  // stamp still matches the recomputed one: any operand or result that was
  // collected (and possibly recycled at the same address) changes its
  // incarnation and therefore the stamp.
  static std::uint64_t mixStamp(std::uint64_t h, std::uint64_t x) noexcept {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
  template <std::size_t Arity>
  [[nodiscard]] std::uint64_t stampOf(const Edge<Arity>& e) const noexcept {
    return mixStamp(e.p->id, ctab_.incarnation(e.w));
  }
  [[nodiscard]] static std::uint64_t stampOf(const CachedVEdge& r) noexcept {
    return r.p->id;
  }
  [[nodiscard]] static std::uint64_t stampOf(const CachedMEdge& r) noexcept {
    return r.p->id;
  }
  struct CVal {
    ComplexValue v;
  };
  struct DVal {
    double d;
  };
  [[nodiscard]] static std::uint64_t stampOf(const CVal&) noexcept { return 0; }
  [[nodiscard]] static std::uint64_t stampOf(const DVal&) noexcept { return 0; }

  template <typename A, typename B, typename R>
  [[nodiscard]] std::uint64_t opStamp(const A& a, const B& b,
                                      const R& r) const noexcept {
    return mixStamp(mixStamp(stampOf(a), stampOf(b)), stampOf(r));
  }
  template <typename A, typename R>
  [[nodiscard]] std::uint64_t opStamp(const A& a, const R& r) const noexcept {
    return mixStamp(stampOf(a), stampOf(r));
  }
  /// Revalidator passed to ComputeTable::lookup for stale entries.
  [[nodiscard]] auto revalidator() const noexcept {
    return [this](const auto& entry) noexcept {
      return entry.stamp == opStamp(entry.a, entry.b, entry.result);
    };
  }
  [[nodiscard]] auto unaryRevalidator() const noexcept {
    return [this](const auto& entry) noexcept {
      return entry.stamp == opStamp(entry.a, entry.result);
    };
  }

  // Operation caches: 4-way set-associative, generation-tagged (survive GC
  // via incarnation revalidation; see compute_table.hpp). The inner product,
  // norm and trace caches store plain values.
  ComputeTable<VEdge, VEdge, CachedVEdge> addVTable_;
  ComputeTable<MEdge, MEdge, CachedMEdge> addMTable_;
  ComputeTable<MEdge, VEdge, CachedVEdge> mulMVTable_;
  ComputeTable<MEdge, MEdge, CachedMEdge> mulMMTable_;
  ComputeTable<MEdge, MEdge, CachedMEdge> kronMTable_;
  ComputeTable<VEdge, VEdge, CachedVEdge> kronVTable_;
  UnaryComputeTable<MEdge, CachedMEdge> transposeTable_;
  ComputeTable<VEdge, VEdge, CVal> innerTable_;
  UnaryComputeTable<VEdge, DVal> normTable_;
  UnaryComputeTable<MEdge, CVal> traceTable_;

  std::vector<MEdge> identities_;  ///< makeIdent(v) cache, pinned

  void pollAbort() {
    if (injector_ != nullptr && injector_->onAbortPoll(opIndex_)) {
      throw ComputationAborted{};
    }
    // Thread-local so worker threads inside parallel kernels poll the
    // abort check independently without sharing a counter.
    static thread_local std::uint64_t abortCounter = 0;
    if ((++abortCounter & 0x3FFFU) == 0 && abortCheck_ && abortCheck_()) {
      throw ComputationAborted{};
    }
  }

  /// RAII label for the top-level operation in flight: names the operation
  /// in ResourceExhausted diagnostics and counts top-level operations for
  /// the fault injector. Nested package calls keep the outermost label.
  class OpGuard {
   public:
    OpGuard(Package& pkg, const char* name) noexcept
        : pkg_(pkg), prev_(pkg.currentOp_) {
      if (prev_ == nullptr) {
        pkg_.currentOp_ = name;
        ++pkg_.opIndex_;
      }
    }
    ~OpGuard() { pkg_.currentOp_ = prev_; }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;

   private:
    Package& pkg_;
    const char* prev_;
  };

  /// Budget/fault check on every node creation: soft rung fires the
  /// pressure callback (collection is deferred to the next quiescent
  /// point), hard rung throws ResourceExhausted out of the operation in
  /// flight. Near-free when neither a budget nor an injector is set.
  void checkResources() {
    if (injector_ != nullptr && injector_->onNodeRequest()) {
      throw ResourceExhausted(operationInFlight(), liveNodes(),
                              governor_.budget().maxLiveNodes,
                              bytesAllocated(),
                              "fault injection: allocation failure");
    }
    if (!governor_.active()) {
      return;
    }
    const std::size_t live = liveNodes();
    const std::size_t bytes = bytesAllocated();
    const ResourcePressure level = governor_.classify(live, bytes);
    governor_.observe(level, live);
    if (level == ResourcePressure::Hard) {
      throw ResourceExhausted(operationInFlight(), live,
                              governor_.budget().maxLiveNodes, bytes);
    }
  }

  [[nodiscard]] const char* operationInFlight() const noexcept {
    return currentOp_ != nullptr ? currentOp_ : "idle";
  }

  /// Fresh sweep number for the stamp-based size() traversal. Node stamps
  /// from 2^32 sweeps ago could theoretically alias; a size() call every
  /// microsecond takes over an hour to get there, and the only consequence
  /// would be one undercounted statistic.
  std::uint32_t nextVisitMark() const noexcept { return ++visitMark_; }

  std::size_t gcThreshold_ = 1U << 18;
  mutable std::uint32_t visitMark_ = 0;
  PackageStats stats_;
  std::function<bool()> abortCheck_;

  /// Worker threads for the parallel kernels (nullptr = serial engine).
  std::unique_ptr<TaskPool> pool_;

  ResourceGovernor governor_;
  FaultInjector* injector_ = nullptr;  ///< not owned; nullptr = disabled
  const char* currentOp_ = nullptr;    ///< top-level operation label
  std::uint64_t opIndex_ = 0;          ///< top-level operations started
  /// Emergency-GC hysteresis: skip further emergency collections until the
  /// live-node count has grown past this mark again (a collection that
  /// freed nothing would otherwise repeat on every quiescent point while
  /// pressure persists).
  std::size_t emergencyRearmLive_ = 0;
};

}  // namespace ddsim::dd
