#include "dd/complex_value.hpp"

#include <sstream>

namespace ddsim::dd {

ComplexValue operator/(ComplexValue a, ComplexValue b) noexcept {
  const double d = b.mag2();
  return {(a.r * b.r + a.i * b.i) / d, (a.i * b.r - a.r * b.i) / d};
}

std::string ComplexValue::toString(int precision) const {
  std::ostringstream ss;
  ss.precision(precision);
  if (std::abs(i) <= kTolerance) {
    ss << r;
  } else if (std::abs(r) <= kTolerance) {
    ss << i << "i";
  } else {
    ss << r << (i < 0 ? "" : "+") << i << "i";
  }
  return ss.str();
}

}  // namespace ddsim::dd
